package tomography_test

import (
	"math"
	"testing"

	tomography "repro"
)

// TestWindowedSpillMatchesRAM is the top-level half of the out-of-core
// bit-identity contract: a sliding replay whose window spills sealed column
// segments to disk must produce the same WindowPoint sequence — congestion
// probabilities compared via math.Float64bits, change flags exactly — as the
// RAM-only window, for segment sizes that divide the window evenly, leave a
// mid-segment head boundary, and exceed the window entirely. Run with -race.
func TestWindowedSpillMatchesRAM(t *testing.T) {
	const (
		snapshots = 700
		window    = 256
		stride    = 97
	)
	top, rec := windowFixture(t, snapshots)
	plan, err := tomography.Compile(top, tomography.PlanOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, estimator := range []string{"correlation", "mle"} {
		ram, err := tomography.WindowedEstimate(top, rec,
			tomography.WindowConfig{Size: window, Estimator: estimator, Plan: plan}, stride)
		if err != nil {
			t.Fatal(err)
		}
		if len(ram) == 0 {
			t.Fatal("no checkpoints")
		}
		for _, segRows := range []int{64, 192, 1024} {
			cfg := tomography.WindowConfig{
				Size: window, Estimator: estimator, Plan: plan,
				Spill: &tomography.SpillConfig{Dir: t.TempDir(), SegmentRows: segRows},
			}
			spill, err := tomography.WindowedEstimate(top, rec, cfg, stride)
			if err != nil {
				t.Fatal(err)
			}
			if len(spill) != len(ram) {
				t.Fatalf("%s/segRows=%d: %d spill checkpoints, %d RAM", estimator, segRows, len(spill), len(ram))
			}
			for k := range ram {
				if spill[k].T != ram[k].T || spill[k].Changed != ram[k].Changed {
					t.Fatalf("%s/segRows=%d: checkpoint %d is (T=%d, changed=%v), RAM (T=%d, changed=%v)",
						estimator, segRows, k, spill[k].T, spill[k].Changed, ram[k].T, ram[k].Changed)
				}
				a, b := ram[k].Result.CongestionProb, spill[k].Result.CongestionProb
				if len(a) != len(b) {
					t.Fatalf("%s/segRows=%d: checkpoint T=%d result lengths differ", estimator, segRows, ram[k].T)
				}
				for i := range a {
					if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
						t.Fatalf("%s/segRows=%d: checkpoint T=%d link %d: RAM %v, spill %v",
							estimator, segRows, ram[k].T, i, a[i], b[i])
					}
				}
			}
		}
	}
}

// TestWindowSpillStreaming closes the loop end to end: SimulateDynamicStream
// feeds a spill-backed Window live (no record in RAM on the spill side), and
// its estimate must be bit-identical to a RAM window driven from the recorded
// run of the same configuration.
func TestWindowSpillStreaming(t *testing.T) {
	const (
		snapshots = 600
		window    = 200
	)
	top := tomography.Figure1A()
	proc, err := tomography.NewMarkovModulated(tomography.MarkovConfig{
		NumLinks: top.NumLinks(),
		Groups: []tomography.MarkovGroup{{
			Links:   []int{0, 1},
			Chain:   tomography.MarkovChain{POn: 0.05, MeanBurst: 20},
			OnProb:  []float64{0.9, 0.8},
			OffProb: []float64{0.02, 0.02},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tomography.DynamicSimConfig{Topology: top, Process: proc, Snapshots: snapshots, Seed: 3}
	rec, err := tomography.SimulateDynamic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ramW, err := tomography.NewWindow(top, tomography.WindowConfig{Size: window})
	if err != nil {
		t.Fatal(err)
	}
	defer ramW.Close()
	for ts := 0; ts < rec.Snapshots(); ts++ {
		ramW.Observe(rec.PathSnapshot(ts))
	}
	spillW, err := tomography.NewWindow(top, tomography.WindowConfig{
		Size:  window,
		Spill: &tomography.SpillConfig{Dir: t.TempDir(), SegmentRows: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer spillW.Close()
	cfg.OnSnapshot = func(ts int, congested *tomography.PathSet) { spillW.Observe(congested) }
	if err := tomography.SimulateDynamicStream(cfg); err != nil {
		t.Fatal(err)
	}
	if spillW.Seen() != ramW.Seen() || spillW.Len() != ramW.Len() {
		t.Fatalf("spill window seen/len %d/%d, RAM %d/%d", spillW.Seen(), spillW.Len(), ramW.Seen(), ramW.Len())
	}
	a, err := ramW.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spillW.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.CongestionProb) != len(b.CongestionProb) {
		t.Fatal("result lengths differ")
	}
	for i := range a.CongestionProb {
		if math.Float64bits(a.CongestionProb[i]) != math.Float64bits(b.CongestionProb[i]) {
			t.Fatalf("link %d: RAM %v, spill %v", i, a.CongestionProb[i], b.CongestionProb[i])
		}
	}
}
