// Opt-in day-scale replay smoke: CI sets STORE_SMOKE=1 on a dedicated step
// to drive the out-of-core segment store at the scale it exists for — a
// day of snapshots at a deployment-sized path count — and assert the three
// properties the ISSUE pins: the run spills (sealed segments on disk), peak
// RSS stays under a fixed budget, and every probability surface sampled at
// the checkpoints is bit-identical to a RAM-only window fed the same rows.
// Unset, the test skips, so ordinary `go test ./...` stays fast.
package tomography_test

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	tomography "repro"
	"repro/internal/bitset"
)

// storeSmokeRow fills row with the synthetic bursty pattern of snapshot t:
// a handful of rotating hot paths plus congestion waves, cheap enough to
// generate 2M times yet dense enough that segments mix zero-span and
// populated columns.
func storeSmokeRow(t, paths int, row *bitset.Set) {
	row.Clear()
	for k := 0; k < 8; k++ {
		row.Add((t*2654435761 + k*40503) % paths)
	}
	if t%977 < 60 { // periodic burst congesting a block of paths
		base := (t / 977 * 131) % paths
		for k := 0; k < 24; k++ {
			row.Add((base + k) % paths)
		}
	}
}

// readVmHWM returns the process's peak resident set size in bytes from
// /proc/self/status (0 where unavailable).
func readVmHWM(t *testing.T) int64 {
	t.Helper()
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if s, ok := strings.CutPrefix(sc.Text(), "VmHWM:"); ok {
			kb, err := strconv.ParseInt(strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), "kB")), 10, 64)
			if err != nil {
				t.Fatalf("parsing VmHWM from %q: %v", sc.Text(), err)
			}
			return kb << 10
		}
	}
	return 0
}

// storeSmokeSurface samples the estimator's probability surfaces at one
// checkpoint: every 37th path's marginal, a band of pair probabilities, and
// two set queries. Bit-patterns, so the comparison is exact.
func storeSmokeSurface(e *tomography.Empirical, paths int) []uint64 {
	var out []uint64
	for i := 0; i < paths; i += 37 {
		out = append(out, math.Float64bits(e.ProbPathGood(tomography.PathID(i))))
	}
	for i := 0; i < paths-5; i += 101 {
		out = append(out, math.Float64bits(e.ProbPairGood(tomography.PathID(i), tomography.PathID(i+5))))
	}
	out = append(out,
		math.Float64bits(e.ProbPathsGood(bitset.FromIndices(3, 99, 512))),
		math.Float64bits(e.ProbPathsGood(bitset.FromIndices(7, 8, 9, 700))))
	return out
}

// TestDayScaleReplayBoundedRSS is the acceptance run: ≥2M snapshots over
// ≥1k paths stream through a spill-enabled window that must seal segments
// to disk, with peak RSS under the budget, and a RAM-only window replaying
// the same rows must agree on every sampled probability bit at every
// checkpoint. The spill phase runs first so the recorded VmHWM belongs to
// it, not to the RAM comparison window.
func TestDayScaleReplayBoundedRSS(t *testing.T) {
	if os.Getenv("STORE_SMOKE") == "" {
		t.Skip("set STORE_SMOKE=1 to run the day-scale out-of-core replay")
	}
	const (
		paths     = 1024
		snapshots = 2_100_000
		window    = 1 << 20
		segRows   = 65536
		rssBudget = int64(1) << 30 // 1 GiB — the run streams ~268 MB of history through a ~136 MB window
	)
	checkpoints := map[int]bool{
		window:         true, // first warm snapshot
		3 * window / 2: true, // head mid-segment, window spans sealed + active
		snapshots - 1:  true,
	}

	dir := t.TempDir()
	spill, err := tomography.NewSlidingWindowSpill(paths, window, tomography.SpillConfig{
		Dir: dir, SegmentRows: segRows, Reset: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	row := bitset.New(paths)
	spillSurfaces := map[int][]uint64{}
	for ts := 0; ts < snapshots; ts++ {
		storeSmokeRow(ts, paths, row)
		spill.Append(row)
		if checkpoints[ts] {
			spillSurfaces[ts] = storeSmokeSurface(spill, paths)
			spill.SpillStore().ReleaseMapped()
		}
	}
	store := spill.SpillStore()
	if store == nil || store.SealedSegments() == 0 {
		t.Fatal("day-scale replay never sealed a segment — the run did not spill")
	}
	sealed, spilledBytes := store.SealedSegments(), store.SpilledBytes()
	if spilledBytes == 0 {
		t.Fatal("sealed segments reported zero spilled bytes")
	}
	spill.Close()
	hwm := readVmHWM(t)
	if hwm > 0 && hwm > rssBudget {
		t.Fatalf("peak RSS %d MiB exceeds the %d MiB budget", hwm>>20, rssBudget>>20)
	}
	t.Logf("spill phase: %d snapshots, %d sealed segments, %.1f MiB spilled, peak RSS %d MiB (budget %d MiB)",
		snapshots, sealed, float64(spilledBytes)/(1<<20), hwm>>20, rssBudget>>20)
	runtime.GC()

	ram, err := tomography.NewSlidingWindow(paths, window)
	if err != nil {
		t.Fatal(err)
	}
	defer ram.Close()
	for ts := 0; ts < snapshots; ts++ {
		storeSmokeRow(ts, paths, row)
		ram.Append(row)
		if checkpoints[ts] {
			want := storeSmokeSurface(ram, paths)
			got := spillSurfaces[ts]
			if len(got) != len(want) {
				t.Fatalf("checkpoint %d: %d spill samples, %d RAM", ts, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("checkpoint %d sample %d: spill %s, RAM %s", ts, k,
						formatBits(got[k]), formatBits(want[k]))
				}
			}
		}
	}
	writeBenchJSONFile(t, "BENCH_store.json", "TestDayScaleReplayBoundedRSS", map[string]float64{
		"paths":           paths,
		"snapshots":       snapshots,
		"window":          window,
		"segment-rows":    segRows,
		"sealed-segments": float64(sealed),
		"spilled-bytes":   float64(spilledBytes),
		"peak-rss-bytes":  float64(hwm),
		"rss-budget":      float64(rssBudget),
	})
}

func formatBits(b uint64) string {
	return fmt.Sprintf("%v (0x%016x)", math.Float64frombits(b), b)
}
