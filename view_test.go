package tomography_test

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	tomography "repro"
)

// assertBitIdentical compares two probability vectors via math.Float64bits.
func assertBitIdentical(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: result lengths differ: %d vs %d", label, len(got), len(want))
	}
	for k := range want {
		if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
			t.Fatalf("%s: link %d: view %v != window %v (not bit-identical)", label, k, got[k], want[k])
		}
	}
}

// TestWindowViewMatchesWindow is the read-replica bit-identity contract for
// the RAM-backed window: a view frozen at checkpoint T estimates exactly
// what the window itself estimated at T — including after the window has
// moved on past the view, which is what makes it a copy-on-write snapshot
// rather than an alias. Views are recycled through the publisher loop the
// way the serving layer recycles them. Run with -race.
func TestWindowViewMatchesWindow(t *testing.T) {
	const (
		snapshots = 700
		window    = 256
		stride    = 97
	)
	top, rec := windowFixture(t, snapshots)
	plan, err := tomography.Compile(top, tomography.PlanOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, estimator := range []string{"correlation", "independence", "mle"} {
		estimator := estimator
		t.Run(estimator, func(t *testing.T) {
			t.Parallel() // estimators share one plan — exercised under -race
			w, err := tomography.NewWindow(top, tomography.WindowConfig{
				Size: window, Estimator: estimator, Plan: plan,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			ws := tomography.NewWorkspace()
			var recycle *tomography.WindowView
			type pending struct {
				view *tomography.WindowView
				want []float64
			}
			var held pending // a view deliberately estimated only later
			for ts := 0; ts < rec.Snapshots(); ts++ {
				w.Observe(rec.PathSnapshot(ts))
				if ts+1 < window || (ts+1)%stride != 0 {
					continue
				}
				want, err := w.Estimate()
				if err != nil {
					t.Fatal(err)
				}
				v := w.View(recycle)
				recycle = nil
				if v.Seen() != ts+1 || v.Len() != window {
					t.Fatalf("t=%d: view seen=%d len=%d, want %d, %d", ts, v.Seen(), v.Len(), ts+1, window)
				}
				got, err := v.EstimateIn(ws)
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, estimator, got.CongestionProb, want.CongestionProb)
				if held.view != nil {
					// The previous checkpoint's view, estimated only now — a
					// full stride of appends and evictions later: it must
					// still answer as of its freeze point.
					late, err := held.view.EstimateIn(ws)
					if err != nil {
						t.Fatal(err)
					}
					assertBitIdentical(t, estimator+"/stale-view", late.CongestionProb, held.want)
					held.view.Close()
					recycle = held.view
				}
				held = pending{view: v, want: append([]float64(nil), want.CongestionProb...)}
			}
			if held.view != nil {
				held.view.Close()
			}
		})
	}
}

// TestWindowViewTheorem extends the view bit-identity contract to the
// theorem estimator, whose congested-pattern histogram must be carried into
// (and stay frozen in) the view.
func TestWindowViewTheorem(t *testing.T) {
	top := tomography.Figure1A()
	s, err := tomography.BuildScenario("quickstart", 5)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: top, Model: s.Model, Snapshots: 900, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	const window = 256
	w, err := tomography.NewWindow(top, tomography.WindowConfig{Size: window, Estimator: "theorem"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Source().PrimePatterns()
	ws := tomography.NewWorkspace()
	var recycle *tomography.WindowView
	for ts := 0; ts < rec.Snapshots(); ts++ {
		w.Observe(rec.PathSnapshot(ts))
		if ts+1 < window || (ts+1)%101 != 0 {
			continue
		}
		want, err := w.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		v := w.View(recycle)
		got, err := v.EstimateIn(ws)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "theorem", got.CongestionProb, want.CongestionProb)
		v.Close()
		recycle = v
	}
}

// TestWindowViewSpillConcurrent is the read-replica contract on the
// out-of-core window under -race: reader goroutines hold views (whose
// sealed segments are shared with the live window by reference) and
// estimate from them while the owner keeps appending — sealing new
// segments, evicting old ones, and releasing its own segment references.
// Every view estimate must be bit-identical to the window's estimate at
// the view's freeze point.
func TestWindowViewSpillConcurrent(t *testing.T) {
	const (
		snapshots = 600
		window    = 192
		segRows   = 64
		stride    = 64
	)
	top, rec := windowFixture(t, snapshots)
	for _, estimator := range []string{"correlation", "mle"} {
		w, err := tomography.NewWindow(top, tomography.WindowConfig{
			Size: window, Estimator: estimator,
			Spill: &tomography.SpillConfig{Dir: t.TempDir(), SegmentRows: segRows},
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for ts := 0; ts < rec.Snapshots(); ts++ {
			w.Observe(rec.PathSnapshot(ts))
			if ts+1 < window || (ts+1)%stride != 0 {
				continue
			}
			want, err := w.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			wantProbs := append([]float64(nil), want.CongestionProb...)
			v := w.View(nil)
			wg.Add(1)
			go func(v *tomography.WindowView, want []float64, at int) {
				defer wg.Done()
				defer v.Close()
				ws := tomography.NewWorkspace()
				for rep := 0; rep < 3; rep++ {
					got, err := v.EstimateIn(ws)
					if err != nil {
						errs <- err
						return
					}
					for k := range want {
						if math.Float64bits(got.CongestionProb[k]) != math.Float64bits(want[k]) {
							errs <- errMismatch{estimator: estimator, at: at, link: k}
							return
						}
					}
				}
			}(v, wantProbs, ts)
		}
		wg.Wait()
		w.Close()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

type errMismatch struct {
	estimator string
	at        int
	link      int
}

func (e errMismatch) Error() string {
	return fmt.Sprintf("view estimate diverged: %s at snapshot %d link %d", e.estimator, e.at, e.link)
}

// TestWindowCloseIdempotent covers the Window lifecycle bugfix: Close twice
// is a no-op the second time, estimates on a closed window error cleanly,
// and Observe on a closed window panics with a diagnostic (silently
// dropping observations would desync downstream consumers).
func TestWindowCloseIdempotent(t *testing.T) {
	top, rec := windowFixture(t, 64)
	for _, spill := range []bool{false, true} {
		cfg := tomography.WindowConfig{Size: 32}
		if spill {
			cfg.Spill = &tomography.SpillConfig{Dir: t.TempDir(), SegmentRows: 64}
		}
		w, err := tomography.NewWindow(top, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for ts := 0; ts < rec.Snapshots(); ts++ {
			w.Observe(rec.PathSnapshot(ts))
		}
		w.Close()
		w.Close() // must not panic or double-release
		if _, err := w.Estimate(); err == nil || !strings.Contains(err.Error(), "closed") {
			t.Fatalf("spill=%v: Estimate on closed window: err = %v, want closed error", spill, err)
		}
		if _, err := w.EstimateShared(); err == nil || !strings.Contains(err.Error(), "closed") {
			t.Fatalf("spill=%v: EstimateShared on closed window: err = %v, want closed error", spill, err)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spill=%v: Observe on closed window did not panic", spill)
				}
			}()
			w.Observe(rec.PathSnapshot(0))
		}()
	}
}

// TestWindowCloseDuringEstimate races Close against a goroutine issuing
// estimates in a loop: Close must wait for the in-flight estimate rather
// than tearing the source down under it, and every estimate either
// succeeds or reports the window closed — never panics. Run with -race.
func TestWindowCloseDuringEstimate(t *testing.T) {
	top, rec := windowFixture(t, 300)
	for _, spill := range []bool{false, true} {
		cfg := tomography.WindowConfig{Size: 128, CountWorkers: 2}
		if spill {
			cfg = tomography.WindowConfig{
				Size:  128,
				Spill: &tomography.SpillConfig{Dir: t.TempDir(), SegmentRows: 64},
			}
		}
		w, err := tomography.NewWindow(top, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for ts := 0; ts < rec.Snapshots(); ts++ {
			w.Observe(rec.PathSnapshot(ts))
		}
		started := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			close(started)
			for {
				if _, err := w.EstimateShared(); err != nil {
					done <- err
					return
				}
			}
		}()
		<-started
		w.Close()
		err = <-done
		if err == nil || !strings.Contains(err.Error(), "closed") {
			t.Fatalf("spill=%v: estimate loop ended with %v, want closed error", spill, err)
		}
	}
}
