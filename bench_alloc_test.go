// Zero-allocation steady-state benchmarks (BENCH_alloc.json): price the
// pooled evaluate workspaces against the allocating estimate path on the
// windowed-inference loop, and the cache-blocked batched pair-count kernel
// against per-pair column streaming.
package tomography_test

import (
	"math/rand"
	"runtime"
	"testing"

	tomography "repro"
	"repro/internal/bitset"
	"repro/internal/snapstore"
)

// pr4WindowedNsPerOp is the end-to-end BenchmarkWindowedInference
// sliding-window time recorded in BENCH_dynamics.json by PR 4 on the CI
// reference machine — the fixed baseline the workspace path is measured
// against (the live "alloc-path" sub-benchmark re-measures the allocating
// path on the current tree, which already benefits from the row-major
// reduced-cost sweep).
const pr4WindowedNsPerOp = 586178753.0

// BenchmarkWindowedInferenceWorkspace replays the BenchmarkWindowedInference
// workload (same topology, dynamics, window and stride) through both
// estimate paths and records ns/op and allocs/op for each: the allocating
// WindowedEstimate versus the workspace-backed WindowedEstimateFunc whose
// steady state allocates only the checkpoint bookkeeping of the replay
// itself.
func BenchmarkWindowedInferenceWorkspace(b *testing.B) {
	const (
		snapshots = 4000
		window    = 512
		stride    = 64
	)
	net, proc := dynamicsWorkload(b)
	top := net.Topology
	rec, err := tomography.SimulateDynamic(tomography.DynamicSimConfig{
		Topology: top, Process: proc, Snapshots: snapshots, Seed: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := tomography.Compile(top, tomography.PlanOptions{Lazy: true})
	if err != nil {
		b.Fatal(err)
	}
	checkpoints := 0
	for t := window - 1; t < snapshots; t++ {
		if (t+1)%stride == 0 || t == snapshots-1 {
			checkpoints++
		}
	}
	metrics := map[string]float64{
		"snapshots":          snapshots,
		"window":             window,
		"stride":             stride,
		"paths":              float64(top.NumPaths()),
		"links":              float64(top.NumLinks()),
		"checkpoints":        float64(checkpoints),
		"pr4-baseline-ns/op": pr4WindowedNsPerOp,
	}

	b.Run("alloc-path", func(b *testing.B) {
		b.ReportAllocs()
		allocs := countAllocs(b, func() {
			pts, err := tomography.WindowedEstimate(top, rec,
				tomography.WindowConfig{Size: window, Plan: plan}, stride)
			if err != nil {
				b.Fatal(err)
			}
			if len(pts) != checkpoints {
				b.Fatalf("%d checkpoints, want %d", len(pts), checkpoints)
			}
		})
		metrics["alloc-path-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		metrics["alloc-path-allocs/op"] = allocs
	})
	b.Run("workspace", func(b *testing.B) {
		b.ReportAllocs()
		allocs := countAllocs(b, func() {
			seen := 0
			err := tomography.WindowedEstimateFunc(top, rec,
				tomography.WindowConfig{Size: window, Plan: plan}, stride,
				func(pt tomography.WindowPoint) error {
					seen++
					benchSink += pt.Result.CongestionProb[0]
					return nil
				})
			if err != nil {
				b.Fatal(err)
			}
			if seen != checkpoints {
				b.Fatalf("%d checkpoints, want %d", seen, checkpoints)
			}
		})
		metrics["workspace-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		metrics["workspace-allocs/op"] = allocs
	})
	if a, w := metrics["alloc-path-ns/op"], metrics["workspace-ns/op"]; a > 0 && w > 0 {
		metrics["speedup-vs-alloc-path"] = a / w
		metrics["speedup-vs-pr4-baseline"] = pr4WindowedNsPerOp / w
		b.Logf("windowed inference: alloc path %.1f ms (%.0f allocs), workspace %.1f ms (%.0f allocs) — %.2f× vs alloc path, %.2f× vs the PR 4 baseline",
			a/1e6, metrics["alloc-path-allocs/op"], w/1e6, metrics["workspace-allocs/op"],
			metrics["speedup-vs-alloc-path"], metrics["speedup-vs-pr4-baseline"])
	}
	writeBenchJSONFile(b, "BENCH_alloc.json", "BenchmarkWindowedInference", metrics)
}

// countAllocs runs the benchmark loop and returns the heap allocations per
// op, measured over the loop with runtime.MemStats (b.Elapsed still covers
// exactly the same span).
func countAllocs(b *testing.B, op func()) float64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(b.N)
}

// pr5BatchedNsPerOp is the serial cache-blocked kernel's batched-ns/op
// recorded in BENCH_alloc.json by PR 5 on the CI reference machine — the
// fixed baseline the workspace and multicore kernels are measured against.
const pr5BatchedNsPerOp = 335829748.67

// BenchmarkBatchPairCount prices the cache-blocked batched pair-count
// kernel (snapstore.CountPairsGood) against the per-pair path the pair
// cache used before it: one copy+OR+popcount streaming pass over both full
// columns per pair. The store is sized past the last-level cache so the
// baseline re-streams every column from memory once per pair that uses it,
// while the blocked sweep reads each column block from memory once and
// serves all its pairs from cache — the kernel's cache reuse shows up as
// memory traffic saved, on top of fusing three word passes into one.
//
// The workspace sub-benchmarks price the multicore kernel on top: the
// serial workspace run isolates the block-summary skip path and the fused
// OR+POPCNT sweep, and the 8-worker run adds the deterministic fan-out.
// All three produce bit-identical counts; on a single-core machine the
// 8-worker figure degrades to roughly the serial one (the workers
// time-slice one core), so interpret the parallel speedup together with
// the machine block writeBenchJSONFile records.
func BenchmarkBatchPairCount(b *testing.B) {
	const (
		paths     = 128
		snapshots = 24_000_000 // 128 columns × 3 MB ≈ 384 MB, past even a large L3
		fanout    = 12         // pairs per path: (i, i+1) … (i, i+fanout)
	)
	rng := rand.New(rand.NewSource(7))
	store := snapstore.NewFixed(paths, snapshots)
	// Timing is data-independent (OR + popcount); a sparse random fill keeps
	// fixture construction cheap at this scale.
	for t := 0; t < snapshots; t++ {
		store.SetBit(rng.Intn(paths), t)
	}
	var pairs []snapstore.Pair
	for i := 0; i < paths; i++ {
		for d := 1; d <= fanout && i+d < paths; d++ {
			pairs = append(pairs, snapstore.Pair{A: i, B: i + d})
		}
	}
	out := make([]int, len(pairs))
	metrics := map[string]float64{
		"paths":     paths,
		"snapshots": snapshots,
		"pairs":     float64(len(pairs)),
	}

	b.Run("per-pair", func(b *testing.B) {
		scratch := make([]uint64, store.Words())
		sum := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range pairs {
				// The pre-batching kernel: copy column A, OR column B,
				// popcount — three passes over the words, per pair.
				copy(scratch, store.Column(p.A))
				bitset.OrWords(scratch, store.Column(p.B))
				sum += store.Snapshots() - bitset.PopCountWords(scratch)
			}
		}
		benchSink += float64(sum)
		metrics["per-pair-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("batched-blocked", func(b *testing.B) {
		sum := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store.CountPairsGood(pairs, out)
			for _, c := range out {
				sum += c
			}
		}
		benchSink += float64(sum)
		metrics["batched-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	var ws snapstore.CountWorkspace
	defer ws.Close()
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"batched-ws-serial", 1},
		{"batched-parallel-8", 8},
	} {
		key := bc.name + "-ns/op"
		b.Run(bc.name, func(b *testing.B) {
			sum := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store.CountPairsGoodWS(&ws, pairs, out, bc.workers)
				for _, c := range out {
					sum += c
				}
			}
			benchSink += float64(sum)
			metrics[key] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
	}
	metrics["pr5-batched-ns/op"] = pr5BatchedNsPerOp
	if pp, bb := metrics["per-pair-ns/op"], metrics["batched-ns/op"]; pp > 0 && bb > 0 {
		metrics["speedup"] = pp / bb
		ser, par := metrics["batched-ws-serial-ns/op"], metrics["batched-parallel-8-ns/op"]
		if ser > 0 && par > 0 {
			metrics["parallel-vs-serial"] = ser / par
			metrics["parallel-8-vs-pr5-serial"] = pr5BatchedNsPerOp / par
		}
		b.Logf("pair counting over %d pairs × %d snapshots: per-pair %.2f ms, batched blocked %.2f ms (%.1f×), ws serial %.2f ms, 8 workers %.2f ms (%.2f× vs ws serial, %.2f× vs PR 5 serial)",
			len(pairs), snapshots, pp/1e6, bb/1e6, metrics["speedup"],
			ser/1e6, par/1e6, metrics["parallel-vs-serial"], metrics["parallel-8-vs-pr5-serial"])
	}
	writeBenchJSONFile(b, "BENCH_alloc.json", "BenchmarkBatchPairCount", metrics)
}
