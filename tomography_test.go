package tomography_test

import (
	"math"
	"testing"

	tomography "repro"
	"repro/internal/bitset"
	"repro/internal/congestion"
)

// TestPublicAPIEndToEnd exercises the whole facade the way a downstream user
// would: build a topology, simulate measurements, infer with all three
// algorithms, check identifiability, and apply the merge transformation.
func TestPublicAPIEndToEnd(t *testing.T) {
	// Build Figure 1(a) by hand through the public Builder.
	b := tomography.NewBuilder()
	v1, v2, v3, v4, v5 := b.AddNode(), b.AddNode(), b.AddNode(), b.AddNode(), b.AddNode()
	e1 := b.AddLink(v4, v3, "e1")
	e2 := b.AddLink(v5, v3, "e2")
	e3 := b.AddLink(v3, v1, "e3")
	e4 := b.AddLink(v3, v2, "e4")
	b.AddPath("P1", e1, e3)
	b.AddPath("P2", e2, e3)
	b.AddPath("P3", e2, e4)
	b.Correlate(e1, e2)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	if res := tomography.CheckIdentifiability(top, 0); !res.Identifiable {
		t.Fatal("Figure 1(a) must be identifiable")
	}

	model, err := congestion.NewTable(4, []congestion.GroupTable{
		{
			Links: []int{0, 1},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: 0.60},
				{Links: bitset.FromIndices(0), P: 0.10},
				{Links: bitset.FromIndices(1), P: 0.12},
				{Links: bitset.FromIndices(0, 1), P: 0.18},
			},
		},
		{Links: []int{2}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.8}, {Links: bitset.FromIndices(2), P: 0.2},
		}},
		{Links: []int{3}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.9}, {Links: bitset.FromIndices(3), P: 0.1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: top, Model: model, Snapshots: 150000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := tomography.NewEmpirical(rec)

	truth := congestion.Marginals(model)
	corr, err := tomography.Correlation(top, src, tomography.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range truth {
		if math.Abs(corr.CongestionProb[k]-w) > 0.02 {
			t.Fatalf("correlation link %d: %v vs truth %v", k, corr.CongestionProb[k], w)
		}
	}

	if _, err := tomography.Independence(top, src, tomography.Options{}); err != nil {
		t.Fatal(err)
	}

	thm, err := tomography.Theorem(top, src, tomography.TheoremOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range truth {
		if math.Abs(thm.CongestionProb[k]-w) > 0.02 {
			t.Fatalf("theorem link %d: %v vs truth %v", k, thm.CongestionProb[k], w)
		}
	}
}

func TestPublicMergeTransform(t *testing.T) {
	top := tomography.Figure1B()
	if res := tomography.CheckIdentifiability(top, 0); res.Identifiable {
		t.Fatal("Figure 1(b) must violate Assumption 4")
	}
	merged, mm, err := tomography.MergeTransform(top)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumLinks() != 2 {
		t.Fatalf("merged links = %d, want 2", merged.NumLinks())
	}
	if len(mm.OriginalLinks) != 2 {
		t.Fatalf("merge map has %d entries", len(mm.OriginalLinks))
	}
}
