package tomography_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	tomography "repro"
	"repro/internal/bitset"
	"repro/internal/congestion"
	"repro/internal/scenario"
)

// TestPublicAPIEndToEnd exercises the whole facade the way a downstream user
// would: build a topology, simulate measurements, infer with all three
// algorithms, check identifiability, and apply the merge transformation.
func TestPublicAPIEndToEnd(t *testing.T) {
	// Build Figure 1(a) by hand through the public Builder.
	b := tomography.NewBuilder()
	v1, v2, v3, v4, v5 := b.AddNode(), b.AddNode(), b.AddNode(), b.AddNode(), b.AddNode()
	e1 := b.AddLink(v4, v3, "e1")
	e2 := b.AddLink(v5, v3, "e2")
	e3 := b.AddLink(v3, v1, "e3")
	e4 := b.AddLink(v3, v2, "e4")
	b.AddPath("P1", e1, e3)
	b.AddPath("P2", e2, e3)
	b.AddPath("P3", e2, e4)
	b.Correlate(e1, e2)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	if res := tomography.CheckIdentifiability(top, 0); !res.Identifiable {
		t.Fatal("Figure 1(a) must be identifiable")
	}

	model, err := congestion.NewTable(4, []congestion.GroupTable{
		{
			Links: []int{0, 1},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: 0.60},
				{Links: bitset.FromIndices(0), P: 0.10},
				{Links: bitset.FromIndices(1), P: 0.12},
				{Links: bitset.FromIndices(0, 1), P: 0.18},
			},
		},
		{Links: []int{2}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.8}, {Links: bitset.FromIndices(2), P: 0.2},
		}},
		{Links: []int{3}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.9}, {Links: bitset.FromIndices(3), P: 0.1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: top, Model: model, Snapshots: 150000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := tomography.NewEmpirical(rec)
	if err != nil {
		t.Fatal(err)
	}

	truth := congestion.Marginals(model)
	corr, err := tomography.Correlation(top, src, tomography.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range truth {
		if math.Abs(corr.CongestionProb[k]-w) > 0.02 {
			t.Fatalf("correlation link %d: %v vs truth %v", k, corr.CongestionProb[k], w)
		}
	}

	if _, err := tomography.Independence(top, src, tomography.Options{}); err != nil {
		t.Fatal(err)
	}

	thm, err := tomography.Theorem(top, src, tomography.TheoremOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range truth {
		if math.Abs(thm.CongestionProb[k]-w) > 0.02 {
			t.Fatalf("theorem link %d: %v vs truth %v", k, thm.CongestionProb[k], w)
		}
	}
}

// batchScenarios builds a small fleet of scenarios over the Figure-1(a)
// topology, varying seed and congested fraction.
func batchScenarios(t *testing.T) []*tomography.Scenario {
	t.Helper()
	var out []*tomography.Scenario
	for i := 0; i < 4; i++ {
		s, err := tomography.NewScenario(tomography.ScenarioConfig{
			Topology:      tomography.Figure1A(),
			FracCongested: 0.25 + 0.25*float64(i%2),
			Level:         scenario.LooseCorrelation,
			Seed:          int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// TestEvaluateBatch exercises the facade's parallel scenario-batch API:
// results must arrive in input order, carry both algorithms' outputs and
// error samples, and be bit-identical between a serial and a parallel run
// of the same batch (the runner's determinism guarantee).
func TestEvaluateBatch(t *testing.T) {
	scenarios := batchScenarios(t)
	opts := tomography.BatchOptions{Snapshots: 3000, Seed: 9, Workers: 1}

	var progress []int
	opts.Progress = func(done, total int) {
		progress = append(progress, done)
		if total != len(scenarios) {
			t.Errorf("progress total = %d, want %d", total, len(scenarios))
		}
	}
	serial, err := tomography.EvaluateBatch(context.Background(), scenarios, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(scenarios) {
		t.Fatalf("%d results, want %d", len(serial), len(scenarios))
	}
	if len(progress) != len(scenarios) {
		t.Fatalf("%d progress calls, want %d", len(progress), len(scenarios))
	}
	for i, res := range serial {
		if res.Err != nil {
			t.Fatalf("scenario %d failed: %v", i, res.Err)
		}
		if res.Scenario != scenarios[i] {
			t.Fatalf("result %d out of order", i)
		}
		if res.Correlation == nil || res.Independence == nil {
			t.Fatalf("scenario %d missing algorithm results", i)
		}
		want := res.Scenario.PotentiallyCongested.Len()
		if len(res.CorrErrors) != want || len(res.IndepErrors) != want {
			t.Fatalf("scenario %d: %d/%d error samples, want %d",
				i, len(res.CorrErrors), len(res.IndepErrors), want)
		}
		for j := 1; j < len(res.CorrErrors); j++ {
			if res.CorrErrors[j] < res.CorrErrors[j-1] {
				t.Fatalf("scenario %d: CorrErrors not sorted", i)
			}
		}
	}

	opts.Progress = nil
	opts.Workers = 4
	parallel, err := tomography.EvaluateBatch(context.Background(), scenarios, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel batch differs from serial batch")
	}
}

func TestEvaluateBatchValidation(t *testing.T) {
	if _, err := tomography.EvaluateBatch(context.Background(), nil, tomography.BatchOptions{}); err == nil {
		t.Fatal("zero snapshots accepted")
	}
	// Regression: negative knobs used to pass straight through to netsim.
	if _, err := tomography.EvaluateBatch(context.Background(), batchScenarios(t),
		tomography.BatchOptions{Snapshots: 100, Workers: -1}); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := tomography.EvaluateBatch(context.Background(), batchScenarios(t),
		tomography.BatchOptions{Snapshots: 100, PacketsPerPath: -5}); err == nil {
		t.Fatal("negative packets per path accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := tomography.EvaluateBatch(ctx, batchScenarios(t), tomography.BatchOptions{Snapshots: 100})
	if err == nil {
		t.Fatal("cancelled context not reported")
	}
}

func TestPublicMergeTransform(t *testing.T) {
	top := tomography.Figure1B()
	if res := tomography.CheckIdentifiability(top, 0); res.Identifiable {
		t.Fatal("Figure 1(b) must violate Assumption 4")
	}
	merged, mm, err := tomography.MergeTransform(top)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumLinks() != 2 {
		t.Fatalf("merged links = %d, want 2", merged.NumLinks())
	}
	if len(mm.OriginalLinks) != 2 {
		t.Fatalf("merge map has %d entries", len(mm.OriginalLinks))
	}
}
