// Opt-in performance regression smoke: CI sets PERF_SMOKE=1 on a
// multi-core runner to assert the multicore pair-count kernel actually
// scales, not just that it stays bit-identical. Kept out of the default
// test run because wall-clock assertions are meaningless on loaded or
// single-core machines.
package tomography_test

import (
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/snapstore"
)

// TestBatchPairCountParallelSpeedup fails if fanning CountPairsGoodWS out
// over 8 workers does not beat the serial workspace kernel by at least 2×
// on the BenchmarkBatchPairCount workload shape. The 2× bar is deliberately
// loose for an 8-way fan-out: the kernel is memory-bound, so perfect
// scaling is not expected, but a broken fan-out (workers serialized on a
// lock, partial sums false-sharing) lands near 1× and trips it.
func TestBatchPairCountParallelSpeedup(t *testing.T) {
	if os.Getenv("PERF_SMOKE") == "" {
		t.Skip("set PERF_SMOKE=1 to run wall-clock speedup assertions")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful parallel speedup, have %d", n)
	}

	const (
		paths     = 128
		snapshots = 6_000_000 // 128 columns x 750 KB ≈ 96 MB, past L3
		fanout    = 12
		rounds    = 3 // best-of-N guards against a one-off scheduling stall
	)
	rng := rand.New(rand.NewSource(7))
	store := snapstore.NewFixed(paths, snapshots)
	for i := 0; i < snapshots; i++ {
		store.SetBit(rng.Intn(paths), i)
	}
	var pairs []snapstore.Pair
	for i := 0; i < paths; i++ {
		for d := 1; d <= fanout && i+d < paths; d++ {
			pairs = append(pairs, snapstore.Pair{A: i, B: i + d})
		}
	}
	out := make([]int, len(pairs))
	var ws snapstore.CountWorkspace
	defer ws.Close()

	timeKernel := func(workers int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			store.CountPairsGoodWS(&ws, pairs, out, workers)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	// Warm the pool and the page cache before timing either side.
	store.CountPairsGoodWS(&ws, pairs, out, 8)
	serial := timeKernel(1)
	parallel := timeKernel(8)
	speedup := float64(serial) / float64(parallel)
	t.Logf("pair counting over %d pairs: serial %v, 8 workers %v (%.2fx)",
		len(pairs), serial, parallel, speedup)
	if speedup < 2 {
		t.Errorf("8-worker speedup %.2fx < 2x over serial (serial %v, parallel %v)",
			speedup, serial, parallel)
	}
}
