package tomography_test

import (
	"testing"

	tomography "repro"
)

// Table-driven error-path tests for the estimator registry, pinning EXACT
// error strings: operators grep logs and scripts match on these messages, so
// a refactor that rewords them is a breaking change that must show up here.
func TestEstimateErrorStrings(t *testing.T) {
	top := tomography.Figure1A() // 3 paths, 4 links
	plan, err := tomography.Compile(top, tomography.PlanOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	// A source whose path count disagrees with the plan's topology.
	mismatched := tomography.NewStreaming(5)
	mismatched.Append(tomography.NewPathSet(0, 2))
	// A well-formed source for the nil-plan case.
	good := tomography.NewStreaming(top.NumPaths())
	good.Append(tomography.NewPathSet(0))

	cases := []struct {
		name      string
		estimator string
		plan      *tomography.Plan
		src       tomography.Source
		wantErr   string
	}{
		{
			name:      "unknown estimator name",
			estimator: "gradient-descent",
			plan:      plan,
			src:       good,
			wantErr:   `tomography: unknown estimator "gradient-descent" (registered: [correlation independence mle theorem])`,
		},
		{
			name:      "nil plan",
			estimator: "correlation",
			plan:      nil,
			src:       good,
			wantErr:   `tomography: Estimate "correlation": nil plan (Compile the topology first)`,
		},
		{
			name:      "mismatched topology (correlation)",
			estimator: "correlation",
			plan:      plan,
			src:       mismatched,
			wantErr:   "core: source has 5 paths, topology 3",
		},
		{
			name:      "mismatched topology (independence)",
			estimator: "independence",
			plan:      plan,
			src:       mismatched,
			wantErr:   "core: source has 5 paths, topology 3",
		},
		{
			name:      "source without pattern probabilities (theorem)",
			estimator: "theorem",
			plan:      plan,
			src:       plainSource{numPaths: top.NumPaths()},
			wantErr:   "tomography: the theorem estimator needs exact congestion-pattern probabilities (measure.PatternSource); tomography_test.plainSource does not provide them",
		},
		{
			name:      "source without pair frequencies (mle)",
			estimator: "mle",
			plan:      plan,
			src:       plainSource{numPaths: top.NumPaths()},
			wantErr:   "tomography: the mle estimator needs per-path and per-pair good-frequencies (FastPairSource); tomography_test.plainSource does not provide them",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := tomography.Estimate(tc.estimator, tc.plan, tc.src, tomography.EstimateOptions{})
			if err == nil {
				t.Fatalf("Estimate succeeded (result %+v), want error %q", res, tc.wantErr)
			}
			if err.Error() != tc.wantErr {
				t.Fatalf("error mismatch:\n got: %s\nwant: %s", err, tc.wantErr)
			}
			if res != nil {
				t.Fatal("non-nil result alongside an error")
			}
		})
	}
}

// TestRegisterEstimatorPanics pins the registration-time misuse panics
// (estimator wiring is a program-initialization concern, like database/sql
// drivers).
func TestRegisterEstimatorPanics(t *testing.T) {
	assertPanicMessage := func(name, want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic, want %q", name, want)
			}
			if msg, ok := r.(string); !ok || msg != want {
				t.Fatalf("%s: panic %v, want %q", name, r, want)
			}
		}()
		fn()
	}
	assertPanicMessage("duplicate registration",
		"tomography: RegisterEstimator called twice for correlation",
		func() { tomography.RegisterEstimator(fakeEstimator{name: "correlation"}) })
	assertPanicMessage("empty name",
		"tomography: RegisterEstimator with empty name",
		func() { tomography.RegisterEstimator(fakeEstimator{name: ""}) })
}

// fakeEstimator is a registry probe that must never actually run.
type fakeEstimator struct{ name string }

func (f fakeEstimator) Name() string { return f.name }
func (f fakeEstimator) Estimate(*tomography.Plan, tomography.Source, tomography.EstimateOptions) (*tomography.EstimateResult, error) {
	panic("fakeEstimator must not run")
}
