// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Section 5), plus ablation benchmarks for the repo's design
// choices and a serial-vs-parallel comparison of the runner engine.
//
// Every BenchmarkFigureNx regenerates the corresponding figure at the
// "small" scale (the full pipeline — topology generation, scenario
// construction, snapshot simulation, both inference algorithms, metrics) and
// reports the headline numbers as custom benchmark metrics:
//
//	corr@0.1 / indep@0.1 — % of potentially congested links with absolute
//	                       error ≤ 0.1 (the paper's CDF reading), or
//	corr-mean / indep-mean for the Figure-3(a)/(b) sweeps.
//
// Run the full harness with:
//
//	go test -bench=. -benchmem
//
// and regenerate any figure at the published scale with:
//
//	go run ./cmd/experiment -figure 3c -scale paper
package tomography_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"repro/internal/benchmeta"
	"repro/internal/bitset"
	"repro/internal/brite"
	"repro/internal/congestion"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/measure"
	"repro/internal/mle"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/topology"
)

// benchParams returns the standard benchmark parameters. Benchmarks use the
// small scale so the whole suite stays within a CI budget; regenerate
// medium/paper-scale results with cmd/experiment (see README.md).
func benchParams() experiments.Params {
	return experiments.Params{Scale: experiments.Small, Seed: 1}
}

// benchFigureCDF runs a CDF-style figure and reports both algorithms'
// fraction of links within 0.1 absolute error.
func benchFigureCDF(b *testing.B, id string) {
	b.Helper()
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Run(context.Background(), id, benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAtError(b, fig, 0.1)
}

// reportAtError extracts the CDF value at the given error level for both
// series and reports them as benchmark metrics.
func reportAtError(b *testing.B, fig *experiments.Figure, at float64) {
	b.Helper()
	for _, s := range fig.Series {
		for i, x := range s.X {
			if x == at {
				switch s.Label {
				case "Correlation":
					b.ReportMetric(s.Y[i], "corr@0.1")
				case "Independence":
					b.ReportMetric(s.Y[i], "indep@0.1")
				}
				break
			}
		}
	}
}

// benchFigureSweep runs a sweep-style figure (3a/3b) and reports the mean of
// each series across the sweep.
func benchFigureSweep(b *testing.B, id string) {
	b.Helper()
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Run(context.Background(), id, benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range fig.Series {
		switch s.Label {
		case "Correlation":
			b.ReportMetric(eval.Mean(s.Y), "corr-mean")
		case "Independence":
			b.ReportMetric(eval.Mean(s.Y), "indep-mean")
		}
	}
}

// --- One benchmark per paper figure. ---

// BenchmarkFigure3a: mean absolute error vs % congested links (Brite,
// highly correlated congestion).
func BenchmarkFigure3a(b *testing.B) { benchFigureSweep(b, "3a") }

// BenchmarkFigure3b: 90th-percentile error vs % congested links.
func BenchmarkFigure3b(b *testing.B) { benchFigureSweep(b, "3b") }

// BenchmarkFigure3c: error CDF, 10% congested, highly correlated (Brite).
func BenchmarkFigure3c(b *testing.B) { benchFigureCDF(b, "3c") }

// BenchmarkFigure3d: error CDF, 10% congested, loosely correlated (Brite).
func BenchmarkFigure3d(b *testing.B) { benchFigureCDF(b, "3d") }

// BenchmarkFigure4a: 25% of congested links unidentifiable (Brite).
func BenchmarkFigure4a(b *testing.B) { benchFigureCDF(b, "4a") }

// BenchmarkFigure4b: 50% of congested links unidentifiable (Brite).
func BenchmarkFigure4b(b *testing.B) { benchFigureCDF(b, "4b") }

// BenchmarkFigure4c: 25% of congested links unidentifiable (PlanetLab).
func BenchmarkFigure4c(b *testing.B) { benchFigureCDF(b, "4c") }

// BenchmarkFigure4d: 50% of congested links unidentifiable (PlanetLab).
func BenchmarkFigure4d(b *testing.B) { benchFigureCDF(b, "4d") }

// BenchmarkFigure5a: 25% of congested links mislabeled (Brite).
func BenchmarkFigure5a(b *testing.B) { benchFigureCDF(b, "5a") }

// BenchmarkFigure5b: 50% of congested links mislabeled (Brite).
func BenchmarkFigure5b(b *testing.B) { benchFigureCDF(b, "5b") }

// BenchmarkFigure5c: 25% of congested links mislabeled (PlanetLab).
func BenchmarkFigure5c(b *testing.B) { benchFigureCDF(b, "5c") }

// BenchmarkFigure5d: 50% of congested links mislabeled (PlanetLab).
func BenchmarkFigure5d(b *testing.B) { benchFigureCDF(b, "5d") }

// --- Runner throughput: serial vs parallel sweep. ---

// benchSweepWorkers runs the Figure-3a sweep (5 points × 2 trials, reduced
// snapshot budget) with the given worker-pool size. Comparing the Serial and
// Parallel variants measures the speedup of the internal/runner engine; the
// figures they produce are bit-identical.
func benchSweepWorkers(b *testing.B, workers int) {
	b.Helper()
	p := benchParams()
	p.Workers = workers
	p.Trials = 2
	p.Snapshots = 400
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3a(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial: the Figure-3a sweep on a single worker.
func BenchmarkSweepSerial(b *testing.B) { benchSweepWorkers(b, 1) }

// BenchmarkSweepParallel: the same sweep on GOMAXPROCS workers.
func BenchmarkSweepParallel(b *testing.B) { benchSweepWorkers(b, 0) }

// --- Ablations (quantifying the repo's design choices). ---

// benchScenario builds the standard ablation scenario (Figure-3c setup) and
// its measurement source once per benchmark invocation.
func benchScenario(b *testing.B, snapshots int, mode netsim.Mode, packets int) (*scenario.Scenario, *measure.Empirical) {
	b.Helper()
	net, err := brite.Generate(brite.Config{ASes: 40, EdgesPerAS: 2, Paths: 150, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	s, err := scenario.Brite(scenario.BriteConfig{
		Net: net, FracCongested: 0.10, Level: scenario.HighCorrelation, Seed: 31,
	})
	if err != nil {
		b.Fatal(err)
	}
	rec, err := netsim.Run(netsim.Config{
		Topology: s.Topology, Model: s.Model, Snapshots: snapshots, Seed: 97,
		Mode: mode, PacketsPerPath: packets,
	})
	if err != nil {
		b.Fatal(err)
	}
	src, err := measure.NewEmpirical(rec)
	if err != nil {
		b.Fatal(err)
	}
	return s, src
}

// BenchmarkAblationPairsOff quantifies what the pair equations (Eq. 10)
// contribute: the correlation algorithm with and without them.
func BenchmarkAblationPairsOff(b *testing.B) {
	for _, pairs := range []bool{true, false} {
		name := "pairs-on"
		if !pairs {
			name = "pairs-off"
		}
		b.Run(name, func(b *testing.B) {
			s, src := benchScenario(b, 1200, netsim.StateLevel, 0)
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.Correlation(s.Topology, src, core.Options{DisablePairs: !pairs})
				if err != nil {
					b.Fatal(err)
				}
			}
			errs := eval.AbsErrors(s.Truth, res.CongestionProb, s.PotentiallyCongested)
			b.ReportMetric(float64(res.System.Rank), "rank")
			b.ReportMetric(eval.Mean(errs), "mean-err")
		})
	}
}

// BenchmarkAblationSolver compares the underdetermined-system completions:
// the paper's L1 (LP), minimum-L2-norm, and the overdetermined
// least-squares formulation.
func BenchmarkAblationSolver(b *testing.B) {
	cases := []struct {
		name string
		opts core.Options
	}{
		{"l1", core.Options{}},
		{"min-norm", core.Options{ForceMinNorm: true}},
		{"least-squares", core.Options{UseAllEquations: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			s, src := benchScenario(b, 1200, netsim.StateLevel, 0)
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.Correlation(s.Topology, src, c.opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			errs := eval.AbsErrors(s.Truth, res.CongestionProb, s.PotentiallyCongested)
			b.ReportMetric(eval.Mean(errs), "mean-err")
			b.ReportMetric(100*eval.FracBelow(errs, 0.1), "frac@0.1")
		})
	}
}

// BenchmarkAblationPacketLevel compares state-level measurement (exact
// separability) against the full packet-level data path at two probe rates.
func BenchmarkAblationPacketLevel(b *testing.B) {
	cases := []struct {
		name    string
		mode    netsim.Mode
		packets int
	}{
		{"state-level", netsim.StateLevel, 0},
		{"packet-level-100", netsim.PacketLevel, 100},
		{"packet-level-400", netsim.PacketLevel, 400},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, src := benchScenario(b, 600, c.mode, c.packets)
				res, err := core.Correlation(s.Topology, src, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					errs := eval.AbsErrors(s.Truth, res.CongestionProb, s.PotentiallyCongested)
					b.ReportMetric(eval.Mean(errs), "mean-err")
				}
			}
		})
	}
}

// BenchmarkAblationSnapshots sweeps the measurement duration N: accuracy as
// a function of how long the network is observed.
func BenchmarkAblationSnapshots(b *testing.B) {
	for _, n := range []int{250, 1000, 4000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var meanErr float64
			for i := 0; i < b.N; i++ {
				s, src := benchScenario(b, n, netsim.StateLevel, 0)
				res, err := core.Correlation(s.Topology, src, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				errs := eval.AbsErrors(s.Truth, res.CongestionProb, s.PotentiallyCongested)
				meanErr = eval.Mean(errs)
			}
			b.ReportMetric(meanErr, "mean-err")
		})
	}
}

// BenchmarkAblationMLE compares the independence baselines: the log-linear
// least-squares solver vs the composite-likelihood MLE (same information
// set, different weighting), on the correlated Figure-3c scenario.
func BenchmarkAblationMLE(b *testing.B) {
	s, src := benchScenario(b, 1200, netsim.StateLevel, 0)
	b.Run("linear", func(b *testing.B) {
		var res *core.Result
		var err error
		for i := 0; i < b.N; i++ {
			res, err = core.Independence(s.Topology, src, core.Options{UseAllEquations: true})
			if err != nil {
				b.Fatal(err)
			}
		}
		errs := eval.AbsErrors(s.Truth, res.CongestionProb, s.PotentiallyCongested)
		b.ReportMetric(eval.Mean(errs), "mean-err")
	})
	b.Run("mle", func(b *testing.B) {
		var res *mle.Result
		var err error
		for i := 0; i < b.N; i++ {
			res, err = mle.Estimate(s.Topology, src, mle.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		errs := eval.AbsErrors(s.Truth, res.CongestionProb, s.PotentiallyCongested)
		b.ReportMetric(eval.Mean(errs), "mean-err")
	})
}

// BenchmarkAblationTheorem compares the exact Appendix-A algorithm against
// the practical Section-4 algorithm on the Figure-1(a) toy, where both are
// applicable: exactness vs cost.
func BenchmarkAblationTheorem(b *testing.B) {
	top := topology.Figure1A()
	model, err := congestion.NewTable(4, []congestion.GroupTable{
		{
			Links: []int{0, 1},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: 0.60},
				{Links: bitset.FromIndices(0), P: 0.10},
				{Links: bitset.FromIndices(1), P: 0.12},
				{Links: bitset.FromIndices(0, 1), P: 0.18},
			},
		},
		{Links: []int{2}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.8}, {Links: bitset.FromIndices(2), P: 0.2},
		}},
		{Links: []int{3}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.9}, {Links: bitset.FromIndices(3), P: 0.1},
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	rec, err := netsim.Run(netsim.Config{Topology: top, Model: model, Snapshots: 50000, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	src, err := measure.NewEmpirical(rec)
	if err != nil {
		b.Fatal(err)
	}
	truth := congestion.Marginals(model)

	b.Run("theorem", func(b *testing.B) {
		var res *core.TheoremResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = core.Theorem(top, src, core.TheoremOptions{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(eval.Mean(eval.AbsErrors(truth, res.CongestionProb, nil)), "mean-err")
	})
	b.Run("correlation", func(b *testing.B) {
		var res *core.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, err = core.Correlation(top, src, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(eval.Mean(eval.AbsErrors(truth, res.CongestionProb, nil)), "mean-err")
	})
}

// --- Columnar measurement-store benchmarks (BENCH_measure.json). ---

// rowMajorSource replays the pre-columnar Empirical implementation — a scan
// over all row-major snapshots per query — as the baseline the columnar
// store is measured against.
type rowMajorSource struct {
	numPaths int
	rows     []*bitset.Set
}

func (s *rowMajorSource) NumPaths() int { return s.numPaths }

func (s *rowMajorSource) ProbPathsGood(paths *bitset.Set) float64 {
	hits := 0
	for _, r := range s.rows {
		if !r.Intersects(paths) {
			hits++
		}
	}
	return float64(hits) / float64(len(s.rows))
}

// benchSink defeats dead-code elimination of benchmark query results.
var benchSink float64

// writeBenchJSON merges the given metrics into BENCH_measure.json at the
// repo root, so the columnar-vs-row-major numbers are captured as an
// artifact of every benchmark run (CI runs this in smoke mode).
func writeBenchJSON(b *testing.B, bench string, metrics map[string]float64) {
	b.Helper()
	writeBenchJSONFile(b, "BENCH_measure.json", bench, metrics)
}

// writeBenchJSONFile merges the metrics into the named benchmark artifact,
// stamping the machine metadata (GOMAXPROCS, GOAMD64, CPU model, page size,
// mmap availability, …) every artifact carries so perf numbers across PRs
// are interpretable. The BENCH_JSON_SUFFIX environment variable inserts a
// suffix before ".json" — the CI mechanism that keeps the GOAMD64=v2 and
// =v3 legs in separate artifacts. It takes a testing.TB so env-gated smoke
// tests (not just benchmarks) can record artifacts too.
func writeBenchJSONFile(tb testing.TB, path, bench string, metrics map[string]float64) {
	tb.Helper()
	if s := os.Getenv("BENCH_JSON_SUFFIX"); s != "" {
		path = strings.TrimSuffix(path, ".json") + s + ".json"
	}
	all := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &all)
	}
	enc := func(v any) json.RawMessage {
		data, err := json.Marshal(v)
		if err != nil {
			tb.Fatal(err)
		}
		return data
	}
	all[bench] = enc(metrics)
	all["machine"] = enc(benchmeta.Collect())
	data, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		tb.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		tb.Fatal(err)
	}
}

// measureWorkload builds the store-benchmark fixture: a Brite topology with
// 50 paths observed for 10000 snapshots, plus a query mix shaped like
// BuildEquations' lookups (every single path, many pairs, some larger sets).
func measureWorkload(b *testing.B) (*scenario.Scenario, *netsim.Record, []*bitset.Set) {
	b.Helper()
	net, err := brite.Generate(brite.Config{ASes: 20, EdgesPerAS: 2, Paths: 50, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	s, err := scenario.Brite(scenario.BriteConfig{
		Net: net, FracCongested: 0.10, Level: scenario.HighCorrelation, Seed: 31,
	})
	if err != nil {
		b.Fatal(err)
	}
	rec, err := netsim.Run(netsim.Config{
		Topology: s.Topology, Model: s.Model, Snapshots: 10000, Seed: 97,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	numPaths := s.Topology.NumPaths()
	var queries []*bitset.Set
	// Distinct queries only: a repeat within one cycle would hit the
	// columnar side's memo caches and contaminate the kernel comparison.
	seen := map[string]bool{}
	add := func(q *bitset.Set) {
		if k := q.Key(); !seen[k] {
			seen[k] = true
			queries = append(queries, q)
		}
	}
	for i := 0; i < numPaths; i++ {
		add(bitset.FromIndices(i))
	}
	for q := 0; q < 500; q++ {
		add(bitset.FromIndices(rng.Intn(numPaths), rng.Intn(numPaths)))
	}
	for q := 0; q < 50; q++ {
		add(bitset.FromIndices(rng.Intn(numPaths), rng.Intn(numPaths), rng.Intn(numPaths)))
	}
	rng.Shuffle(len(queries), func(i, j int) { queries[i], queries[j] = queries[j], queries[i] })
	return s, rec, queries
}

// BenchmarkProbPathsGood compares one all-good probability query on the
// row-major baseline (scan all N snapshot bitsets) against the columnar
// store (OR of bit columns + popcount). The columnar side re-wraps the
// record each time the query list cycles, so every measured query is a
// cache miss — the speedup is the kernel's, not the memo's.
func BenchmarkProbPathsGood(b *testing.B) {
	_, rec, queries := measureWorkload(b)
	rows := rec.Paths.Rows()
	metrics := map[string]float64{"snapshots": float64(rec.Snapshots()), "paths": float64(rec.NumPaths())}

	b.Run("row-major", func(b *testing.B) {
		src := &rowMajorSource{numPaths: rec.NumPaths(), rows: rows}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink += src.ProbPathsGood(queries[i%len(queries)])
		}
		metrics["row-major-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("columnar", func(b *testing.B) {
		src, err := measure.NewEmpirical(rec)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := i % len(queries)
			if q == 0 && i > 0 {
				// Fresh wrapper: drop the memo caches so the kernel is measured.
				if src, err = measure.NewEmpirical(rec); err != nil {
					b.Fatal(err)
				}
			}
			benchSink += src.ProbPathsGood(queries[q])
		}
		metrics["columnar-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if rm, cc := metrics["row-major-ns/op"], metrics["columnar-ns/op"]; rm > 0 && cc > 0 {
		metrics["speedup"] = rm / cc
		b.Logf("ProbPathsGood at %d snapshots / %d paths: row-major %.0f ns/op, columnar %.0f ns/op (%.0f×)",
			rec.Snapshots(), rec.NumPaths(), rm, cc, metrics["speedup"])
	}
	writeBenchJSON(b, "BenchmarkProbPathsGood", metrics)
}

// BenchmarkBuildEquations runs the full Section-4 equation selection on the
// two source implementations. The columnar side wraps the record fresh each
// iteration, so its caches start cold like a real run's.
func BenchmarkBuildEquations(b *testing.B) {
	s, rec, _ := measureWorkload(b)
	metrics := map[string]float64{"snapshots": float64(rec.Snapshots()), "paths": float64(rec.NumPaths())}

	b.Run("row-major", func(b *testing.B) {
		src := &rowMajorSource{numPaths: rec.NumPaths(), rows: rec.Paths.Rows()}
		var sys *core.EquationSystem
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			sys, err = core.BuildEquations(s.Topology, src, core.BuildOptions{})
			if err != nil {
				b.Fatal(err)
			}
		}
		metrics["row-major-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		metrics["rank"] = float64(sys.Rank)
	})
	b.Run("columnar", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src, err := measure.NewEmpirical(rec)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.BuildEquations(s.Topology, src, core.BuildOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		metrics["columnar-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if rm, cc := metrics["row-major-ns/op"], metrics["columnar-ns/op"]; rm > 0 && cc > 0 {
		metrics["speedup"] = rm / cc
		b.Logf("BuildEquations: row-major %.0f ns/op, columnar %.0f ns/op (%.1f×)", rm, cc, metrics["speedup"])
	}
	writeBenchJSON(b, "BenchmarkBuildEquations", metrics)
}
