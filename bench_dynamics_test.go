// Temporal-dynamics benchmarks (BENCH_dynamics.json): price the
// Markov-modulated simulation engine and quantify the win of incremental
// sliding-window inference over rebuilding a batch source per checkpoint.
package tomography_test

import (
	"testing"

	tomography "repro"
	"repro/internal/brite"
	"repro/internal/netsim"
	"repro/internal/scenario"
)

// dynamicsWorkload builds the benchmark fixture: a mid-sized Brite network
// with a flash-crowd-style Markov-modulated process over its topology. The
// network is returned too so the i.i.d. baseline runs on the identical
// topology (it needs the router backing).
func dynamicsWorkload(b *testing.B) (*brite.Network, tomography.CongestionProcess) {
	b.Helper()
	net, err := brite.Generate(brite.Config{ASes: 40, EdgesPerAS: 2, Paths: 150, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	top := net.Topology
	var groups []tomography.MarkovGroup
	for p := 0; p < top.NumSets() && len(groups) < 15; p++ {
		links := top.CorrelationSet(p).Indices()
		if len(links) < 2 {
			continue
		}
		on := make([]float64, len(links))
		off := make([]float64, len(links))
		for i := range links {
			on[i] = 0.7
			off[i] = 0.01
		}
		groups = append(groups, tomography.MarkovGroup{
			Links:    links,
			Chain:    tomography.MarkovChain{POn: 0.01, MeanBurst: 40},
			OnProb:   on,
			OffProb:  off,
			Coupling: 0.8,
		})
	}
	proc, err := tomography.NewMarkovModulated(tomography.MarkovConfig{
		NumLinks: top.NumLinks(),
		Groups:   groups,
		Global:   &tomography.MarkovChain{POn: 0.005, MeanBurst: 60},
	})
	if err != nil {
		b.Fatal(err)
	}
	return net, proc
}

// BenchmarkDynamicsSim prices the sequential Markov-modulated engine against
// the i.i.d. block-parallel simulator on the same topology (both serial, so
// the delta is the dynamics bookkeeping, not parallelism).
func BenchmarkDynamicsSim(b *testing.B) {
	const snapshots = 5000
	net, proc := dynamicsWorkload(b)
	top := net.Topology
	metrics := map[string]float64{
		"snapshots": snapshots,
		"paths":     float64(top.NumPaths()),
		"links":     float64(top.NumLinks()),
	}

	b.Run("markov-modulated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tomography.SimulateDynamic(tomography.DynamicSimConfig{
				Topology: top, Process: proc, Snapshots: snapshots, Seed: 9, Workers: 1,
			}); err != nil {
				b.Fatal(err)
			}
		}
		ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		metrics["dynamic-ns/op"] = ns
		metrics["dynamic-snapshots/sec"] = snapshots / (ns / 1e9)
	})
	// Same engine with the per-path column emission fanned out over 8
	// workers (the modulator advance stays sequential either way); the
	// record is bit-identical to the serial run, so the delta is pure
	// parallel speedup — bounded by the machine's core count.
	b.Run("markov-modulated-parallel-8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tomography.SimulateDynamic(tomography.DynamicSimConfig{
				Topology: top, Process: proc, Snapshots: snapshots, Seed: 9, Workers: 8,
			}); err != nil {
				b.Fatal(err)
			}
		}
		ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		metrics["dynamic-parallel-8-ns/op"] = ns
		metrics["dynamic-parallel-8-snapshots/sec"] = snapshots / (ns / 1e9)
	})
	b.Run("iid-baseline", func(b *testing.B) {
		s, err := scenario.Brite(scenario.BriteConfig{
			Net: net, FracCongested: 0.10, Level: scenario.HighCorrelation, Seed: 31,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := netsim.Run(netsim.Config{
				Topology: s.Topology, Model: s.Model, Snapshots: snapshots, Seed: 9, Parallelism: 1,
			}); err != nil {
				b.Fatal(err)
			}
		}
		ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		metrics["iid-ns/op"] = ns
		metrics["iid-snapshots/sec"] = snapshots / (ns / 1e9)
	})
	if d, s := metrics["dynamic-snapshots/sec"], metrics["iid-snapshots/sec"]; d > 0 && s > 0 {
		b.Logf("dynamic %.0f snapshots/sec (%.0f at 8 workers) vs i.i.d. %.0f snapshots/sec (%.2f× overhead)",
			d, metrics["dynamic-parallel-8-snapshots/sec"], s, s/d)
	}
	writeBenchJSONFile(b, "BENCH_dynamics.json", "BenchmarkDynamicsSim", metrics)
}

// BenchmarkWindowedInference quantifies sliding-window inference against the
// naive alternative: at every checkpoint, rebuilding a fresh batch source
// over the last W rows and estimating through the same plan.
//
// Two layers are measured separately. The measurement-maintenance layer
// (ingestion + the single/pair probability fills an estimate's RHS needs) is
// where the incremental window wins: it pays one O(paths/64) Append per
// snapshot, while the rebuild baseline re-materializes all W rows per
// checkpoint. The end-to-end layer adds the solver, which dominates both
// sides equally — its headline is parity: windowed estimates are
// bit-identical to batch at no extra cost, with bounded memory.
func BenchmarkWindowedInference(b *testing.B) {
	const (
		snapshots = 4000
		window    = 512
		// stride is the estimate cadence of the end-to-end (solver) layer;
		// the maintenance layer refreshes its RHS more often, as an
		// always-current monitor would.
		stride            = 64
		maintenanceStride = 8
	)
	net, proc := dynamicsWorkload(b)
	top := net.Topology
	rec, err := tomography.SimulateDynamic(tomography.DynamicSimConfig{
		Topology: top, Process: proc, Snapshots: snapshots, Seed: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := tomography.Compile(top, tomography.PlanOptions{Lazy: true})
	if err != nil {
		b.Fatal(err)
	}
	metrics := map[string]float64{
		"snapshots": snapshots,
		"window":    window,
		"stride":    stride,
		"paths":     float64(top.NumPaths()),
		"links":     float64(top.NumLinks()),
	}
	checkpoints := 0
	for t := window - 1; t < snapshots; t++ {
		if (t+1)%stride == 0 || t == snapshots-1 {
			checkpoints++
		}
	}
	metrics["checkpoints"] = float64(checkpoints)

	// rows is the pre-materialized probe feed: a live monitor receives each
	// snapshot as a ready congested-path set, so materialization from the
	// record is not charged to either side.
	rows := rec.Paths.Rows()

	// rhsFill mimics an estimate's probability lookups: every single path
	// and a band of pairs (the dominant query mix of BuildEquations).
	rhsFill := func(src *tomography.Empirical) float64 {
		sum := 0.0
		n := top.NumPaths()
		for i := 0; i < n; i++ {
			sum += src.ProbPathGood(tomography.PathID(i))
			for j := i + 1; j < n && j < i+6; j++ {
				sum += src.ProbPairGood(tomography.PathID(i), tomography.PathID(j))
			}
		}
		return sum
	}

	b.Run("maintenance/sliding-window", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			win, err := tomography.NewSlidingWindow(top.NumPaths(), window)
			if err != nil {
				b.Fatal(err)
			}
			for t := 0; t < snapshots; t++ {
				win.Append(rows[t])
				if (t+1)%maintenanceStride == 0 && t+1 >= window {
					rhsFill(win)
				}
			}
		}
		metrics["maintenance-windowed-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("maintenance/rebuild-per-checkpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for t := 0; t < snapshots; t++ {
				if (t+1)%maintenanceStride != 0 || t+1 < window {
					continue
				}
				src, err := tomography.NewEmpirical(tomography.NewRecordFromRows(top.NumPaths(), rows[t-window+1:t+1]))
				if err != nil {
					b.Fatal(err)
				}
				rhsFill(src)
			}
		}
		metrics["maintenance-rebuild-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if w, r := metrics["maintenance-windowed-ns/op"], metrics["maintenance-rebuild-ns/op"]; w > 0 && r > 0 {
		metrics["maintenance-speedup"] = r / w
	}

	b.Run("sliding-window", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts, err := tomography.WindowedEstimate(top, rec,
				tomography.WindowConfig{Size: window, Plan: plan}, stride)
			if err != nil {
				b.Fatal(err)
			}
			if len(pts) != checkpoints {
				b.Fatalf("%d checkpoints, want %d", len(pts), checkpoints)
			}
		}
		ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		metrics["windowed-ns/op"] = ns
		// Inference consumption rate over the same 150-path topology the
		// dynamics engine generates for: a pipeline is generator-bound only
		// if BenchmarkDynamicsSim's snapshots/sec falls below this.
		metrics["windowed-snapshots/sec"] = snapshots / (ns / 1e9)
	})
	b.Run("rebuild-per-checkpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			done := 0
			for t := window - 1; t < snapshots; t++ {
				if (t+1)%stride != 0 && t != snapshots-1 {
					continue
				}
				var rows []*tomography.PathSet
				for ts := t - window + 1; ts <= t; ts++ {
					rows = append(rows, rec.PathSnapshot(ts))
				}
				src, err := tomography.NewEmpirical(tomography.NewRecordFromRows(top.NumPaths(), rows))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tomography.Estimate("correlation", plan, src, tomography.EstimateOptions{}); err != nil {
					b.Fatal(err)
				}
				done++
			}
			if done != checkpoints {
				b.Fatalf("%d checkpoints, want %d", done, checkpoints)
			}
		}
		metrics["rebuild-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if w, r := metrics["windowed-ns/op"], metrics["rebuild-ns/op"]; w > 0 && r > 0 {
		metrics["speedup"] = r / w
		b.Logf("measurement maintenance: windowed %.2f ms vs rebuild %.2f ms (%.1f×); end-to-end with solver: %.2f ms vs %.2f ms (%.2f×)",
			metrics["maintenance-windowed-ns/op"]/1e6, metrics["maintenance-rebuild-ns/op"]/1e6, metrics["maintenance-speedup"],
			w/1e6, r/1e6, metrics["speedup"])
	}
	writeBenchJSONFile(b, "BENCH_dynamics.json", "BenchmarkWindowedInference", metrics)
}
