// Command topogen generates measurement topologies and writes them as JSON.
//
// Usage:
//
//	topogen -family brite     -ases 80 -paths 500 -seed 1 > brite.json
//	topogen -family planetlab -routers 150 -vantage 45 -paths 500 > pl.json
//	topogen -family britefile -in as20.brite -paths 300 > imported.json
//	topogen -family fig1a > toy.json
//
// The britefile family imports a BRITE flat-file topology (the text format
// the original BRITE generator writes) and synthesizes measurement paths
// over it. The emitted JSON can be fed to cmd/tomo and is re-validated on
// load.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/brite"
	"repro/internal/planetlab"
	"repro/internal/topology"
)

func main() {
	var (
		family  = flag.String("family", "brite", "topology family: brite | britefile | planetlab | fig1a | fig1b")
		ases    = flag.Int("ases", 80, "brite: number of ASes")
		edges   = flag.Int("edges-per-as", 2, "brite: Barabási–Albert attachment degree")
		inPath  = flag.String("in", "-", "britefile: BRITE flat file to import ('-' = stdin)")
		routers = flag.Int("routers", 150, "planetlab: number of routers")
		vantage = flag.Int("vantage", 45, "planetlab: number of vantage points")
		paths   = flag.Int("paths", 500, "number of measurement paths")
		seed    = flag.Int64("seed", 1, "generator seed")
		stats   = flag.Bool("stats", false, "print topology statistics to stderr")
	)
	flag.Parse()

	var top *topology.Topology
	switch *family {
	case "britefile":
		var in io.Reader = os.Stdin
		if *inPath != "-" {
			f, err := os.Open(*inPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			in = f
		}
		file, err := brite.Parse(in)
		if err != nil {
			fatal(err)
		}
		top, err = brite.FileTopology(file, brite.FileTopologyConfig{Paths: *paths, Seed: *seed})
		if err != nil {
			fatal(err)
		}
	case "brite":
		net, err := brite.Generate(brite.Config{
			ASes: *ases, EdgesPerAS: *edges, Paths: *paths, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		top = net.Topology
	case "planetlab":
		net, err := planetlab.Generate(planetlab.Config{
			Routers: *routers, VantagePoints: *vantage, Paths: *paths, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		top = net.Topology
	case "fig1a":
		top = topology.Figure1A()
	case "fig1b":
		top = topology.Figure1B()
	default:
		fatal(fmt.Errorf("unknown family %q", *family))
	}

	if *stats {
		res := topology.CheckIdentifiability(top, 0)
		fmt.Fprintf(os.Stderr, "topology: %d nodes, %d links, %d paths, %d correlation sets\n",
			top.NumNodes(), top.NumLinks(), top.NumPaths(), top.NumSets())
		fmt.Fprintf(os.Stderr, "identifiable (Assumption 4): %v (unidentifiable links: %d, truncated: %v)\n",
			res.Identifiable, res.UnidentifiableLinks.Len(), res.Truncated)
	}
	if err := top.Encode(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
