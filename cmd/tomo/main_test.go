package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	tomography "repro"
)

// Seed-fixed golden-file regression tests: every code path of the CLI body
// is pinned byte for byte, so facade refactors cannot silently change what
// operators see. Regenerate with:
//
//	go test ./cmd/tomo -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/<name>.golden.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (re-run with -update if the change is intended):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// figure1AJSON encodes the Figure-1(a) topology the way cmd/topogen would.
func figure1AJSON(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tomography.Figure1A().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestGolden(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		stdin string
	}{
		{"list-scenarios", []string{"-list-scenarios"}, ""},
		{"quickstart-table", []string{"-scenario", "quickstart", "-snapshots", "800", "-seed", "3", "-estimator", "both"}, ""},
		{"quickstart-summary", []string{"-scenario", "quickstart", "-snapshots", "800", "-seed", "3", "-estimator", "both", "-summary"}, ""},
		{"quickstart-json", []string{"-scenario", "quickstart", "-snapshots", "800", "-seed", "3", "-estimator", "correlation,mle", "-json"}, ""},
		{"dynamic-linkflap-summary", []string{"-scenario", "link-flap", "-snapshots", "600", "-seed", "2", "-summary"}, ""},
		{"diurnal-week-summary", []string{"-scenario", "diurnal-week", "-snapshots", "800", "-seed", "2", "-summary"}, ""},
		{"diurnal-week-json", []string{"-scenario", "diurnal-week", "-snapshots", "800", "-seed", "2", "-json"}, ""},
		{"gray-failure-summary", []string{"-scenario", "gray-failure", "-snapshots", "800", "-seed", "2", "-summary"}, ""},
		{"gray-failure-json", []string{"-scenario", "gray-failure", "-snapshots", "800", "-seed", "2", "-json"}, ""},
		{"adversarial-loss-summary", []string{"-scenario", "adversarial-loss", "-snapshots", "800", "-seed", "2", "-summary"}, ""},
		{"adversarial-loss-json", []string{"-scenario", "adversarial-loss", "-snapshots", "800", "-seed", "2", "-json"}, ""},
		{"stdin-topology-top3", []string{"-frac", "0.5", "-snapshots", "500", "-seed", "4", "-top", "3"}, "FIG1A"},
		{"theorem-estimator", []string{"-scenario", "quickstart", "-snapshots", "500", "-seed", "5", "-estimator", "theorem"}, ""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			stdin := tc.stdin
			if stdin == "FIG1A" {
				stdin = figure1AJSON(t)
			}
			var out, errBuf bytes.Buffer
			if err := run(tc.args, strings.NewReader(stdin), &out, &errBuf); err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
			checkGolden(t, tc.name, out.String())
		})
	}
}

// TestStoreDirMatchesRAM is the CLI half of the out-of-core bit-identity
// contract: the exact same bytes must come out of a run whose measurement
// columns spill to segment files as out of the all-in-RAM run — for a static
// scenario (record replayed through the spill store) and a dynamic one
// (snapshots streamed into it with no record in RAM). It also checks the
// spill directory really was populated.
func TestStoreDirMatchesRAM(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"static", []string{"-scenario", "quickstart", "-snapshots", "800", "-seed", "3", "-estimator", "both"}},
		{"dynamic", []string{"-scenario", "link-flap", "-snapshots", "600", "-seed", "2", "-summary", "-json"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var ram, errBuf bytes.Buffer
			if err := run(tc.args, strings.NewReader(""), &ram, &errBuf); err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			var spill bytes.Buffer
			if err := run(append(tc.args, "-store-dir", dir), strings.NewReader(""), &spill, &errBuf); err != nil {
				t.Fatal(err)
			}
			if ram.String() != spill.String() {
				t.Errorf("output with -store-dir differs from RAM run:\n--- RAM ---\n%s\n--- spill ---\n%s",
					ram.String(), spill.String())
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) == 0 {
				t.Error("-store-dir run left the spill directory empty")
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		errPart string
	}{
		{"unknown estimator", []string{"-scenario", "quickstart", "-estimator", "nope"}, `unknown estimator "nope"`},
		{"unknown scenario", []string{"-scenario", "nope"}, `unknown scenario "nope"`},
		{"empty estimator list", []string{"-scenario", "quickstart", "-estimator", ","}, "no estimator selected"},
		{"bad topology json", []string{}, "decode"},
	}
	for _, tc := range cases {
		var out, errBuf bytes.Buffer
		err := run(tc.args, strings.NewReader("{not json"), &out, &errBuf)
		if err == nil {
			t.Errorf("%s: run succeeded, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errPart)
		}
	}
}

// TestHelpIsNotAnError pins -h behavior: usage goes to the injected stderr
// and run returns nil, so the binary exits 0.
func TestHelpIsNotAnError(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-h"}, strings.NewReader(""), &out, &errBuf); err != nil {
		t.Fatalf("-h returned error: %v", err)
	}
	if !strings.Contains(errBuf.String(), "-scenario") {
		t.Fatalf("usage text missing from stderr:\n%s", errBuf.String())
	}
}

// TestProfileFlags pins the -cpuprofile/-memprofile plumbing: a run with
// both flags must succeed and leave non-empty pprof files behind.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var out, errBuf strings.Builder
	err := run([]string{"-scenario", "quickstart", "-snapshots", "200", "-summary",
		"-cpuprofile", cpu, "-memprofile", mem}, strings.NewReader(""), &out, &errBuf)
	if err != nil {
		t.Fatalf("run with profiling flags: %v (stderr: %s)", err, errBuf.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
