// Command tomo runs the full tomography pipeline: it obtains a measurement
// scenario — either synthesized over a JSON topology (from cmd/topogen) or a
// named scenario from the registry (-scenario; see -list-scenarios) —
// simulates end-to-end measurements (time-evolving for dynamic scenarios),
// compiles the topology into an inference plan, runs the selected
// estimator(s) from the estimator registry, and prints per-link true vs
// inferred congestion probabilities as text or JSON.
//
// Usage:
//
//	topogen -family brite -ases 60 -paths 300 | tomo -frac 0.1 -snapshots 2000
//	tomo -topology pl.json -estimator correlation,independence -summary
//	tomo -scenario flash-crowd -snapshots 4000 -summary
//	tomo -scenario quickstart -json
//	tomo -list-scenarios
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	tomography "repro"
	"repro/internal/profiling"
	"repro/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tomo:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: flags in, report out. Usage and flag-parse
// errors go to stderr; -h is not an error.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	estimators := strings.Join(tomography.EstimatorNames(), " | ")
	fs := flag.NewFlagSet("tomo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		topoPath  = fs.String("topology", "-", "topology JSON file ('-' = stdin)")
		scenName  = fs.String("scenario", "", "named scenario from the registry (overrides -topology/-frac/-loose); see -list-scenarios")
		listScen  = fs.Bool("list-scenarios", false, "list the named scenarios and exit")
		frac      = fs.Float64("frac", 0.10, "fraction of links congested in the synthetic scenario")
		loose     = fs.Bool("loose", false, "loose correlation (≤2 congested links per correlation set)")
		snapshots = fs.Int("snapshots", 2000, "number of measurement snapshots")
		seed      = fs.Int64("seed", 1, "seed for scenario and simulation")
		estimator = fs.String("estimator", "", "registered estimator(s), comma-separated: "+estimators+" (also: both = correlation,independence)")
		algo      = fs.String("algorithm", "", "deprecated alias for -estimator")
		packet    = fs.Bool("packet-level", false, "simulate probe packets and loss rates")
		storeDir  = fs.String("store-dir", "", "spill measurement columns to checksummed segment files under this directory (out-of-core; existing contents are replaced). Estimates are bit-identical to the in-RAM run")
		summary   = fs.Bool("summary", false, "print error summary instead of the per-link table")
		topN      = fs.Int("top", 0, "print only the N links with the highest inferred congestion probability")
		jsonOut   = fs.Bool("json", false, "emit the report as JSON instead of text")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(stderr, "tomo:", perr)
		}
	}()

	if *listScen {
		listScenarios(stdout)
		return nil
	}

	names, err := resolveEstimators(*estimator, *algo)
	if err != nil {
		return err
	}

	scn, err := buildScenario(*scenName, *topoPath, *frac, *loose, *seed, stdin)
	if err != nil {
		return err
	}
	top := scn.Topology

	mode := tomography.StateLevel
	if *packet {
		mode = tomography.PacketLevel
	}
	src, err := simulateSource(scn, *snapshots, *seed, mode, *storeDir)
	if err != nil {
		return err
	}
	defer src.Close()

	// One compiled plan serves every selected estimator.
	plan, err := tomography.Compile(top, tomography.PlanOptions{Lazy: true})
	if err != nil {
		return err
	}

	var runs []estimatorRun
	for _, name := range names {
		opts := tomography.EstimateOptions{}
		if name == "independence" {
			// The Nguyen–Thiran baseline uses all its observations in a
			// least-squares fit (the historical tomo behavior).
			opts.Algorithm.UseAllEquations = true
		}
		res, err := tomography.Estimate(name, plan, src, opts)
		if err != nil {
			return err
		}
		runs = append(runs, estimatorRun{res.Estimator, res.CongestionProb})
	}

	if *jsonOut {
		return emitJSON(stdout, scn, *snapshots, runs)
	}

	if *summary {
		for _, r := range runs {
			errs := tomography.AbsErrors(scn.Truth, r.probs, scn.PotentiallyCongested)
			fmt.Fprintf(stdout, "%-13s mean=%.4f p90=%.4f frac<=0.1=%.1f%% (over %d potentially congested links)\n",
				r.name, tomography.Mean(errs), tomography.Percentile(errs, 90),
				100*tomography.FracBelow(errs, 0.1), len(errs))
		}
		return nil
	}

	// Per-link table, optionally limited to the top-N inferred.
	type row struct {
		link tomography.LinkID
		vals []float64
	}
	rows := make([]row, top.NumLinks())
	for k := range rows {
		rows[k].link = tomography.LinkID(k)
		for _, r := range runs {
			rows[k].vals = append(rows[k].vals, r.probs[k])
		}
	}
	if *topN > 0 {
		sort.Slice(rows, func(i, j int) bool { return rows[i].vals[0] > rows[j].vals[0] })
		if len(rows) > *topN {
			rows = rows[:*topN]
		}
	}
	fmt.Fprintf(stdout, "%-8s %-18s %-10s", "link", "name", "truth")
	for _, r := range runs {
		fmt.Fprintf(stdout, " %-13s", r.name)
	}
	fmt.Fprintln(stdout)
	for _, rw := range rows {
		l := top.Link(rw.link)
		fmt.Fprintf(stdout, "%-8d %-18s %-10.4f", rw.link, l.Name, scn.Truth[rw.link])
		for _, v := range rw.vals {
			fmt.Fprintf(stdout, " %-13.4f", v)
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

// simulateSource simulates the scenario's measurements and returns the
// estimation source. With storeDir empty everything lives in RAM (a record
// plus a batch Empirical over it); with storeDir set the observations go to
// an out-of-core spill window sized to hold every snapshot — dynamic
// scenarios stream straight from the simulator with no record in RAM, static
// ones replay their record through it. Both sources hold identical retained
// rows, so the estimates (and the printed report) are bit-identical.
func simulateSource(scn *tomography.Scenario, snapshots int, seed int64, mode tomography.SimMode, storeDir string) (*tomography.Empirical, error) {
	if storeDir == "" {
		var rec *tomography.Record
		var err error
		if scn.Process != nil {
			rec, err = tomography.SimulateDynamic(tomography.DynamicSimConfig{
				Topology: scn.Topology, Process: scn.Process, Snapshots: snapshots, Seed: seed + 99, Mode: mode,
			})
		} else {
			rec, err = tomography.Simulate(tomography.SimConfig{
				Topology: scn.Topology, Model: scn.Model, Snapshots: snapshots, Seed: seed + 99, Mode: mode,
			})
		}
		if err != nil {
			return nil, err
		}
		return tomography.NewEmpirical(rec)
	}
	emp, err := tomography.NewSlidingWindowSpill(scn.Topology.NumPaths(), snapshots,
		tomography.SpillConfig{Dir: storeDir, Reset: true})
	if err != nil {
		return nil, err
	}
	if scn.Process != nil {
		err = tomography.SimulateDynamicStream(tomography.DynamicSimConfig{
			Topology: scn.Topology, Process: scn.Process, Snapshots: snapshots, Seed: seed + 99, Mode: mode,
			OnSnapshot: func(_ int, congested *tomography.PathSet) { emp.Append(congested) },
		})
	} else {
		var rec *tomography.Record
		rec, err = tomography.Simulate(tomography.SimConfig{
			Topology: scn.Topology, Model: scn.Model, Snapshots: snapshots, Seed: seed + 99, Mode: mode,
		})
		if err == nil {
			for ts := 0; ts < rec.Snapshots(); ts++ {
				emp.Append(rec.PathSnapshot(ts))
			}
		}
	}
	if err != nil {
		emp.Close()
		return nil, err
	}
	return emp, nil
}

// buildScenario resolves the scenario source: the named registry when
// -scenario is set, otherwise a synthetic scenario over a JSON topology.
func buildScenario(name, topoPath string, frac float64, loose bool, seed int64, stdin io.Reader) (*tomography.Scenario, error) {
	if name != "" {
		return tomography.BuildScenario(name, seed)
	}
	top, err := loadTopology(topoPath, stdin)
	if err != nil {
		return nil, err
	}
	level := tomography.HighCorrelation
	if loose {
		level = tomography.LooseCorrelation
	}
	return tomography.NewScenario(tomography.ScenarioConfig{
		Topology: top, FracCongested: frac, Level: level, Seed: seed,
	})
}

// listScenarios prints the registry as an aligned table.
func listScenarios(w io.Writer) {
	fmt.Fprintf(w, "%-18s %-8s %s\n", "scenario", "kind", "description")
	for _, s := range tomography.Scenarios() {
		kind := "static"
		if s.Dynamic {
			kind = "dynamic"
		}
		fmt.Fprintf(w, "%-18s %-8s %s\n", s.Name, kind, s.Description)
	}
}

// jsonReport is the -json output schema.
type jsonReport struct {
	Scenario   string          `json:"scenario"`
	Dynamic    bool            `json:"dynamic"`
	Snapshots  int             `json:"snapshots"`
	Links      int             `json:"links"`
	Paths      int             `json:"paths"`
	Truth      []float64       `json:"truth"`
	Estimators []jsonEstimator `json:"estimators"`
}

type jsonEstimator struct {
	Name           string    `json:"name"`
	CongestionProb []float64 `json:"congestion_prob"`
	MeanAbsError   float64   `json:"mean_abs_error"`
	P90AbsError    float64   `json:"p90_abs_error"`
	FracBelow01    float64   `json:"frac_abs_error_below_0.1"`
}

// estimatorRun is one estimator's output within a tomo invocation.
type estimatorRun struct {
	name  string
	probs []float64
}

// emitJSON writes the machine-readable report.
func emitJSON(w io.Writer, scn *tomography.Scenario, snapshots int, runs []estimatorRun) error {
	rep := jsonReport{
		Scenario:  scn.Name,
		Dynamic:   scn.Process != nil,
		Snapshots: snapshots,
		Links:     scn.Topology.NumLinks(),
		Paths:     scn.Topology.NumPaths(),
		Truth:     scn.Truth,
	}
	for _, r := range runs {
		errs := tomography.AbsErrors(scn.Truth, r.probs, scn.PotentiallyCongested)
		rep.Estimators = append(rep.Estimators, jsonEstimator{
			Name:           r.name,
			CongestionProb: r.probs,
			MeanAbsError:   tomography.Mean(errs),
			P90AbsError:    tomography.Percentile(errs, 90),
			FracBelow01:    tomography.FracBelow(errs, 0.1),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// resolveEstimators turns the -estimator (or legacy -algorithm) selection
// into a list of registry names, validating each against the registry.
func resolveEstimators(estimator, algo string) ([]string, error) {
	sel := estimator
	if sel == "" {
		sel = algo
	}
	if sel == "" {
		sel = "correlation"
	}
	if sel == "both" {
		sel = "correlation,independence"
	}
	var names []string
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := tomography.LookupEstimator(name); !ok {
			return nil, fmt.Errorf("unknown estimator %q (registered: %s)",
				name, strings.Join(tomography.EstimatorNames(), ", "))
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no estimator selected (registered: %s)", strings.Join(tomography.EstimatorNames(), ", "))
	}
	return names, nil
}

func loadTopology(path string, stdin io.Reader) (*tomography.Topology, error) {
	if path == "-" {
		return topology.Decode(stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return topology.Decode(f)
}
