// Command tomo runs the full tomography pipeline on a topology: it loads a
// JSON topology (from cmd/topogen), synthesizes a congestion scenario over
// its correlation sets, simulates end-to-end measurements, compiles the
// topology into an inference plan, runs the selected estimator(s) from the
// estimator registry, and prints per-link true vs inferred congestion
// probabilities.
//
// Usage:
//
//	topogen -family brite -ases 60 -paths 300 | tomo -frac 0.1 -snapshots 2000
//	tomo -topology pl.json -estimator correlation,independence -summary
//	tomo -topology toy.json -estimator mle
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	tomography "repro"
	"repro/internal/topology"
)

func main() {
	estimators := strings.Join(tomography.EstimatorNames(), " | ")
	var (
		topoPath  = flag.String("topology", "-", "topology JSON file ('-' = stdin)")
		frac      = flag.Float64("frac", 0.10, "fraction of links congested in the synthetic scenario")
		loose     = flag.Bool("loose", false, "loose correlation (≤2 congested links per correlation set)")
		snapshots = flag.Int("snapshots", 2000, "number of measurement snapshots")
		seed      = flag.Int64("seed", 1, "seed for scenario and simulation")
		estimator = flag.String("estimator", "", "registered estimator(s), comma-separated: "+estimators+" (also: both = correlation,independence)")
		algo      = flag.String("algorithm", "", "deprecated alias for -estimator")
		packet    = flag.Bool("packet-level", false, "simulate probe packets and loss rates")
		summary   = flag.Bool("summary", false, "print error summary instead of the per-link table")
		topN      = flag.Int("top", 0, "print only the N links with the highest inferred congestion probability")
	)
	flag.Parse()

	names, err := resolveEstimators(*estimator, *algo)
	if err != nil {
		fatal(err)
	}

	top, err := loadTopology(*topoPath)
	if err != nil {
		fatal(err)
	}

	level := tomography.HighCorrelation
	if *loose {
		level = tomography.LooseCorrelation
	}
	scn, err := tomography.NewScenario(tomography.ScenarioConfig{
		Topology: top, FracCongested: *frac, Level: level, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	mode := tomography.StateLevel
	if *packet {
		mode = tomography.PacketLevel
	}
	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: top, Model: scn.Model, Snapshots: *snapshots, Seed: *seed + 99, Mode: mode,
	})
	if err != nil {
		fatal(err)
	}
	src, err := tomography.NewEmpirical(rec)
	if err != nil {
		fatal(err)
	}

	// One compiled plan serves every selected estimator.
	plan, err := tomography.Compile(top, tomography.PlanOptions{Lazy: true})
	if err != nil {
		fatal(err)
	}

	type run struct {
		name  string
		probs []float64
	}
	var runs []run
	for _, name := range names {
		opts := tomography.EstimateOptions{}
		if name == "independence" {
			// The Nguyen–Thiran baseline uses all its observations in a
			// least-squares fit (the historical tomo behavior).
			opts.Algorithm.UseAllEquations = true
		}
		res, err := tomography.Estimate(name, plan, src, opts)
		if err != nil {
			fatal(err)
		}
		runs = append(runs, run{res.Estimator, res.CongestionProb})
	}

	if *summary {
		for _, r := range runs {
			errs := tomography.AbsErrors(scn.Truth, r.probs, scn.PotentiallyCongested)
			fmt.Printf("%-13s mean=%.4f p90=%.4f frac<=0.1=%.1f%% (over %d potentially congested links)\n",
				r.name, tomography.Mean(errs), tomography.Percentile(errs, 90),
				100*tomography.FracBelow(errs, 0.1), len(errs))
		}
		return
	}

	// Per-link table, optionally limited to the top-N inferred.
	type row struct {
		link tomography.LinkID
		vals []float64
	}
	rows := make([]row, top.NumLinks())
	for k := range rows {
		rows[k].link = tomography.LinkID(k)
		for _, r := range runs {
			rows[k].vals = append(rows[k].vals, r.probs[k])
		}
	}
	if *topN > 0 {
		sort.Slice(rows, func(i, j int) bool { return rows[i].vals[0] > rows[j].vals[0] })
		if len(rows) > *topN {
			rows = rows[:*topN]
		}
	}
	fmt.Printf("%-8s %-18s %-10s", "link", "name", "truth")
	for _, r := range runs {
		fmt.Printf(" %-13s", r.name)
	}
	fmt.Println()
	for _, rw := range rows {
		l := top.Link(rw.link)
		fmt.Printf("%-8d %-18s %-10.4f", rw.link, l.Name, scn.Truth[rw.link])
		for _, v := range rw.vals {
			fmt.Printf(" %-13.4f", v)
		}
		fmt.Println()
	}
}

// resolveEstimators turns the -estimator (or legacy -algorithm) selection
// into a list of registry names, validating each against the registry.
func resolveEstimators(estimator, algo string) ([]string, error) {
	sel := estimator
	if sel == "" {
		sel = algo
	}
	if sel == "" {
		sel = "correlation"
	}
	if sel == "both" {
		sel = "correlation,independence"
	}
	var names []string
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := tomography.LookupEstimator(name); !ok {
			return nil, fmt.Errorf("unknown estimator %q (registered: %s)",
				name, strings.Join(tomography.EstimatorNames(), ", "))
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no estimator selected (registered: %s)", strings.Join(tomography.EstimatorNames(), ", "))
	}
	return names, nil
}

func loadTopology(path string) (*tomography.Topology, error) {
	if path == "-" {
		return topology.Decode(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return topology.Decode(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tomo:", err)
	os.Exit(1)
}
