// Command tomo runs the full tomography pipeline on a topology: it loads a
// JSON topology (from cmd/topogen), synthesizes a congestion scenario over
// its correlation sets, simulates end-to-end measurements, runs the selected
// inference algorithm(s), and prints per-link true vs inferred congestion
// probabilities.
//
// Usage:
//
//	topogen -family brite -ases 60 -paths 300 | tomo -frac 0.1 -snapshots 2000
//	tomo -topology pl.json -algorithm both -summary
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/topology"
)

func main() {
	var (
		topoPath  = flag.String("topology", "-", "topology JSON file ('-' = stdin)")
		frac      = flag.Float64("frac", 0.10, "fraction of links congested in the synthetic scenario")
		loose     = flag.Bool("loose", false, "loose correlation (≤2 congested links per correlation set)")
		snapshots = flag.Int("snapshots", 2000, "number of measurement snapshots")
		seed      = flag.Int64("seed", 1, "seed for scenario and simulation")
		algo      = flag.String("algorithm", "correlation", "algorithm: correlation | independence | both | theorem")
		packet    = flag.Bool("packet-level", false, "simulate probe packets and loss rates")
		summary   = flag.Bool("summary", false, "print error summary instead of the per-link table")
		topN      = flag.Int("top", 0, "print only the N links with the highest inferred congestion probability")
	)
	flag.Parse()

	top, err := loadTopology(*topoPath)
	if err != nil {
		fatal(err)
	}

	level := scenario.HighCorrelation
	if *loose {
		level = scenario.LooseCorrelation
	}
	scn, err := scenario.FromTopology(scenario.FromTopologyConfig{
		Topology: top, FracCongested: *frac, Level: level, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	mode := netsim.StateLevel
	if *packet {
		mode = netsim.PacketLevel
	}
	rec, err := netsim.Run(netsim.Config{
		Topology: top, Model: scn.Model, Snapshots: *snapshots, Seed: *seed + 99, Mode: mode,
	})
	if err != nil {
		fatal(err)
	}
	src, err := measure.NewEmpirical(rec)
	if err != nil {
		fatal(err)
	}

	type run struct {
		name  string
		probs []float64
	}
	var runs []run
	wantCorr := *algo == "correlation" || *algo == "both"
	wantIndep := *algo == "independence" || *algo == "both"
	switch {
	case *algo == "theorem":
		res, err := core.Theorem(top, src, core.TheoremOptions{})
		if err != nil {
			fatal(err)
		}
		runs = append(runs, run{"theorem", res.CongestionProb})
	case wantCorr || wantIndep:
		if wantCorr {
			res, err := core.Correlation(top, src, core.Options{})
			if err != nil {
				fatal(err)
			}
			runs = append(runs, run{"correlation", res.CongestionProb})
		}
		if wantIndep {
			res, err := core.Independence(top, src, core.Options{UseAllEquations: true})
			if err != nil {
				fatal(err)
			}
			runs = append(runs, run{"independence", res.CongestionProb})
		}
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	if *summary {
		for _, r := range runs {
			errs := eval.AbsErrors(scn.Truth, r.probs, scn.PotentiallyCongested)
			fmt.Printf("%-13s mean=%.4f p90=%.4f frac<=0.1=%.1f%% (over %d potentially congested links)\n",
				r.name, eval.Mean(errs), eval.Percentile(errs, 90),
				100*eval.FracBelow(errs, 0.1), len(errs))
		}
		return
	}

	// Per-link table, optionally limited to the top-N inferred.
	type row struct {
		link topology.LinkID
		vals []float64
	}
	rows := make([]row, top.NumLinks())
	for k := range rows {
		rows[k].link = topology.LinkID(k)
		for _, r := range runs {
			rows[k].vals = append(rows[k].vals, r.probs[k])
		}
	}
	if *topN > 0 {
		sort.Slice(rows, func(i, j int) bool { return rows[i].vals[0] > rows[j].vals[0] })
		if len(rows) > *topN {
			rows = rows[:*topN]
		}
	}
	fmt.Printf("%-8s %-18s %-10s", "link", "name", "truth")
	for _, r := range runs {
		fmt.Printf(" %-13s", r.name)
	}
	fmt.Println()
	for _, rw := range rows {
		l := top.Link(rw.link)
		fmt.Printf("%-8d %-18s %-10.4f", rw.link, l.Name, scn.Truth[rw.link])
		for _, v := range rw.vals {
			fmt.Printf(" %-13.4f", v)
		}
		fmt.Println()
	}
}

func loadTopology(path string) (*topology.Topology, error) {
	if path == "-" {
		return topology.Decode(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return topology.Decode(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tomo:", err)
	os.Exit(1)
}
