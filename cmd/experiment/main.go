// Command experiment regenerates the paper's evaluation figures.
//
// Usage:
//
//	experiment -figure 3a [-scale small|medium|paper] [-seed N] [-snapshots N]
//	experiment -figure all [-scale medium] [-trials 5] [-out results/]
//	experiment -figure scenario:flash-crowd [-snapshots 4000]
//
// Each figure is printed as a text table with the same series the paper
// plots (Correlation vs Independence). A "scenario:<name>" figure evaluates
// a named scenario from the registry instead (tomo -list-scenarios lists
// them); dynamic scenarios run on the sequential time-evolving engine.
// Figures, Monte-Carlo trials and snapshot simulation are sharded across
// -workers CPU cores by the internal/runner engine; results are
// bit-identical for every worker count, and ^C cancels a run cleanly. See
// README.md for how the reproduction compares to the published figures.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/profiling"
)

func main() {
	// ^C / SIGTERM cancels the worker pool between trials and snapshots.
	// Once cancellation is underway, restore default signal handling so a
	// second ^C force-quits instead of being swallowed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "experiment: interrupted")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "experiment: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: flags in, rendered figures out. Usage and
// flag-parse errors go to stderr; -h is not an error.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		figure    = fs.String("figure", "", "figure id (3a,3b,3c,3d,4a..4d,5a..5d), 'all', or scenario:<name>")
		scale     = fs.String("scale", "small", "experiment scale: small | medium | paper")
		seed      = fs.Int64("seed", 1, "experiment seed")
		snapshots = fs.Int("snapshots", 0, "override snapshot count (0 = scale default)")
		trials    = fs.Int("trials", 1, "Monte-Carlo trials per figure point (merged before summarizing)")
		workers   = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial; results identical)")
		packet    = fs.Bool("packet-level", false, "simulate probe packets and loss rates instead of state-level measurement")
		packets   = fs.Int("packets-per-path", 0, "probes per path per snapshot in packet-level mode (0 = default)")
		progress  = fs.Bool("progress", false, "report progress on stderr (per trial; per figure with -figure all)")
		outDir    = fs.String("out", "", "directory to write per-figure .tsv files (default: stdout only)")
		noTiming  = fs.Bool("no-timing", false, "omit wall-clock timings from the output (for diffable runs)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(stderr, "experiment:", perr)
		}
	}()

	if *figure == "" {
		fs.Usage()
		return fmt.Errorf("-figure is required (e.g. -figure 3c, or -figure all)")
	}

	params := experiments.Params{
		Scale:          experiments.Scale(*scale),
		Seed:           *seed,
		Snapshots:      *snapshots,
		Trials:         *trials,
		Workers:        *workers,
		PacketsPerPath: *packets,
	}
	if *packet {
		params.Mode = netsim.PacketLevel
	}

	if *figure == "all" {
		return runAll(ctx, params, *progress, *outDir, *noTiming, stdout, stderr)
	}

	if *progress {
		params.Progress = func(done, total int) {
			fmt.Fprintf(stderr, "figure %s: trial %d/%d\n", *figure, done, total)
		}
	}
	start := time.Now()
	fig, err := experiments.Run(ctx, *figure, params)
	if err != nil {
		return err
	}
	if *noTiming {
		fmt.Fprintf(stdout, "=== Figure %s\n", *figure)
	} else {
		fmt.Fprintf(stdout, "=== Figure %s (%.1fs)\n", *figure, time.Since(start).Seconds())
	}
	if err := emit(fig, *outDir, stdout); err != nil {
		return err
	}
	fmt.Fprintln(stdout)
	return nil
}

// runAll regenerates every figure concurrently, then prints them in the
// paper's order.
func runAll(ctx context.Context, params experiments.Params, progress bool, outDir string, noTiming bool, stdout, stderr io.Writer) error {
	var ids []string
	for _, r := range experiments.Runners {
		ids = append(ids, r.ID)
	}
	var figProgress func(id string, done, total int)
	if progress {
		figProgress = func(id string, done, total int) {
			fmt.Fprintf(stderr, "figure %s done (%d/%d)\n", id, done, total)
		}
	}
	start := time.Now()
	figs, err := experiments.RunAll(ctx, ids, params, figProgress)
	if err != nil {
		return err
	}
	for _, fig := range figs {
		fmt.Fprintf(stdout, "=== Figure %s\n", fig.ID)
		if err := emit(fig, outDir, stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	if noTiming {
		fmt.Fprintf(stdout, "=== %d figures\n", len(figs))
	} else {
		fmt.Fprintf(stdout, "=== %d figures in %.1fs\n", len(figs), time.Since(start).Seconds())
	}
	return nil
}

// emit renders a figure to stdout and, when outDir is set, to
// outDir/figure-<id>.tsv.
func emit(fig *experiments.Figure, outDir string, stdout io.Writer) error {
	if err := fig.Render(stdout); err != nil {
		return fmt.Errorf("rendering %s: %w", fig.ID, err)
	}
	if outDir == "" {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(outDir, fmt.Sprintf("figure-%s.tsv", sanitizeID(fig.ID)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fig.Render(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", path, err)
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}

// sanitizeID makes a figure ID filename-safe ("scenario:worm" →
// "scenario-worm").
func sanitizeID(id string) string {
	out := []rune(id)
	for i, r := range out {
		if r == ':' || r == '/' {
			out[i] = '-'
		}
	}
	return string(out)
}
