// Command experiment regenerates the paper's evaluation figures.
//
// Usage:
//
//	experiment -figure 3a [-scale small|medium|paper] [-seed N] [-snapshots N]
//	experiment -figure all [-scale medium] [-out results/]
//
// Each figure is printed as a text table with the same series the paper
// plots (Correlation vs Independence). See EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/netsim"
)

func main() {
	var (
		figure    = flag.String("figure", "", "figure id (3a,3b,3c,3d,4a..4d,5a..5d) or 'all'")
		scale     = flag.String("scale", "small", "experiment scale: small | medium | paper")
		seed      = flag.Int64("seed", 1, "experiment seed")
		snapshots = flag.Int("snapshots", 0, "override snapshot count (0 = scale default)")
		packet    = flag.Bool("packet-level", false, "simulate probe packets and loss rates instead of state-level measurement")
		packets   = flag.Int("packets-per-path", 0, "probes per path per snapshot in packet-level mode (0 = default)")
		outDir    = flag.String("out", "", "directory to write per-figure .tsv files (default: stdout only)")
	)
	flag.Parse()

	if *figure == "" {
		fmt.Fprintln(os.Stderr, "experiment: -figure is required (e.g. -figure 3c, or -figure all)")
		flag.Usage()
		os.Exit(2)
	}

	params := experiments.Params{
		Scale:          experiments.Scale(*scale),
		Seed:           *seed,
		Snapshots:      *snapshots,
		PacketsPerPath: *packets,
	}
	if *packet {
		params.Mode = netsim.PacketLevel
	}

	var ids []string
	if *figure == "all" {
		for _, r := range experiments.Runners {
			ids = append(ids, r.ID)
		}
	} else {
		ids = []string{*figure}
	}

	for _, id := range ids {
		start := time.Now()
		fig, err := experiments.Run(id, params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== Figure %s (%.1fs)\n", id, time.Since(start).Seconds())
		if err := fig.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiment: rendering %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "experiment: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, fmt.Sprintf("figure-%s.tsv", id))
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiment: %v\n", err)
				os.Exit(1)
			}
			if err := fig.Render(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "experiment: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "experiment: closing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}
