// Command experiment regenerates the paper's evaluation figures.
//
// Usage:
//
//	experiment -figure 3a [-scale small|medium|paper] [-seed N] [-snapshots N]
//	experiment -figure all [-scale medium] [-trials 5] [-out results/]
//
// Each figure is printed as a text table with the same series the paper
// plots (Correlation vs Independence). Figures, Monte-Carlo trials and
// snapshot simulation are sharded across -workers CPU cores by the
// internal/runner engine; results are bit-identical for every worker count,
// and ^C cancels a run cleanly. See README.md for how the reproduction
// compares to the published figures.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/netsim"
)

func main() {
	var (
		figure    = flag.String("figure", "", "figure id (3a,3b,3c,3d,4a..4d,5a..5d) or 'all'")
		scale     = flag.String("scale", "small", "experiment scale: small | medium | paper")
		seed      = flag.Int64("seed", 1, "experiment seed")
		snapshots = flag.Int("snapshots", 0, "override snapshot count (0 = scale default)")
		trials    = flag.Int("trials", 1, "Monte-Carlo trials per figure point (merged before summarizing)")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial; results identical)")
		packet    = flag.Bool("packet-level", false, "simulate probe packets and loss rates instead of state-level measurement")
		packets   = flag.Int("packets-per-path", 0, "probes per path per snapshot in packet-level mode (0 = default)")
		progress  = flag.Bool("progress", false, "report progress on stderr (per trial; per figure with -figure all)")
		outDir    = flag.String("out", "", "directory to write per-figure .tsv files (default: stdout only)")
	)
	flag.Parse()

	if *figure == "" {
		fmt.Fprintln(os.Stderr, "experiment: -figure is required (e.g. -figure 3c, or -figure all)")
		flag.Usage()
		os.Exit(2)
	}

	// ^C / SIGTERM cancels the worker pool between trials and snapshots.
	// Once cancellation is underway, restore default signal handling so a
	// second ^C force-quits instead of being swallowed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	params := experiments.Params{
		Scale:          experiments.Scale(*scale),
		Seed:           *seed,
		Snapshots:      *snapshots,
		Trials:         *trials,
		Workers:        *workers,
		PacketsPerPath: *packets,
	}
	if *packet {
		params.Mode = netsim.PacketLevel
	}

	if *figure == "all" {
		runAll(ctx, params, *progress, *outDir)
		return
	}

	if *progress {
		params.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "figure %s: trial %d/%d\n", *figure, done, total)
		}
	}
	start := time.Now()
	fig, err := experiments.Run(ctx, *figure, params)
	if err != nil {
		fail(err)
	}
	fmt.Printf("=== Figure %s (%.1fs)\n", *figure, time.Since(start).Seconds())
	emit(fig, *outDir)
	fmt.Println()
}

// runAll regenerates every figure concurrently, then prints them in the
// paper's order.
func runAll(ctx context.Context, params experiments.Params, progress bool, outDir string) {
	var ids []string
	for _, r := range experiments.Runners {
		ids = append(ids, r.ID)
	}
	var figProgress func(id string, done, total int)
	if progress {
		figProgress = func(id string, done, total int) {
			fmt.Fprintf(os.Stderr, "figure %s done (%d/%d)\n", id, done, total)
		}
	}
	start := time.Now()
	figs, err := experiments.RunAll(ctx, ids, params, figProgress)
	if err != nil {
		fail(err)
	}
	for _, fig := range figs {
		fmt.Printf("=== Figure %s\n", fig.ID)
		emit(fig, outDir)
		fmt.Println()
	}
	fmt.Printf("=== %d figures in %.1fs\n", len(figs), time.Since(start).Seconds())
}

// emit renders a figure to stdout and, when outDir is set, to
// outDir/figure-<id>.tsv.
func emit(fig *experiments.Figure, outDir string) {
	if err := fig.Render(os.Stdout); err != nil {
		fail(fmt.Errorf("rendering %s: %w", fig.ID, err))
	}
	if outDir == "" {
		return
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fail(err)
	}
	path := filepath.Join(outDir, fmt.Sprintf("figure-%s.tsv", fig.ID))
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := fig.Render(f); err != nil {
		f.Close()
		fail(fmt.Errorf("writing %s: %w", path, err))
	}
	if err := f.Close(); err != nil {
		fail(fmt.Errorf("closing %s: %w", path, err))
	}
	fmt.Printf("wrote %s\n", path)
}

func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "experiment: interrupted")
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "experiment: %v\n", err)
	os.Exit(1)
}
