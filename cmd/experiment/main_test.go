package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Seed-fixed golden-file regression tests for the figure CLI (run with
// -no-timing so the output is byte-stable). Regenerate with:
//
//	go test ./cmd/experiment -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (re-run with -update if the change is intended):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"scenario-quickstart", []string{"-figure", "scenario:quickstart", "-snapshots", "400", "-seed", "2", "-workers", "1", "-no-timing"}},
		{"scenario-linkflap", []string{"-figure", "scenario:link-flap", "-snapshots", "300", "-seed", "2", "-workers", "1", "-no-timing"}},
		{"figure-3c-small", []string{"-figure", "3c", "-scale", "small", "-snapshots", "120", "-seed", "1", "-workers", "1", "-no-timing"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			if err := run(context.Background(), tc.args, &out, &errBuf); err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
			checkGolden(t, tc.name, out.String())
		})
	}
}

// TestOutDir checks the .tsv artifact path, including figure-ID
// sanitization for scenario figures.
func TestOutDir(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	args := []string{"-figure", "scenario:quickstart", "-snapshots", "200", "-seed", "2", "-workers", "1", "-no-timing", "-out", dir}
	if err := run(context.Background(), args, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure-scenario-quickstart.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Correlation") {
		t.Fatalf("tsv artifact lacks the Correlation series:\n%s", data)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), nil, &out, &errBuf); err == nil || !strings.Contains(err.Error(), "-figure is required") {
		t.Fatalf("missing -figure: err = %v", err)
	}
	if err := run(context.Background(), []string{"-figure", "9z"}, &out, &errBuf); err == nil || !strings.Contains(err.Error(), `unknown figure "9z"`) {
		t.Fatalf("unknown figure: err = %v", err)
	}
	if err := run(context.Background(), []string{"-figure", "3a", "-scale", "huge"}, &out, &errBuf); err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("unknown scale: err = %v", err)
	}
}

// TestProfileFlags pins the -cpuprofile/-memprofile plumbing: a run with
// both flags must succeed and leave non-empty pprof files behind.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var out, errBuf strings.Builder
	err := run(context.Background(), []string{"-figure", "scenario:quickstart", "-snapshots", "200", "-no-timing",
		"-cpuprofile", cpu, "-memprofile", mem}, &out, &errBuf)
	if err != nil {
		t.Fatalf("run with profiling flags: %v (stderr: %s)", err, errBuf.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
