// Command tomod is the long-running tomography inference daemon: it serves
// the sliding-window estimators over HTTP for many tenants at once. Each
// tenant is one measurement topology with its own compiled inference plan
// and ring-buffer window; probe-report batches are POSTed per tenant,
// flow through bounded per-shard queues (full queues answer 429 +
// Retry-After), and estimates, health and Prometheus metrics are served
// while the stream keeps flowing. SIGTERM drains the queues, flushes one
// final estimate per warm tenant, and exits 0.
//
// Usage:
//
//	tomod -scenario diurnal -tenants 4 -window 256 -addr 127.0.0.1:8080
//	tomod -selftest -scenario diurnal -tenants 4 -snapshots 20000
//
// The -selftest form starts the daemon on an ephemeral port, drives it
// with the synthetic probe firehose, and records sustained throughput and
// estimate-latency percentiles in BENCH_serve.json.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	tomography "repro"
	"repro/internal/profiling"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tomod:", err)
		os.Exit(1)
	}
}

// drainTimeout bounds graceful shutdown: in-flight HTTP requests, queued
// ingest batches and the final per-tenant estimate flush must all complete
// within it.
const drainTimeout = 30 * time.Second

// run is the testable daemon body: flags in, report out. Usage and
// flag-parse errors go to stderr; -h is not an error.
func run(args []string, stdout, stderr io.Writer) error {
	estimators := strings.Join(tomography.EstimatorNames(), " | ")
	fs := flag.NewFlagSet("tomod", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address for the HTTP API")
		shards    = fs.Int("shards", 0, "serving shards, each one worker goroutine with a bounded queue (0 = GOMAXPROCS, capped at 16)")
		queue     = fs.Int("queue", 256, "per-shard ingest queue depth; a full queue answers 429 + Retry-After")
		scenName  = fs.String("scenario", "quickstart", "registry scenario pre-registered tenants are built from; see tomo -list-scenarios")
		tenants   = fs.Int("tenants", 1, "number of tenants to pre-register (t0..tN-1)")
		window    = fs.Int("window", 256, "sliding-window size per tenant, in snapshots")
		estimator = fs.String("estimator", "correlation", "registry estimator each tenant runs per estimate: "+estimators)
		seed      = fs.Int64("seed", 1, "root seed; tenant i uses seed+i")
		selftest  = fs.Bool("selftest", false, "start on an ephemeral port, drive the probe firehose against it, report throughput/latency, and exit")
		snapshots = fs.Int("snapshots", 2000, "selftest: probe-stream length per tenant")
		batch     = fs.Int("batch", 64, "selftest: snapshots per ingest POST")
		estEvery  = fs.Int("estimate-every", 4, "selftest: request an estimate after this many accepted batches")
		benchOut  = fs.String("bench-out", "BENCH_serve.json", "selftest: write the firehose report to this file ('' = skip)")
		countWork = fs.Int("count-workers", 0, "fan each tenant's batched pair-count kernel out across this many workers during estimates (0/1 = serial); estimates are bit-identical for every setting")
		estWork   = fs.Int("estimate-workers", 0, "run estimates on this many read-replica workers against published window views (0/1 = one worker); estimates are bit-identical for every setting")
		spillDir  = fs.String("spill-dir", "", "back every tenant window with the out-of-core segment store under this directory (per-tenant subdirectories, reset at registration); estimates are bit-identical to the in-RAM windows")
		wire      = fs.String("wire", "json", "selftest: probe wire format the firehose POSTs: json | binary (TOMOW1 columnar)")
		pubEvery  = fs.Int("publish-every", 0, "publish a read-replica view every this many applied batches instead of after each one (0/1 = every batch); estimates stay bit-identical")
		pubMaxAge = fs.Duration("publish-max-age", 0, "with -publish-every: also publish once a tenant's view is this old (0 = no age bound)")
		noTiming  = fs.Bool("no-timing", false, "suppress timing-dependent output (throughput, latency, 429 counts) for reproducible logs")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *tenants <= 0 {
		return fmt.Errorf("tenants = %d, want > 0", *tenants)
	}
	if *wire != "json" && *wire != "binary" {
		return fmt.Errorf("wire = %q, want json or binary", *wire)
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(stderr, "tomod:", perr)
		}
	}()

	d := serve.New(serve.Config{
		Shards: *shards, QueueDepth: *queue, CountWorkers: *countWork,
		EstimateWorkers: *estWork, SpillDir: *spillDir,
		PublishEveryBatches: *pubEvery, PublishMaxAge: *pubMaxAge,
	})
	cfg := d.Config()
	fmt.Fprintf(stdout, "tomod: sharded multi-tenant inference daemon\n")
	fmt.Fprintf(stdout, "  shards:      %d\n", cfg.Shards)
	fmt.Fprintf(stdout, "  queue depth: %d\n", cfg.QueueDepth)
	fmt.Fprintf(stdout, "  scenario:    %s\n", *scenName)
	fmt.Fprintf(stdout, "  tenants:     %d\n", *tenants)
	fmt.Fprintf(stdout, "  window:      %d\n", *window)
	fmt.Fprintf(stdout, "  estimator:   %s\n", *estimator)
	fmt.Fprintf(stdout, "  seed:        %d\n", *seed)
	if cfg.CountWorkers > 1 {
		// Printed only when enabled so default-config goldens are unchanged.
		fmt.Fprintf(stdout, "  count workers: %d\n", cfg.CountWorkers)
	}
	if cfg.EstimateWorkers > 1 {
		// Printed only when enabled so default-config goldens are unchanged.
		fmt.Fprintf(stdout, "  estimate workers: %d\n", cfg.EstimateWorkers)
	}
	if cfg.SpillDir != "" {
		fmt.Fprintf(stdout, "  spill dir:   %s\n", cfg.SpillDir)
	}
	if cfg.PublishEveryBatches > 1 {
		// Printed only when enabled so default-config goldens are unchanged.
		fmt.Fprintf(stdout, "  publish every: %d batches\n", cfg.PublishEveryBatches)
	}
	if cfg.PublishMaxAge > 0 {
		// Printed only when enabled so default-config goldens are unchanged.
		fmt.Fprintf(stdout, "  publish max age: %s\n", cfg.PublishMaxAge)
	}
	if *wire != "json" {
		// Printed only when enabled so default-config goldens are unchanged.
		fmt.Fprintf(stdout, "  wire:        %s\n", *wire)
	}

	if *selftest {
		return runSelftest(d, stdout, selftestConfig{
			scenario: *scenName, tenants: *tenants, window: *window,
			estimator: *estimator, seed: *seed, snapshots: *snapshots,
			batch: *batch, estimateEvery: *estEvery,
			benchOut: *benchOut, noTiming: *noTiming, wire: *wire,
		})
	}
	return runServe(d, stdout, serveConfig{
		addr: *addr, scenario: *scenName, tenants: *tenants, window: *window,
		estimator: *estimator, seed: *seed,
	})
}

type serveConfig struct {
	addr      string
	scenario  string
	tenants   int
	window    int
	estimator string
	seed      int64
}

// runServe pre-registers the tenants, serves the HTTP API until SIGTERM or
// SIGINT, then drains: the HTTP server stops accepting, queued ingest
// batches are applied, and one final estimate per warm tenant is flushed
// before the process exits 0.
func runServe(d *serve.Daemon, stdout io.Writer, cfg serveConfig) error {
	if err := registerTenants(d, stdout, cfg.scenario, cfg.tenants, cfg.window, cfg.estimator, cfg.seed); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "tomod: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(stdout, "tomod: signal received, draining\n")

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	finals, err := d.Shutdown(drainCtx)
	if err != nil {
		return err
	}
	printFinals(stdout, finals)
	fmt.Fprintf(stdout, "tomod: shutdown complete\n")
	return nil
}

// registerTenants pre-registers t0..tN-1 from the named scenario.
func registerTenants(d *serve.Daemon, stdout io.Writer, scenario string, n, window int, estimator string, seed int64) error {
	for i := 0; i < n; i++ {
		t, err := d.Register(serve.TenantConfig{
			Name:      fmt.Sprintf("t%d", i),
			Scenario:  scenario,
			Seed:      seed + int64(i),
			Window:    window,
			Estimator: estimator,
		})
		if err != nil {
			return err
		}
		info := d.Tenants()[i]
		fmt.Fprintf(stdout, "tenant %s: scenario %s seed %d (%d paths, %d links), window %d, estimator %s, shard %d\n",
			t.Name(), scenario, seed+int64(i), info.NumPaths, info.NumLinks, window, estimator, info.Shard)
	}
	return nil
}

// printFinals reports the shutdown estimate flush, one line per tenant.
func printFinals(stdout io.Writer, finals []serve.FinalEstimate) {
	flushed := 0
	for _, f := range finals {
		if f.Err != nil {
			fmt.Fprintf(stdout, "final estimate %s: skipped (%v)\n", f.Tenant, f.Err)
			continue
		}
		flushed++
		fmt.Fprintf(stdout, "final estimate %s: %s over %d/%d snapshots, %d links, %d change points\n",
			f.Tenant, f.Response.Estimator, f.Response.WindowLen, f.Response.WindowSize,
			len(f.Response.CongestionProb), f.Response.ChangePoints)
	}
	fmt.Fprintf(stdout, "final estimates flushed: %d/%d\n", flushed, len(finals))
}

type selftestConfig struct {
	scenario      string
	tenants       int
	window        int
	estimator     string
	seed          int64
	snapshots     int
	batch         int
	estimateEvery int
	benchOut      string
	noTiming      bool
	wire          string
}

// runSelftest starts the daemon on an ephemeral port, replays the
// scenario's synthetic probe firehose against it over real HTTP, drains,
// and reports sustained ingest throughput and estimate-latency
// percentiles. The count lines are deterministic in the flags; only the
// timing lines (suppressible with -no-timing) depend on the hardware.
func runSelftest(d *serve.Daemon, stdout io.Writer, cfg selftestConfig) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: d.Handler()}
	go srv.Serve(ln)

	report, err := serve.RunFirehose(context.Background(), serve.FirehoseConfig{
		BaseURL:       "http://" + ln.Addr().String(),
		Scenario:      cfg.scenario,
		Seed:          cfg.seed,
		Tenants:       cfg.tenants,
		Snapshots:     cfg.snapshots,
		Batch:         cfg.batch,
		Window:        cfg.window,
		Estimator:     cfg.estimator,
		EstimateEvery: cfg.estimateEvery,
		Wire:          cfg.wire,
	})
	if err != nil {
		return err
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	finals, err := d.Shutdown(drainCtx)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "selftest: scenario %s, %d tenants x %d snapshots (batch %d, estimate every %d batches)\n",
		report.Scenario, report.Tenants, report.SnapshotsPerTenant, report.Batch, cfg.estimateEvery)
	fmt.Fprintf(stdout, "selftest: ingested %d snapshots, served %d estimates\n",
		report.SnapshotsIngested, report.Estimates)
	printFinals(stdout, finals)
	if !cfg.noTiming {
		fmt.Fprintf(stdout, "selftest: throughput %.0f snapshots/sec, estimate latency p50 %.3f ms / p99 %.3f ms\n",
			report.SnapshotsPerSec, report.EstimateP50Ms, report.EstimateP99Ms)
		fmt.Fprintf(stdout, "selftest: under ingest load: %.0f estimates/sec, latency p50 %.3f ms / p99 %.3f ms\n",
			report.EstimatesUnderLoadPerSec, report.EstimateUnderLoadP50Ms, report.EstimateUnderLoadP99Ms)
		fmt.Fprintf(stdout, "selftest: backpressure rejections (429): %d\n", report.Rejected429)
		fmt.Fprintf(stdout, "selftest: wire comparison: json %.0f snapshots/sec (%.1f MB/s), binary %.0f snapshots/sec (%.1f MB/s)\n",
			report.JSONSnapshotsPerSec, report.JSONIngestMBPerSec,
			report.BinarySnapshotsPerSec, report.BinaryIngestMBPerSec)
	}
	if cfg.benchOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.benchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "selftest: wrote %s\n", cfg.benchOut)
	}
	return nil
}
