package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	tomography "repro"
	"repro/internal/bitset"
	"repro/internal/serve"
)

// Seed-fixed golden-file regression tests in the same harness style as
// cmd/tomo: the daemon's startup/config output and the /v1/estimate JSON
// document are pinned byte for byte. Regenerate with:
//
//	go test ./cmd/tomod -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/<name>.golden.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (re-run with -update if the change is intended):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestGoldenSelftest pins the daemon's startup/config block and the
// deterministic selftest counts: -no-timing suppresses every
// hardware-dependent line, so the remaining output is a pure function of
// the flags.
func TestGoldenSelftest(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-selftest", "-no-timing", "-bench-out", "",
		"-shards", "2", "-queue", "128",
		"-scenario", "quickstart", "-tenants", "2", "-window", "120",
		"-snapshots", "480", "-batch", "40", "-estimate-every", "2", "-seed", "7",
	}, &out, &errBuf)
	if err != nil {
		t.Fatalf("selftest run: %v (stderr: %s)", err, errBuf.String())
	}
	checkGolden(t, "selftest-quickstart", out.String())
}

// TestGoldenEstimateJSON pins the /v1/estimate response shape and its
// seed-fixed contents: a quickstart tenant warmed with a deterministic
// simulated stream must answer byte-identical JSON.
func TestGoldenEstimateJSON(t *testing.T) {
	d := serve.New(serve.Config{Shards: 1, QueueDepth: 64})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	defer d.Shutdown(context.Background())

	if _, err := d.Register(serve.TenantConfig{
		Name: "golden", Scenario: "quickstart", Seed: 3, Window: 100, Estimator: "correlation",
	}); err != nil {
		t.Fatal(err)
	}
	scn, err := tomography.BuildScenario("quickstart", 3)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: scn.Topology, Model: scn.Model, Snapshots: 150, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sets := make([]*bitset.Set, rec.Snapshots())
	for i := range sets {
		sets[i] = rec.PathSnapshot(i)
	}
	body, err := serve.EncodeReports(sets)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/ingest?tenant=golden", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/v1/estimate?tenant=golden")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "estimate-quickstart", buf.String())
}

// syncBuffer is a goroutine-safe writer the SIGTERM test polls while run()
// owns it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSIGTERMGracefulShutdown drives the real serve mode end to end: start
// on an ephemeral port, ingest enough snapshots to warm the tenant over
// live HTTP, deliver SIGTERM to the process, and require run() to drain,
// flush the tenant's final estimate, and return nil (the binary's exit-0
// path) within the deadline.
func TestSIGTERMGracefulShutdown(t *testing.T) {
	var out syncBuffer
	var errBuf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-shards", "1",
			"-scenario", "quickstart", "-tenants", "1", "-window", "50", "-seed", "9",
		}, &out, &errBuf)
	}()

	// Wait for the listen line and extract the ephemeral address.
	addrRe := regexp.MustCompile(`tomod: listening on (\S+)`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("daemon never reported its listen address; output:\n%s", out.String())
	}

	// Warm the tenant: 60 snapshots in one batch (window is 50).
	reports := make([]string, 60)
	for i := range reports {
		reports[i] = fmt.Sprintf("[%d]", i%3)
	}
	body := fmt.Sprintf(`{"reports":[%s]}`, strings.Join(reports, ","))
	resp, err := http.Post("http://"+addr+"/v1/ingest?tenant=t0", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil (exit 0)", err)
		}
	case <-time.After(drainTimeout + 5*time.Second):
		t.Fatalf("run did not return within the drain deadline; output:\n%s", out.String())
	}
	output := out.String()
	for _, want := range []string{
		"tomod: signal received, draining",
		"final estimate t0: correlation over 50/50 snapshots, 4 links",
		"final estimates flushed: 1/1",
		"tomod: shutdown complete",
	} {
		if !strings.Contains(output, want) {
			t.Errorf("output missing %q:\n%s", want, output)
		}
	}
}

// TestSelftestWritesBench pins the BENCH_serve.json artifact: a selftest
// run must leave a parseable report with non-zero throughput, latency
// percentiles and the deterministic count fields.
func TestSelftestWritesBench(t *testing.T) {
	benchPath := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-selftest", "-bench-out", benchPath, "-shards", "2",
		"-scenario", "quickstart", "-tenants", "2", "-window", "64",
		"-snapshots", "256", "-batch", "32", "-estimate-every", "2", "-seed", "1",
	}, &out, &errBuf)
	if err != nil {
		t.Fatalf("selftest: %v (stderr: %s)", err, errBuf.String())
	}
	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var report serve.FirehoseReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_serve.json is not valid JSON: %v\n%s", err, data)
	}
	if report.SnapshotsIngested != 512 {
		t.Errorf("ingested %d snapshots, want 512", report.SnapshotsIngested)
	}
	if report.Estimates != 8 {
		t.Errorf("estimates = %d, want 8 (4 per tenant: window warm after batch 2, then every 2 of 8 batches)", report.Estimates)
	}
	if report.SnapshotsPerSec <= 0 || report.ElapsedSec <= 0 {
		t.Errorf("throughput fields not populated: %+v", report)
	}
	if report.EstimateP50Ms <= 0 || report.EstimateP99Ms < report.EstimateP50Ms {
		t.Errorf("latency percentiles inconsistent: p50 %v, p99 %v", report.EstimateP50Ms, report.EstimateP99Ms)
	}
	if report.WireFormat != "json" {
		t.Errorf("wire_format = %q, want json (the default)", report.WireFormat)
	}
	if report.JSONSnapshotsPerSec <= 0 || report.JSONIngestMBPerSec <= 0 ||
		report.BinarySnapshotsPerSec <= 0 || report.BinaryIngestMBPerSec <= 0 {
		t.Errorf("wire-comparison fields not populated: json %v snap/s %v MB/s, binary %v snap/s %v MB/s",
			report.JSONSnapshotsPerSec, report.JSONIngestMBPerSec,
			report.BinarySnapshotsPerSec, report.BinaryIngestMBPerSec)
	}
}

// TestSelftestBinaryWire re-runs the bench selftest with -wire binary: the
// measured phases POST TOMOW1 bodies instead of JSON, and the deterministic
// counts must come out identical — the wire format changes the transport,
// never what the daemon ingests.
func TestSelftestBinaryWire(t *testing.T) {
	benchPath := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-selftest", "-bench-out", benchPath, "-shards", "2", "-wire", "binary",
		"-scenario", "quickstart", "-tenants", "2", "-window", "64",
		"-snapshots", "256", "-batch", "32", "-estimate-every", "2", "-seed", "1",
	}, &out, &errBuf)
	if err != nil {
		t.Fatalf("selftest: %v (stderr: %s)", err, errBuf.String())
	}
	if !strings.Contains(out.String(), "  wire:        binary\n") {
		t.Errorf("config block missing the wire line:\n%s", out.String())
	}
	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var report serve.FirehoseReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_serve.json is not valid JSON: %v\n%s", err, data)
	}
	if report.WireFormat != "binary" {
		t.Errorf("wire_format = %q, want binary", report.WireFormat)
	}
	if report.SnapshotsIngested != 512 {
		t.Errorf("ingested %d snapshots, want 512", report.SnapshotsIngested)
	}
	if report.Estimates != 8 {
		t.Errorf("estimates = %d, want 8 (same counts as the JSON wire)", report.Estimates)
	}
}

// TestHelpIsNotAnError pins -h behavior: usage goes to the injected stderr
// and run returns nil, so the binary exits 0.
func TestHelpIsNotAnError(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-h"}, &out, &errBuf); err != nil {
		t.Fatalf("-h returned error: %v", err)
	}
	if !strings.Contains(errBuf.String(), "-selftest") {
		t.Fatalf("usage text missing from stderr:\n%s", errBuf.String())
	}
}

// TestInvalidFlags pins the error paths of the flag surface.
func TestInvalidFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-tenants", "0"}, &out, &errBuf); err == nil ||
		!strings.Contains(err.Error(), "tenants = 0, want > 0") {
		t.Fatalf("tenants=0 error = %v", err)
	}
	if err := run([]string{"-selftest", "-scenario", "nope", "-bench-out", ""}, &out, &errBuf); err == nil ||
		!strings.Contains(err.Error(), `unknown scenario "nope"`) {
		t.Fatalf("unknown scenario error = %v", err)
	}
	if err := run([]string{"-wire", "nope"}, &out, &errBuf); err == nil ||
		!strings.Contains(err.Error(), `wire = "nope", want json or binary`) {
		t.Fatalf("wire=nope error = %v", err)
	}
}
