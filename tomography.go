// Package tomography is the public facade of the correlated-links network
// tomography library, a reproduction of "Network Tomography on Correlated
// Links" (Ghita, Argyraki, Thiran — IMC 2010).
//
// The library identifies per-link congestion probabilities from end-to-end
// Boolean path measurements when links may be correlated within known
// correlation sets. The workflow is:
//
//  1. Describe the measurement topology — links, paths, correlation sets —
//     with a Builder (or generate one with the brite/planetlab generators
//     through the cmd/topogen tool).
//  2. Collect per-snapshot path observations. The netsim engine simulates
//     them from a ground-truth congestion model; a real deployment would
//     fill a Record from probe measurements instead.
//  3. Run Correlation (the paper's Section-4 algorithm), Independence (the
//     Nguyen–Thiran baseline), or Theorem (the exact Appendix-A algorithm)
//     to recover P(link congested) for every link.
//
// See examples/quickstart for a complete end-to-end program.
package tomography

import (
	"repro/internal/congestion"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// Re-exported topology types. See internal/topology for full documentation.
type (
	// Topology is an immutable measurement topology: links, paths and
	// correlation sets.
	Topology = topology.Topology
	// Builder accumulates nodes, links, paths and correlation sets.
	Builder = topology.Builder
	// NodeID identifies a node.
	NodeID = topology.NodeID
	// LinkID identifies a logical link.
	LinkID = topology.LinkID
	// PathID identifies a measurement path.
	PathID = topology.PathID
)

// Re-exported measurement types.
type (
	// Record holds per-snapshot congested-path observations.
	Record = netsim.Record
	// Source supplies P(path set all-good) estimates to the algorithms.
	Source = measure.Source
	// Empirical estimates probabilities from a Record.
	Empirical = measure.Empirical
)

// Re-exported algorithm types.
type (
	// Result is the output of the practical algorithms.
	Result = core.Result
	// Options tunes the practical algorithms.
	Options = core.Options
	// TheoremResult is the output of the exact algorithm.
	TheoremResult = core.TheoremResult
	// TheoremOptions tunes the exact algorithm.
	TheoremOptions = core.TheoremOptions
)

// Model is a ground-truth congestion process (used with Simulate).
type Model = congestion.Model

// SimConfig parameterizes Simulate.
type SimConfig = netsim.Config

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder { return topology.NewBuilder() }

// Figure1A returns the toy topology of the paper's Figure 1(a).
func Figure1A() *Topology { return topology.Figure1A() }

// Figure1B returns the toy topology of the paper's Figure 1(b), which
// violates Assumption 4.
func Figure1B() *Topology { return topology.Figure1B() }

// Simulate runs the snapshot simulator and returns the observation record.
func Simulate(cfg SimConfig) (*Record, error) { return netsim.Run(cfg) }

// NewEmpirical wraps a record into a measurement source.
func NewEmpirical(rec *Record) *Empirical { return measure.NewEmpirical(rec) }

// Correlation runs the paper's correlation-aware algorithm (Section 4):
// it forms log-linear equations only from paths and pairs of paths that
// traverse at most one link per correlation set, and solves for every
// link's congestion probability.
func Correlation(top *Topology, src Source, opts Options) (*Result, error) {
	return core.Correlation(top, src, opts)
}

// Independence runs the Nguyen–Thiran baseline, which assumes all links are
// uncorrelated. When links are correlated its equations factorize joint
// probabilities incorrectly; the paper (and this library's benchmarks)
// quantify the resulting error.
func Independence(top *Topology, src Source, opts Options) (*Result, error) {
	return core.Independence(top, src, opts)
}

// Theorem runs the exact algorithm extracted from the proof of Theorem 1
// (Appendix A). It requires Assumption 4 and small correlation sets, and
// additionally needs exact-congestion-pattern probabilities, which the
// Empirical source provides.
func Theorem(top *Topology, src measure.PatternSource, opts TheoremOptions) (*TheoremResult, error) {
	return core.Theorem(top, src, opts)
}

// CheckIdentifiability verifies Assumption 4 for a topology (subsetCap ≤ 0
// uses the default enumeration budget). See the paper's Section 3.3 for what
// to do when it fails — including MergeTransform.
func CheckIdentifiability(top *Topology, subsetCap int) topology.CheckResult {
	return topology.CheckIdentifiability(top, subsetCap)
}

// MergeTransform applies the Section-3.3 link-merge transformation, removing
// structural Assumption-4 violations at reduced granularity.
func MergeTransform(top *Topology) (*Topology, topology.MergeMap, error) {
	return topology.MergeTransform(top)
}
