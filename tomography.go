// Package tomography is the public facade of the correlated-links network
// tomography library, a reproduction of "Network Tomography on Correlated
// Links" (Ghita, Argyraki, Thiran — IMC 2010).
//
// The library identifies per-link congestion probabilities from end-to-end
// Boolean path measurements when links may be correlated within known
// correlation sets. The workflow is:
//
//  1. Describe the measurement topology — links, paths, correlation sets —
//     with a Builder (or generate one with the brite/planetlab generators
//     through the cmd/topogen tool).
//  2. Collect per-snapshot path observations. The netsim engine simulates
//     them from a ground-truth congestion model; a real deployment would
//     fill a Record from probe measurements instead.
//  3. Run Correlation (the paper's Section-4 algorithm), Independence (the
//     Nguyen–Thiran baseline), or Theorem (the exact Appendix-A algorithm)
//     to recover P(link congested) for every link.
//
// For evaluating many scenarios at once — parameter sweeps, what-if
// studies, large Monte-Carlo campaigns — EvaluateBatch shards simulation
// and inference across a worker pool (internal/runner) with deterministic
// per-scenario seeding: results are bit-identical regardless of the worker
// count.
//
// See examples/quickstart for a complete end-to-end program.
package tomography

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/congestion"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/snapstore"
	"repro/internal/topology"
)

// Re-exported topology types. See internal/topology for full documentation.
type (
	// Topology is an immutable measurement topology: links, paths and
	// correlation sets.
	Topology = topology.Topology
	// Builder accumulates nodes, links, paths and correlation sets.
	Builder = topology.Builder
	// NodeID identifies a node.
	NodeID = topology.NodeID
	// LinkID identifies a logical link.
	LinkID = topology.LinkID
	// PathID identifies a measurement path.
	PathID = topology.PathID
)

// Re-exported measurement types.
type (
	// Record holds per-snapshot congested-path observations as a thin view
	// over columnar SnapshotStores.
	Record = netsim.Record
	// SnapshotStore is the columnar measurement store: one packed bit
	// column per path (or link) over snapshots.
	SnapshotStore = snapstore.Store
	// PathSet is a set of path indices — the per-snapshot observation fed
	// to Empirical.Append and returned by Record.PathSnapshot. Build one
	// with NewPathSet.
	PathSet = bitset.Set
	// Source supplies P(path set all-good) estimates to the algorithms.
	Source = measure.Source
	// Empirical estimates probabilities from columnar observations.
	Empirical = measure.Empirical
)

// Re-exported algorithm types.
type (
	// Result is the output of the practical algorithms.
	Result = core.Result
	// Options tunes the practical algorithms.
	Options = core.Options
	// TheoremResult is the output of the exact algorithm.
	TheoremResult = core.TheoremResult
	// TheoremOptions tunes the exact algorithm.
	TheoremOptions = core.TheoremOptions
)

// Model is a ground-truth congestion process (used with Simulate).
type Model = congestion.Model

// SimConfig parameterizes Simulate.
type SimConfig = netsim.Config

// SimMode selects the simulator's measurement fidelity.
type SimMode = netsim.Mode

// Re-exported simulator modes.
const (
	// StateLevel derives path states from link states (Assumption 2).
	StateLevel = netsim.StateLevel
	// PacketLevel simulates loss rates and probe packets per snapshot.
	PacketLevel = netsim.PacketLevel
)

// Scenario is a fully specified experiment input: a topology, a ground-truth
// congestion model, and the per-link truth the evaluation compares against.
// See internal/scenario for full documentation.
type Scenario = scenario.Scenario

// ScenarioConfig parameterizes NewScenario.
type ScenarioConfig = scenario.FromTopologyConfig

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder { return topology.NewBuilder() }

// Figure1A returns the toy topology of the paper's Figure 1(a).
func Figure1A() *Topology { return topology.Figure1A() }

// Figure1B returns the toy topology of the paper's Figure 1(b), which
// violates Assumption 4.
func Figure1B() *Topology { return topology.Figure1B() }

// Simulate runs the snapshot simulator and returns the observation record.
func Simulate(cfg SimConfig) (*Record, error) { return netsim.Run(cfg) }

// NewEmpirical wraps a record into a measurement source. It fails on a nil
// or empty record (zero snapshots admit no frequency estimates).
func NewEmpirical(rec *Record) (*Empirical, error) { return measure.NewEmpirical(rec) }

// NewStreaming returns an empty streaming measurement source over numPaths
// paths: feed it observed snapshots one at a time with Append (build each
// observation with NewPathSet) and run the algorithms at any point —
// estimates over the first N appended snapshots are identical to a
// one-shot batch over the same data. See examples/streaming-monitor.
func NewStreaming(numPaths int) *Empirical { return measure.NewStreaming(numPaths) }

// NewPathSet returns the set containing exactly the given path indices —
// one snapshot's congested-path observation for Empirical.Append or
// NewRecordFromRows.
func NewPathSet(paths ...int) *PathSet { return bitset.FromIndices(paths...) }

// NewRecordFromRows converts legacy row-major observations (one congested-
// path set per snapshot) into a columnar Record — the compatibility path
// for callers that assemble snapshots themselves.
func NewRecordFromRows(numPaths int, rows []*PathSet) *Record {
	return netsim.NewRecordFromRows(numPaths, rows)
}

// Correlation runs the paper's correlation-aware algorithm (Section 4):
// it forms log-linear equations only from paths and pairs of paths that
// traverse at most one link per correlation set, and solves for every
// link's congestion probability.
func Correlation(top *Topology, src Source, opts Options) (*Result, error) {
	return core.Correlation(top, src, opts)
}

// Independence runs the Nguyen–Thiran baseline, which assumes all links are
// uncorrelated. When links are correlated its equations factorize joint
// probabilities incorrectly; the paper (and this library's benchmarks)
// quantify the resulting error.
func Independence(top *Topology, src Source, opts Options) (*Result, error) {
	return core.Independence(top, src, opts)
}

// Theorem runs the exact algorithm extracted from the proof of Theorem 1
// (Appendix A). It requires Assumption 4 and small correlation sets, and
// additionally needs exact-congestion-pattern probabilities, which the
// Empirical source provides.
func Theorem(top *Topology, src measure.PatternSource, opts TheoremOptions) (*TheoremResult, error) {
	return core.Theorem(top, src, opts)
}

// CheckIdentifiability verifies Assumption 4 for a topology (subsetCap ≤ 0
// uses the default enumeration budget). See the paper's Section 3.3 for what
// to do when it fails — including MergeTransform.
func CheckIdentifiability(top *Topology, subsetCap int) topology.CheckResult {
	return topology.CheckIdentifiability(top, subsetCap)
}

// MergeTransform applies the Section-3.3 link-merge transformation, removing
// structural Assumption-4 violations at reduced granularity.
func MergeTransform(top *Topology) (*Topology, topology.MergeMap, error) {
	return topology.MergeTransform(top)
}

// NewScenario builds a congestion scenario for an arbitrary measurement
// topology: a shared-cause process over the topology's correlation sets,
// with congested links placed according to the requested correlation level.
// Scenarios built here feed EvaluateBatch (or Simulate directly).
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	return scenario.FromTopology(cfg)
}

// BatchOptions tunes EvaluateBatch.
type BatchOptions struct {
	// Snapshots per scenario simulation (must be > 0).
	Snapshots int
	// Seed is the root seed; each scenario's simulation seed is derived from
	// (Seed, index), so batch results are reproducible and independent of
	// Workers.
	Seed int64
	// Workers caps the worker pool (0 ⇒ GOMAXPROCS, 1 ⇒ serial).
	Workers int
	// Mode selects state-level (default) or packet-level measurement.
	Mode SimMode
	// PacketsPerPath for packet-level mode (0 ⇒ default).
	PacketsPerPath int
	// Algorithm tunes the two practical algorithms.
	Algorithm Options
	// Progress, when non-nil, is called after each completed scenario with
	// (done, total). Calls are serialized.
	Progress func(done, total int)
}

// BatchResult is the evaluation of one scenario in a batch.
type BatchResult struct {
	// Scenario is the evaluated input.
	Scenario *Scenario
	// Correlation and Independence are the two algorithms' outputs; nil when
	// Err is set.
	Correlation  *Result
	Independence *Result
	// CorrErrors and IndepErrors are the sorted absolute errors versus the
	// scenario's ground truth over its potentially congested links — ready
	// for eval-style CDF/mean/percentile summaries.
	CorrErrors  []float64
	IndepErrors []float64
	// Err records a per-scenario failure; the rest of the batch still runs.
	Err error
}

// EvaluateBatch evaluates many scenarios concurrently on a bounded worker
// pool: each scenario is simulated for opts.Snapshots snapshots with a seed
// derived from (opts.Seed, its index), then both the correlation algorithm
// and the independence baseline run on the simulated record. Results arrive
// in input order and are bit-identical for every opts.Workers setting.
//
// A scenario that fails records its error in its own BatchResult and does
// not abort the batch; EvaluateBatch itself returns an error only for
// invalid options or a cancelled context.
func EvaluateBatch(ctx context.Context, scenarios []*Scenario, opts BatchOptions) ([]BatchResult, error) {
	if opts.Snapshots <= 0 {
		return nil, fmt.Errorf("tomography: EvaluateBatch snapshots = %d, want > 0", opts.Snapshots)
	}
	pool := &runner.Runner{Workers: opts.Workers, Progress: opts.Progress}
	return runner.Map(ctx, pool, len(scenarios), func(ctx context.Context, i int) (BatchResult, error) {
		res := BatchResult{Scenario: scenarios[i]}
		res.fill(ctx, opts, runner.DeriveSeed(opts.Seed, i))
		return res, nil
	})
}

// fill runs simulation + both algorithms for one scenario, recording any
// failure in res.Err.
func (res *BatchResult) fill(ctx context.Context, opts BatchOptions, seed int64) {
	s := res.Scenario
	rec, err := netsim.RunContext(ctx, netsim.Config{
		Topology:       s.Topology,
		Model:          s.Model,
		Snapshots:      opts.Snapshots,
		Seed:           seed,
		Mode:           opts.Mode,
		PacketsPerPath: opts.PacketsPerPath,
		// A fanned-out batch forces this nested pool serial; a one-scenario
		// batch hands it the full budget.
		Parallelism: opts.Workers,
	})
	if err != nil {
		res.Err = err
		return
	}
	src, err := measure.NewEmpirical(rec)
	if err != nil {
		res.Err = err
		return
	}
	corr, err := core.Correlation(s.Topology, src, opts.Algorithm)
	if err != nil {
		res.Err = err
		return
	}
	indep, err := core.Independence(s.Topology, src, opts.Algorithm)
	if err != nil {
		res.Err = err
		return
	}
	res.Correlation = corr
	res.Independence = indep
	res.CorrErrors = eval.AbsErrors(s.Truth, corr.CongestionProb, s.PotentiallyCongested)
	res.IndepErrors = eval.AbsErrors(s.Truth, indep.CongestionProb, s.PotentiallyCongested)
}
