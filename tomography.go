// Package tomography is the public facade of the correlated-links network
// tomography library, a reproduction of "Network Tomography on Correlated
// Links" (Ghita, Argyraki, Thiran — IMC 2010).
//
// The library identifies per-link congestion probabilities from end-to-end
// Boolean path measurements when links may be correlated within known
// correlation sets. The workflow is:
//
//  1. Describe the measurement topology — links, paths, correlation sets —
//     with a Builder (or generate one with the brite/planetlab generators
//     through the cmd/topogen tool).
//  2. Collect per-snapshot path observations. The netsim engine simulates
//     them from a ground-truth congestion model; a real deployment would
//     fill a Record from probe measurements instead.
//  3. Compile the topology into an inference Plan, then run any registered
//     Estimator — Correlation (the paper's Section-4 algorithm),
//     Independence (the Nguyen–Thiran baseline), Theorem (the exact
//     Appendix-A algorithm), or MLE (composite-likelihood) — to recover
//     P(link congested) for every link. The plan precomputes everything
//     that depends only on the topology (admissible path/pair selection,
//     equation sparsity, identifiability), so repeated inference over new
//     records, streaming appends or batch trials only fills probabilities
//     and solves.
//
// For evaluating many scenarios at once — parameter sweeps, what-if
// studies, large Monte-Carlo campaigns — EvaluateBatch shards simulation
// and inference across a worker pool (internal/runner) with deterministic
// per-scenario seeding: results are bit-identical regardless of the worker
// count, and scenarios sharing a topology share one compiled plan.
//
// Beyond probability estimation, the facade exposes the rest of the
// paper's pipeline: Localize / LocalizeCorrelated identify the congested
// links of a single snapshot (Section 3.3), and Validate / CompareValidation
// run the PlanetLab tomographer's holdout indirect validation (Section 5).
//
// See examples/quickstart for a complete end-to-end program and
// examples/localize for per-snapshot localization.
package tomography

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/congestion"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/locate"
	"repro/internal/measure"
	"repro/internal/mle"
	"repro/internal/netsim"
	"repro/internal/plan"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/snapstore"
	"repro/internal/tomographer"
	"repro/internal/topology"
)

// Re-exported topology types. See internal/topology for full documentation.
type (
	// Topology is an immutable measurement topology: links, paths and
	// correlation sets.
	Topology = topology.Topology
	// Builder accumulates nodes, links, paths and correlation sets.
	Builder = topology.Builder
	// NodeID identifies a node.
	NodeID = topology.NodeID
	// LinkID identifies a logical link.
	LinkID = topology.LinkID
	// PathID identifies a measurement path.
	PathID = topology.PathID
)

// Re-exported measurement types.
type (
	// Record holds per-snapshot congested-path observations as a thin view
	// over columnar SnapshotStores.
	Record = netsim.Record
	// SnapshotStore is the columnar measurement store: one packed bit
	// column per path (or link) over snapshots.
	SnapshotStore = snapstore.Store
	// PathSet is a set of path indices — the per-snapshot observation fed
	// to Empirical.Append and returned by Record.PathSnapshot. Build one
	// with NewPathSet.
	PathSet = bitset.Set
	// Source supplies P(path set all-good) estimates to the algorithms.
	Source = measure.Source
	// Empirical estimates probabilities from columnar observations.
	Empirical = measure.Empirical
)

// Re-exported algorithm types.
type (
	// Result is the output of the practical algorithms.
	Result = core.Result
	// Options tunes the practical algorithms.
	Options = core.Options
	// TheoremResult is the output of the exact algorithm.
	TheoremResult = core.TheoremResult
	// TheoremOptions tunes the exact algorithm.
	TheoremOptions = core.TheoremOptions
	// MLEResult is the output of the composite-likelihood estimator.
	MLEResult = mle.Result
	// MLEOptions tunes the composite-likelihood optimizer.
	MLEOptions = mle.Options
)

// Re-exported inference-plan types. A Plan is compiled once per topology
// (Compile) and shared — safely, across goroutines — by every estimator
// run over that topology.
type (
	// Plan is a compiled, reusable inference plan for one topology.
	Plan = plan.Plan
	// PlanOptions tunes Compile.
	PlanOptions = plan.Options
)

// Re-exported per-snapshot localization types (Section 3.3).
type (
	// LocalizeResult is one snapshot's inferred congested-link set.
	LocalizeResult = locate.Result
	// SetStates is a correlation set's learned joint state distribution,
	// consumed by LocalizeCorrelated.
	SetStates = locate.SetStates
	// SubsetState is one state of a correlation set.
	SubsetState = locate.SubsetState
	// LocalizeMetrics summarizes localization quality over many snapshots.
	LocalizeMetrics = locate.Metrics
)

// Re-exported indirect-validation types (Section 5, PlanetLab tomographer).
type (
	// ValidationConfig parameterizes one holdout indirect validation.
	ValidationConfig = tomographer.Config
	// ValidationReport is the outcome of an indirect validation.
	ValidationReport = tomographer.Report
	// ValidationComparison bundles the correlation-aware and
	// independence-assuming validations the paper proposes to compare.
	ValidationComparison = tomographer.Comparison
)

// Model is a ground-truth congestion process (used with Simulate).
type Model = congestion.Model

// SimConfig parameterizes Simulate.
type SimConfig = netsim.Config

// SimMode selects the simulator's measurement fidelity.
type SimMode = netsim.Mode

// Re-exported simulator modes.
const (
	// StateLevel derives path states from link states (Assumption 2).
	StateLevel = netsim.StateLevel
	// PacketLevel simulates loss rates and probe packets per snapshot.
	PacketLevel = netsim.PacketLevel
)

// Scenario is a fully specified experiment input: a topology, a ground-truth
// congestion model, and the per-link truth the evaluation compares against.
// See internal/scenario for full documentation.
type Scenario = scenario.Scenario

// ScenarioConfig parameterizes NewScenario.
type ScenarioConfig = scenario.FromTopologyConfig

// CorrelationLevel selects how congested links cluster inside correlation
// sets in a synthesized scenario.
type CorrelationLevel = scenario.CorrelationLevel

// Re-exported correlation levels.
const (
	// HighCorrelation: more than 2 congested links per correlation set.
	HighCorrelation = scenario.HighCorrelation
	// LooseCorrelation: up to 2 congested links per correlation set.
	LooseCorrelation = scenario.LooseCorrelation
)

// Evaluation helpers, re-exported from internal/eval: they summarize the
// error samples EvaluateBatch and the estimators produce.

// AbsErrors returns the sorted absolute errors |truth − inferred| over the
// links of include (all links when include is nil).
func AbsErrors(truth, inferred []float64, include *PathSet) []float64 {
	return eval.AbsErrors(truth, inferred, include)
}

// Mean returns the mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 { return eval.Mean(xs) }

// Percentile returns the p-th percentile of xs.
func Percentile(xs []float64, p float64) float64 { return eval.Percentile(xs, p) }

// FracBelow returns the fraction of xs at or below x.
func FracBelow(xs []float64, x float64) float64 { return eval.FracBelow(xs, x) }

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder { return topology.NewBuilder() }

// Figure1A returns the toy topology of the paper's Figure 1(a).
func Figure1A() *Topology { return topology.Figure1A() }

// Figure1B returns the toy topology of the paper's Figure 1(b), which
// violates Assumption 4.
func Figure1B() *Topology { return topology.Figure1B() }

// Simulate runs the snapshot simulator and returns the observation record.
func Simulate(cfg SimConfig) (*Record, error) { return netsim.Run(cfg) }

// NewEmpirical wraps a record into a measurement source. It fails on a nil
// or empty record (zero snapshots admit no frequency estimates).
func NewEmpirical(rec *Record) (*Empirical, error) { return measure.NewEmpirical(rec) }

// NewStreaming returns an empty streaming measurement source over numPaths
// paths: feed it observed snapshots one at a time with Append (build each
// observation with NewPathSet) and run the algorithms at any point —
// estimates over the first N appended snapshots are identical to a
// one-shot batch over the same data. See examples/streaming-monitor.
func NewStreaming(numPaths int) *Empirical { return measure.NewStreaming(numPaths) }

// NewPathSet returns the set containing exactly the given path indices —
// one snapshot's congested-path observation for Empirical.Append or
// NewRecordFromRows.
func NewPathSet(paths ...int) *PathSet { return bitset.FromIndices(paths...) }

// NewRecordFromRows converts legacy row-major observations (one congested-
// path set per snapshot) into a columnar Record — the compatibility path
// for callers that assemble snapshots themselves.
func NewRecordFromRows(numPaths int, rows []*PathSet) *Record {
	return netsim.NewRecordFromRows(numPaths, rows)
}

// Compile builds a reusable inference plan for a topology: everything that
// depends only on the topology — admissible path/pair selection, equation
// sparsity structure, per-correlation-set indices, the identifiability
// check — is computed once and shared by every subsequent estimator run.
// The returned plan is immutable from the caller's perspective and safe for
// concurrent use; see the package docs of internal/plan for the memoization
// contract.
func Compile(top *Topology, opts PlanOptions) (*Plan, error) {
	return plan.Compile(top, opts)
}

// Correlation runs the paper's correlation-aware algorithm (Section 4):
// it forms log-linear equations only from paths and pairs of paths that
// traverse at most one link per correlation set, and solves for every
// link's congestion probability.
//
// This is the fused one-shot form — selection and probability lookup in a
// single pass, with nothing retained. Callers running repeated inference
// over one topology should Compile once and go through the plan (or the
// estimator registry); plan-based results are bit-identical.
func Correlation(top *Topology, src Source, opts Options) (*Result, error) {
	return core.Correlation(top, src, opts)
}

// Independence runs the Nguyen–Thiran baseline, which assumes all links are
// uncorrelated. When links are correlated its equations factorize joint
// probabilities incorrectly; the paper (and this library's benchmarks)
// quantify the resulting error. One-shot form; see Correlation for the
// plan-based alternative.
func Independence(top *Topology, src Source, opts Options) (*Result, error) {
	return core.Independence(top, src, opts)
}

// Theorem runs the exact algorithm extracted from the proof of Theorem 1
// (Appendix A). It requires Assumption 4 and small correlation sets, and
// additionally needs exact-congestion-pattern probabilities, which the
// Empirical source provides. One-shot form; see Correlation for the
// plan-based alternative.
func Theorem(top *Topology, src measure.PatternSource, opts TheoremOptions) (*TheoremResult, error) {
	return core.Theorem(top, src, opts)
}

// MLE runs the composite-likelihood maximum-likelihood estimator (the
// Boolean-tomography baseline style of [12]/[17]): same information set as
// Independence, but observations weighted by their binomial information
// content. The source must provide per-path and per-pair good-frequencies
// (Empirical does). One-shot form; see Correlation for the plan-based
// alternative.
func MLE(top *Topology, src Source, opts MLEOptions) (*MLEResult, error) {
	ms, ok := src.(mle.Source)
	if !ok {
		return nil, fmt.Errorf("tomography: MLE needs per-path and per-pair good-frequencies (FastPairSource); %T does not provide them", src)
	}
	return mle.Estimate(top, ms, opts)
}

// Localize identifies the most likely congested-link set behind one
// snapshot's congested-path observation, assuming links fail independently
// with the given marginal probabilities (learned by any estimator). This is
// the paper's Section-3.3 per-snapshot localization.
func Localize(top *Topology, probs []float64, congestedPaths *PathSet) (*LocalizeResult, error) {
	return locate.Independent(top, probs, congestedPaths)
}

// LocalizeCorrelated is Localize with per-correlation-set joint state
// probabilities (e.g. the Theorem estimator's output via TheoremSetStates):
// correlated sets are explained by their learned joint states instead of
// independent marginals, which detects co-congested links that independent
// localization misses. Sets not mentioned in states fall back to the
// marginals.
func LocalizeCorrelated(top *Topology, probs []float64, states []SetStates, congestedPaths *PathSet) (*LocalizeResult, error) {
	return locate.Correlated(top, probs, states, congestedPaths)
}

// EvaluateLocalization compares per-snapshot localization output against
// per-snapshot ground-truth congested-link sets.
func EvaluateLocalization(truth, inferred []*PathSet) (LocalizeMetrics, error) {
	return locate.Evaluate(truth, inferred)
}

// TheoremSetStates converts a Theorem result's recovered joint distribution
// into the per-set state tables LocalizeCorrelated consumes.
func TheoremSetStates(top *Topology, thm *TheoremResult) []SetStates {
	var states []SetStates
	for p := 0; p < top.NumSets(); p++ {
		ss := SetStates{Set: p}
		bitset.EnumerateSubsets(top.CorrelationSet(p).Indices(), func(s *bitset.Set) bool {
			if prob, ok := thm.JointProb[s.Key()]; ok {
				ss.States = append(ss.States, SubsetState{Links: s.Clone(), P: prob})
			}
			return true
		})
		ss.States = append(ss.States, SubsetState{Links: bitset.New(top.NumLinks()), P: thm.ProbSetEmpty[p]})
		states = append(states, ss)
	}
	return states
}

// Validate runs one holdout indirect validation (Padmanabhan et al.): infer
// link probabilities from a training split of the paths, predict the
// held-out paths' good-frequencies, and compare prediction to observation.
func Validate(cfg ValidationConfig) (*ValidationReport, error) {
	return tomographer.Run(cfg)
}

// CompareValidation runs the indirect validation under both correlation
// assumptions on the same record and split — the experiment the paper's
// PlanetLab tomographer was being built to perform (Section 5).
func CompareValidation(top *Topology, rec *Record, holdoutFrac float64, seed int64) (*ValidationComparison, error) {
	return tomographer.Compare(top, rec, holdoutFrac, seed)
}

// CheckIdentifiability verifies Assumption 4 for a topology (subsetCap ≤ 0
// uses the default enumeration budget). See the paper's Section 3.3 for what
// to do when it fails — including MergeTransform.
func CheckIdentifiability(top *Topology, subsetCap int) topology.CheckResult {
	return topology.CheckIdentifiability(top, subsetCap)
}

// MergeTransform applies the Section-3.3 link-merge transformation, removing
// structural Assumption-4 violations at reduced granularity.
func MergeTransform(top *Topology) (*Topology, topology.MergeMap, error) {
	return topology.MergeTransform(top)
}

// NewScenario builds a congestion scenario for an arbitrary measurement
// topology: a shared-cause process over the topology's correlation sets,
// with congested links placed according to the requested correlation level.
// Scenarios built here feed EvaluateBatch (or Simulate directly).
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	return scenario.FromTopology(cfg)
}

// BatchOptions tunes EvaluateBatch.
type BatchOptions struct {
	// Snapshots per scenario simulation (must be > 0).
	Snapshots int
	// Seed is the root seed; each scenario's simulation seed is derived from
	// (Seed, index), so batch results are reproducible and independent of
	// Workers.
	Seed int64
	// Workers caps the worker pool (0 ⇒ GOMAXPROCS, 1 ⇒ serial).
	Workers int
	// Mode selects state-level (default) or packet-level measurement.
	Mode SimMode
	// PacketsPerPath for packet-level mode (0 ⇒ default).
	PacketsPerPath int
	// Algorithm tunes the two practical algorithms.
	Algorithm Options
	// Progress, when non-nil, is called after each completed scenario with
	// (done, total). Calls are serialized.
	Progress func(done, total int)
}

// BatchResult is the evaluation of one scenario in a batch.
type BatchResult struct {
	// Scenario is the evaluated input.
	Scenario *Scenario
	// Correlation and Independence are the two algorithms' outputs; nil when
	// Err is set.
	Correlation  *Result
	Independence *Result
	// CorrErrors and IndepErrors are the sorted absolute errors versus the
	// scenario's ground truth over its potentially congested links — ready
	// for eval-style CDF/mean/percentile summaries.
	CorrErrors  []float64
	IndepErrors []float64
	// Err records a per-scenario failure; the rest of the batch still runs.
	Err error
}

// planCache lazily compiles one inference plan per distinct topology in a
// batch, so scenarios sharing a topology — the common sweep/trial layout —
// share all structural work. The once-guarded entries make concurrent
// first uses compile exactly once.
type planCache struct {
	mu      sync.Mutex
	opts    PlanOptions
	entries map[*Topology]*planCacheEntry
}

type planCacheEntry struct {
	once sync.Once
	plan *Plan
	err  error
}

func newPlanCache(opts PlanOptions) *planCache {
	return &planCache{opts: opts, entries: map[*Topology]*planCacheEntry{}}
}

func (c *planCache) get(top *Topology) (*Plan, error) {
	c.mu.Lock()
	e := c.entries[top]
	if e == nil {
		e = &planCacheEntry{}
		c.entries[top] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.plan, e.err = Compile(top, c.opts) })
	return e.plan, e.err
}

// EvaluateBatch evaluates many scenarios concurrently on a bounded worker
// pool: each scenario is simulated for opts.Snapshots snapshots with a seed
// derived from (opts.Seed, its index), then both the correlation algorithm
// and the independence baseline run on the simulated record. Results arrive
// in input order and are bit-identical for every opts.Workers setting.
// Scenarios that share a *Topology share one compiled inference plan, so
// the per-topology structural work (admissible path/pair selection, rank
// tracking) is paid once per topology rather than once per trial.
//
// Scenarios carrying a time-indexed congestion process (Scenario.Process,
// e.g. the dynamic entries of the named registry) are simulated with the
// sequential dynamic engine instead of the i.i.d. block-parallel one; their
// errors are measured against the process's stationary marginals.
//
// A scenario that fails records its error in its own BatchResult and does
// not abort the batch; EvaluateBatch itself returns an error only for
// invalid options or a cancelled context.
func EvaluateBatch(ctx context.Context, scenarios []*Scenario, opts BatchOptions) ([]BatchResult, error) {
	if opts.Snapshots <= 0 {
		return nil, fmt.Errorf("tomography: EvaluateBatch snapshots = %d, want > 0", opts.Snapshots)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("tomography: EvaluateBatch workers = %d, want ≥ 0 (0 means GOMAXPROCS)", opts.Workers)
	}
	if opts.PacketsPerPath < 0 {
		return nil, fmt.Errorf("tomography: EvaluateBatch packets per path = %d, want ≥ 0 (0 means the packet-level default)", opts.PacketsPerPath)
	}
	plans := newPlanCache(PlanOptions{Algorithm: opts.Algorithm})
	pool := &runner.Runner{Workers: opts.Workers, Progress: opts.Progress}
	// One evaluate workspace per concurrently active worker: tasks borrow a
	// workspace for their inference calls and return it, so the per-scenario
	// solver state (equation RHS, matrices, LP tableaus) is recycled across
	// the whole batch instead of reallocated per trial.
	workspaces := sync.Pool{New: func() any { return &plan.Workspace{} }}
	return runner.Map(ctx, pool, len(scenarios), func(ctx context.Context, i int) (BatchResult, error) {
		ws := workspaces.Get().(*plan.Workspace)
		defer workspaces.Put(ws)
		res := BatchResult{Scenario: scenarios[i]}
		res.fill(ctx, opts, plans, ws, runner.DeriveSeed(opts.Seed, i))
		return res, nil
	})
}

// fill runs simulation + both algorithms for one scenario, recording any
// failure in res.Err. ws is the worker's borrowed evaluate workspace; the
// retained results are detached from it before it is reused.
func (res *BatchResult) fill(ctx context.Context, opts BatchOptions, plans *planCache, ws *plan.Workspace, seed int64) {
	s := res.Scenario
	var rec *Record
	var err error
	if s.Process != nil {
		// Time-indexed scenario: the dynamic engine evolves the congestion
		// state snapshot by snapshot (the process chain stays sequential;
		// per-path observation fans out across the worker budget).
		rec, err = netsim.RunDynamic(ctx, netsim.DynamicConfig{
			Topology:       s.Topology,
			Process:        s.Process,
			Snapshots:      opts.Snapshots,
			Seed:           seed,
			Mode:           opts.Mode,
			PacketsPerPath: opts.PacketsPerPath,
			// Like the i.i.d. branch: a fanned-out batch forces this nested
			// fan-out serial; a one-scenario batch hands it the full budget.
			Workers: opts.Workers,
		})
	} else {
		rec, err = netsim.RunContext(ctx, netsim.Config{
			Topology:       s.Topology,
			Model:          s.Model,
			Snapshots:      opts.Snapshots,
			Seed:           seed,
			Mode:           opts.Mode,
			PacketsPerPath: opts.PacketsPerPath,
			// A fanned-out batch forces this nested pool serial; a one-scenario
			// batch hands it the full budget.
			Parallelism: opts.Workers,
		})
	}
	if err != nil {
		res.Err = err
		return
	}
	src, err := measure.NewEmpirical(rec)
	if err != nil {
		res.Err = err
		return
	}
	p, err := plans.get(s.Topology)
	if err != nil {
		res.Err = err
		return
	}
	// Run each estimator through the worker's workspace and detach what the
	// BatchResult retains; the error samples are computed straight off the
	// workspace-owned output before the next estimator reuses it.
	corr, err := p.CorrelationIn(ws, src, opts.Algorithm)
	if err != nil {
		res.Err = err
		return
	}
	res.CorrErrors = eval.AbsErrors(s.Truth, corr.CongestionProb, s.PotentiallyCongested)
	res.Correlation = corr.Clone()
	indep, err := p.IndependenceIn(ws, src, opts.Algorithm)
	if err != nil {
		res.Err = err
		return
	}
	res.IndepErrors = eval.AbsErrors(s.Truth, indep.CongestionProb, s.PotentiallyCongested)
	res.Independence = indep.Clone()
}
