package tomography_test

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	tomography "repro"
	"repro/internal/bitset"
	"repro/internal/brite"
	"repro/internal/congestion"
	"repro/internal/netsim"
	"repro/internal/scenario"
)

// quietDetector returns a change detector that never alarms (and therefore
// never appends a change point), so allocation measurements see only the
// inference pipeline.
func quietDetector() *tomography.ChangeDetector {
	return &tomography.ChangeDetector{Warmup: math.MaxInt32, Drift: 1, Threshold: 1e18, Smoothing: 1}
}

// briteWindowFixture builds a mid-sized Brite scenario record and
// pre-materialized observation rows for windowed-inference tests.
func briteWindowFixture(t testing.TB, snapshots int) (*scenario.Scenario, []*tomography.PathSet) {
	t.Helper()
	net, err := brite.Generate(brite.Config{ASes: 40, EdgesPerAS: 2, Paths: 150, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.Brite(scenario.BriteConfig{
		Net: net, FracCongested: 0.10, Level: scenario.HighCorrelation, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: s.Topology, Model: s.Model, Snapshots: snapshots, Seed: 97, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, rec.Paths.Rows()
}

// figure1AWindowFixture builds a record over the Figure-1(a) toy — small
// enough for the theorem estimator — with a bounded pattern alphabet, so a
// warmed sliding window sees no never-before-seen congestion pattern.
func figure1AWindowFixture(t testing.TB, snapshots int) (*tomography.Topology, []*tomography.PathSet) {
	t.Helper()
	top := tomography.Figure1A()
	model, err := congestion.NewTable(4, []congestion.GroupTable{
		{
			Links: []int{0, 1},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: 0.60},
				{Links: bitset.FromIndices(0), P: 0.10},
				{Links: bitset.FromIndices(1), P: 0.12},
				{Links: bitset.FromIndices(0, 1), P: 0.18},
			},
		},
		{Links: []int{2}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.8}, {Links: bitset.FromIndices(2), P: 0.2},
		}},
		{Links: []int{3}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.9}, {Links: bitset.FromIndices(3), P: 0.1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := netsim.Run(netsim.Config{Topology: top, Model: model, Snapshots: snapshots, Seed: 3, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	return top, rec.Paths.Rows()
}

// steadyStateAllocs measures the average allocations of one steady-state
// windowed-inference step (Observe + EstimateShared) for an estimator after
// a warm-up that has filled the window, grown every workspace buffer, and
// seen every pattern the stream contains.
func steadyStateAllocs(t *testing.T, top *tomography.Topology, rows []*tomography.PathSet, estimator string, window, countWorkers int, spill *tomography.SpillConfig) float64 {
	t.Helper()
	w, err := tomography.NewWindow(top, tomography.WindowConfig{
		Size:         window,
		Estimator:    estimator,
		Detector:     quietDetector(),
		CountWorkers: countWorkers,
		Spill:        spill,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	next := 0
	observe := func() {
		w.Observe(rows[next])
		next = (next + 1) % len(rows)
	}
	estimate := func() {
		if _, err := w.EstimateShared(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up: fill the window; one estimate grows every workspace buffer
	// (and, for pattern-histogram estimators, materializes the histogram);
	// a full cycle through the stream then charges every pattern it
	// contains into the live histogram; a few more estimates settle map
	// growth.
	for i := 0; i < window; i++ {
		observe()
	}
	estimate()
	for i := 0; i < len(rows); i++ {
		observe()
	}
	for i := 0; i < 3; i++ {
		estimate()
	}
	return testing.AllocsPerRun(50, func() {
		observe()
		estimate()
	})
}

// TestWindowedInferenceSteadyStateAllocs is the allocation budget of the
// online monitoring loop: once a window is warm, Observe + EstimateShared
// must run garbage-free for the linear-family and theorem estimators, and
// within a small pinned constant for the MLE optimizer. This is the
// regression gate CI enforces (any new per-estimate allocation on the hot
// path fails it).
func TestWindowedInferenceSteadyStateAllocs(t *testing.T) {
	scn, briteRows := briteWindowFixture(t, 700)
	toyTop, toyRows := figure1AWindowFixture(t, 700)

	cases := []struct {
		name      string
		estimator string
		top       *tomography.Topology
		rows      []*tomography.PathSet
		window    int
		workers   int
		spill     bool
		budget    float64
	}{
		{"correlation/brite", "correlation", scn.Topology, briteRows, 256, 0, false, 0},
		{"independence/brite", "independence", scn.Topology, briteRows, 256, 0, false, 0},
		{"correlation/toy", "correlation", toyTop, toyRows, 256, 0, false, 0},
		{"theorem/toy", "theorem", toyTop, toyRows, 256, 0, false, 0},
		// The MLE optimizer is allocation-free too; budget 0 documents it.
		{"mle/toy", "mle", toyTop, toyRows, 256, 0, false, 0},
		// The parallel count kernels share the budget: once the workspace
		// pool is warm, dispatching estimate counts across 4 workers must
		// not allocate either. The window spans multiple 512-word blocks so
		// the fan-out actually engages (smaller windows clamp to serial).
		{"correlation/toy/parallel-counts", "correlation", toyTop, toyRows, 64*512 + 300, 4, false, 0},
		// The segment-backed warm read path shares the budget too: the
		// window spans sealed (mapped) segments, a mid-segment head
		// boundary, and the active tail buffer, and every count query over
		// them must stay garbage-free between seals (the seal itself — once
		// per 512 appends, outside the measured steady state — is the only
		// allocating event).
		{"correlation/toy/spill", "correlation", toyTop, toyRows, 1536, 0, true, 0},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var spill *tomography.SpillConfig
			if c.spill {
				spill = &tomography.SpillConfig{Dir: t.TempDir(), SegmentRows: 512}
			}
			got := steadyStateAllocs(t, c.top, c.rows, c.estimator, c.window, c.workers, spill)
			if got > c.budget {
				t.Fatalf("steady-state Observe+EstimateShared allocates %.2f objects/op, budget %v", got, c.budget)
			}
		})
	}
}

// TestWindowedEstimateFuncSteadyState pins the streaming replay: it must
// produce the same checkpoints as WindowedEstimate, bit-identically, while
// its results live in the window's workspace.
func TestWindowedEstimateFuncSteadyState(t *testing.T) {
	s, err := tomography.BuildScenario("quickstart", 5)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: s.Topology, Model: s.Model, Snapshots: 600, Seed: 11, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tomography.WindowConfig{Size: 256}
	const stride = 64
	want, err := tomography.WindowedEstimate(s.Topology, rec, cfg, stride)
	if err != nil {
		t.Fatal(err)
	}
	var got []tomography.WindowPoint
	err = tomography.WindowedEstimateFunc(s.Topology, rec, cfg, stride, func(pt tomography.WindowPoint) error {
		// The point's result aliases the window workspace; detach what the
		// comparison keeps.
		cp := *pt.Result
		cp.CongestionProb = append([]float64(nil), cp.CongestionProb...)
		pt.Result = &cp
		got = append(got, pt)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("WindowedEstimateFunc produced %d checkpoints, WindowedEstimate %d", len(got), len(want))
	}
	for i := range want {
		if got[i].T != want[i].T || got[i].Changed != want[i].Changed {
			t.Fatalf("checkpoint %d: (T=%d, Changed=%v) != (T=%d, Changed=%v)",
				i, got[i].T, got[i].Changed, want[i].T, want[i].Changed)
		}
		if !reflect.DeepEqual(got[i].Result.CongestionProb, want[i].Result.CongestionProb) {
			t.Fatalf("checkpoint %d: workspace replay diverged from allocating replay", i)
		}
	}
}

// TestEstimateInMatchesEstimate is the workspace-equivalence property: for
// every registered estimator, running through a reused workspace must be
// bit-identical to the allocating path — on a fresh workspace, and on one
// already dirtied by other estimators and other sources.
func TestEstimateInMatchesEstimate(t *testing.T) {
	top, rows := figure1AWindowFixture(t, 2000)
	rec := tomography.NewRecordFromRows(top.NumPaths(), rows)
	src, err := tomography.NewEmpirical(rec)
	if err != nil {
		t.Fatal(err)
	}
	// A second source with different data dirties the workspace between runs.
	otherSrc, err := tomography.NewEmpirical(tomography.NewRecordFromRows(top.NumPaths(), rows[:1000]))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := tomography.Compile(top, tomography.PlanOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	ws := tomography.NewWorkspace()
	for _, name := range tomography.EstimatorNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			want, err := tomography.Estimate(name, plan, src, tomography.EstimateOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tomography.EstimateIn(ws, name, plan, otherSrc, tomography.EstimateOptions{}); err != nil {
				t.Fatal(err)
			}
			got, err := tomography.EstimateIn(ws, name, plan, src, tomography.EstimateOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Estimator != want.Estimator {
				t.Fatalf("estimator name %q != %q", got.Estimator, want.Estimator)
			}
			if !reflect.DeepEqual(got.CongestionProb, want.CongestionProb) {
				t.Fatalf("workspace CongestionProb diverges from allocating path:\n got %v\nwant %v", got.CongestionProb, want.CongestionProb)
			}
			switch {
			case want.Linear != nil:
				if got.Linear == nil || got.Linear.Solver != want.Linear.Solver ||
					!reflect.DeepEqual(got.Linear.LogGoodProb, want.Linear.LogGoodProb) {
					t.Fatalf("workspace linear result diverges from allocating path")
				}
				if got.Linear.System.Rank != want.Linear.System.Rank ||
					got.Linear.System.SinglePathEqs != want.Linear.System.SinglePathEqs ||
					got.Linear.System.PairEqs != want.Linear.System.PairEqs {
					t.Fatalf("workspace equation system diverges from allocating path")
				}
			case want.Theorem != nil:
				if got.Theorem == nil ||
					!reflect.DeepEqual(got.Theorem.Alpha, want.Theorem.Alpha) ||
					!reflect.DeepEqual(got.Theorem.JointProb, want.Theorem.JointProb) ||
					!reflect.DeepEqual(got.Theorem.ProbSetEmpty, want.Theorem.ProbSetEmpty) {
					t.Fatalf("workspace theorem result diverges from allocating path")
				}
			case want.MLE != nil:
				if got.MLE == nil || got.MLE.Iters != want.MLE.Iters ||
					got.MLE.LogLikelihood != want.MLE.LogLikelihood ||
					!reflect.DeepEqual(got.MLE.LogGoodProb, want.MLE.LogGoodProb) {
					t.Fatalf("workspace mle result diverges from allocating path")
				}
			}
		})
	}
}

// blockingSource is a measurement source whose first probability query
// parks until released — it holds a workspace demonstrably mid-estimate so
// the concurrency guard can be exercised deterministically.
type blockingSource struct {
	numPaths int
	entered  chan struct{}
	release  chan struct{}
	once     sync.Once
}

func (s *blockingSource) NumPaths() int { return s.numPaths }

func (s *blockingSource) ProbPathsGood(*tomography.PathSet) float64 {
	s.once.Do(func() {
		close(s.entered)
		<-s.release
	})
	return 0.9
}

// TestWorkspaceConcurrentUseDetected pins the misuse contract: a second
// goroutine calling EstimateIn on a workspace that is mid-estimate panics
// with a diagnostic instead of silently corrupting results. Run under
// -race in CI, which would additionally flag any unsynchronized access.
func TestWorkspaceConcurrentUseDetected(t *testing.T) {
	s, err := tomography.BuildScenario("quickstart", 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := tomography.Compile(s.Topology, tomography.PlanOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	src := &blockingSource{
		numPaths: s.Topology.NumPaths(),
		entered:  make(chan struct{}),
		release:  make(chan struct{}),
	}
	ws := tomography.NewWorkspace()

	done := make(chan error, 1)
	go func() {
		_, err := tomography.EstimateIn(ws, "correlation", plan, src, tomography.EstimateOptions{})
		done <- err
	}()
	<-src.entered // the workspace is now provably held mid-estimate

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		_, _ = tomography.EstimateIn(ws, "correlation", plan, src, tomography.EstimateOptions{})
		panicked <- nil
	}()
	p := <-panicked
	close(src.release)
	if err := <-done; err != nil {
		t.Fatalf("first EstimateIn failed: %v", err)
	}
	if p == nil {
		t.Fatal("concurrent EstimateIn on one workspace did not panic")
	}
	msg, ok := p.(string)
	if !ok || !strings.Contains(msg, "used concurrently") {
		t.Fatalf("concurrent use panicked with %v, want a 'used concurrently' diagnostic", p)
	}
}

// TestEstimateInNilWorkspace pins the nil-workspace error text.
func TestEstimateInNilWorkspace(t *testing.T) {
	s, err := tomography.BuildScenario("quickstart", 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := tomography.Compile(s.Topology, tomography.PlanOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = tomography.EstimateIn(nil, "correlation", plan, nil, tomography.EstimateOptions{})
	if err == nil || err.Error() != `tomography: EstimateIn "correlation": nil workspace (use NewWorkspace)` {
		t.Fatalf("nil workspace error = %v", err)
	}
}
