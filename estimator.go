package tomography

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/measure"
	"repro/internal/mle"
	"repro/internal/plan"
)

// EstimateOptions bundles the per-family tuning knobs an estimator may
// consume. Each estimator reads only its own field: the linear estimators
// (correlation, independence) read Algorithm, the exact algorithm reads
// Theorem, the composite-likelihood estimator reads MLE. The zero value is
// a sensible default for every estimator.
type EstimateOptions struct {
	// Algorithm tunes the practical linear algorithms.
	Algorithm Options
	// Theorem tunes the exact algorithm.
	Theorem TheoremOptions
	// MLE tunes the composite-likelihood optimizer.
	MLE MLEOptions
}

// EstimateResult is the uniform output of every registered estimator.
// CongestionProb is always populated; exactly one of the family-specific
// fields carries the estimator's full native output.
type EstimateResult struct {
	// Estimator is the name of the estimator that produced the result.
	Estimator string
	// CongestionProb[k] is the inferred P(link k congested).
	CongestionProb []float64
	// Linear is the native output of the correlation and independence
	// estimators; nil otherwise.
	Linear *Result
	// Theorem is the native output of the theorem estimator; nil otherwise.
	Theorem *TheoremResult
	// MLE is the native output of the mle estimator; nil otherwise.
	MLE *MLEResult
}

// Estimator is one pluggable inference flavor over the shared measurement
// model: given a compiled plan for a topology and a measurement source, it
// infers every link's congestion probability. Implementations must be safe
// for concurrent use; the built-in estimators additionally guarantee
// results bit-identical to their pre-registry entry points
// (Correlation, Independence, Theorem, MLE).
type Estimator interface {
	// Name is the estimator's registry key (e.g. "correlation").
	Name() string
	// Estimate runs inference through the compiled plan.
	Estimate(plan *Plan, src Source, opts EstimateOptions) (*EstimateResult, error)
}

// Workspace is the reusable evaluate-phase scratch of the estimator
// registry: equation right-hand sides, solver matrices, LP tableaus, MLE
// optimizer state, and the uniform result envelope. Plans stay shared and
// immutable; a workspace is the opposite — owned by one goroutine, reused
// across estimates (and across plans), mutated by every call. Concurrent
// use of one workspace is detected and reported by panic. Results returned
// through a workspace alias its storage: treat them as read-only and
// consume them before the workspace's next estimate. The plain Estimate
// path remains the safe default and is bit-identical.
type Workspace struct {
	ws  plan.Workspace
	res EstimateResult
}

// NewWorkspace returns a workspace for EstimateIn. Allocate one per
// goroutine (e.g. one per worker, or one per Window) and reuse it for every
// estimate that goroutine runs.
func NewWorkspace() *Workspace { return &Workspace{} }

// WorkspaceEstimator is the optional workspace-aware extension of
// Estimator: estimators that can run their evaluate phase on caller-owned
// scratch implement it, and EstimateIn routes through it. All built-in
// estimators do.
type WorkspaceEstimator interface {
	Estimator
	// EstimateIn runs inference through the compiled plan using ws for every
	// transient buffer. The result aliases ws.
	EstimateIn(ws *Workspace, plan *Plan, src Source, opts EstimateOptions) (*EstimateResult, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Estimator{}
)

// RegisterEstimator adds an estimator to the registry under its Name. It
// panics on an empty name or a duplicate registration — estimator wiring is
// a program-initialization concern, like database/sql drivers.
func RegisterEstimator(e Estimator) {
	name := e.Name()
	if name == "" {
		panic("tomography: RegisterEstimator with empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("tomography: RegisterEstimator called twice for " + name)
	}
	registry[name] = e
}

// LookupEstimator returns the registered estimator with the given name.
func LookupEstimator(name string) (Estimator, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// EstimatorNames returns the names of all registered estimators, sorted.
func EstimatorNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Estimate resolves an estimator by name and runs it: the dynamic entry
// point used by tools that select estimators from configuration or flags.
func Estimate(name string, plan *Plan, src Source, opts EstimateOptions) (*EstimateResult, error) {
	e, ok := LookupEstimator(name)
	if !ok {
		return nil, fmt.Errorf("tomography: unknown estimator %q (registered: %v)", name, EstimatorNames())
	}
	if plan == nil {
		return nil, fmt.Errorf("tomography: Estimate %q: nil plan (Compile the topology first)", name)
	}
	return e.Estimate(plan, src, opts)
}

// EstimateIn is Estimate running on a caller-owned workspace: the
// steady-state (compile once, estimate per window) form whose per-estimate
// allocations are zero for the built-in linear and theorem estimators.
// Results are bit-identical to Estimate but alias ws — read-only, valid
// until the next estimate on the same workspace. Estimators that do not
// implement WorkspaceEstimator fall back to their allocating path.
func EstimateIn(ws *Workspace, name string, plan *Plan, src Source, opts EstimateOptions) (*EstimateResult, error) {
	e, ok := LookupEstimator(name)
	if !ok {
		return nil, fmt.Errorf("tomography: unknown estimator %q (registered: %v)", name, EstimatorNames())
	}
	if plan == nil {
		return nil, fmt.Errorf("tomography: Estimate %q: nil plan (Compile the topology first)", name)
	}
	if ws == nil {
		return nil, fmt.Errorf("tomography: EstimateIn %q: nil workspace (use NewWorkspace)", name)
	}
	if we, ok := e.(WorkspaceEstimator); ok {
		return we.EstimateIn(ws, plan, src, opts)
	}
	return e.Estimate(plan, src, opts)
}

// --- Built-in estimators. ---

func init() {
	RegisterEstimator(correlationEstimator{})
	RegisterEstimator(independenceEstimator{})
	RegisterEstimator(theoremEstimator{})
	RegisterEstimator(mleEstimator{})
}

// correlationEstimator runs the paper's Section-4 correlation-aware
// algorithm.
type correlationEstimator struct{}

func (correlationEstimator) Name() string { return "correlation" }

func (correlationEstimator) Estimate(plan *Plan, src Source, opts EstimateOptions) (*EstimateResult, error) {
	res, err := plan.Correlation(src, opts.Algorithm)
	if err != nil {
		return nil, err
	}
	return &EstimateResult{
		Estimator:      "correlation",
		CongestionProb: res.CongestionProb,
		Linear:         res,
	}, nil
}

func (correlationEstimator) EstimateIn(ws *Workspace, plan *Plan, src Source, opts EstimateOptions) (*EstimateResult, error) {
	res, err := plan.CorrelationIn(&ws.ws, src, opts.Algorithm)
	if err != nil {
		return nil, err
	}
	ws.res = EstimateResult{
		Estimator:      "correlation",
		CongestionProb: res.CongestionProb,
		Linear:         res,
	}
	return &ws.res, nil
}

// independenceEstimator runs the Nguyen–Thiran uncorrelated-links baseline.
type independenceEstimator struct{}

func (independenceEstimator) Name() string { return "independence" }

func (independenceEstimator) Estimate(plan *Plan, src Source, opts EstimateOptions) (*EstimateResult, error) {
	res, err := plan.Independence(src, opts.Algorithm)
	if err != nil {
		return nil, err
	}
	return &EstimateResult{
		Estimator:      "independence",
		CongestionProb: res.CongestionProb,
		Linear:         res,
	}, nil
}

func (independenceEstimator) EstimateIn(ws *Workspace, plan *Plan, src Source, opts EstimateOptions) (*EstimateResult, error) {
	res, err := plan.IndependenceIn(&ws.ws, src, opts.Algorithm)
	if err != nil {
		return nil, err
	}
	ws.res = EstimateResult{
		Estimator:      "independence",
		CongestionProb: res.CongestionProb,
		Linear:         res,
	}
	return &ws.res, nil
}

// theoremEstimator runs the exact Appendix-A algorithm. It needs
// congestion-pattern probabilities, so the source must implement
// PatternSource (Empirical does).
type theoremEstimator struct{}

func (theoremEstimator) Name() string { return "theorem" }

func (theoremEstimator) Estimate(plan *Plan, src Source, opts EstimateOptions) (*EstimateResult, error) {
	ps, ok := src.(measure.PatternSource)
	if !ok {
		return nil, fmt.Errorf("tomography: the theorem estimator needs exact congestion-pattern probabilities (measure.PatternSource); %T does not provide them", src)
	}
	res, err := plan.Theorem(ps, opts.Theorem)
	if err != nil {
		return nil, err
	}
	return &EstimateResult{
		Estimator:      "theorem",
		CongestionProb: res.CongestionProb,
		Theorem:        res,
	}, nil
}

func (theoremEstimator) EstimateIn(ws *Workspace, plan *Plan, src Source, opts EstimateOptions) (*EstimateResult, error) {
	ps, ok := src.(measure.PatternSource)
	if !ok {
		return nil, fmt.Errorf("tomography: the theorem estimator needs exact congestion-pattern probabilities (measure.PatternSource); %T does not provide them", src)
	}
	res, err := plan.TheoremIn(&ws.ws, ps, opts.Theorem)
	if err != nil {
		return nil, err
	}
	ws.res = EstimateResult{
		Estimator:      "theorem",
		CongestionProb: res.CongestionProb,
		Theorem:        res,
	}
	return &ws.res, nil
}

// mleEstimator runs the composite-likelihood maximum-likelihood estimator.
// It needs per-path and per-pair good-frequencies, so the source must
// implement the fast pair queries (Empirical does).
type mleEstimator struct{}

func (mleEstimator) Name() string { return "mle" }

func (mleEstimator) Estimate(plan *Plan, src Source, opts EstimateOptions) (*EstimateResult, error) {
	ms, ok := src.(mle.Source)
	if !ok {
		return nil, fmt.Errorf("tomography: the mle estimator needs per-path and per-pair good-frequencies (FastPairSource); %T does not provide them", src)
	}
	res, err := plan.MLE(ms, opts.MLE)
	if err != nil {
		return nil, err
	}
	return &EstimateResult{
		Estimator:      "mle",
		CongestionProb: res.CongestionProb,
		MLE:            res,
	}, nil
}

func (mleEstimator) EstimateIn(ws *Workspace, plan *Plan, src Source, opts EstimateOptions) (*EstimateResult, error) {
	ms, ok := src.(mle.Source)
	if !ok {
		return nil, fmt.Errorf("tomography: the mle estimator needs per-path and per-pair good-frequencies (FastPairSource); %T does not provide them", src)
	}
	res, err := plan.MLEIn(&ws.ws, ms, opts.MLE)
	if err != nil {
		return nil, err
	}
	ws.res = EstimateResult{
		Estimator:      "mle",
		CongestionProb: res.CongestionProb,
		MLE:            res,
	}
	return &ws.res, nil
}
