package tomography_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	tomography "repro"
	"repro/internal/brite"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/mle"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/topology"
)

// randomFixture builds a randomized Brite topology with a correlated
// scenario and an empirical source over a short simulation.
func randomFixture(t testing.TB, seed int64, paths int) (*topology.Topology, *measure.Empirical) {
	t.Helper()
	net, err := brite.Generate(brite.Config{ASes: 20 + int(seed%17), EdgesPerAS: 2, Paths: paths, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.Brite(scenario.BriteConfig{
		Net: net, FracCongested: 0.10 + 0.02*float64(seed%4), Level: scenario.HighCorrelation, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := netsim.Run(netsim.Config{
		Topology: s.Topology, Model: s.Model, Snapshots: 700, Seed: seed + 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := measure.NewEmpirical(rec)
	if err != nil {
		t.Fatal(err)
	}
	return s.Topology, src
}

func TestEstimatorRegistry(t *testing.T) {
	names := tomography.EstimatorNames()
	want := []string{"correlation", "independence", "mle", "theorem"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("registered estimators = %v, want %v", names, want)
	}
	for _, n := range want {
		e, ok := tomography.LookupEstimator(n)
		if !ok {
			t.Fatalf("estimator %q not found", n)
		}
		if e.Name() != n {
			t.Fatalf("estimator %q reports name %q", n, e.Name())
		}
	}
	if _, err := tomography.Estimate("bogus", nil, nil, tomography.EstimateOptions{}); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}

// legacyReference runs the pre-registry one-shot entry point for one
// estimator name directly against internal/core and internal/mle — the
// fused implementations the redesign must stay bit-identical to.
func legacyReference(name string, top *topology.Topology, src *measure.Empirical, opts tomography.EstimateOptions) ([]float64, error) {
	switch name {
	case "correlation":
		res, err := core.Correlation(top, src, opts.Algorithm)
		if err != nil {
			return nil, err
		}
		return res.CongestionProb, nil
	case "independence":
		res, err := core.Independence(top, src, opts.Algorithm)
		if err != nil {
			return nil, err
		}
		return res.CongestionProb, nil
	case "theorem":
		res, err := core.Theorem(top, src, opts.Theorem)
		if err != nil {
			return nil, err
		}
		return res.CongestionProb, nil
	case "mle":
		res, err := mle.Estimate(top, src, opts.MLE)
		if err != nil {
			return nil, err
		}
		return res.CongestionProb, nil
	}
	return nil, fmt.Errorf("no legacy reference for %q", name)
}

// TestCompileOnceEstimateManyMatchesLegacy is the redesign's core property:
// compile a plan once, run every registered estimator against it many
// times, and require bit-identical output to the legacy one-shot paths —
// including identical errors where an estimator rejects the topology (the
// theorem algorithm on non-Assumption-4 random graphs).
func TestCompileOnceEstimateManyMatchesLegacy(t *testing.T) {
	opts := tomography.EstimateOptions{MLE: tomography.MLEOptions{MaxIters: 50}}
	for _, seed := range []int64{2, 29, 57, 83} {
		top, src := randomFixture(t, seed, 60+int(seed))
		plan, err := tomography.Compile(top, tomography.PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range tomography.EstimatorNames() {
			wantProbs, wantErr := legacyReference(name, top, src, opts)
			for round := 0; round < 3; round++ {
				got, gotErr := tomography.Estimate(name, plan, src, opts)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("seed %d %s round %d: error mismatch: legacy %v, plan %v", seed, name, round, wantErr, gotErr)
				}
				if wantErr != nil {
					if wantErr.Error() != gotErr.Error() {
						t.Fatalf("seed %d %s: error text diverged:\nlegacy: %v\nplan:   %v", seed, name, wantErr, gotErr)
					}
					continue
				}
				if !reflect.DeepEqual(wantProbs, got.CongestionProb) {
					t.Fatalf("seed %d %s round %d: plan probabilities differ from legacy one-shot", seed, name, round)
				}
				if got.Estimator != name {
					t.Fatalf("result names estimator %q, want %q", got.Estimator, name)
				}
			}
		}
	}
}

// TestSharedPlanConcurrentEstimates runs every estimator from many
// goroutines against one shared plan (exercised under -race in CI): every
// result must be bit-identical to the serial reference.
func TestSharedPlanConcurrentEstimates(t *testing.T) {
	top, src := randomFixture(t, 41, 70)
	plan, err := tomography.Compile(top, tomography.PlanOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	opts := tomography.EstimateOptions{MLE: tomography.MLEOptions{MaxIters: 40}}

	type ref struct {
		probs []float64
		err   error
	}
	refs := map[string]ref{}
	for _, name := range tomography.EstimatorNames() {
		probs, err := legacyReference(name, top, src, opts)
		refs[name] = ref{probs, err}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				for _, name := range tomography.EstimatorNames() {
					want := refs[name]
					got, err := tomography.Estimate(name, plan, src, opts)
					if (want.err == nil) != (err == nil) {
						errs <- fmt.Errorf("goroutine %d %s: error mismatch: %v vs %v", g, name, want.err, err)
						return
					}
					if err != nil {
						continue
					}
					if !reflect.DeepEqual(want.probs, got.CongestionProb) {
						errs <- fmt.Errorf("goroutine %d %s: concurrent estimate differs from serial reference", g, name)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEstimatorSourceRequirements: estimators with richer source needs must
// reject sources that cannot serve them, not panic or mis-infer.
func TestEstimatorSourceRequirements(t *testing.T) {
	top, _ := randomFixture(t, 3, 40)
	plan, err := tomography.Compile(top, tomography.PlanOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	// A bare Source without pattern or pair queries.
	src := plainSource{numPaths: top.NumPaths()}
	if _, err := tomography.Estimate("theorem", plan, src, tomography.EstimateOptions{}); err == nil {
		t.Fatal("theorem accepted a source without pattern probabilities")
	}
	if _, err := tomography.Estimate("mle", plan, src, tomography.EstimateOptions{}); err == nil {
		t.Fatal("mle accepted a source without pair frequencies")
	}
}

// plainSource implements only the minimal Source interface.
type plainSource struct{ numPaths int }

func (s plainSource) NumPaths() int { return s.numPaths }
func (s plainSource) ProbPathsGood(paths *tomography.PathSet) float64 {
	return 1
}
