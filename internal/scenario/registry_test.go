package scenario

import (
	"strings"
	"testing"
)

// TestRegistryBuildsEverything builds every named scenario and checks the
// structural invariants downstream consumers rely on.
func TestRegistryBuildsEverything(t *testing.T) {
	specs := Specs()
	if len(specs) < 6 {
		t.Fatalf("registry holds %d scenarios, want ≥ 6", len(specs))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			s, err := BuildNamed(spec.Name, 3)
			if err != nil {
				t.Fatal(err)
			}
			if s.Name != spec.Name {
				t.Errorf("built scenario is named %q, want %q", s.Name, spec.Name)
			}
			if s.Topology == nil {
				t.Fatal("nil topology")
			}
			if len(s.Truth) != s.Topology.NumLinks() {
				t.Fatalf("truth has %d entries, topology %d links", len(s.Truth), s.Topology.NumLinks())
			}
			if spec.Dynamic {
				if s.Process == nil {
					t.Error("dynamic scenario has no process")
				}
				if s.Model != nil {
					t.Error("dynamic scenario also carries an i.i.d. model")
				}
			} else {
				if s.Model == nil {
					t.Error("static scenario has no model")
				}
				if s.Process != nil {
					t.Error("static scenario carries a process")
				}
			}
			if s.CongestedLinks.IsEmpty() {
				t.Error("no congested links — the scenario measures nothing")
			}
			if s.PotentiallyCongested.IsEmpty() {
				t.Error("no potentially congested links — error metrics would be empty")
			}
			// Seed determinism: same seed, same truth.
			again, err := BuildNamed(spec.Name, 3)
			if err != nil {
				t.Fatal(err)
			}
			for k := range s.Truth {
				if s.Truth[k] != again.Truth[k] {
					t.Fatalf("truth differs across identical-seed builds at link %d", k)
				}
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, ok := Lookup("flash-crowd"); !ok {
		t.Fatal("flash-crowd not registered")
	}
	if _, err := BuildNamed("no-such-scenario", 1); err == nil {
		t.Fatal("unknown scenario accepted")
	} else if !strings.Contains(err.Error(), `unknown scenario "no-such-scenario"`) {
		t.Fatalf("unhelpful error: %v", err)
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
