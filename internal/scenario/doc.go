// Package scenario builds the congestion scenarios of the paper's evaluation
// (Section 5): which links are congested, how strongly they are correlated,
// which links are unidentifiable (Assumption-4 violations, Figure 4), and
// which are mislabeled (hidden attack correlation, Figure 5). Each builder
// returns a Scenario bundling the measurement topology, the ground-truth
// congestion model, the exact per-link truth P(Xek = 1), and the
// bookkeeping the evaluation metrics need.
//
// Paper mapping:
//
//   - Brite reproduces the paper's Brite setup: congestion probabilities
//     live on router-level links, AS-level marginals and joints are derived
//     from them, and correlation arises from AS links sharing a router-level
//     link. CorrelationLevel matches the Figure-3 captions: High means more
//     than 2 congested links per correlation set, Loose at most 2.
//   - PlanetLab reproduces the PlanetLab-like mesh with shared-cause
//     congestion per contiguous link cluster (the shared LAN / domain
//     resource).
//   - WithUnidentifiable (Figure 4) and WithMislabeled (Figure 5) perturb a
//     base scenario to measure robustness to Assumption-4 violations and to
//     correlation-set labeling errors.
//   - FromTopology is the generic entry point (used by cmd/tomo and the
//     facade's NewScenario): a shared-cause process over an arbitrary
//     topology's own correlation sets.
//
// Scenario construction is a pure function of its Config (including Seed):
// builders must not iterate Go maps or consult any other unordered source,
// because the parallel experiment engine (internal/runner) relies on
// scenarios being bit-identical across runs and worker counts.
package scenario
