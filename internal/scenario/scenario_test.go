package scenario

import (
	"math"
	"testing"

	"repro/internal/bitset"
	"repro/internal/brite"
	"repro/internal/planetlab"
	"repro/internal/topology"
)

func briteNet(t *testing.T) *brite.Network {
	t.Helper()
	net, err := brite.Generate(brite.Config{ASes: 40, EdgesPerAS: 2, Paths: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func plNet(t *testing.T) *planetlab.Network {
	t.Helper()
	net, err := planetlab.Generate(planetlab.Config{Routers: 80, VantagePoints: 16, Paths: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBriteScenarioValidation(t *testing.T) {
	if _, err := Brite(BriteConfig{Net: nil, FracCongested: 0.1}); err == nil {
		t.Fatal("nil net accepted")
	}
	if _, err := Brite(BriteConfig{Net: briteNet(t), FracCongested: 0}); err == nil {
		t.Fatal("zero fraction accepted")
	}
}

func TestBriteScenarioCongestedFraction(t *testing.T) {
	net := briteNet(t)
	for _, frac := range []float64{0.05, 0.10, 0.25} {
		s, err := Brite(BriteConfig{Net: net, FracCongested: frac, Level: HighCorrelation, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		nl := net.Topology.NumLinks()
		got := float64(s.CongestedLinks.Len()) / float64(nl)
		if math.Abs(got-frac) > 0.05 {
			t.Fatalf("frac %.2f: congested fraction %.3f (%d/%d links)", frac, got, s.CongestedLinks.Len(), nl)
		}
		// Truth agrees with the congested set.
		s.CongestedLinks.ForEach(func(k int) bool {
			if s.Truth[k] <= 0 {
				t.Fatalf("congested link %d has truth %v", k, s.Truth[k])
			}
			return true
		})
		for k, p := range s.Truth {
			if p > 1e-12 && !s.CongestedLinks.Contains(k) {
				t.Fatalf("link %d has truth %v but is not marked congested", k, p)
			}
		}
		// Potentially congested ⊇ congested (every congested link is on its
		// own congested path).
		if !s.CongestedLinks.IsSubsetOf(s.PotentiallyCongested) {
			t.Fatal("congested ⊄ potentially congested")
		}
	}
}

func TestBriteHighVsLoosePlacement(t *testing.T) {
	net := briteNet(t)
	high, err := Brite(BriteConfig{Net: net, FracCongested: 0.15, Level: HighCorrelation, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Brite(BriteConfig{Net: net, FracCongested: 0.15, Level: LooseCorrelation, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	perSet := func(s *Scenario) map[int]int {
		m := map[int]int{}
		s.CongestedLinks.ForEach(func(k int) bool {
			m[s.Topology.SetOf(topology.LinkID(k))]++
			return true
		})
		return m
	}
	// Loose: never more than 2 congested links per correlation set.
	for set, n := range perSet(loose) {
		if n > 2 {
			t.Fatalf("loose scenario has %d congested links in set %d", n, set)
		}
	}
	// High: at least one set with ≥3 congested links.
	max := 0
	for _, n := range perSet(high) {
		if n > max {
			max = n
		}
	}
	if max < 3 {
		t.Fatalf("high scenario max congested-per-set = %d, want ≥ 3", max)
	}
}

func TestBriteHighCorrelationIsReal(t *testing.T) {
	net := briteNet(t)
	s, err := Brite(BriteConfig{Net: net, FracCongested: 0.15, Level: HighCorrelation, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Find a correlation set with ≥2 congested links and verify the joint
	// good-probability does not factorize (true correlation).
	found := false
	bySet := map[int][]int{}
	s.CongestedLinks.ForEach(func(k int) bool {
		set := s.Topology.SetOf(topology.LinkID(k))
		bySet[set] = append(bySet[set], k)
		return true
	})
	for _, links := range bySet {
		if len(links) < 2 {
			continue
		}
		a, b := links[0], links[1]
		pa := 1 - s.Truth[a]
		pb := 1 - s.Truth[b]
		joint := s.Model.ProbAllGood(bitsetFrom(a, b))
		if math.Abs(joint-pa*pb) > 0.01 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no genuinely correlated congested pair found in high-correlation scenario")
	}
}

func TestPlanetLabScenario(t *testing.T) {
	net := plNet(t)
	s, err := PlanetLab(PlanetLabConfig{Net: net, FracCongested: 0.10, Level: HighCorrelation, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	nl := net.Topology.NumLinks()
	got := float64(s.CongestedLinks.Len()) / float64(nl)
	if math.Abs(got-0.10) > 0.05 {
		t.Fatalf("congested fraction %.3f, want ≈0.10", got)
	}
	loose, err := PlanetLab(PlanetLabConfig{Net: net, FracCongested: 0.10, Level: LooseCorrelation, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	perSet := map[int]int{}
	loose.CongestedLinks.ForEach(func(k int) bool {
		perSet[loose.Topology.SetOf(topology.LinkID(k))]++
		return true
	})
	for set, n := range perSet {
		if n > 2 {
			t.Fatalf("loose planetlab scenario has %d congested links in set %d", n, set)
		}
	}
}

func TestWithUnidentifiable(t *testing.T) {
	net := briteNet(t)
	s, err := Brite(BriteConfig{Net: net, FracCongested: 0.15, Level: HighCorrelation, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	u, err := WithUnidentifiable(s, 0.25, 19)
	if err != nil {
		t.Fatal(err)
	}
	// The marked links must be nonempty and the new topology must have node
	// violations (genuinely unidentifiable structure).
	if u.Unidentifiable.IsEmpty() {
		t.Fatal("no unidentifiable links marked")
	}
	if v := topology.NodeViolations(u.Topology); len(v) == 0 {
		t.Fatal("no structural Assumption-4 violations in transformed topology")
	}
	// Ground truth unchanged.
	for k := range s.Truth {
		if s.Truth[k] != u.Truth[k] {
			t.Fatalf("truth changed at link %d", k)
		}
	}
	// Same links and paths.
	if u.Topology.NumLinks() != s.Topology.NumLinks() || u.Topology.NumPaths() != s.Topology.NumPaths() {
		t.Fatal("transform changed the graph")
	}
	// A decent share of congested links must be covered.
	cong := 0
	u.Unidentifiable.ForEach(func(k int) bool {
		if u.CongestedLinks.Contains(k) {
			cong++
		}
		return true
	})
	if cong == 0 {
		t.Fatal("no congested links among unidentifiable")
	}
}

func TestWithUnidentifiableValidation(t *testing.T) {
	net := briteNet(t)
	s, _ := Brite(BriteConfig{Net: net, FracCongested: 0.1, Level: HighCorrelation, Seed: 17})
	if _, err := WithUnidentifiable(s, 0, 1); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := WithUnidentifiable(s, 1, 1); err == nil {
		t.Fatal("fraction 1 accepted")
	}
}

func TestWithMislabeled(t *testing.T) {
	net := briteNet(t)
	s, err := Brite(BriteConfig{Net: net, FracCongested: 0.10, Level: HighCorrelation, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	m, err := WithMislabeled(s, 0.5, 0.3, 29)
	if err != nil {
		t.Fatal(err)
	}
	// Mislabeled links must now be congested (attack marginal > 0) and make
	// up roughly the requested fraction of all congested links.
	m.Mislabeled.ForEach(func(k int) bool {
		if !m.CongestedLinks.Contains(k) {
			t.Fatalf("mislabeled link %d not congested", k)
		}
		if s.CongestedLinks.Contains(k) {
			t.Fatalf("mislabeled link %d was already congested in the base scenario", k)
		}
		return true
	})
	got := float64(m.Mislabeled.Len()) / float64(m.CongestedLinks.Len())
	if math.Abs(got-0.5) > 0.15 {
		t.Fatalf("mislabeled fraction %.3f, want ≈0.5", got)
	}
	// Targets span distinct correlation sets.
	sets := map[int]bool{}
	m.Mislabeled.ForEach(func(k int) bool {
		set := m.Topology.SetOf(topology.LinkID(k))
		if sets[set] {
			t.Fatalf("two mislabeled links in correlation set %d", set)
		}
		sets[set] = true
		return true
	})
	// Topology unchanged (algorithm stays unaware).
	if m.Topology != s.Topology {
		t.Fatal("mislabeled transform must not change the topology")
	}
}

func TestWithMislabeledValidation(t *testing.T) {
	net := briteNet(t)
	s, _ := Brite(BriteConfig{Net: net, FracCongested: 0.1, Level: HighCorrelation, Seed: 23})
	if _, err := WithMislabeled(s, 0, 0.3, 1); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := WithMislabeled(s, 0.5, 0, 1); err == nil {
		t.Fatal("zero attack probability accepted")
	}
}

func TestCorrelationLevelString(t *testing.T) {
	if HighCorrelation.String() != "high" || LooseCorrelation.String() != "loose" {
		t.Fatal("CorrelationLevel.String")
	}
}

func bitsetFrom(ks ...int) *bitset.Set { return bitset.FromIndices(ks...) }
