package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/brite"
	"repro/internal/dynamics"
	"repro/internal/planetlab"
	"repro/internal/topology"
)

// Spec is one named, ready-to-run scenario in the registry: a curated
// workload that can be built reproducibly from a seed alone. Named scenarios
// feed tomography.EvaluateBatch, the experiments engine and the cmd/tomo
// -scenario flag.
type Spec struct {
	// Name is the registry key (e.g. "flash-crowd").
	Name string
	// Description is a one-line summary shown by listings.
	Description string
	// Dynamic marks scenarios whose congestion process is time-indexed
	// (Scenario.Process set) rather than i.i.d. per snapshot.
	Dynamic bool
	// Build constructs the scenario for a seed. Equal seeds build identical
	// scenarios.
	Build func(seed int64) (*Scenario, error)
}

// registry holds the named scenarios, keyed by name.
var registry = map[string]Spec{}

// register adds a spec at package init; duplicates are a programming error.
func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("scenario: duplicate registration of " + s.Name)
	}
	registry[s.Name] = s
}

// Specs returns every registered scenario, sorted by name.
func Specs() []Spec {
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted names of all registered scenarios.
func Names() []string {
	specs := Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Lookup returns the spec registered under name.
func Lookup(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// BuildNamed builds the named scenario for a seed.
func BuildNamed(name string, seed int64) (*Scenario, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (registered: %v)", name, Names())
	}
	scn, err := s.Build(seed)
	if err != nil {
		return nil, fmt.Errorf("scenario: building %q: %w", name, err)
	}
	scn.Name = s.Name
	return scn, nil
}

// markovConfig tunes markovOverSets.
type markovConfig struct {
	chain        dynamics.Chain
	global       *dynamics.Chain
	coupling     float64
	onLo, onHi   float64 // per-link burst congestion probability range
	offLo, offHi float64 // per-link background congestion probability range
	maxGroups    int     // 0 ⇒ all multi-link correlation sets
}

// markovOverSets builds a Markov-modulated process whose groups are the
// topology's multi-link correlation sets: exactly the paper's "links share a
// congestion source" structure, made bursty in time. Per-link burst and
// background rates are drawn from the configured ranges with the given seed.
func markovOverSets(top *topology.Topology, seed int64, cfg markovConfig) (*dynamics.MarkovModulated, error) {
	rng := rand.New(rand.NewSource(seed))
	var sets []int
	for p := 0; p < top.NumSets(); p++ {
		if top.CorrelationSet(p).Len() >= 2 {
			sets = append(sets, p)
		}
	}
	if cfg.maxGroups > 0 && len(sets) > cfg.maxGroups {
		rng.Shuffle(len(sets), func(i, j int) { sets[i], sets[j] = sets[j], sets[i] })
		sets = sets[:cfg.maxGroups]
		sort.Ints(sets)
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("scenario: topology has no multi-link correlation sets to modulate")
	}
	groups := make([]dynamics.Group, 0, len(sets))
	for _, p := range sets {
		links := top.CorrelationSet(p).Indices()
		on := make([]float64, len(links))
		off := make([]float64, len(links))
		for i := range links {
			on[i] = cfg.onLo + (cfg.onHi-cfg.onLo)*rng.Float64()
			off[i] = cfg.offLo + (cfg.offHi-cfg.offLo)*rng.Float64()
		}
		groups = append(groups, dynamics.Group{
			Links:    links,
			Chain:    cfg.chain,
			OnProb:   on,
			OffProb:  off,
			Coupling: cfg.coupling,
		})
	}
	return dynamics.NewMarkovModulated(dynamics.Config{
		NumLinks: top.NumLinks(),
		Groups:   groups,
		Global:   cfg.global,
	})
}

// dynamicScenario assembles a Scenario around a time-indexed process.
func dynamicScenario(name string, top *topology.Topology, proc dynamics.Process) *Scenario {
	s := &Scenario{Name: name, Topology: top, Process: proc}
	finalize(s)
	return s
}

// registryBrite generates the mid-sized Brite topology the Brite-based named
// scenarios share.
func registryBrite(seed int64) (*brite.Network, error) {
	return brite.Generate(brite.Config{ASes: 30, EdgesPerAS: 2, Paths: 120, Seed: seed})
}

func init() {
	register(Spec{
		Name:        "quickstart",
		Description: "Figure-1(a) toy topology with a static shared-cause process (the README walkthrough)",
		Build: func(seed int64) (*Scenario, error) {
			return FromTopology(FromTopologyConfig{
				Topology: topology.Figure1A(), FracCongested: 0.5,
				Level: HighCorrelation, Seed: seed,
			})
		},
	})
	register(Spec{
		Name:        "worm",
		Description: "Brite topology where a hidden worm floods links across correlation-set boundaries (Figure 5's mislabeled correlation)",
		Build: func(seed int64) (*Scenario, error) {
			net, err := registryBrite(seed)
			if err != nil {
				return nil, err
			}
			base, err := Brite(BriteConfig{
				Net: net, FracCongested: 0.10, Level: HighCorrelation, Seed: seed + 1,
			})
			if err != nil {
				return nil, err
			}
			return WithMislabeled(base, 0.25, 0.3, seed+2)
		},
	})
	register(Spec{
		Name:        "planetlab-replay",
		Description: "PlanetLab-style mesh with a static shared-cause process over its link clusters (the Section-5 deployment)",
		Build: func(seed int64) (*Scenario, error) {
			net, err := planetlab.Generate(planetlab.Config{
				Routers: 64, VantagePoints: 24, Paths: 150, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			return PlanetLab(PlanetLabConfig{
				Net: net, FracCongested: 0.10, Level: HighCorrelation, Seed: seed + 1,
			})
		},
	})
	register(Spec{
		Name:        "flash-crowd",
		Description: "dynamic: a rare global event ignites congestion bursts across many correlation sets at once (coupled Markov modulators)",
		Dynamic:     true,
		Build: func(seed int64) (*Scenario, error) {
			net, err := registryBrite(seed)
			if err != nil {
				return nil, err
			}
			proc, err := markovOverSets(net.Topology, seed+1, markovConfig{
				chain:    dynamics.Chain{POn: 0.002, MeanBurst: 60},
				global:   &dynamics.Chain{POn: 0.005, MeanBurst: 80},
				coupling: 0.9,
				onLo:     0.5, onHi: 0.9,
				offLo: 0.0, offHi: 0.02,
				maxGroups: 12,
			})
			if err != nil {
				return nil, err
			}
			return dynamicScenario("flash-crowd", net.Topology, proc), nil
		},
	})
	register(Spec{
		Name:        "diurnal",
		Description: "dynamic: slow day/night-scale congestion cycles on a PlanetLab-style mesh (long-burst Markov modulators)",
		Dynamic:     true,
		Build: func(seed int64) (*Scenario, error) {
			net, err := planetlab.Generate(planetlab.Config{
				Routers: 64, VantagePoints: 24, Paths: 150, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			proc, err := markovOverSets(net.Topology, seed+1, markovConfig{
				chain: dynamics.Chain{POn: 0.002, MeanBurst: 500},
				onLo:  0.4, onHi: 0.8,
				offLo: 0.0, offHi: 0.05,
				maxGroups: 10,
			})
			if err != nil {
				return nil, err
			}
			return dynamicScenario("diurnal", net.Topology, proc), nil
		},
	})
	register(Spec{
		Name:        "link-flap",
		Description: "dynamic: rapidly flapping links — short, frequent congestion bursts (fast Markov modulators)",
		Dynamic:     true,
		Build: func(seed int64) (*Scenario, error) {
			net, err := registryBrite(seed)
			if err != nil {
				return nil, err
			}
			proc, err := markovOverSets(net.Topology, seed+1, markovConfig{
				chain: dynamics.Chain{POn: 0.08, MeanBurst: 3},
				onLo:  0.7, onHi: 1.0,
				offLo: 0.0, offHi: 0.01,
				maxGroups: 8,
			})
			if err != nil {
				return nil, err
			}
			return dynamicScenario("link-flap", net.Topology, proc), nil
		},
	})
	register(Spec{
		Name:        "diurnal-week",
		Description: "dynamic: a simulated week of day/night load on a PlanetLab-style mesh — slow diurnal modulators, fast flap modulators, and seven forced daily peaks (the day-scale replay workload)",
		Dynamic:     true,
		Build: func(seed int64) (*Scenario, error) {
			net, err := planetlab.Generate(planetlab.Config{
				Routers: 64, VantagePoints: 24, Paths: 150, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			top := net.Topology
			rng := rand.New(rand.NewSource(seed + 1))
			// Split the multi-link correlation sets into two pools: even sets
			// follow the slow diurnal cycle (bursts thousands of snapshots
			// long), odd sets flap on top of it.
			var groups []dynamics.Group
			pool := 0
			for p := 0; p < top.NumSets(); p++ {
				set := top.CorrelationSet(p)
				if set.Len() < 2 {
					continue
				}
				chain := dynamics.Chain{POn: 0.0008, MeanBurst: 2000}
				coupling := 0.6
				if pool%2 == 1 {
					chain = dynamics.Chain{POn: 0.05, MeanBurst: 4}
					coupling = 0.2
				}
				pool++
				links := set.Indices()
				on := make([]float64, len(links))
				off := make([]float64, len(links))
				for i := range links {
					on[i] = 0.5 + 0.4*rng.Float64()
					off[i] = 0.03 * rng.Float64()
				}
				groups = append(groups, dynamics.Group{
					Links: links, Chain: chain, OnProb: on, OffProb: off, Coupling: coupling,
				})
			}
			if len(groups) == 0 {
				return nil, fmt.Errorf("scenario: topology has no multi-link correlation sets to modulate")
			}
			// Seven deterministic daytime peaks: the global driver is forced
			// on for the middle third of each 20000-snapshot "day", so a
			// week-long replay (≥ 140000 snapshots) sees seven load waves at
			// known positions.
			const day = 20000
			force := make([]dynamics.ForcedBurst, 7)
			for d := range force {
				force[d] = dynamics.ForcedBurst{Group: -1, Start: d*day + day/3, End: d*day + 2*day/3}
			}
			proc, err := dynamics.NewMarkovModulated(dynamics.Config{
				NumLinks: top.NumLinks(),
				Groups:   groups,
				Global:   &dynamics.Chain{POn: 0.002, MeanBurst: 600},
				Force:    force,
			})
			if err != nil {
				return nil, err
			}
			return dynamicScenario("diurnal-week", top, proc), nil
		},
	})
	register(Spec{
		Name:        "gray-failure",
		Description: "dynamic: partial correlation-set degradation — only half of each afflicted set's links congest, at rates low enough to hide in the noise (long, weak bursts)",
		Dynamic:     true,
		Build: func(seed int64) (*Scenario, error) {
			net, err := registryBrite(seed)
			if err != nil {
				return nil, err
			}
			top := net.Topology
			rng := rand.New(rand.NewSource(seed + 1))
			// Gray failures afflict only part of a shared-fate set: take the
			// first half of each multi-link set's links (at least one), so
			// estimators see correlation structure that is real but weaker
			// than the topology predicts.
			var sets []int
			for p := 0; p < top.NumSets(); p++ {
				if top.CorrelationSet(p).Len() >= 2 {
					sets = append(sets, p)
				}
			}
			if len(sets) == 0 {
				return nil, fmt.Errorf("scenario: topology has no multi-link correlation sets to modulate")
			}
			if len(sets) > 8 {
				rng.Shuffle(len(sets), func(i, j int) { sets[i], sets[j] = sets[j], sets[i] })
				sets = sets[:8]
				sort.Ints(sets)
			}
			groups := make([]dynamics.Group, 0, len(sets))
			for _, p := range sets {
				links := top.CorrelationSet(p).Indices()
				links = links[:(len(links)+1)/2]
				on := make([]float64, len(links))
				off := make([]float64, len(links))
				for i := range links {
					on[i] = 0.25 + 0.2*rng.Float64()
					off[i] = 0.01 * rng.Float64()
				}
				groups = append(groups, dynamics.Group{
					Links: links, Chain: dynamics.Chain{POn: 0.004, MeanBurst: 300},
					OnProb: on, OffProb: off,
				})
			}
			proc, err := dynamics.NewMarkovModulated(dynamics.Config{
				NumLinks: top.NumLinks(),
				Groups:   groups,
			})
			if err != nil {
				return nil, err
			}
			return dynamicScenario("gray-failure", top, proc), nil
		},
	})
	register(Spec{
		Name:        "adversarial-loss",
		Description: "dynamic: rare but near-total loss storms striking many correlation sets at once (strongly coupled, high-amplitude short bursts)",
		Dynamic:     true,
		Build: func(seed int64) (*Scenario, error) {
			net, err := registryBrite(seed)
			if err != nil {
				return nil, err
			}
			proc, err := markovOverSets(net.Topology, seed+1, markovConfig{
				chain:    dynamics.Chain{POn: 0.001, MeanBurst: 4},
				global:   &dynamics.Chain{POn: 0.01, MeanBurst: 5},
				coupling: 0.95,
				onLo:     0.85, onHi: 1.0,
				offLo: 0.0, offHi: 0.005,
				maxGroups: 12,
			})
			if err != nil {
				return nil, err
			}
			return dynamicScenario("adversarial-loss", net.Topology, proc), nil
		},
	})
}
