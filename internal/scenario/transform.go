package scenario

import (
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/congestion"
	"repro/internal/topology"
)

// WithUnidentifiable returns a variant of the scenario in which roughly the
// requested fraction of the congested links is unidentifiable (Figure 4).
// It engineers Section-3.3 structural violations of Assumption 4: for chosen
// intermediate nodes, all ingress links are merged into one correlation set
// and all egress links into one. The ground-truth model is unchanged —
// the merged sets only (mis)inform the algorithm's knowledge, claiming
// correlation where the operator cannot rule it out.
func WithUnidentifiable(s *Scenario, frac float64, seed int64) (*Scenario, error) {
	if frac <= 0 || frac >= 1 {
		return nil, fmt.Errorf("scenario: unidentifiable fraction %v, want (0,1)", frac)
	}
	top := s.Topology
	rng := rand.New(rand.NewSource(seed))
	targetCount := int(frac*float64(s.CongestedLinks.Len()) + 0.5)
	if targetCount < 1 {
		targetCount = 1
	}

	// Union-find over correlation-group labels, seeded with the current
	// partition.
	group := make([]int, top.NumLinks())
	for k := range group {
		group[k] = top.SetOf(topology.LinkID(k))
	}
	parent := make([]int, top.NumSets())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// Node adjacency.
	ingress := make([][]int, top.NumNodes())
	egress := make([][]int, top.NumNodes())
	for _, l := range top.Links() {
		ingress[l.Dst] = append(ingress[l.Dst], int(l.ID))
		egress[l.Src] = append(egress[l.Src], int(l.ID))
	}
	// A node qualifies when some path runs through it (ingress followed by
	// egress hop).
	through := make([]bool, top.NumNodes())
	for _, p := range top.Paths() {
		for i := 0; i+1 < len(p.Links); i++ {
			through[top.Link(p.Links[i]).Dst] = true
		}
	}

	unident := bitset.New(top.NumLinks())
	congestedUnident := 0
	nodes := rng.Perm(top.NumNodes())
	// Prefer nodes adjacent to congested links so the target fraction is
	// reached with few merges.
	var preferred, rest []int
	for _, v := range nodes {
		if len(ingress[v]) == 0 || len(egress[v]) == 0 || !through[v] {
			continue
		}
		adjCongested := false
		for _, k := range append(append([]int{}, ingress[v]...), egress[v]...) {
			if s.CongestedLinks.Contains(k) {
				adjCongested = true
				break
			}
		}
		if adjCongested {
			preferred = append(preferred, v)
		} else {
			rest = append(rest, v)
		}
	}
	for _, v := range append(preferred, rest...) {
		if congestedUnident >= targetCount {
			break
		}
		// Merge ingress groups into one, egress groups into one.
		for _, k := range ingress[v][1:] {
			union(group[ingress[v][0]], group[k])
		}
		for _, k := range egress[v][1:] {
			union(group[egress[v][0]], group[k])
		}
		for _, k := range append(append([]int{}, ingress[v]...), egress[v]...) {
			if !unident.Contains(k) {
				unident.Add(k)
				if s.CongestedLinks.Contains(k) {
					congestedUnident++
				}
			}
		}
	}
	if congestedUnident == 0 {
		return nil, fmt.Errorf("scenario: no mergeable nodes adjacent to congested links")
	}

	// Rebuild the topology with the merged correlation groups.
	merged := map[int][]topology.LinkID{}
	for k := range group {
		root := find(group[k])
		merged[root] = append(merged[root], topology.LinkID(k))
	}
	nt, err := rebuildWithGroups(top, merged)
	if err != nil {
		return nil, err
	}
	out := &Scenario{
		Name:           fmt.Sprintf("%s/unident=%.2f", s.Name, frac),
		Topology:       nt,
		Model:          s.Model,
		Unidentifiable: unident,
		Mislabeled:     s.Mislabeled,
	}
	finalize(out)
	out.Unidentifiable = unident
	if s.Mislabeled != nil {
		out.Mislabeled = s.Mislabeled
	}
	return out, nil
}

// rebuildWithGroups reconstructs a topology with identical nodes, links and
// paths but a new correlation partition.
func rebuildWithGroups(top *topology.Topology, groups map[int][]topology.LinkID) (*topology.Topology, error) {
	b := topology.NewBuilder()
	b.AddNodes(top.NumNodes())
	for _, l := range top.Links() {
		b.AddLink(l.Src, l.Dst, l.Name)
	}
	for _, p := range top.Paths() {
		b.AddPath(p.Name, p.Links...)
	}
	// Deterministic group order: by smallest member.
	var roots []int
	bySmallest := map[int]int{}
	for root, links := range groups {
		smallest := int(links[0])
		for _, l := range links {
			if int(l) < smallest {
				smallest = int(l)
			}
		}
		bySmallest[root] = smallest
		roots = append(roots, root)
	}
	for i := 0; i < len(roots); i++ {
		for j := i + 1; j < len(roots); j++ {
			if bySmallest[roots[j]] < bySmallest[roots[i]] {
				roots[i], roots[j] = roots[j], roots[i]
			}
		}
	}
	for _, root := range roots {
		if len(groups[root]) > 1 {
			b.Correlate(groups[root]...)
		}
	}
	nt, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("scenario: rebuilding topology: %w", err)
	}
	return nt, nil
}

// WithMislabeled overlays a hidden attack pattern (Figure 5): a "worm"
// floods a set of otherwise-uncorrelated links simultaneously with the given
// probability per snapshot. The links become correlated across correlation-
// set boundaries, but the topology handed to the algorithms is unchanged —
// the algorithm mislabels them as uncorrelated. frac is the fraction of all
// congested links (after the overlay) that are mislabeled.
func WithMislabeled(s *Scenario, frac, attackProb float64, seed int64) (*Scenario, error) {
	if frac <= 0 || frac >= 1 {
		return nil, fmt.Errorf("scenario: mislabeled fraction %v, want (0,1)", frac)
	}
	if attackProb <= 0 || attackProb >= 1 {
		return nil, fmt.Errorf("scenario: attack probability %v, want (0,1)", attackProb)
	}
	top := s.Topology
	rng := rand.New(rand.NewSource(seed))
	base := s.CongestedLinks.Len()
	// |T| = |B|·frac/(1−frac) makes T exactly frac of the final congested set.
	want := int(float64(base)*frac/(1-frac) + 0.5)
	if want < 1 {
		want = 1
	}

	// Targets: non-congested links drawn from distinct correlation sets —
	// "otherwise uncorrelated links" flooded together.
	targets := bitset.New(top.NumLinks())
	usedSets := map[int]bool{}
	for _, k := range rng.Perm(top.NumLinks()) {
		if targets.Len() >= want {
			break
		}
		if s.CongestedLinks.Contains(k) {
			continue
		}
		set := top.SetOf(topology.LinkID(k))
		if usedSets[set] {
			continue
		}
		usedSets[set] = true
		targets.Add(k)
	}
	if targets.Len() == 0 {
		return nil, fmt.Errorf("scenario: no eligible target links for the attack overlay")
	}

	model, err := congestion.NewAttackOverlay(s.Model, targets, attackProb)
	if err != nil {
		return nil, err
	}
	out := &Scenario{
		Name:       fmt.Sprintf("%s/mislabeled=%.2f", s.Name, frac),
		Topology:   top,
		Model:      model,
		Mislabeled: targets,
	}
	finalize(out)
	out.Mislabeled = targets
	if s.Unidentifiable != nil {
		out.Unidentifiable = s.Unidentifiable
	}
	return out, nil
}
