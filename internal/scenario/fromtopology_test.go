package scenario

import (
	"math"
	"testing"

	"repro/internal/bitset"
	"repro/internal/topology"
	"repro/internal/trace"
)

func discoveredTopology(t *testing.T) *topology.Topology {
	t.Helper()
	net, err := trace.Discover(trace.Config{
		Elements: 80, HiddenFrac: 0.3, VantagePoints: 14, Paths: 80, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net.Logical
}

func TestFromTopologyValidation(t *testing.T) {
	if _, err := FromTopology(FromTopologyConfig{Topology: nil, FracCongested: 0.1}); err == nil {
		t.Fatal("nil topology accepted")
	}
	top := discoveredTopology(t)
	if _, err := FromTopology(FromTopologyConfig{Topology: top, FracCongested: 0}); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := FromTopology(FromTopologyConfig{Topology: top, FracCongested: 1.5}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestFromTopologyCongestedFraction(t *testing.T) {
	top := discoveredTopology(t)
	for _, frac := range []float64{0.05, 0.15, 0.30} {
		s, err := FromTopology(FromTopologyConfig{
			Topology: top, FracCongested: frac, Level: HighCorrelation, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := float64(s.CongestedLinks.Len()) / float64(top.NumLinks())
		if math.Abs(got-frac) > 0.05 {
			t.Fatalf("frac %.2f: got %.3f", frac, got)
		}
		// Truth marginals must lie in (0, 1] for congested links, 0 else.
		for k, p := range s.Truth {
			if s.CongestedLinks.Contains(k) != (p > 1e-12) {
				t.Fatalf("link %d: congested=%v but truth=%v", k, s.CongestedLinks.Contains(k), p)
			}
			if p < 0 || p > 1 {
				t.Fatalf("link %d truth %v out of range", k, p)
			}
		}
	}
}

func TestFromTopologyLooseLimit(t *testing.T) {
	top := discoveredTopology(t)
	s, err := FromTopology(FromTopologyConfig{
		Topology: top, FracCongested: 0.2, Level: LooseCorrelation, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	perSet := map[int]int{}
	s.CongestedLinks.ForEach(func(k int) bool {
		perSet[top.SetOf(topology.LinkID(k))]++
		return true
	})
	for set, n := range perSet {
		size := top.CorrelationSet(set).Len()
		if size > 1 && n > 2 {
			t.Fatalf("loose scenario put %d congested links in multi-link set %d", n, set)
		}
	}
}

func TestFromTopologyModelMatchesSets(t *testing.T) {
	// Cross-set independence must hold in the generated model: P(both good)
	// factorizes for links in different correlation sets.
	top := discoveredTopology(t)
	s, err := FromTopology(FromTopologyConfig{
		Topology: top, FracCongested: 0.2, Level: HighCorrelation, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var congested []int
	s.CongestedLinks.ForEach(func(k int) bool {
		congested = append(congested, k)
		return true
	})
	checked := false
	for i := 0; i < len(congested) && !checked; i++ {
		for j := i + 1; j < len(congested); j++ {
			a, b := congested[i], congested[j]
			if top.SetOf(topology.LinkID(a)) == top.SetOf(topology.LinkID(b)) {
				continue
			}
			pa := s.Model.ProbAllGood(singleton(a))
			pb := s.Model.ProbAllGood(singleton(b))
			joint := s.Model.ProbAllGood(pair(a, b))
			if math.Abs(joint-pa*pb) > 1e-12 {
				t.Fatalf("cross-set links %d,%d not independent: %v vs %v", a, b, joint, pa*pb)
			}
			checked = true
			break
		}
	}
	if !checked {
		t.Skip("no cross-set congested pair in this instance")
	}
}

func singleton(k int) *bitset.Set { return bitset.FromIndices(k) }

func pair(a, b int) *bitset.Set { return bitset.FromIndices(a, b) }
