package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bitset"
	"repro/internal/brite"
	"repro/internal/congestion"
	"repro/internal/dynamics"
	"repro/internal/planetlab"
	"repro/internal/topology"
)

// CorrelationLevel selects how congested links cluster inside correlation
// sets, matching the Figure-3 captions.
type CorrelationLevel int

const (
	// HighCorrelation: more than 2 congested links per correlation set.
	HighCorrelation CorrelationLevel = iota
	// LooseCorrelation: up to 2 congested links per correlation set.
	LooseCorrelation
)

// String implements fmt.Stringer.
func (l CorrelationLevel) String() string {
	switch l {
	case HighCorrelation:
		return "high"
	case LooseCorrelation:
		return "loose"
	default:
		return fmt.Sprintf("CorrelationLevel(%d)", int(l))
	}
}

// Scenario is a fully specified experiment input.
type Scenario struct {
	Name     string
	Topology *topology.Topology
	// Model is the ground truth congestion process for static (i.i.d.
	// per-snapshot) scenarios; nil when Process is set.
	Model congestion.Model
	// Process, when non-nil, is a time-indexed congestion process replacing
	// the i.i.d. Model draw: the simulator evolves it snapshot by snapshot
	// (netsim.RunDynamic). Truth then holds its stationary marginals.
	Process dynamics.Process
	// Truth[k] is the exact P(Xek = 1) (static) or the stationary long-run
	// congestion probability (dynamic).
	Truth []float64
	// CongestedLinks are the links with Truth > 0.
	CongestedLinks *bitset.Set
	// PotentiallyCongested are the links participating in at least one path
	// that traverses a congested link — the population over which the paper
	// computes its error metrics.
	PotentiallyCongested *bitset.Set
	// Mislabeled are links participating in an unknown correlation pattern
	// (Figure 5); empty otherwise.
	Mislabeled *bitset.Set
	// Unidentifiable are links made unidentifiable by construction
	// (Figure 4); empty otherwise.
	Unidentifiable *bitset.Set
}

// finalize computes Truth, CongestedLinks and PotentiallyCongested.
func finalize(s *Scenario) {
	if s.Process != nil {
		s.Truth = s.Process.StationaryMarginals()
	} else {
		s.Truth = congestion.Marginals(s.Model)
	}
	nl := s.Topology.NumLinks()
	s.CongestedLinks = bitset.New(nl)
	for k, p := range s.Truth {
		if p > 1e-12 {
			s.CongestedLinks.Add(k)
		}
	}
	congestedPaths := s.Topology.Coverage(s.CongestedLinks)
	s.PotentiallyCongested = bitset.New(nl)
	congestedPaths.ForEach(func(pid int) bool {
		s.PotentiallyCongested.UnionWith(s.Topology.PathLinkSet(topology.PathID(pid)))
		return true
	})
	if s.Mislabeled == nil {
		s.Mislabeled = bitset.New(nl)
	}
	if s.Unidentifiable == nil {
		s.Unidentifiable = bitset.New(nl)
	}
}

// FromTopologyConfig parameterizes FromTopology.
type FromTopologyConfig struct {
	Topology      *topology.Topology
	FracCongested float64
	Level         CorrelationLevel
	PMin, PMax    float64
	Seed          int64
}

// FromTopology builds a congestion scenario for an arbitrary measurement
// topology (e.g. one loaded from JSON): a shared-cause process over the
// topology's own correlation sets, with congested links placed according to
// the correlation level. This is the generic entry point used by cmd/tomo.
func FromTopology(cfg FromTopologyConfig) (*Scenario, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("scenario: nil topology")
	}
	if cfg.FracCongested <= 0 || cfg.FracCongested > 1 {
		return nil, fmt.Errorf("scenario: FracCongested = %v, want (0,1]", cfg.FracCongested)
	}
	if cfg.PMin <= 0 {
		cfg.PMin = 0.05
	}
	if cfg.PMax <= cfg.PMin {
		cfg.PMax = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	top := cfg.Topology
	nl := top.NumLinks()
	target := int(cfg.FracCongested*float64(nl) + 0.5)
	if target < 1 {
		target = 1
	}

	group := make([]int, nl)
	for k := range group {
		group[k] = top.SetOf(topology.LinkID(k))
	}
	causeProb := make([]float64, top.NumSets())
	participation := make([]float64, nl)
	idio := make([]float64, nl)
	congested := bitset.New(nl)
	targetMarginal := func() float64 { return cfg.PMin + (cfg.PMax-cfg.PMin)*rng.Float64() }

	perCluster := 2
	minSize := 2
	if cfg.Level == HighCorrelation {
		perCluster = 1 << 30
		minSize = 3
	}
	for _, p := range rng.Perm(top.NumSets()) {
		if congested.Len() >= target {
			break
		}
		links := top.CorrelationSet(p).Indices()
		if len(links) < minSize {
			continue
		}
		q := 0.2 + 0.4*rng.Float64()
		causeProb[p] = q
		rng.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
		n := len(links)
		if n > perCluster {
			n = perCluster
		}
		for _, k := range links[:n] {
			participation[k] = 1
			m := targetMarginal()
			if m < q {
				m = q + (1-q)*0.1*rng.Float64()
			}
			b := 1 - (1-m)/(1-q)
			if b < 0 {
				b = 0
			}
			idio[k] = b
			congested.Add(k)
		}
	}
	perSet := map[int]int{}
	congested.ForEach(func(k int) bool {
		perSet[group[k]]++
		return true
	})
	for _, k := range rng.Perm(nl) {
		if congested.Len() >= target {
			break
		}
		if congested.Contains(k) {
			continue
		}
		if cfg.Level == LooseCorrelation && perSet[group[k]] >= 2 {
			continue
		}
		idio[k] = targetMarginal()
		congested.Add(k)
		perSet[group[k]]++
	}

	model, err := congestion.NewSharedCause(group, causeProb, participation, idio)
	if err != nil {
		return nil, fmt.Errorf("scenario: building shared-cause model: %w", err)
	}
	s := &Scenario{
		Name:     fmt.Sprintf("topology/frac=%.2f/%s", cfg.FracCongested, cfg.Level),
		Topology: top,
		Model:    model,
	}
	finalize(s)
	return s, nil
}

// BriteConfig parameterizes a Brite congestion scenario.
type BriteConfig struct {
	// Net is the pre-generated AS/router topology pair.
	Net *brite.Network
	// FracCongested is the fraction of AS-level links that are congested.
	FracCongested float64
	// Level selects high (>2 per set) or loose (≤2 per set) clustering of
	// the congested links.
	Level CorrelationLevel
	// PMin/PMax bound the target per-link congestion probabilities
	// (defaults 0.05 / 0.5).
	PMin, PMax float64
	// Seed drives probability assignment.
	Seed int64
}

// Brite assigns router-level congestion probabilities so that the requested
// fraction of AS-level links is congested with the requested correlation
// level, exactly as in the paper: probabilities live on router-level links,
// and AS-level marginals/joints are derived from them.
func Brite(cfg BriteConfig) (*Scenario, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("scenario: nil brite network")
	}
	if cfg.FracCongested <= 0 || cfg.FracCongested > 1 {
		return nil, fmt.Errorf("scenario: FracCongested = %v, want (0,1]", cfg.FracCongested)
	}
	if cfg.PMin <= 0 {
		cfg.PMin = 0.05
	}
	if cfg.PMax <= cfg.PMin {
		cfg.PMax = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	top := cfg.Net.Topology
	nl := top.NumLinks()
	target := int(cfg.FracCongested*float64(nl) + 0.5)
	if target < 1 {
		target = 1
	}

	routerP := make([]float64, cfg.Net.NumRouterLinks)
	congested := bitset.New(nl)

	// Inverted index: router link -> AS links backed by it (internal links
	// only; the middle backing element is the dedicated inter-AS link).
	idx := cfg.Net.SharedRouterIndex()
	targetMarginal := func() float64 { return cfg.PMin + (cfg.PMax-cfg.PMin)*rng.Float64() }

	// congestCluster congests all AS links sharing router link r: a shared
	// probability on r plus per-link top-ups on each link's dedicated
	// inter-AS backing link.
	congestCluster := func(r int) {
		links := idx[r]
		shared := 0.2 + 0.4*rng.Float64()
		routerP[r] = shared
		for _, k := range links {
			m := targetMarginal()
			if m < shared {
				m = shared + (1-shared)*0.1*rng.Float64()
			}
			// 1−(1−shared)(1−priv) = m  ⇒  priv = 1 − (1−m)/(1−shared)
			priv := 1 - (1-m)/(1-shared)
			if priv < 0 {
				priv = 0
			}
			inter := cfg.Net.Backing[k][1]
			routerP[inter] = priv
			congested.Add(k)
		}
	}

	// Candidate shared router links by cluster size.
	var big, pairs []int // |idx[r]| ≥ 3, == 2
	for r, links := range idx {
		if cfg.Net.InternalOf[r] == -1 {
			continue // inter-AS links are dedicated, never shared
		}
		switch {
		case len(links) >= 3:
			big = append(big, r)
		case len(links) == 2:
			pairs = append(pairs, r)
		}
	}
	rng.Shuffle(len(big), func(i, j int) { big[i], big[j] = big[j], big[i] })
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })

	// Rank big clusters by how many measurement paths traverse two or more
	// of their links: those are the clusters whose correlation actually
	// shows up in end-to-end observations ("highly correlated" congested
	// links in the paper's sense). The stable sort keeps the shuffled order
	// within equal counts.
	crossings := func(r int) int {
		n := 0
		for _, p := range top.Paths() {
			hits := 0
			ls := top.PathLinkSet(p.ID)
			for _, k := range idx[r] {
				if ls.Contains(k) {
					hits++
					if hits >= 2 {
						n++
						break
					}
				}
			}
		}
		return n
	}
	crossCount := make(map[int]int, len(big))
	for _, r := range big {
		crossCount[r] = crossings(r)
	}
	sort.SliceStable(big, func(i, j int) bool { return crossCount[big[i]] > crossCount[big[j]] })

	usable := func(r int) bool {
		// Avoid double-congesting: skip clusters touching already congested
		// links (keeps the count controllable).
		for _, k := range idx[r] {
			if congested.Contains(k) {
				return false
			}
		}
		return true
	}

	switch cfg.Level {
	case HighCorrelation:
		for _, r := range big {
			remaining := target - congested.Len()
			if remaining <= 0 {
				break
			}
			// Avoid overshooting the congested-fraction target: a shared
			// router link congests its whole cluster at once.
			if len(idx[r]) > remaining+1 {
				continue
			}
			if usable(r) {
				congestCluster(r)
			}
		}
		// Fill any shortfall with pair clusters, then singletons.
		for _, r := range pairs {
			if target-congested.Len() < 2 {
				break
			}
			if usable(r) {
				congestCluster(r)
			}
		}
	case LooseCorrelation:
		// Pairs only: at most 2 congested links per correlation set, still
		// genuinely correlated through the shared router link.
		perSet := map[int]int{}
		for _, r := range pairs {
			if congested.Len() >= target {
				break
			}
			if !usable(r) {
				continue
			}
			set := top.SetOf(topology.LinkID(idx[r][0]))
			if perSet[set] > 0 {
				continue
			}
			congestCluster(r)
			perSet[set] += len(idx[r])
		}
	default:
		return nil, fmt.Errorf("scenario: unknown correlation level %d", int(cfg.Level))
	}

	// Singleton fill: independent congested links on dedicated inter-AS
	// backings, at most 2 per correlation set in loose mode.
	perSet := map[int]int{}
	congested.ForEach(func(k int) bool {
		perSet[top.SetOf(topology.LinkID(k))]++
		return true
	})
	for _, k := range rng.Perm(nl) {
		if congested.Len() >= target {
			break
		}
		if congested.Contains(k) {
			continue
		}
		set := top.SetOf(topology.LinkID(k))
		if cfg.Level == LooseCorrelation && perSet[set] >= 2 {
			continue
		}
		routerP[cfg.Net.Backing[k][1]] = targetMarginal()
		congested.Add(k)
		perSet[set]++
	}

	model, err := congestion.NewRouterBacked(cfg.Net.Backing, routerP)
	if err != nil {
		return nil, fmt.Errorf("scenario: building router-backed model: %w", err)
	}
	s := &Scenario{
		Name:     fmt.Sprintf("brite/frac=%.2f/%s", cfg.FracCongested, cfg.Level),
		Topology: top,
		Model:    model,
	}
	finalize(s)
	return s, nil
}

// PlanetLabConfig parameterizes a PlanetLab congestion scenario.
type PlanetLabConfig struct {
	Net           *planetlab.Network
	FracCongested float64
	Level         CorrelationLevel
	PMin, PMax    float64
	Seed          int64
}

// PlanetLab assigns a shared-cause congestion process over the mesh's
// contiguous link clusters: each congested cluster shares a hidden cause
// (the shared LAN / domain resource), with idiosyncratic per-link top-ups.
func PlanetLab(cfg PlanetLabConfig) (*Scenario, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("scenario: nil planetlab network")
	}
	if cfg.FracCongested <= 0 || cfg.FracCongested > 1 {
		return nil, fmt.Errorf("scenario: FracCongested = %v, want (0,1]", cfg.FracCongested)
	}
	if cfg.PMin <= 0 {
		cfg.PMin = 0.05
	}
	if cfg.PMax <= cfg.PMin {
		cfg.PMax = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	top := cfg.Net.Topology
	nl := top.NumLinks()
	target := int(cfg.FracCongested*float64(nl) + 0.5)
	if target < 1 {
		target = 1
	}

	group := make([]int, nl)
	copy(group, cfg.Net.ClusterOf)
	causeProb := make([]float64, cfg.Net.NumClusters)
	participation := make([]float64, nl)
	idio := make([]float64, nl)
	congested := bitset.New(nl)

	members := map[int][]int{}
	for k, c := range group {
		members[c] = append(members[c], k)
	}
	clusters := rng.Perm(cfg.Net.NumClusters)
	targetMarginal := func() float64 { return cfg.PMin + (cfg.PMax-cfg.PMin)*rng.Float64() }

	congestInCluster := func(c, maxLinks int) {
		links := members[c]
		if len(links) > maxLinks {
			cp := append([]int{}, links...)
			rng.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
			links = cp[:maxLinks]
		}
		q := 0.1 + 0.3*rng.Float64()
		causeProb[c] = q
		for _, k := range links {
			participation[k] = 1
			m := targetMarginal()
			if m < q {
				m = q + (1-q)*0.1*rng.Float64()
			}
			// 1−(1−q)(1−b) = m ⇒ b = 1 − (1−m)/(1−q)
			b := 1 - (1-m)/(1-q)
			if b < 0 {
				b = 0
			}
			idio[k] = b
			congested.Add(k)
		}
	}

	for _, c := range clusters {
		if congested.Len() >= target {
			break
		}
		switch cfg.Level {
		case HighCorrelation:
			if len(members[c]) >= 3 {
				congestInCluster(c, len(members[c]))
			}
		case LooseCorrelation:
			if len(members[c]) >= 2 {
				congestInCluster(c, 2)
			}
		default:
			return nil, fmt.Errorf("scenario: unknown correlation level %d", int(cfg.Level))
		}
	}
	// Singleton fill with independent idiosyncratic congestion (respecting
	// the loose-mode ≤2-per-set cap).
	fillPerSet := map[int]int{}
	congested.ForEach(func(k int) bool {
		fillPerSet[group[k]]++
		return true
	})
	for _, k := range rng.Perm(nl) {
		if congested.Len() >= target {
			break
		}
		if congested.Contains(k) {
			continue
		}
		if cfg.Level == LooseCorrelation && fillPerSet[group[k]] >= 2 {
			continue
		}
		idio[k] = targetMarginal()
		congested.Add(k)
		fillPerSet[group[k]]++
	}

	model, err := congestion.NewSharedCause(group, causeProb, participation, idio)
	if err != nil {
		return nil, fmt.Errorf("scenario: building shared-cause model: %w", err)
	}
	s := &Scenario{
		Name:     fmt.Sprintf("planetlab/frac=%.2f/%s", cfg.FracCongested, cfg.Level),
		Topology: top,
		Model:    model,
	}
	finalize(s)
	return s, nil
}
