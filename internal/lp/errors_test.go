package lp

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// TestSolverDimensionErrors pins the exact error strings of every lp entry
// point on malformed inputs — mismatched dimensions and nil matrices must
// surface as errors, never panics (the estimator-registry error-contract
// style).
func TestSolverDimensionErrors(t *testing.T) {
	a23 := linalg.NewMatrix(2, 3)
	cases := []struct {
		name string
		call func() error
		want string
	}{
		{"Solve nil matrix", func() error { _, err := Solve(Problem{C: []float64{1}, B: []float64{1}}); return err },
			"lp: nil constraint matrix"},
		{"Solve short b", func() error { _, err := Solve(Problem{C: make([]float64, 3), A: a23, B: []float64{1}}); return err },
			"lp: b has length 1, want 2"},
		{"Solve short c", func() error { _, err := Solve(Problem{C: []float64{1}, A: a23, B: make([]float64, 2)}); return err },
			"lp: c has length 1, want 3"},
		{"MinimizeL1Residual nil matrix", func() error { _, err := MinimizeL1Residual(nil, []float64{1}); return err },
			"lp: MinimizeL1Residual: nil matrix"},
		{"MinimizeL1Residual short y", func() error { _, err := MinimizeL1Residual(a23, []float64{1}); return err },
			"lp: y has length 1, want 2"},
		{"BasisPursuitNonPositive nil matrix", func() error { _, err := BasisPursuitNonPositive(nil, nil); return err },
			"lp: BasisPursuitNonPositive: nil matrix"},
		{"BasisPursuitNonPositive short y", func() error { _, err := BasisPursuitNonPositive(a23, nil); return err },
			"lp: y has length 0, want 2"},
		{"MinimizeL1ResidualNonPositive nil matrix", func() error { _, err := MinimizeL1ResidualNonPositive(nil, nil); return err },
			"lp: MinimizeL1ResidualNonPositive: nil matrix"},
		{"MinimizeL1ResidualNonPositive short y", func() error { _, err := MinimizeL1ResidualNonPositive(a23, []float64{1, 2, 3}); return err },
			"lp: y has length 3, want 2"},
		{"IRLSL1 nil matrix", func() error { _, err := IRLSL1(nil, nil, 0); return err },
			"lp: IRLSL1: nil matrix"},
		{"IRLSL1 short y", func() error { _, err := IRLSL1(a23, []float64{1}, 0); return err },
			"lp: y has length 1, want 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.call()
			if err == nil {
				t.Fatalf("no error, want %q", c.want)
			}
			if err.Error() != c.want {
				t.Fatalf("error = %q, want %q", err.Error(), c.want)
			}
		})
	}
}

// TestSolversSurviveRandomShapes is the fuzz-style randomized-input check:
// every solver fed random (often inconsistent) shapes must return — with a
// result or an error — and never panic.
func TestSolversSurviveRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		m, n := rng.Intn(5), rng.Intn(5)
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		y := make([]float64, rng.Intn(6))
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		c := make([]float64, rng.Intn(6))
		_, _ = Solve(Problem{C: c, A: a, B: y})
		_, _ = MinimizeL1Residual(a, y)
		_, _ = BasisPursuitNonPositive(a, y)
		_, _ = MinimizeL1ResidualNonPositive(a, y)
		_, _ = IRLSL1(a, y, 3)
		var ws Workspace
		_, _ = ws.MinimizeL1ResidualNonPositive(a, y)
	}
}

// TestWorkspaceSolveMatchesSolve pins the workspace simplex against the
// allocating entry point: same problems, bit-identical solutions, across a
// reused workspace.
func TestWorkspaceSolveMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var ws Workspace
	for trial := 0; trial < 60; trial++ {
		m, n := 1+rng.Intn(4), 1+rng.Intn(6)
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		y := make([]float64, m)
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		want, wantErr := MinimizeL1ResidualNonPositive(a, y)
		got, gotErr := ws.MinimizeL1ResidualNonPositive(a, y)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: workspace err %v, allocating err %v", trial, gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: workspace x[%d]=%v, allocating %v", trial, i, got[i], want[i])
			}
		}
	}
}
