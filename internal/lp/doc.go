// Package lp implements a dense two-phase primal simplex solver and the two
// L1 objectives the tomography solvers need:
//
//   - MinimizeL1Residual: min ‖A·x − y‖₁ (robust regression, used when the
//     measurement system is overdetermined but noisy), and
//   - BasisPursuit: min ‖x‖₁ subject to A·x = y and a sign constraint
//     (used when the system is underdetermined).
//
// Paper mapping: Section 4's practical algorithm solves the log-linear
// system of Eqs. 9–10 for the link variables; when Assumption 4 holds only
// partially and the collected equations leave the system underdetermined,
// the paper completes it with the solution that "minimizes the L1 norm
// error" — BasisPursuit is exactly that completion, and
// MinimizeL1Residual is its overdetermined counterpart used by the
// UseAllEquations ablation (bench_test.go).
//
// An IRLS (iteratively reweighted least squares) approximation is provided
// as a fast fallback for systems too large for the dense simplex.
package lp
