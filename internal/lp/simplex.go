package lp

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/linalg"
	"repro/internal/scratch"
)

// Problem is a linear program in standard form:
//
//	minimize  cᵀ·x
//	subject to A·x = b, x ≥ 0.
type Problem struct {
	C []float64      // objective coefficients, length n
	A *linalg.Matrix // m×n constraint matrix
	B []float64      // right-hand side, length m
}

// Result holds the solution of a solved linear program.
type Result struct {
	X         []float64 // optimal point
	Objective float64   // cᵀ·x at the optimum
	Iters     int       // simplex pivots performed
}

// ErrInfeasible is returned when no x ≥ 0 satisfies A·x = b.
var ErrInfeasible = errors.New("lp: problem is infeasible")

// ErrUnbounded is returned when the objective is unbounded below.
var ErrUnbounded = errors.New("lp: problem is unbounded")

// ErrIterationLimit is returned when the simplex fails to converge within
// its pivot budget (cycling or numerically hopeless problems).
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

const (
	pivotEps = 1e-9
	costEps  = 1e-9
)

// Workspace holds the reusable state of one simplex solver: the tableau,
// the phase objectives, the reduced-cost buffer, and the problem-construction
// scratch of the L1 front ends. Buffers grow monotonically and are retained
// across calls, so a steady-state caller solving same-shaped programs
// allocates nothing. A Workspace must not be used by two goroutines at once;
// slices returned by workspace methods alias workspace storage and are valid
// only until the next call on the same workspace.
type Workspace struct {
	t              tableau
	rc             []float64 // reduced costs, reused across pivots
	phase1, phase2 []float64
	x              []float64 // Solve's basic-solution buffer

	// L1 front-end scratch: the standard-form problem built from (A, y) and
	// the recovered solution (kept separate from x, which Solve owns).
	pa   linalg.Matrix
	c    []float64
	xOut []float64
}

// wsPool backs the allocating package-level entry points: they borrow a
// workspace, run the identical arithmetic, and copy the solution out, so
// their behavior (and results) are unchanged while their transient state is
// recycled.
var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// Solve runs the two-phase primal simplex method on p.
func Solve(p Problem) (Result, error) {
	ws := wsPool.Get().(*Workspace)
	res, err := ws.Solve(p)
	if err == nil {
		res.X = append([]float64(nil), res.X...)
	}
	wsPool.Put(ws)
	return res, err
}

// Solve runs the two-phase primal simplex method on p using workspace
// storage. Result.X aliases the workspace.
func (ws *Workspace) Solve(p Problem) (Result, error) {
	if p.A == nil {
		return Result{}, fmt.Errorf("lp: nil constraint matrix")
	}
	m := p.A.Rows
	n := p.A.Cols
	if len(p.B) != m {
		return Result{}, fmt.Errorf("lp: b has length %d, want %d", len(p.B), m)
	}
	if len(p.C) != n {
		return Result{}, fmt.Errorf("lp: c has length %d, want %d", len(p.C), n)
	}

	// Normalize rows so b ≥ 0, then add one artificial variable per row.
	// Phase 1 minimizes the sum of artificials.
	t := &ws.t
	t.reset(m, n+m)
	for i := 0; i < m; i++ {
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1
		}
		row := t.a[i]
		ar := p.A.Row(i)
		for j := 0; j < n; j++ {
			row[j] = sign * ar[j]
		}
		row[n+i] = 1
		t.b[i] = sign * p.B[i]
		t.basis[i] = n + i
	}
	ws.phase1 = scratch.GrowZero(ws.phase1, n+m)
	phase1 := ws.phase1
	for j := n; j < n+m; j++ {
		phase1[j] = 1
	}
	ws.rc = scratch.Grow(ws.rc, n+m)
	iters, err := t.optimize(phase1, 0, ws.rc)
	if err != nil {
		return Result{}, err
	}
	if t.objective(phase1) > 1e-7 {
		return Result{}, ErrInfeasible
	}
	// Drive any artificial variables out of the basis (degenerate rows).
	for i := 0; i < m; i++ {
		if t.basis[i] < n {
			continue
		}
		for j := 0; j < n; j++ {
			if math.Abs(t.a[i][j]) > pivotEps {
				t.pivot(i, j)
				break
			}
		}
		// If no pivot was found the row is redundant; the artificial stays at
		// value 0 and never re-enters because we now forbid artificial columns.
	}

	// Phase 2: original objective; artificial columns are frozen out by
	// giving them prohibitive cost.
	ws.phase2 = scratch.Grow(ws.phase2, n+m)
	phase2 := ws.phase2
	copy(phase2, p.C)
	for j := n; j < n+m; j++ {
		phase2[j] = math.Inf(1)
	}
	it2, err := t.optimize(phase2, iters, ws.rc)
	if err != nil {
		return Result{}, err
	}

	ws.x = scratch.GrowZero(ws.x, n)
	x := ws.x
	for i, bv := range t.basis {
		if bv < n {
			x[bv] = t.b[i]
		}
	}
	return Result{X: x, Objective: linalg.Dot(p.C, x), Iters: it2}, nil
}

// tableau is a dense simplex tableau in "revised-lite" form: we keep the
// full constraint rows updated in place plus the current basis.
type tableau struct {
	m, n  int
	a     [][]float64
	b     []float64
	basis []int
}

// reset prepares the tableau for an m×n program, reusing row storage from
// earlier solves. Every row is zeroed.
func (t *tableau) reset(m, n int) {
	t.m, t.n = m, n
	t.b = scratch.GrowZero(t.b, m)
	t.basis = scratch.Grow(t.basis, m)
	if cap(t.a) < m {
		rows := make([][]float64, m)
		copy(rows, t.a[:cap(t.a)])
		t.a = rows
	} else {
		t.a = t.a[:m]
	}
	for i := range t.a {
		t.a[i] = scratch.GrowZero(t.a[i], n)
	}
}

// objective evaluates cᵀx at the current basic solution.
func (t *tableau) objective(c []float64) float64 {
	s := 0.0
	for i, bv := range t.basis {
		if !math.IsInf(c[bv], 1) {
			s += c[bv] * t.b[i]
		}
	}
	return s
}

// reducedCosts computes c_j − c_Bᵀ·B⁻¹·A_j for all columns into rc, given
// the current tableau (in which rows are already expressed in the basis).
//
// The sweep is row-major — rc starts at c and each basic row subtracts its
// c_B-scaled coefficients — which walks every tableau row sequentially
// instead of striding down columns. For each column the subtractions happen
// in the same ascending-row order as the textbook column-major loop, so the
// floating-point results are bit-identical; rows whose basic cost is zero
// (or a frozen artificial) contribute exact no-ops and are skipped.
func (t *tableau) reducedCosts(c []float64, rc []float64) {
	rc = rc[:t.n]
	copy(rc, c[:t.n])
	for i, bv := range t.basis {
		cb := c[bv]
		if cb == 0 || math.IsInf(cb, 1) {
			// Frozen artificial at value 0 contributes nothing.
			continue
		}
		row := t.a[i]
		for j, aij := range row {
			rc[j] -= cb * aij
		}
	}
}

// optimize runs primal simplex pivots until optimality for objective c,
// using rc (capacity ≥ t.n) as the reduced-cost scratch.
func (t *tableau) optimize(c []float64, startIter int, rc []float64) (int, error) {
	maxIters := 2000 + 40*(t.m+t.n)
	iters := startIter
	blandFrom := maxIters / 2
	rc = rc[:t.n]
	for ; iters < maxIters; iters++ {
		t.reducedCosts(c, rc)
		enter := -1
		if iters < blandFrom {
			// Dantzig: most negative reduced cost. (+Inf frozen columns can
			// never compare below the threshold, so no explicit IsInf test is
			// needed.)
			best := -costEps
			for j, v := range rc {
				if v < best {
					best, enter = v, j
				}
			}
		} else {
			// Bland's rule: smallest index with negative reduced cost
			// (guarantees no cycling).
			for j, v := range rc {
				if v < -costEps {
					enter = j
					break
				}
			}
		}
		if enter == -1 {
			return iters, nil // optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > pivotEps {
				r := t.b[i] / t.a[i][enter]
				if r < bestRatio-1e-12 || (math.Abs(r-bestRatio) <= 1e-12 && (leave == -1 || t.basis[i] < t.basis[leave])) {
					bestRatio, leave = r, i
				}
			}
		}
		if leave == -1 {
			return iters, ErrUnbounded
		}
		t.pivot(leave, enter)
	}
	return iters, ErrIterationLimit
}

// pivot makes column `enter` basic in row `leave`.
func (t *tableau) pivot(leave, enter int) {
	pv := t.a[leave][enter]
	inv := 1 / pv
	row := t.a[leave]
	for j := range row {
		row[j] *= inv
	}
	t.b[leave] *= inv
	row[enter] = 1 // kill rounding noise
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * row[j]
		}
		ri[enter] = 0
		t.b[i] -= f * t.b[leave]
	}
	t.basis[leave] = enter
}
