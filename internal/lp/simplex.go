package lp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Problem is a linear program in standard form:
//
//	minimize  cᵀ·x
//	subject to A·x = b, x ≥ 0.
type Problem struct {
	C []float64      // objective coefficients, length n
	A *linalg.Matrix // m×n constraint matrix
	B []float64      // right-hand side, length m
}

// Result holds the solution of a solved linear program.
type Result struct {
	X         []float64 // optimal point
	Objective float64   // cᵀ·x at the optimum
	Iters     int       // simplex pivots performed
}

// ErrInfeasible is returned when no x ≥ 0 satisfies A·x = b.
var ErrInfeasible = errors.New("lp: problem is infeasible")

// ErrUnbounded is returned when the objective is unbounded below.
var ErrUnbounded = errors.New("lp: problem is unbounded")

// ErrIterationLimit is returned when the simplex fails to converge within
// its pivot budget (cycling or numerically hopeless problems).
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

const (
	pivotEps = 1e-9
	costEps  = 1e-9
)

// Solve runs the two-phase primal simplex method on p.
func Solve(p Problem) (Result, error) {
	m := p.A.Rows
	n := p.A.Cols
	if len(p.B) != m {
		return Result{}, fmt.Errorf("lp: b has length %d, want %d", len(p.B), m)
	}
	if len(p.C) != n {
		return Result{}, fmt.Errorf("lp: c has length %d, want %d", len(p.C), n)
	}

	// Normalize rows so b ≥ 0, then add one artificial variable per row.
	// Phase 1 minimizes the sum of artificials.
	t := newTableau(m, n+m)
	for i := 0; i < m; i++ {
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			t.a[i][j] = sign * p.A.At(i, j)
		}
		t.a[i][n+i] = 1
		t.b[i] = sign * p.B[i]
		t.basis[i] = n + i
	}
	phase1 := make([]float64, n+m)
	for j := n; j < n+m; j++ {
		phase1[j] = 1
	}
	iters, err := t.optimize(phase1, 0)
	if err != nil {
		return Result{}, err
	}
	if t.objective(phase1) > 1e-7 {
		return Result{}, ErrInfeasible
	}
	// Drive any artificial variables out of the basis (degenerate rows).
	for i := 0; i < m; i++ {
		if t.basis[i] < n {
			continue
		}
		pivoted := false
		for j := 0; j < n; j++ {
			if math.Abs(t.a[i][j]) > pivotEps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// The row is redundant; the artificial stays at value 0 and
			// never re-enters because we now forbid artificial columns.
			continue
		}
	}

	// Phase 2: original objective; artificial columns are frozen out by
	// giving them prohibitive cost.
	phase2 := make([]float64, n+m)
	copy(phase2, p.C)
	for j := n; j < n+m; j++ {
		phase2[j] = math.Inf(1)
	}
	it2, err := t.optimize(phase2, iters)
	if err != nil {
		return Result{}, err
	}

	x := make([]float64, n)
	for i, bv := range t.basis {
		if bv < n {
			x[bv] = t.b[i]
		}
	}
	return Result{X: x, Objective: linalg.Dot(p.C, x), Iters: it2}, nil
}

// tableau is a dense simplex tableau in "revised-lite" form: we keep the
// full constraint rows updated in place plus the current basis.
type tableau struct {
	m, n  int
	a     [][]float64
	b     []float64
	basis []int
}

func newTableau(m, n int) *tableau {
	t := &tableau{m: m, n: n, b: make([]float64, m), basis: make([]int, m)}
	t.a = make([][]float64, m)
	for i := range t.a {
		t.a[i] = make([]float64, n)
	}
	return t
}

// objective evaluates cᵀx at the current basic solution.
func (t *tableau) objective(c []float64) float64 {
	s := 0.0
	for i, bv := range t.basis {
		if !math.IsInf(c[bv], 1) {
			s += c[bv] * t.b[i]
		}
	}
	return s
}

// reducedCosts computes c_j − c_Bᵀ·B⁻¹·A_j for all columns given the current
// tableau (in which rows are already expressed in the basis).
func (t *tableau) reducedCosts(c []float64) []float64 {
	rc := make([]float64, t.n)
	for j := 0; j < t.n; j++ {
		if math.IsInf(c[j], 1) {
			rc[j] = math.Inf(1)
			continue
		}
		v := c[j]
		for i, bv := range t.basis {
			cb := c[bv]
			if math.IsInf(cb, 1) {
				cb = 0 // frozen artificial at value 0 contributes nothing
			}
			v -= cb * t.a[i][j]
		}
		rc[j] = v
	}
	return rc
}

// optimize runs primal simplex pivots until optimality for objective c.
func (t *tableau) optimize(c []float64, startIter int) (int, error) {
	maxIters := 2000 + 40*(t.m+t.n)
	iters := startIter
	blandFrom := maxIters / 2
	for ; iters < maxIters; iters++ {
		rc := t.reducedCosts(c)
		enter := -1
		if iters < blandFrom {
			// Dantzig: most negative reduced cost.
			best := -costEps
			for j, v := range rc {
				if !math.IsInf(v, 1) && v < best {
					best, enter = v, j
				}
			}
		} else {
			// Bland's rule: smallest index with negative reduced cost
			// (guarantees no cycling).
			for j, v := range rc {
				if !math.IsInf(v, 1) && v < -costEps {
					enter = j
					break
				}
			}
		}
		if enter == -1 {
			return iters, nil // optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > pivotEps {
				r := t.b[i] / t.a[i][enter]
				if r < bestRatio-1e-12 || (math.Abs(r-bestRatio) <= 1e-12 && (leave == -1 || t.basis[i] < t.basis[leave])) {
					bestRatio, leave = r, i
				}
			}
		}
		if leave == -1 {
			return iters, ErrUnbounded
		}
		t.pivot(leave, enter)
	}
	return iters, ErrIterationLimit
}

// pivot makes column `enter` basic in row `leave`.
func (t *tableau) pivot(leave, enter int) {
	pv := t.a[leave][enter]
	inv := 1 / pv
	row := t.a[leave]
	for j := range row {
		row[j] *= inv
	}
	t.b[leave] *= inv
	row[enter] = 1 // kill rounding noise
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * row[j]
		}
		ri[enter] = 0
		t.b[i] -= f * t.b[leave]
	}
	t.basis[leave] = enter
}
