package lp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestMinimizeL1ResidualNonPositiveExact(t *testing.T) {
	// Consistent system with nonpositive solution: must be recovered with
	// ~zero residual.
	a := linalg.FromRows([][]float64{
		{1, 0, 1},
		{0, 1, 1},
		{1, 1, 0},
	})
	want := []float64{-0.2, -0.5, -0.1}
	y := a.MulVec(want)
	x, err := MinimizeL1ResidualNonPositive(a, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-5 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestMinimizeL1ResidualNonPositiveSignConstraint(t *testing.T) {
	// System whose unconstrained solution has a positive coordinate:
	// x1 + x2 = -1, x2 = 0.5 → unconstrained x = (-1.5, +0.5). With x ≤ 0
	// the solver must keep every coordinate nonpositive and absorb the
	// conflict in the residual.
	a := linalg.FromRows([][]float64{
		{1, 1},
		{0, 1},
	})
	y := []float64{-1, 0.5}
	x, err := MinimizeL1ResidualNonPositive(a, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if v > 1e-9 {
			t.Fatalf("x[%d] = %v > 0", i, v)
		}
	}
	// Optimal residual: setting x2 = 0 costs |0.5| on row 2; row 1 is
	// satisfiable exactly with x1 = -1. Total L1 residual = 0.5.
	res := linalg.Norm1(linalg.Sub(a.MulVec(x), y))
	if res > 0.5+1e-6 {
		t.Fatalf("residual %v, want ≤ 0.5", res)
	}
}

func TestMinimizeL1ResidualNonPositiveInfeasibleEqualities(t *testing.T) {
	// The hard-equality formulation A·x = y, x ≤ 0 would be infeasible here
	// (nested equations forcing a positive coordinate); the residual
	// formulation must still return a usable answer.
	a := linalg.FromRows([][]float64{
		{1, 1, 0},
		{1, 1, 1},
	})
	// y2 > y1 forces x3 = y2 − y1 > 0 in the equality system.
	y := []float64{-0.4, -0.3}
	x, err := MinimizeL1ResidualNonPositive(a, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if v > 1e-9 {
			t.Fatalf("x[%d] = %v > 0", i, v)
		}
	}
	// Best nonpositive fit: x3 = 0, fit x1+x2 between −0.4 and −0.3 with
	// total residual 0.1.
	res := linalg.Norm1(linalg.Sub(a.MulVec(x), y))
	if res > 0.1+1e-6 {
		t.Fatalf("residual %v, want ≤ 0.1", res)
	}
}

func TestMinimizeL1ResidualNonPositiveDimensions(t *testing.T) {
	a := linalg.FromRows([][]float64{{1, 0}})
	if _, err := MinimizeL1ResidualNonPositive(a, []float64{1, 2}); err == nil {
		t.Fatal("bad rhs accepted")
	}
}

// Property: the residual-minimal nonpositive solution never has a larger L1
// residual than the all-zeros point (which is always feasible).
func TestMinimizeL1ResidualNeverWorseThanZero(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		m, n := 3+rng.Intn(4), 4+rng.Intn(5)
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = float64(rng.Intn(2)) // 0/1 rows like the tomography system
		}
		y := make([]float64, m)
		for i := range y {
			y[i] = -rng.Float64()
		}
		x, err := MinimizeL1ResidualNonPositive(a, y)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := linalg.Norm1(linalg.Sub(a.MulVec(x), y))
		zero := linalg.Norm1(y)
		if got > zero+1e-6 {
			t.Fatalf("trial %d: residual %v worse than the zero point %v", trial, got, zero)
		}
	}
}
