package lp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestSolveTextbook(t *testing.T) {
	// max 3a + 5b s.t. a ≤ 4, 2b ≤ 12, 3a + 2b ≤ 18 (classic Dantzig
	// example; optimum 36 at a=2, b=6). In standard form with slacks:
	// min -3a -5b.
	a := linalg.FromRows([][]float64{
		{1, 0, 1, 0, 0},
		{0, 2, 0, 1, 0},
		{3, 2, 0, 0, 1},
	})
	res, err := Solve(Problem{
		C: []float64{-3, -5, 0, 0, 0},
		A: a,
		B: []float64{4, 12, 18},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective+36) > 1e-8 {
		t.Fatalf("objective = %v, want -36", res.Objective)
	}
	if math.Abs(res.X[0]-2) > 1e-8 || math.Abs(res.X[1]-6) > 1e-8 {
		t.Fatalf("x = %v, want [2 6 ...]", res.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x1 + x2 = -1 with x ≥ 0 is infeasible... b is normalized, so use
	// x1 + x2 = 1 and x1 + x2 = 2 instead.
	a := linalg.FromRows([][]float64{
		{1, 1},
		{1, 1},
	})
	_, err := Solve(Problem{C: []float64{1, 1}, A: a, B: []float64{1, 2}})
	if err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x1 s.t. x1 - x2 = 0: x1 can grow without bound.
	a := linalg.FromRows([][]float64{{1, -1}})
	_, err := Solve(Problem{C: []float64{-1, 0}, A: a, B: []float64{0}})
	if err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// -x1 = -3 ⇒ x1 = 3; row normalization must handle b < 0.
	a := linalg.FromRows([][]float64{{-1, 0}})
	res, err := Solve(Problem{C: []float64{1, 1}, A: a, B: []float64{-3}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-9 {
		t.Fatalf("x = %v", res.X)
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	a := linalg.FromRows([][]float64{{1, 0}})
	if _, err := Solve(Problem{C: []float64{1}, A: a, B: []float64{1}}); err == nil {
		t.Fatal("bad c accepted")
	}
	if _, err := Solve(Problem{C: []float64{1, 2}, A: a, B: []float64{1, 2}}); err == nil {
		t.Fatal("bad b accepted")
	}
}

func TestSolveDegenerateRedundantRow(t *testing.T) {
	// Redundant constraint: third row is the sum of the first two.
	a := linalg.FromRows([][]float64{
		{1, 0, 1, 0},
		{0, 1, 0, 1},
		{1, 1, 1, 1},
	})
	res, err := Solve(Problem{C: []float64{1, 1, 0, 0}, A: a, B: []float64{2, 3, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective < -1e-9 || res.Objective > 1e-9 {
		t.Fatalf("objective = %v, want 0 (slacks absorb everything)", res.Objective)
	}
}

// Property: the simplex optimum is no worse than any random feasible point.
func TestSolveOptimalityAgainstRandomFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		m, n := 2+rng.Intn(3), 5+rng.Intn(5)
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Construct b from a random nonnegative point so the problem is
		// feasible by construction.
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.Float64()
		}
		b := a.MulVec(x0)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.Float64() // nonnegative costs keep it bounded
		}
		res, err := Solve(Problem{C: c, A: a, B: b})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Objective > linalg.Dot(c, x0)+1e-6 {
			t.Fatalf("trial %d: simplex %.6f worse than random feasible %.6f",
				trial, res.Objective, linalg.Dot(c, x0))
		}
		// Feasibility of the returned point.
		r := linalg.Sub(a.MulVec(res.X), b)
		if linalg.Norm2(r) > 1e-6 {
			t.Fatalf("trial %d: infeasible solution, residual %v", trial, linalg.Norm2(r))
		}
		for _, v := range res.X {
			if v < -1e-9 {
				t.Fatalf("trial %d: negative variable %v", trial, v)
			}
		}
	}
}

func TestMinimizeL1Residual(t *testing.T) {
	// Overdetermined system with one gross outlier: L1 regression must
	// ignore the outlier where L2 would not.
	a := linalg.FromRows([][]float64{{1}, {1}, {1}, {1}, {1}})
	y := []float64{1, 1, 1, 1, 100}
	x, err := MinimizeL1Residual(a, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-6 {
		t.Fatalf("L1 fit = %v, want 1 (median)", x[0])
	}
}

func TestMinimizeL1ResidualExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		m, n := 8, 3
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		want := []float64{1, -2, 0.5}
		y := a.MulVec(want)
		x, err := MinimizeL1Residual(a, y)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-6 {
				t.Fatalf("trial %d: x = %v, want %v", trial, x, want)
			}
		}
	}
}

func TestBasisPursuitNonPositive(t *testing.T) {
	// x1 + x2 = -1, x ≤ 0: the L1-minimal solutions put all mass on one
	// coordinate or split it; total must be -1 and ‖x‖₁ = 1.
	a := linalg.FromRows([][]float64{{1, 1}})
	x, err := BasisPursuitNonPositive(a, []float64{-1})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] > 1e-12 || x[1] > 1e-12 {
		t.Fatalf("positive entries: %v", x)
	}
	if math.Abs(x[0]+x[1]+1) > 1e-9 {
		t.Fatalf("constraint violated: %v", x)
	}
	if math.Abs(linalg.Norm1(x)-1) > 1e-9 {
		t.Fatalf("‖x‖₁ = %v, want 1", linalg.Norm1(x))
	}
}

func TestBasisPursuitPicksSparse(t *testing.T) {
	// y = A·x* with sparse nonpositive x*: basis pursuit must achieve an L1
	// norm no larger than ‖x*‖₁.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		m, n := 4, 10
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		xs := make([]float64, n)
		xs[rng.Intn(n)] = -1 - rng.Float64()
		y := a.MulVec(xs)
		x, err := BasisPursuitNonPositive(a, y)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if linalg.Norm1(x) > linalg.Norm1(xs)+1e-6 {
			t.Fatalf("trial %d: ‖x‖₁ = %v > ‖x*‖₁ = %v", trial, linalg.Norm1(x), linalg.Norm1(xs))
		}
		r := linalg.Sub(a.MulVec(x), y)
		if linalg.Norm2(r) > 1e-6 {
			t.Fatalf("trial %d: constraints violated by %v", trial, linalg.Norm2(r))
		}
	}
}

func TestIRLSL1MatchesSimplexOnOutliers(t *testing.T) {
	a := linalg.FromRows([][]float64{{1}, {1}, {1}, {1}, {1}, {1}, {1}})
	y := []float64{2, 2, 2, 2, 2, 2, 50}
	x, err := IRLSL1(a, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-3 {
		t.Fatalf("IRLS fit = %v, want ≈2", x[0])
	}
}

func TestIRLSL1Errors(t *testing.T) {
	a := linalg.FromRows([][]float64{{1, 2}})
	if _, err := IRLSL1(a, []float64{1, 2}, 5); err == nil {
		t.Fatal("bad rhs accepted")
	}
}

// Property: on random overdetermined systems, the simplex L1 objective is at
// least as good as (≤) both the IRLS approximation and the least-squares fit.
func TestL1ObjectiveOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		m, n := 12, 4
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		y := make([]float64, m)
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		l1 := func(x []float64) float64 { return linalg.Norm1(linalg.Sub(a.MulVec(x), y)) }

		xs, err := MinimizeL1Residual(a, y)
		if err != nil {
			t.Fatalf("trial %d simplex: %v", trial, err)
		}
		xi, err := IRLSL1(a, y, 0)
		if err != nil {
			t.Fatalf("trial %d IRLS: %v", trial, err)
		}
		xl, err := linalg.LeastSquares(a, y)
		if err != nil {
			t.Fatalf("trial %d LS: %v", trial, err)
		}
		if l1(xs) > l1(xi)+1e-6 {
			t.Fatalf("trial %d: simplex L1 %.8f worse than IRLS %.8f", trial, l1(xs), l1(xi))
		}
		if l1(xs) > l1(xl)+1e-6 {
			t.Fatalf("trial %d: simplex L1 %.8f worse than least-squares %.8f", trial, l1(xs), l1(xl))
		}
	}
}
