package lp

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/scratch"
)

// MinimizeL1Residual solves min ‖A·x − y‖₁ with x free, as a linear program:
//
//	min 1ᵀ(s⁺ + s⁻)  s.t.  A·x + s⁺ − s⁻ = y,  s± ≥ 0,  x = x⁺ − x⁻ ≥ split.
//
// The free x is split into x⁺ − x⁻ with both parts nonnegative.
func MinimizeL1Residual(a *linalg.Matrix, y []float64) ([]float64, error) {
	if a == nil {
		return nil, fmt.Errorf("lp: MinimizeL1Residual: nil matrix")
	}
	m, n := a.Rows, a.Cols
	if len(y) != m {
		return nil, fmt.Errorf("lp: y has length %d, want %d", len(y), m)
	}
	// Variables: x⁺ (n), x⁻ (n), s⁺ (m), s⁻ (m).
	nv := 2*n + 2*m
	pa := linalg.NewMatrix(m, nv)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			v := a.At(i, j)
			pa.Set(i, j, v)
			pa.Set(i, n+j, -v)
		}
		pa.Set(i, 2*n+i, 1)
		pa.Set(i, 2*n+m+i, -1)
	}
	c := make([]float64, nv)
	for j := 2 * n; j < nv; j++ {
		c[j] = 1
	}
	res, err := Solve(Problem{C: c, A: pa, B: y})
	if err != nil {
		return nil, err
	}
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = res.X[j] - res.X[n+j]
	}
	return x, nil
}

// BasisPursuitNonPositive solves
//
//	min ‖x‖₁  s.t.  A·x = y,  x ≤ 0.
//
// This is the completion rule used when the tomography equation system is
// underdetermined: among all non-positive log-probability vectors consistent
// with the measurements, pick the one closest to "no congestion anywhere"
// (Section 4: minimize the L1 norm error). Substituting u = −x ≥ 0 turns it
// into the standard-form LP  min 1ᵀu  s.t. (−A)·u = y, u ≥ 0.
func BasisPursuitNonPositive(a *linalg.Matrix, y []float64) ([]float64, error) {
	if a == nil {
		return nil, fmt.Errorf("lp: BasisPursuitNonPositive: nil matrix")
	}
	m, n := a.Rows, a.Cols
	if len(y) != m {
		return nil, fmt.Errorf("lp: y has length %d, want %d", len(y), m)
	}
	na := linalg.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			na.Set(i, j, -a.At(i, j))
		}
	}
	c := make([]float64, n)
	for j := range c {
		c[j] = 1
	}
	res, err := Solve(Problem{C: c, A: na, B: y})
	if err != nil {
		return nil, err
	}
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = -res.X[j]
	}
	return x, nil
}

// MinimizeL1ResidualNonPositive solves
//
//	min ‖A·x − y‖₁ + ε·‖x‖₁  s.t.  x ≤ 0.
//
// This is the completion rule of Section 4 for underdetermined systems
// ("we pick the one that minimizes the L1 norm error"): always feasible
// (x = 0), robust to measurement noise that would make the hard equality
// system A·x = y, x ≤ 0 infeasible, and the tiny ε·‖x‖₁ tie-break prefers
// the least-congestion solution among residual-minimal ones.
//
// With u = −x ≥ 0 it is the standard-form LP
//
//	min 1ᵀ(s⁺+s⁻) + ε·1ᵀu  s.t.  −A·u + s⁺ − s⁻ = y,  u, s± ≥ 0.
func MinimizeL1ResidualNonPositive(a *linalg.Matrix, y []float64) ([]float64, error) {
	ws := wsPool.Get().(*Workspace)
	x, err := ws.MinimizeL1ResidualNonPositive(a, y)
	if err == nil {
		x = append([]float64(nil), x...)
	}
	wsPool.Put(ws)
	return x, err
}

// MinimizeL1ResidualNonPositive is the workspace form of the package-level
// function: identical arithmetic, but the standard-form program and the
// solution live in reused workspace storage. The returned slice aliases the
// workspace.
func (ws *Workspace) MinimizeL1ResidualNonPositive(a *linalg.Matrix, y []float64) ([]float64, error) {
	if a == nil {
		return nil, fmt.Errorf("lp: MinimizeL1ResidualNonPositive: nil matrix")
	}
	m, n := a.Rows, a.Cols
	if len(y) != m {
		return nil, fmt.Errorf("lp: y has length %d, want %d", len(y), m)
	}
	const tieEps = 1e-6
	nv := n + 2*m
	ws.pa.Reshape(m, nv)
	ws.pa.Zero()
	pa := &ws.pa
	for i := 0; i < m; i++ {
		row := pa.Row(i)
		ar := a.Row(i)
		for j := 0; j < n; j++ {
			row[j] = -ar[j]
		}
		row[n+i] = 1
		row[n+m+i] = -1
	}
	ws.c = scratch.GrowZero(ws.c, nv)
	c := ws.c
	for j := 0; j < n; j++ {
		c[j] = tieEps
	}
	for j := n; j < nv; j++ {
		c[j] = 1
	}
	res, err := ws.Solve(Problem{C: c, A: pa, B: y})
	if err != nil {
		return nil, err
	}
	ws.xOut = scratch.Grow(ws.xOut, n)
	x := ws.xOut
	for j := 0; j < n; j++ {
		x[j] = -res.X[j]
	}
	return x, nil
}

// IRLSL1 approximately solves min ‖A·x − y‖₁ by iteratively reweighted least
// squares with a small ridge term. It is the fallback for systems too large
// for the dense simplex. iters ≤ 0 selects a default of 30.
func IRLSL1(a *linalg.Matrix, y []float64, iters int) ([]float64, error) {
	if a == nil {
		return nil, fmt.Errorf("lp: IRLSL1: nil matrix")
	}
	m, n := a.Rows, a.Cols
	if len(y) != m {
		return nil, fmt.Errorf("lp: y has length %d, want %d", len(y), m)
	}
	if iters <= 0 {
		iters = 30
	}
	const (
		eps   = 1e-6
		ridge = 1e-8
	)
	w := make([]float64, m)
	for i := range w {
		w[i] = 1
	}
	var x []float64
	for it := 0; it < iters; it++ {
		// Solve the weighted normal equations (AᵀWA + ridge·I)·x = AᵀW·y.
		g := linalg.NewMatrix(n, n)
		rhs := make([]float64, n)
		for i := 0; i < m; i++ {
			row := a.Row(i)
			wi := w[i]
			for p := 0; p < n; p++ {
				vp := row[p]
				if vp == 0 {
					continue
				}
				rhs[p] += wi * vp * y[i]
				for q := p; q < n; q++ {
					g.Data[p*n+q] += wi * vp * row[q]
				}
			}
		}
		for p := 0; p < n; p++ {
			for q := 0; q < p; q++ {
				g.Set(p, q, g.At(q, p))
			}
			g.Set(p, p, g.At(p, p)+ridge)
		}
		nx, err := linalg.SolveLU(g, rhs)
		if err != nil {
			return nil, fmt.Errorf("lp: IRLS inner solve: %w", err)
		}
		if x != nil {
			diff := 0.0
			for i := range nx {
				diff = math.Max(diff, math.Abs(nx[i]-x[i]))
			}
			if diff < 1e-10 {
				x = nx
				break
			}
		}
		x = nx
		r := linalg.Sub(a.MulVec(x), y)
		for i := range w {
			w[i] = 1 / math.Max(math.Abs(r[i]), eps)
		}
	}
	return x, nil
}
