package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
)

// trial is a stand-in Monte-Carlo task: a deterministic function of the
// trial index only, via DeriveSeed.
func trial(root int64, i int) []float64 {
	rng := rand.New(rand.NewSource(DeriveSeed(root, i)))
	out := make([]float64, 5)
	for j := range out {
		out[j] = rng.Float64()
	}
	sort.Float64s(out)
	return out
}

// TestParallelMatchesSerial is the engine's core guarantee: for a fixed root
// seed, a parallel run produces bit-identical results to a serial run,
// regardless of worker count. Run under -race this also proves the dispatch
// loop is data-race free.
func TestParallelMatchesSerial(t *testing.T) {
	const n, root = 64, 42
	serialR := &Runner{Workers: 1}
	serial, err := Map(context.Background(), serialR, n, func(_ context.Context, i int) ([]float64, error) {
		return trial(root, i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8, 100} {
		r := &Runner{Workers: workers}
		got, err := Map(context.Background(), r, n, func(_ context.Context, i int) ([]float64, error) {
			return trial(root, i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: parallel results differ from serial", workers)
		}
	}
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	const n = 257
	counts := make([]atomic.Int64, n)
	r := &Runner{Workers: 7}
	if err := r.Run(context.Background(), n, func(_ context.Context, i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

func TestRunZeroTasks(t *testing.T) {
	r := &Runner{}
	if err := r.Run(context.Background(), 0, func(context.Context, int) error {
		t.Fatal("task invoked for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFirstErrorStopsDispatch(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	r := &Runner{Workers: 4}
	err := r.Run(context.Background(), 10_000, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := ran.Load(); n >= 10_000 {
		t.Fatalf("dispatch did not stop after error (%d tasks ran)", n)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	r := &Runner{Workers: 4}
	err := r.Run(ctx, 1_000_000, func(_ context.Context, i int) error {
		if ran.Add(1) == 100 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1_000_000 {
		t.Fatal("cancellation did not stop dispatch")
	}
}

func TestMapDiscardsPartialResultsOnError(t *testing.T) {
	r := &Runner{Workers: 2}
	out, err := Map(context.Background(), r, 10, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if out != nil {
		t.Fatalf("out = %v, want nil", out)
	}
}

func TestMapScratchPerWorker(t *testing.T) {
	// Each worker gets its own scratch; the pointer must never be shared
	// across workers mid-task. With -race this detects scratch sharing.
	r := &Runner{Workers: 4}
	var created atomic.Int64
	out, err := MapScratch(context.Background(), r, 100,
		func() *[]int { created.Add(1); s := make([]int, 0, 8); return &s },
		func(_ context.Context, i int, s *[]int) (int, error) {
			*s = append((*s)[:0], i, i, i)
			return (*s)[0] + (*s)[1] + (*s)[2], nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 3*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, 3*i)
		}
	}
	if c := created.Load(); c < 1 || c > 4 {
		t.Fatalf("scratch created %d times, want 1..4", c)
	}
}

func TestProgressSerializedAndComplete(t *testing.T) {
	const n = 50
	var calls []int
	r := &Runner{
		Workers:  4,
		Progress: func(done, total int) { calls = append(calls, done) }, // no lock: Runner serializes
	}
	if err := r.Run(context.Background(), n, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(calls) != n {
		t.Fatalf("%d progress calls, want %d", len(calls), n)
	}
	// Monotonic by construction: done is incremented under the same lock
	// that serializes the callback.
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress done values not monotonically 1..%d: %v", n, calls)
		}
	}
}

// TestNestedPoolSharesBudget: Runner.Workers caps the total concurrency of
// a nested experiment stack rather than multiplying per level — a pool that
// fans out w ways leaves each task budget/w workers for nested pools, and a
// pool that doesn't fan out passes its full budget through.
func TestNestedPoolSharesBudget(t *testing.T) {
	// Outer fans out 4/4: each task's subtree gets budget 4/4 = 1, so the
	// nested pool must run serially no matter what it asks for.
	outer := &Runner{Workers: 4}
	var maxInner atomic.Int64
	err := outer.Run(context.Background(), 8, func(ctx context.Context, _ int) error {
		inner := &Runner{Workers: 8}
		var active atomic.Int64
		return inner.Run(ctx, 32, func(context.Context, int) error {
			if a := active.Add(1); a > maxInner.Load() {
				maxInner.Store(a)
			}
			defer active.Add(-1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := maxInner.Load(); m > 1 {
		t.Fatalf("nested pool under a saturated parent reached %d concurrent tasks, want 1", m)
	}

	// A single-task pool passes its whole budget through; a 2-way fan-out
	// splits it evenly.
	for _, tc := range []struct{ n, wantChild int }{{1, 4}, {2, 2}} {
		r := &Runner{Workers: 4}
		err := r.Run(context.Background(), tc.n, func(ctx context.Context, _ int) error {
			if got := ctxBudget(ctx); got != tc.wantChild {
				t.Errorf("n=%d: nested budget = %d, want %d", tc.n, got, tc.wantChild)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// The inherited budget caps a nested pool's own larger request.
	single := &Runner{Workers: 2}
	err = single.Run(context.Background(), 2, func(ctx context.Context, _ int) error {
		inner := &Runner{Workers: 64}
		if got := inner.budget(ctx); got != 1 {
			t.Errorf("nested effective budget = %d, want 1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeriveSeedStreamsDiffer(t *testing.T) {
	seen := map[int64]int{}
	for root := int64(0); root < 3; root++ {
		for i := 0; i < 1000; i++ {
			seen[DeriveSeed(root, i)]++
		}
	}
	for s, c := range seen {
		if c > 1 {
			t.Fatalf("seed %d produced %d times", s, c)
		}
	}
	// Regression: the derivation must stay identical to netsim's historical
	// per-snapshot derivation, or every recorded experiment changes.
	if got, want := DeriveSeed(1, 0), int64(-1956407806741107680); got != want {
		t.Errorf("DeriveSeed(1,0) = %d, want %d (derivation changed!)", got, want)
	}
}

func TestMergeSorted(t *testing.T) {
	cases := []struct {
		parts [][]float64
		want  []float64
	}{
		{nil, nil},
		{[][]float64{{}, {}}, nil},
		{[][]float64{{1, 3}, {}, {2}}, []float64{1, 2, 3}},
		{[][]float64{{0.5}}, []float64{0.5}},
		{[][]float64{{1, 1, 2}, {0, 1}, {3}}, []float64{0, 1, 1, 1, 2, 3}},
	}
	for i, c := range cases {
		if got := MergeSorted(c.parts); !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: MergeSorted = %v, want %v", i, got, c.want)
		}
	}
	// Property check against sort on random input.
	rng := rand.New(rand.NewSource(7))
	var parts [][]float64
	var all []float64
	for p := 0; p < 9; p++ {
		part := make([]float64, rng.Intn(40))
		for j := range part {
			part[j] = rng.Float64()
		}
		sort.Float64s(part)
		parts = append(parts, part)
		all = append(all, part...)
	}
	sort.Float64s(all)
	if got := MergeSorted(parts); !reflect.DeepEqual(got, all) {
		t.Fatal("MergeSorted disagrees with sort")
	}
}

func TestMergeSortedCopiesSinglePart(t *testing.T) {
	part := []float64{1, 2}
	got := MergeSorted([][]float64{part})
	got[0] = 99
	if part[0] != 1 {
		t.Fatal("MergeSorted aliased its input")
	}
}

func ExampleRunner() {
	r := &Runner{Workers: 4}
	squares, err := Map(context.Background(), r, 5, func(_ context.Context, i int) (int, error) {
		return i * i, nil // deterministic in i: safe to parallelize
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(squares)
	// Output: [0 1 4 9 16]
}
