// Package runner is the concurrent experiment engine underneath every
// Monte-Carlo loop in this repository: snapshot simulation (internal/netsim),
// the figure sweeps and trial loops of internal/experiments, and the public
// scenario-batch API on the tomography facade.
//
// The engine solves one problem well: run n independent, CPU-bound tasks on
// a bounded worker pool such that
//
//   - results are bit-identical to a serial run (determinism). Tasks must
//     derive all their randomness from their index via DeriveSeed, never from
//     shared or time-seeded state; the pool then only changes *when* a task
//     runs, not *what* it computes.
//   - a context cancels promptly. Workers observe ctx between tasks; a run
//     that is cancelled returns ctx.Err() and stops dispatching.
//   - progress is observable. An optional Progress callback fires after each
//     completed task with (done, total), serialized so callers need no locks.
//
// The three entry points are Runner.Run (n tasks, error-only), Map (collect
// per-task results in index order) and MapScratch (same, with a per-worker
// scratch value for allocation reuse). MergeSorted merges the per-trial
// sorted error samples that the evaluation metrics (internal/eval) consume.
//
// Pools nest without multiplying: experiment levels stack (figures → sweep
// points → trials → snapshots), and each level passes its task ctx down,
// which carries the remaining worker budget. A pool that fans out w ways
// leaves each task budget/w workers for whatever pools it opens beneath, so
// Workers is a cap on the run's total concurrency, not per-level — and
// levels that don't fan out pass their full budget through to the next one
// that can use it.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner is a bounded worker pool for deterministic experiment sharding. The
// zero value is ready to use and sizes itself to GOMAXPROCS.
type Runner struct {
	// Workers caps the number of concurrent tasks. 0 means GOMAXPROCS;
	// 1 degenerates to a serial loop (useful for determinism baselines).
	Workers int
	// Progress, when non-nil, is called after every completed task with the
	// number of tasks finished so far and the total. Calls are serialized.
	Progress func(done, total int)
}

// budgetKey carries the worker budget remaining for pools opened under a
// fanned-out runner task.
type budgetKey struct{}

// ctxBudget returns the inherited worker budget, or 0 when ctx carries none
// (i.e. this is an outermost pool).
func ctxBudget(ctx context.Context) int {
	b, _ := ctx.Value(budgetKey{}).(int)
	return b
}

// budget resolves this pool's total worker allowance: its own request
// (Workers, defaulting to GOMAXPROCS) capped by whatever budget the
// enclosing pool left for it.
func (r *Runner) budget(ctx context.Context) int {
	b := r.Workers
	if b <= 0 {
		b = runtime.GOMAXPROCS(0)
	}
	if inherited := ctxBudget(ctx); inherited > 0 && inherited < b {
		b = inherited
	}
	if b < 1 {
		b = 1
	}
	return b
}

// Run executes task(0..n-1) on the pool and waits for completion. task must
// be safe for concurrent invocation with distinct indices and must not
// depend on invocation order. The first task error (or ctx cancellation)
// stops dispatching further tasks and is returned; in-flight tasks finish
// first.
//
// The context handed to each task carries the worker budget remaining for
// that task's subtree (this pool's budget divided by its fan-out): nested
// Run/Map calls made with it size themselves to that share, so Workers caps
// total concurrency no matter how deeply experiment levels nest — always
// pass the task's own ctx to nested runner (and netsim) calls.
func (r *Runner) Run(ctx context.Context, n int, task func(ctx context.Context, i int) error) error {
	return runScratch(ctx, r, n, func() struct{} { return struct{}{} },
		func(ctx context.Context, i int, _ struct{}) error { return task(ctx, i) })
}

// Map runs f(0..n-1) on the pool and returns the results in index order.
// On error or cancellation the partial results are discarded. Nested pool
// calls must use the ctx passed to f (see Run).
func Map[T any](ctx context.Context, r *Runner, n int, f func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapScratch(ctx, r, n, func() struct{} { return struct{}{} },
		func(ctx context.Context, i int, _ struct{}) (T, error) { return f(ctx, i) })
}

// MapScratch is Map with a per-worker scratch value: mk runs once per worker
// goroutine and its result is passed to every task that worker executes.
// Use it to reuse allocations (bitsets, matrices) across tasks without
// sharing them between workers.
func MapScratch[S, T any](ctx context.Context, r *Runner, n int, mk func() S, f func(ctx context.Context, i int, scratch S) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := runScratch(ctx, r, n, mk, func(ctx context.Context, i int, s S) error {
		v, err := f(ctx, i, s)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runScratch is the shared dispatch loop: an atomic ticket counter hands
// indices to workers, a stop flag halts dispatch on the first failure, and
// the first error wins. The pool sizes itself to min(budget, n) workers and
// hands each task a ctx carrying budget/workers — the share of the total
// allowance its nested pools may use — so concurrency across all nesting
// levels stays within the outermost cap instead of multiplying.
func runScratch[S any](ctx context.Context, r *Runner, n int, mk func() S, task func(ctx context.Context, i int, scratch S) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	budget := r.budget(ctx)
	workers := budget
	if workers > n {
		workers = n
	}
	if child := budget / workers; child != ctxBudget(ctx) {
		ctx = context.WithValue(ctx, budgetKey{}, child)
	}

	var (
		next     atomic.Int64 // ticket counter
		stopped  atomic.Bool  // set on first error or cancellation
		mu       sync.Mutex   // serializes firstErr, done and Progress
		done     int
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		stopped.Store(true)
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := mk()
			for {
				if stopped.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := task(ctx, i, scratch); err != nil {
					fail(err)
					return
				}
				if r.Progress != nil {
					mu.Lock()
					done++
					r.Progress(done, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// DeriveSeed deterministically mixes a root seed with a stream index,
// yielding statistically independent RNG streams for parallel trials. The
// mixing is a splitmix64 finalizer over seed ⊕ (stream+1)·golden-gamma — the
// same derivation netsim uses per snapshot, so results never depend on
// worker count or scheduling.
func DeriveSeed(root int64, stream int) int64 {
	x := uint64(root) ^ (uint64(stream)+1)*0x9e3779b97f4a7c15
	// splitmix64 finalizer
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// MergeSorted merges ascending-sorted sample slices into one ascending
// slice — the aggregation step that combines per-trial error samples into
// the population over which eval.Mean/Percentile/CDF are computed. A k-way
// linear merge: O(total · k), plenty for the figure suite's trial counts.
func MergeSorted(parts [][]float64) []float64 {
	total := 0
	nonEmpty := 0
	for _, p := range parts {
		total += len(p)
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if total == 0 {
		return nil
	}
	if nonEmpty == 1 {
		for _, p := range parts {
			if len(p) > 0 {
				out := make([]float64, len(p))
				copy(out, p)
				return out
			}
		}
	}
	heads := make([]int, len(parts))
	out := make([]float64, 0, total)
	for len(out) < total {
		best := -1
		for j, p := range parts {
			if heads[j] >= len(p) {
				continue
			}
			if best < 0 || p[heads[j]] < parts[best][heads[best]] {
				best = j
			}
		}
		out = append(out, parts[best][heads[best]])
		heads[best]++
	}
	return out
}
