package tomographer

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/planetlab"
	"repro/internal/scenario"
	"repro/internal/topology"
)

func setup(t *testing.T) (*topology.Topology, *netsim.Record) {
	t.Helper()
	net, err := planetlab.Generate(planetlab.Config{
		Routers: 64, VantagePoints: 24, Paths: 150, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.PlanetLab(scenario.PlanetLabConfig{
		Net: net, FracCongested: 0.10, Level: scenario.HighCorrelation, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := netsim.Run(netsim.Config{
		Topology: s.Topology, Model: s.Model, Snapshots: 2000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s.Topology, rec
}

func TestRunValidation(t *testing.T) {
	top, rec := setup(t)
	if _, err := Run(Config{Topology: nil, Record: rec}); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := Run(Config{Topology: top, Record: nil}); err == nil {
		t.Fatal("nil record accepted")
	}
	if _, err := Run(Config{Topology: top, Record: rec, Algorithm: "nonsense"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestIndirectValidationBasics(t *testing.T) {
	top, rec := setup(t)
	rep, err := Run(Config{Topology: top, Record: rec, HoldoutFrac: 0.2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != Correlation {
		t.Fatalf("default algorithm = %q", rep.Algorithm)
	}
	if len(rep.HeldOut) == 0 {
		t.Fatal("no paths held out")
	}
	if len(rep.HeldOut) != len(rep.Predicted) || len(rep.HeldOut) != len(rep.Observed) {
		t.Fatal("ragged report")
	}
	for i, p := range rep.Predicted {
		if p < 0 || p > 1 {
			t.Fatalf("predicted probability %v out of range", p)
		}
		if rep.Observed[i] < 0 || rep.Observed[i] > 1 {
			t.Fatalf("observed probability %v out of range", rep.Observed[i])
		}
	}
	if rep.MeanAbsError < 0 || rep.RMSE < rep.MeanAbsError-1e-12 {
		t.Fatalf("inconsistent error stats: mae=%v rmse=%v", rep.MeanAbsError, rep.RMSE)
	}
	// The inference must not have used held-out paths in its equations.
	held := map[topology.PathID]bool{}
	for _, id := range rep.HeldOut {
		held[id] = true
	}
	for _, eq := range rep.Inference.System.Equations {
		for _, pid := range eq.Paths {
			if held[pid] {
				t.Fatalf("equation uses held-out path %d", pid)
			}
		}
	}
}

// The paper's planned experiment: correlation-aware validation error should
// be no worse than (and typically better than) the independence run on a
// correlated mesh.
func TestCompareOnCorrelatedMesh(t *testing.T) {
	top, rec := setup(t)
	cmp, err := Compare(top, rec, 0.2, 13)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("correlation: mae=%.4f rmse=%.4f | independence: mae=%.4f rmse=%.4f",
		cmp.Correlation.MeanAbsError, cmp.Correlation.RMSE,
		cmp.Independence.MeanAbsError, cmp.Independence.RMSE)
	if cmp.Correlation.MeanAbsError > cmp.Independence.MeanAbsError+0.02 {
		t.Fatalf("correlation validation error %.4f clearly worse than independence %.4f",
			cmp.Correlation.MeanAbsError, cmp.Independence.MeanAbsError)
	}
	// Sanity: predictions carry real signal (errors well below chance).
	if cmp.Correlation.MeanAbsError > 0.2 {
		t.Fatalf("correlation validation error %.4f suspiciously high", cmp.Correlation.MeanAbsError)
	}
}

func TestHoldoutKeepsLinksCovered(t *testing.T) {
	top, rec := setup(t)
	rep, err := Run(Config{Topology: top, Record: rec, HoldoutFrac: 0.3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	held := map[topology.PathID]bool{}
	for _, id := range rep.HeldOut {
		held[id] = true
	}
	covered := make([]bool, top.NumLinks())
	for _, p := range top.Paths() {
		if held[p.ID] {
			continue
		}
		top.PathLinkSet(p.ID).ForEach(func(k int) bool {
			covered[k] = true
			return true
		})
	}
	for k, c := range covered {
		if !c {
			t.Fatalf("link %d uncovered by training paths", k)
		}
	}
}
