// Package tomographer implements the end-to-end measurement tomographer the
// paper describes as ongoing work (Section 5, "Ongoing Work: PlanetLab
// Tomographer"): infer link congestion probabilities from a mesh of
// end-to-end measurements and validate the inference with the *indirect
// validation* method of Padmanabhan et al. [13] — hold out a fraction of the
// paths, infer link probabilities from the remaining paths only, predict the
// held-out paths' congestion frequencies from the inferred link
// probabilities, and compare prediction with observation.
//
// The paper's plan is to run the tomographer twice — once assuming all links
// are uncorrelated, once with links grouped into correlation sets — and
// compare; Compare does exactly that.
package tomographer

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/plan"
	"repro/internal/topology"
)

// Algorithm selects the inference flavor.
type Algorithm string

const (
	// Correlation uses the topology's correlation sets (Section 4).
	Correlation Algorithm = "correlation"
	// Independence treats every link as uncorrelated (the [12] baseline).
	Independence Algorithm = "independence"
)

// Config parameterizes one indirect-validation run.
type Config struct {
	Topology *topology.Topology
	Record   *netsim.Record
	// HoldoutFrac is the fraction of paths excluded from inference and used
	// for validation (default 0.2).
	HoldoutFrac float64
	// Algorithm selects correlation-aware or independence inference.
	Algorithm Algorithm
	// Seed drives the train/validation split.
	Seed int64
	// Options are forwarded to the inference algorithm.
	Options core.Options
	// Plan, when non-nil, is the inference plan the estimators run through
	// (one is compiled lazily otherwise). Note: the holdout PathFilter
	// makes each validation's equation structure split-specific, so those
	// structures compile per run either way; the point of passing a Plan
	// is to let validation ride on the same plan the caller already uses
	// for full-data inference over this topology, whose structures do
	// memoize, instead of constructing a second one.
	Plan *plan.Plan
}

// Report is the outcome of an indirect validation.
type Report struct {
	Algorithm Algorithm
	// HeldOut lists the validation paths.
	HeldOut []topology.PathID
	// Predicted[i] is the predicted P(path good) for HeldOut[i], computed
	// from the inferred link probabilities under the path-product rule.
	Predicted []float64
	// Observed[i] is the empirical fraction of snapshots in which the path
	// was good.
	Observed []float64
	// MeanAbsError and RMSE summarize |Predicted − Observed|.
	MeanAbsError float64
	RMSE         float64
	// Inference carries the underlying tomography result.
	Inference *core.Result
}

// Run performs one indirect validation.
func Run(cfg Config) (*Report, error) {
	if cfg.Topology == nil || cfg.Record == nil {
		return nil, fmt.Errorf("tomographer: topology and record are required")
	}
	if cfg.HoldoutFrac <= 0 || cfg.HoldoutFrac >= 1 {
		cfg.HoldoutFrac = 0.2
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = Correlation
	}
	top := cfg.Topology
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Train/validation split. Every link must stay covered by at least one
	// training path, otherwise its probability is unconstrained by
	// construction; candidate held-out paths are drawn at random and
	// skipped when removing them would orphan a link.
	coverCount := make([]int, top.NumLinks())
	for _, p := range top.Paths() {
		top.PathLinkSet(p.ID).ForEach(func(k int) bool {
			coverCount[k]++
			return true
		})
	}
	want := int(cfg.HoldoutFrac * float64(top.NumPaths()))
	if want < 1 {
		want = 1
	}
	heldOut := map[topology.PathID]bool{}
	for _, pi := range rng.Perm(top.NumPaths()) {
		if len(heldOut) >= want {
			break
		}
		id := topology.PathID(pi)
		ok := true
		top.PathLinkSet(id).ForEach(func(k int) bool {
			if coverCount[k] <= 1 {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			continue
		}
		heldOut[id] = true
		top.PathLinkSet(id).ForEach(func(k int) bool {
			coverCount[k]--
			return true
		})
	}
	if len(heldOut) == 0 {
		return nil, fmt.Errorf("tomographer: no path can be held out without orphaning a link")
	}

	src, err := measure.NewEmpirical(cfg.Record)
	if err != nil {
		return nil, fmt.Errorf("tomographer: %w", err)
	}
	p := cfg.Plan
	if p != nil && p.Topology() != top {
		return nil, fmt.Errorf("tomographer: cfg.Plan was compiled for a different topology")
	}
	if p == nil {
		if p, err = plan.Compile(top, plan.Options{Lazy: true}); err != nil {
			return nil, fmt.Errorf("tomographer: %w", err)
		}
	}
	opts := cfg.Options
	opts.PathFilter = func(id topology.PathID) bool { return !heldOut[id] }

	var res *core.Result
	switch cfg.Algorithm {
	case Correlation:
		res, err = p.Correlation(src, opts)
	case Independence:
		opts.UseAllEquations = true // the [12] baseline uses all observations
		res, err = p.Independence(src, opts)
	default:
		return nil, fmt.Errorf("tomographer: unknown algorithm %q", cfg.Algorithm)
	}
	if err != nil {
		return nil, fmt.Errorf("tomographer: inference: %w", err)
	}

	rep := &Report{Algorithm: cfg.Algorithm, Inference: res}
	var sumAbs, sumSq float64
	for pi := 0; pi < top.NumPaths(); pi++ {
		id := topology.PathID(pi)
		if !heldOut[id] {
			continue
		}
		// Predicted P(path good) = exp(Σ x_k) — exact when the path has at
		// most one link per correlation set, the independence approximation
		// otherwise (which is part of what validation measures).
		logp := 0.0
		top.PathLinkSet(id).ForEach(func(k int) bool {
			logp += res.LogGoodProb[k]
			return true
		})
		pred := math.Exp(logp)
		obs := src.ProbPathGood(id)
		rep.HeldOut = append(rep.HeldOut, id)
		rep.Predicted = append(rep.Predicted, pred)
		rep.Observed = append(rep.Observed, obs)
		d := pred - obs
		sumAbs += math.Abs(d)
		sumSq += d * d
	}
	n := float64(len(rep.HeldOut))
	rep.MeanAbsError = sumAbs / n
	rep.RMSE = math.Sqrt(sumSq / n)
	return rep, nil
}

// Comparison bundles the two runs the paper proposes.
type Comparison struct {
	Correlation  *Report
	Independence *Report
}

// Compare runs indirect validation under both correlation assumptions on
// the same record and split seed — the experiment the paper's tomographer
// was being built to perform. Both runs go through one plan; see
// Config.Plan for what that does and does not share.
func Compare(top *topology.Topology, rec *netsim.Record, holdoutFrac float64, seed int64) (*Comparison, error) {
	p, err := plan.Compile(top, plan.Options{Lazy: true})
	if err != nil {
		return nil, fmt.Errorf("tomographer: %w", err)
	}
	corr, err := Run(Config{
		Topology: top, Record: rec, HoldoutFrac: holdoutFrac, Seed: seed,
		Algorithm: Correlation, Plan: p,
	})
	if err != nil {
		return nil, err
	}
	indep, err := Run(Config{
		Topology: top, Record: rec, HoldoutFrac: holdoutFrac, Seed: seed,
		Algorithm: Independence, Plan: p,
	})
	if err != nil {
		return nil, err
	}
	return &Comparison{Correlation: corr, Independence: indep}, nil
}
