package snapstore

import (
	"fmt"

	"repro/internal/bitset"
)

// CountWorkspace holds the reusable state of the workspace count kernels
// CountPairsCongestedWS/CountPairsGoodWS: per-block column summaries, the
// referenced-column registry, per-worker partial sums, and a persistent pool
// of worker goroutines for the parallel fan-out. A workspace may be reused
// across calls and across stores, but — like the evaluate workspaces — it
// must not be shared between goroutines: single-goroutine ownership, with
// the workspace (not the store) owning all mutable scratch.
//
// The zero value is ready to use. A workspace that has run with workers > 1
// keeps its pool goroutines parked on an idle channel receive until Close is
// called; Close is idempotent and the workspace is reusable afterwards (the
// next parallel call restarts the pool).
type CountWorkspace struct {
	pos  []int32 // series → 1+index into cols; 0 = unreferenced (cleared after every call)
	cols []int   // series referenced by the current call, in first-use order
	pops []int32 // per-block column popcounts: pops[ci*blocks+b] for cols[ci], block b

	partials [][]int // per pool worker, per-pair partial counts (disjoint from out)

	spawned int            // live pool goroutines
	tasks   chan countTask // unbuffered; each send hands one block range to an idle worker
	done    chan struct{}  // one signal per completed task
}

// countTask is one worker's share of a blocked sweep: block range [loB, hiB)
// accumulated into its private out slice. Tasks travel by value through an
// unbuffered channel, so dispatch allocates nothing in steady state.
type countTask struct {
	s     *Store
	ws    *CountWorkspace
	pairs []Pair
	out   []int
	loB   int
	hiB   int
	words int
}

// run sweeps the task's block range. For each block it first records every
// referenced column's popcount (the block summary), then serves each pair
// from the summaries when it can: a block where both columns are untouched
// contributes nothing, a block where one column is untouched contributes the
// other's precomputed popcount, and only blocks where both columns have bits
// set pay the fused OR+POPCNT word sweep. Mostly-good columns — the dominant
// regime in the paper's workloads — skip almost every word.
//
// Summaries are written and read only by the block's owning task, and tasks
// own disjoint block ranges, so pops needs no synchronization.
func (t countTask) run() {
	s, ws := t.s, t.ws
	blocks := (t.words + pairBlockWords - 1) / pairBlockWords
	for b := t.loB; b < t.hiB; b++ {
		lo := b * pairBlockWords
		hi := lo + pairBlockWords
		if hi > t.words {
			hi = t.words
		}
		for ci, c := range ws.cols {
			ws.pops[ci*blocks+b] = int32(bitset.PopCountWords(s.cols[c][lo:hi]))
		}
		for i, p := range t.pairs {
			pa := ws.pops[int(ws.pos[p.A]-1)*blocks+b]
			pb := ws.pops[int(ws.pos[p.B]-1)*blocks+b]
			switch {
			case pa == 0 && pb == 0:
				// Both columns untouched in this block: skip.
			case pa == 0:
				t.out[i] += int(pb)
			case pb == 0:
				t.out[i] += int(pa)
			default:
				t.out[i] += bitset.OrPopCountWords(s.cols[p.A][lo:hi], s.cols[p.B][lo:hi])
			}
		}
	}
}

// ensureWorkers grows the persistent pool to at least n goroutines.
func (ws *CountWorkspace) ensureWorkers(n int) {
	if ws.tasks == nil {
		ws.tasks = make(chan countTask)
		ws.done = make(chan struct{})
	}
	for ws.spawned < n {
		ws.spawned++
		go ws.workerLoop(ws.tasks, ws.done)
	}
}

func (ws *CountWorkspace) workerLoop(tasks <-chan countTask, done chan<- struct{}) {
	for t := range tasks {
		t.run()
		done <- struct{}{}
	}
}

// Close releases the workspace's pool goroutines. It is idempotent, safe on
// the zero value and on workspaces that never went parallel, and the
// workspace remains usable afterwards — the next parallel call restarts the
// pool. Callers that hold a workspace for the life of a server (e.g. the
// serving shards) should Close it on shutdown so goroutine-leak fences stay
// quiet.
func (ws *CountWorkspace) Close() {
	if ws == nil || ws.tasks == nil {
		return
	}
	close(ws.tasks)
	ws.tasks, ws.done, ws.spawned = nil, nil, 0
}

// CountPairsCongestedWS is the workspace form of CountPairsCongested: the
// same cache-blocked sweep, extended with per-block column summaries (see
// countTask.run) and an optional parallel fan-out across 512-word block
// ranges. workers ≤ 1 runs everything on the calling goroutine; workers > 1
// splits the block range into contiguous chunks, one per worker, each
// accumulating into a disjoint per-worker partial-sum slice, and the partials
// are reduced into out in fixed worker order after all tasks finish. Because
// every block's contribution is an exact integer and addition over disjoint
// block sets is commutative, the result is bit-identical to the serial
// kernel for every worker count and schedule — the same determinism contract
// as internal/runner.
//
// ws must be owned by the calling goroutine; out must have at least
// len(pairs) slots. A nil ws falls back to the serial kernel.
func (s *Store) CountPairsCongestedWS(ws *CountWorkspace, pairs []Pair, out []int, workers int) {
	if ws == nil {
		s.CountPairsCongested(pairs, out)
		return
	}
	if len(out) < len(pairs) {
		panic(fmt.Sprintf("snapstore: CountPairsCongested out has %d slots for %d pairs", len(out), len(pairs)))
	}
	out = out[:len(pairs)]
	for i := range out {
		out[i] = 0
	}

	// Register the referenced columns (validating like the serial kernel):
	// pos maps series → 1+index into cols so block summaries are stored
	// densely per referenced column rather than per series.
	if cap(ws.pos) < len(s.cols) {
		ws.pos = make([]int32, len(s.cols))
	}
	ws.pos = ws.pos[:len(s.cols)]
	ws.cols = ws.cols[:0]
	for _, p := range pairs {
		if p.A < 0 || p.A >= len(s.cols) || p.B < 0 || p.B >= len(s.cols) {
			for _, c := range ws.cols {
				ws.pos[c] = 0 // keep the workspace reusable past the panic
			}
			panic(fmt.Sprintf("snapstore: pair (%d,%d) out of range (%d series)", p.A, p.B, len(s.cols)))
		}
		if ws.pos[p.A] == 0 {
			ws.cols = append(ws.cols, p.A)
			ws.pos[p.A] = int32(len(ws.cols))
		}
		if ws.pos[p.B] == 0 {
			ws.cols = append(ws.cols, p.B)
			ws.pos[p.B] = int32(len(ws.cols))
		}
	}

	words := s.Words()
	blocks := (words + pairBlockWords - 1) / pairBlockWords
	if n := len(ws.cols) * blocks; cap(ws.pops) < n {
		ws.pops = make([]int32, n)
	}

	if workers > blocks {
		workers = blocks
	}
	if workers < 1 {
		workers = 1
	}
	base := countTask{s: s, ws: ws, pairs: pairs, words: words}
	if workers == 1 {
		base.out, base.loB, base.hiB = out, 0, blocks
		base.run()
	} else {
		ws.ensureWorkers(workers - 1)
		for len(ws.partials) < workers-1 {
			ws.partials = append(ws.partials, nil)
		}
		for k := 0; k < workers-1; k++ {
			if cap(ws.partials[k]) < len(pairs) {
				ws.partials[k] = make([]int, len(pairs))
			}
			ws.partials[k] = ws.partials[k][:len(pairs)]
			for i := range ws.partials[k] {
				ws.partials[k][i] = 0
			}
		}
		// Dispatch block ranges 1..workers-1 to the pool, sweep range 0 on
		// the calling goroutine, then wait for every task before reducing.
		for k := 1; k < workers; k++ {
			t := base
			t.out = ws.partials[k-1]
			t.loB = k * blocks / workers
			t.hiB = (k + 1) * blocks / workers
			ws.tasks <- t
		}
		base.out, base.loB, base.hiB = out, 0, blocks/workers
		base.run()
		for k := 1; k < workers; k++ {
			<-ws.done
		}
		// Fixed-order reduction of the disjoint partial sums. Integer
		// addition is exact, so any order would give the same bits; fixing
		// it keeps the kernel schedule-independent by construction.
		for k := 0; k < workers-1; k++ {
			part := ws.partials[k]
			for i := range out {
				out[i] += part[i]
			}
		}
	}

	// Unregister the referenced columns so the next call starts clean.
	for _, c := range ws.cols {
		ws.pos[c] = 0
	}
}

// CountPairsGoodWS fills out[i] with the number of snapshots in which
// neither series of pairs[i] was congested, via CountPairsCongestedWS — the
// workspace/parallel form of CountPairsGood.
func (s *Store) CountPairsGoodWS(ws *CountWorkspace, pairs []Pair, out []int, workers int) {
	s.CountPairsCongestedWS(ws, pairs, out, workers)
	n := s.Snapshots()
	for i := range pairs {
		out[i] = n - out[i]
	}
}
