// Package snapstore is the columnar measurement store: per-snapshot Boolean
// observations ("was path/link i congested in snapshot t?") stored
// path-major as one packed uint64 bit column per series.
//
// The tomography algorithms overwhelmingly ask one question of a
// measurement record: in how many snapshots was at least one path of a
// small set congested? Row-major storage (one bitset per snapshot) answers
// it by scanning all N snapshots per query. Column-major storage answers it
// word-parallel: OR the selected columns together and popcount, which is
// O(N/64 · |paths|) with sequential memory access — the layout BuildEquations'
// hundreds of thousands of single/pair queries want.
//
// A Store is built in one of three ways:
//
//   - NewFixed preallocates all columns for a known snapshot count so the
//     simulator's workers can fill disjoint 64-snapshot-aligned blocks
//     concurrently with SetBit: block b owns word b of every column, so
//     shards never share a word and the merged result is deterministic (the
//     "merge" is the layout itself).
//   - New + Append ingests snapshots one at a time — the streaming path.
//     Appending grows every column in lockstep, so a reader that arrives
//     between Appends always sees a consistent prefix.
//   - FromRows converts a legacy row-major record ([]*bitset.Set, one per
//     snapshot) — the compatibility constructor.
//   - NewRing is the sliding-window variant of the streaming path: the store
//     keeps a fixed capacity of slots and AppendEvict recycles the oldest
//     snapshot's slot once the window is full. Because every count kernel is
//     a permutation-blind popcount, a ring window answers exactly the same
//     queries as a fresh store over the same retained rows.
package snapstore

import (
	"fmt"
	mathbits "math/bits"

	"repro/internal/bitset"
)

const wordBits = 64

// BlockSnapshots is the snapshot-block granularity for concurrent fixed
// fills: writers that each own a disjoint range of whole 64-snapshot blocks
// touch disjoint words of every column, so no synchronization or merge step
// is needed and the result is independent of the writer count.
const BlockSnapshots = wordBits

// Store holds one bit column per series (path or link) over snapshots.
// Queries are safe for concurrent use once filling is complete; Append and
// SetBit are writer-side operations with the ownership rules documented on
// each.
//
// A ring store (NewRing) additionally bounds how many snapshots are
// retained: appended and retained counts diverge once the window is full,
// and row indices address window slots rather than absolute time (slot order
// is a rotation of arrival order; every count kernel is order-blind, so
// queries are unaffected).
type Store struct {
	n    int        // snapshots stored (ring mode: appended over the lifetime)
	cols [][]uint64 // cols[series][t/64] bit t%64

	// Ring-window state (NewRing). capacity == 0 means an unbounded store.
	capacity int // max snapshots retained; columns hold ⌈capacity/64⌉ words
	retained int // snapshots currently in the window
}

// New returns an empty streaming store with the given number of series.
func New(series int) *Store {
	if series < 0 {
		series = 0
	}
	return &Store{cols: make([][]uint64, series)}
}

// NewFixed returns a store preallocated for exactly the given snapshot
// count, for concurrent filling with SetBit.
func NewFixed(series, snapshots int) *Store {
	s := New(series)
	if snapshots < 0 {
		snapshots = 0
	}
	s.n = snapshots
	words := (snapshots + wordBits - 1) / wordBits
	if words > 0 {
		// One backing array for all columns: predictable layout, one
		// allocation, and the whole store is contiguous for the OR kernels.
		backing := make([]uint64, words*series)
		for i := range s.cols {
			s.cols[i] = backing[i*words : (i+1)*words : (i+1)*words]
		}
	}
	return s
}

// NewRing returns an empty sliding-window store: it accepts snapshots
// through Append/AppendEvict like a streaming store but retains only the
// most recent capacity of them, recycling the oldest snapshot's slot once
// the window is full. Rows are addressed window-relative: Row(0) is the
// oldest retained snapshot, Row(Snapshots()-1) the newest.
func NewRing(series, capacity int) *Store {
	if capacity < 1 {
		panic(fmt.Sprintf("snapstore: ring capacity %d, want ≥ 1", capacity))
	}
	s := New(series)
	s.capacity = capacity
	words := (capacity + wordBits - 1) / wordBits
	backing := make([]uint64, words*series)
	for i := range s.cols {
		s.cols[i] = backing[i*words : (i+1)*words : (i+1)*words]
	}
	return s
}

// FromRows builds a store from a row-major record: rows[t] is the set of
// congested series in snapshot t. This is the compatibility constructor for
// code that still assembles []*bitset.Set snapshots.
func FromRows(series int, rows []*bitset.Set) *Store {
	s := NewFixed(series, len(rows))
	for t, row := range rows {
		row.ForEach(func(i int) bool {
			if i >= series {
				panic(fmt.Sprintf("snapstore: series %d out of range (%d series)", i, series))
			}
			s.SetBit(i, t)
			return true
		})
	}
	return s
}

// NumSeries returns the number of series (paths or links).
func (s *Store) NumSeries() int { return len(s.cols) }

// Snapshots returns the number of snapshots the store currently holds. For a
// ring store this is the window occupancy, not the lifetime append count
// (see Appended).
func (s *Store) Snapshots() int {
	if s.capacity > 0 {
		return s.retained
	}
	return s.n
}

// Appended returns the number of snapshots ever appended. It exceeds
// Snapshots once a ring window has started evicting.
func (s *Store) Appended() int { return s.n }

// Capacity returns the ring window capacity, or 0 for an unbounded store.
func (s *Store) Capacity() int { return s.capacity }

// Words returns the number of words in every column.
func (s *Store) Words() int {
	if s.capacity > 0 {
		return (s.capacity + wordBits - 1) / wordBits
	}
	return (s.n + wordBits - 1) / wordBits
}

// slot maps a window-relative snapshot index to its physical bit position.
// Retained snapshots occupy the contiguous (mod capacity) slot range
// [n−retained, n), so the oldest retained snapshot lives at slot
// (n−retained) mod capacity.
func (s *Store) slot(t int) int {
	if s.capacity == 0 {
		return t
	}
	return (s.n - s.retained + t) % s.capacity
}

// SetBit marks series i congested in snapshot t of a fixed store. Concurrent
// callers must own disjoint 64-snapshot-aligned blocks of t (see
// BlockSnapshots); SetBit panics if t is outside the preallocated range.
func (s *Store) SetBit(i, t int) {
	if s.capacity > 0 {
		panic("snapstore: SetBit on a ring store (use Append/AppendEvict)")
	}
	if t < 0 || t >= s.n {
		panic(fmt.Sprintf("snapstore: snapshot %d outside fixed range [0,%d)", t, s.n))
	}
	s.cols[i][t/wordBits] |= 1 << uint(t%wordBits)
}

// Bit reports whether series i was congested in snapshot t (window-relative
// for a ring store: t = 0 is the oldest retained snapshot).
func (s *Store) Bit(i, t int) bool {
	if t < 0 || t >= s.Snapshots() {
		return false
	}
	col := s.cols[i]
	p := s.slot(t)
	w := p / wordBits
	return w < len(col) && col[w]&(1<<uint(p%wordBits)) != 0
}

// Append ingests one snapshot: congested holds the congested series. It
// returns the new snapshot's lifetime index. On a full ring store the oldest
// snapshot is evicted silently; use AppendEvict to observe it. Append must
// not run concurrently with other writers or readers.
func (s *Store) Append(congested *bitset.Set) int {
	if s.capacity > 0 {
		t := s.n
		s.AppendEvict(congested, nil)
		return t
	}
	t := s.n
	s.n++
	if w := s.Words(); w > 0 && (len(s.cols) == 0 || len(s.cols[0]) < w) {
		for i := range s.cols {
			s.cols[i] = append(s.cols[i], 0)
		}
	}
	congested.ForEach(func(i int) bool {
		if i >= len(s.cols) {
			panic(fmt.Sprintf("snapstore: series %d out of range (%d series)", i, len(s.cols)))
		}
		s.cols[i][t/wordBits] |= 1 << uint(t%wordBits)
		return true
	})
	return t
}

// AppendEvict ingests one snapshot into a ring store, evicting the oldest
// retained snapshot first when the window is full. It reports whether an
// eviction happened and, when evicted is non-nil, leaves the evicted
// snapshot's congested series in it (cleared otherwise). On an unbounded
// store it behaves like Append and never evicts.
func (s *Store) AppendEvict(congested, evicted *bitset.Set) bool {
	if s.capacity == 0 {
		if evicted != nil {
			evicted.Clear()
		}
		s.Append(congested)
		return false
	}
	didEvict := false
	if s.retained == s.capacity {
		didEvict = s.EvictOldest(evicted)
	} else if evicted != nil {
		evicted.Clear()
	}
	p := s.n % s.capacity
	w, mask := p/wordBits, uint64(1)<<uint(p%wordBits)
	congested.ForEach(func(i int) bool {
		if i >= len(s.cols) {
			panic(fmt.Sprintf("snapstore: series %d out of range (%d series)", i, len(s.cols)))
		}
		s.cols[i][w] |= mask
		return true
	})
	s.n++
	s.retained++
	return didEvict
}

// AppendEvictWords is AppendEvict with the snapshot presented as packed
// words (bit i of word w ⇒ series w*64+i congested) instead of a bitset —
// the wire-ingest fast path: set bits are scattered straight from the wire
// row into the column words, with no per-snapshot set materialized.
// Results are bit-identical to AppendEvict over an equal set. rowWords may
// carry fewer than ⌈NumSeries/64⌉ words (missing words mean all-good);
// a bit at or past NumSeries panics like AppendEvict's out-of-range series.
func (s *Store) AppendEvictWords(rowWords []uint64, evicted *bitset.Set) bool {
	if s.capacity == 0 {
		if evicted != nil {
			evicted.Clear()
		}
		t := s.n
		s.n++
		if w := s.Words(); w > 0 && (len(s.cols) == 0 || len(s.cols[0]) < w) {
			for i := range s.cols {
				s.cols[i] = append(s.cols[i], 0)
			}
		}
		s.scatterRow(rowWords, t/wordBits, uint64(1)<<uint(t%wordBits))
		return false
	}
	didEvict := false
	if s.retained == s.capacity {
		didEvict = s.EvictOldest(evicted)
	} else if evicted != nil {
		evicted.Clear()
	}
	p := s.n % s.capacity
	s.scatterRow(rowWords, p/wordBits, uint64(1)<<uint(p%wordBits))
	s.n++
	s.retained++
	return didEvict
}

// scatterRow ORs mask into column word w of every series set in rowWords.
func (s *Store) scatterRow(rowWords []uint64, w int, mask uint64) {
	for wi, wv := range rowWords {
		for wv != 0 {
			b := mathbits.TrailingZeros64(wv)
			wv &= wv - 1
			i := wi*wordBits + b
			if i >= len(s.cols) {
				panic(fmt.Sprintf("snapstore: series %d out of range (%d series)", i, len(s.cols)))
			}
			s.cols[i][w] |= mask
		}
	}
}

// EvictOldest drops the oldest retained snapshot of a ring store, shrinking
// the window by one — the expiry path for time-based windows. It reports
// whether a snapshot was evicted and, when evicted is non-nil, leaves the
// dropped snapshot's congested series in it. It panics on an unbounded
// store (their snapshots are never recycled).
func (s *Store) EvictOldest(evicted *bitset.Set) bool {
	if s.capacity == 0 {
		panic("snapstore: EvictOldest on an unbounded store (NewRing creates ring stores)")
	}
	if evicted != nil {
		evicted.Clear()
	}
	if s.retained == 0 {
		return false
	}
	p := s.slot(0)
	w, mask := p/wordBits, uint64(1)<<uint(p%wordBits)
	for i := range s.cols {
		if s.cols[i][w]&mask != 0 {
			if evicted != nil {
				evicted.Add(i)
			}
			s.cols[i][w] &^= mask
		}
	}
	s.retained--
	return true
}

// DropOldest drops the k oldest retained snapshots of a ring store in one
// blocked pass and returns how many were dropped (min(k, retained)). Where a
// loop over EvictOldest clears one bit of every column per snapshot,
// DropOldest resolves the evicted slot range to word masks once and touches
// each affected column word exactly once — the batch-eviction primitive for
// sliding windows that ingest whole probe batches. The dropped rows are not
// reported; callers maintaining per-row state (e.g. a pattern histogram)
// must read them with RowInto before dropping. It panics on an unbounded
// store, like EvictOldest.
func (s *Store) DropOldest(k int) int {
	if s.capacity == 0 {
		panic("snapstore: DropOldest on an unbounded store (NewRing creates ring stores)")
	}
	if k > s.retained {
		k = s.retained
	}
	if k <= 0 {
		return 0
	}
	// The k oldest retained snapshots occupy the contiguous (mod capacity)
	// slot range [slot(0), slot(0)+k); the wrap splits it into at most two
	// linear spans.
	start := s.slot(0)
	first := k
	if start+first > s.capacity {
		first = s.capacity - start
	}
	s.clearSlotSpan(start, first)
	if rest := k - first; rest > 0 {
		s.clearSlotSpan(0, rest)
	}
	s.retained -= k
	return k
}

// clearSlotSpan zeroes bit positions [p, p+n) of every column: full interior
// words are zeroed outright, the partial head and tail words are masked, so
// each affected word is written once regardless of how many snapshots the
// span covers.
func (s *Store) clearSlotSpan(p, n int) {
	if n <= 0 {
		return
	}
	loWord, hiWord := p/wordBits, (p+n-1)/wordBits
	headMask := ^uint64(0) << uint(p%wordBits)
	tailMask := ^uint64(0) >> uint(wordBits-1-(p+n-1)%wordBits)
	if loWord == hiWord {
		mask := headMask & tailMask
		for i := range s.cols {
			s.cols[i][loWord] &^= mask
		}
		return
	}
	for i := range s.cols {
		col := s.cols[i]
		col[loWord] &^= headMask
		for w := loWord + 1; w < hiWord; w++ {
			col[w] = 0
		}
		col[hiWord] &^= tailMask
	}
}

// Column exposes series i's packed column. The slice aliases store storage
// and must be treated as read-only.
func (s *Store) Column(i int) []uint64 { return s.cols[i] }

// CongestedCount returns the number of snapshots in which series i was
// congested (a column popcount).
func (s *Store) CongestedCount(i int) int {
	return bitset.PopCountWords(s.cols[i])
}

// CountAnyCongested returns the number of snapshots in which at least one of
// the given series was congested: OR of the columns, then popcount. scratch
// is an optional reusable buffer of at least Words() words; pass nil to
// allocate. Bits past the last snapshot are never set, so no tail masking is
// needed.
func (s *Store) CountAnyCongested(series []int, scratch []uint64) int {
	switch len(series) {
	case 0:
		return 0
	case 1:
		return bitset.PopCountWords(s.cols[series[0]])
	}
	words := s.Words()
	if cap(scratch) < words {
		scratch = make([]uint64, words)
	}
	scratch = scratch[:words]
	copy(scratch, s.cols[series[0]])
	for _, i := range series[1:] {
		bitset.OrWords(scratch, s.cols[i])
	}
	return bitset.PopCountWords(scratch)
}

// CountAllGood returns the number of snapshots in which none of the given
// series was congested. An empty series list counts every retained snapshot.
func (s *Store) CountAllGood(series []int, scratch []uint64) int {
	return s.Snapshots() - s.CountAnyCongested(series, scratch)
}

// Pair identifies one unordered pair of series for the batched count
// kernels.
type Pair struct {
	A, B int
}

// pairBlockWords is the cache-block size of CountPairsCongested: the blocked
// sweep touches at most series·pairBlockWords·8 bytes of column data per
// block, so with a few hundred series the working set of one block stays
// inside L2 and every column word is streamed from memory once per call
// instead of once per pair that uses it.
const pairBlockWords = 512

// CountPairsCongested fills out[i] with the number of snapshots in which at
// least one series of pairs[i] was congested — the batched, cache-blocked
// form of per-pair CountAnyCongested. One blocked pass over the columns
// serves every pair: within a block each column's words are hot in cache no
// matter how many pairs share them, and the OR+popcount is fused into a
// single sweep (the per-pair path pays copy, OR and popcount passes).
// len(out) must be at least len(pairs); it panics on an out-of-range series
// like the other accessors.
func (s *Store) CountPairsCongested(pairs []Pair, out []int) {
	if len(out) < len(pairs) {
		panic(fmt.Sprintf("snapstore: CountPairsCongested out has %d slots for %d pairs", len(out), len(pairs)))
	}
	for i, p := range pairs {
		if p.A < 0 || p.A >= len(s.cols) || p.B < 0 || p.B >= len(s.cols) {
			panic(fmt.Sprintf("snapstore: pair (%d,%d) out of range (%d series)", p.A, p.B, len(s.cols)))
		}
		out[i] = 0
	}
	words := s.Words()
	for lo := 0; lo < words; lo += pairBlockWords {
		hi := lo + pairBlockWords
		if hi > words {
			hi = words
		}
		for i, p := range pairs {
			out[i] += bitset.OrPopCountWords(s.cols[p.A][lo:hi], s.cols[p.B][lo:hi])
		}
	}
}

// CountPairsGood fills out[i] with the number of snapshots in which neither
// series of pairs[i] was congested, via the blocked CountPairsCongested
// sweep.
func (s *Store) CountPairsGood(pairs []Pair, out []int) {
	s.CountPairsCongested(pairs, out)
	n := s.Snapshots()
	for i := range pairs {
		out[i] = n - out[i]
	}
}

// RowInto materializes snapshot t as a set of congested series into dst
// (cleared first). For a ring store t is window-relative: t = 0 is the
// oldest retained snapshot.
func (s *Store) RowInto(t int, dst *bitset.Set) {
	dst.Clear()
	p := s.slot(t)
	w := p / wordBits
	mask := uint64(1) << uint(p%wordBits)
	for i, col := range s.cols {
		if w < len(col) && col[w]&mask != 0 {
			dst.Add(i)
		}
	}
}

// Row materializes snapshot t as a freshly allocated set.
func (s *Store) Row(t int) *bitset.Set {
	dst := bitset.New(len(s.cols))
	s.RowInto(t, dst)
	return dst
}

// Rows materializes every retained snapshot row-major (oldest first for a
// ring store) — the compatibility view for code that still wants
// []*bitset.Set. It costs O(snapshots · series); hot paths should query
// columns instead.
func (s *Store) Rows() []*bitset.Set {
	out := make([]*bitset.Set, s.Snapshots())
	for t := range out {
		out[t] = s.Row(t)
	}
	return out
}

// SnapshotInto clones the store's current contents into dst and returns
// it: same series, same retained rows, same physical slot layout, so every
// count kernel answers identically on the clone. dst's backing storage is
// reused when its shape matches (the recycling path of copy-on-write view
// publication — a steady-state publisher allocates nothing); a nil or
// mismatched dst is reallocated. The clone is an independent Store: the
// source may keep appending without affecting it. SnapshotInto must not run
// concurrently with writes to either store, like every writer-side method.
func (s *Store) SnapshotInto(dst *Store) *Store {
	if dst == nil {
		dst = &Store{}
	}
	words := s.Words()
	fit := len(dst.cols) == len(s.cols)
	for i := 0; fit && i < len(dst.cols); i++ {
		fit = len(dst.cols[i]) == len(s.cols[i])
	}
	if !fit {
		dst.cols = make([][]uint64, len(s.cols))
		if words > 0 {
			backing := make([]uint64, words*len(s.cols))
			for i := range dst.cols {
				dst.cols[i] = backing[i*words : (i+1)*words : (i+1)*words]
			}
		}
	}
	for i, col := range s.cols {
		copy(dst.cols[i], col)
	}
	dst.n, dst.capacity, dst.retained = s.n, s.capacity, s.retained
	return dst
}

// Equal reports whether the two stores hold identical retained
// observations, in order. Ring stores compare logically: a rotated window
// equals a fresh store over the same rows.
func (s *Store) Equal(t *Store) bool {
	if s.Snapshots() != t.Snapshots() || len(s.cols) != len(t.cols) {
		return false
	}
	if s.capacity != 0 || t.capacity != 0 {
		// A ring store's physical slots are rotated; compare row by row.
		a, b := bitset.New(len(s.cols)), bitset.New(len(t.cols))
		for ts := 0; ts < s.Snapshots(); ts++ {
			s.RowInto(ts, a)
			t.RowInto(ts, b)
			if !a.Equal(b) {
				return false
			}
		}
		return true
	}
	for i := range s.cols {
		a, b := s.cols[i], t.cols[i]
		for w := 0; w < s.Words(); w++ {
			var av, bv uint64
			if w < len(a) {
				av = a[w]
			}
			if w < len(b) {
				bv = b[w]
			}
			if av != bv {
				return false
			}
		}
	}
	return true
}
