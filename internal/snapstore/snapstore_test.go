package snapstore

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// randomRows draws n random rows over the given number of series.
func randomRows(rng *rand.Rand, series, n int) []*bitset.Set {
	rows := make([]*bitset.Set, n)
	for t := range rows {
		s := bitset.New(series)
		for i := 0; i < series; i++ {
			if rng.Intn(3) == 0 {
				s.Add(i)
			}
		}
		rows[t] = s
	}
	return rows
}

func TestAppendMatchesFromRows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		series := 1 + rng.Intn(70)
		n := rng.Intn(200)
		rows := randomRows(rng, series, n)

		batch := FromRows(series, rows)
		stream := New(series)
		for _, r := range rows {
			stream.Append(r)
		}
		if !stream.Equal(batch) {
			t.Fatalf("trial %d: streaming store differs from batch store", trial)
		}
		if stream.Snapshots() != n || stream.NumSeries() != series {
			t.Fatalf("trial %d: shape %d×%d, want %d×%d",
				trial, stream.NumSeries(), stream.Snapshots(), series, n)
		}
	}
}

func TestRowsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := randomRows(rng, 67, 130) // series straddle a word boundary
	st := FromRows(67, rows)
	back := st.Rows()
	for i := range rows {
		if !rows[i].Equal(back[i]) {
			t.Fatalf("row %d: %v != %v", i, back[i], rows[i])
		}
	}
	// RowInto reuses its destination.
	scratch := bitset.New(67)
	for i := range rows {
		st.RowInto(i, scratch)
		if !scratch.Equal(rows[i]) {
			t.Fatalf("RowInto(%d): %v != %v", i, scratch, rows[i])
		}
	}
}

func TestCountsMatchRowMajorReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	series, n := 40, 500
	rows := randomRows(rng, series, n)
	st := FromRows(series, rows)

	var scratch []uint64
	for trial := 0; trial < 100; trial++ {
		q := bitset.New(series)
		for i := 0; i < series; i++ {
			if rng.Intn(8) == 0 {
				q.Add(i)
			}
		}
		want := 0
		for _, r := range rows {
			if r.Intersects(q) {
				want++
			}
		}
		if got := st.CountAnyCongested(q.Indices(), scratch); got != want {
			t.Fatalf("CountAnyCongested(%v) = %d, want %d", q, got, want)
		}
		if got := st.CountAllGood(q.Indices(), scratch); got != n-want {
			t.Fatalf("CountAllGood(%v) = %d, want %d", q, got, n-want)
		}
	}
	for i := 0; i < series; i++ {
		want := 0
		for _, r := range rows {
			if r.Contains(i) {
				want++
			}
		}
		if got := st.CongestedCount(i); got != want {
			t.Fatalf("CongestedCount(%d) = %d, want %d", i, got, want)
		}
	}
	if st.CountAnyCongested(nil, nil) != 0 || st.CountAllGood(nil, nil) != n {
		t.Fatal("empty query must count every snapshot good")
	}
}

func TestFixedSetBit(t *testing.T) {
	st := NewFixed(3, 130)
	st.SetBit(0, 0)
	st.SetBit(1, 64)
	st.SetBit(2, 129)
	for _, c := range []struct {
		i, t int
		want bool
	}{
		{0, 0, true}, {0, 1, false}, {1, 64, true}, {2, 129, true}, {2, 128, false},
	} {
		if st.Bit(c.i, c.t) != c.want {
			t.Fatalf("Bit(%d,%d) = %v", c.i, c.t, !c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetBit outside the fixed range must panic")
		}
	}()
	st.SetBit(0, 130)
}

func TestAppendAfterFixed(t *testing.T) {
	// Appending to a converted/fixed store must not corrupt sibling columns
	// that share the original backing array.
	st := FromRows(2, []*bitset.Set{bitset.FromIndices(0), bitset.FromIndices(1)})
	st.Append(bitset.FromIndices(0, 1))
	if st.Snapshots() != 3 || !st.Bit(0, 2) || !st.Bit(1, 2) || !st.Bit(0, 0) || st.Bit(0, 1) {
		t.Fatal("append after FromRows corrupted the store")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	a, b := NewFixed(2, 10), NewFixed(2, 11)
	if a.Equal(b) {
		t.Fatal("different snapshot counts reported equal")
	}
	if !NewFixed(2, 10).Equal(a) {
		t.Fatal("identical empty stores reported unequal")
	}
}
