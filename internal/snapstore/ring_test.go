package snapstore

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// TestRingMatchesFreshStore is the ring store's core guarantee: after any
// append sequence, a ring window answers every query exactly like a fresh
// store built from only the retained rows.
func TestRingMatchesFreshStore(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		series := 1 + rng.Intn(70)
		capacity := 1 + rng.Intn(150) // straddles word boundaries across trials
		n := rng.Intn(400)
		rows := randomRows(rng, series, n)

		ring := NewRing(series, capacity)
		for _, r := range rows {
			ring.Append(r)
		}
		lo := n - capacity
		if lo < 0 {
			lo = 0
		}
		fresh := FromRows(series, rows[lo:])

		if ring.Snapshots() != fresh.Snapshots() {
			t.Fatalf("trial %d: ring retains %d snapshots, fresh store %d",
				trial, ring.Snapshots(), fresh.Snapshots())
		}
		if ring.Appended() != n {
			t.Fatalf("trial %d: Appended() = %d, want %d", trial, ring.Appended(), n)
		}
		for i := 0; i < series; i++ {
			if ring.CongestedCount(i) != fresh.CongestedCount(i) {
				t.Fatalf("trial %d: series %d count %d, fresh %d",
					trial, i, ring.CongestedCount(i), fresh.CongestedCount(i))
			}
		}
		// Multi-series OR+popcount kernels agree on random query sets.
		for q := 0; q < 10; q++ {
			var idx []int
			for i := 0; i < series; i++ {
				if rng.Intn(4) == 0 {
					idx = append(idx, i)
				}
			}
			if got, want := ring.CountAnyCongested(idx, nil), fresh.CountAnyCongested(idx, nil); got != want {
				t.Fatalf("trial %d: CountAnyCongested(%v) = %d, want %d", trial, idx, got, want)
			}
		}
		// Window-relative rows come back oldest-first in arrival order.
		for w := 0; w < ring.Snapshots(); w++ {
			if got, want := ring.Row(w), rows[lo+w]; !got.Equal(want) {
				t.Fatalf("trial %d: window row %d = %v, want %v", trial, w, got, want)
			}
		}
	}
}

// TestRingAppendEvict pins the eviction protocol: the evicted row is exactly
// the snapshot that fell out of the window.
func TestRingAppendEvict(t *testing.T) {
	const series, capacity = 10, 4
	rng := rand.New(rand.NewSource(4))
	rows := randomRows(rng, series, 12)
	ring := NewRing(series, capacity)
	evicted := bitset.New(series)
	for i, r := range rows {
		did := ring.AppendEvict(r, evicted)
		if want := i >= capacity; did != want {
			t.Fatalf("append %d: eviction %v, want %v", i, did, want)
		}
		if did && !evicted.Equal(rows[i-capacity]) {
			t.Fatalf("append %d: evicted %v, want %v", i, evicted, rows[i-capacity])
		}
		if !did && !evicted.IsEmpty() {
			t.Fatalf("append %d: evicted set %v not cleared on no-evict", i, evicted)
		}
	}
}

// TestRingEvictOldest exercises the explicit-expiry path, including interleaved
// appends and draining to empty.
func TestRingEvictOldest(t *testing.T) {
	const series, capacity = 8, 3
	rng := rand.New(rand.NewSource(5))
	rows := randomRows(rng, series, 6)
	ring := NewRing(series, capacity)
	evicted := bitset.New(series)

	ring.Append(rows[0])
	ring.Append(rows[1])
	if !ring.EvictOldest(evicted) || !evicted.Equal(rows[0]) {
		t.Fatalf("evict after 2 appends: got %v, want %v", evicted, rows[0])
	}
	if ring.Snapshots() != 1 {
		t.Fatalf("retained %d, want 1", ring.Snapshots())
	}
	// Refill past capacity: the window is rows[3..5].
	for _, r := range rows[2:] {
		ring.Append(r)
	}
	for i := 3; i < 6; i++ {
		if !ring.EvictOldest(evicted) || !evicted.Equal(rows[i]) {
			t.Fatalf("drain: got %v, want row %d %v", evicted, i, rows[i])
		}
	}
	if ring.EvictOldest(evicted) {
		t.Fatal("eviction from an empty window reported true")
	}
	if ring.Snapshots() != 0 {
		t.Fatalf("retained %d after drain, want 0", ring.Snapshots())
	}
	for i := 0; i < series; i++ {
		if ring.CongestedCount(i) != 0 {
			t.Fatalf("series %d retains %d bits after drain", i, ring.CongestedCount(i))
		}
	}
}

// TestRingRowsAndEqual pins the row-major compatibility views on a rotated
// window: Rows() must return exactly the retained rows (oldest first, no
// wrap-around aliasing) and Equal must compare a rotated ring to a fresh
// store logically.
func TestRingRowsAndEqual(t *testing.T) {
	const series, capacity, n = 6, 8, 10
	rng := rand.New(rand.NewSource(6))
	rows := randomRows(rng, series, n)
	ring := NewRing(series, capacity)
	for _, r := range rows {
		ring.Append(r)
	}
	got := ring.Rows()
	if len(got) != capacity {
		t.Fatalf("Rows() returned %d rows, want %d retained", len(got), capacity)
	}
	for w, r := range got {
		if !r.Equal(rows[n-capacity+w]) {
			t.Fatalf("Rows()[%d] = %v, want %v", w, r, rows[n-capacity+w])
		}
	}
	fresh := FromRows(series, rows[n-capacity:])
	if !ring.Equal(fresh) || !fresh.Equal(ring) {
		t.Fatal("rotated ring does not Equal a fresh store over the same rows")
	}
	other := FromRows(series, rows[:capacity])
	if ring.Equal(other) {
		t.Fatal("ring Equal a store over different rows")
	}
}

func TestRingPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("NewRing capacity 0", func() { NewRing(3, 0) })
	assertPanics("SetBit on ring", func() { NewRing(3, 8).SetBit(0, 0) })
	assertPanics("EvictOldest on unbounded store", func() { New(3).EvictOldest(nil) })
	assertPanics("AppendEvict out-of-range series", func() {
		NewRing(2, 8).AppendEvict(bitset.FromIndices(5), nil)
	})
}
