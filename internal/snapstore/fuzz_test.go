package snapstore

import (
	"testing"

	"repro/internal/bitset"
)

// FuzzAppend fuzzes the store's streaming ingestion, differentially: the
// input bytes encode an op sequence (appends with arbitrary bit patterns and
// explicit evictions) that is applied to a ring store while a plain shadow
// slice tracks the retained rows. After every op the ring's counts must
// match a recount over the shadow. No input may panic; byte-derived series
// indices are kept in range (out-of-range appends are a documented panic).
func FuzzAppend(f *testing.F) {
	f.Add([]byte{3, 8, 0x01, 0x02, 0xff, 0x00})
	f.Add([]byte{1, 1, 0x80, 0x80, 0x80})
	f.Add([]byte{7, 64, 0xaa, 0x55, 0xee})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		series := 1 + int(data[0])%70 // straddles a word boundary
		capacity := 1 + int(data[1])%90
		data = data[2:]
		ring := NewRing(series, capacity)
		var shadow []*bitset.Set // retained rows, oldest first
		evicted := bitset.New(series)

		for _, op := range data {
			if op == 0xff {
				did := ring.EvictOldest(evicted)
				if did != (len(shadow) > 0) {
					t.Fatalf("EvictOldest reported %v with %d retained rows", did, len(shadow))
				}
				if did {
					if !evicted.Equal(shadow[0]) {
						t.Fatalf("evicted %v, want oldest %v", evicted, shadow[0])
					}
					shadow = shadow[1:]
				}
				continue
			}
			// Append: derive a row from the op byte — bit i of the row is set
			// when (op+i) has low bit patterns matching.
			row := bitset.New(series)
			for i := 0; i < series; i++ {
				if (int(op)+i*7)%5 == 0 {
					row.Add(i)
				}
			}
			did := ring.AppendEvict(row, evicted)
			if did != (len(shadow) == capacity) {
				t.Fatalf("AppendEvict reported %v with %d/%d retained", did, len(shadow), capacity)
			}
			if did {
				if !evicted.Equal(shadow[0]) {
					t.Fatalf("evicted %v, want oldest %v", evicted, shadow[0])
				}
				shadow = shadow[1:]
			}
			shadow = append(shadow, row)

			if ring.Snapshots() != len(shadow) {
				t.Fatalf("retained %d, shadow %d", ring.Snapshots(), len(shadow))
			}
			// Per-series counts against a recount of the shadow.
			for i := 0; i < series; i++ {
				want := 0
				for _, r := range shadow {
					if r.Contains(i) {
						want++
					}
				}
				if got := ring.CongestedCount(i); got != want {
					t.Fatalf("series %d: count %d, shadow recount %d", i, got, want)
				}
			}
			// Window-relative rows come back oldest-first.
			for w, r := range shadow {
				if !ring.Row(w).Equal(r) {
					t.Fatalf("row %d: %v, want %v", w, ring.Row(w), r)
				}
			}
		}
	})
}
