package snapstore

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// randomPairStore builds a store (ring or fixed) with random observations.
func randomPairStore(rng *rand.Rand, series, snapshots int, ring bool) *Store {
	var s *Store
	if ring {
		s = NewRing(series, snapshots)
	} else {
		s = New(series)
	}
	row := bitset.New(series)
	for t := 0; t < snapshots; t++ {
		row.Clear()
		for i := 0; i < series; i++ {
			if rng.Intn(3) == 0 {
				row.Add(i)
			}
		}
		s.Append(row)
	}
	return s
}

// TestCountPairsGoodMatchesPerPair pins the blocked batch kernel against the
// per-pair reference (CountAnyCongested) on random stores of many shapes,
// including ring windows and stores larger than one cache block.
func TestCountPairsGoodMatchesPerPair(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct {
		series, snapshots int
		ring              bool
	}{
		{1, 1, false},
		{5, 63, false},
		{8, 64, false},
		{17, 1000, false},
		{9, pairBlockWords*64 + 129, false}, // spans multiple blocks
		{13, 700, true},                     // ring window, rotated slots
	}
	for _, sh := range shapes {
		s := randomPairStore(rng, sh.series, sh.snapshots, sh.ring)
		var pairs []Pair
		for a := 0; a < sh.series; a++ {
			for b := 0; b < sh.series; b++ {
				if rng.Intn(2) == 0 {
					pairs = append(pairs, Pair{A: a, B: b})
				}
			}
		}
		out := make([]int, len(pairs))
		s.CountPairsGood(pairs, out)
		scratch := make([]uint64, s.Words())
		for i, p := range pairs {
			want := s.CountAllGood([]int{p.A, p.B}, scratch)
			if p.A == p.B {
				want = s.CountAllGood([]int{p.A}, scratch)
			}
			if out[i] != want {
				t.Fatalf("store %dx%d ring=%v pair %v: batched count %d, per-pair %d",
					sh.series, sh.snapshots, sh.ring, p, out[i], want)
			}
		}
	}
}

// TestCountPairsCongestedValidation pins the kernel's misuse panics.
func TestCountPairsCongestedValidation(t *testing.T) {
	s := NewFixed(3, 10)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("short out", func() { s.CountPairsCongested(make([]Pair, 2), make([]int, 1)) })
	mustPanic("series out of range", func() { s.CountPairsCongested([]Pair{{A: 0, B: 3}}, make([]int, 1)) })
	mustPanic("negative series", func() { s.CountPairsCongested([]Pair{{A: -1, B: 0}}, make([]int, 1)) })
}
