package snapstore

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// sparsePairStore builds a store where some columns are entirely untouched
// and others are congested only inside a narrow block range — the shapes
// that exercise the block-summary skip paths (both-zero, one-zero) rather
// than the fused sweep.
func sparsePairStore(rng *rand.Rand, series, snapshots int, ring bool) *Store {
	var s *Store
	if ring {
		s = NewRing(series, snapshots)
	} else {
		s = New(series)
	}
	// Series i is active only if i%3 != 2, and only inside a random
	// contiguous snapshot span, so most (series, block) cells are all-zero.
	type span struct{ lo, hi int }
	spans := make([]span, series)
	for i := range spans {
		lo := rng.Intn(snapshots)
		spans[i] = span{lo: lo, hi: lo + rng.Intn(snapshots-lo) + 1}
	}
	row := bitset.New(series)
	for t := 0; t < snapshots; t++ {
		row.Clear()
		for i := 0; i < series; i++ {
			if i%3 != 2 && t >= spans[i].lo && t < spans[i].hi && rng.Intn(4) == 0 {
				row.Add(i)
			}
		}
		s.Append(row)
	}
	return s
}

// TestCountPairsWSMatchesSerial pins the workspace kernels bit-identical to
// the serial blocked kernels across worker counts {1, 2, 7, 8}, on dense and
// sparse stores (the sparse ones drive the block-summary skip paths),
// including ring windows and stores spanning many 512-word blocks. Counts
// are exact integers, so "bit-identical" is plain equality.
func TestCountPairsWSMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct {
		series, snapshots int
		ring, sparse      bool
	}{
		{1, 1, false, false},
		{5, 63, false, false},
		{8, 64, false, true},
		{17, 1000, false, false},
		{9, pairBlockWords*64 + 129, false, false}, // spans multiple blocks
		{7, pairBlockWords*64 + 129, false, true},  // multi-block, mostly zero
		{13, 700, true, false},                     // ring window, rotated slots
		{11, 900, true, true},
	}
	ws := &CountWorkspace{}
	defer ws.Close()
	for _, sh := range shapes {
		var s *Store
		if sh.sparse {
			s = sparsePairStore(rng, sh.series, sh.snapshots, sh.ring)
		} else {
			s = randomPairStore(rng, sh.series, sh.snapshots, sh.ring)
		}
		var pairs []Pair
		for a := 0; a < sh.series; a++ {
			for b := 0; b < sh.series; b++ {
				if rng.Intn(2) == 0 {
					pairs = append(pairs, Pair{A: a, B: b})
				}
			}
		}
		want := make([]int, len(pairs))
		s.CountPairsCongested(pairs, want)
		wantGood := make([]int, len(pairs))
		s.CountPairsGood(pairs, wantGood)
		got := make([]int, len(pairs))
		for _, workers := range []int{1, 2, 7, 8} {
			s.CountPairsCongestedWS(ws, pairs, got, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("store %dx%d ring=%v sparse=%v workers=%d pair %v: WS congested %d, serial %d",
						sh.series, sh.snapshots, sh.ring, sh.sparse, workers, pairs[i], got[i], want[i])
				}
			}
			s.CountPairsGoodWS(ws, pairs, got, workers)
			for i := range wantGood {
				if got[i] != wantGood[i] {
					t.Fatalf("store %dx%d ring=%v sparse=%v workers=%d pair %v: WS good %d, serial %d",
						sh.series, sh.snapshots, sh.ring, sh.sparse, workers, pairs[i], got[i], wantGood[i])
				}
			}
		}
	}
}

// TestCountPairsWSWorkspaceReuse pins that one workspace survives reuse
// across stores of different shapes, Close mid-stream (the pool restarts on
// the next parallel call), double Close, Close on the zero value, and a nil
// workspace falling back to the serial kernel.
func TestCountPairsWSWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ws := &CountWorkspace{}
	big := randomPairStore(rng, 6, pairBlockWords*64*2+65, false)
	small := randomPairStore(rng, 3, 100, false)
	pairsBig := []Pair{{0, 1}, {2, 5}, {4, 4}}
	pairsSmall := []Pair{{0, 2}, {1, 1}}

	check := func(s *Store, pairs []Pair, workers int) {
		t.Helper()
		want := make([]int, len(pairs))
		s.CountPairsCongested(pairs, want)
		got := make([]int, len(pairs))
		s.CountPairsCongestedWS(ws, pairs, got, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d pair %v: got %d, want %d", workers, pairs[i], got[i], want[i])
			}
		}
	}

	check(big, pairsBig, 8)
	check(small, pairsSmall, 4) // shrink store between calls
	ws.Close()
	check(big, pairsBig, 8) // pool restarts after Close
	ws.Close()
	ws.Close() // idempotent
	(&CountWorkspace{}).Close()

	// nil workspace falls back to the serial kernel.
	want := make([]int, len(pairsBig))
	big.CountPairsCongested(pairsBig, want)
	got := make([]int, len(pairsBig))
	big.CountPairsCongestedWS(nil, pairsBig, got, 8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nil ws pair %v: got %d, want %d", pairsBig[i], got[i], want[i])
		}
	}
}

// TestCountPairsWSValidation pins that the workspace kernel panics on the
// same misuse as the serial kernel and stays reusable after the panic.
func TestCountPairsWSValidation(t *testing.T) {
	s := NewFixed(3, 10)
	ws := &CountWorkspace{}
	defer ws.Close()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("short out", func() { s.CountPairsCongestedWS(ws, make([]Pair, 2), make([]int, 1), 2) })
	mustPanic("series out of range", func() { s.CountPairsCongestedWS(ws, []Pair{{A: 0, B: 3}}, make([]int, 1), 2) })
	mustPanic("negative series", func() { s.CountPairsCongestedWS(ws, []Pair{{A: -1, B: 0}}, make([]int, 1), 2) })

	// The panic paths must leave the column registry clean for reuse.
	rng := rand.New(rand.NewSource(3))
	st := randomPairStore(rng, 4, 200, false)
	pairs := []Pair{{0, 1}, {2, 3}}
	want := make([]int, len(pairs))
	st.CountPairsCongested(pairs, want)
	got := make([]int, len(pairs))
	st.CountPairsCongestedWS(ws, pairs, got, 2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after panic: pair %v got %d, want %d", pairs[i], got[i], want[i])
		}
	}
}

// TestCountPairsWSSteadyStateAllocs extends the 0 allocs/op gate to the
// parallel kernels: once the workspace pool is warm, a parallel count must
// not allocate (tasks travel by value through the pool channels).
func TestCountPairsWSSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	s := randomPairStore(rng, 8, pairBlockWords*64+200, false)
	pairs := []Pair{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {1, 6}}
	out := make([]int, len(pairs))
	for _, workers := range []int{1, 4} {
		ws := &CountWorkspace{}
		s.CountPairsCongestedWS(ws, pairs, out, workers) // warm pool + scratch
		allocs := testing.AllocsPerRun(20, func() {
			s.CountPairsCongestedWS(ws, pairs, out, workers)
		})
		ws.Close()
		if allocs != 0 {
			t.Fatalf("workers=%d steady-state CountPairsCongestedWS: %.1f allocs/op, want 0", workers, allocs)
		}
	}
}

// TestDropOldestMatchesEvictLoop pins the batched ring eviction against a
// per-snapshot EvictOldest loop on a shadow store, across drop sizes that
// hit every mask shape: within one word, word-aligned, spanning words, and
// wrapping the ring boundary.
func TestDropOldestMatchesEvictLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, capacity := range []int{1, 63, 64, 65, 200, 700} {
		a := NewRing(5, capacity)
		b := NewRing(5, capacity)
		row := bitset.New(5)
		appendRandom := func(n int) {
			for i := 0; i < n; i++ {
				row.Clear()
				for j := 0; j < 5; j++ {
					if rng.Intn(3) == 0 {
						row.Add(j)
					}
				}
				a.Append(row)
				b.Append(row)
			}
		}
		// Rotate the window first so slot(0) is mid-ring, then exercise a
		// range of drop sizes including overshoot (k > retained).
		appendRandom(capacity + capacity/3 + 1)
		for _, k := range []int{0, 1, 7, 63, 64, 65, capacity / 2, capacity, capacity + 9} {
			appendRandom(rng.Intn(capacity/2 + 1))
			wantDropped := 0
			for i := 0; i < k && b.Snapshots() > 0; i++ {
				b.EvictOldest(nil)
				wantDropped++
			}
			if got := a.DropOldest(k); got != wantDropped {
				t.Fatalf("cap=%d k=%d: DropOldest returned %d, evict loop dropped %d", capacity, k, got, wantDropped)
			}
			if !a.Equal(b) {
				t.Fatalf("cap=%d k=%d: stores diverged after batched drop", capacity, k)
			}
			if a.Snapshots() != b.Snapshots() {
				t.Fatalf("cap=%d k=%d: retained %d vs %d", capacity, k, a.Snapshots(), b.Snapshots())
			}
		}
	}
}

// TestDropOldestUnboundedPanics pins the misuse panic.
func TestDropOldestUnboundedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DropOldest on an unbounded store did not panic")
		}
	}()
	New(3).DropOldest(1)
}
