//go:build linux

package segstore

import "syscall"

// releasePages drops the mapping's resident pages (MADV_DONTNEED); the
// next touch faults them back in from the page cache or the file. Purely
// an RSS hint — failure is harmless, so the error is ignored.
func releasePages(b []byte) {
	if len(b) > 0 {
		syscall.Madvise(b, syscall.MADV_DONTNEED)
	}
}

// adviseSequential marks the mapping as about to be read front to back
// (MADV_SEQUENTIAL): the kernel roughly doubles readahead and frees pages
// soon after they are consumed. Advisory like releasePages — the error is
// ignored.
func adviseSequential(b []byte) {
	if len(b) > 0 {
		syscall.Madvise(b, syscall.MADV_SEQUENTIAL)
	}
}
