package segstore

import (
	"os"
	"testing"

	"repro/internal/bitset"
)

// TestAdviseSequentialHeapFallback pins AdviseSequential's contract on both
// segment flavors: over live mappings it is a pure hint (counts unchanged),
// and over heap-fallback segments (mapped == nil — the openSegment path
// where mmap is unavailable) it must be a no-op rather than a crash. The
// heap flavor is manufactured by re-reading each sealed file through
// parseSegment, the exact fallback openSegment takes.
func TestAdviseSequentialHeapFallback(t *testing.T) {
	const (
		series  = 96
		segRows = 64
		rows    = 3 * segRows
	)
	ts, err := NewTiered(series, 256, Options{Dir: t.TempDir(), SegmentRows: segRows, Reset: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	evicted := bitset.New(series)
	for i := 0; i < rows; i++ {
		ts.AppendEvict(bitset.FromIndices(i%series, (i*7)%series, (i*31)%series), evicted)
	}
	if got := ts.SealedSegments(); got < 2 {
		t.Fatalf("sealed %d segments, want at least 2", got)
	}
	before := make([]int, series)
	for i := range before {
		before[i] = ts.CongestedCount(i)
	}

	// Live mappings: advisory only, every count identical afterwards.
	ts.AdviseSequential()
	for i := range before {
		if got := ts.CongestedCount(i); got != before[i] {
			t.Fatalf("after advising mapped segments, series %d counts %d, want %d", i, got, before[i])
		}
	}

	// Swap every sealed segment for a heap-parsed copy of its file — what
	// openSegment produces where mmap is unavailable — releasing the mapped
	// originals.
	ts.mu.Lock()
	for k, seg := range ts.sealed {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			ts.mu.Unlock()
			t.Fatal(err)
		}
		heapSeg, perr := parseSegment(data, seg.path)
		if perr != nil {
			ts.mu.Unlock()
			t.Fatal(perr)
		}
		if heapSeg.mapped != nil {
			ts.mu.Unlock()
			t.Fatal("heap-parsed segment claims a mapping")
		}
		heapSeg.refs.Store(1)
		ts.sealed[k] = heapSeg
		seg.release()
	}
	ts.mu.Unlock()

	// Heap fallback: AdviseSequential must not touch (or crash on) the
	// unmapped segments, and the store keeps answering identically.
	ts.AdviseSequential()
	for i := range before {
		if got := ts.CongestedCount(i); got != before[i] {
			t.Fatalf("after advising heap segments, series %d counts %d, want %d", i, got, before[i])
		}
	}

	// The raw hint is a no-op on empty input too.
	adviseSequential(nil)
}
