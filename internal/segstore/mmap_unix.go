//go:build unix

package segstore

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mmapFile maps the first size bytes of f read-only and shared, so sealed
// segment pages live in the page cache, not the Go heap — the kernel can
// reclaim cold ones under memory pressure and the RSS of a day-scale
// replay stays bounded by the hot window.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error { return syscall.Munmap(b) }
