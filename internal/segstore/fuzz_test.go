package segstore

import (
	"strings"
	"testing"

	"repro/internal/bitset"
)

// validSegmentImage builds a small well-formed segment file image — the
// fuzz seed every mutation starts from, and the positive control the fuzz
// body re-checks on every run.
func validSegmentImage() []byte {
	const series, segRows = 5, 128
	words := segRows / wordBits
	s := &segment{
		rows:  segRows,
		words: words,
		meta:  make([]colMeta, series),
		data:  make([]uint64, series*words),
	}
	for i := range s.meta {
		s.meta[i] = colMeta{lo: 0, hi: words, off: i * words}
	}
	for i := 1; i < series; i++ {
		for r := i; r < segRows; r += 3 * i {
			s.data[s.meta[i].off+r/wordBits] |= 1 << uint(r%wordBits)
			s.meta[i].pop++
		}
	}
	return encodeSegment(s)
}

// FuzzSegmentDecode throws arbitrary bytes at the two decoding surfaces of
// the on-disk format — segment files and manifests. The decoders must
// never panic (truncation, bit-flips, hostile headers, absurd sizes) and
// every rejection must carry the "segstore:" prefix. Accepted segment
// images must additionally be internally consistent enough to query: the
// count kernels are run over every column and compared against a per-bit
// recount, so an image that parses but lies about its directory fails
// here rather than corrupting an estimate later.
func FuzzSegmentDecode(f *testing.F) {
	valid := validSegmentImage()
	f.Add(valid)
	// Truncations at structural boundaries.
	f.Add(valid[:headerSize-1])
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-3])
	// A bit-flip in the header and one in the data.
	flip := func(i int) []byte {
		b := append([]byte(nil), valid...)
		b[i] ^= 0x40
		return b
	}
	f.Add(flip(9))
	f.Add(flip(len(valid) - 1))
	f.Add([]byte(segMagic))
	// Manifest-shaped seeds (the same fuzz body feeds both decoders).
	f.Add([]byte(`{"version":1,"series":4,"segment_rows":128,"segments":[]}`))
	f.Add([]byte(`{"version":1,"series":4,"segment_rows":128,"segments":[{"file":"seg-00000000.seg","base":0,"crc":7}]}`))
	f.Add([]byte(`{"version":1,"series":4,"segment_rows":128,"segments":[{"file":"../evil","base":0,"crc":0}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := parseSegment(data, "fuzz")
		if err != nil {
			if !strings.HasPrefix(err.Error(), "segstore:") {
				t.Fatalf("parseSegment error %q lacks the segstore: prefix", err)
			}
		} else {
			checkSegmentConsistent(t, seg)
		}
		man, merr := parseManifest(data)
		if merr != nil {
			if !strings.HasPrefix(merr.Error(), "segstore:") {
				t.Fatalf("parseManifest error %q lacks the segstore: prefix", merr)
			}
		} else {
			// Accepted manifests must round-trip through the encoder.
			if _, err := parseManifest(encodeManifest(man)); err != nil {
				t.Fatalf("accepted manifest does not re-parse: %v", err)
			}
		}
	})
}

// checkSegmentConsistent cross-checks an accepted segment image: directory
// popcounts against per-bit recounts, and the pair/any kernels against the
// naive definition on a few ranges.
func checkSegmentConsistent(t *testing.T, s *segment) {
	t.Helper()
	series := len(s.meta)
	for i := 0; i < series; i++ {
		want := 0
		for r := 0; r < s.rows; r++ {
			if s.bit(i, r) {
				want++
			}
		}
		if g := s.seriesCount(i, 0, s.rows); g != want || s.meta[i].pop != want {
			t.Fatalf("column %d: kernel %d, directory %d, recount %d", i, g, s.meta[i].pop, want)
		}
	}
	if series == 0 || s.rows > 4096 {
		return
	}
	ranges := [][2]int{{0, s.rows}, {1, s.rows - 1}, {0, 1}}
	dst := bitset.New(series)
	for _, rg := range ranges {
		if rg[0] >= rg[1] {
			continue
		}
		for a := 0; a < series; a++ {
			b := (a + 1) % series
			want := 0
			for r := rg[0]; r < rg[1]; r++ {
				if s.bit(a, r) || s.bit(b, r) {
					want++
				}
			}
			if g := s.pairCount(a, b, rg[0], rg[1]); g != want {
				t.Fatalf("pair (%d,%d) range %v: kernel %d, recount %d", a, b, rg, g, want)
			}
		}
	}
	dst.Clear()
	s.rowInto(0, dst)
	for i := 0; i < series; i++ {
		if dst.Contains(i) != s.bit(i, 0) {
			t.Fatalf("rowInto(0) disagrees with bit() on column %d", i)
		}
	}
}
