package segstore

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/snapstore"
)

// TieredView is an immutable snapshot of a TieredStore's retained window,
// built by SnapshotView for estimate-side read replicas: the sealed
// segments are shared by reference (each view holds one reference count per
// segment, so the owner's seal/ReleaseMapped/Close can never unmap or
// madvise a mapping under the view's count sweeps) and only the small
// active write buffer is copied. Count queries answer exactly what the
// source store would have answered at snapshot time, bit-identically —
// the copy-on-write contract the serving layer's replica estimates pin.
//
// A view is safe for use by one reader goroutine at a time (its count
// methods share scratch-free segment kernels but the measure layer above
// serializes queries per estimator); different views are fully independent.
// Views never mutate: the append/evict methods panic. Close releases the
// segment references and is idempotent; a closed view may be recycled
// through the next SnapshotView.
type TieredView struct {
	series   int
	segRows  int
	words    int // per segment
	capacity int

	n        int // source's lifetime append count at snapshot time
	retained int // source's window occupancy at snapshot time

	segs    []*segment // retained sealed segments overlapping the window
	segOff  int        // segs[0] is the segOff-th sealed segment overall
	active  segment    // copied write buffer
	backing []uint64   // active's column words, reused across recycles
	closed  bool
}

// SnapshotView freezes the store's retained window into an immutable view.
// Sealed segments are retained by reference — O(segments) pointer work —
// and the active buffer (at most SegmentRows rows) is copied, so the cost
// is independent of the window size. Passing a previous view as recycle
// closes it and reuses its buffers; a steady-state publisher allocates
// nothing. Must be called by the store's owning goroutine (it reads the
// active buffer), which is also why the returned view observes a
// consistent window.
func (ts *TieredStore) SnapshotView(recycle *TieredView) *TieredView {
	if ts.closed {
		panic("segstore: SnapshotView on a closed store")
	}
	v := recycle
	if v != nil {
		v.Close()
	}
	if v == nil || v.series != ts.series || v.segRows != ts.segRows {
		v = &TieredView{series: ts.series, segRows: ts.segRows, words: ts.words}
		v.backing = make([]uint64, ts.words*ts.series)
		v.active = segment{rows: ts.segRows, words: ts.words, meta: make([]colMeta, ts.series), data: v.backing}
		for i := range v.active.meta {
			v.active.meta[i] = colMeta{lo: 0, hi: ts.words, off: i * ts.words}
		}
	}
	v.closed = false
	v.capacity = ts.capacity
	v.n, v.retained = ts.n, ts.retained
	ts.mu.Lock()
	v.segs = append(v.segs[:0], ts.windowSealed()...)
	for _, seg := range v.segs {
		// The store's own reference is live (we hold its mutex and it is not
		// closed), so a plain increment cannot race a final release.
		seg.refs.Add(1)
	}
	ts.mu.Unlock()
	v.segOff = 0
	if len(v.segs) > 0 {
		v.segOff = v.segs[0].base / ts.segRows
	}
	copy(v.backing, ts.backing)
	for i := range ts.active.meta {
		v.active.meta[i].pop = ts.active.meta[i].pop
	}
	v.active.base = ts.active.base
	return v
}

// NumSeries returns the number of columns.
func (v *TieredView) NumSeries() int { return v.series }

// Snapshots returns the window occupancy at snapshot time.
func (v *TieredView) Snapshots() int { return v.retained }

// Appended returns the source's lifetime append count at snapshot time.
func (v *TieredView) Appended() int { return v.n }

// Capacity returns the source window's capacity.
func (v *TieredView) Capacity() int { return v.capacity }

// SealedSegments returns how many sealed segments the view holds.
func (v *TieredView) SealedSegments() int { return len(v.segs) }

// window returns the absolute row range [from, to) of the frozen window.
func (v *TieredView) window() (from, to int) { return v.n - v.retained, v.n }

// AppendEvict panics: views are immutable.
func (v *TieredView) AppendEvict(congested, evicted *bitset.Set) bool {
	panic("segstore: AppendEvict on an immutable snapshot view")
}

// AppendEvictWords panics: views are immutable.
func (v *TieredView) AppendEvictWords(rowWords []uint64, evicted *bitset.Set) bool {
	panic("segstore: AppendEvictWords on an immutable snapshot view")
}

// EvictOldest panics: views are immutable.
func (v *TieredView) EvictOldest(evicted *bitset.Set) bool {
	panic("segstore: EvictOldest on an immutable snapshot view")
}

// DropOldest panics: views are immutable.
func (v *TieredView) DropOldest(k int) int {
	panic("segstore: DropOldest on an immutable snapshot view")
}

// activeOverlap returns the copied buffer's row range inside the window,
// empty when the window ends before the buffer starts.
func (v *TieredView) activeOverlap() (lo, hi int, ok bool) {
	from, to := v.window()
	if to <= v.active.base {
		return 0, 0, false
	}
	lo, hi = overlap(&v.active, from, to)
	return lo, hi, lo < hi
}

// CongestedCount returns the number of window snapshots in which series i
// was congested.
func (v *TieredView) CongestedCount(i int) int {
	v.checkSeries(i)
	from, to := v.window()
	n := 0
	for _, seg := range v.segs {
		lo, hi := overlap(seg, from, to)
		n += seg.seriesCount(i, lo, hi)
	}
	if lo, hi, ok := v.activeOverlap(); ok {
		n += v.active.seriesCount(i, lo, hi)
	}
	return n
}

// CountAllGood returns the number of window snapshots in which none of the
// given series was congested. An empty series list counts every retained
// snapshot.
func (v *TieredView) CountAllGood(series []int) int {
	for _, i := range series {
		v.checkSeries(i)
	}
	from, to := v.window()
	bad := 0
	for _, seg := range v.segs {
		lo, hi := overlap(seg, from, to)
		bad += seg.anyCount(series, lo, hi)
	}
	if lo, hi, ok := v.activeOverlap(); ok {
		bad += v.active.anyCount(series, lo, hi)
	}
	return v.retained - bad
}

// CountPairGood returns the number of window snapshots in which neither
// series i nor j was congested.
func (v *TieredView) CountPairGood(i, j int) int {
	v.checkSeries(i)
	v.checkSeries(j)
	from, to := v.window()
	bad := 0
	for _, seg := range v.segs {
		lo, hi := overlap(seg, from, to)
		bad += seg.pairCount(i, j, lo, hi)
	}
	if lo, hi, ok := v.activeOverlap(); ok {
		bad += v.active.pairCount(i, j, lo, hi)
	}
	return v.retained - bad
}

// CountPairsGood fills out[i] with the number of window snapshots in which
// neither series of pairs[i] was congested — the same segment-major sweep
// as TieredStore.CountPairsGood, over the frozen window.
func (v *TieredView) CountPairsGood(pairs []snapstore.Pair, out []int, workers int) {
	if len(out) < len(pairs) {
		panic(fmt.Sprintf("segstore: CountPairsGood out has %d slots for %d pairs", len(out), len(pairs)))
	}
	_ = workers
	for i, p := range pairs {
		v.checkSeries(p.A)
		v.checkSeries(p.B)
		out[i] = 0
	}
	from, to := v.window()
	for _, seg := range v.segs {
		lo, hi := overlap(seg, from, to)
		if lo >= hi {
			continue
		}
		for i, p := range pairs {
			out[i] += seg.pairCount(p.A, p.B, lo, hi)
		}
	}
	if lo, hi, ok := v.activeOverlap(); ok {
		for i, p := range pairs {
			out[i] += v.active.pairCount(p.A, p.B, lo, hi)
		}
	}
	for i := range pairs {
		out[i] = v.retained - out[i]
	}
}

// Bit reports whether series i was congested in window snapshot t.
func (v *TieredView) Bit(i, t int) bool {
	v.checkSeries(i)
	if t < 0 || t >= v.retained {
		return false
	}
	from, _ := v.window()
	abs := from + t
	if k := abs/v.segRows - v.segOff; k >= 0 && k < len(v.segs) {
		return v.segs[k].bit(i, abs-v.segs[k].base)
	}
	return v.active.bit(i, abs-v.active.base)
}

// RowInto materializes window snapshot t as a set of congested series into
// dst (cleared first); t = 0 is the oldest retained snapshot.
func (v *TieredView) RowInto(t int, dst *bitset.Set) {
	dst.Clear()
	if t < 0 || t >= v.retained {
		panic(fmt.Sprintf("segstore: snapshot %d outside window [0, %d)", t, v.retained))
	}
	from, _ := v.window()
	abs := from + t
	if k := abs/v.segRows - v.segOff; k >= 0 && k < len(v.segs) {
		v.segs[k].rowInto(abs-v.segs[k].base, dst)
		return
	}
	v.active.rowInto(abs-v.active.base, dst)
}

func (v *TieredView) checkSeries(i int) {
	if i < 0 || i >= v.series {
		panic(fmt.Sprintf("segstore: series %d out of range (%d series)", i, v.series))
	}
}

// Close releases the view's segment references; the last holder of a
// segment unmaps it. Idempotent; a closed view holds no segments and may be
// recycled through SnapshotView.
func (v *TieredView) Close() {
	if v.closed {
		return
	}
	v.closed = true
	for _, seg := range v.segs {
		seg.release()
	}
	v.segs = v.segs[:0]
}
