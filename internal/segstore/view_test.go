package segstore

import (
	"sync"
	"testing"

	"repro/internal/bitset"
)

// TestViewMatchesStore freezes views at checkpoints of an append/evict
// replay and requires every count kernel on the view to keep answering
// exactly what the store answered at freeze time — while the store moves
// on, seals new segments, and evicts past the view. Views are recycled the
// way a steady-state publisher recycles them.
func TestViewMatchesStore(t *testing.T) {
	const (
		series   = 70
		segRows  = 128
		capacity = 300
		steps    = 900
		stride   = 61
	)
	ts, err := NewTiered(series, capacity, Options{Dir: t.TempDir(), SegmentRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	pairs := testPairs(series)
	row, ev := bitset.New(series), bitset.New(series)
	all := make([]int, series)
	for i := range all {
		all[i] = i
	}

	type frozen struct {
		view      *TieredView
		congested []int
		allGood   int
		pairsGood []int
		rows      []*bitset.Set
	}
	var pendingMu sync.Mutex
	var pending *frozen // checked (and recycled) one stride later

	checkFrozen := func(f *frozen) {
		t.Helper()
		v := f.view
		if v.Snapshots() != len(f.rows) {
			t.Fatalf("view retains %d snapshots, froze %d", v.Snapshots(), len(f.rows))
		}
		for i := 0; i < series; i++ {
			if g, w := v.CongestedCount(i), f.congested[i]; g != w {
				t.Fatalf("series %d: view congested count %d, frozen %d", i, g, w)
			}
		}
		if g := v.CountAllGood(all); g != f.allGood {
			t.Fatalf("view all-good %d, frozen %d", g, f.allGood)
		}
		out := make([]int, len(pairs))
		v.CountPairsGood(pairs, out, 1)
		for i := range pairs {
			if out[i] != f.pairsGood[i] {
				t.Fatalf("pair %v: view good count %d, frozen %d", pairs[i], out[i], f.pairsGood[i])
			}
		}
		got := bitset.New(series)
		for u, want := range f.rows {
			v.RowInto(u, got)
			if !got.Equal(want) {
				t.Fatalf("row %d: view %v, frozen %v", u, got, want)
			}
			for i := 0; i < series; i++ {
				if v.Bit(i, u) != want.Contains(i) {
					t.Fatalf("bit (%d, %d): view disagrees with frozen row", i, u)
				}
			}
		}
	}

	var recycle *TieredView
	for step := 0; step < steps; step++ {
		fillRow(row, series, step, 7)
		ts.AppendEvict(row, ev)
		if (step+1)%stride != 0 {
			continue
		}
		f := &frozen{congested: make([]int, series), pairsGood: make([]int, len(pairs))}
		for i := 0; i < series; i++ {
			f.congested[i] = ts.CongestedCount(i)
		}
		f.allGood = ts.CountAllGood(all)
		ts.CountPairsGood(pairs, f.pairsGood, 1)
		for u := 0; u < ts.Snapshots(); u++ {
			r := bitset.New(series)
			ts.RowInto(u, r)
			f.rows = append(f.rows, r)
		}
		f.view = ts.SnapshotView(recycle)
		recycle = nil
		checkFrozen(f) // immediately after freeze

		pendingMu.Lock()
		old := pending
		pending = f
		pendingMu.Unlock()
		if old != nil {
			// One full stride of appends, seals and evictions later: the
			// earlier view must still answer as of its own freeze point.
			checkFrozen(old)
			old.view.Close()
			old.view.Close() // idempotent
			recycle = old.view
		}
	}
}

// TestViewImmutable pins the mutation guards: every append/evict entry
// point on a view panics rather than corrupting the frozen window.
func TestViewImmutable(t *testing.T) {
	ts, err := NewTiered(8, 128, Options{Dir: t.TempDir(), SegmentRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	row := bitset.New(8)
	for i := 0; i < 70; i++ {
		fillRow(row, 8, i, 3)
		ts.AppendEvict(row, nil)
	}
	v := ts.SnapshotView(nil)
	defer v.Close()
	for name, fn := range map[string]func(){
		"AppendEvict": func() { v.AppendEvict(row, nil) },
		"EvictOldest": func() { v.EvictOldest(nil) },
		"DropOldest":  func() { v.DropOldest(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a view did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestReleaseMappedConcurrentWithViews is the -race regression for the
// unsynchronized-madvise bug: the owner goroutine keeps appending (sealing
// segments), calling ReleaseMapped, and finally Close, while reader
// goroutines hold refcounted views and sweep count kernels over the shared
// mappings the whole time. ReleaseMapped must skip any segment a view still
// references (refcount > 1), and Close must leave shared segments mapped
// until the last view releases them — the counts stay exact throughout.
func TestReleaseMappedConcurrentWithViews(t *testing.T) {
	const (
		series   = 70
		segRows  = 64
		capacity = 256
		steps    = 640
		readers  = 4
	)
	ts, err := NewTiered(series, capacity, Options{Dir: t.TempDir(), SegmentRows: segRows})
	if err != nil {
		t.Fatal(err)
	}

	pairs := testPairs(series)
	all := make([]int, series)
	for i := range all {
		all[i] = i
	}
	row, ev := bitset.New(series), bitset.New(series)

	var wg sync.WaitGroup
	errs := make(chan string, readers*8)
	spawnReader := func(v *TieredView, congested []int, allGood int, pairsGood []int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer v.Close()
			out := make([]int, len(pairs))
			for rep := 0; rep < 50; rep++ {
				for i := 0; i < series; i++ {
					if v.CongestedCount(i) != congested[i] {
						errs <- "congested count drifted under ReleaseMapped"
						return
					}
				}
				if v.CountAllGood(all) != allGood {
					errs <- "all-good count drifted under ReleaseMapped"
					return
				}
				v.CountPairsGood(pairs, out, 1)
				for i := range pairs {
					if out[i] != pairsGood[i] {
						errs <- "pair count drifted under ReleaseMapped"
						return
					}
				}
			}
		}()
	}

	launched := 0
	for step := 0; step < steps; step++ {
		fillRow(row, series, step, 7)
		ts.AppendEvict(row, ev)
		if ts.SealedSegments() == 0 || (step+1)%97 != 0 || launched >= readers {
			continue
		}
		congested := make([]int, series)
		for i := 0; i < series; i++ {
			congested[i] = ts.CongestedCount(i)
		}
		allGood := ts.CountAllGood(all)
		pairsGood := make([]int, len(pairs))
		ts.CountPairsGood(pairs, pairsGood, 1)
		spawnReader(ts.SnapshotView(nil), congested, allGood, pairsGood)
		launched++
		ts.ReleaseMapped() // races the reader's count sweeps — the bugfix under test
	}
	if launched == 0 {
		t.Fatal("no readers launched; tune the schedule")
	}
	ts.ReleaseMapped()
	// Close the store while views are still reading: their segments must
	// survive until each view's own Close.
	ts.Close()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
