package segstore

import (
	"fmt"
	mathbits "math/bits"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/bitset"
	"repro/internal/snapstore"
)

// TieredStore is the out-of-core drop-in for a snapstore ring: snapshots
// append into a RAM write buffer of SegmentRows columns-in-progress; a full
// buffer is sealed to disk (span-compressed, checksummed, manifest-listed)
// and mapped back read-only, and the buffer restarts on the next block.
// Window-relative count queries sweep the sealed segments that overlap the
// retained window plus the active buffer, and return exactly the integer
// counts a RAM-only snapstore ring holding the same rows would — the
// bit-identity the differential tests pin.
//
// Semantics mirror snapstore exactly: the store retains at most capacity of
// the n appended snapshots, window row t addresses absolute row
// n−retained+t, and DropOldest/EvictOldest shrink the window without
// touching disk (sealed history stays on disk — that is the point — only
// the query window moves). Unlike the RAM ring, evicted rows are therefore
// still readable through OpenReader afterwards.
//
// Append-side I/O errors panic with a "segstore:"-prefixed message: an
// unwritable spill directory is infrastructure failure, equivalent to the
// RAM store's allocation failing, and none of the append call chain has an
// error path worth threading one through. Decode-side errors (corrupt
// files, bad manifests) are returned as errors by NewTiered/OpenReader.
//
// A TieredStore's mutating and counting methods are owned by one goroutine,
// like the measurement windows it backs. The exceptions, built for the
// read-replica serving path, are SnapshotView (called by the owner; the
// views it returns are read by other goroutines) and ReleaseMapped/Close,
// which synchronize on mu + per-segment reference counts so a mapping is
// never torn down or madvised away under a concurrent view reader.
type TieredStore struct {
	dir      string
	series   int
	capacity int
	segRows  int
	words    int // per segment

	n        int // snapshots appended over the lifetime
	retained int // snapshots currently in the window

	// mu guards the sealed slice and the segment reference counts against
	// the cross-goroutine methods (SnapshotView retaining segments,
	// ReleaseMapped deciding a mapping is safe to madvise, Close releasing
	// the store's references). The owner's count sweeps read sealed without
	// mu — only the owner appends to it.
	mu      sync.Mutex
	sealed  []*segment // sealed[i].base == i*segRows
	active  segment    // dense write buffer for rows [active.base, active.base+segRows)
	backing []uint64   // active's column words, one contiguous allocation
	man     manifest
	spilled int64
	closed  bool
}

// NewTiered creates a spill-enabled window store: series columns, a query
// window of at most capacity snapshots, segments sealed into opts.Dir.
func NewTiered(series, capacity int, opts Options) (*TieredStore, error) {
	if series < 0 || series > maxSeries {
		return nil, fmt.Errorf("segstore: %d series outside [0, %d]", series, maxSeries)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("segstore: window capacity %d, want ≥ 1", capacity)
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("segstore: Options.Dir is required")
	}
	segRows := opts.SegmentRows
	if segRows == 0 {
		segRows = DefaultSegmentRows
	}
	if segRows < wordBits || segRows > maxSegmentRows || segRows%wordBits != 0 {
		return nil, fmt.Errorf("segstore: segment rows %d, want a multiple of %d in [%d, %d]",
			segRows, wordBits, wordBits, maxSegmentRows)
	}
	if err := os.MkdirAll(opts.Dir, 0o777); err != nil {
		return nil, fmt.Errorf("segstore: %v", err)
	}
	manPath := filepath.Join(opts.Dir, ManifestName)
	if _, err := os.Stat(manPath); err == nil {
		if !opts.Reset {
			return nil, fmt.Errorf("segstore: %s already holds a segment store (set Options.Reset to discard it, or inspect it with OpenReader)", opts.Dir)
		}
		if err := resetDir(opts.Dir); err != nil {
			return nil, err
		}
	}
	words := segRows / wordBits
	ts := &TieredStore{
		dir:      opts.Dir,
		series:   series,
		capacity: capacity,
		segRows:  segRows,
		words:    words,
		backing:  make([]uint64, words*series),
		man:      manifest{Version: formatVersion, Series: series, SegmentRows: segRows},
	}
	ts.active = segment{
		rows:  segRows,
		words: words,
		meta:  make([]colMeta, series),
		data:  ts.backing,
	}
	for i := range ts.active.meta {
		ts.active.meta[i] = colMeta{lo: 0, hi: words, off: i * words}
	}
	if err := ts.writeManifest(); err != nil {
		return nil, fmt.Errorf("segstore: %v", err)
	}
	return ts, nil
}

// resetDir removes an existing store (manifest, segments, stray temp files)
// from dir.
func resetDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("segstore: %v", err)
	}
	for _, e := range entries {
		name := e.Name()
		stale := name == ManifestName ||
			(strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg")) ||
			strings.Contains(name, ".tmp-")
		if !stale {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("segstore: %v", err)
		}
	}
	return nil
}

func (ts *TieredStore) writeManifest() error {
	return atomicWriteFile(ts.dir, ManifestName, encodeManifest(&ts.man))
}

// NumSeries returns the number of columns.
func (ts *TieredStore) NumSeries() int { return ts.series }

// Snapshots returns the window occupancy — the rows count queries run over.
func (ts *TieredStore) Snapshots() int { return ts.retained }

// Appended returns the number of snapshots ever appended.
func (ts *TieredStore) Appended() int { return ts.n }

// Capacity returns the window capacity.
func (ts *TieredStore) Capacity() int { return ts.capacity }

// SegmentRows returns the seal granularity.
func (ts *TieredStore) SegmentRows() int { return ts.segRows }

// SealedSegments returns how many segments have been sealed to disk.
func (ts *TieredStore) SealedSegments() int { return len(ts.sealed) }

// SpilledBytes returns the total bytes of sealed segment files written.
func (ts *TieredStore) SpilledBytes() int64 { return ts.spilled }

// Dir returns the spill directory.
func (ts *TieredStore) Dir() string { return ts.dir }

// window returns the absolute row range [from, to) of the retained window.
func (ts *TieredStore) window() (from, to int) { return ts.n - ts.retained, ts.n }

// Append ingests one snapshot and returns its lifetime index, evicting the
// oldest retained snapshot silently when the window is full.
func (ts *TieredStore) Append(congested *bitset.Set) int {
	t := ts.n
	ts.AppendEvict(congested, nil)
	return t
}

// AppendEvict ingests one snapshot, evicting the oldest retained snapshot
// first when the window is full. It reports whether an eviction happened
// and, when evicted is non-nil, leaves the evicted snapshot's congested
// series in it (cleared otherwise) — the same contract as
// snapstore.Store.AppendEvict.
func (ts *TieredStore) AppendEvict(congested, evicted *bitset.Set) bool {
	didEvict := false
	if ts.retained == ts.capacity {
		didEvict = ts.EvictOldest(evicted)
	} else if evicted != nil {
		evicted.Clear()
	}
	r := ts.n - ts.active.base
	w, mask := r/wordBits, uint64(1)<<uint(r%wordBits)
	congested.ForEach(func(i int) bool {
		if i >= ts.series {
			panic(fmt.Sprintf("segstore: series %d out of range (%d series)", i, ts.series))
		}
		m := &ts.active.meta[i]
		p := &ts.backing[m.off+w]
		if *p&mask == 0 {
			*p |= mask
			m.pop++
		}
		return true
	})
	ts.n++
	ts.retained++
	if r+1 == ts.segRows {
		ts.seal()
	}
	return didEvict
}

// AppendEvictWords is AppendEvict with the snapshot presented as packed
// words (bit i of word w ⇒ series w*64+i congested) — the wire-ingest fast
// path, bit-identical to AppendEvict over an equal set. rowWords may carry
// fewer than ⌈series/64⌉ words (missing words mean all-good); a bit at or
// past the series count panics like AppendEvict's out-of-range series.
func (ts *TieredStore) AppendEvictWords(rowWords []uint64, evicted *bitset.Set) bool {
	didEvict := false
	if ts.retained == ts.capacity {
		didEvict = ts.EvictOldest(evicted)
	} else if evicted != nil {
		evicted.Clear()
	}
	r := ts.n - ts.active.base
	w, mask := r/wordBits, uint64(1)<<uint(r%wordBits)
	for wi, wv := range rowWords {
		for wv != 0 {
			b := mathbits.TrailingZeros64(wv)
			wv &= wv - 1
			i := wi*wordBits + b
			if i >= ts.series {
				panic(fmt.Sprintf("segstore: series %d out of range (%d series)", i, ts.series))
			}
			m := &ts.active.meta[i]
			p := &ts.backing[m.off+w]
			if *p&mask == 0 {
				*p |= mask
				m.pop++
			}
		}
	}
	ts.n++
	ts.retained++
	if r+1 == ts.segRows {
		ts.seal()
	}
	return didEvict
}

// EvictOldest shrinks the window by one snapshot, reporting whether one was
// evicted and leaving its congested series in evicted when non-nil. The row
// stays on disk if it was sealed; only the window boundary moves.
func (ts *TieredStore) EvictOldest(evicted *bitset.Set) bool {
	if evicted != nil {
		evicted.Clear()
	}
	if ts.retained == 0 {
		return false
	}
	if evicted != nil {
		ts.rowInto(ts.n-ts.retained, evicted)
	}
	ts.retained--
	return true
}

// DropOldest shrinks the window by the k oldest snapshots and returns how
// many were dropped (min(k, retained)). Dropped rows are not reported, like
// snapstore.Store.DropOldest; unlike it, nothing is cleared — sealed rows
// remain on disk and active-buffer rows simply leave the query range.
func (ts *TieredStore) DropOldest(k int) int {
	if k > ts.retained {
		k = ts.retained
	}
	if k <= 0 {
		return 0
	}
	ts.retained -= k
	return k
}

// seal writes the full active buffer to disk, maps it back, and restarts
// the buffer on the next row block. See the type comment for why I/O
// failure panics.
func (ts *TieredStore) seal() {
	name := fmt.Sprintf("seg-%08d.seg", len(ts.sealed))
	buf := encodeSegment(&ts.active)
	if err := atomicWriteFile(ts.dir, name, buf); err != nil {
		panic(fmt.Sprintf("segstore: sealing %s: %v", name, err))
	}
	ts.man.Segments = append(ts.man.Segments, manifestSegment{
		File: name,
		Base: uint64(ts.active.base),
		CRC:  crcOfEncoded(buf),
	})
	if err := ts.writeManifest(); err != nil {
		panic(fmt.Sprintf("segstore: manifest after sealing %s: %v", name, err))
	}
	seg, err := openSegment(filepath.Join(ts.dir, name))
	if err != nil {
		panic(fmt.Sprintf("segstore: reading back %s: %v", name, err))
	}
	ts.mu.Lock()
	ts.sealed = append(ts.sealed, seg)
	ts.mu.Unlock()
	ts.spilled += int64(len(buf))
	bitset.ZeroWords(ts.backing)
	for i := range ts.active.meta {
		ts.active.meta[i].pop = 0
	}
	ts.active.base += ts.segRows
}

// crcOfEncoded extracts the data CRC field from an encoded segment image.
func crcOfEncoded(buf []byte) uint32 {
	return uint32(buf[40]) | uint32(buf[41])<<8 | uint32(buf[42])<<16 | uint32(buf[43])<<24
}

// openSegment opens a sealed segment file, preferring a shared read-only
// mapping and falling back to a heap read where mmap is unavailable.
func openSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("segstore: %v", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("segstore: %v", err)
	}
	size := st.Size()
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("segstore: %s: %d bytes does not fit in memory", path, size)
	}
	if mapped, merr := mmapFile(f, int(size)); merr == nil {
		seg, perr := parseSegment(mapped, path)
		if perr != nil {
			munmap(mapped)
			return nil, perr
		}
		seg.mapped = mapped
		seg.refs.Store(1)
		return seg, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("segstore: %v", err)
	}
	seg, err := parseSegment(data, path)
	if err != nil {
		return nil, err
	}
	seg.refs.Store(1)
	return seg, nil
}

// overlap clips the window [from, to) to segment s and returns the
// segment-relative row range.
func overlap(s *segment, from, to int) (lo, hi int) {
	lo, hi = from-s.base, to-s.base
	if lo < 0 {
		lo = 0
	}
	if hi > s.rows {
		hi = s.rows
	}
	return
}

// windowSealed returns the sealed segments that overlap the retained
// window (sealed[i] covers rows [i·segRows, (i+1)·segRows), so the slice
// starts at the oldest retained row's segment).
func (ts *TieredStore) windowSealed() []*segment {
	from, _ := ts.window()
	i := from / ts.segRows
	if i > len(ts.sealed) {
		i = len(ts.sealed)
	}
	return ts.sealed[i:]
}

// activeOverlap returns the active buffer's row range inside the window,
// empty when the window ends before the buffer starts.
func (ts *TieredStore) activeOverlap() (lo, hi int, ok bool) {
	from, to := ts.window()
	if to <= ts.active.base {
		return 0, 0, false
	}
	lo, hi = overlap(&ts.active, from, to)
	return lo, hi, lo < hi
}

// CongestedCount returns the number of window snapshots in which series i
// was congested.
func (ts *TieredStore) CongestedCount(i int) int {
	ts.checkSeries(i)
	from, to := ts.window()
	n := 0
	for _, seg := range ts.windowSealed() {
		lo, hi := overlap(seg, from, to)
		n += seg.seriesCount(i, lo, hi)
	}
	if lo, hi, ok := ts.activeOverlap(); ok {
		n += ts.active.seriesCount(i, lo, hi)
	}
	return n
}

// CountAllGood returns the number of window snapshots in which none of the
// given series was congested. An empty series list counts every retained
// snapshot.
func (ts *TieredStore) CountAllGood(series []int) int {
	for _, i := range series {
		ts.checkSeries(i)
	}
	from, to := ts.window()
	bad := 0
	for _, seg := range ts.windowSealed() {
		lo, hi := overlap(seg, from, to)
		bad += seg.anyCount(series, lo, hi)
	}
	if lo, hi, ok := ts.activeOverlap(); ok {
		bad += ts.active.anyCount(series, lo, hi)
	}
	return ts.retained - bad
}

// CountPairGood returns the number of window snapshots in which neither
// series i nor j was congested.
func (ts *TieredStore) CountPairGood(i, j int) int {
	ts.checkSeries(i)
	ts.checkSeries(j)
	from, to := ts.window()
	bad := 0
	for _, seg := range ts.windowSealed() {
		lo, hi := overlap(seg, from, to)
		bad += seg.pairCount(i, j, lo, hi)
	}
	if lo, hi, ok := ts.activeOverlap(); ok {
		bad += ts.active.pairCount(i, j, lo, hi)
	}
	return ts.retained - bad
}

// CountPairsGood fills out[i] with the number of window snapshots in which
// neither series of pairs[i] was congested. The sweep is segment-major so
// each mapped segment's pages are touched once for the whole batch. The
// workers argument exists for call-signature parity with the RAM store's
// parallel kernel; the mapped sweep is serial (the per-segment directory
// skip does the work multicore does for dense RAM columns).
func (ts *TieredStore) CountPairsGood(pairs []snapstore.Pair, out []int, workers int) {
	if len(out) < len(pairs) {
		panic(fmt.Sprintf("segstore: CountPairsGood out has %d slots for %d pairs", len(out), len(pairs)))
	}
	_ = workers
	for i, p := range pairs {
		ts.checkSeries(p.A)
		ts.checkSeries(p.B)
		out[i] = 0
	}
	from, to := ts.window()
	for _, seg := range ts.windowSealed() {
		lo, hi := overlap(seg, from, to)
		if lo >= hi {
			continue
		}
		for i, p := range pairs {
			out[i] += seg.pairCount(p.A, p.B, lo, hi)
		}
	}
	if lo, hi, ok := ts.activeOverlap(); ok {
		for i, p := range pairs {
			out[i] += ts.active.pairCount(p.A, p.B, lo, hi)
		}
	}
	for i := range pairs {
		out[i] = ts.retained - out[i]
	}
}

// Bit reports whether series i was congested in window snapshot t.
func (ts *TieredStore) Bit(i, t int) bool {
	ts.checkSeries(i)
	if t < 0 || t >= ts.retained {
		return false
	}
	from, _ := ts.window()
	abs := from + t
	if k := abs / ts.segRows; k < len(ts.sealed) {
		return ts.sealed[k].bit(i, abs-ts.sealed[k].base)
	}
	return ts.active.bit(i, abs-ts.active.base)
}

// RowInto materializes window snapshot t as a set of congested series into
// dst (cleared first); t = 0 is the oldest retained snapshot.
func (ts *TieredStore) RowInto(t int, dst *bitset.Set) {
	dst.Clear()
	if t < 0 || t >= ts.retained {
		panic(fmt.Sprintf("segstore: snapshot %d outside window [0, %d)", t, ts.retained))
	}
	from, _ := ts.window()
	ts.rowInto(from+t, dst)
}

// rowInto materializes absolute row abs into dst (not cleared).
func (ts *TieredStore) rowInto(abs int, dst *bitset.Set) {
	if k := abs / ts.segRows; k < len(ts.sealed) {
		ts.sealed[k].rowInto(abs-ts.sealed[k].base, dst)
		return
	}
	ts.active.rowInto(abs-ts.active.base, dst)
}

func (ts *TieredStore) checkSeries(i int) {
	if i < 0 || i >= ts.series {
		panic(fmt.Sprintf("segstore: series %d out of range (%d series)", i, ts.series))
	}
}

// ReleaseMapped hints the kernel to drop the resident pages of every
// sealed mapping (they fault back in from the page cache on the next
// query) — the RSS pressure valve for replay loops that only revisit old
// segments at checkpoints. Segments a snapshot view currently holds a
// reference to are skipped: madvising pages away under a concurrent count
// sweep is exactly the use-while-released race the reference counts exist
// to prevent, and a view's segments get their turn on the first
// ReleaseMapped after the view closes. Safe to call from any goroutine.
func (ts *TieredStore) ReleaseMapped() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, seg := range ts.sealed {
		if seg.mapped != nil && seg.refs.Load() == 1 {
			releasePages(seg.mapped)
		}
	}
}

// AdviseSequential hints the kernel that the sealed mappings are about to
// be swept front to back (MADV_SEQUENTIAL: doubled readahead, pages dropped
// soon after use) — the replay-side counterpart of ReleaseMapped, for
// checkpointed sweeps over cold history. Heap-fallback segments
// (mapped == nil, the path openSegment takes where mmap is unavailable) are
// untouched: the hint only means anything for a live mapping. Purely
// advisory; unlike ReleaseMapped it does not skip segments held by views,
// because a readahead hint never invalidates resident pages.
func (ts *TieredStore) AdviseSequential() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, seg := range ts.sealed {
		if seg.mapped != nil {
			adviseSequential(seg.mapped)
		}
	}
}

// Close releases the store's reference to every sealed segment; a segment
// is unmapped as soon as the last snapshot view holding it closes (or
// immediately, with no views outstanding). The active buffer is
// deliberately not sealed — only full segments ever reach disk, which keeps
// the format fixed-size and recovery trivial; rows still in the buffer at
// Close are gone, exactly as a RAM ring's rows are. Close is idempotent,
// and no methods may be called after it.
func (ts *TieredStore) Close() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.closed {
		return
	}
	ts.closed = true
	for _, seg := range ts.sealed {
		seg.release()
	}
	ts.sealed = nil
	ts.backing = nil
	ts.active.data = nil
}

// Reader is the recovery-side view of a segment directory: the manifest's
// sealed segments, checksum-verified, addressed by absolute row.
type Reader struct {
	series  int
	segRows int
	segs    []*segment
}

// OpenReader opens the sealed segments a manifest names, verifying each
// file's checksums and its manifest CRC. Files the manifest does not name
// (a crash's half-written temp files, a superseded seal) are ignored —
// the manifest is the single source of truth.
func OpenReader(dir string) (*Reader, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("segstore: %v", err)
	}
	man, err := parseManifest(raw)
	if err != nil {
		return nil, err
	}
	r := &Reader{series: man.Series, segRows: man.SegmentRows}
	for i, ent := range man.Segments {
		seg, err := openSegment(filepath.Join(dir, ent.File))
		if err != nil {
			r.Close()
			return nil, err
		}
		if seg.crc != ent.CRC {
			r.Close()
			seg.release()
			return nil, fmt.Errorf("segstore: %s: data CRC %08x, manifest says %08x", ent.File, seg.crc, ent.CRC)
		}
		if len(seg.meta) != man.Series || seg.rows != man.SegmentRows || seg.base != i*man.SegmentRows {
			r.Close()
			seg.release()
			return nil, fmt.Errorf("segstore: %s: header (series %d, rows %d, base %d) disagrees with manifest (series %d, rows %d, base %d)",
				ent.File, len(seg.meta), seg.rows, seg.base, man.Series, man.SegmentRows, i*man.SegmentRows)
		}
		r.segs = append(r.segs, seg)
	}
	return r, nil
}

// NumSeries returns the number of columns.
func (r *Reader) NumSeries() int { return r.series }

// SegmentRows returns the rows per segment.
func (r *Reader) SegmentRows() int { return r.segRows }

// Segments returns the number of sealed segments.
func (r *Reader) Segments() int { return len(r.segs) }

// Rows returns the total sealed rows.
func (r *Reader) Rows() int { return len(r.segs) * r.segRows }

// Bit reports whether series i was congested in absolute row t.
func (r *Reader) Bit(i, t int) bool {
	if t < 0 || t >= r.Rows() || i < 0 || i >= r.series {
		return false
	}
	return r.segs[t/r.segRows].bit(i, t%r.segRows)
}

// RowInto materializes absolute row t into dst (cleared first).
func (r *Reader) RowInto(t int, dst *bitset.Set) {
	dst.Clear()
	if t < 0 || t >= r.Rows() {
		return
	}
	r.segs[t/r.segRows].rowInto(t%r.segRows, dst)
}

// CongestedCount returns how many sealed rows have series i congested.
func (r *Reader) CongestedCount(i int) int {
	n := 0
	for _, seg := range r.segs {
		n += seg.meta[i].pop
	}
	return n
}

// Close unmaps every segment. Idempotent.
func (r *Reader) Close() {
	for _, seg := range r.segs {
		seg.release()
	}
	r.segs = nil
}
