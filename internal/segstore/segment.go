package segstore

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/bitset"
)

// colMeta describes one column of a segment: the word span [lo, hi) that
// holds its set bits, where that span starts in the segment's data area,
// and the column's popcount. A column with pop == 0 stores no words at all
// (lo == hi) — the zero-span compression that makes cold all-good columns
// free to store and free to skip.
type colMeta struct {
	lo, hi int // word span [lo, hi) of the full column that is materialized
	off    int // index of word lo in segment.data
	pop    int // set bits in the whole column
}

// segment is one fixed-size block of rows, either sealed (data aliases a
// mapped or heap-read file image; meta is immutable) or the tiered store's
// active write buffer (data is heap words, every span dense over
// [0, words), pops maintained incrementally by Append). The count kernels
// below serve both.
type segment struct {
	base   int // absolute index of row 0
	rows   int
	words  int // rows / 64
	meta   []colMeta
	data   []uint64
	mapped []byte // non-nil when data aliases an mmap'ed file image
	path   string
	crc    uint32 // data CRC of the sealed file (0 for the active buffer)

	// refs counts owners of the mapping: 1 for the store (or Reader) that
	// opened the segment, plus one per snapshot view holding it. The last
	// release unmaps, so a view reader can never fault on a page its owner
	// tore down — the lifetime half of the ReleaseMapped/Close-under-reader
	// fix. Zero for the active write buffer, which is never shared.
	refs atomic.Int32
}

// retain acquires one more reference to a sealed segment's mapping. It
// fails once the last reference is gone (the mapping is already torn down);
// callers that hold a live reference — the owning store, under its mutex —
// may rely on success.
func (s *segment) retain() bool {
	for {
		r := s.refs.Load()
		if r <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// release drops one reference; the reference that hits zero unmaps the
// segment. Callers must hold a reference (from openSegment or retain) and
// must not touch the segment after releasing it.
func (s *segment) release() {
	if s.refs.Add(-1) != 0 {
		return
	}
	if s.mapped != nil {
		munmap(s.mapped)
		s.mapped = nil
	}
	s.data = nil
}

// span returns the materialized words [lo, hi) of column m; callers must
// keep lo ≥ m.lo and hi ≤ m.hi.
func (s *segment) span(m *colMeta, lo, hi int) []uint64 {
	return s.data[m.off+(lo-m.lo) : m.off+(hi-m.lo)]
}

// word returns word w of column m, materialized or not.
func (s *segment) word(m *colMeta, w int) uint64 {
	if w < m.lo || w >= m.hi {
		return 0
	}
	return s.data[m.off+w-m.lo]
}

// rangeMasks resolves a row range [fromRow, toRow) to the word index of its
// first and last partial word plus the masks that trim them. Either mask is
// all-ones when the boundary is word-aligned; tailW is -1 then so it never
// matches.
func rangeMasks(fromRow, toRow int) (headW int, headMask uint64, tailW int, tailMask uint64) {
	headW = fromRow / wordBits
	headMask = ^uint64(0) << uint(fromRow%wordBits)
	tailW, tailMask = -1, ^uint64(0)
	if r := toRow % wordBits; r != 0 {
		tailW = toRow / wordBits
		tailMask = ^uint64(0) >> uint(wordBits-r)
	}
	return
}

// seriesCount returns the set bits of column i within rows [fromRow, toRow).
func (s *segment) seriesCount(i, fromRow, toRow int) int {
	m := &s.meta[i]
	if m.pop == 0 || fromRow >= toRow {
		return 0
	}
	if fromRow == 0 && toRow == s.rows {
		return m.pop
	}
	wLo, wHi := fromRow/wordBits, (toRow+wordBits-1)/wordBits
	if wLo < m.lo {
		wLo = m.lo
	}
	if wHi > m.hi {
		wHi = m.hi
	}
	headW, headMask, tailW, tailMask := rangeMasks(fromRow, toRow)
	n := 0
	for w := wLo; w < wHi; w++ {
		v := s.data[m.off+w-m.lo]
		if w == headW {
			v &= headMask
		}
		if w == tailW {
			v &= tailMask
		}
		n += bits.OnesCount64(v)
	}
	return n
}

// pairCount returns the rows in [fromRow, toRow) where column a OR column b
// has a set bit. The full-segment call is the hot shape (every window
// boundary except the oldest segment's is segment-aligned): it runs span
// algebra on the directory — disjoint spans sum their popcounts without
// touching a word, overlapping spans pay one fused OR+POPCNT sweep over the
// overlap plus plain popcounts of the exclusive leads/tails.
func (s *segment) pairCount(a, b, fromRow, toRow int) int {
	if fromRow >= toRow {
		return 0
	}
	am, bm := &s.meta[a], &s.meta[b]
	if am.pop == 0 {
		return s.seriesCount(b, fromRow, toRow)
	}
	if bm.pop == 0 {
		return s.seriesCount(a, fromRow, toRow)
	}
	if fromRow == 0 && toRow == s.rows {
		if am.hi <= bm.lo || bm.hi <= am.lo {
			return am.pop + bm.pop
		}
		iLo, iHi := am.lo, am.hi
		if bm.lo > iLo {
			iLo = bm.lo
		}
		if bm.hi < iHi {
			iHi = bm.hi
		}
		n := bitset.OrPopCountWords(s.span(am, iLo, iHi), s.span(bm, iLo, iHi))
		if am.lo < iLo {
			n += bitset.PopCountWords(s.span(am, am.lo, iLo))
		}
		if bm.lo < iLo {
			n += bitset.PopCountWords(s.span(bm, bm.lo, iLo))
		}
		if am.hi > iHi {
			n += bitset.PopCountWords(s.span(am, iHi, am.hi))
		}
		if bm.hi > iHi {
			n += bitset.PopCountWords(s.span(bm, iHi, bm.hi))
		}
		return n
	}
	// Boundary range: masked word loop over the union of the two spans
	// clipped to the row range.
	wLo, wHi := fromRow/wordBits, (toRow+wordBits-1)/wordBits
	uLo, uHi := am.lo, am.hi
	if bm.lo < uLo {
		uLo = bm.lo
	}
	if bm.hi > uHi {
		uHi = bm.hi
	}
	if wLo < uLo {
		wLo = uLo
	}
	if wHi > uHi {
		wHi = uHi
	}
	headW, headMask, tailW, tailMask := rangeMasks(fromRow, toRow)
	n := 0
	for w := wLo; w < wHi; w++ {
		v := s.word(am, w) | s.word(bm, w)
		if w == headW {
			v &= headMask
		}
		if w == tailW {
			v &= tailMask
		}
		n += bits.OnesCount64(v)
	}
	return n
}

// anyCount returns the rows in [fromRow, toRow) where at least one of the
// given columns has a set bit — the OR-reduction kernel behind
// CountAllGood. Columns with pop == 0 cost one branch per word.
func (s *segment) anyCount(series []int, fromRow, toRow int) int {
	if fromRow >= toRow || len(series) == 0 {
		return 0
	}
	if len(series) == 1 {
		return s.seriesCount(series[0], fromRow, toRow)
	}
	wLo, wHi := fromRow/wordBits, (toRow+wordBits-1)/wordBits
	uLo, uHi := s.words, 0
	for _, i := range series {
		m := &s.meta[i]
		if m.pop == 0 {
			continue
		}
		if m.lo < uLo {
			uLo = m.lo
		}
		if m.hi > uHi {
			uHi = m.hi
		}
	}
	if wLo < uLo {
		wLo = uLo
	}
	if wHi > uHi {
		wHi = uHi
	}
	headW, headMask, tailW, tailMask := rangeMasks(fromRow, toRow)
	n := 0
	for w := wLo; w < wHi; w++ {
		var v uint64
		for _, i := range series {
			m := &s.meta[i]
			if m.pop != 0 && w >= m.lo && w < m.hi {
				v |= s.data[m.off+w-m.lo]
			}
		}
		if w == headW {
			v &= headMask
		}
		if w == tailW {
			v &= tailMask
		}
		n += bits.OnesCount64(v)
	}
	return n
}

// bit reports whether column i has row r set.
func (s *segment) bit(i, r int) bool {
	m := &s.meta[i]
	w := r / wordBits
	if m.pop == 0 || w < m.lo || w >= m.hi {
		return false
	}
	return s.data[m.off+w-m.lo]&(1<<uint(r%wordBits)) != 0
}

// rowInto adds every column with row r set to dst (which the caller has
// cleared).
func (s *segment) rowInto(r int, dst *bitset.Set) {
	w := r / wordBits
	mask := uint64(1) << uint(r%wordBits)
	for i := range s.meta {
		m := &s.meta[i]
		if m.pop != 0 && w >= m.lo && w < m.hi && s.data[m.off+w-m.lo]&mask != 0 {
			dst.Add(i)
		}
	}
}
