//go:build !unix

package segstore

import (
	"errors"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func munmap(b []byte) error { return nil }
