package segstore

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bitset"
	"repro/internal/snapstore"
)

// fillRow derives a deterministic sparse congestion row from a lifetime
// index: roughly density of the series congested, pattern varying with t.
func fillRow(dst *bitset.Set, series, t, density int) {
	dst.Clear()
	for i := 0; i < series; i++ {
		if (t*31+i*17+t*i)%density == 0 {
			dst.Add(i)
		}
	}
}

func testPairs(series int) []snapstore.Pair {
	var pairs []snapstore.Pair
	for i := 0; i < series; i++ {
		for d := 1; d <= 3 && i+d < series; d++ {
			pairs = append(pairs, snapstore.Pair{A: i, B: i + d})
		}
	}
	return pairs
}

// TestTieredMatchesRing drives a tiered store and a RAM ring through the
// same append/evict/drop sequence and requires every count kernel to agree
// exactly at every step — across segment seals, the ring's wraparound, and
// windows whose head sits mid-segment. This is the subsystem's core
// contract: disk is an implementation detail the counts cannot see.
func TestTieredMatchesRing(t *testing.T) {
	const (
		series   = 70 // straddles a word boundary
		segRows  = 128
		capacity = 300 // not a multiple of segRows: head usually mid-segment
		steps    = 1000
	)
	dir := t.TempDir()
	ts, err := NewTiered(series, capacity, Options{Dir: dir, SegmentRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	ring := snapstore.NewRing(series, capacity)

	row := bitset.New(series)
	evT, evR := bitset.New(series), bitset.New(series)
	pairs := testPairs(series)
	outT, outR := make([]int, len(pairs)), make([]int, len(pairs))
	scratch := make([]uint64, ring.Words())
	all := make([]int, series)
	for i := range all {
		all[i] = i
	}

	check := func(step int) {
		t.Helper()
		if ts.Snapshots() != ring.Snapshots() || ts.Appended() != ring.Appended() {
			t.Fatalf("step %d: tiered %d/%d snapshots, ring %d/%d",
				step, ts.Snapshots(), ts.Appended(), ring.Snapshots(), ring.Appended())
		}
		for i := 0; i < series; i++ {
			if g, w := ts.CongestedCount(i), ring.CongestedCount(i); g != w {
				t.Fatalf("step %d: series %d congested count %d, ring %d", step, i, g, w)
			}
		}
		ts.CountPairsGood(pairs, outT, 1)
		ring.CountPairsGood(pairs, outR)
		for i := range pairs {
			if outT[i] != outR[i] {
				t.Fatalf("step %d: pair %v good count %d, ring %d", step, pairs[i], outT[i], outR[i])
			}
		}
		for i := 0; i+2 < series; i += 7 {
			sub := all[i : i+3]
			if g, w := ts.CountAllGood(sub), ring.CountAllGood(sub, scratch); g != w {
				t.Fatalf("step %d: all-good %v count %d, ring %d", step, sub, g, w)
			}
			want := ring.Snapshots() - ring.CountAnyCongested([]int{i, i + 2}, scratch)
			if g := ts.CountPairGood(i, i+2); g != want {
				t.Fatalf("step %d: pair-good (%d,%d) count %d, ring %d", step, i, i+2, g, want)
			}
		}
		if g, w := ts.CountAllGood(nil), ring.CountAllGood(nil, scratch); g != w {
			t.Fatalf("step %d: empty all-good %d, ring %d", step, g, w)
		}
	}

	for step := 0; step < steps; step++ {
		switch {
		case step%97 == 96:
			dT := ts.DropOldest(step % 37)
			dR := ring.DropOldest(step % 37)
			if dT != dR {
				t.Fatalf("step %d: DropOldest dropped %d, ring %d", step, dT, dR)
			}
		case step%23 == 22:
			okT := ts.EvictOldest(evT)
			okR := ring.EvictOldest(evR)
			if okT != okR || !evT.Equal(evR) {
				t.Fatalf("step %d: EvictOldest (%v, %v) vs ring (%v, %v)", step, okT, evT, okR, evR)
			}
		default:
			fillRow(row, series, step, 5+step%11)
			okT := ts.AppendEvict(row, evT)
			okR := ring.AppendEvict(row, evR)
			if okT != okR || !evT.Equal(evR) {
				t.Fatalf("step %d: AppendEvict (%v, %v) vs ring (%v, %v)", step, okT, evT, okR, evR)
			}
		}
		if step%13 == 0 || step == steps-1 {
			check(step)
		}
		if step%101 == 0 {
			// Window rows must come back identically, oldest first.
			for w := 0; w < ts.Snapshots(); w += 29 {
				ts.RowInto(w, evT)
				ring.RowInto(w, evR)
				if !evT.Equal(evR) {
					t.Fatalf("step %d: window row %d %v, ring %v", step, w, evT, evR)
				}
			}
		}
	}
	if ts.SealedSegments() == 0 {
		t.Fatal("no segments sealed — the run never spilled")
	}
	check(steps)
	ts.ReleaseMapped() // pages fault back in; counts must be unchanged
	check(steps + 1)
}

// TestTieredBitAndRows pins the row-addressing paths (Bit, RowInto) across
// the sealed/active boundary.
func TestTieredBitAndRows(t *testing.T) {
	const series, segRows, capacity = 10, 64, 200
	ts, err := NewTiered(series, capacity, Options{Dir: t.TempDir(), SegmentRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	ring := snapstore.NewRing(series, capacity)
	row := bitset.New(series)
	for step := 0; step < 170; step++ {
		fillRow(row, series, step, 3)
		ts.AppendEvict(row, nil)
		ring.AppendEvict(row, nil)
	}
	for w := 0; w < ring.Snapshots(); w++ {
		for i := 0; i < series; i++ {
			if g, want := ts.Bit(i, w), ring.Bit(i, w); g != want {
				t.Fatalf("Bit(%d, %d) = %v, ring %v", i, w, g, want)
			}
		}
	}
	if ts.Bit(0, -1) || ts.Bit(0, ring.Snapshots()) {
		t.Fatal("out-of-window Bit must be false")
	}
}

// TestTieredRecovery seals segments, closes the store, and reopens the
// directory with OpenReader: every sealed row must read back exactly, and
// stray temp files must be ignored.
func TestTieredRecovery(t *testing.T) {
	const series, segRows, capacity, steps = 33, 64, 128, 400
	dir := t.TempDir()
	ts, err := NewTiered(series, capacity, Options{Dir: dir, SegmentRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	var history []*bitset.Set
	row := bitset.New(series)
	for step := 0; step < steps; step++ {
		fillRow(row, series, step, 4+step%7)
		ts.AppendEvict(row, nil)
		history = append(history, row.Clone())
	}
	sealed := ts.SealedSegments()
	if sealed != steps/segRows {
		t.Fatalf("%d segments sealed, want %d", sealed, steps/segRows)
	}
	if ts.SpilledBytes() <= 0 {
		t.Fatal("no bytes spilled")
	}
	ts.Close()

	// A crash can leave temp files behind; recovery must not trip on them.
	if err := os.WriteFile(filepath.Join(dir, "seg-junk.seg.tmp-1"), []byte("torn"), 0o666); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Segments() != sealed || r.Rows() != sealed*segRows || r.NumSeries() != series {
		t.Fatalf("reader: %d segments × %d rows over %d series, want %d × %d over %d",
			r.Segments(), r.SegmentRows(), r.NumSeries(), sealed, segRows, series)
	}
	got := bitset.New(series)
	for abs := 0; abs < r.Rows(); abs++ {
		r.RowInto(abs, got)
		if !got.Equal(history[abs]) {
			t.Fatalf("sealed row %d reads back %v, want %v", abs, got, history[abs])
		}
	}
	for i := 0; i < series; i++ {
		want := 0
		for abs := 0; abs < r.Rows(); abs++ {
			if history[abs].Contains(i) {
				want++
			}
		}
		if g := r.CongestedCount(i); g != want {
			t.Fatalf("series %d sealed count %d, want %d", i, g, want)
		}
	}
}

// TestTieredCorruptionDetected flips one data byte of a sealed segment and
// requires OpenReader to reject the store with a segstore: CRC error.
func TestTieredCorruptionDetected(t *testing.T) {
	const series, segRows = 8, 64
	dir := t.TempDir()
	ts, err := NewTiered(series, 1000, Options{Dir: dir, SegmentRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	row := bitset.New(series)
	for step := 0; step < segRows; step++ {
		fillRow(row, series, step, 3)
		ts.AppendEvict(row, nil)
	}
	ts.Close()
	path := filepath.Join(dir, "seg-00000000.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x10
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(dir); err == nil {
		t.Fatal("OpenReader accepted a segment with a flipped data byte")
	} else if want := "segstore:"; len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
		t.Fatalf("error %q lacks the segstore: prefix", err)
	}
}

// TestTieredResetAndRefusal pins the directory-reuse contract: a second
// NewTiered without Reset refuses, with Reset it starts clean.
func TestTieredResetAndRefusal(t *testing.T) {
	const series, segRows = 4, 64
	dir := t.TempDir()
	ts, err := NewTiered(series, 500, Options{Dir: dir, SegmentRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	row := bitset.New(series)
	for step := 0; step < 2*segRows; step++ {
		fillRow(row, series, step, 2)
		ts.AppendEvict(row, nil)
	}
	ts.Close()
	if _, err := NewTiered(series, 500, Options{Dir: dir, SegmentRows: segRows}); err == nil {
		t.Fatal("NewTiered reused a populated directory without Reset")
	}
	ts2, err := NewTiered(series, 500, Options{Dir: dir, SegmentRows: segRows, Reset: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ts2.Close()
	if ts2.Appended() != 0 || ts2.SealedSegments() != 0 {
		t.Fatalf("reset store starts with %d appended, %d sealed", ts2.Appended(), ts2.SealedSegments())
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Segments() != 0 {
		t.Fatalf("reset directory still lists %d segments", r.Segments())
	}
}

// TestSegmentRoundTrip pins encode → parse as an exact inverse on a
// hand-built buffer exercising zero columns, dense columns, and interior
// spans.
func TestSegmentRoundTrip(t *testing.T) {
	const series, segRows = 5, 192
	words := segRows / wordBits
	s := &segment{
		base:  segRows * 3,
		rows:  segRows,
		words: words,
		meta:  make([]colMeta, series),
		data:  make([]uint64, series*words),
	}
	for i := range s.meta {
		s.meta[i] = colMeta{lo: 0, hi: words, off: i * words}
	}
	set := func(i, r int) {
		s.data[s.meta[i].off+r/wordBits] |= 1 << uint(r%wordBits)
		s.meta[i].pop++
	}
	// col 0: empty. col 1: one bit mid-segment. col 2: dense.
	// col 3: first row only. col 4: last row only.
	set(1, 100)
	for r := 0; r < segRows; r += 2 {
		set(2, r)
	}
	set(3, 0)
	set(4, segRows-1)

	buf := encodeSegment(s)
	got, err := parseSegment(buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got.base != s.base || got.rows != s.rows || got.words != s.words {
		t.Fatalf("header (%d, %d, %d), want (%d, %d, %d)", got.base, got.rows, got.words, s.base, s.rows, s.words)
	}
	if m := got.meta[0]; m.lo != 0 || m.hi != 0 || m.pop != 0 {
		t.Fatalf("empty column kept span [%d, %d) pop %d", m.lo, m.hi, m.pop)
	}
	if m := got.meta[1]; m.hi-m.lo != 1 {
		t.Fatalf("single-bit column kept %d words, want 1", m.hi-m.lo)
	}
	for i := 0; i < series; i++ {
		for r := 0; r < segRows; r++ {
			if g, w := got.bit(i, r), s.bit(i, r); g != w {
				t.Fatalf("col %d row %d: %v, want %v", i, r, g, w)
			}
		}
		if g, w := got.seriesCount(i, 0, segRows), s.meta[i].pop; g != w {
			t.Fatalf("col %d count %d, want %d", i, g, w)
		}
	}
	// Masked subrange counts agree with a naive bit loop.
	for _, rg := range [][2]int{{0, 1}, {63, 65}, {100, 101}, {5, 187}, {64, 128}} {
		for i := 0; i < series; i++ {
			want := 0
			for r := rg[0]; r < rg[1]; r++ {
				if s.bit(i, r) {
					want++
				}
			}
			if g := got.seriesCount(i, rg[0], rg[1]); g != want {
				t.Fatalf("col %d range %v count %d, want %d", i, rg, g, want)
			}
		}
		for a := 0; a < series; a++ {
			for b := 0; b < series; b++ {
				want := 0
				for r := rg[0]; r < rg[1]; r++ {
					if s.bit(a, r) || s.bit(b, r) {
						want++
					}
				}
				if g := got.pairCount(a, b, rg[0], rg[1]); g != want {
					t.Fatalf("pair (%d,%d) range %v count %d, want %d", a, b, rg, g, want)
				}
			}
		}
	}
}
