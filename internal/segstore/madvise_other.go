//go:build !linux

package segstore

func releasePages(b []byte) {}

func adviseSequential(b []byte) {}
