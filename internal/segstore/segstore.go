// Package segstore is the out-of-core tier of the columnar measurement
// store: append-only snapshot columns sealed into fixed-size on-disk
// segments that the count kernels read back through mmap, zero copy.
//
// A segment holds SegmentRows consecutive snapshots in exactly the
// path-major packed-uint64 word layout of internal/snapstore — bit t%64 of
// word t/64 of column i says "series i was congested in row t" — so the
// fused OR/AND-NOT+POPCNT kernels run unchanged over mapped file pages.
// Columns are span-compressed: only the word range [lo, hi) that contains
// set bits is stored, so a cold all-good column costs 12 bytes of directory
// and nothing else, and the per-column popcount in the directory lets the
// kernels skip it without touching a page (the on-disk analogue of the
// CountWorkspace block-summary skip).
//
// On-disk layout of one segment file (all fields little-endian):
//
//	offset  size  field
//	     0     8  magic "TOMOSEG1"
//	     8     4  format version (1)
//	    12     4  series (columns)
//	    16     4  rows (snapshots; multiple of 64)
//	    20     4  words per full column (= rows/64)
//	    24     8  base — absolute index of row 0
//	    32     8  dataWords — Σ per-column span lengths
//	    40     4  CRC-32C of everything after the header
//	    44     4  CRC-32C of header bytes [0, 44)
//	    48   12·series  directory: {loWord u32, hiWord u32, popcount u32}
//	     …     …  zero padding to 8-byte alignment
//	     …  8·dataWords  column spans, concatenated in series order
//
// Span word offsets are implicit (the prefix sum of span lengths), so the
// directory stays fixed-width and the whole data area is one contiguous
// run — mappable and checksummable in one pass.
//
// A store directory holds numbered segment files plus MANIFEST.json naming
// the sealed segments and their data checksums. Both segment files and the
// manifest are written with the temp-file + fsync + rename + directory-fsync
// protocol, so a crash mid-seal leaves either the old manifest (the
// half-written segment is garbage to be ignored) or the new one (the
// segment is complete and checksummed) — never a torn store. Recovery is
// therefore just OpenReader: read the manifest, open what it names, verify
// checksums, ignore everything else.
//
// All errors returned by the decoding paths are prefixed "segstore:"; a
// corrupt or truncated file must never panic (FuzzSegmentDecode pins this).
package segstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"unsafe"

	"repro/internal/bitset"
)

const (
	segMagic      = "TOMOSEG1"
	formatVersion = 1
	headerSize    = 48
	dirEntrySize  = 12
	wordBits      = 64

	// ManifestName is the per-directory index of sealed segments.
	ManifestName = "MANIFEST.json"

	// DefaultSegmentRows is the seal granularity when Options leaves it
	// zero: 8192 rows = 128 words = 1 KiB per dense column, two cache
	// blocks of the RAM kernels.
	DefaultSegmentRows = 8192

	// maxSeries and maxSegmentRows bound what a decoder will accept, so a
	// hostile header cannot make it allocate absurd amounts of memory.
	maxSeries      = 1 << 22
	maxSegmentRows = 1 << 26
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// hostLittle reports whether the host stores uint64s little-endian, i.e.
// whether mapped file bytes can be viewed as []uint64 without decoding.
var hostLittle = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func align8(x int) int { return (x + 7) &^ 7 }

// Options configures a TieredStore's spill directory.
type Options struct {
	// Dir is the directory segments and the manifest are written to. It is
	// created if missing. Required.
	Dir string
	// SegmentRows is the seal granularity in snapshots; it must be a
	// multiple of 64. 0 means DefaultSegmentRows.
	SegmentRows int
	// Reset discards any segment store already present in Dir. Without it,
	// NewTiered refuses to write into a directory that holds a manifest
	// (use OpenReader to inspect one).
	Reset bool
}

// manifest is the JSON index of a segment directory.
type manifest struct {
	Version     int               `json:"version"`
	Series      int               `json:"series"`
	SegmentRows int               `json:"segment_rows"`
	Segments    []manifestSegment `json:"segments"`
}

type manifestSegment struct {
	File string `json:"file"`
	Base uint64 `json:"base"`
	// CRC is the segment file's data checksum (header field at offset 40),
	// tying the manifest entry to the exact sealed content.
	CRC uint32 `json:"crc"`
}

// parseManifest decodes and validates MANIFEST.json bytes.
func parseManifest(data []byte) (*manifest, error) {
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("segstore: manifest: %v", err)
	}
	if m.Version != formatVersion {
		return nil, fmt.Errorf("segstore: manifest version %d, want %d", m.Version, formatVersion)
	}
	if m.Series < 0 || m.Series > maxSeries {
		return nil, fmt.Errorf("segstore: manifest series %d outside [0, %d]", m.Series, maxSeries)
	}
	if m.SegmentRows < wordBits || m.SegmentRows > maxSegmentRows || m.SegmentRows%wordBits != 0 {
		return nil, fmt.Errorf("segstore: manifest segment_rows %d, want a multiple of %d in [%d, %d]",
			m.SegmentRows, wordBits, wordBits, maxSegmentRows)
	}
	for i, seg := range m.Segments {
		if seg.File == "" || seg.File != filepath.Base(seg.File) || strings.ContainsAny(seg.File, `/\`) {
			return nil, fmt.Errorf("segstore: manifest segment %d: file %q is not a plain name", i, seg.File)
		}
		// Sealed segments tile the timeline: segment i covers rows
		// [i·segRows, (i+1)·segRows).
		if want := uint64(i) * uint64(m.SegmentRows); seg.Base != want {
			return nil, fmt.Errorf("segstore: manifest segment %d: base %d, want %d", i, seg.Base, want)
		}
	}
	return &m, nil
}

func encodeManifest(m *manifest) []byte {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		// A manifest is plain data; Marshal cannot fail on it.
		panic("segstore: manifest encode: " + err.Error())
	}
	return append(b, '\n')
}

// encodeSegment serializes a full-span segment (the active write buffer:
// every column dense over [0, words)) into the on-disk format, trimming
// each column to its non-zero word span.
func encodeSegment(s *segment) []byte {
	words := s.words
	dataWords := 0
	spans := make([]colMeta, len(s.meta))
	for i := range s.meta {
		m := &s.meta[i]
		lo, hi := 0, 0
		if m.pop != 0 {
			col := s.data[m.off : m.off+words]
			for col[lo] == 0 {
				lo++
			}
			hi = words
			for col[hi-1] == 0 {
				hi--
			}
		}
		spans[i] = colMeta{lo: lo, hi: hi, pop: m.pop}
		dataWords += hi - lo
	}
	dirEnd := headerSize + len(s.meta)*dirEntrySize
	dataOff := align8(dirEnd)
	buf := make([]byte, dataOff+8*dataWords)
	le := binary.LittleEndian
	copy(buf, segMagic)
	le.PutUint32(buf[8:], formatVersion)
	le.PutUint32(buf[12:], uint32(len(s.meta)))
	le.PutUint32(buf[16:], uint32(s.rows))
	le.PutUint32(buf[20:], uint32(words))
	le.PutUint64(buf[24:], uint64(s.base))
	le.PutUint64(buf[32:], uint64(dataWords))
	off := dataOff
	for i := range spans {
		sp := &spans[i]
		e := buf[headerSize+i*dirEntrySize:]
		le.PutUint32(e, uint32(sp.lo))
		le.PutUint32(e[4:], uint32(sp.hi))
		le.PutUint32(e[8:], uint32(sp.pop))
		col := s.data[s.meta[i].off:]
		for w := sp.lo; w < sp.hi; w++ {
			le.PutUint64(buf[off:], col[w])
			off += 8
		}
	}
	le.PutUint32(buf[40:], crc32.Checksum(buf[headerSize:], crcTable))
	le.PutUint32(buf[44:], crc32.Checksum(buf[:44], crcTable))
	return buf
}

// parseSegment validates a segment file image and returns a queryable
// segment over it. On little-endian hosts with an 8-byte-aligned data area
// (every mmap and practically every heap read) the column words alias data
// directly — zero copy; otherwise they are decoded into fresh memory. The
// segment holds a reference to data either way.
func parseSegment(data []byte, path string) (*segment, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("segstore: %s: %d bytes, want at least the %d-byte header", path, len(data), headerSize)
	}
	le := binary.LittleEndian
	if string(data[:8]) != segMagic {
		return nil, fmt.Errorf("segstore: %s: bad magic %q", path, data[:8])
	}
	if v := le.Uint32(data[8:]); v != formatVersion {
		return nil, fmt.Errorf("segstore: %s: format version %d, want %d", path, v, formatVersion)
	}
	if got, want := le.Uint32(data[44:]), crc32.Checksum(data[:44], crcTable); got != want {
		return nil, fmt.Errorf("segstore: %s: header CRC %08x, want %08x", path, got, want)
	}
	series := int(le.Uint32(data[12:]))
	rows := int(le.Uint32(data[16:]))
	words := int(le.Uint32(data[20:]))
	base := le.Uint64(data[24:])
	dataWords64 := le.Uint64(data[32:])
	if series > maxSeries {
		return nil, fmt.Errorf("segstore: %s: %d series exceeds limit %d", path, series, maxSeries)
	}
	if rows < wordBits || rows > maxSegmentRows || rows%wordBits != 0 {
		return nil, fmt.Errorf("segstore: %s: %d rows, want a multiple of %d in [%d, %d]", path, rows, wordBits, wordBits, maxSegmentRows)
	}
	if words != rows/wordBits {
		return nil, fmt.Errorf("segstore: %s: %d words for %d rows, want %d", path, words, rows, rows/wordBits)
	}
	if base%uint64(rows) != 0 || base > 1<<56 {
		return nil, fmt.Errorf("segstore: %s: base %d is not a multiple of %d rows", path, base, rows)
	}
	dirEnd := headerSize + series*dirEntrySize
	dataOff := align8(dirEnd)
	if dataWords64 > uint64(maxSeries)*uint64(maxSegmentRows/wordBits) {
		return nil, fmt.Errorf("segstore: %s: data words %d exceeds limit", path, dataWords64)
	}
	dataWords := int(dataWords64)
	if want := dataOff + 8*dataWords; len(data) != want {
		return nil, fmt.Errorf("segstore: %s: %d bytes, want %d (%d data words)", path, len(data), want, dataWords)
	}
	if got, want := le.Uint32(data[40:]), crc32.Checksum(data[headerSize:], crcTable); got != want {
		return nil, fmt.Errorf("segstore: %s: data CRC %08x, want %08x", path, got, want)
	}
	s := &segment{
		base:  int(base),
		rows:  rows,
		words: words,
		meta:  make([]colMeta, series),
		path:  path,
		crc:   le.Uint32(data[40:]),
	}
	var colWords []uint64
	if dataWords > 0 {
		payload := data[dataOff:]
		if hostLittle && uintptr(unsafe.Pointer(&payload[0]))%8 == 0 {
			colWords = unsafe.Slice((*uint64)(unsafe.Pointer(&payload[0])), dataWords)
		} else {
			colWords = make([]uint64, dataWords)
			for i := range colWords {
				colWords[i] = le.Uint64(payload[8*i:])
			}
		}
	}
	s.data = colWords
	off := 0
	for i := 0; i < series; i++ {
		e := data[headerSize+i*dirEntrySize:]
		lo, hi, pop := int(le.Uint32(e)), int(le.Uint32(e[4:])), int(le.Uint32(e[8:]))
		if lo > hi || hi > words {
			return nil, fmt.Errorf("segstore: %s: column %d span [%d, %d) outside %d words", path, i, lo, hi, words)
		}
		if off+(hi-lo) > dataWords {
			return nil, fmt.Errorf("segstore: %s: column %d span overruns the %d data words", path, i, dataWords)
		}
		if got := bitset.PopCountWords(colWords[off : off+(hi-lo)]); got != pop {
			return nil, fmt.Errorf("segstore: %s: column %d popcount %d, directory says %d", path, i, got, pop)
		}
		s.meta[i] = colMeta{lo: lo, hi: hi, off: off, pop: pop}
		off += hi - lo
	}
	if off != dataWords {
		return nil, fmt.Errorf("segstore: %s: spans cover %d of %d data words", path, off, dataWords)
	}
	return s, nil
}

// atomicWriteFile writes name under dir crash-safely: temp file in the same
// directory, fsync, rename over the target, fsync the directory. Readers
// therefore see either the old file or the complete new one.
func atomicWriteFile(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, filepath.Join(dir, name))
	}
	if err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir flushes the directory entry so a rename survives a crash. On
// platforms where directories cannot be fsynced the error is ignored — the
// rename itself is still atomic there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	d.Sync()
	return d.Close()
}

// MmapAvailable reports whether this platform maps segment files into
// memory (the zero-copy read path). Without it sealed segments are read
// into the heap instead — same results, more copying.
func MmapAvailable() bool { return mmapSupported }
