// Package loss implements the packet-loss model of the paper's simulator
// (Section 5, following Padmanabhan et al. [13]): during each snapshot, a
// good link is assigned a packet-loss rate drawn uniformly from [0, tl] and
// a congested link from (tl, 1]; packets sent along a path are dropped
// independently at each link according to the link's rate; and the path is
// declared congested when its measured loss fraction exceeds the path
// threshold tp = 1 − (1 − tl)^d, where d is the path length (Section 2.1).
package loss

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/topology"
)

// DefaultTl is the link congestion threshold used throughout the paper
// (tl = 0.01, shown in [10] to work well for mesh topologies).
const DefaultTl = 0.01

// DefaultPacketsPerPath is the default number of probe packets sent along
// each path per snapshot in packet-level simulations.
const DefaultPacketsPerPath = 200

// PathThreshold returns tp = 1 − (1 − tl)^d for a path of d links.
func PathThreshold(tl float64, d int) float64 {
	if d < 0 {
		panic(fmt.Sprintf("loss: negative path length %d", d))
	}
	return 1 - math.Pow(1-tl, float64(d))
}

// SampleRates draws per-link loss rates for one snapshot given the set of
// congested links: good links get U[0, tl], congested links U(tl, 1].
func SampleRates(rng *rand.Rand, congested *bitset.Set, numLinks int, tl float64) []float64 {
	rates := make([]float64, numLinks)
	for k := 0; k < numLinks; k++ {
		if congested.Contains(k) {
			rates[k] = tl + (1-tl)*rng.Float64()
			if rates[k] <= tl { // open interval (tl, 1]
				rates[k] = math.Nextafter(tl, 1)
			}
		} else {
			rates[k] = tl * rng.Float64()
		}
	}
	return rates
}

// TransmitPath simulates sending `packets` packets along the path and
// returns the measured end-to-end loss fraction. Each packet is dropped
// independently at each traversed link with the link's loss rate.
func TransmitPath(rng *rand.Rand, rates []float64, links []topology.LinkID, packets int) float64 {
	if packets <= 0 {
		panic(fmt.Sprintf("loss: packets = %d", packets))
	}
	lost := 0
	for p := 0; p < packets; p++ {
		for _, l := range links {
			if rng.Float64() < rates[l] {
				lost++
				break
			}
		}
	}
	return float64(lost) / float64(packets)
}

// PathSurvival returns the exact per-packet survival probability of a path
// given the current link rates: Π (1 − rate_l). Useful for tests comparing
// the sampled loss fraction against its expectation.
func PathSurvival(rates []float64, links []topology.LinkID) float64 {
	p := 1.0
	for _, l := range links {
		p *= 1 - rates[l]
	}
	return p
}

// ClassifyPath applies the path congestion threshold: a path of d links with
// measured loss fraction f is congested when f > PathThreshold(tl, d).
func ClassifyPath(lossFrac, tl float64, d int) bool {
	return lossFrac > PathThreshold(tl, d)
}
