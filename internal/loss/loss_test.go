package loss

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/topology"
)

func TestPathThreshold(t *testing.T) {
	if got := PathThreshold(0.01, 0); got != 0 {
		t.Fatalf("tp(d=0) = %v, want 0", got)
	}
	if got := PathThreshold(0.01, 1); math.Abs(got-0.01) > 1e-15 {
		t.Fatalf("tp(d=1) = %v, want 0.01", got)
	}
	// d=2: 1 - 0.99² = 0.0199
	if got := PathThreshold(0.01, 2); math.Abs(got-0.0199) > 1e-12 {
		t.Fatalf("tp(d=2) = %v, want 0.0199", got)
	}
	// Monotone in d.
	prev := 0.0
	for d := 1; d < 30; d++ {
		cur := PathThreshold(0.01, d)
		if cur <= prev {
			t.Fatalf("tp not increasing at d=%d", d)
		}
		prev = cur
	}
}

func TestPathThresholdPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for d < 0")
		}
	}()
	PathThreshold(0.01, -1)
}

func TestSampleRatesRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	congested := bitset.FromIndices(1, 3)
	const tl = 0.01
	for trial := 0; trial < 1000; trial++ {
		rates := SampleRates(rng, congested, 5, tl)
		for k, r := range rates {
			if congested.Contains(k) {
				if r <= tl || r > 1 {
					t.Fatalf("congested link %d rate %v outside (tl, 1]", k, r)
				}
			} else {
				if r < 0 || r > tl {
					t.Fatalf("good link %d rate %v outside [0, tl]", k, r)
				}
			}
		}
	}
}

func TestTransmitPathMatchesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rates := []float64{0.1, 0.2}
	links := []topology.LinkID{0, 1}
	// Per-packet loss probability = 1 − 0.9·0.8 = 0.28.
	want := 1 - PathSurvival(rates, links)
	frac := TransmitPath(rng, rates, links, 200000)
	if math.Abs(frac-want) > 0.005 {
		t.Fatalf("loss fraction %v, want ≈%v", frac, want)
	}
}

func TestTransmitPathPanicsOnZeroPackets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for packets = 0")
		}
	}()
	TransmitPath(rand.New(rand.NewSource(1)), []float64{0}, []topology.LinkID{0}, 0)
}

func TestClassifyPath(t *testing.T) {
	// d=3 path: tp ≈ 0.0297.
	tp := PathThreshold(0.01, 3)
	if ClassifyPath(tp, 0.01, 3) {
		t.Fatal("loss exactly at threshold must be good (strictly above ⇒ congested)")
	}
	if !ClassifyPath(tp+1e-9, 0.01, 3) {
		t.Fatal("loss above threshold must be congested")
	}
	if ClassifyPath(0, 0.01, 3) {
		t.Fatal("zero loss must be good")
	}
}

// A path through only good links should essentially never be classified as
// congested, and a path with one congested link essentially always should —
// the separability property the [13] loss model was designed to preserve.
func TestSeparabilityOfLossModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const tl = DefaultTl
	const packets = 500
	links := []topology.LinkID{0, 1, 2}

	goodMis, congMis := 0, 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		// All links good.
		rates := SampleRates(rng, bitset.New(3), 3, tl)
		frac := TransmitPath(rng, rates, links, packets)
		if ClassifyPath(frac, tl, 3) {
			goodMis++
		}
		// One congested link.
		rates = SampleRates(rng, bitset.FromIndices(1), 3, tl)
		frac = TransmitPath(rng, rates, links, packets)
		if !ClassifyPath(frac, tl, 3) {
			congMis++
		}
	}
	if f := float64(goodMis) / trials; f > 0.08 {
		t.Fatalf("good paths misclassified congested %.1f%% of the time", 100*f)
	}
	if f := float64(congMis) / trials; f > 0.08 {
		t.Fatalf("congested paths misclassified good %.1f%% of the time", 100*f)
	}
}
