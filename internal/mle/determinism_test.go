package mle

import (
	"reflect"
	"testing"

	"repro/internal/brite"
)

// TestCompileDeterministic pins the bitset-based pair dedup: compiling the
// same topology repeatedly must produce the identical observation list —
// same observations, same order, same pair query set — with no map anywhere
// to perturb it.
func TestCompileDeterministic(t *testing.T) {
	net, err := brite.Generate(brite.Config{ASes: 30, EdgesPerAS: 2, Paths: 120, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Compile(net.Topology)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.pairs) == 0 {
		t.Fatal("fixture produced no pair observations; pick a denser topology")
	}
	for trial := 0; trial < 5; trial++ {
		p, err := Compile(net.Topology)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.observations) != len(ref.observations) {
			t.Fatalf("trial %d: %d observations, want %d", trial, len(p.observations), len(ref.observations))
		}
		for i := range ref.observations {
			if p.observations[i].i != ref.observations[i].i || p.observations[i].j != ref.observations[i].j {
				t.Fatalf("trial %d: observation %d is (%d,%d), want (%d,%d)",
					trial, i, p.observations[i].i, p.observations[i].j, ref.observations[i].i, ref.observations[i].j)
			}
			if !reflect.DeepEqual(p.observations[i].links, ref.observations[i].links) {
				t.Fatalf("trial %d: observation %d link set differs", trial, i)
			}
		}
		if !reflect.DeepEqual(p.pairs, ref.pairs) {
			t.Fatalf("trial %d: pair query set differs", trial)
		}
		if !reflect.DeepEqual(p.pathsOf, ref.pathsOf) || !reflect.DeepEqual(p.linksOf, ref.linksOf) {
			t.Fatalf("trial %d: incidence structure differs", trial)
		}
	}
}

// TestPairObservationOrderMatchesLinkScan pins the documented pair order: a
// pair observation appears at the first link (in link order) both its paths
// traverse, and the pair list mirrors the observation order exactly.
func TestPairObservationOrderMatchesLinkScan(t *testing.T) {
	net, err := brite.Generate(brite.Config{ASes: 20, EdgesPerAS: 2, Paths: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(net.Topology)
	if err != nil {
		t.Fatal(err)
	}
	pi := 0
	for _, o := range p.observations {
		if o.j < 0 {
			continue
		}
		if pi >= len(p.pairs) {
			t.Fatalf("more pair observations than pair queries (%d)", len(p.pairs))
		}
		if got := p.pairs[pi]; got.A != int(o.i) || got.B != int(o.j) {
			t.Fatalf("pair query %d is (%d,%d), want observation order (%d,%d)", pi, got.A, got.B, o.i, o.j)
		}
		pi++
	}
	if pi != len(p.pairs) {
		t.Fatalf("%d pair observations but %d pair queries", pi, len(p.pairs))
	}
}
