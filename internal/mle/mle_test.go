package mle

import (
	"math"
	"testing"

	"repro/internal/bitset"
	"repro/internal/congestion"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/trace"
)

func simulate(t *testing.T, top *topology.Topology, model congestion.Model, n int, seed int64) *measure.Empirical {
	t.Helper()
	rec, err := netsim.Run(netsim.Config{Topology: top, Model: model, Snapshots: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	src, err := measure.NewEmpirical(rec)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestEstimateRecoversIndependentTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("slow convergence test; run without -short")
	}
	top := topology.Figure1A()
	model, err := congestion.NewIndependent([]float64{0.25, 0.15, 0.2, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	src := simulate(t, top, model, 150000, 3)
	res, err := Estimate(top, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := congestion.Marginals(model)
	for k, w := range truth {
		if math.Abs(res.CongestionProb[k]-w) > 0.02 {
			t.Fatalf("link %d: mle %v, truth %v", k, res.CongestionProb[k], w)
		}
	}
	if res.Iters == 0 {
		t.Fatal("optimizer did not iterate")
	}
	for _, x := range res.LogGoodProb {
		if x > 0 {
			t.Fatalf("positive log-probability %v", x)
		}
	}
}

func TestEstimateValidation(t *testing.T) {
	top := topology.Figure1A()
	other := topology.Figure1B()
	model, _ := congestion.NewIndependent([]float64{0.1, 0.1, 0.1})
	src := simulate(t, other, model, 1000, 1)
	if _, err := Estimate(top, src, Options{}); err == nil {
		t.Fatal("path-count mismatch accepted")
	}
}

// Like every independence-based estimator, the MLE is biased when links are
// correlated: on the Figure-1(a) correlated table it must misestimate at
// least one of e1/e2/e3/e4 noticeably, where the correlation algorithm is
// exact.
func TestEstimateBiasedUnderCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow convergence test; run without -short")
	}
	top := topology.Figure1A()
	model, err := congestion.NewTable(4, []congestion.GroupTable{
		{
			Links: []int{0, 1},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: 0.60},
				{Links: bitset.FromIndices(0), P: 0.05},
				{Links: bitset.FromIndices(1), P: 0.05},
				{Links: bitset.FromIndices(0, 1), P: 0.30},
			},
		},
		{Links: []int{2}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.8}, {Links: bitset.FromIndices(2), P: 0.2},
		}},
		{Links: []int{3}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.9}, {Links: bitset.FromIndices(3), P: 0.1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := simulate(t, top, model, 200000, 5)
	res, err := Estimate(top, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := congestion.Marginals(model)
	worst := 0.0
	for k, w := range truth {
		if d := math.Abs(res.CongestionProb[k] - w); d > worst {
			worst = d
		}
	}
	// The composite likelihood sees P(P1 good)·P(P2 good) structure that no
	// independent q can match exactly; the bias must be material.
	if worst < 0.02 {
		t.Fatalf("expected visible bias under correlation, worst error %v", worst)
	}
	// And the correlation algorithm on the same measurements is accurate.
	corr, err := core.Correlation(top, src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	worstCorr := 0.0
	for k, w := range truth {
		if d := math.Abs(corr.CongestionProb[k] - w); d > worstCorr {
			worstCorr = d
		}
	}
	if worstCorr > worst/2 {
		t.Fatalf("correlation algorithm (worst %v) not clearly better than MLE (worst %v)", worstCorr, worst)
	}
}

// On a larger independent scenario, the MLE should be competitive with the
// independence log-linear solver (same assumption, same data).
func TestEstimateCompetitiveWithLinearOnIndependentScenario(t *testing.T) {
	net, err := trace.Discover(trace.Config{
		Elements: 80, HiddenFrac: 0.05, VantagePoints: 14, Paths: 80, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	top := net.Logical
	s, err := scenario.FromTopology(scenario.FromTopologyConfig{
		Topology: top, FracCongested: 0.15, Level: scenario.LooseCorrelation, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := netsim.Run(netsim.Config{Topology: top, Model: s.Model, Snapshots: 4000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	src, err := measure.NewEmpirical(rec)
	if err != nil {
		t.Fatal(err)
	}

	mleRes, err := Estimate(top, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	linRes, err := core.Independence(top, src, core.Options{UseAllEquations: true})
	if err != nil {
		t.Fatal(err)
	}
	mleErr := eval.Mean(eval.AbsErrors(s.Truth, mleRes.CongestionProb, s.PotentiallyCongested))
	linErr := eval.Mean(eval.AbsErrors(s.Truth, linRes.CongestionProb, s.PotentiallyCongested))
	t.Logf("mle mean-err %.4f, linear mean-err %.4f", mleErr, linErr)
	if mleErr > linErr+0.05 {
		t.Fatalf("MLE (%.4f) much worse than the linear solver (%.4f) on its home turf", mleErr, linErr)
	}
}

func TestEstimateMonotoneLikelihood(t *testing.T) {
	// Convergence sanity: running with more iterations never lowers the
	// final likelihood.
	top := topology.Figure1A()
	model, _ := congestion.NewIndependent([]float64{0.3, 0.2, 0.25, 0.15})
	src := simulate(t, top, model, 20000, 7)
	short, err := Estimate(top, src, Options{MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Estimate(top, src, Options{MaxIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	if long.LogLikelihood < short.LogLikelihood-1e-9 {
		t.Fatalf("likelihood decreased with more iterations: %v -> %v",
			short.LogLikelihood, long.LogLikelihood)
	}
}
