// Package mle implements a maximum-likelihood estimator of per-link
// congestion probabilities under the independence assumption — the style of
// inference used by the Boolean-tomography line of work the paper builds on
// (Nguyen & Thiran 2007 [12]; cf. the EM approaches of [17]).
//
// Under Assumption 2 and link independence, a path Pi is good in a snapshot
// with probability g_i = Π_{k∈Pi} q_k, where q_k = P(Xek = 0), and a pair of
// paths is jointly good with probability g_ij = Π_{k∈Pi∪Pj} q_k. Given the
// empirical good-frequencies of paths and of link-sharing path pairs over N
// snapshots, the composite log-likelihood is
//
//	L(q) = Σ_obs [ f·log g + (1 − f)·log(1 − g) ]
//
// which mle maximizes by projected gradient ascent over x_k = log q_k ≤ 0
// with backtracking line search. Pair observations carry the same extra
// identifiability that the paper's Section-4 pair equations provide (single
// paths alone generally underdetermine the links). The estimator complements
// the log-linear solver: identical information set, but observations are
// weighted by their binomial information content instead of all equations
// counting equally. Like every independence-based method, it is consistent
// when links are uncorrelated and biased when they are — the comparison the
// library's tests quantify.
package mle

import (
	"fmt"
	"math"

	"repro/internal/topology"
)

// Source is the measurement interface the estimator consumes: empirical
// good-frequencies of single paths and of path pairs. measure.Empirical
// satisfies it; any source exposing the measure.Source + FastPairSource
// pair does too.
type Source interface {
	// NumPaths returns the number of paths in the underlying experiment.
	NumPaths() int
	// ProbPathGood returns the empirical P(path i good).
	ProbPathGood(i topology.PathID) float64
	// ProbPairGood returns the empirical P(paths i and j both good).
	ProbPairGood(i, j topology.PathID) float64
}

// Options tunes the optimizer.
type Options struct {
	// MaxIters bounds the gradient-ascent iterations (default 500).
	MaxIters int
	// Tol is the convergence threshold on the relative likelihood
	// improvement (default 1e-10).
	Tol float64
	// InitialProb is the starting per-link congestion probability
	// (default 0.05).
	InitialProb float64
}

func (o *Options) fill() {
	if o.MaxIters <= 0 {
		o.MaxIters = 500
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.InitialProb <= 0 || o.InitialProb >= 1 {
		o.InitialProb = 0.05
	}
}

// Result is the estimator output.
type Result struct {
	// CongestionProb[k] is the estimated P(Xek = 1).
	CongestionProb []float64
	// LogGoodProb[k] is the underlying x_k = log P(Xek = 0) ≤ 0.
	LogGoodProb []float64
	// LogLikelihood is the composite log-likelihood at the optimum
	// (per snapshot, i.e. divided by N).
	LogLikelihood float64
	// Iters is the number of gradient steps taken.
	Iters int
}

const (
	gClamp = 1e-9 // keep path-good probabilities inside (0, 1)
)

// obs is one composite-likelihood observation: the link set whose q-product
// predicts the all-good frequency of a single path or a link-sharing path
// pair. Which frequency to query is structural; the frequency itself is
// data and is looked up per Estimate call.
type obs struct {
	links []int
	i, j  topology.PathID // j < 0 for a single-path observation
}

// Plan is the compiled structural phase of the estimator: the observation
// set (every path plus link-sharing pairs, capped at 2·|E|) and the
// observation↔link incidence in both directions. Everything here depends
// only on the topology, so one plan serves any number of Estimate calls;
// it is immutable after Compile returns and safe for concurrent use.
type Plan struct {
	top          *topology.Topology
	observations []obs
	pathsOf      [][]int // link → observation indices
	linksOf      [][]int // observation → link indices
}

// Compile builds the estimator's observation structure for a topology.
func Compile(top *topology.Topology) (*Plan, error) {
	if top == nil {
		return nil, fmt.Errorf("mle: nil topology")
	}
	nl := top.NumLinks()
	np := top.NumPaths()

	// Observations: every path, plus link-sharing path pairs (capped at
	// 2·|E|), each identifying the empirical all-good frequency to query
	// and the link set whose q-product predicts it.
	var observations []obs
	for i := 0; i < np; i++ {
		id := topology.PathID(i)
		observations = append(observations, obs{
			links: top.PathLinkSet(id).Indices(),
			i:     id, j: -1,
		})
	}
	seenPair := map[int64]bool{}
	maxPairs := 2 * nl
	pairCount := 0
pairScan:
	for k := 0; k < nl; k++ {
		through := top.PathsThroughLink(topology.LinkID(k))
		for ai := 0; ai < len(through); ai++ {
			for bi := ai + 1; bi < len(through); bi++ {
				i, j := through[ai], through[bi]
				key := int64(i)*int64(np) + int64(j)
				if seenPair[key] {
					continue
				}
				seenPair[key] = true
				union := top.PathLinkSet(i).Clone()
				union.UnionWith(top.PathLinkSet(j))
				observations = append(observations, obs{
					links: union.Indices(),
					i:     i, j: j,
				})
				pairCount++
				if pairCount >= maxPairs {
					break pairScan
				}
			}
		}
	}

	// Observation-link incidence, both directions.
	pathsOf := make([][]int, nl)
	linksOf := make([][]int, len(observations))
	for oi, o := range observations {
		for _, l := range o.links {
			pathsOf[l] = append(pathsOf[l], oi)
		}
		linksOf[oi] = o.links
	}
	return &Plan{top: top, observations: observations, pathsOf: pathsOf, linksOf: linksOf}, nil
}

// Topology returns the topology the plan was compiled for.
func (p *Plan) Topology() *topology.Topology { return p.top }

// Estimate runs the composite-likelihood MLE on the empirical per-path
// good-frequencies of a measurement source. The one-shot form of
// Compile + Plan.Estimate.
func Estimate(top *topology.Topology, src Source, opts Options) (*Result, error) {
	plan, err := Compile(top)
	if err != nil {
		return nil, err
	}
	return plan.Estimate(src, opts)
}

// Estimate fills the compiled observation structure's frequencies from the
// source and maximizes the composite likelihood. Bit-identical to the
// one-shot Estimate; allocates its own optimizer state, so concurrent calls
// on a shared plan are safe.
func (p *Plan) Estimate(src Source, opts Options) (*Result, error) {
	top := p.top
	if src.NumPaths() != top.NumPaths() {
		return nil, fmt.Errorf("mle: source has %d paths, topology %d", src.NumPaths(), top.NumPaths())
	}
	opts.fill()
	nl := top.NumLinks()

	nObs := len(p.observations)
	f := make([]float64, nObs)
	for oi, o := range p.observations {
		if o.j < 0 {
			f[oi] = src.ProbPathGood(o.i)
		} else {
			f[oi] = src.ProbPairGood(o.i, o.j)
		}
	}
	pathsOf, linksOf := p.pathsOf, p.linksOf

	x := make([]float64, nl) // log q_k ≤ 0
	init := math.Log(1 - opts.InitialProb)
	for k := range x {
		x[k] = init
	}

	logG := func(x []float64, i int) float64 {
		s := 0.0
		for _, k := range linksOf[i] {
			s += x[k]
		}
		return s
	}
	likelihood := func(x []float64) float64 {
		ll := 0.0
		for i := 0; i < nObs; i++ {
			g := math.Exp(logG(x, i))
			if g > 1-gClamp {
				g = 1 - gClamp
			}
			if g < gClamp {
				g = gClamp
			}
			ll += f[i]*math.Log(g) + (1-f[i])*math.Log(1-g)
		}
		return ll
	}

	ll := likelihood(x)
	grad := make([]float64, nl)
	trial := make([]float64, nl)
	iters := 0
	step := 0.1
	for ; iters < opts.MaxIters; iters++ {
		// ∂L/∂x_k = Σ_{i ∋ k} [ f_i − (1−f_i)·g_i/(1−g_i) ]
		g := make([]float64, nObs)
		for i := 0; i < nObs; i++ {
			gi := math.Exp(logG(x, i))
			if gi > 1-gClamp {
				gi = 1 - gClamp
			}
			g[i] = gi
		}
		for k := 0; k < nl; k++ {
			s := 0.0
			for _, i := range pathsOf[k] {
				s += f[i] - (1-f[i])*g[i]/(1-g[i])
			}
			grad[k] = s
		}

		// Backtracking line search with projection onto x ≤ 0.
		improved := false
		for bt := 0; bt < 40; bt++ {
			for k := range trial {
				v := x[k] + step*grad[k]
				if v > 0 {
					v = 0
				}
				trial[k] = v
			}
			nll := likelihood(trial)
			if nll > ll {
				copy(x, trial)
				if nll-ll < opts.Tol*(math.Abs(ll)+1) {
					ll = nll
					improved = false // converged
					break
				}
				ll = nll
				improved = true
				step *= 1.3 // cautious growth after success
				break
			}
			step /= 2
			if step < 1e-14 {
				break
			}
		}
		if !improved {
			break
		}
	}

	res := &Result{
		CongestionProb: make([]float64, nl),
		LogGoodProb:    x,
		LogLikelihood:  ll,
		Iters:          iters,
	}
	for k := 0; k < nl; k++ {
		p := 1 - math.Exp(x[k])
		if p < 0 {
			p = 0
		}
		res.CongestionProb[k] = p
	}
	return res, nil
}
