// Package mle implements a maximum-likelihood estimator of per-link
// congestion probabilities under the independence assumption — the style of
// inference used by the Boolean-tomography line of work the paper builds on
// (Nguyen & Thiran 2007 [12]; cf. the EM approaches of [17]).
//
// Under Assumption 2 and link independence, a path Pi is good in a snapshot
// with probability g_i = Π_{k∈Pi} q_k, where q_k = P(Xek = 0), and a pair of
// paths is jointly good with probability g_ij = Π_{k∈Pi∪Pj} q_k. Given the
// empirical good-frequencies of paths and of link-sharing path pairs over N
// snapshots, the composite log-likelihood is
//
//	L(q) = Σ_obs [ f·log g + (1 − f)·log(1 − g) ]
//
// which mle maximizes by projected gradient ascent over x_k = log q_k ≤ 0
// with backtracking line search. Pair observations carry the same extra
// identifiability that the paper's Section-4 pair equations provide (single
// paths alone generally underdetermine the links). The estimator complements
// the log-linear solver: identical information set, but observations are
// weighted by their binomial information content instead of all equations
// counting equally. Like every independence-based method, it is consistent
// when links are uncorrelated and biased when they are — the comparison the
// library's tests quantify.
package mle

import (
	"fmt"
	"math"

	"repro/internal/measure"
	"repro/internal/topology"
)

// Options tunes the optimizer.
type Options struct {
	// MaxIters bounds the gradient-ascent iterations (default 500).
	MaxIters int
	// Tol is the convergence threshold on the relative likelihood
	// improvement (default 1e-10).
	Tol float64
	// InitialProb is the starting per-link congestion probability
	// (default 0.05).
	InitialProb float64
}

func (o *Options) fill() {
	if o.MaxIters <= 0 {
		o.MaxIters = 500
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.InitialProb <= 0 || o.InitialProb >= 1 {
		o.InitialProb = 0.05
	}
}

// Result is the estimator output.
type Result struct {
	// CongestionProb[k] is the estimated P(Xek = 1).
	CongestionProb []float64
	// LogGoodProb[k] is the underlying x_k = log P(Xek = 0) ≤ 0.
	LogGoodProb []float64
	// LogLikelihood is the composite log-likelihood at the optimum
	// (per snapshot, i.e. divided by N).
	LogLikelihood float64
	// Iters is the number of gradient steps taken.
	Iters int
}

const (
	gClamp = 1e-9 // keep path-good probabilities inside (0, 1)
)

// Estimate runs the composite-likelihood MLE on the empirical per-path
// good-frequencies of a measurement source.
func Estimate(top *topology.Topology, src *measure.Empirical, opts Options) (*Result, error) {
	if src.NumPaths() != top.NumPaths() {
		return nil, fmt.Errorf("mle: source has %d paths, topology %d", src.NumPaths(), top.NumPaths())
	}
	opts.fill()
	nl := top.NumLinks()
	np := top.NumPaths()

	// Observations: every path, plus link-sharing path pairs (capped at
	// 2·|E|), each with its empirical all-good frequency f and the link set
	// whose q-product predicts it.
	type obs struct {
		links []int
		f     float64
	}
	var observations []obs
	for i := 0; i < np; i++ {
		id := topology.PathID(i)
		observations = append(observations, obs{
			links: top.PathLinkSet(id).Indices(),
			f:     src.ProbPathGood(id),
		})
	}
	seenPair := map[int64]bool{}
	maxPairs := 2 * nl
	pairCount := 0
pairScan:
	for k := 0; k < nl; k++ {
		through := top.PathsThroughLink(topology.LinkID(k))
		for ai := 0; ai < len(through); ai++ {
			for bi := ai + 1; bi < len(through); bi++ {
				i, j := through[ai], through[bi]
				key := int64(i)*int64(np) + int64(j)
				if seenPair[key] {
					continue
				}
				seenPair[key] = true
				union := top.PathLinkSet(i).Clone()
				union.UnionWith(top.PathLinkSet(j))
				observations = append(observations, obs{
					links: union.Indices(),
					f:     src.ProbPairGood(i, j),
				})
				pairCount++
				if pairCount >= maxPairs {
					break pairScan
				}
			}
		}
	}

	// Observation-link incidence, both directions.
	pathsOf := make([][]int, nl)
	for oi, o := range observations {
		for _, l := range o.links {
			pathsOf[l] = append(pathsOf[l], oi)
		}
	}
	nObs := len(observations)
	f := make([]float64, nObs)
	linksOf := make([][]int, nObs)
	for oi, o := range observations {
		f[oi] = o.f
		linksOf[oi] = o.links
	}

	x := make([]float64, nl) // log q_k ≤ 0
	init := math.Log(1 - opts.InitialProb)
	for k := range x {
		x[k] = init
	}

	logG := func(x []float64, i int) float64 {
		s := 0.0
		for _, k := range linksOf[i] {
			s += x[k]
		}
		return s
	}
	likelihood := func(x []float64) float64 {
		ll := 0.0
		for i := 0; i < nObs; i++ {
			g := math.Exp(logG(x, i))
			if g > 1-gClamp {
				g = 1 - gClamp
			}
			if g < gClamp {
				g = gClamp
			}
			ll += f[i]*math.Log(g) + (1-f[i])*math.Log(1-g)
		}
		return ll
	}

	ll := likelihood(x)
	grad := make([]float64, nl)
	trial := make([]float64, nl)
	iters := 0
	step := 0.1
	for ; iters < opts.MaxIters; iters++ {
		// ∂L/∂x_k = Σ_{i ∋ k} [ f_i − (1−f_i)·g_i/(1−g_i) ]
		g := make([]float64, nObs)
		for i := 0; i < nObs; i++ {
			gi := math.Exp(logG(x, i))
			if gi > 1-gClamp {
				gi = 1 - gClamp
			}
			g[i] = gi
		}
		for k := 0; k < nl; k++ {
			s := 0.0
			for _, i := range pathsOf[k] {
				s += f[i] - (1-f[i])*g[i]/(1-g[i])
			}
			grad[k] = s
		}

		// Backtracking line search with projection onto x ≤ 0.
		improved := false
		for bt := 0; bt < 40; bt++ {
			for k := range trial {
				v := x[k] + step*grad[k]
				if v > 0 {
					v = 0
				}
				trial[k] = v
			}
			nll := likelihood(trial)
			if nll > ll {
				copy(x, trial)
				if nll-ll < opts.Tol*(math.Abs(ll)+1) {
					ll = nll
					improved = false // converged
					break
				}
				ll = nll
				improved = true
				step *= 1.3 // cautious growth after success
				break
			}
			step /= 2
			if step < 1e-14 {
				break
			}
		}
		if !improved {
			break
		}
	}

	res := &Result{
		CongestionProb: make([]float64, nl),
		LogGoodProb:    x,
		LogLikelihood:  ll,
		Iters:          iters,
	}
	for k := 0; k < nl; k++ {
		p := 1 - math.Exp(x[k])
		if p < 0 {
			p = 0
		}
		res.CongestionProb[k] = p
	}
	return res, nil
}
