// Package mle implements a maximum-likelihood estimator of per-link
// congestion probabilities under the independence assumption — the style of
// inference used by the Boolean-tomography line of work the paper builds on
// (Nguyen & Thiran 2007 [12]; cf. the EM approaches of [17]).
//
// Under Assumption 2 and link independence, a path Pi is good in a snapshot
// with probability g_i = Π_{k∈Pi} q_k, where q_k = P(Xek = 0), and a pair of
// paths is jointly good with probability g_ij = Π_{k∈Pi∪Pj} q_k. Given the
// empirical good-frequencies of paths and of link-sharing path pairs over N
// snapshots, the composite log-likelihood is
//
//	L(q) = Σ_obs [ f·log g + (1 − f)·log(1 − g) ]
//
// which mle maximizes by projected gradient ascent over x_k = log q_k ≤ 0
// with backtracking line search. Pair observations carry the same extra
// identifiability that the paper's Section-4 pair equations provide (single
// paths alone generally underdetermine the links). The estimator complements
// the log-linear solver: identical information set, but observations are
// weighted by their binomial information content instead of all equations
// counting equally. Like every independence-based method, it is consistent
// when links are uncorrelated and biased when they are — the comparison the
// library's tests quantify.
package mle

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/measure"
	"repro/internal/scratch"
	"repro/internal/topology"
)

// Source is the measurement interface the estimator consumes: empirical
// good-frequencies of single paths and of path pairs. measure.Empirical
// satisfies it; any source exposing the measure.Source + FastPairSource
// pair does too.
type Source interface {
	// NumPaths returns the number of paths in the underlying experiment.
	NumPaths() int
	// ProbPathGood returns the empirical P(path i good).
	ProbPathGood(i topology.PathID) float64
	// ProbPairGood returns the empirical P(paths i and j both good).
	ProbPairGood(i, j topology.PathID) float64
}

// Options tunes the optimizer.
type Options struct {
	// MaxIters bounds the gradient-ascent iterations (default 500).
	MaxIters int
	// Tol is the convergence threshold on the relative likelihood
	// improvement (default 1e-10).
	Tol float64
	// InitialProb is the starting per-link congestion probability
	// (default 0.05).
	InitialProb float64
}

func (o *Options) fill() {
	if o.MaxIters <= 0 {
		o.MaxIters = 500
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.InitialProb <= 0 || o.InitialProb >= 1 {
		o.InitialProb = 0.05
	}
}

// Result is the estimator output.
type Result struct {
	// CongestionProb[k] is the estimated P(Xek = 1).
	CongestionProb []float64
	// LogGoodProb[k] is the underlying x_k = log P(Xek = 0) ≤ 0.
	LogGoodProb []float64
	// LogLikelihood is the composite log-likelihood at the optimum
	// (per snapshot, i.e. divided by N).
	LogLikelihood float64
	// Iters is the number of gradient steps taken.
	Iters int
}

const (
	gClamp = 1e-9 // keep path-good probabilities inside (0, 1)
)

// Clone returns a deep copy of the result — the way to retain a
// workspace-owned result (EstimateIn) beyond the workspace's next use.
func (r *Result) Clone() *Result {
	return &Result{
		CongestionProb: append([]float64(nil), r.CongestionProb...),
		LogGoodProb:    append([]float64(nil), r.LogGoodProb...),
		LogLikelihood:  r.LogLikelihood,
		Iters:          r.Iters,
	}
}

// obs is one composite-likelihood observation: the link set whose q-product
// predicts the all-good frequency of a single path or a link-sharing path
// pair. Which frequency to query is structural; the frequency itself is
// data and is looked up per Estimate call.
type obs struct {
	links []int
	i, j  topology.PathID // j < 0 for a single-path observation
}

// Plan is the compiled structural phase of the estimator: the observation
// set (every path plus link-sharing pairs, capped at 2·|E|) and the
// observation↔link incidence in both directions. Everything here depends
// only on the topology, so one plan serves any number of Estimate calls;
// it is immutable after Compile returns and safe for concurrent use.
type Plan struct {
	top          *topology.Topology
	observations []obs
	pathsOf      [][]int // link → observation indices
	linksOf      [][]int // observation → link indices
	// pairs lists the pair observations' path pairs in observation order —
	// the precomputed query set of the batched pair-count kernel
	// (measure.BatchPairSource.PrimePairs).
	pairs []measure.Pair
}

// Compile builds the estimator's observation structure for a topology.
//
// Pair deduplication uses one lazily allocated partner bitset per path (the
// same device the Section-4 candidate enumeration uses) instead of a boxed
// int64-keyed map: compile stays allocation-lean, and the observation order
// is a pure function of the topology's link order — deterministic by
// construction, with no map anywhere in the pipeline.
func Compile(top *topology.Topology) (*Plan, error) {
	if top == nil {
		return nil, fmt.Errorf("mle: nil topology")
	}
	nl := top.NumLinks()
	np := top.NumPaths()

	// Observations: every path, plus link-sharing path pairs (capped at
	// 2·|E|), each identifying the empirical all-good frequency to query
	// and the link set whose q-product predicts it.
	var observations []obs
	for i := 0; i < np; i++ {
		id := topology.PathID(i)
		observations = append(observations, obs{
			links: top.PathLinkSet(id).Indices(),
			i:     id, j: -1,
		})
	}
	paired := make([]*bitset.Set, np)
	var pairs []measure.Pair
	maxPairs := 2 * nl
	pairCount := 0
pairScan:
	for k := 0; k < nl; k++ {
		through := top.PathsThroughLink(topology.LinkID(k))
		for ai := 0; ai < len(through); ai++ {
			for bi := ai + 1; bi < len(through); bi++ {
				i, j := through[ai], through[bi]
				if paired[i] == nil {
					paired[i] = bitset.New(np)
				}
				if paired[i].Contains(int(j)) {
					continue
				}
				paired[i].Add(int(j))
				union := top.PathLinkSet(i).Clone()
				union.UnionWith(top.PathLinkSet(j))
				observations = append(observations, obs{
					links: union.Indices(),
					i:     i, j: j,
				})
				pairs = append(pairs, measure.Pair{A: int(i), B: int(j)})
				pairCount++
				if pairCount >= maxPairs {
					break pairScan
				}
			}
		}
	}

	// Observation-link incidence, both directions.
	pathsOf := make([][]int, nl)
	linksOf := make([][]int, len(observations))
	for oi, o := range observations {
		for _, l := range o.links {
			pathsOf[l] = append(pathsOf[l], oi)
		}
		linksOf[oi] = o.links
	}
	return &Plan{top: top, observations: observations, pathsOf: pathsOf, linksOf: linksOf, pairs: pairs}, nil
}

// Topology returns the topology the plan was compiled for.
func (p *Plan) Topology() *topology.Topology { return p.top }

// Estimate runs the composite-likelihood MLE on the empirical per-path
// good-frequencies of a measurement source. The one-shot form of
// Compile + Plan.Estimate.
func Estimate(top *topology.Topology, src Source, opts Options) (*Result, error) {
	plan, err := Compile(top)
	if err != nil {
		return nil, err
	}
	return plan.Estimate(src, opts)
}

// Workspace holds the optimizer's transient state — observation
// frequencies, the iterate, gradient, line-search trial, per-observation
// good-probabilities, and the reused result — so steady-state estimation
// allocates nothing. One goroutine may reuse one workspace across calls and
// plans (buffers grow monotonically); concurrent use of one workspace is
// detected and reported by panic. Results returned by EstimateIn alias
// workspace storage: read-only, valid until the next call on the same
// workspace. The allocating Estimate remains the safe default.
type Workspace struct {
	busy atomic.Int32

	f     []float64 // observation good-frequencies
	x     []float64 // iterate: log q_k ≤ 0
	g     []float64 // per-observation good-probabilities (gradient pass)
	grad  []float64
	trial []float64
	res   Result
}

// NewWorkspace returns an empty workspace. The zero value is also ready to
// use.
func NewWorkspace() *Workspace { return &Workspace{} }

func (ws *Workspace) acquire() {
	if !ws.busy.CompareAndSwap(0, 1) {
		panic("mle: Workspace used concurrently by multiple goroutines; use one workspace per goroutine")
	}
}

func (ws *Workspace) release() { ws.busy.Store(0) }

// wsPool backs the allocating Estimate wrapper.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// logG returns Σ_{k∈links(obs i)} x_k — the log of observation i's predicted
// good-probability.
func (p *Plan) logG(x []float64, i int) float64 {
	s := 0.0
	for _, k := range p.linksOf[i] {
		s += x[k]
	}
	return s
}

// likelihood evaluates the composite log-likelihood of iterate x against the
// observation frequencies f.
func (p *Plan) likelihood(x, f []float64) float64 {
	ll := 0.0
	for i := range p.observations {
		g := math.Exp(p.logG(x, i))
		if g > 1-gClamp {
			g = 1 - gClamp
		}
		if g < gClamp {
			g = gClamp
		}
		ll += f[i]*math.Log(g) + (1-f[i])*math.Log(1-g)
	}
	return ll
}

// Estimate fills the compiled observation structure's frequencies from the
// source and maximizes the composite likelihood. Bit-identical to the
// one-shot Estimate; it wraps EstimateIn with a pooled workspace and
// detaches the result, so concurrent calls on a shared plan are safe.
func (p *Plan) Estimate(src Source, opts Options) (*Result, error) {
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	res, err := p.EstimateIn(ws, src, opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		CongestionProb: append([]float64(nil), res.CongestionProb...),
		LogGoodProb:    append([]float64(nil), res.LogGoodProb...),
		LogLikelihood:  res.LogLikelihood,
		Iters:          res.Iters,
	}, nil
}

// EstimateIn is Estimate with workspace-owned state: every per-call and
// per-iteration buffer (frequencies, iterate, gradient, line-search trial,
// the per-observation g vector that used to be allocated inside every
// gradient step) lives in ws, and pair frequencies are resolved by one
// batched cache-blocked pass when the source supports it
// (measure.BatchPairSource). Identical arithmetic to Estimate; the result
// aliases ws and is valid until its next use.
func (p *Plan) EstimateIn(ws *Workspace, src Source, opts Options) (*Result, error) {
	ws.acquire()
	defer ws.release()
	top := p.top
	if src.NumPaths() != top.NumPaths() {
		return nil, fmt.Errorf("mle: source has %d paths, topology %d", src.NumPaths(), top.NumPaths())
	}
	opts.fill()
	nl := top.NumLinks()

	if bp, ok := src.(measure.BatchPairSource); ok && len(p.pairs) > 0 {
		bp.PrimePairs(p.pairs)
	}
	nObs := len(p.observations)
	ws.f = scratch.Grow(ws.f, nObs)
	f := ws.f
	for oi := range p.observations {
		o := &p.observations[oi]
		if o.j < 0 {
			f[oi] = src.ProbPathGood(o.i)
		} else {
			f[oi] = src.ProbPairGood(o.i, o.j)
		}
	}
	pathsOf := p.pathsOf

	ws.x = scratch.Grow(ws.x, nl)
	x := ws.x // log q_k ≤ 0
	init := math.Log(1 - opts.InitialProb)
	for k := range x {
		x[k] = init
	}

	ll := p.likelihood(x, f)
	ws.grad = scratch.Grow(ws.grad, nl)
	ws.trial = scratch.Grow(ws.trial, nl)
	ws.g = scratch.Grow(ws.g, nObs)
	grad, trial, g := ws.grad, ws.trial, ws.g
	iters := 0
	step := 0.1
	for ; iters < opts.MaxIters; iters++ {
		// ∂L/∂x_k = Σ_{i ∋ k} [ f_i − (1−f_i)·g_i/(1−g_i) ]
		for i := 0; i < nObs; i++ {
			gi := math.Exp(p.logG(x, i))
			if gi > 1-gClamp {
				gi = 1 - gClamp
			}
			g[i] = gi
		}
		for k := 0; k < nl; k++ {
			s := 0.0
			for _, i := range pathsOf[k] {
				s += f[i] - (1-f[i])*g[i]/(1-g[i])
			}
			grad[k] = s
		}

		// Backtracking line search with projection onto x ≤ 0.
		improved := false
		for bt := 0; bt < 40; bt++ {
			for k := range trial {
				v := x[k] + step*grad[k]
				if v > 0 {
					v = 0
				}
				trial[k] = v
			}
			nll := p.likelihood(trial, f)
			if nll > ll {
				copy(x, trial)
				if nll-ll < opts.Tol*(math.Abs(ll)+1) {
					ll = nll
					improved = false // converged
					break
				}
				ll = nll
				improved = true
				step *= 1.3 // cautious growth after success
				break
			}
			step /= 2
			if step < 1e-14 {
				break
			}
		}
		if !improved {
			break
		}
	}

	res := &ws.res
	res.CongestionProb = scratch.Grow(res.CongestionProb, nl)
	res.LogGoodProb = x
	res.LogLikelihood = ll
	res.Iters = iters
	for k := 0; k < nl; k++ {
		p := 1 - math.Exp(x[k])
		if p < 0 {
			p = 0
		}
		res.CongestionProb[k] = p
	}
	return res, nil
}
