package congestion

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/topology"
)

// SharedCause models links whose congestion has a common hidden cause per
// correlation set — e.g. a shared physical link or a shared management
// process (Section 3.3 of the paper). For link k in group g:
//
//	Xk = (Hg ∧ Wk) ∨ Vk
//
// where Hg ~ Bernoulli(CauseProb[g]) is the per-group hidden cause, Wk ~
// Bernoulli(Participation[k]) is whether the link is hit when the cause
// fires, and Vk ~ Bernoulli(Idio[k]) is idiosyncratic congestion. All latent
// variables are independent, so links in different groups are independent —
// exactly the paper's correlation-set semantics — while links within a group
// are positively correlated through Hg.
type SharedCause struct {
	Group         []int     // Group[k] = correlation group of link k
	CauseProb     []float64 // per group: P(Hg = 1)
	Participation []float64 // per link: P(Wk = 1)
	Idio          []float64 // per link: P(Vk = 1)

	numGroups int
	byGroup   [][]int // links of each group
}

// NewSharedCause validates and builds the model. group maps each link to a
// group index in [0, numGroups); causeProb has one entry per group;
// participation and idio have one entry per link.
func NewSharedCause(group []int, causeProb, participation, idio []float64) (*SharedCause, error) {
	n := len(group)
	if len(participation) != n || len(idio) != n {
		return nil, fmt.Errorf("congestion: SharedCause per-link slices disagree: %d groups entries, %d participation, %d idio",
			n, len(participation), len(idio))
	}
	ng := len(causeProb)
	byGroup := make([][]int, ng)
	for k, g := range group {
		if g < 0 || g >= ng {
			return nil, fmt.Errorf("congestion: link %d has group %d, want [0,%d)", k, g, ng)
		}
		byGroup[g] = append(byGroup[g], k)
	}
	for g, q := range causeProb {
		if q < 0 || q > 1 || math.IsNaN(q) {
			return nil, fmt.Errorf("congestion: group %d cause probability %v out of [0,1]", g, q)
		}
	}
	for k := 0; k < n; k++ {
		if participation[k] < 0 || participation[k] > 1 || idio[k] < 0 || idio[k] > 1 {
			return nil, fmt.Errorf("congestion: link %d participation/idio out of [0,1]", k)
		}
	}
	m := &SharedCause{
		Group:         append([]int{}, group...),
		CauseProb:     append([]float64{}, causeProb...),
		Participation: append([]float64{}, participation...),
		Idio:          append([]float64{}, idio...),
		numGroups:     ng,
		byGroup:       byGroup,
	}
	return m, nil
}

// NumLinks implements Model.
func (m *SharedCause) NumLinks() int { return len(m.Group) }

// Sample implements Model.
func (m *SharedCause) Sample(rng *rand.Rand, out *bitset.Set) {
	out.Clear()
	for g := 0; g < m.numGroups; g++ {
		h := rng.Float64() < m.CauseProb[g]
		for _, k := range m.byGroup[g] {
			congested := rng.Float64() < m.Idio[k]
			if !congested && h && rng.Float64() < m.Participation[k] {
				congested = true
			}
			if congested {
				out.Add(k)
			}
		}
	}
}

// Marginal implements Model: P(Xk=1) = 1 − (1 − q·a)·(1 − b).
func (m *SharedCause) Marginal(link topology.LinkID) float64 {
	k := int(link)
	q := m.CauseProb[m.Group[k]]
	return 1 - (1-q*m.Participation[k])*(1-m.Idio[k])
}

// ProbAllGood implements Model. Within group g with queried links Ag:
//
//	P(all good) = Π (1−bk) · [ (1−q) + q·Π (1−ak) ]
func (m *SharedCause) ProbAllGood(links *bitset.Set) float64 {
	type acc struct {
		idio  float64 // Π (1−bk)
		part  float64 // Π (1−ak)
		found bool
	}
	groups := map[int]*acc{}
	links.ForEach(func(k int) bool {
		g := m.Group[k]
		a := groups[g]
		if a == nil {
			a = &acc{idio: 1, part: 1}
			groups[g] = a
		}
		a.found = true
		a.idio *= 1 - m.Idio[k]
		a.part *= 1 - m.Participation[k]
		return true
	})
	p := 1.0
	for g, a := range groups {
		q := m.CauseProb[g]
		p *= a.idio * ((1 - q) + q*a.part)
	}
	return p
}
