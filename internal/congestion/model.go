// Package congestion implements the ground-truth congestion processes used
// by the simulator (Section 5 of the paper). A Model defines, for every
// snapshot, the joint distribution of the link congestion indicators Xek.
//
// Each model exposes exact probabilities — Marginal (P(Xek = 1)) and
// ProbAllGood (P(all links in a set are good)) — so that experiments can
// compute true per-link congestion probabilities for error measurement, and
// so that the exact theorem algorithm can be validated against closed-form
// inputs. The generic SubsetDistribution helper derives the full per-set
// state distribution P(Sᵖ = A) from ProbAllGood by inclusion–exclusion.
//
// Models provided:
//
//   - Independent: every link an independent Bernoulli (the world assumed by
//     the paper's baseline, Nguyen–Thiran 2007).
//   - SharedCause: per correlation set, a hidden common-cause Bernoulli plus
//     idiosyncratic noise — the canonical "links share a physical resource"
//     process (used for PlanetLab-style experiments).
//   - RouterBacked: each logical link is backed by a set of independent
//     router-level links and is congested iff any of them is (the Brite
//     experiment construction in Section 5).
//   - Table: explicit per-correlation-set joint distribution (tests, toys).
//   - AttackOverlay: wraps any model with a hidden global "worm/flood"
//     variable that congests a target set of links simultaneously — the
//     unknown correlation pattern of the Figure-5 experiments.
package congestion

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/topology"
)

// Model is a joint distribution over link congestion states, sampled once
// per snapshot. Implementations must be safe for concurrent use of the
// probability queries; Sample is called with a caller-owned RNG.
type Model interface {
	// NumLinks returns the number of links the model covers.
	NumLinks() int
	// Sample draws the set of congested links for one snapshot into out
	// (which is cleared first).
	Sample(rng *rand.Rand, out *bitset.Set)
	// Marginal returns the exact probability that the link is congested.
	Marginal(link topology.LinkID) float64
	// ProbAllGood returns the exact probability that every link in the set
	// is good during a snapshot.
	ProbAllGood(links *bitset.Set) float64
}

// Marginals returns the exact congestion probability of every link.
func Marginals(m Model) []float64 {
	out := make([]float64, m.NumLinks())
	for i := range out {
		out[i] = m.Marginal(topology.LinkID(i))
	}
	return out
}

// SubsetProb pairs a specific congested-link set with its probability.
type SubsetProb struct {
	Links *bitset.Set
	P     float64
}

// SubsetDistribution computes the exact distribution of the congested subset
// within the given links: P(exactly the links in A ⊆ links are congested and
// the rest of links are good), for every A including ∅. It derives the
// distribution from ProbAllGood by inclusion–exclusion:
//
//	P(S = A) = Σ_{B ⊆ A} (−1)^|B| · P(all of (links∖A) ∪ B good)
//
// Cost is O(3^|links|); callers must keep |links| small (≤ ~15).
func SubsetDistribution(m Model, links []int) []SubsetProb {
	if len(links) > 20 {
		panic(fmt.Sprintf("congestion: SubsetDistribution over %d links is intractable", len(links)))
	}
	n := uint(len(links))
	out := make([]SubsetProb, 0, 1<<n)
	for mask := uint64(0); mask < 1<<n; mask++ {
		a := bitset.New(0)
		var aIdx []int
		rest := bitset.New(0)
		for b := uint(0); b < n; b++ {
			if mask&(1<<b) != 0 {
				a.Add(links[b])
				aIdx = append(aIdx, links[b])
			} else {
				rest.Add(links[b])
			}
		}
		p := 0.0
		nA := uint(len(aIdx))
		for sub := uint64(0); sub < 1<<nA; sub++ {
			good := rest.Clone()
			bits := 0
			for b := uint(0); b < nA; b++ {
				if sub&(1<<b) != 0 {
					good.Add(aIdx[b])
					bits++
				}
			}
			term := m.ProbAllGood(good)
			if bits%2 == 1 {
				term = -term
			}
			p += term
		}
		if p < 0 && p > -1e-12 {
			p = 0 // clamp numerical noise
		}
		out = append(out, SubsetProb{Links: a, P: p})
	}
	return out
}

// Independent is a Model in which every link congests independently.
type Independent struct {
	P []float64 // P[k] = P(Xek = 1)
}

// NewIndependent validates the probabilities and returns the model.
func NewIndependent(p []float64) (*Independent, error) {
	for i, v := range p {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return nil, fmt.Errorf("congestion: link %d probability %v out of [0,1]", i, v)
		}
	}
	cp := make([]float64, len(p))
	copy(cp, p)
	return &Independent{P: cp}, nil
}

// NumLinks implements Model.
func (m *Independent) NumLinks() int { return len(m.P) }

// Sample implements Model.
func (m *Independent) Sample(rng *rand.Rand, out *bitset.Set) {
	out.Clear()
	for k, p := range m.P {
		if p > 0 && rng.Float64() < p {
			out.Add(k)
		}
	}
}

// Marginal implements Model.
func (m *Independent) Marginal(link topology.LinkID) float64 { return m.P[link] }

// ProbAllGood implements Model.
func (m *Independent) ProbAllGood(links *bitset.Set) float64 {
	p := 1.0
	links.ForEach(func(i int) bool {
		p *= 1 - m.P[i]
		return true
	})
	return p
}
