package congestion

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/bitset"
	"repro/internal/topology"
)

// GroupTable is the explicit joint distribution of one correlation group:
// a probability for every possible congested subset of the group's links.
type GroupTable struct {
	Links []int // the group's link indices
	// States enumerates subsets with their probabilities; probabilities must
	// sum to 1 (the empty subset's probability may be given implicitly via
	// Normalize). Subsets are expressed over the link indices in Links.
	States []SubsetProb
}

// Table is a Model defined by explicit per-group joint tables. Groups are
// mutually independent. It is primarily used in unit tests and in the toy
// examples, where the paper's worked probabilities can be written down
// verbatim.
type Table struct {
	groups   []GroupTable
	cum      [][]float64 // per group: cumulative probabilities for sampling
	numLinks int
	groupOf  []int
}

// NewTable validates the group tables and builds the model. Every link index
// in [0, numLinks) must appear in exactly one group, and each group's state
// probabilities must sum to 1 (±1e-9) with subsets drawn from the group's
// links.
func NewTable(numLinks int, groups []GroupTable) (*Table, error) {
	t := &Table{numLinks: numLinks, groupOf: make([]int, numLinks)}
	for i := range t.groupOf {
		t.groupOf[i] = -1
	}
	for gi, g := range groups {
		memb := bitset.New(numLinks)
		for _, k := range g.Links {
			if k < 0 || k >= numLinks {
				return nil, fmt.Errorf("congestion: group %d references link %d outside [0,%d)", gi, k, numLinks)
			}
			if t.groupOf[k] != -1 {
				return nil, fmt.Errorf("congestion: link %d appears in two groups", k)
			}
			t.groupOf[k] = gi
			memb.Add(k)
		}
		sum := 0.0
		var cum []float64
		for si, s := range g.States {
			if s.P < 0 || math.IsNaN(s.P) {
				return nil, fmt.Errorf("congestion: group %d state %d has probability %v", gi, si, s.P)
			}
			if !s.Links.IsSubsetOf(memb) {
				return nil, fmt.Errorf("congestion: group %d state %d includes links outside the group", gi, si)
			}
			sum += s.P
			cum = append(cum, sum)
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("congestion: group %d probabilities sum to %v, want 1", gi, sum)
		}
		t.groups = append(t.groups, g)
		t.cum = append(t.cum, cum)
	}
	for k, g := range t.groupOf {
		if g == -1 {
			return nil, fmt.Errorf("congestion: link %d belongs to no group", k)
		}
	}
	return t, nil
}

// NumLinks implements Model.
func (t *Table) NumLinks() int { return t.numLinks }

// Sample implements Model: draw each group's subset independently.
func (t *Table) Sample(rng *rand.Rand, out *bitset.Set) {
	out.Clear()
	for gi, g := range t.groups {
		u := rng.Float64()
		cum := t.cum[gi]
		idx := sort.SearchFloat64s(cum, u)
		if idx >= len(g.States) {
			idx = len(g.States) - 1
		}
		out.UnionWith(g.States[idx].Links)
	}
}

// Marginal implements Model.
func (t *Table) Marginal(link topology.LinkID) float64 {
	g := t.groups[t.groupOf[link]]
	p := 0.0
	for _, s := range g.States {
		if s.Links.Contains(int(link)) {
			p += s.P
		}
	}
	return p
}

// ProbAllGood implements Model: per group, sum the probabilities of states
// disjoint from the queried links; multiply across groups.
func (t *Table) ProbAllGood(links *bitset.Set) float64 {
	queried := map[int]*bitset.Set{}
	links.ForEach(func(k int) bool {
		gi := t.groupOf[k]
		if queried[gi] == nil {
			queried[gi] = bitset.New(t.numLinks)
		}
		queried[gi].Add(k)
		return true
	})
	p := 1.0
	for gi, q := range queried {
		gp := 0.0
		for _, s := range t.groups[gi].States {
			if !s.Links.Intersects(q) {
				gp += s.P
			}
		}
		p *= gp
	}
	return p
}
