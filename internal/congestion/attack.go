package congestion

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/topology"
)

// AttackOverlay wraps a base model with a hidden global correlation pattern:
// with probability AttackProb per snapshot, a "worm" floods every link in
// Targets simultaneously, congesting them regardless of their base state.
// This is the unknown-correlation scenario of the Figure-5 experiments: the
// targeted links become correlated with one another across correlation-set
// boundaries, and the tomography algorithm is (deliberately) not told.
type AttackOverlay struct {
	Base       Model
	Targets    *bitset.Set
	AttackProb float64
}

// NewAttackOverlay validates and builds the overlay.
func NewAttackOverlay(base Model, targets *bitset.Set, attackProb float64) (*AttackOverlay, error) {
	if attackProb < 0 || attackProb > 1 || math.IsNaN(attackProb) {
		return nil, fmt.Errorf("congestion: attack probability %v out of [0,1]", attackProb)
	}
	bad := false
	targets.ForEach(func(k int) bool {
		if k >= base.NumLinks() {
			bad = true
			return false
		}
		return true
	})
	if bad {
		return nil, fmt.Errorf("congestion: attack targets reference links outside the base model (%d links)", base.NumLinks())
	}
	return &AttackOverlay{Base: base, Targets: targets.Clone(), AttackProb: attackProb}, nil
}

// NumLinks implements Model.
func (m *AttackOverlay) NumLinks() int { return m.Base.NumLinks() }

// Sample implements Model.
func (m *AttackOverlay) Sample(rng *rand.Rand, out *bitset.Set) {
	m.Base.Sample(rng, out)
	if rng.Float64() < m.AttackProb {
		out.UnionWith(m.Targets)
	}
}

// Marginal implements Model: for a target link,
// P(X'k=1) = q + (1−q)·P(Xk=1); otherwise unchanged.
func (m *AttackOverlay) Marginal(link topology.LinkID) float64 {
	p := m.Base.Marginal(link)
	if m.Targets.Contains(int(link)) {
		return m.AttackProb + (1-m.AttackProb)*p
	}
	return p
}

// ProbAllGood implements Model: if the queried set intersects the targets,
// all-good additionally requires the attack to be off.
func (m *AttackOverlay) ProbAllGood(links *bitset.Set) float64 {
	p := m.Base.ProbAllGood(links)
	if links.Intersects(m.Targets) {
		return (1 - m.AttackProb) * p
	}
	return p
}
