package congestion

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/topology"
)

// RouterBacked reproduces the Brite experiment of Section 5: each logical
// (AS-level) link is backed by a sequence of router-level links; router-level
// links congest independently; a logical link is congested iff at least one
// of its underlying router-level links is congested. Two logical links are
// correlated exactly when they share a router-level link.
type RouterBacked struct {
	// Backing[k] lists the router-level link indices underlying logical
	// link k. Router-level indices live in their own namespace [0, numRouter).
	Backing [][]int
	// RouterP[r] = P(router-level link r congested).
	RouterP []float64

	numRouter int
	// routerState is scratch reused per Sample via a pool-free approach:
	// Sample allocates on the caller's stack-ish slice instead; see Sample.
}

// NewRouterBacked validates and builds the model.
func NewRouterBacked(backing [][]int, routerP []float64) (*RouterBacked, error) {
	for r, p := range routerP {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("congestion: router link %d probability %v out of [0,1]", r, p)
		}
	}
	for k, b := range backing {
		if len(b) == 0 {
			return nil, fmt.Errorf("congestion: logical link %d has no backing router links", k)
		}
		for _, r := range b {
			if r < 0 || r >= len(routerP) {
				return nil, fmt.Errorf("congestion: logical link %d references unknown router link %d", k, r)
			}
		}
	}
	cp := make([][]int, len(backing))
	for k, b := range backing {
		cp[k] = append([]int{}, b...)
	}
	return &RouterBacked{
		Backing:   cp,
		RouterP:   append([]float64{}, routerP...),
		numRouter: len(routerP),
	}, nil
}

// NumLinks implements Model.
func (m *RouterBacked) NumLinks() int { return len(m.Backing) }

// NumRouterLinks returns the size of the underlying router-level namespace.
func (m *RouterBacked) NumRouterLinks() int { return m.numRouter }

// Sample implements Model: draw router-level states, derive logical states.
func (m *RouterBacked) Sample(rng *rand.Rand, out *bitset.Set) {
	out.Clear()
	state := make([]bool, m.numRouter)
	for r, p := range m.RouterP {
		state[r] = p > 0 && rng.Float64() < p
	}
	for k, b := range m.Backing {
		for _, r := range b {
			if state[r] {
				out.Add(k)
				break
			}
		}
	}
}

// Marginal implements Model: P(Xk = 1) = 1 − Π (1 − pr) over backing links.
func (m *RouterBacked) Marginal(link topology.LinkID) float64 {
	p := 1.0
	for _, r := range m.Backing[link] {
		p *= 1 - m.RouterP[r]
	}
	return 1 - p
}

// ProbAllGood implements Model: all logical links good ⇔ every router link
// in the union of their backings is good.
func (m *RouterBacked) ProbAllGood(links *bitset.Set) float64 {
	seen := bitset.New(m.numRouter)
	p := 1.0
	links.ForEach(func(k int) bool {
		for _, r := range m.Backing[k] {
			if !seen.Contains(r) {
				seen.Add(r)
				p *= 1 - m.RouterP[r]
			}
		}
		return true
	})
	return p
}

// CorrelationGroups partitions the logical links into groups that share at
// least one router-level link (transitively). The result is the correlation-
// set structure the Brite experiment hands to the tomography algorithm:
// links in different groups are genuinely independent under this model.
func (m *RouterBacked) CorrelationGroups() [][]int {
	// Union-find over logical links keyed by shared router links.
	parent := make([]int, len(m.Backing))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	owner := make([]int, m.numRouter)
	for i := range owner {
		owner[i] = -1
	}
	for k, b := range m.Backing {
		for _, r := range b {
			if owner[r] == -1 {
				owner[r] = k
			} else {
				union(owner[r], k)
			}
		}
	}
	groups := map[int][]int{}
	for k := range m.Backing { // ascending k ⇒ members sorted, g[0] smallest
		root := find(k)
		groups[root] = append(groups[root], k)
	}
	// Emit deterministically, ordered by each group's smallest member.
	out := make([][]int, 0, len(groups))
	for k := range m.Backing {
		if g, ok := groups[find(k)]; ok && g[0] == k {
			out = append(out, g)
			delete(groups, find(k))
		}
	}
	return out
}
