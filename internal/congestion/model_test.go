package congestion

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/topology"
)

const sampleN = 200000

// sampleFreq estimates P(predicate) over sampleN snapshots.
func sampleFreq(m Model, seed int64, pred func(s *bitset.Set) bool) float64 {
	rng := rand.New(rand.NewSource(seed))
	s := bitset.New(m.NumLinks())
	hits := 0
	for i := 0; i < sampleN; i++ {
		m.Sample(rng, s)
		if pred(s) {
			hits++
		}
	}
	return float64(hits) / sampleN
}

func TestIndependentValidation(t *testing.T) {
	if _, err := NewIndependent([]float64{0.5, 1.2}); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
	if _, err := NewIndependent([]float64{0.5, math.NaN()}); err == nil {
		t.Fatal("NaN probability accepted")
	}
}

func TestIndependentExactProbabilities(t *testing.T) {
	m, err := NewIndependent([]float64{0.1, 0.5, 0.0, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Marginal(1); got != 0.5 {
		t.Fatalf("Marginal(1) = %v", got)
	}
	// P(links 0,1 good) = 0.9 * 0.5
	if got := m.ProbAllGood(bitset.FromIndices(0, 1)); math.Abs(got-0.45) > 1e-15 {
		t.Fatalf("ProbAllGood = %v, want 0.45", got)
	}
	// Link 3 is always congested.
	if got := m.ProbAllGood(bitset.FromIndices(3)); got != 0 {
		t.Fatalf("ProbAllGood({always congested}) = %v, want 0", got)
	}
}

func TestIndependentSampleConvergence(t *testing.T) {
	m, _ := NewIndependent([]float64{0.2, 0.7})
	f0 := sampleFreq(m, 1, func(s *bitset.Set) bool { return s.Contains(0) })
	if math.Abs(f0-0.2) > 0.01 {
		t.Fatalf("empirical P(X0) = %v, want ≈0.2", f0)
	}
	// Independence: P(X0 ∧ X1) ≈ P(X0)·P(X1).
	f01 := sampleFreq(m, 2, func(s *bitset.Set) bool { return s.Contains(0) && s.Contains(1) })
	if math.Abs(f01-0.14) > 0.01 {
		t.Fatalf("empirical P(X0∧X1) = %v, want ≈0.14", f01)
	}
}

func TestSharedCauseValidation(t *testing.T) {
	if _, err := NewSharedCause([]int{0, 5}, []float64{0.5}, []float64{1, 1}, []float64{0, 0}); err == nil {
		t.Fatal("bad group index accepted")
	}
	if _, err := NewSharedCause([]int{0}, []float64{1.5}, []float64{1}, []float64{0}); err == nil {
		t.Fatal("bad cause probability accepted")
	}
	if _, err := NewSharedCause([]int{0, 0}, []float64{0.5}, []float64{1}, []float64{0, 0}); err == nil {
		t.Fatal("slice length mismatch accepted")
	}
}

func TestSharedCauseExactProbabilities(t *testing.T) {
	// Two links in one group, fully participating, no idiosyncratic noise:
	// they are perfectly correlated copies of the cause.
	m, err := NewSharedCause([]int{0, 0}, []float64{0.3}, []float64{1, 1}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Marginal(0); math.Abs(got-0.3) > 1e-15 {
		t.Fatalf("Marginal = %v, want 0.3", got)
	}
	// P(both good) = 1 − q = 0.7 (not (1−q)² — the whole point).
	if got := m.ProbAllGood(bitset.FromIndices(0, 1)); math.Abs(got-0.7) > 1e-15 {
		t.Fatalf("ProbAllGood = %v, want 0.7", got)
	}
}

func TestSharedCauseAgainstLatentEnumeration(t *testing.T) {
	// Brute-force the latent space (H, W0, W1, V0, V1) and compare every
	// subset probability with SubsetDistribution.
	group := []int{0, 0}
	q := 0.4
	a := []float64{0.8, 0.6}
	b := []float64{0.1, 0.2}
	m, err := NewSharedCause(group, []float64{q}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// want[mask] = P(congested set == mask)
	want := make([]float64, 4)
	for h := 0; h <= 1; h++ {
		ph := q
		if h == 0 {
			ph = 1 - q
		}
		for w0 := 0; w0 <= 1; w0++ {
			for w1 := 0; w1 <= 1; w1++ {
				for v0 := 0; v0 <= 1; v0++ {
					for v1 := 0; v1 <= 1; v1++ {
						p := ph
						p *= bern(a[0], w0) * bern(a[1], w1) * bern(b[0], v0) * bern(b[1], v1)
						x0 := (h == 1 && w0 == 1) || v0 == 1
						x1 := (h == 1 && w1 == 1) || v1 == 1
						mask := 0
						if x0 {
							mask |= 1
						}
						if x1 {
							mask |= 2
						}
						want[mask] += p
					}
				}
			}
		}
	}
	dist := SubsetDistribution(m, []int{0, 1})
	for _, sp := range dist {
		mask := 0
		if sp.Links.Contains(0) {
			mask |= 1
		}
		if sp.Links.Contains(1) {
			mask |= 2
		}
		if math.Abs(sp.P-want[mask]) > 1e-12 {
			t.Fatalf("P(S=%v) = %v, want %v", sp.Links, sp.P, want[mask])
		}
	}
}

func bern(p float64, v int) float64 {
	if v == 1 {
		return p
	}
	return 1 - p
}

func TestSharedCauseCrossGroupIndependence(t *testing.T) {
	m, err := NewSharedCause([]int{0, 1}, []float64{0.5, 0.5}, []float64{1, 1}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Different groups: P(both good) = 0.5 * 0.5.
	if got := m.ProbAllGood(bitset.FromIndices(0, 1)); math.Abs(got-0.25) > 1e-15 {
		t.Fatalf("cross-group ProbAllGood = %v, want 0.25", got)
	}
}

func TestSharedCauseSampleConvergence(t *testing.T) {
	m, _ := NewSharedCause([]int{0, 0}, []float64{0.3}, []float64{0.9, 0.9}, []float64{0.05, 0.05})
	fBoth := sampleFreq(m, 3, func(s *bitset.Set) bool { return !s.Contains(0) && !s.Contains(1) })
	want := m.ProbAllGood(bitset.FromIndices(0, 1))
	if math.Abs(fBoth-want) > 0.01 {
		t.Fatalf("empirical P(both good) = %v, exact %v", fBoth, want)
	}
}

func TestRouterBackedValidation(t *testing.T) {
	if _, err := NewRouterBacked([][]int{{}}, []float64{0.1}); err == nil {
		t.Fatal("empty backing accepted")
	}
	if _, err := NewRouterBacked([][]int{{3}}, []float64{0.1}); err == nil {
		t.Fatal("unknown router link accepted")
	}
	if _, err := NewRouterBacked([][]int{{0}}, []float64{-0.1}); err == nil {
		t.Fatal("bad router probability accepted")
	}
}

func TestRouterBackedExactProbabilities(t *testing.T) {
	// Logical links: 0 backed by routers {0,1}, 1 backed by {1,2} (share 1),
	// 2 backed by {3} (independent of both).
	m, err := NewRouterBacked([][]int{{0, 1}, {1, 2}, {3}}, []float64{0.1, 0.2, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Marginal(0), 1-0.9*0.8; math.Abs(got-want) > 1e-15 {
		t.Fatalf("Marginal(0) = %v, want %v", got, want)
	}
	// P(links 0,1 good) = (1−p0)(1−p1)(1−p2): shared router 1 counted once.
	if got, want := m.ProbAllGood(bitset.FromIndices(0, 1)), 0.9*0.8*0.7; math.Abs(got-want) > 1e-15 {
		t.Fatalf("ProbAllGood = %v, want %v", got, want)
	}
	groups := m.CorrelationGroups()
	if len(groups) != 2 {
		t.Fatalf("CorrelationGroups = %v, want {{0,1},{2}}", groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 1 {
		t.Fatalf("group 0 = %v", groups[0])
	}
	if len(groups[1]) != 1 || groups[1][0] != 2 {
		t.Fatalf("group 1 = %v", groups[1])
	}
}

func TestRouterBackedSampleConvergence(t *testing.T) {
	m, _ := NewRouterBacked([][]int{{0, 1}, {1}}, []float64{0.15, 0.25})
	f := sampleFreq(m, 4, func(s *bitset.Set) bool { return s.Contains(0) })
	if want := m.Marginal(0); math.Abs(f-want) > 0.01 {
		t.Fatalf("empirical %v, exact %v", f, want)
	}
	// Correlation check: P(X0 ∧ X1) = P(router1) + P(router0)·... exact via
	// 1 - P(good0) - P(good1) + P(both good).
	both := sampleFreq(m, 5, func(s *bitset.Set) bool { return s.Contains(0) && s.Contains(1) })
	exact := 1 - m.ProbAllGood(bitset.FromIndices(0)) - m.ProbAllGood(bitset.FromIndices(1)) + m.ProbAllGood(bitset.FromIndices(0, 1))
	if math.Abs(both-exact) > 0.01 {
		t.Fatalf("empirical joint %v, exact %v", both, exact)
	}
}

func TestTableValidationAndProbabilities(t *testing.T) {
	mk := func(states []SubsetProb) (*Table, error) {
		return NewTable(2, []GroupTable{{Links: []int{0, 1}, States: states}})
	}
	if _, err := mk([]SubsetProb{{Links: bitset.New(0), P: 0.5}}); err == nil {
		t.Fatal("non-normalized table accepted")
	}
	if _, err := mk([]SubsetProb{
		{Links: bitset.New(0), P: 0.5},
		{Links: bitset.FromIndices(5), P: 0.5},
	}); err == nil {
		t.Fatal("out-of-group state accepted")
	}
	tb, err := mk([]SubsetProb{
		{Links: bitset.New(0), P: 0.4},
		{Links: bitset.FromIndices(0), P: 0.1},
		{Links: bitset.FromIndices(1), P: 0.2},
		{Links: bitset.FromIndices(0, 1), P: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Marginal(0); math.Abs(got-0.4) > 1e-15 {
		t.Fatalf("Marginal(0) = %v, want 0.4", got)
	}
	if got := tb.ProbAllGood(bitset.FromIndices(0, 1)); math.Abs(got-0.4) > 1e-15 {
		t.Fatalf("ProbAllGood = %v, want 0.4", got)
	}
	if got := tb.ProbAllGood(bitset.FromIndices(1)); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("ProbAllGood({1}) = %v, want 0.5", got)
	}
}

func TestTableSampleMatchesDistribution(t *testing.T) {
	tb, err := NewTable(2, []GroupTable{{
		Links: []int{0, 1},
		States: []SubsetProb{
			{Links: bitset.New(0), P: 0.4},
			{Links: bitset.FromIndices(0), P: 0.1},
			{Links: bitset.FromIndices(1), P: 0.2},
			{Links: bitset.FromIndices(0, 1), P: 0.3},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	f := sampleFreq(tb, 6, func(s *bitset.Set) bool { return s.Contains(0) && s.Contains(1) })
	if math.Abs(f-0.3) > 0.01 {
		t.Fatalf("empirical P(S={0,1}) = %v, want ≈0.3", f)
	}
}

func TestAttackOverlay(t *testing.T) {
	base, _ := NewIndependent([]float64{0.1, 0.1, 0.1})
	if _, err := NewAttackOverlay(base, bitset.FromIndices(9), 0.5); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := NewAttackOverlay(base, bitset.FromIndices(0), 1.5); err == nil {
		t.Fatal("bad attack probability accepted")
	}
	m, err := NewAttackOverlay(base, bitset.FromIndices(0, 1), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Target marginal: q + (1−q)p = 0.2 + 0.8·0.1 = 0.28.
	if got := m.Marginal(0); math.Abs(got-0.28) > 1e-15 {
		t.Fatalf("target Marginal = %v, want 0.28", got)
	}
	if got := m.Marginal(2); math.Abs(got-0.1) > 1e-15 {
		t.Fatalf("non-target Marginal = %v, want 0.1", got)
	}
	// ProbAllGood of targets: (1−q)·(0.9)².
	if got, want := m.ProbAllGood(bitset.FromIndices(0, 1)), 0.8*0.81; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ProbAllGood(targets) = %v, want %v", got, want)
	}
	if got, want := m.ProbAllGood(bitset.FromIndices(2)), 0.9; math.Abs(got-want) > 1e-15 {
		t.Fatalf("ProbAllGood(non-target) = %v, want %v", got, want)
	}
	// Attack induces cross-link correlation: P(X0∧X1) >> p².
	f := sampleFreq(m, 7, func(s *bitset.Set) bool { return s.Contains(0) && s.Contains(1) })
	exact := 1 - m.ProbAllGood(bitset.FromIndices(0)) - m.ProbAllGood(bitset.FromIndices(1)) + m.ProbAllGood(bitset.FromIndices(0, 1))
	if math.Abs(f-exact) > 0.01 {
		t.Fatalf("empirical joint %v, exact %v", f, exact)
	}
}

// Property: SubsetDistribution sums to 1 and matches empirical frequencies
// for every model family.
func TestSubsetDistributionConsistency(t *testing.T) {
	ind, _ := NewIndependent([]float64{0.3, 0.6})
	sc, _ := NewSharedCause([]int{0, 0}, []float64{0.4}, []float64{0.7, 0.9}, []float64{0.05, 0.1})
	rb, _ := NewRouterBacked([][]int{{0, 1}, {1, 2}}, []float64{0.1, 0.2, 0.3})
	models := map[string]Model{"independent": ind, "sharedcause": sc, "routerbacked": rb}

	for name, m := range models {
		dist := SubsetDistribution(m, []int{0, 1})
		sum := 0.0
		for _, sp := range dist {
			if sp.P < 0 {
				t.Fatalf("%s: negative probability %v for %v", name, sp.P, sp.Links)
			}
			sum += sp.P
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: distribution sums to %v", name, sum)
		}
		for _, sp := range dist {
			sp := sp
			f := sampleFreq(m, 8, func(s *bitset.Set) bool {
				return s.Contains(0) == sp.Links.Contains(0) && s.Contains(1) == sp.Links.Contains(1)
			})
			if math.Abs(f-sp.P) > 0.012 {
				t.Fatalf("%s: empirical P(S=%v) = %v, exact %v", name, sp.Links, f, sp.P)
			}
		}
	}
}

func TestMarginalsHelper(t *testing.T) {
	m, _ := NewIndependent([]float64{0.1, 0.9})
	got := Marginals(m)
	if len(got) != 2 || got[0] != 0.1 || got[1] != 0.9 {
		t.Fatalf("Marginals = %v", got)
	}
}

var _ = topology.LinkID(0) // keep the import honest in case of refactors
