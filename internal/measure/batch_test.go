package measure

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/snapstore"
	"repro/internal/topology"
)

// randomBatchRows builds n random congestion rows over the given paths.
func randomBatchRows(rng *rand.Rand, paths, n int) []*bitset.Set {
	rows := make([]*bitset.Set, n)
	for t := range rows {
		rows[t] = bitset.New(paths)
		for i := 0; i < paths; i++ {
			if rng.Intn(4) == 0 {
				rows[t].Add(i)
			}
		}
	}
	return rows
}

// queryAll snapshots every observable the estimator exposes, as Float64bits
// where the value is a float, so comparisons are bit-exact.
func queryAll(t *testing.T, e *Empirical, paths int, sets []*bitset.Set) []uint64 {
	t.Helper()
	var out []uint64
	out = append(out, uint64(e.Snapshots()))
	for i := 0; i < paths; i++ {
		out = append(out, math.Float64bits(e.ProbPathGood(topology.PathID(i))))
	}
	for i := 0; i < paths; i++ {
		for j := i + 1; j < paths; j++ {
			out = append(out, math.Float64bits(e.ProbPairGood(topology.PathID(i), topology.PathID(j))))
		}
	}
	for _, s := range sets {
		out = append(out, math.Float64bits(e.ProbPathsGood(s)))
		out = append(out, math.Float64bits(e.ProbExactCongestedPaths(s)))
	}
	return out
}

// TestAppendBatchMatchesAppendLoop pins AppendBatch bit-identical to a
// per-row Append loop across batch shapes that exercise every eviction
// path: batches into an unfilled window, batches that exactly fill it,
// batches forcing partial and full displacement, batches larger than the
// window, and unbounded streaming estimators — with the pattern histogram
// live the whole time (materialized before the batches) so the incremental
// forget/record bookkeeping is pinned too.
func TestAppendBatchMatchesAppendLoop(t *testing.T) {
	const paths = 9
	rng := rand.New(rand.NewSource(31))
	sets := []*bitset.Set{
		bitset.New(paths),
		bitset.FromIndices(0, 3, 5),
		bitset.FromIndices(1, 2, 6, 8),
	}
	for _, window := range []int{0, 1, 64, 100, 257} { // 0 = unbounded
		build := func() *Empirical {
			if window == 0 {
				return NewStreaming(paths)
			}
			e, err := NewSlidingWindow(paths, window)
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		batched, looped := build(), build()
		seed := randomBatchRows(rng, paths, 3)
		batched.AppendBatch(seed[:1])
		for _, r := range seed[:1] {
			looped.Append(r)
		}
		// Materialize the histograms so every later batch maintains them.
		batched.ProbExactCongestedPaths(sets[1])
		looped.ProbExactCongestedPaths(sets[1])
		batchSizes := []int{1, 3, window / 2, window - 1, window, window + 7, 2*window + 3}
		for _, m := range batchSizes {
			if m < 1 {
				continue
			}
			rows := randomBatchRows(rng, paths, m)
			batched.AppendBatch(rows)
			for _, r := range rows {
				looped.Append(r)
			}
			got := queryAll(t, batched, paths, sets)
			want := queryAll(t, looped, paths, sets)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("window=%d batch=%d observable %d: batched %#x != looped %#x", window, m, k, got[k], want[k])
				}
			}
		}
	}
}

// TestPrimePairsParallelMatchesSerial pins PrimePairs bit-identical across
// count-worker settings {1, 2, 7, 8}: the cached pair probabilities after a
// parallel prime must equal a serial estimator's, bit for bit.
func TestPrimePairsParallelMatchesSerial(t *testing.T) {
	const paths, snapshots = 19, 3000
	rng := rand.New(rand.NewSource(37))
	rows := randomBatchRows(rng, paths, snapshots)
	var pairs []snapstore.Pair
	for q := 0; q < 200; q++ {
		pairs = append(pairs, snapstore.Pair{A: rng.Intn(paths), B: rng.Intn(paths)})
	}
	build := func(workers int) *Empirical {
		e := NewStreaming(paths)
		e.SetCountWorkers(workers)
		e.AppendBatch(rows)
		return e
	}
	serial := build(1)
	defer serial.Close()
	serial.PrimePairs(pairs)
	for _, workers := range []int{2, 7, 8} {
		par := build(workers)
		par.PrimePairs(pairs)
		for _, p := range pairs {
			got := par.ProbPairGood(topology.PathID(p.A), topology.PathID(p.B))
			want := serial.ProbPairGood(topology.PathID(p.A), topology.PathID(p.B))
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("workers=%d pair %v: parallel %v != serial %v", workers, p, got, want)
			}
		}
		if got := par.CountWorkers(); got != workers {
			t.Fatalf("CountWorkers = %d, want %d", got, workers)
		}
		par.Close()
		par.Close() // idempotent
	}
}

// TestProbPathsGoodMemoHitAllocs pins the allocation audit of the general
// ProbPathsGood path: once a set's probability is memoized, re-querying it
// must not allocate (zero-copy key lookup, reusable index buffer).
func TestProbPathsGoodMemoHitAllocs(t *testing.T) {
	const paths = 12
	rng := rand.New(rand.NewSource(41))
	e := NewStreaming(paths)
	e.AppendBatch(randomBatchRows(rng, paths, 500))
	set := bitset.FromIndices(1, 4, 7, 9)
	e.ProbPathsGood(set) // warm the memo
	if allocs := testing.AllocsPerRun(20, func() { e.ProbPathsGood(set) }); allocs != 0 {
		t.Fatalf("memoized ProbPathsGood: %.1f allocs/op, want 0", allocs)
	}
}
