package measure

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// randomWindowRows draws n random congested-path rows.
func randomWindowRows(rng *rand.Rand, paths, n int) []*bitset.Set {
	rows := make([]*bitset.Set, n)
	for t := range rows {
		s := bitset.New(paths)
		for i := 0; i < paths; i++ {
			if rng.Intn(3) == 0 {
				s.Add(i)
			}
		}
		rows[t] = s
	}
	return rows
}

// TestSlidingWindowMatchesBatch is the measurement layer's windowed==batch
// guarantee: at every point of a stream, a sliding-window estimator answers
// every query class (single, pair, larger set, pattern) bit-identically to a
// one-shot batch estimator over the retained rows.
func TestSlidingWindowMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const paths, window, n = 9, 70, 200 // window straddles a word boundary
	rows := randomWindowRows(rng, paths, n)

	win, err := NewSlidingWindow(paths, window)
	if err != nil {
		t.Fatal(err)
	}
	someSet := bitset.FromIndices(0, 3, 4, 7)
	for i, r := range rows {
		win.Append(r)
		// Touch the pattern histogram early so eviction maintains it
		// incrementally rather than rebuilding it lazily.
		_ = win.ProbExactCongestedPaths(r)
		if i%17 != 16 {
			continue
		}
		lo := i + 1 - window
		if lo < 0 {
			lo = 0
		}
		batch, err := NewEmpirical(netsim.NewRecordFromRows(paths, rows[lo:i+1]))
		if err != nil {
			t.Fatal(err)
		}
		if win.Snapshots() != batch.Snapshots() {
			t.Fatalf("t=%d: window holds %d snapshots, batch %d", i, win.Snapshots(), batch.Snapshots())
		}
		for p := 0; p < paths; p++ {
			if got, want := win.ProbPathGood(topology.PathID(p)), batch.ProbPathGood(topology.PathID(p)); got != want {
				t.Fatalf("t=%d path %d: windowed %v != batch %v", i, p, got, want)
			}
			for q := p + 1; q < paths; q++ {
				if got, want := win.ProbPairGood(topology.PathID(p), topology.PathID(q)), batch.ProbPairGood(topology.PathID(p), topology.PathID(q)); got != want {
					t.Fatalf("t=%d pair (%d,%d): windowed %v != batch %v", i, p, q, got, want)
				}
			}
		}
		if got, want := win.ProbPathsGood(someSet), batch.ProbPathsGood(someSet); got != want {
			t.Fatalf("t=%d set %v: windowed %v != batch %v", i, someSet, got, want)
		}
		for _, pat := range []*bitset.Set{rows[i], rows[lo], bitset.New(paths), someSet} {
			if got, want := win.ProbExactCongestedPaths(pat), batch.ProbExactCongestedPaths(pat); got != want {
				t.Fatalf("t=%d pattern %v: windowed %v != batch %v", i, pat, got, want)
			}
		}
		freqW, freqB := win.PathCongestionFrequency(), batch.PathCongestionFrequency()
		for p := range freqW {
			if freqW[p] != freqB[p] {
				t.Fatalf("t=%d path %d frequency: windowed %v != batch %v", i, p, freqW[p], freqB[p])
			}
		}
	}
}

// TestSlidingWindowHistogramStaysBounded verifies eviction actually forgets
// patterns: after streaming far past the window, at most window histogram
// entries are live (non-zero), and the total entry count — live plus the
// zero-count slack retained so recurring patterns re-increment their boxed
// counter allocation-free — stays bounded by the sweep at
// window + maxDeadPatterns even when every snapshot brings a brand-new
// pattern.
func TestSlidingWindowHistogramStaysBounded(t *testing.T) {
	const paths, window = 96, 16
	win, err := NewSlidingWindow(paths, window)
	if err != nil {
		t.Fatal(err)
	}
	// Stream far more distinct patterns than the dead-entry slack so the
	// sweep must fire: snapshot i congests a distinct pair of paths.
	distinct := 0
	for a := 0; a < paths && distinct < 3*maxDeadPatterns; a++ {
		for b := a + 1; b < paths && distinct < 3*maxDeadPatterns; b++ {
			win.Append(bitset.FromIndices(a, b))
			_ = win.ProbExactCongestedPaths(bitset.New(paths)) // keep histogram live
			distinct++
		}
	}
	if distinct < 2*maxDeadPatterns {
		t.Fatalf("test generated only %d distinct patterns; need > %d to exercise the sweep", distinct, 2*maxDeadPatterns)
	}
	win.mu.Lock()
	entries := len(win.patterns)
	live := 0
	for _, v := range win.patterns {
		if *v > 0 {
			live++
		}
	}
	win.mu.Unlock()
	if live > window {
		t.Fatalf("pattern histogram holds %d live entries, want ≤ %d", live, window)
	}
	if entries > window+maxDeadPatterns {
		t.Fatalf("pattern histogram holds %d entries, want ≤ %d", entries, window+maxDeadPatterns)
	}
}

// TestSlidingWindowEvict exercises the explicit-expiry path down to an empty
// window, whose probabilities must degrade to the empty-stream convention
// (0 everywhere, 1 for the empty set) rather than NaN.
func TestSlidingWindowEvict(t *testing.T) {
	const paths, window = 5, 8
	win, err := NewSlidingWindow(paths, window)
	if err != nil {
		t.Fatal(err)
	}
	rows := randomWindowRows(rand.New(rand.NewSource(12)), paths, 4)
	for _, r := range rows {
		win.Append(r)
	}
	for i := 0; i < len(rows); i++ {
		if !win.Evict() {
			t.Fatalf("evict %d reported empty window", i)
		}
	}
	if win.Evict() {
		t.Fatal("evict on empty window reported true")
	}
	if p := win.ProbPathGood(0); p != 0 || math.IsNaN(p) {
		t.Fatalf("empty window ProbPathGood = %v, want 0", p)
	}
	if p := win.ProbPathsGood(bitset.New(paths)); p != 1 {
		t.Fatalf("empty window ProbPathsGood(∅) = %v, want 1", p)
	}
}

func TestSlidingWindowErrors(t *testing.T) {
	if _, err := NewSlidingWindow(4, 0); err == nil {
		t.Fatal("NewSlidingWindow(4, 0) succeeded, want error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Evict on a non-windowed estimator did not panic")
		}
	}()
	NewStreaming(4).Evict()
}
