package measure

import (
	"math"
	"testing"

	"repro/internal/bitset"
	"repro/internal/segstore"
	"repro/internal/topology"
)

// TestSpillWindowMatchesRAM drives a RAM sliding-window estimator and a
// spill-backed one through the same append/evict/batch sequence and
// requires every probability surface to agree to the bit
// (math.Float64bits) at every checkpoint — the estimator-level half of the
// tiered-store bit-identity contract, covering windows whose head sits
// mid-segment, fully sealed windows, and the pattern histogram.
func TestSpillWindowMatchesRAM(t *testing.T) {
	const (
		paths   = 40
		window  = 300 // not a multiple of segRows
		segRows = 128
		steps   = 900
	)
	ram, err := NewSlidingWindow(paths, window)
	if err != nil {
		t.Fatal(err)
	}
	defer ram.Close()
	spill, err := NewSlidingWindowSpill(paths, window, segstore.Options{
		Dir: t.TempDir(), SegmentRows: segRows,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer spill.Close()

	var pairs []Pair
	for i := 0; i < paths; i += 3 {
		for j := i + 1; j < paths; j += 5 {
			pairs = append(pairs, Pair{A: i, B: j})
		}
	}
	set := bitset.FromIndices(1, 2, 7, 33)
	pattern := bitset.New(paths)

	check := func(step int) {
		t.Helper()
		if ram.Snapshots() != spill.Snapshots() {
			t.Fatalf("step %d: RAM %d snapshots, spill %d", step, ram.Snapshots(), spill.Snapshots())
		}
		for i := 0; i < paths; i++ {
			a := ram.ProbPathGood(topology.PathID(i))
			b := spill.ProbPathGood(topology.PathID(i))
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("step %d: P(path %d good) RAM %v, spill %v", step, i, a, b)
			}
		}
		ram.PrimePairs(pairs)
		spill.PrimePairs(pairs)
		for _, p := range pairs {
			a := ram.ProbPairGood(topology.PathID(p.A), topology.PathID(p.B))
			b := spill.ProbPairGood(topology.PathID(p.A), topology.PathID(p.B))
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("step %d: P(pair %v good) RAM %v, spill %v", step, p, a, b)
			}
		}
		if a, b := ram.ProbPathsGood(set), spill.ProbPathsGood(set); math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("step %d: P(set good) RAM %v, spill %v", step, a, b)
		}
		fa, fb := ram.PathCongestionFrequency(), spill.PathCongestionFrequency()
		for i := range fa {
			if math.Float64bits(fa[i]) != math.Float64bits(fb[i]) {
				t.Fatalf("step %d: congestion frequency[%d] RAM %v, spill %v", step, i, fa[i], fb[i])
			}
		}
		if a, b := ram.ProbExactCongestedPaths(pattern), spill.ProbExactCongestedPaths(pattern); math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("step %d: P(exact pattern) RAM %v, spill %v", step, a, b)
		}
	}

	row := bitset.New(paths)
	var batch []*bitset.Set
	for step := 0; step < steps; step++ {
		switch {
		case step%151 == 150:
			// Batch append spanning a seal boundary.
			batch = batch[:0]
			for k := 0; k < 73; k++ {
				r := bitset.New(paths)
				for i := 0; i < paths; i++ {
					if (step+k*13+i*29)%7 == 0 {
						r.Add(i)
					}
				}
				batch = append(batch, r)
			}
			ram.AppendBatch(batch)
			spill.AppendBatch(batch)
		case step%67 == 66:
			if ram.Evict() != spill.Evict() {
				t.Fatalf("step %d: Evict disagreed", step)
			}
		default:
			row.Clear()
			for i := 0; i < paths; i++ {
				if (step*31+i*17+step*i)%9 == 0 {
					row.Add(i)
				}
			}
			pattern.CopyFrom(row) // query a pattern that actually occurs
			ram.Append(row)
			spill.Append(row)
		}
		if step%29 == 0 || step == steps-1 {
			check(step)
		}
	}
	if spill.SpillStore() == nil || spill.SpillStore().SealedSegments() == 0 {
		t.Fatal("spill estimator never sealed a segment")
	}
	if ram.Store() == nil || spill.Store() != nil {
		t.Fatal("Store()/SpillStore() accessors wired to the wrong backend")
	}
}
