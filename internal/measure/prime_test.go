package measure

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/snapstore"
	"repro/internal/topology"
)

// TestPrimePairsMatchesPerPairLookups pins the batched pair fill: priming a
// pair set and then reading ProbPairGood must be bit-identical to querying a
// fresh estimator pair by pair, on both unbounded and sliding-window
// estimators, including self-pairs and unordered duplicates.
func TestPrimePairsMatchesPerPairLookups(t *testing.T) {
	const paths, snapshots, window = 23, 900, 256
	rng := rand.New(rand.NewSource(9))
	rows := make([]*bitset.Set, snapshots)
	for ti := range rows {
		rows[ti] = bitset.New(paths)
		for i := 0; i < paths; i++ {
			if rng.Intn(4) == 0 {
				rows[ti].Add(i)
			}
		}
	}

	var pairs []snapstore.Pair
	for q := 0; q < 300; q++ {
		pairs = append(pairs, snapstore.Pair{A: rng.Intn(paths), B: rng.Intn(paths)})
	}

	build := func(windowed bool) *Empirical {
		var e *Empirical
		if windowed {
			var err error
			e, err = NewSlidingWindow(paths, window)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			e = NewStreaming(paths)
		}
		for _, r := range rows {
			e.Append(r)
		}
		return e
	}

	for _, windowed := range []bool{false, true} {
		primed := build(windowed)
		primed.PrimePairs(pairs)
		fresh := build(windowed)
		for _, p := range pairs {
			got := primed.ProbPairGood(topology.PathID(p.A), topology.PathID(p.B))
			want := fresh.ProbPairGood(topology.PathID(p.A), topology.PathID(p.B))
			if got != want {
				t.Fatalf("windowed=%v pair %v: primed %v != per-pair %v", windowed, p, got, want)
			}
		}
	}
}

// TestPrimePairsEmpty pins the no-op edges: an empty estimator and an empty
// pair list must not disturb anything.
func TestPrimePairsEmpty(t *testing.T) {
	e := NewStreaming(4)
	e.PrimePairs([]snapstore.Pair{{A: 0, B: 1}}) // zero snapshots: no-op
	if got := e.ProbPairGood(0, 1); got != 0 {
		t.Fatalf("empty-stream pair probability = %v, want 0", got)
	}
	e.Append(bitset.FromIndices(0))
	e.PrimePairs(nil)
	if got := e.ProbPairGood(0, 1); got != 0 {
		t.Fatalf("pair probability after congesting path 0 = %v, want 0", got)
	}
}
