package measure

import (
	"math"
	"testing"

	"repro/internal/bitset"
	"repro/internal/congestion"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// fig1aTable builds the Figure-1(a) ground truth as an explicit joint table:
// correlation set {e1,e2} with a correlated joint, singletons e3 and e4.
func fig1aTable(t *testing.T) congestion.Model {
	t.Helper()
	m, err := congestion.NewTable(4, []congestion.GroupTable{
		{
			Links: []int{0, 1},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: 0.60},
				{Links: bitset.FromIndices(0), P: 0.10},
				{Links: bitset.FromIndices(1), P: 0.12},
				{Links: bitset.FromIndices(0, 1), P: 0.18}, // >> 0.10·0.12: correlated
			},
		},
		{
			Links: []int{2},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: 0.8},
				{Links: bitset.FromIndices(2), P: 0.2},
			},
		},
		{
			Links: []int{3},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: 0.9},
				{Links: bitset.FromIndices(3), P: 0.1},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExactProbPathsGood(t *testing.T) {
	top := topology.Figure1A()
	model := fig1aTable(t)
	ex, err := NewExact(top, model)
	if err != nil {
		t.Fatal(err)
	}
	// P(P1 good) = P(e1, e3 good) = P(S¹ ∌ e1)·P(e3 good) = (0.60+0.12)·0.8.
	want := 0.72 * 0.8
	if got := ex.ProbPathsGood(bitset.FromIndices(0)); math.Abs(got-want) > 1e-12 {
		t.Fatalf("P(P1 good) = %v, want %v", got, want)
	}
	// P(all paths good) = P(all links good) = 0.60·0.8·0.9.
	all := bitset.FromIndices(0, 1, 2)
	if got, want := ex.ProbPathsGood(all), 0.6*0.8*0.9; math.Abs(got-want) > 1e-12 {
		t.Fatalf("P(all good) = %v, want %v", got, want)
	}
	if got := ex.ProbPathsGood(bitset.New(0)); got != 1 {
		t.Fatalf("P(∅ good) = %v, want 1", got)
	}
}

// TestExactPatternMatchesAppendixExample verifies the Appendix-A worked
// example: P(ψ(S) = {P1,P2,P3}) — all paths congested — is the sum over the
// eight listed network states.
func TestExactPatternMatchesAppendixExample(t *testing.T) {
	top := topology.Figure1A()
	model := fig1aTable(t)
	ex, err := NewExact(top, model)
	if err != nil {
		t.Fatal(err)
	}
	// Per-set state probabilities from fig1aTable:
	s1 := map[string]float64{"": 0.60, "e1": 0.10, "e2": 0.12, "e1e2": 0.18}
	s2 := map[string]float64{"": 0.8, "e3": 0.2}
	s3 := map[string]float64{"": 0.9, "e4": 0.1}
	// The eight states of the appendix illustration:
	want := s1["e1e2"]*s2[""]*s3[""] +
		s1["e1e2"]*s2["e3"]*s3[""] +
		s1["e1e2"]*s2[""]*s3["e4"] +
		s1["e1e2"]*s2["e3"]*s3["e4"] +
		s1[""]*s2["e3"]*s3["e4"] +
		s1["e1"]*s2["e3"]*s3["e4"] +
		s1["e2"]*s2["e3"]*s3["e4"] +
		s1["e2"]*s2["e3"]*s3[""]
	got := ex.ProbExactCongestedPaths(bitset.FromIndices(0, 1, 2))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("P(all paths congested) = %v, want %v", got, want)
	}
}

func TestExactPatternDistributionSumsToOne(t *testing.T) {
	top := topology.Figure1A()
	ex, err := NewExact(top, fig1aTable(t))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for mask := 0; mask < 8; mask++ {
		q := bitset.New(3)
		for b := 0; b < 3; b++ {
			if mask&(1<<b) != 0 {
				q.Add(b)
			}
		}
		sum += ex.ProbExactCongestedPaths(q)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("pattern probabilities sum to %v", sum)
	}
}

func TestEmpiricalConvergesToExact(t *testing.T) {
	if testing.Short() {
		t.Skip("slow convergence test; run without -short")
	}
	top := topology.Figure1A()
	model := fig1aTable(t)
	rec, err := netsim.Run(netsim.Config{
		Topology: top, Model: model, Snapshots: 200000, Seed: 5, Mode: netsim.StateLevel,
	})
	if err != nil {
		t.Fatal(err)
	}
	emp, err := NewEmpirical(rec)
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := NewExact(top, model)

	if emp.NumPaths() != 3 || emp.Snapshots() != 200000 {
		t.Fatalf("empirical shape: %d paths, %d snapshots", emp.NumPaths(), emp.Snapshots())
	}
	queries := []*bitset.Set{
		bitset.FromIndices(0),
		bitset.FromIndices(1),
		bitset.FromIndices(2),
		bitset.FromIndices(0, 1),
		bitset.FromIndices(1, 2),
		bitset.FromIndices(0, 1, 2),
		bitset.New(0),
	}
	for _, q := range queries {
		got, want := emp.ProbPathsGood(q), ex.ProbPathsGood(q)
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("ProbPathsGood(%v): empirical %v, exact %v", q, got, want)
		}
	}
	for mask := 0; mask < 8; mask++ {
		q := bitset.New(3)
		for b := 0; b < 3; b++ {
			if mask&(1<<b) != 0 {
				q.Add(b)
			}
		}
		got, want := emp.ProbExactCongestedPaths(q), ex.ProbExactCongestedPaths(q)
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("pattern %v: empirical %v, exact %v", q, got, want)
		}
	}
}

func TestEmpiricalHelpers(t *testing.T) {
	top := topology.Figure1A()
	model := fig1aTable(t)
	rec, err := netsim.Run(netsim.Config{
		Topology: top, Model: model, Snapshots: 50000, Seed: 6, Mode: netsim.StateLevel,
	})
	if err != nil {
		t.Fatal(err)
	}
	emp, err := NewEmpirical(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := emp.ProbPathGood(0), emp.ProbPathsGood(bitset.FromIndices(0)); got != want {
		t.Fatalf("ProbPathGood mismatch: %v vs %v", got, want)
	}
	if got, want := emp.ProbPairGood(0, 1), emp.ProbPathsGood(bitset.FromIndices(0, 1)); got != want {
		t.Fatalf("ProbPairGood mismatch: %v vs %v", got, want)
	}
	freq := emp.PathCongestionFrequency()
	for i, f := range freq {
		if math.Abs((1-f)-emp.ProbPathGood(topology.PathID(i))) > 1e-12 {
			t.Fatalf("path %d: frequency %v inconsistent with ProbPathGood", i, f)
		}
	}
}

func TestNewExactSizeMismatch(t *testing.T) {
	model, _ := congestion.NewIndependent([]float64{0.5})
	if _, err := NewExact(topology.Figure1A(), model); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestExactPatternRejectsHugeSets(t *testing.T) {
	// Build a correlation set of 16 links: the exact pattern source must
	// refuse (documented ≤15 limit) via panic from ProbExactCongestedPaths.
	b := topology.NewBuilder()
	hub := b.AddNode()
	var links []topology.LinkID
	for i := 0; i < 16; i++ {
		dst := b.AddNode()
		l := b.AddLink(hub, dst, "")
		links = append(links, l)
		src := b.AddNode()
		acc := b.AddLink(src, hub, "")
		b.AddPath("", acc, l)
	}
	b.Correlate(links...)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, top.NumLinks())
	model, err := congestion.NewIndependent(p)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExact(top, model)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized correlation set")
		}
	}()
	ex.ProbExactCongestedPaths(bitset.New(top.NumPaths()))
}
