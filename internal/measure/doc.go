// Package measure turns simulation records into the probability estimates
// the tomography algorithms consume, and provides exact (closed-form)
// counterparts computed directly from a congestion model for validation.
//
// Two query interfaces cover the two algorithm families:
//
//   - Source supplies P(a set of paths is all-good) — the only measurement
//     the practical Section-4 algorithm needs: the left-hand sides of the
//     single-path equations (Eq. 9) and pair equations (Eq. 10) are
//     logarithms of exactly these probabilities.
//   - PatternSource supplies P(the congested-path set is exactly Q) — the
//     finer-grained measurement the Appendix-A theorem algorithm needs to
//     solve Eq. 18.
//
// Empirical estimates both from an observed netsim.Record (Section 5's
// simulated measurements); Exact computes them in closed form from a
// congestion model, which is how the tests separate estimation error from
// algorithmic error.
package measure
