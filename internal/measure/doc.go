// Package measure turns snapshot observations into the probability
// estimates the tomography algorithms consume, and provides exact
// (closed-form) counterparts computed directly from a congestion model for
// validation.
//
// Two query interfaces cover the two algorithm families:
//
//   - Source supplies P(a set of paths is all-good) — the only measurement
//     the practical Section-4 algorithm needs: the left-hand sides of the
//     single-path equations (Eq. 9) and pair equations (Eq. 10) are
//     logarithms of exactly these probabilities.
//   - PatternSource supplies P(the congested-path set is exactly Q) — the
//     finer-grained measurement the Appendix-A theorem algorithm needs to
//     solve Eq. 18.
//
// FastPairSource is an optional third interface: an O(1)-amortized route
// for the single-path and path-pair queries that dominate equation
// building, bypassing path-set materialization entirely.
//
// Empirical estimates all three from columnar observations (a path-major
// snapstore.Store, as produced by netsim or fed incrementally): each query
// is an OR of bit columns plus a popcount rather than a scan over row-major
// snapshots, and repeated queries hit per-path, per-pair, and per-set memo
// caches. Construct it with NewEmpirical over a finished netsim.Record, or
// with NewStreaming and Append for online estimation — the pattern
// histogram is maintained incrementally, so estimates can be queried
// mid-stream and are always identical to a one-shot batch over the same
// snapshots.
//
// Exact computes the same quantities in closed form from a congestion
// model, which is how the tests separate estimation error from algorithmic
// error.
package measure
