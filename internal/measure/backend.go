package measure

import (
	"repro/internal/bitset"
	"repro/internal/snapstore"
)

// columnBackend is the storage-and-counting seam an Empirical estimator
// runs on: path-major bit columns with window semantics and the batched
// count kernels. Two implementations exist — ringColumns wraps the
// RAM-resident snapstore.Store (the default), and segstore.TieredStore
// spills sealed column segments to disk and counts across the tier
// boundary (NewSlidingWindowSpill). The estimator's probabilities are pure
// functions of the integer counts this interface returns, so any two
// backends holding the same retained rows produce bit-identical estimates.
type columnBackend interface {
	NumSeries() int
	Snapshots() int
	Capacity() int
	// AppendEvict ingests one snapshot, evicting the oldest retained one
	// first when the window is full; the evicted row is left in evicted
	// when non-nil. Passing evicted == nil lets a backend skip
	// materializing the row (the out-of-core backend pays O(series) for
	// it).
	AppendEvict(congested, evicted *bitset.Set) bool
	// AppendEvictWords is AppendEvict with the snapshot as packed words
	// (bit i of word w ⇒ series w*64+i congested) — the wire-ingest path
	// that appends straight from a decoded wire row without materializing
	// a bitset per snapshot. Bit-identical to AppendEvict.
	AppendEvictWords(rowWords []uint64, evicted *bitset.Set) bool
	EvictOldest(evicted *bitset.Set) bool
	DropOldest(k int) int
	RowInto(t int, dst *bitset.Set)
	CongestedCount(i int) int
	// CountAllGood counts the retained snapshots in which none of the
	// given series was congested; any scratch it needs is its own.
	CountAllGood(series []int) int
	CountPairGood(i, j int) int
	CountPairsGood(pairs []Pair, out []int, workers int)
	Close()
}

// ringColumns adapts snapstore.Store to the backend seam, owning the
// OR-reduction scratch and the parallel count workspace the store's
// kernels take as arguments.
type ringColumns struct {
	store   *snapstore.Store
	scratch []uint64
	ws      snapstore.CountWorkspace
}

func newRingColumns(store *snapstore.Store) *ringColumns { return &ringColumns{store: store} }

func (rc *ringColumns) NumSeries() int { return rc.store.NumSeries() }
func (rc *ringColumns) Snapshots() int { return rc.store.Snapshots() }
func (rc *ringColumns) Capacity() int  { return rc.store.Capacity() }

func (rc *ringColumns) AppendEvict(congested, evicted *bitset.Set) bool {
	return rc.store.AppendEvict(congested, evicted)
}
func (rc *ringColumns) AppendEvictWords(rowWords []uint64, evicted *bitset.Set) bool {
	return rc.store.AppendEvictWords(rowWords, evicted)
}
func (rc *ringColumns) EvictOldest(evicted *bitset.Set) bool { return rc.store.EvictOldest(evicted) }
func (rc *ringColumns) DropOldest(k int) int                 { return rc.store.DropOldest(k) }
func (rc *ringColumns) RowInto(t int, dst *bitset.Set)       { rc.store.RowInto(t, dst) }
func (rc *ringColumns) CongestedCount(i int) int             { return rc.store.CongestedCount(i) }

func (rc *ringColumns) CountAllGood(series []int) int {
	if w := rc.store.Words(); cap(rc.scratch) < w {
		rc.scratch = make([]uint64, w)
	}
	return rc.store.CountAllGood(series, rc.scratch)
}

// CountPairGood is the two-column fused OR+POPCNT — the per-pair miss path
// behind the pair cache.
func (rc *ringColumns) CountPairGood(i, j int) int {
	return rc.store.Snapshots() - bitset.OrPopCountWords(rc.store.Column(i), rc.store.Column(j))
}

func (rc *ringColumns) CountPairsGood(pairs []Pair, out []int, workers int) {
	rc.store.CountPairsGoodWS(&rc.ws, pairs, out, workers)
}

// Close parks the workspace's pool goroutines; the backend remains usable
// (the pool respawns on the next parallel count).
func (rc *ringColumns) Close() { rc.ws.Close() }
