package measure

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/congestion"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// Source provides "all paths in the set are good" probabilities.
type Source interface {
	// NumPaths returns the number of paths in the underlying experiment.
	NumPaths() int
	// ProbPathsGood returns P(every path in the set is good). An empty set
	// yields 1.
	ProbPathsGood(paths *bitset.Set) float64
}

// PatternSource provides exact congested-pattern probabilities.
type PatternSource interface {
	// ProbExactCongestedPaths returns P(the set of congested paths equals
	// exactly the given set).
	ProbExactCongestedPaths(paths *bitset.Set) float64
}

// Empirical estimates probabilities as frequencies over a simulation record.
type Empirical struct {
	rec *netsim.Record
	// patternCount caches pattern-key → number of snapshots.
	patternCount map[string]int
}

// NewEmpirical wraps a simulation record.
func NewEmpirical(rec *netsim.Record) *Empirical {
	e := &Empirical{rec: rec, patternCount: make(map[string]int)}
	for _, s := range rec.CongestedPaths {
		e.patternCount[s.Key()]++
	}
	return e
}

// NumPaths implements Source.
func (e *Empirical) NumPaths() int { return e.rec.NumPaths }

// Snapshots returns the number of snapshots backing the estimates.
func (e *Empirical) Snapshots() int { return e.rec.Snapshots() }

// ProbPathsGood implements Source: the fraction of snapshots in which no
// path of the set was congested.
func (e *Empirical) ProbPathsGood(paths *bitset.Set) float64 {
	hits := 0
	for _, s := range e.rec.CongestedPaths {
		if !s.Intersects(paths) {
			hits++
		}
	}
	return float64(hits) / float64(e.rec.Snapshots())
}

// ProbPathGood returns P(path i good).
func (e *Empirical) ProbPathGood(i topology.PathID) float64 {
	return e.ProbPathsGood(bitset.FromIndices(int(i)))
}

// ProbPairGood returns P(paths i and j both good).
func (e *Empirical) ProbPairGood(i, j topology.PathID) float64 {
	return e.ProbPathsGood(bitset.FromIndices(int(i), int(j)))
}

// ProbExactCongestedPaths implements PatternSource via the cached pattern
// histogram.
func (e *Empirical) ProbExactCongestedPaths(paths *bitset.Set) float64 {
	return float64(e.patternCount[paths.Key()]) / float64(e.rec.Snapshots())
}

// PathCongestionFrequency returns, per path, the fraction of snapshots in
// which it was congested — the paper's E(YPi).
func (e *Empirical) PathCongestionFrequency() []float64 {
	out := make([]float64, e.rec.NumPaths)
	for _, s := range e.rec.CongestedPaths {
		s.ForEach(func(i int) bool {
			out[i]++
			return true
		})
	}
	n := float64(e.rec.Snapshots())
	for i := range out {
		out[i] /= n
	}
	return out
}

// Exact computes the same quantities in closed form from a congestion model
// under Assumption 2 (separability). ProbPathsGood is exact for topologies
// and models of any size; ProbExactCongestedPaths enumerates correlation-set
// states and is restricted to small correlation sets (tests and toys).
type Exact struct {
	top   *topology.Topology
	model congestion.Model

	// Per correlation set: the exact subset distribution and each subset's
	// path coverage, materialized lazily for pattern queries.
	states [][]exactState
}

type exactState struct {
	links    *bitset.Set
	coverage *bitset.Set
	p        float64
}

// NewExact builds an exact source for the topology/model pair.
func NewExact(top *topology.Topology, model congestion.Model) (*Exact, error) {
	if top.NumLinks() != model.NumLinks() {
		return nil, fmt.Errorf("measure: topology has %d links, model %d", top.NumLinks(), model.NumLinks())
	}
	return &Exact{top: top, model: model}, nil
}

// NumPaths implements Source.
func (e *Exact) NumPaths() int { return e.top.NumPaths() }

// ProbPathsGood implements Source: all paths good ⇔ every link on them good
// (Assumption 2), so the answer is ProbAllGood over the union of their links.
func (e *Exact) ProbPathsGood(paths *bitset.Set) float64 {
	links := bitset.New(e.top.NumLinks())
	paths.ForEach(func(i int) bool {
		links.UnionWith(e.top.PathLinkSet(topology.PathID(i)))
		return true
	})
	return e.model.ProbAllGood(links)
}

// materialize builds the per-set state tables (once).
func (e *Exact) materialize() error {
	if e.states != nil {
		return nil
	}
	states := make([][]exactState, e.top.NumSets())
	for p := 0; p < e.top.NumSets(); p++ {
		links := e.top.CorrelationSet(p).Indices()
		if len(links) > 15 {
			return fmt.Errorf("measure: correlation set %d has %d links; exact pattern probabilities are limited to ≤15", p, len(links))
		}
		dist := congestion.SubsetDistribution(e.model, links)
		for _, sp := range dist {
			states[p] = append(states[p], exactState{
				links:    sp.Links,
				coverage: e.top.Coverage(sp.Links),
				p:        sp.P,
			})
		}
	}
	e.states = states
	return nil
}

// ProbExactCongestedPaths implements PatternSource by depth-first
// enumeration of per-set states whose coverage stays within the target
// pattern, requiring the union to equal the pattern exactly.
func (e *Exact) ProbExactCongestedPaths(paths *bitset.Set) float64 {
	if err := e.materialize(); err != nil {
		panic(err) // construction-time contract: documented size limit
	}
	var rec func(set int, covered *bitset.Set) float64
	rec = func(set int, covered *bitset.Set) float64 {
		if set == len(e.states) {
			if covered.Equal(paths) {
				return 1
			}
			return 0
		}
		total := 0.0
		for _, st := range e.states[set] {
			if st.p == 0 {
				continue
			}
			if !st.coverage.IsSubsetOf(paths) {
				continue
			}
			next := bitset.Union(covered, st.coverage)
			total += st.p * rec(set+1, next)
		}
		return total
	}
	return rec(0, bitset.New(e.top.NumPaths()))
}
