package measure

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/bitset"
	"repro/internal/congestion"
	"repro/internal/netsim"
	"repro/internal/segstore"
	"repro/internal/snapstore"
	"repro/internal/topology"
)

// Source provides "all paths in the set are good" probabilities.
type Source interface {
	// NumPaths returns the number of paths in the underlying experiment.
	NumPaths() int
	// ProbPathsGood returns P(every path in the set is good). An empty set
	// yields 1.
	ProbPathsGood(paths *bitset.Set) float64
}

// PatternSource provides exact congested-pattern probabilities.
type PatternSource interface {
	// ProbExactCongestedPaths returns P(the set of congested paths equals
	// exactly the given set).
	ProbExactCongestedPaths(paths *bitset.Set) float64
}

// FastPairSource is an optional fast path over Source: sources that answer
// single-path and path-pair queries without materializing a path set.
// BuildEquations routes its (dominant) one- and two-path lookups through it
// when available.
type FastPairSource interface {
	// ProbPathGood returns P(path i good).
	ProbPathGood(i topology.PathID) float64
	// ProbPairGood returns P(paths i and j both good).
	ProbPairGood(i, j topology.PathID) float64
}

// Pair identifies one unordered pair of paths for the batched count kernels.
type Pair = snapstore.Pair

// BatchPairSource is an optional batching hook over FastPairSource: a
// source that can resolve many pair probabilities in one cache-blocked pass
// over its storage. Compiled evaluate phases (core.Structure, mle.Plan) know
// their full pair query set up front and call PrimePairs once per estimate
// instead of streaming the columns once per pair.
type BatchPairSource interface {
	FastPairSource
	// PrimePairs makes subsequent ProbPairGood calls for the given pairs
	// cache hits, resolving any misses in one batched pass. Values are
	// identical to per-pair ProbPairGood lookups.
	PrimePairs(pairs []Pair)
}

// PatternKeySource is an optional allocation-free fast path over
// PatternSource: pattern probabilities keyed by the congested-path set's
// precomputed bitset.Key. Compiled evaluate phases (core.TheoremPlan) hold
// the keys of every pattern they query, so the per-query set materialization
// and key encoding disappear.
type PatternKeySource interface {
	// ProbCongestedPatternKey returns P(the congested-path set's Key equals
	// key) — ProbExactCongestedPaths with the set pre-encoded.
	ProbCongestedPatternKey(key string) float64
}

// cache-size caps: when a memo map outgrows its cap it is reset wholesale.
// The workloads that hit the caches (equation building, repeated estimation
// rounds on a stream) re-query a bounded set of keys, so resets are rare and
// a full LRU chain is not worth its overhead.
const (
	maxMemoEntries = 1 << 17
	maxPairEntries = 1 << 19
)

// Empirical estimates probabilities as frequencies over columnar snapshot
// observations. Queries run on the path-major bit columns of a
// snapstore.Store: P(path set all good) is an OR of the set's columns plus a
// popcount, O(snapshots/64 · |paths|) with sequential memory access.
//
// Repeated queries are memoized: single-path and pair probabilities (the
// bulk of BuildEquations' lookups) in dedicated caches, arbitrary path sets
// in a bounded memo keyed by the set's content key. All methods are safe for
// concurrent use, except Append which must not run concurrently with
// queries or other Appends.
type Empirical struct {
	// cols is the storage/counting backend: RAM ring columns by default,
	// the out-of-core tiered segment store for spill-enabled windows. The
	// estimator is a pure function of the integer counts cols returns.
	cols columnBackend
	// ring is the RAM store when cols wraps one (the Store accessor);
	// nil for a spill-backed estimator.
	ring *snapstore.Store
	// tiered is the segment store when cols is one (the SpillStore
	// accessor); nil otherwise.
	tiered *segstore.TieredStore
	// streaming marks estimators that own their store (NewStreaming).
	// Record-backed estimators alias the record's path store, where an
	// Append would silently desync the record's link store — so only
	// streaming estimators accept Append.
	streaming bool
	// view marks an immutable snapshot view built by SnapshotView: a frozen
	// copy of another estimator's window that answers every query
	// bit-identically but rejects all mutation. Views are what the serving
	// layer's estimate replicas read while the source keeps appending.
	view bool

	mu     sync.Mutex
	single []float64          // per-path P(good); NaN = not yet computed
	pairs  map[int64]float64  // i*NumPaths+j (i<j) → P(both good)
	memo   map[string]float64 // path-set key → P(all good), for |set| > 2
	// patterns is the congested-pattern histogram (pattern key → snapshot
	// count). nil until a PatternSource query materializes it; maintained
	// incrementally by Append (and Evict, for sliding windows) afterwards.
	// Counts are boxed so the steady-state increment/decrement of a known
	// pattern is a pure map read — no per-Append key-string allocation.
	patterns map[string]*int
	// deadPatterns counts histogram entries currently at zero (see
	// maxDeadPatterns).
	deadPatterns int
	// evictScratch receives the evicted row of a sliding-window Append so
	// the pattern histogram can forget it incrementally.
	evictScratch *bitset.Set
	// keyBuf is the reusable pattern-key encoding buffer (histogram lookups
	// use the zero-copy m[string(buf)] form).
	keyBuf []byte
	// pairBuf/pairCounts are the batched-pair-kernel scratch of PrimePairs.
	pairBuf    []snapstore.Pair
	pairCounts []int
	// idxBuf is the reusable index buffer of ProbPathsGood's general case.
	idxBuf []int
	// countWorkers is handed to the backend's batched pair-count kernel:
	// the RAM backend fans snapstore.CountPairsGoodWS across that many
	// workers (block-summary skips always; bit-identical for every
	// setting), the tiered backend counts serially and ignores it.
	countWorkers int
}

// NewEmpirical wraps a simulation record. It returns an error for a nil or
// empty record: zero snapshots admit no frequency estimates (every query
// would be 0/0).
func NewEmpirical(rec *netsim.Record) (*Empirical, error) {
	if rec == nil || rec.Paths == nil {
		return nil, fmt.Errorf("measure: nil record")
	}
	if rec.Snapshots() == 0 {
		return nil, fmt.Errorf("measure: record has no snapshots; estimates would be 0/0")
	}
	return newEmpirical(rec.Paths), nil
}

// NewSlidingWindowSpill returns a sliding-window estimator whose columns
// live in an out-of-core segment store (segstore.TieredStore): appended
// snapshots accumulate in a RAM buffer that is sealed to mmap-backed disk
// segments, and count queries sweep the mapped segments plus the buffer.
// Estimates are bit-identical to NewSlidingWindow over the same rows; what
// changes is that window no longer has to fit in RAM. The estimator owns
// the store — Close unmaps it, after which the estimator must not be used
// (unlike a RAM estimator's Close). Append-side disk failures panic with a
// "segstore:" message; see segstore.TieredStore.
func NewSlidingWindowSpill(numPaths, window int, opts segstore.Options) (*Empirical, error) {
	if window <= 0 {
		return nil, fmt.Errorf("measure: sliding window size = %d, want > 0", window)
	}
	ts, err := segstore.NewTiered(numPaths, window, opts)
	if err != nil {
		return nil, err
	}
	e := newEmpiricalBackend(ts)
	e.tiered = ts
	e.streaming = true
	e.evictScratch = bitset.New(numPaths)
	return e, nil
}

// NewStreaming returns an empty streaming estimator over numPaths paths.
// Feed it snapshots with Append and query at any point; until the first
// Append every probability is reported as 0 (and the empty-set probability
// as 1), never NaN.
func NewStreaming(numPaths int) *Empirical {
	e := newEmpirical(snapstore.New(numPaths))
	e.streaming = true
	return e
}

// NewSlidingWindow returns an empty streaming estimator whose estimates
// cover only the most recent window snapshots: Append past the window
// capacity evicts the oldest snapshot from every count and from the pattern
// histogram. At any moment the estimator is bit-identical to a one-shot
// batch estimator over the retained rows — the windowed==batch equivalence
// the online inference layer (tomography.Window) builds on.
func NewSlidingWindow(numPaths, window int) (*Empirical, error) {
	if window <= 0 {
		return nil, fmt.Errorf("measure: sliding window size = %d, want > 0", window)
	}
	e := newEmpirical(snapstore.NewRing(numPaths, window))
	e.streaming = true
	e.evictScratch = bitset.New(numPaths)
	return e, nil
}

func newEmpirical(store *snapstore.Store) *Empirical {
	e := newEmpiricalBackend(newRingColumns(store))
	e.ring = store
	return e
}

func newEmpiricalBackend(cols columnBackend) *Empirical {
	return &Empirical{
		cols:  cols,
		pairs: make(map[int64]float64),
		memo:  make(map[string]float64),
	}
}

// Store exposes the underlying columnar snapshot store (read-only). It is
// nil for a spill-backed estimator (NewSlidingWindowSpill), whose columns
// live in the segment store SpillStore returns instead.
func (e *Empirical) Store() *snapstore.Store { return e.ring }

// SpillStore exposes the out-of-core segment store of a spill-backed
// estimator (read-only), or nil for a RAM-resident one.
func (e *Empirical) SpillStore() *segstore.TieredStore { return e.tiered }

// Append ingests one more snapshot (the set of congested paths) and keeps
// the pattern histogram current, so PatternSource queries stay valid
// mid-stream. On a sliding-window estimator a full window first evicts its
// oldest snapshot — from the columns and from the histogram. The probability
// caches are reset: every estimate's numerators (and possibly denominator)
// just changed. Append must not run concurrently with queries, and panics on
// a record-backed estimator (whose store is a read-only view of the record —
// appending there would desync the record's link store).
func (e *Empirical) Append(congested *bitset.Set) {
	if e.view {
		panic("measure: Append on an immutable snapshot view (SnapshotView)")
	}
	if !e.streaming {
		panic("measure: Append requires a streaming estimator (NewStreaming); record-backed estimators are read-only views")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Only the pattern histogram consumes evicted rows; when it is not
	// materialized, let the backend skip producing them (the out-of-core
	// backend pays O(paths) per eviction otherwise).
	ev := e.evictScratch
	if e.patterns == nil {
		ev = nil
	}
	if e.cols.AppendEvict(congested, ev) && ev != nil {
		e.forgetPattern(ev)
	}
	e.recordPattern(congested)
	e.resetCaches()
}

// AppendBatch ingests a batch of snapshots in one mutation, bit-identical
// to calling Append on each row in order but paying the bookkeeping once:
// the evictions a full window's batch forces are applied as one batched
// snapstore.DropOldest (each affected column word written once instead of
// once per evicted snapshot) and the probability caches are reset once for
// the whole batch instead of once per row. Like Append, it panics on a
// record-backed estimator and must not run concurrently with queries.
func (e *Empirical) AppendBatch(rows []*bitset.Set) {
	if e.view {
		panic("measure: AppendBatch on an immutable snapshot view (SnapshotView)")
	}
	if !e.streaming {
		panic("measure: Append requires a streaming estimator (NewStreaming); record-backed estimators are read-only views")
	}
	if len(rows) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	c := e.cols.Capacity()
	if d := e.cols.Snapshots() + len(rows) - c; c > 0 && d > 0 && d <= e.cols.Snapshots() {
		// The batch displaces exactly the d oldest retained snapshots:
		// forget their histogram entries row by row, then clear their slots
		// in one blocked pass. (A batch larger than the whole window — d
		// exceeding the retained count — falls through to the per-row loop,
		// where AppendEvict handles the mid-batch evictions.)
		if e.patterns != nil {
			for t := 0; t < d; t++ {
				e.cols.RowInto(t, e.evictScratch)
				e.forgetPattern(e.evictScratch)
			}
		}
		e.cols.DropOldest(d)
	}
	ev := e.evictScratch
	if e.patterns == nil {
		ev = nil
	}
	for _, row := range rows {
		if e.cols.AppendEvict(row, ev) && ev != nil {
			e.forgetPattern(ev)
		}
		e.recordPattern(row)
	}
	e.resetCaches()
}

// AppendBatchWords is AppendBatch with the batch presented as packed
// word-rows: rows snapshots, each wordsPerRow uint64 words (bit i of word
// w ⇒ path w*64+i congested), laid out back to back in words — the layout
// the binary probe wire format carries and the column stores append
// directly, so wire ingest materializes no per-snapshot bitset.
// Bit-identical to AppendBatch over equal rows: same batched-eviction
// pre-pass, same histogram maintenance (a word row keys identically to its
// set — AppendKeyWords trims the stride padding), one cache reset. Panics
// like AppendBatch on views and record-backed estimators, and on a
// stride/row-count mismatch. The words may be reused by the caller after
// the call returns.
func (e *Empirical) AppendBatchWords(words []uint64, wordsPerRow, rows int) {
	if e.view {
		panic("measure: AppendBatchWords on an immutable snapshot view (SnapshotView)")
	}
	if !e.streaming {
		panic("measure: Append requires a streaming estimator (NewStreaming); record-backed estimators are read-only views")
	}
	if rows == 0 {
		return
	}
	if want := (e.cols.NumSeries() + 63) / 64; wordsPerRow != want {
		panic(fmt.Sprintf("measure: AppendBatchWords stride %d words, want %d for %d paths", wordsPerRow, want, e.cols.NumSeries()))
	}
	if rows*wordsPerRow > len(words) {
		panic(fmt.Sprintf("measure: AppendBatchWords carries %d words, want %d for %d rows of %d", len(words), rows*wordsPerRow, rows, wordsPerRow))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	c := e.cols.Capacity()
	if d := e.cols.Snapshots() + rows - c; c > 0 && d > 0 && d <= e.cols.Snapshots() {
		// Same batched displacement pre-pass as AppendBatch.
		if e.patterns != nil {
			for t := 0; t < d; t++ {
				e.cols.RowInto(t, e.evictScratch)
				e.forgetPattern(e.evictScratch)
			}
		}
		e.cols.DropOldest(d)
	}
	ev := e.evictScratch
	if e.patterns == nil {
		ev = nil
	}
	for r := 0; r < rows; r++ {
		row := words[r*wordsPerRow : (r+1)*wordsPerRow]
		if e.cols.AppendEvictWords(row, ev) && ev != nil {
			e.forgetPattern(ev)
		}
		e.recordPatternWords(row)
	}
	e.resetCaches()
}

// SetCountWorkers sets how many workers the batched pair-count kernel
// (PrimePairs) fans out across snapstore blocks. n ≤ 1 — and the default —
// runs on the calling goroutine; results are bit-identical for every
// setting (see snapstore.CountPairsCongestedWS). An estimator that has run
// with n > 1 holds parked pool goroutines until Close.
func (e *Empirical) SetCountWorkers(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.countWorkers = n
}

// CountWorkers returns the configured count-kernel worker count (0 or 1
// mean serial).
func (e *Empirical) CountWorkers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.countWorkers
}

// Close releases the backend's resources: the pool goroutines of a RAM
// estimator's parallel count workspace (the estimator remains fully usable
// afterwards — the pool respawns on demand), or the segment mappings of a
// spill-backed estimator (which must not be used after Close). Idempotent.
func (e *Empirical) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cols.Close()
}

// Evict drops the oldest retained snapshot of a sliding-window estimator
// without appending — the expiry path for time-based windows. It reports
// whether a snapshot was evicted (false once the window is empty) and panics
// on a non-windowed estimator. Like Append, it must not run concurrently
// with queries.
func (e *Empirical) Evict() bool {
	if e.view {
		panic("measure: Evict on an immutable snapshot view (SnapshotView)")
	}
	if e.cols.Capacity() == 0 {
		panic("measure: Evict requires a sliding-window estimator (NewSlidingWindow)")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ev := e.evictScratch
	if e.patterns == nil {
		ev = nil
	}
	if !e.cols.EvictOldest(ev) {
		return false
	}
	if ev != nil {
		e.forgetPattern(ev)
	}
	e.resetCaches()
	return true
}

// Window returns the sliding-window capacity, or 0 for an unbounded
// estimator.
func (e *Empirical) Window() int { return e.cols.Capacity() }

// IsView reports whether this estimator is an immutable snapshot view.
func (e *Empirical) IsView() bool { return e.view }

// SnapshotView freezes the estimator's current window into an immutable
// copy-on-write view: a RAM ring's columns are cloned (reusing recycle's
// backing, so a steady-state publisher allocates nothing), while a
// spill-backed estimator shares its sealed mmap'd segments by reference —
// each view holds a per-segment reference count, so seal, ReleaseMapped and
// Close on the source can never unmap a page under the view's count sweeps
// — and copies only the small active-buffer delta. Every probability the
// view reports is bit-identical to what the source would have reported at
// snapshot time, because both are pure functions of the same integer
// counts. The source's pattern histogram, if materialized, is copied so a
// theorem-estimator view never pays the O(window·paths) rebuild.
//
// recycle, when non-nil, must be a view from a previous SnapshotView on a
// same-shaped estimator; it is closed and its storage reused. The returned
// view rejects all mutation (Append/AppendBatch/Evict panic), answers
// queries from any goroutine like its source, and must be Closed when the
// last reader is done with it — for spill-backed sources that is what
// releases the shared segment mappings. SnapshotView must be called by the
// goroutine that owns the source's appends.
func (e *Empirical) SnapshotView(recycle *Empirical) *Empirical {
	if e.view {
		panic("measure: SnapshotView of a snapshot view")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	v := recycle
	if v != nil && !v.view {
		panic("measure: SnapshotView recycle target is not a view")
	}
	if v == nil {
		v = &Empirical{
			view:  true,
			pairs: make(map[int64]float64),
			memo:  make(map[string]float64),
		}
	}
	switch {
	case e.ring != nil:
		rc, _ := v.cols.(*ringColumns)
		if rc == nil {
			rc = &ringColumns{}
		}
		rc.store = e.ring.SnapshotInto(rc.store)
		v.cols, v.ring = rc, rc.store
	case e.tiered != nil:
		tv, _ := v.cols.(*segstore.TieredView)
		v.cols = e.tiered.SnapshotView(tv)
		v.ring = nil
	default:
		panic("measure: SnapshotView requires a ring- or spill-backed estimator")
	}
	v.countWorkers = e.countWorkers
	if len(v.single) != e.cols.NumSeries() {
		v.single = nil
	}
	v.resetCaches()
	if e.patterns != nil {
		if v.patterns == nil {
			v.patterns = make(map[string]*int, len(e.patterns))
		} else {
			clear(v.patterns)
		}
		for k, p := range e.patterns {
			if *p > 0 {
				n := *p
				v.patterns[k] = &n
			}
		}
	} else {
		v.patterns = nil
	}
	v.deadPatterns = 0
	return v
}

// PrimePatterns materializes the congested-pattern histogram now (a no-op
// once materialized), so that it is maintained incrementally from this
// point on and copied into every subsequent SnapshotView. Serving paths
// that run the pattern-based (theorem) estimator on views call this at
// registration time, while the window is still empty, making the
// materialization free.
func (e *Empirical) PrimePatterns() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializePatterns(e.cols.Snapshots())
}

// recordPattern bumps the appended row's histogram entry. A recurring
// pattern is a map read plus a boxed increment; only a never-seen pattern
// materializes its key string. Caller holds e.mu.
func (e *Empirical) recordPattern(congested *bitset.Set) {
	if e.patterns == nil {
		return
	}
	e.keyBuf = congested.AppendKey(e.keyBuf[:0])
	if p, ok := e.patterns[string(e.keyBuf)]; ok {
		if *p == 0 && e.deadPatterns > 0 {
			e.deadPatterns--
		}
		*p++
		return
	}
	n := 1
	e.patterns[string(e.keyBuf)] = &n
}

// recordPatternWords is recordPattern over a packed word row: the key
// bytes are identical to the equal set's (AppendKeyWords trims trailing
// zero words, so stride padding does not matter). Caller holds e.mu.
func (e *Empirical) recordPatternWords(row []uint64) {
	if e.patterns == nil {
		return
	}
	e.keyBuf = bitset.AppendKeyWords(e.keyBuf[:0], row)
	if p, ok := e.patterns[string(e.keyBuf)]; ok {
		if *p == 0 && e.deadPatterns > 0 {
			e.deadPatterns--
		}
		*p++
		return
	}
	n := 1
	e.patterns[string(e.keyBuf)] = &n
}

// maxDeadPatterns bounds how many zero-count histogram entries may linger
// before a sweep reclaims them. Dead entries are kept (rather than deleted
// eagerly) so a recurring pattern whose count bounces off zero re-increments
// its existing boxed counter instead of re-allocating its key — the
// steady-state sliding window stays allocation-free — while the sweep keeps
// a long-running window's histogram from accumulating unbounded dead keys.
const maxDeadPatterns = 1 << 10

// forgetPattern decrements the evicted row's histogram entry. Caller holds
// e.mu.
func (e *Empirical) forgetPattern(evicted *bitset.Set) {
	if e.patterns == nil {
		return
	}
	e.keyBuf = evicted.AppendKey(e.keyBuf[:0])
	if p, ok := e.patterns[string(e.keyBuf)]; ok {
		if *p--; *p <= 0 {
			e.deadPatterns++
			if e.deadPatterns > maxDeadPatterns {
				for k, v := range e.patterns {
					if *v <= 0 {
						delete(e.patterns, k)
					}
				}
				e.deadPatterns = 0
			}
		}
	}
}

// resetCaches clears the probability memos after a mutation, keeping their
// storage: the NaN-filled single slice and the cleared maps retain capacity,
// so a steady-state window (same query set every estimate) refills them
// without allocating. Caller holds e.mu.
func (e *Empirical) resetCaches() {
	for i := range e.single {
		e.single[i] = math.NaN()
	}
	clear(e.pairs)
	clear(e.memo)
}

// NumPaths implements Source.
func (e *Empirical) NumPaths() int { return e.cols.NumSeries() }

// Snapshots returns the number of snapshots backing the estimates.
func (e *Empirical) Snapshots() int { return e.cols.Snapshots() }

// ProbPathsGood implements Source: the fraction of snapshots in which no
// path of the set was congested. A memoized query allocates nothing: the
// set's key is encoded into a reusable buffer and looked up zero-copy; the
// key string is materialized only when a result is first inserted.
func (e *Empirical) ProbPathsGood(paths *bitset.Set) float64 {
	switch paths.Len() {
	case 0:
		return 1
	case 1:
		return e.ProbPathGood(topology.PathID(paths.Min()))
	case 2:
		var pair [2]int
		k := 0
		paths.ForEach(func(i int) bool { pair[k] = i; k++; return true })
		return e.ProbPairGood(topology.PathID(pair[0]), topology.PathID(pair[1]))
	}
	n := e.cols.Snapshots()
	if n == 0 {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.keyBuf = paths.AppendKey(e.keyBuf[:0])
	if p, ok := e.memo[string(e.keyBuf)]; ok {
		return p
	}
	e.idxBuf = paths.AppendIndices(e.idxBuf[:0])
	p := float64(e.cols.CountAllGood(e.idxBuf)) / float64(n)
	if len(e.memo) >= maxMemoEntries {
		e.memo = make(map[string]float64)
	}
	e.memo[string(e.keyBuf)] = p
	return p
}

// ProbPathGood implements FastPairSource via the per-path cache.
func (e *Empirical) ProbPathGood(i topology.PathID) float64 {
	n := e.cols.Snapshots()
	if n == 0 {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.single == nil {
		e.single = make([]float64, e.cols.NumSeries())
		for k := range e.single {
			e.single[k] = math.NaN()
		}
	}
	if p := e.single[i]; !math.IsNaN(p) {
		return p
	}
	p := float64(n-e.cols.CongestedCount(int(i))) / float64(n)
	e.single[i] = p
	return p
}

// ProbPairGood implements FastPairSource via the pair cache.
func (e *Empirical) ProbPairGood(i, j topology.PathID) float64 {
	if i == j {
		return e.ProbPathGood(i)
	}
	if j < i {
		i, j = j, i
	}
	n := e.cols.Snapshots()
	if n == 0 {
		return 0
	}
	key := int64(i)*int64(e.cols.NumSeries()) + int64(j)
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.pairs[key]; ok {
		return p
	}
	p := float64(e.cols.CountPairGood(int(i), int(j))) / float64(n)
	if len(e.pairs) >= maxPairEntries {
		e.pairs = make(map[int64]float64)
	}
	e.pairs[key] = p
	return p
}

// ProbExactCongestedPaths implements PatternSource via the pattern
// histogram, materialized lazily from the columns on first use and kept
// current by Append.
func (e *Empirical) ProbExactCongestedPaths(paths *bitset.Set) float64 {
	n := e.cols.Snapshots()
	if n == 0 {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializePatterns(n)
	e.keyBuf = paths.AppendKey(e.keyBuf[:0])
	if p, ok := e.patterns[string(e.keyBuf)]; ok {
		return float64(*p) / float64(n)
	}
	return 0
}

// ProbCongestedPatternKey implements PatternKeySource: the histogram lookup
// with the pattern's bitset.Key precomputed by the caller. Equal to
// ProbExactCongestedPaths of the set the key encodes.
func (e *Empirical) ProbCongestedPatternKey(key string) float64 {
	n := e.cols.Snapshots()
	if n == 0 {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializePatterns(n)
	if p, ok := e.patterns[key]; ok {
		return float64(*p) / float64(n)
	}
	return 0
}

// materializePatterns builds the congested-pattern histogram from the
// retained rows on first use. Caller holds e.mu.
func (e *Empirical) materializePatterns(n int) {
	if e.patterns != nil {
		return
	}
	e.patterns = make(map[string]*int)
	row := bitset.New(e.cols.NumSeries())
	for t := 0; t < n; t++ {
		e.cols.RowInto(t, row)
		e.recordPattern(row)
	}
}

// PrimePairs implements BatchPairSource: it resolves every listed pair that
// is not already cached with one cache-blocked pass over the path columns
// (snapstore.CountPairsGoodWS — block-summary skips always, fanned out
// across SetCountWorkers workers when configured) and installs the results
// in the pair cache, so
// the ProbPairGood calls that follow are map hits. Values are bit-identical
// to per-pair lookups; a steady-state caller (same pair set each estimate)
// allocates nothing beyond the cache's own warm-up.
func (e *Empirical) PrimePairs(pairs []Pair) {
	n := e.cols.Snapshots()
	if n == 0 || len(pairs) == 0 {
		return
	}
	np := int64(e.cols.NumSeries())
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pairBuf = e.pairBuf[:0]
	for _, p := range pairs {
		i, j := p.A, p.B
		if i == j {
			continue // single-path query; not a pair cache entry
		}
		if j < i {
			i, j = j, i
		}
		if _, ok := e.pairs[int64(i)*np+int64(j)]; ok {
			continue
		}
		e.pairBuf = append(e.pairBuf, Pair{A: i, B: j})
	}
	if len(e.pairBuf) == 0 {
		return
	}
	if cap(e.pairCounts) < len(e.pairBuf) {
		e.pairCounts = make([]int, len(e.pairBuf))
	}
	e.pairCounts = e.pairCounts[:len(e.pairBuf)]
	e.cols.CountPairsGood(e.pairBuf, e.pairCounts, e.countWorkers)
	if len(e.pairs) >= maxPairEntries {
		e.pairs = make(map[int64]float64)
	}
	for k, p := range e.pairBuf {
		e.pairs[int64(p.A)*np+int64(p.B)] = float64(e.pairCounts[k]) / float64(n)
	}
}

// PathCongestionFrequency returns, per path, the fraction of snapshots in
// which it was congested — the paper's E(YPi). The result is all-zero while
// a streaming estimator is still empty.
func (e *Empirical) PathCongestionFrequency() []float64 {
	out := make([]float64, e.cols.NumSeries())
	n := float64(e.cols.Snapshots())
	if n == 0 {
		return out
	}
	for i := range out {
		out[i] = float64(e.cols.CongestedCount(i)) / n
	}
	return out
}

// Exact computes the same quantities in closed form from a congestion model
// under Assumption 2 (separability). ProbPathsGood is exact for topologies
// and models of any size; ProbExactCongestedPaths enumerates correlation-set
// states and is restricted to small correlation sets (tests and toys).
type Exact struct {
	top   *topology.Topology
	model congestion.Model

	// Per correlation set: the exact subset distribution and each subset's
	// path coverage, materialized lazily for pattern queries.
	states [][]exactState
}

type exactState struct {
	links    *bitset.Set
	coverage *bitset.Set
	p        float64
}

// NewExact builds an exact source for the topology/model pair.
func NewExact(top *topology.Topology, model congestion.Model) (*Exact, error) {
	if top.NumLinks() != model.NumLinks() {
		return nil, fmt.Errorf("measure: topology has %d links, model %d", top.NumLinks(), model.NumLinks())
	}
	return &Exact{top: top, model: model}, nil
}

// NumPaths implements Source.
func (e *Exact) NumPaths() int { return e.top.NumPaths() }

// ProbPathsGood implements Source: all paths good ⇔ every link on them good
// (Assumption 2), so the answer is ProbAllGood over the union of their links.
func (e *Exact) ProbPathsGood(paths *bitset.Set) float64 {
	links := bitset.New(e.top.NumLinks())
	paths.ForEach(func(i int) bool {
		links.UnionWith(e.top.PathLinkSet(topology.PathID(i)))
		return true
	})
	return e.model.ProbAllGood(links)
}

// materialize builds the per-set state tables (once).
func (e *Exact) materialize() error {
	if e.states != nil {
		return nil
	}
	states := make([][]exactState, e.top.NumSets())
	for p := 0; p < e.top.NumSets(); p++ {
		links := e.top.CorrelationSet(p).Indices()
		if len(links) > 15 {
			return fmt.Errorf("measure: correlation set %d has %d links; exact pattern probabilities are limited to ≤15", p, len(links))
		}
		dist := congestion.SubsetDistribution(e.model, links)
		for _, sp := range dist {
			states[p] = append(states[p], exactState{
				links:    sp.Links,
				coverage: e.top.Coverage(sp.Links),
				p:        sp.P,
			})
		}
	}
	e.states = states
	return nil
}

// ProbExactCongestedPaths implements PatternSource by depth-first
// enumeration of per-set states whose coverage stays within the target
// pattern, requiring the union to equal the pattern exactly.
func (e *Exact) ProbExactCongestedPaths(paths *bitset.Set) float64 {
	if err := e.materialize(); err != nil {
		panic(err) // construction-time contract: documented size limit
	}
	var rec func(set int, covered *bitset.Set) float64
	rec = func(set int, covered *bitset.Set) float64 {
		if set == len(e.states) {
			if covered.Equal(paths) {
				return 1
			}
			return 0
		}
		total := 0.0
		for _, st := range e.states[set] {
			if st.p == 0 {
				continue
			}
			if !st.coverage.IsSubsetOf(paths) {
				continue
			}
			next := bitset.Union(covered, st.coverage)
			total += st.p * rec(set+1, next)
		}
		return total
	}
	return rec(0, bitset.New(e.top.NumPaths()))
}
