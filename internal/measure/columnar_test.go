package measure

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// rowMajorRef is the pre-columnar reference implementation: estimates
// computed by scanning row-major snapshots. The property tests pin the
// columnar Empirical bit-identical to it.
type rowMajorRef struct {
	numPaths int
	rows     []*bitset.Set
}

func (r *rowMajorRef) probPathsGood(paths *bitset.Set) float64 {
	hits := 0
	for _, s := range r.rows {
		if !s.Intersects(paths) {
			hits++
		}
	}
	return float64(hits) / float64(len(r.rows))
}

func (r *rowMajorRef) probExactCongested(paths *bitset.Set) float64 {
	hits := 0
	for _, s := range r.rows {
		if s.Equal(paths) {
			hits++
		}
	}
	return float64(hits) / float64(len(r.rows))
}

func (r *rowMajorRef) pathCongestionFrequency() []float64 {
	out := make([]float64, r.numPaths)
	for _, s := range r.rows {
		s.ForEach(func(i int) bool {
			out[i]++
			return true
		})
	}
	for i := range out {
		out[i] /= float64(len(r.rows))
	}
	return out
}

// randomRecord draws a random row-major record and wraps it both ways.
func randomRecord(rng *rand.Rand, numPaths, n int) (*rowMajorRef, *Empirical) {
	rows := make([]*bitset.Set, n)
	for t := range rows {
		s := bitset.New(numPaths)
		for i := 0; i < numPaths; i++ {
			if rng.Intn(4) == 0 {
				s.Add(i)
			}
		}
		rows[t] = s
	}
	emp, err := NewEmpirical(netsim.NewRecordFromRows(numPaths, rows))
	if err != nil {
		panic(err)
	}
	return &rowMajorRef{numPaths: numPaths, rows: rows}, emp
}

// TestColumnarMatchesRowMajorReference is the refactor's pinning property:
// on random records, every columnar estimate equals the row-major scan
// exactly (same integer counts, same division — bit-identical floats).
func TestColumnarMatchesRowMajorReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		numPaths := 1 + rng.Intn(90)
		n := 1 + rng.Intn(400)
		ref, emp := randomRecord(rng, numPaths, n)

		if emp.NumPaths() != numPaths || emp.Snapshots() != n {
			t.Fatalf("trial %d: shape %d×%d, want %d×%d",
				trial, emp.NumPaths(), emp.Snapshots(), numPaths, n)
		}
		for q := 0; q < 60; q++ {
			query := bitset.New(numPaths)
			for i := 0; i < numPaths; i++ {
				if rng.Intn(numPaths/3+1) == 0 {
					query.Add(i)
				}
			}
			got, want := emp.ProbPathsGood(query), ref.probPathsGood(query)
			if got != want {
				t.Fatalf("trial %d: ProbPathsGood(%v) = %v, want %v (row-major)", trial, query, got, want)
			}
			// Second query must hit the caches and stay identical.
			if again := emp.ProbPathsGood(query); again != want {
				t.Fatalf("trial %d: cached ProbPathsGood(%v) = %v, want %v", trial, query, again, want)
			}
			gotP, wantP := emp.ProbExactCongestedPaths(query), ref.probExactCongested(query)
			if gotP != wantP {
				t.Fatalf("trial %d: ProbExactCongestedPaths(%v) = %v, want %v", trial, query, gotP, wantP)
			}
		}
		gotF, wantF := emp.PathCongestionFrequency(), ref.pathCongestionFrequency()
		for i := range wantF {
			if gotF[i] != wantF[i] {
				t.Fatalf("trial %d: PathCongestionFrequency[%d] = %v, want %v", trial, i, gotF[i], wantF[i])
			}
		}
		// FastPairSource answers must agree with the generic route.
		for q := 0; q < 30; q++ {
			i := topology.PathID(rng.Intn(numPaths))
			j := topology.PathID(rng.Intn(numPaths))
			if got, want := emp.ProbPathGood(i), ref.probPathsGood(bitset.FromIndices(int(i))); got != want {
				t.Fatalf("trial %d: ProbPathGood(%d) = %v, want %v", trial, i, got, want)
			}
			if got, want := emp.ProbPairGood(i, j), ref.probPathsGood(bitset.FromIndices(int(i), int(j))); got != want {
				t.Fatalf("trial %d: ProbPairGood(%d,%d) = %v, want %v", trial, i, j, got, want)
			}
		}
	}
}

// TestColumnarMatchesRowMajorUnderParallelSimulation runs the real simulator
// with a parallel worker pool (racing block writers under -race) and pins
// the columnar estimates to a row-major scan of the same record.
func TestColumnarMatchesRowMajorUnderParallelSimulation(t *testing.T) {
	top := topology.Figure1A()
	rec, err := netsim.Run(netsim.Config{
		Topology: top, Model: fig1aTable(t), Snapshots: 3000, Seed: 12,
		Mode: netsim.StateLevel, Parallelism: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	emp, err := NewEmpirical(rec)
	if err != nil {
		t.Fatal(err)
	}
	ref := &rowMajorRef{numPaths: top.NumPaths(), rows: rec.Paths.Rows()}
	for mask := 0; mask < 8; mask++ {
		q := bitset.New(3)
		for b := 0; b < 3; b++ {
			if mask&(1<<b) != 0 {
				q.Add(b)
			}
		}
		if got, want := emp.ProbPathsGood(q), ref.probPathsGood(q); got != want {
			t.Fatalf("ProbPathsGood(%v) = %v, want %v", q, got, want)
		}
		if got, want := emp.ProbExactCongestedPaths(q), ref.probExactCongested(q); got != want {
			t.Fatalf("ProbExactCongestedPaths(%v) = %v, want %v", q, got, want)
		}
	}
}

// TestNewEmpiricalEmptyRecord is the regression test for the NaN bug: an
// empty record used to produce 0/0 estimates; now construction fails.
func TestNewEmpiricalEmptyRecord(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Fatal("nil record accepted")
	}
	if _, err := NewEmpirical(&netsim.Record{}); err == nil {
		t.Fatal("record without a store accepted")
	}
	empty := netsim.NewRecordFromRows(3, nil)
	if _, err := NewEmpirical(empty); err == nil {
		t.Fatal("empty record accepted; estimates would be NaN")
	}
}

// TestStreamingEmptyQueriesAreNotNaN guards the streaming estimator the
// same way: before the first Append, probabilities are 0 (empty set: 1),
// never NaN.
func TestStreamingEmptyQueriesAreNotNaN(t *testing.T) {
	e := NewStreaming(4)
	if got := e.ProbPathsGood(bitset.New(0)); got != 1 {
		t.Fatalf("P(∅ good) on empty stream = %v, want 1", got)
	}
	for _, got := range []float64{
		e.ProbPathsGood(bitset.FromIndices(0)),
		e.ProbPathsGood(bitset.FromIndices(0, 2)),
		e.ProbPathsGood(bitset.FromIndices(0, 1, 2)),
		e.ProbPathGood(1),
		e.ProbPairGood(1, 3),
		e.ProbExactCongestedPaths(bitset.FromIndices(0)),
	} {
		if math.IsNaN(got) || got != 0 {
			t.Fatalf("empty-stream estimate = %v, want 0", got)
		}
	}
	for _, f := range e.PathCongestionFrequency() {
		if f != 0 {
			t.Fatalf("empty-stream frequency = %v, want 0", f)
		}
	}
}

// TestStreamingMatchesBatch pins streaming ingestion to batch construction:
// appending the record's snapshots one at a time — with interleaved queries
// that exercise cache invalidation and the incremental pattern histogram —
// ends in estimates identical to a one-shot batch over the same data.
func TestStreamingMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	numPaths, n := 23, 500
	ref, batch := randomRecord(rng, numPaths, n)

	stream := NewStreaming(numPaths)
	for tt, row := range ref.rows {
		stream.Append(row)
		if tt%97 == 0 {
			// Mid-stream queries must reflect exactly the prefix seen so far.
			q := bitset.FromIndices(tt % numPaths)
			prefix := &rowMajorRef{numPaths: numPaths, rows: ref.rows[:tt+1]}
			if got, want := stream.ProbPathsGood(q), prefix.probPathsGood(q); got != want {
				t.Fatalf("after %d appends: ProbPathsGood = %v, want %v", tt+1, got, want)
			}
			if got, want := stream.ProbExactCongestedPaths(q), prefix.probExactCongested(q); got != want {
				t.Fatalf("after %d appends: ProbExactCongestedPaths = %v, want %v", tt+1, got, want)
			}
		}
	}

	if stream.Snapshots() != batch.Snapshots() {
		t.Fatalf("stream has %d snapshots, batch %d", stream.Snapshots(), batch.Snapshots())
	}
	for q := 0; q < 80; q++ {
		query := bitset.New(numPaths)
		for i := 0; i < numPaths; i++ {
			if rng.Intn(6) == 0 {
				query.Add(i)
			}
		}
		if got, want := stream.ProbPathsGood(query), batch.ProbPathsGood(query); got != want {
			t.Fatalf("ProbPathsGood(%v): stream %v, batch %v", query, got, want)
		}
		if got, want := stream.ProbExactCongestedPaths(query), batch.ProbExactCongestedPaths(query); got != want {
			t.Fatalf("ProbExactCongestedPaths(%v): stream %v, batch %v", query, got, want)
		}
	}
}

// TestAppendRejectsRecordBackedEstimator: a record-backed Empirical aliases
// the record's path store; appending there would desync the record's link
// store, so it must panic instead.
func TestAppendRejectsRecordBackedEstimator(t *testing.T) {
	_, emp := randomRecord(rand.New(rand.NewSource(7)), 4, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("Append on a record-backed estimator must panic")
		}
	}()
	emp.Append(bitset.FromIndices(1))
}
