package topology

import (
	"bytes"
	"testing"
)

// FuzzDecode fuzzes the JSON topology parser — the cmd/topogen output format
// cmd/tomo re-reads. The invariant: arbitrary bytes either fail with an
// error or produce a validated topology that round-trips through Encode and
// decodes back to the same shape. No input may panic.
func FuzzDecode(f *testing.F) {
	// Seed corpus: a real topology, a tiny hand-written one, and near-miss
	// malformed inputs.
	if data, err := Figure1A().MarshalJSON(); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"num_nodes":2,"links":[{"src":0,"dst":1}],"paths":[{"links":[0]}],"correlation_sets":[[0]]}`))
	f.Add([]byte(`{"num_nodes":1,"links":[{"src":0,"dst":5}]}`))
	f.Add([]byte(`{"num_nodes":2,"links":[{"src":0,"dst":1}],"paths":[{"links":[7]}]}`))
	f.Add([]byte(`{"num_nodes":-3}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		top, err := UnmarshalTopology(data)
		if err != nil {
			return
		}
		// A decoded topology is fully validated: re-encoding and re-decoding
		// must succeed and preserve the shape.
		var buf bytes.Buffer
		if err := top.Encode(&buf); err != nil {
			t.Fatalf("valid topology failed to encode: %v", err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v\ninput: %q", err, data)
		}
		if back.NumNodes() != top.NumNodes() || back.NumLinks() != top.NumLinks() ||
			back.NumPaths() != top.NumPaths() || back.NumSets() != top.NumSets() {
			t.Fatalf("round-trip changed shape: %d/%d nodes, %d/%d links, %d/%d paths, %d/%d sets",
				back.NumNodes(), top.NumNodes(), back.NumLinks(), top.NumLinks(),
				back.NumPaths(), top.NumPaths(), back.NumSets(), top.NumSets())
		}
	})
}
