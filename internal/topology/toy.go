package topology

// This file constructs the two toy topologies of Figure 1 of the paper. They
// are used throughout the test suite and in the quickstart example, because
// the paper works through its feasibility proof (Section 3.2) and its
// algorithm (Section 4) on exactly these graphs.

// Figure1A returns the topology of Figure 1(a), where Assumption 4 holds.
//
//	Links  E = {e1, e2, e3, e4}
//	Paths  P1 = (e1, e3), P2 = (e2, e3), P3 = (e2, e4)
//	Correlation sets C = {{e1, e2}, {e3}, {e4}}
//
// Node layout: e1: v4→v3, e2: v5→v3, e3: v3→v1, e4: v3→v2. Link IDs are
// assigned in order e1..e4 (LinkID 0..3), path IDs P1..P3 (PathID 0..2).
func Figure1A() *Topology {
	b := NewBuilder()
	v1 := b.AddNode() // destination of e3
	v2 := b.AddNode() // destination of e4
	v3 := b.AddNode() // middle node
	v4 := b.AddNode() // source of e1
	v5 := b.AddNode() // source of e2

	e1 := b.AddLink(v4, v3, "e1")
	e2 := b.AddLink(v5, v3, "e2")
	e3 := b.AddLink(v3, v1, "e3")
	e4 := b.AddLink(v3, v2, "e4")

	b.AddPath("P1", e1, e3)
	b.AddPath("P2", e2, e3)
	b.AddPath("P3", e2, e4)

	b.Correlate(e1, e2)

	t, err := b.Build()
	if err != nil {
		panic("topology: Figure1A construction failed: " + err.Error())
	}
	return t
}

// Figure1B returns the topology of Figure 1(b), where Assumption 4 does NOT
// hold: correlation subsets {e1, e2} and {e3} cover the same paths {P1, P2}.
//
//	Links  E = {e1, e2, e3}
//	Paths  P1 = (e3, e1), P2 = (e3, e2)
//	Correlation sets C = {{e1, e2}, {e3}}
//
// Node layout: e3: v4→v3, e1: v3→v1, e2: v3→v2.
func Figure1B() *Topology {
	b := NewBuilder()
	v1 := b.AddNode()
	v2 := b.AddNode()
	v3 := b.AddNode()
	v4 := b.AddNode()

	e1 := b.AddLink(v3, v1, "e1")
	e2 := b.AddLink(v3, v2, "e2")
	e3 := b.AddLink(v4, v3, "e3")

	b.AddPath("P1", e3, e1)
	b.AddPath("P2", e3, e2)

	b.Correlate(e1, e2)

	t, err := b.Build()
	if err != nil {
		panic("topology: Figure1B construction failed: " + err.Error())
	}
	return t
}

// Figure1AAllCorrelated returns the Figure 1(a) graph with all four links in
// a single correlation set — the Section 3.3 example of why assigning every
// link to one correlation set defeats tomography (the merge transformation
// collapses each path to a single merged link).
func Figure1AAllCorrelated() *Topology {
	b := NewBuilder()
	v1 := b.AddNode()
	v2 := b.AddNode()
	v3 := b.AddNode()
	v4 := b.AddNode()
	v5 := b.AddNode()

	e1 := b.AddLink(v4, v3, "e1")
	e2 := b.AddLink(v5, v3, "e2")
	e3 := b.AddLink(v3, v1, "e3")
	e4 := b.AddLink(v3, v2, "e4")

	b.AddPath("P1", e1, e3)
	b.AddPath("P2", e2, e3)
	b.AddPath("P3", e2, e4)

	b.Correlate(e1, e2, e3, e4)

	t, err := b.Build()
	if err != nil {
		panic("topology: Figure1AAllCorrelated construction failed: " + err.Error())
	}
	return t
}
