package topology

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

func TestFigure1ACoverage(t *testing.T) {
	top := Figure1A()
	if top.NumLinks() != 4 || top.NumPaths() != 3 || top.NumSets() != 3 {
		t.Fatalf("unexpected sizes: %s", top)
	}

	// The ψ table from Section 3.1 of the paper.
	cases := []struct {
		links []int
		paths []int
	}{
		{[]int{0}, []int{0}},          // ψ({e1}) = {P1}
		{[]int{1}, []int{1, 2}},       // ψ({e2}) = {P2, P3}
		{[]int{0, 1}, []int{0, 1, 2}}, // ψ({e1,e2}) = {P1, P2, P3}
		{[]int{2}, []int{0, 1}},       // ψ({e3}) = {P1, P2}
		{[]int{3}, []int{2}},          // ψ({e4}) = {P3}
	}
	for _, c := range cases {
		got := top.Coverage(bitset.FromIndices(c.links...))
		want := bitset.FromIndices(c.paths...)
		if !got.Equal(want) {
			t.Errorf("ψ(%v) = %v, want %v", c.links, got, want)
		}
	}
}

func TestFigure1BCoverageCollision(t *testing.T) {
	top := Figure1B()
	// ψ({e1,e2}) == ψ({e3}) == {P1, P2}.
	a := top.Coverage(bitset.FromIndices(0, 1))
	b := top.Coverage(bitset.FromIndices(2))
	if !a.Equal(b) {
		t.Fatalf("expected coverage collision, got %v vs %v", a, b)
	}
}

func TestIdentifiabilityFigure1A(t *testing.T) {
	res := CheckIdentifiability(Figure1A(), 0)
	if !res.Identifiable {
		t.Fatalf("Figure 1(a) must satisfy Assumption 4; collisions: %v", res.Collisions)
	}
	if !res.UnidentifiableLinks.IsEmpty() {
		t.Fatalf("no unidentifiable links expected, got %v", res.UnidentifiableLinks)
	}
	if res.Truncated {
		t.Fatal("tiny topology must not be truncated")
	}
}

func TestIdentifiabilityFigure1B(t *testing.T) {
	res := CheckIdentifiability(Figure1B(), 0)
	if res.Identifiable {
		t.Fatal("Figure 1(b) must violate Assumption 4")
	}
	// Links e1,e2,e3 (IDs 0,1,2) are all unidentifiable.
	want := bitset.FromIndices(0, 1, 2)
	if !res.UnidentifiableLinks.Equal(want) {
		t.Fatalf("unidentifiable links = %v, want %v", res.UnidentifiableLinks, want)
	}
}

func TestNodeViolations(t *testing.T) {
	if v := NodeViolations(Figure1A()); len(v) != 0 {
		t.Fatalf("Figure 1(a) has node violations %v, want none", v)
	}
	// Figure 1(b): node v3 (NodeID 2) has all ingress ({e3}) in one set and
	// all egress ({e1,e2}) in one set.
	v := NodeViolations(Figure1B())
	if len(v) != 1 || v[0] != 2 {
		t.Fatalf("Figure 1(b) node violations = %v, want [2]", v)
	}
	// All-correlated Figure 1(a): v3 violates too.
	v = NodeViolations(Figure1AAllCorrelated())
	if len(v) != 1 {
		t.Fatalf("all-correlated Figure 1(a) node violations = %v, want one", v)
	}
}

func TestMergeTransformFigure1B(t *testing.T) {
	merged, mm, err := MergeTransform(Figure1B())
	if err != nil {
		t.Fatal(err)
	}
	// The paper: remove v3, draw two merged links v4→v1 and v4→v2. Each
	// merged link abstracts (e3, e1) and (e3, e2) respectively.
	if merged.NumLinks() != 2 {
		t.Fatalf("merged topology has %d links, want 2", merged.NumLinks())
	}
	if merged.NumPaths() != 2 {
		t.Fatalf("merged topology has %d paths, want 2", merged.NumPaths())
	}
	for id, orig := range mm.OriginalLinks {
		if len(orig) != 2 {
			t.Fatalf("merged link %d abstracts %v, want two original links", id, orig)
		}
		if orig[0] != 2 { // first traversed original link is e3 (ID 2)
			t.Fatalf("merged link %d starts with original link %d, want e3 (2)", id, orig[0])
		}
	}
	// After merging, the node criterion must be satisfied.
	if v := NodeViolations(merged); len(v) != 0 {
		t.Fatalf("merged topology still has node violations: %v", v)
	}
	// Each path is now a single merged link.
	for _, p := range merged.Paths() {
		if len(p.Links) != 1 {
			t.Fatalf("path %q has %d links after merge, want 1", p.Name, len(p.Links))
		}
	}
}

func TestMergeTransformAllCorrelated(t *testing.T) {
	// Section 3.3: with all of Figure 1(a)'s links in one correlation set,
	// merging collapses each of the three paths to a single merged link.
	merged, _, err := MergeTransform(Figure1AAllCorrelated())
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumLinks() != 3 {
		t.Fatalf("merged topology has %d links, want 3", merged.NumLinks())
	}
	for _, p := range merged.Paths() {
		if len(p.Links) != 1 {
			t.Fatalf("path %q has %d links, want 1 (link == end-to-end path)", p.Name, len(p.Links))
		}
	}
}

func TestMergeTransformIdentityWhenClean(t *testing.T) {
	top := Figure1A()
	merged, mm, err := MergeTransform(top)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumLinks() != top.NumLinks() || merged.NumPaths() != top.NumPaths() {
		t.Fatalf("merge of a clean topology changed it: %s -> %s", top, merged)
	}
	for id, orig := range mm.OriginalLinks {
		if len(orig) != 1 {
			t.Fatalf("link %d abstracts %v in identity merge", id, orig)
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, err := NewBuilder().Build(); err == nil {
			t.Fatal("empty build must fail")
		}
	})
	t.Run("no paths", func(t *testing.T) {
		b := NewBuilder()
		n := b.AddNodes(2)
		b.AddLink(n[0], n[1], "e")
		if _, err := b.Build(); err == nil {
			t.Fatal("build without paths must fail")
		}
	})
	t.Run("unused link", func(t *testing.T) {
		b := NewBuilder()
		n := b.AddNodes(3)
		e1 := b.AddLink(n[0], n[1], "e1")
		b.AddLink(n[1], n[2], "e2") // never used
		b.AddPath("P1", e1)
		if _, err := b.Build(); err == nil {
			t.Fatal("unused link must be rejected")
		}
	})
	t.Run("loop", func(t *testing.T) {
		b := NewBuilder()
		n := b.AddNodes(2)
		e1 := b.AddLink(n[0], n[1], "e1")
		e2 := b.AddLink(n[1], n[0], "e2")
		b.AddPath("P1", e1, e2, e1)
		if _, err := b.Build(); err == nil {
			t.Fatal("looping path must be rejected")
		}
	})
	t.Run("discontiguous", func(t *testing.T) {
		b := NewBuilder()
		n := b.AddNodes(4)
		e1 := b.AddLink(n[0], n[1], "e1")
		e2 := b.AddLink(n[2], n[3], "e2")
		b.AddPath("P1", e1, e2)
		if _, err := b.Build(); err == nil {
			t.Fatal("discontiguous path must be rejected")
		}
	})
	t.Run("overlapping correlation groups", func(t *testing.T) {
		b := NewBuilder()
		n := b.AddNodes(3)
		e1 := b.AddLink(n[0], n[1], "e1")
		e2 := b.AddLink(n[1], n[2], "e2")
		b.AddPath("P1", e1, e2)
		b.Correlate(e1, e2)
		b.Correlate(e2)
		if _, err := b.Build(); err == nil {
			t.Fatal("overlapping groups must be rejected")
		}
	})
	t.Run("unknown node in link", func(t *testing.T) {
		b := NewBuilder()
		b.AddLink(0, 1, "e") // no nodes allocated
		b.AddPath("P", 0)
		if _, err := b.Build(); err == nil {
			t.Fatal("link with unknown nodes must be rejected")
		}
	})
}

func TestSingletonSetsByDefault(t *testing.T) {
	b := NewBuilder()
	n := b.AddNodes(3)
	e1 := b.AddLink(n[0], n[1], "e1")
	e2 := b.AddLink(n[1], n[2], "e2")
	b.AddPath("P1", e1, e2)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if top.NumSets() != 2 {
		t.Fatalf("NumSets = %d, want 2 singletons", top.NumSets())
	}
	if top.SetOf(e1) == top.SetOf(e2) {
		t.Fatal("uncorrelated links share a set")
	}
}

func TestPathHasCorrelatedLinks(t *testing.T) {
	top := Figure1A()
	// No path in Figure 1(a) contains both e1 and e2, so none has
	// correlated links.
	for _, p := range top.Paths() {
		if top.PathHasCorrelatedLinks(p.ID) {
			t.Fatalf("path %q flagged as having correlated links", p.Name)
		}
	}
	// The union of P1 (e1,e3) and P2 (e2,e3) contains both e1 and e2.
	union := bitset.Union(top.PathLinkSet(0), top.PathLinkSet(1))
	if !top.LinkSetHasCorrelatedLinks(union) {
		t.Fatal("P1 ∪ P2 must contain correlated links")
	}
	// The union of P2 (e2,e3) and P3 (e2,e4) does not.
	union23 := bitset.Union(top.PathLinkSet(1), top.PathLinkSet(2))
	if top.LinkSetHasCorrelatedLinks(union23) {
		t.Fatal("P2 ∪ P3 must not contain correlated links")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, top := range []*Topology{Figure1A(), Figure1B(), Figure1AAllCorrelated()} {
		var buf bytes.Buffer
		if err := top.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumLinks() != top.NumLinks() || got.NumPaths() != top.NumPaths() || got.NumSets() != top.NumSets() {
			t.Fatalf("round trip mismatch: %s vs %s", got, top)
		}
		for _, l := range top.Links() {
			g := got.Link(l.ID)
			if g.Src != l.Src || g.Dst != l.Dst || g.Name != l.Name {
				t.Fatalf("link %d mismatch: %+v vs %+v", l.ID, g, l)
			}
		}
		for i := 0; i < top.NumLinks(); i++ {
			if got.SetOf(LinkID(i)) != top.SetOf(LinkID(i)) {
				// Set indices may be permuted; compare membership instead.
				a := got.CorrelationSet(got.SetOf(LinkID(i)))
				b := top.CorrelationSet(top.SetOf(LinkID(i)))
				if !a.Equal(b) {
					t.Fatalf("link %d correlation set mismatch: %v vs %v", i, a, b)
				}
			}
		}
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	bad := []string{
		`{"num_nodes":2,"links":[{"src":0,"dst":1}],"paths":[{"links":[5]}]}`,
		`{"num_nodes":2,"links":[{"src":0,"dst":1}],"paths":[{"links":[0]}],"correlation_sets":[[7]]}`,
		`not json`,
	}
	for _, s := range bad {
		if _, err := Decode(bytes.NewReader([]byte(s))); err == nil {
			t.Fatalf("Decode(%q) succeeded, want error", s)
		}
	}
}

// Property: ψ is monotone and distributes over union (invariants from
// docs/ARCHITECTURE.md), checked on random line/star topologies.
func TestCoverageAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		top := randomTopology(rng, 2+rng.Intn(6), 2+rng.Intn(5))
		nl := top.NumLinks()
		randSet := func() *bitset.Set {
			s := bitset.New(nl)
			for i := 0; i < nl; i++ {
				if rng.Intn(2) == 0 {
					s.Add(i)
				}
			}
			return s
		}
		a, b := randSet(), randSet()
		// ψ(A∪B) = ψ(A) ∪ ψ(B)
		lhs := top.Coverage(bitset.Union(a, b))
		rhs := bitset.Union(top.Coverage(a), top.Coverage(b))
		if !lhs.Equal(rhs) {
			t.Fatalf("ψ(A∪B) != ψ(A)∪ψ(B): %v vs %v", lhs, rhs)
		}
		// A ⊆ B ⇒ ψ(A) ⊆ ψ(B)
		sub := a.Clone()
		sub.IntersectWith(b)
		if !top.Coverage(sub).IsSubsetOf(top.Coverage(b)) {
			t.Fatal("ψ not monotone")
		}
	}
}

// randomTopology builds a random "comb" topology: a chain of backbone links
// with nPaths paths, each entering at a random chain position via a private
// access link and riding the chain to the end. Every link is used.
func randomTopology(rng *rand.Rand, chainLen, nPaths int) *Topology {
	b := NewBuilder()
	chain := b.AddNodes(chainLen + 1)
	links := make([]LinkID, chainLen)
	for i := 0; i < chainLen; i++ {
		links[i] = b.AddLink(chain[i], chain[i+1], "")
	}
	for p := 0; p < nPaths; p++ {
		entry := rng.Intn(chainLen)
		if p == 0 {
			entry = 0 // guarantee the whole backbone is used
		}
		src := b.AddNode()
		access := b.AddLink(src, chain[entry], "")
		path := []LinkID{access}
		path = append(path, links[entry:]...)
		b.AddPath("", path...)
	}
	// Random correlation group over the backbone.
	if chainLen >= 2 {
		b.Correlate(links[0], links[1])
	}
	top, err := b.Build()
	if err != nil {
		panic(err)
	}
	return top
}
