package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonTopology is the on-disk representation used by MarshalJSON/Decode.
// It mirrors the Builder inputs so that decoding re-validates the topology.
type jsonTopology struct {
	NumNodes int        `json:"num_nodes"`
	Links    []jsonLink `json:"links"`
	Paths    []jsonPath `json:"paths"`
	Sets     [][]int    `json:"correlation_sets"`
}

type jsonLink struct {
	Src  int    `json:"src"`
	Dst  int    `json:"dst"`
	Name string `json:"name,omitempty"`
}

type jsonPath struct {
	Links []int  `json:"links"`
	Name  string `json:"name,omitempty"`
}

// MarshalJSON encodes the topology in a self-contained format that Decode
// can re-validate and rebuild.
func (t *Topology) MarshalJSON() ([]byte, error) {
	jt := jsonTopology{NumNodes: t.NumNodes()}
	for _, l := range t.links {
		jt.Links = append(jt.Links, jsonLink{Src: int(l.Src), Dst: int(l.Dst), Name: l.Name})
	}
	for _, p := range t.paths {
		links := make([]int, len(p.Links))
		for i, l := range p.Links {
			links[i] = int(l)
		}
		jt.Paths = append(jt.Paths, jsonPath{Links: links, Name: p.Name})
	}
	for p := 0; p < t.NumSets(); p++ {
		s := t.CorrelationSet(p)
		if s.Len() > 1 {
			jt.Sets = append(jt.Sets, s.Indices())
		}
	}
	return json.Marshal(jt)
}

// Encode writes the topology as JSON to w.
func (t *Topology) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Decode reads a JSON-encoded topology from r, re-validating it through the
// Builder so that malformed inputs are rejected with descriptive errors.
func Decode(r io.Reader) (*Topology, error) {
	var jt jsonTopology
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	return fromJSON(jt)
}

// UnmarshalTopology rebuilds a topology from bytes produced by MarshalJSON.
func UnmarshalTopology(data []byte) (*Topology, error) {
	var jt jsonTopology
	if err := json.Unmarshal(data, &jt); err != nil {
		return nil, fmt.Errorf("topology: unmarshal: %w", err)
	}
	return fromJSON(jt)
}

// maxDecodeNodes bounds the node count a decoded document may demand, so a
// corrupted (or adversarial) file cannot force an enormous allocation before
// validation.
const maxDecodeNodes = 1 << 24

func fromJSON(jt jsonTopology) (*Topology, error) {
	if jt.NumNodes < 0 || jt.NumNodes > maxDecodeNodes {
		return nil, fmt.Errorf("topology: num_nodes = %d, want [0, %d]", jt.NumNodes, maxDecodeNodes)
	}
	b := NewBuilder()
	b.AddNodes(jt.NumNodes)
	ids := make([]LinkID, len(jt.Links))
	for i, l := range jt.Links {
		ids[i] = b.AddLink(NodeID(l.Src), NodeID(l.Dst), l.Name)
	}
	for _, p := range jt.Paths {
		links := make([]LinkID, len(p.Links))
		for i, l := range p.Links {
			if l < 0 || l >= len(ids) {
				return nil, fmt.Errorf("topology: path %q references unknown link %d", p.Name, l)
			}
			links[i] = ids[l]
		}
		b.AddPath(p.Name, links...)
	}
	for _, g := range jt.Sets {
		links := make([]LinkID, len(g))
		for i, l := range g {
			if l < 0 || l >= len(ids) {
				return nil, fmt.Errorf("topology: correlation set references unknown link %d", l)
			}
			links[i] = ids[l]
		}
		b.Correlate(links...)
	}
	return b.Build()
}
