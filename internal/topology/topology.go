// Package topology implements the network model of Section 2 of the paper:
// a directed graph of logical links, a set of measurement paths over those
// links, and a partition of the links into correlation sets. It also provides
// the path-coverage function ψ, the Assumption-4 identifiability check, and
// the link-merge transformation described in Section 3.3.
//
// Links and paths are referred to by dense integer IDs (LinkID, PathID);
// the bit-set representation in internal/bitset is built on those IDs.
package topology

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
)

// NodeID identifies a node (network element) in the graph.
type NodeID int

// LinkID identifies a logical link (directed edge) in the graph.
type LinkID int

// PathID identifies a measurement path.
type PathID int

// Link is a directed logical link between two network elements. A logical
// link may abstract a sequence of physical links (an IP-level or domain-level
// link), which is exactly why links can be correlated.
type Link struct {
	ID   LinkID
	Src  NodeID
	Dst  NodeID
	Name string // optional human-readable label, e.g. "e1"
}

// Path is a loop-free sequence of links whose end-to-end congestion status
// can be observed. Links lists the traversed links in order.
type Path struct {
	ID    PathID
	Links []LinkID
	Name  string // optional label, e.g. "P1"
}

// Topology bundles the graph, the measurement paths and the correlation
// partition. Construct one with NewBuilder; a constructed Topology is
// immutable and safe for concurrent use.
type Topology struct {
	nodes []NodeID
	links []Link
	paths []Path

	// sets[p] is the p-th correlation set, a set of LinkIDs.
	// setOf[linkID] is the index of the correlation set containing the link.
	sets  []*bitset.Set
	setOf []int

	// coverage[linkID] is ψ({link}): the set of paths traversing the link.
	coverage []*bitset.Set
	// pathLinks[pathID] is the set of links on the path.
	pathLinks []*bitset.Set
}

// NumNodes returns the number of nodes.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumLinks returns the number of links |E|.
func (t *Topology) NumLinks() int { return len(t.links) }

// NumPaths returns the number of paths |P|.
func (t *Topology) NumPaths() int { return len(t.paths) }

// NumSets returns the number of correlation sets |C|.
func (t *Topology) NumSets() int { return len(t.sets) }

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// Links returns all links. The returned slice must not be modified.
func (t *Topology) Links() []Link { return t.links }

// Path returns the path with the given ID.
func (t *Topology) Path(id PathID) Path { return t.paths[id] }

// Paths returns all paths. The returned slice must not be modified.
func (t *Topology) Paths() []Path { return t.paths }

// PathLinkSet returns the set of links on the given path.
// The returned set must not be modified.
func (t *Topology) PathLinkSet(id PathID) *bitset.Set { return t.pathLinks[id] }

// SetOf returns the index of the correlation set containing the link.
func (t *Topology) SetOf(id LinkID) int { return t.setOf[id] }

// CorrelationSet returns the p-th correlation set as a set of LinkIDs.
// The returned set must not be modified.
func (t *Topology) CorrelationSet(p int) *bitset.Set { return t.sets[p] }

// CorrelationSetLinks returns the link IDs in the p-th correlation set in
// ascending order.
func (t *Topology) CorrelationSetLinks(p int) []LinkID {
	idx := t.sets[p].Indices()
	out := make([]LinkID, len(idx))
	for i, v := range idx {
		out[i] = LinkID(v)
	}
	return out
}

// LinkCoverage returns ψ({link}) — the set of paths traversing the link.
// The returned set must not be modified.
func (t *Topology) LinkCoverage(id LinkID) *bitset.Set { return t.coverage[id] }

// Coverage computes ψ(A) for a set of links A: the set of paths that traverse
// at least one link in A (Equation 1 of the paper).
func (t *Topology) Coverage(links *bitset.Set) *bitset.Set {
	out := bitset.New(len(t.paths))
	links.ForEach(func(i int) bool {
		out.UnionWith(t.coverage[i])
		return true
	})
	return out
}

// CoverageOfLinks is Coverage for a slice of link IDs.
func (t *Topology) CoverageOfLinks(ids []LinkID) *bitset.Set {
	out := bitset.New(len(t.paths))
	for _, id := range ids {
		out.UnionWith(t.coverage[id])
	}
	return out
}

// PathHasCorrelatedLinks reports whether the path traverses two or more links
// from the same correlation set. Such paths cannot contribute single-path
// equations to the Section-4 algorithm.
func (t *Topology) PathHasCorrelatedLinks(id PathID) bool {
	seen := make(map[int]bool, len(t.paths[id].Links))
	for _, l := range t.paths[id].Links {
		p := t.setOf[l]
		if seen[p] {
			return true
		}
		seen[p] = true
	}
	return false
}

// LinkSetHasCorrelatedLinks reports whether a set of links contains two or
// more links from the same correlation set.
func (t *Topology) LinkSetHasCorrelatedLinks(links *bitset.Set) bool {
	seen := make(map[int]bool)
	bad := false
	links.ForEach(func(i int) bool {
		p := t.setOf[i]
		if seen[p] {
			bad = true
			return false
		}
		seen[p] = true
		return true
	})
	return bad
}

// PathsThroughLink returns the IDs of paths traversing the link, ascending.
func (t *Topology) PathsThroughLink(id LinkID) []PathID {
	idx := t.coverage[id].Indices()
	out := make([]PathID, len(idx))
	for i, v := range idx {
		out[i] = PathID(v)
	}
	return out
}

// String renders a compact summary for debugging.
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology{nodes:%d links:%d paths:%d sets:%d}",
		len(t.nodes), len(t.links), len(t.paths), len(t.sets))
	return b.String()
}

// Builder accumulates nodes, links, paths and correlation sets and validates
// them into an immutable Topology.
type Builder struct {
	nextNode NodeID
	links    []Link
	paths    []Path
	groups   [][]LinkID // explicit correlation groups; links absent from all groups become singletons
	err      error
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder { return &Builder{} }

// AddNode allocates and returns a fresh node ID.
func (b *Builder) AddNode() NodeID {
	id := b.nextNode
	b.nextNode++
	return id
}

// AddNodes allocates n fresh node IDs and returns them.
func (b *Builder) AddNodes(n int) []NodeID {
	out := make([]NodeID, n)
	for i := range out {
		out[i] = b.AddNode()
	}
	return out
}

// AddLink adds a directed logical link from src to dst and returns its ID.
func (b *Builder) AddLink(src, dst NodeID, name string) LinkID {
	if src >= b.nextNode || dst >= b.nextNode || src < 0 || dst < 0 {
		b.fail(fmt.Errorf("topology: link %q references unknown node (src=%d dst=%d, have %d nodes)", name, src, dst, b.nextNode))
	}
	id := LinkID(len(b.links))
	b.links = append(b.links, Link{ID: id, Src: src, Dst: dst, Name: name})
	return id
}

// AddPath adds a measurement path traversing the given links in order and
// returns its ID.
func (b *Builder) AddPath(name string, links ...LinkID) PathID {
	id := PathID(len(b.paths))
	cp := make([]LinkID, len(links))
	copy(cp, links)
	b.paths = append(b.paths, Path{ID: id, Links: cp, Name: name})
	return id
}

// Correlate declares that the given links belong to one correlation set.
// Groups must be disjoint; links never mentioned in any group are placed in
// singleton sets.
func (b *Builder) Correlate(links ...LinkID) {
	cp := make([]LinkID, len(links))
	copy(cp, links)
	b.groups = append(b.groups, cp)
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build validates the accumulated definition and returns the Topology.
// Validation enforces the model of Section 2.1: paths are loop-free and
// link-contiguous, every link participates in at least one path, and the
// correlation groups form a partition.
func (b *Builder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.links) == 0 {
		return nil, errors.New("topology: no links")
	}
	if len(b.paths) == 0 {
		return nil, errors.New("topology: no paths")
	}

	t := &Topology{
		links: b.links,
		paths: b.paths,
	}
	t.nodes = make([]NodeID, b.nextNode)
	for i := range t.nodes {
		t.nodes[i] = NodeID(i)
	}

	// Validate paths and build coverage maps.
	t.coverage = make([]*bitset.Set, len(b.links))
	for i := range t.coverage {
		t.coverage[i] = bitset.New(len(b.paths))
	}
	t.pathLinks = make([]*bitset.Set, len(b.paths))
	for _, p := range b.paths {
		if len(p.Links) == 0 {
			return nil, fmt.Errorf("topology: path %q has no links", p.Name)
		}
		seen := bitset.New(len(b.links))
		for i, l := range p.Links {
			if int(l) < 0 || int(l) >= len(b.links) {
				return nil, fmt.Errorf("topology: path %q references unknown link %d", p.Name, l)
			}
			if seen.Contains(int(l)) {
				return nil, fmt.Errorf("topology: path %q crosses link %d twice (loops are not allowed)", p.Name, l)
			}
			seen.Add(int(l))
			if i > 0 {
				prev := b.links[p.Links[i-1]]
				cur := b.links[l]
				if prev.Dst != cur.Src {
					return nil, fmt.Errorf("topology: path %q is not contiguous at position %d (link %d ends at node %d, link %d starts at node %d)",
						p.Name, i, p.Links[i-1], prev.Dst, l, cur.Src)
				}
			}
			t.coverage[l].Add(int(p.ID))
		}
		t.pathLinks[p.ID] = seen
	}
	for l := range b.links {
		if t.coverage[l].IsEmpty() {
			return nil, fmt.Errorf("topology: link %d (%q) is not traversed by any path (unused links are not allowed)", l, b.links[l].Name)
		}
	}

	// Build the correlation partition.
	t.setOf = make([]int, len(b.links))
	for i := range t.setOf {
		t.setOf[i] = -1
	}
	for _, g := range b.groups {
		if len(g) == 0 {
			continue
		}
		set := bitset.New(len(b.links))
		idx := len(t.sets)
		for _, l := range g {
			if int(l) < 0 || int(l) >= len(b.links) {
				return nil, fmt.Errorf("topology: correlation group references unknown link %d", l)
			}
			if t.setOf[l] != -1 {
				return nil, fmt.Errorf("topology: link %d appears in two correlation groups (groups must be disjoint)", l)
			}
			t.setOf[l] = idx
			set.Add(int(l))
		}
		t.sets = append(t.sets, set)
	}
	// Remaining links are singletons, in ascending link order for determinism.
	for l := range b.links {
		if t.setOf[l] == -1 {
			set := bitset.New(len(b.links))
			set.Add(l)
			t.setOf[l] = len(t.sets)
			t.sets = append(t.sets, set)
		}
	}
	return t, nil
}

// SortedLinkIDs returns 0..NumLinks-1 as LinkIDs; convenience for ranging.
func (t *Topology) SortedLinkIDs() []LinkID {
	out := make([]LinkID, len(t.links))
	for i := range out {
		out[i] = LinkID(i)
	}
	return out
}

// SetSizes returns the sizes of all correlation sets, descending.
func (t *Topology) SetSizes() []int {
	out := make([]int, len(t.sets))
	for i, s := range t.sets {
		out[i] = s.Len()
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
