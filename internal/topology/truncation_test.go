package topology

import (
	"fmt"
	"testing"
)

// bigSetTopology builds a 2×n grid: two access links into a hub, n parallel
// hub links out of it (one large correlation set), and all 2·n paths. Every
// access link covers one full "row" of paths and every hub subset a union of
// "columns", so all correlation-subset coverages are provably distinct —
// the topology is identifiable, and only the enumeration budget limits the
// exact check.
func bigSetTopology(t *testing.T, n int) *Topology {
	t.Helper()
	b := NewBuilder()
	hubIn := b.AddNode()
	var hubLinks []LinkID
	for i := 0; i < n; i++ {
		out := b.AddNode()
		hubLinks = append(hubLinks, b.AddLink(hubIn, out, fmt.Sprintf("h%d", i)))
	}
	for j := 0; j < 2; j++ {
		src := b.AddNode()
		acc := b.AddLink(src, hubIn, fmt.Sprintf("a%d", j))
		for i := 0; i < n; i++ {
			b.AddPath(fmt.Sprintf("P%d-%d", j, i), acc, hubLinks[i])
		}
	}
	b.Correlate(hubLinks...)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestCheckIdentifiabilityTruncation(t *testing.T) {
	top := bigSetTopology(t, 20) // 2^20 subsets — over any practical cap
	res := CheckIdentifiability(top, 1024)
	if !res.Truncated {
		t.Fatal("expected truncated check for a 20-link correlation set")
	}
	// The truncated check still covers singletons and the whole set; with
	// distinct per-link paths there are no collisions among those, and the
	// structural criterion does not fire (each access link is its own set,
	// so the hub node's ingress links span many sets).
	if !res.Identifiable {
		t.Fatalf("unexpected collisions: %v", res.Collisions)
	}
}

func TestCheckIdentifiabilityExactWithinCap(t *testing.T) {
	top := bigSetTopology(t, 8) // 2^8 = 256 subsets — under the cap
	res := CheckIdentifiability(top, 1024)
	if res.Truncated {
		t.Fatal("small set unexpectedly truncated")
	}
	if !res.Identifiable {
		t.Fatalf("expected identifiable, got collisions: %v", res.Collisions)
	}
}

func TestNodeViolationCaughtDespiteTruncation(t *testing.T) {
	// A chain node whose single ingress link and single egress link are
	// both inside the big correlation set is a structural violation that
	// the truncated checker must still catch. Build: big set containing a
	// 2-link chain used by one path.
	b := NewBuilder()
	n0, n1, n2 := b.AddNode(), b.AddNode(), b.AddNode()
	e1 := b.AddLink(n0, n1, "e1")
	e2 := b.AddLink(n1, n2, "e2")
	b.AddPath("P", e1, e2)
	var extras []LinkID
	for i := 0; i < 18; i++ {
		d := b.AddNode()
		extras = append(extras, b.AddLink(n0, d, fmt.Sprintf("x%d", i)))
	}
	for j := 0; j < 2; j++ {
		s := b.AddNode()
		acc := b.AddLink(s, n0, fmt.Sprintf("ax%d", j))
		for i := 0; i < 18; i++ {
			b.AddPath(fmt.Sprintf("Px%d-%d", j, i), acc, extras[i])
		}
	}
	b.Correlate(append(extras, e1, e2)...)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := CheckIdentifiability(top, 256)
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	if res.Identifiable {
		t.Fatal("structural violation missed under truncation")
	}
	if !res.UnidentifiableLinks.Contains(int(e1)) || !res.UnidentifiableLinks.Contains(int(e2)) {
		t.Fatalf("chain links not flagged: %v", res.UnidentifiableLinks)
	}
}
