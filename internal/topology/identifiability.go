package topology

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
)

// Assumption 4 (identifiability): for any two correlation subsets A ≠ B,
// ψ(A) ≠ ψ(B). This file implements the exact checker (exponential in the
// size of individual correlation sets, with a safety cap) plus the structural
// node-touch criterion from Section 3.3, which is what the checker's cost
// bound falls back to for very large sets.

// Collision records two correlation subsets that cover exactly the same set
// of paths, violating Assumption 4.
type Collision struct {
	A, B *bitset.Set // two distinct correlation subsets with ψ(A) == ψ(B)
}

// CheckResult is the outcome of an identifiability check.
type CheckResult struct {
	// Identifiable is true when no two enumerated correlation subsets cover
	// the same path set.
	Identifiable bool
	// Collisions lists every detected pair of coverage-equal subsets.
	Collisions []Collision
	// UnidentifiableLinks is the union of all links belonging to colliding
	// subsets. The congestion probability of these links cannot be computed
	// accurately (Section 3.3).
	UnidentifiableLinks *bitset.Set
	// Truncated is true if some correlation set exceeded the enumeration cap
	// and its larger subsets were not checked exhaustively. In that case the
	// structural criterion was applied to the truncated sets instead.
	Truncated bool
}

// DefaultSubsetCap bounds the number of subsets enumerated per correlation
// set in CheckIdentifiability. 2^14 subsets per set keeps the exact check
// comfortably fast while covering every set of ≤14 links exactly.
const DefaultSubsetCap = 1 << 14

// CheckIdentifiability performs the Assumption-4 check. subsetCap bounds the
// per-set subset enumeration (≤ 0 means DefaultSubsetCap). For sets whose
// subset count exceeds the cap, only singleton and whole-set subsets are
// enumerated and the structural node criterion is additionally applied.
func CheckIdentifiability(t *Topology, subsetCap int) CheckResult {
	if subsetCap <= 0 {
		subsetCap = DefaultSubsetCap
	}
	res := CheckResult{Identifiable: true, UnidentifiableLinks: bitset.New(t.NumLinks())}

	// byKey maps a coverage key ψ(A).Key() to the first subset seen with it.
	byKey := make(map[string]*bitset.Set)

	consider := func(subset *bitset.Set) {
		cov := t.Coverage(subset)
		key := cov.Key()
		if prev, ok := byKey[key]; ok {
			if prev.Equal(subset) {
				return
			}
			res.Identifiable = false
			res.Collisions = append(res.Collisions, Collision{A: prev.Clone(), B: subset.Clone()})
			res.UnidentifiableLinks.UnionWith(prev)
			res.UnidentifiableLinks.UnionWith(subset)
			return
		}
		byKey[key] = subset.Clone()
	}

	for p := 0; p < t.NumSets(); p++ {
		set := t.CorrelationSet(p)
		elems := set.Indices()
		nSubsets := uint64(1) << uint(min(len(elems), 63))
		if len(elems) <= 30 && nSubsets <= uint64(subsetCap) {
			bitset.EnumerateSubsets(elems, func(s *bitset.Set) bool {
				consider(s)
				return true
			})
			continue
		}
		// Too large for exhaustive enumeration: check singletons and the
		// whole set, and mark the result as truncated.
		res.Truncated = true
		for _, e := range elems {
			consider(bitset.FromIndices(e))
		}
		consider(set.Clone())
	}

	// The structural criterion catches the canonical violation pattern even
	// inside truncated sets: a node whose ingress links all share one
	// correlation set and whose egress links all share one correlation set.
	for _, v := range NodeViolations(t) {
		in, out := nodeAdjacent(t, v)
		// Restrict to links actually used by paths through the node; these
		// are the subsets with equal coverage.
		res.Identifiable = false
		res.UnidentifiableLinks.UnionWith(in)
		res.UnidentifiableLinks.UnionWith(out)
	}
	return res
}

// nodeAdjacent returns the sets of ingress and egress links of node v.
func nodeAdjacent(t *Topology, v NodeID) (in, out *bitset.Set) {
	in = bitset.New(t.NumLinks())
	out = bitset.New(t.NumLinks())
	for _, l := range t.Links() {
		if l.Dst == v {
			in.Add(int(l.ID))
		}
		if l.Src == v {
			out.Add(int(l.ID))
		}
	}
	return in, out
}

// NodeViolations returns the intermediate nodes that trigger the Section-3.3
// structural violation of Assumption 4: every ingress link of the node
// belongs to a single correlation set, every egress link belongs to a single
// (possibly different) correlation set, and at least one path traverses the
// node (entering on an ingress link and leaving on an egress link).
func NodeViolations(t *Topology) []NodeID {
	var out []NodeID
	for v := NodeID(0); int(v) < t.NumNodes(); v++ {
		in, eg := nodeAdjacent(t, v)
		if in.IsEmpty() || eg.IsEmpty() {
			continue // not an intermediate node
		}
		if !singleSet(t, in) || !singleSet(t, eg) {
			continue
		}
		if !pathTraverses(t, in, eg) {
			continue
		}
		// ψ(ingress∩paths-through) == ψ(egress∩paths-through) == paths through v.
		out = append(out, v)
	}
	return out
}

func singleSet(t *Topology, links *bitset.Set) bool {
	set := -1
	ok := true
	links.ForEach(func(i int) bool {
		p := t.SetOf(LinkID(i))
		if set == -1 {
			set = p
			return true
		}
		if p != set {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// pathTraverses reports whether some path uses one link from `in`
// immediately followed by one link from `out`.
func pathTraverses(t *Topology, in, out *bitset.Set) bool {
	for _, p := range t.Paths() {
		for i := 0; i+1 < len(p.Links); i++ {
			if in.Contains(int(p.Links[i])) && out.Contains(int(p.Links[i+1])) {
				return true
			}
		}
	}
	return false
}

// MergeMap describes how a merged topology's links relate to the original.
type MergeMap struct {
	// OriginalLinks[newLink] lists the original links abstracted by the new
	// link, in traversal order. A new link that corresponds to a single
	// original link has a one-element list.
	OriginalLinks map[LinkID][]LinkID
}

// MergeTransform applies the Section-3.3 transformation: while some
// intermediate node v has all ingress links in one correlation set and all
// egress links in one correlation set (and is traversed by a path), remove v
// and draw merged links vlast→vnext for every consecutive (vlast, v, vnext)
// hop in a path. The merged links inherit the union of the two correlation
// sets involved. The returned MergeMap maps each new link to the original
// links it abstracts.
//
// The transformation reduces granularity but restores Assumption 4's node
// criterion; the caller can re-run CheckIdentifiability on the result.
func MergeTransform(t *Topology) (*Topology, MergeMap, error) {
	// Work on a mutable representation: each working link carries the list
	// of original links it abstracts.
	wlinks := make([]wlink, 0, t.NumLinks())
	for _, l := range t.Links() {
		wlinks = append(wlinks, wlink{src: l.Src, dst: l.Dst, orig: []LinkID{l.ID}, set: t.SetOf(l.ID)})
	}
	// Paths as sequences of working-link indices.
	wpaths := make([][]int, t.NumPaths())
	for i, p := range t.Paths() {
		seq := make([]int, len(p.Links))
		for j, l := range p.Links {
			seq[j] = int(l)
		}
		wpaths[i] = seq
	}
	nextSetLabel := t.NumSets()

	for iter := 0; ; iter++ {
		if iter > t.NumNodes()+1 {
			return nil, MergeMap{}, fmt.Errorf("topology: merge transform did not converge after %d iterations", iter)
		}
		v, inSet, outSet, found := findMergeableNode(t.NumNodes(), wlinks, wpaths)
		if !found {
			break
		}
		// Merge: every consecutive (a, b) hop in a path with wlinks[a].dst == v
		// becomes a single merged link wlinks[a].src → wlinks[b].dst.
		merged := map[[2]int]int{} // (a,b) -> new working link index
		label := nextSetLabel
		nextSetLabel++
		for pi, seq := range wpaths {
			var out []int
			for j := 0; j < len(seq); j++ {
				if j+1 < len(seq) && wlinks[seq[j]].dst == v {
					key := [2]int{seq[j], seq[j+1]}
					mi, ok := merged[key]
					if !ok {
						a, b := wlinks[seq[j]], wlinks[seq[j+1]]
						mi = len(wlinks)
						wlinks = append(wlinks, wlink{
							src:  a.src,
							dst:  b.dst,
							orig: append(append([]LinkID{}, a.orig...), b.orig...),
							set:  label,
						})
						merged[key] = mi
					}
					out = append(out, mi)
					j++ // consumed two working links
					continue
				}
				out = append(out, seq[j])
			}
			wpaths[pi] = out
		}
		// Remaining (unmerged) links of the two absorbed correlation sets
		// join the merged set too: the merged links are correlated with both
		// constituents' set mates.
		for i := range wlinks {
			if wlinks[i].set == inSet || wlinks[i].set == outSet {
				wlinks[i].set = label
			}
		}
	}

	// Rebuild a Topology from the surviving working links (those used by at
	// least one path).
	used := map[int]bool{}
	for _, seq := range wpaths {
		for _, wi := range seq {
			used[wi] = true
		}
	}
	order := make([]int, 0, len(used))
	for wi := range used {
		order = append(order, wi)
	}
	sort.Ints(order)

	b := NewBuilder()
	// Preserve original node IDs by allocating the same count; merged
	// topology reuses node numbering.
	b.AddNodes(t.NumNodes())
	newID := map[int]LinkID{}
	mm := MergeMap{OriginalLinks: map[LinkID][]LinkID{}}
	for _, wi := range order {
		w := wlinks[wi]
		name := fmt.Sprintf("m%d", wi)
		if len(w.orig) == 1 {
			name = t.Link(w.orig[0]).Name
		}
		id := b.AddLink(w.src, w.dst, name)
		newID[wi] = id
		mm.OriginalLinks[id] = w.orig
	}
	for pi, seq := range wpaths {
		links := make([]LinkID, len(seq))
		for j, wi := range seq {
			links[j] = newID[wi]
		}
		b.AddPath(t.Path(PathID(pi)).Name, links...)
	}
	// Correlation groups by surviving set label.
	groups := map[int][]LinkID{}
	for _, wi := range order {
		groups[wlinks[wi].set] = append(groups[wlinks[wi].set], newID[wi])
	}
	labels := make([]int, 0, len(groups))
	for lab := range groups {
		labels = append(labels, lab)
	}
	sort.Ints(labels)
	for _, lab := range labels {
		if len(groups[lab]) > 1 {
			b.Correlate(groups[lab]...)
		}
	}
	nt, err := b.Build()
	if err != nil {
		return nil, MergeMap{}, fmt.Errorf("topology: merge transform produced invalid topology: %w", err)
	}
	return nt, mm, nil
}

// wlink is the mutable working representation of a (possibly merged) link
// used by MergeTransform.
type wlink struct {
	src, dst NodeID
	orig     []LinkID
	set      int // correlation group label
}

// findMergeableNode locates a node triggering the structural violation in the
// working representation.
func findMergeableNode(numNodes int, wlinks []wlink, wpaths [][]int) (NodeID, int, int, bool) {
	// Determine which working links are in use.
	used := map[int]bool{}
	for _, seq := range wpaths {
		for _, wi := range seq {
			used[wi] = true
		}
	}
	for v := NodeID(0); int(v) < numNodes; v++ {
		inSet, outSet := -2, -2 // -2 = unseen, -1 = mixed
		hasIn, hasOut := false, false
		for wi, w := range wlinks {
			if !used[wi] {
				continue
			}
			if w.dst == v {
				hasIn = true
				if inSet == -2 {
					inSet = w.set
				} else if inSet != w.set {
					inSet = -1
				}
			}
			if w.src == v {
				hasOut = true
				if outSet == -2 {
					outSet = w.set
				} else if outSet != w.set {
					outSet = -1
				}
			}
		}
		if !hasIn || !hasOut || inSet < 0 || outSet < 0 {
			continue
		}
		// Require a path actually passing through v.
		through := false
		for _, seq := range wpaths {
			for j := 0; j+1 < len(seq); j++ {
				if wlinks[seq[j]].dst == v && wlinks[seq[j+1]].src == v {
					through = true
					break
				}
			}
			if through {
				break
			}
		}
		if through {
			return v, inSet, outSet, true
		}
	}
	return 0, 0, 0, false
}
