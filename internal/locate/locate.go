package locate

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitset"
	"repro/internal/topology"
)

// Result is a per-snapshot localization outcome.
type Result struct {
	// Congested is the inferred set of congested links.
	Congested *bitset.Set
	// LogLikelihood is the (model-dependent) log-probability score of the
	// returned explanation; comparable across calls with the same inputs.
	LogLikelihood float64
	// Feasible reports whether the returned set explains the observation
	// exactly (covers every congested path, touches no good path). The
	// greedy search always returns feasible sets when one exists; Feasible
	// is false only for contradictory inputs (e.g. a congested path all of
	// whose links lie on good paths).
	Feasible bool
}

const (
	probFloor = 1e-6 // clamp for p ∈ {0,1} to keep odds finite
)

func clampProb(p float64) float64 {
	if p < probFloor {
		return probFloor
	}
	if p > 1-probFloor {
		return 1 - probFloor
	}
	return p
}

// suspects returns the links that may be congested under the observation:
// links that do not participate in any good path. All other links are
// provably good under Assumption 2.
func suspects(top *topology.Topology, congestedPaths *bitset.Set) *bitset.Set {
	out := bitset.New(top.NumLinks())
	for k := 0; k < top.NumLinks(); k++ {
		cov := top.LinkCoverage(topology.LinkID(k))
		if cov.IsSubsetOf(congestedPaths) {
			out.Add(k)
		}
	}
	return out
}

// Independent locates the most likely congested-link set assuming links fail
// independently with the given marginal probabilities (learned by any of the
// tomography algorithms).
func Independent(top *topology.Topology, probs []float64, congestedPaths *bitset.Set) (*Result, error) {
	if len(probs) != top.NumLinks() {
		return nil, fmt.Errorf("locate: %d probabilities for %d links", len(probs), top.NumLinks())
	}
	cand := suspects(top, congestedPaths)

	// MAP under independence: maximize Σ_{k∈S} log(p/(1−p)) over feasible S
	// (the constant Σ log(1−p) is shared by all candidates). Weights are
	// usually negative (p < 0.5), so this is a min-cost set cover; greedy
	// picks the best likelihood-per-newly-covered-path link, then pruning
	// drops links made redundant later.
	type item struct {
		link int
		gain float64 // log odds
		cov  *bitset.Set
	}
	var items []item
	cand.ForEach(func(k int) bool {
		p := clampProb(probs[k])
		items = append(items, item{
			link: k,
			gain: math.Log(p / (1 - p)),
			cov:  bitset.Intersect(top.LinkCoverage(topology.LinkID(k)), congestedPaths),
		})
		return true
	})

	chosen := bitset.New(top.NumLinks())
	covered := bitset.New(top.NumPaths())
	remaining := congestedPaths.Clone()
	for !remaining.IsEmpty() {
		bestIdx, bestScore := -1, math.Inf(-1)
		for i, it := range items {
			if chosen.Contains(it.link) {
				continue
			}
			newly := it.cov.IntersectionCount(remaining)
			if newly == 0 {
				continue
			}
			// Likelihood cost per newly covered path; higher is better.
			score := it.gain / float64(newly)
			if score > bestScore {
				bestScore, bestIdx = score, i
			}
		}
		if bestIdx == -1 {
			// Some congested path has no suspect link: contradictory input.
			return &Result{Congested: chosen, Feasible: false,
				LogLikelihood: scoreIndependent(probs, chosen, cand)}, nil
		}
		chosen.Add(items[bestIdx].link)
		covered.UnionWith(items[bestIdx].cov)
		remaining.DifferenceWith(items[bestIdx].cov)
	}

	prune(top, chosen, congestedPaths, func(k int) float64 {
		p := clampProb(probs[k])
		return math.Log(p / (1 - p))
	})
	return &Result{
		Congested:     chosen,
		Feasible:      true,
		LogLikelihood: scoreIndependent(probs, chosen, cand),
	}, nil
}

// prune removes links whose removal keeps the cover feasible, dropping the
// least likely links first.
func prune(top *topology.Topology, chosen, congestedPaths *bitset.Set, weight func(int) float64) {
	links := chosen.Indices()
	sort.Slice(links, func(i, j int) bool { return weight(links[i]) < weight(links[j]) })
	for _, k := range links {
		chosen.Remove(k)
		// Still covered?
		ok := true
		congestedPaths.ForEach(func(pid int) bool {
			if !top.PathLinkSet(topology.PathID(pid)).Intersects(chosen) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			chosen.Add(k)
		}
	}
}

// scoreIndependent computes Σ_{k∈S} log p + Σ_{k∈cand∖S} log(1−p).
func scoreIndependent(probs []float64, chosen, cand *bitset.Set) float64 {
	s := 0.0
	cand.ForEach(func(k int) bool {
		p := clampProb(probs[k])
		if chosen.Contains(k) {
			s += math.Log(p)
		} else {
			s += math.Log(1 - p)
		}
		return true
	})
	return s
}

// SetStates describes the learned joint distribution of one correlation set:
// the probability of each congested-subset state. It is exactly the
// JointProb output of the Theorem algorithm, or can be synthesized from
// marginals when only those are known.
type SetStates struct {
	// Set is the correlation-set index in the topology.
	Set int
	// States maps each possible congested subset (including ∅) to its
	// probability. Subsets are given as link sets.
	States []SubsetState
}

// SubsetState is one state of a correlation set.
type SubsetState struct {
	Links *bitset.Set
	P     float64
}

// Correlated locates the most likely congested-link set using per-set joint
// state probabilities. Sets not mentioned in states fall back to independent
// marginals from probs.
func Correlated(top *topology.Topology, probs []float64, states []SetStates, congestedPaths *bitset.Set) (*Result, error) {
	if len(probs) != top.NumLinks() {
		return nil, fmt.Errorf("locate: %d probabilities for %d links", len(probs), top.NumLinks())
	}
	cand := suspects(top, congestedPaths)

	bySet := map[int]*SetStates{}
	for i := range states {
		s := &states[i]
		if s.Set < 0 || s.Set >= top.NumSets() {
			return nil, fmt.Errorf("locate: state for unknown correlation set %d", s.Set)
		}
		bySet[s.Set] = s
	}

	// Per correlation set, enumerate the admissible states: subsets of the
	// set's suspect links (others are provably good). Each admissible state
	// carries its log-probability and the congested paths it covers.
	type option struct {
		links *bitset.Set
		cov   *bitset.Set
		logp  float64
	}
	var perSet [][]option
	for p := 0; p < top.NumSets(); p++ {
		setLinks := top.CorrelationSet(p)
		susp := bitset.Intersect(setLinks, cand)
		var opts []option
		if ss, ok := bySet[p]; ok {
			for _, st := range ss.States {
				if !st.Links.IsSubsetOf(susp) {
					continue // state congests a provably good link
				}
				if st.P <= 0 {
					continue
				}
				opts = append(opts, option{
					links: st.Links.Clone(),
					cov:   bitset.Intersect(top.Coverage(st.Links), congestedPaths),
					logp:  math.Log(clampProb(st.P)),
				})
			}
		} else {
			// Independent fallback: the empty state plus each single suspect
			// link and the all-suspects state (cheap but useful candidates).
			empty := bitset.New(top.NumLinks())
			logAllGood := 0.0
			susp.ForEach(func(k int) bool {
				logAllGood += math.Log(1 - clampProb(probs[k]))
				return true
			})
			opts = append(opts, option{links: empty, cov: bitset.New(top.NumPaths()), logp: logAllGood})
			susp.ForEach(func(k int) bool {
				pk := clampProb(probs[k])
				single := bitset.FromIndices(k)
				opts = append(opts, option{
					links: single,
					cov:   bitset.Intersect(top.Coverage(single), congestedPaths),
					logp:  logAllGood + math.Log(pk) - math.Log(1-pk),
				})
				return true
			})
		}
		if len(opts) == 0 {
			opts = append(opts, option{links: bitset.New(top.NumLinks()), cov: bitset.New(top.NumPaths()), logp: 0})
		}
		// Sort states by probability, most likely first, and make the most
		// likely state the baseline choice.
		sort.SliceStable(opts, func(i, j int) bool { return opts[i].logp > opts[j].logp })
		perSet = append(perSet, opts)
	}

	// Greedy assembly: start from every set's most likely state; while some
	// congested path is uncovered, switch the single (set, state) whose
	// change covers new paths at the smallest likelihood cost.
	choice := make([]int, len(perSet))
	chosenCov := func() *bitset.Set {
		cov := bitset.New(top.NumPaths())
		for p, c := range choice {
			cov.UnionWith(perSet[p][c].cov)
		}
		return cov
	}
	for iter := 0; ; iter++ {
		if iter > top.NumSets()*4 {
			break // safety: cannot converge (contradictory inputs)
		}
		covered := chosenCov()
		remaining := congestedPaths.Clone()
		remaining.DifferenceWith(covered)
		if remaining.IsEmpty() {
			break
		}
		bestSet, bestState, bestScore := -1, -1, math.Inf(-1)
		for p := range perSet {
			cur := perSet[p][choice[p]]
			for si, opt := range perSet[p] {
				if si == choice[p] {
					continue
				}
				newly := opt.cov.IntersectionCount(remaining)
				if newly == 0 {
					continue
				}
				score := (opt.logp - cur.logp) / float64(newly)
				if score > bestScore {
					bestScore, bestSet, bestState = score, p, si
				}
			}
		}
		if bestSet == -1 {
			// No state can cover the remaining paths: infeasible input.
			out := bitset.New(top.NumLinks())
			ll := 0.0
			for p, c := range choice {
				out.UnionWith(perSet[p][c].links)
				ll += perSet[p][c].logp
			}
			return &Result{Congested: out, Feasible: false, LogLikelihood: ll}, nil
		}
		choice[bestSet] = bestState
	}

	out := bitset.New(top.NumLinks())
	ll := 0.0
	for p, c := range choice {
		out.UnionWith(perSet[p][c].links)
		ll += perSet[p][c].logp
	}
	feasible := true
	congestedPaths.ForEach(func(pid int) bool {
		if !top.PathLinkSet(topology.PathID(pid)).Intersects(out) {
			feasible = false
			return false
		}
		return true
	})
	return &Result{Congested: out, Feasible: feasible, LogLikelihood: ll}, nil
}

// Metrics summarizes localization quality over a sequence of snapshots.
type Metrics struct {
	// DetectionRate is the fraction of truly congested (link, snapshot)
	// pairs that were reported.
	DetectionRate float64
	// FalsePositiveRate is the fraction of reported (link, snapshot) pairs
	// that were not truly congested.
	FalsePositiveRate float64
	// Snapshots is the number of snapshots evaluated.
	Snapshots int
}

// Evaluate compares per-snapshot localization output against ground truth.
func Evaluate(truth, inferred []*bitset.Set) (Metrics, error) {
	if len(truth) != len(inferred) {
		return Metrics{}, fmt.Errorf("locate: %d truth snapshots vs %d inferred", len(truth), len(inferred))
	}
	var truePos, falsePos, actual int
	for i := range truth {
		actual += truth[i].Len()
		inferred[i].ForEach(func(k int) bool {
			if truth[i].Contains(k) {
				truePos++
			} else {
				falsePos++
			}
			return true
		})
	}
	m := Metrics{Snapshots: len(truth)}
	if actual > 0 {
		m.DetectionRate = float64(truePos) / float64(actual)
	}
	if truePos+falsePos > 0 {
		m.FalsePositiveRate = float64(falsePos) / float64(truePos+falsePos)
	}
	return m, nil
}
