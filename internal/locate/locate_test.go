package locate

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/congestion"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func fig1aModel(t *testing.T) congestion.Model {
	t.Helper()
	m, err := congestion.NewTable(4, []congestion.GroupTable{
		{
			Links: []int{0, 1},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: 0.60},
				{Links: bitset.FromIndices(0), P: 0.10},
				{Links: bitset.FromIndices(1), P: 0.12},
				{Links: bitset.FromIndices(0, 1), P: 0.18},
			},
		},
		{Links: []int{2}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.8}, {Links: bitset.FromIndices(2), P: 0.2},
		}},
		{Links: []int{3}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.9}, {Links: bitset.FromIndices(3), P: 0.1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIndependentSimpleCases(t *testing.T) {
	top := topology.Figure1A()
	probs := []float64{0.28, 0.30, 0.20, 0.10}

	// Nothing congested → nothing reported.
	res, err := Independent(top, probs, bitset.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Congested.IsEmpty() || !res.Feasible {
		t.Fatalf("empty observation: %+v", res)
	}

	// Only P1 congested → e1 is the only feasible explanation (e3 also lies
	// on good path P2).
	res, err = Independent(top, probs, bitset.FromIndices(0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Congested.Equal(bitset.FromIndices(0)) {
		t.Fatalf("P1-congested: inferred %v, want {e1}", res.Congested)
	}

	// P1 and P2 congested, P3 good: e3 explains both with one link; e1+e2
	// would need two. Greedy must pick e3.
	res, err = Independent(top, probs, bitset.FromIndices(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Congested.Equal(bitset.FromIndices(2)) {
		t.Fatalf("P1,P2-congested: inferred %v, want {e3}", res.Congested)
	}
}

func TestIndependentValidation(t *testing.T) {
	top := topology.Figure1A()
	if _, err := Independent(top, []float64{0.1}, bitset.New(3)); err == nil {
		t.Fatal("bad probability vector accepted")
	}
}

func TestCorrelatedPrefersJointExplanation(t *testing.T) {
	top := topology.Figure1A()
	// All three paths congested. Feasible explanations include {e3, e4}
	// and {e1, e2, ...}. With a joint that makes {e1,e2} likely (0.18) and
	// independent e3, e4 unlikely (0.2·0.1 = 0.02), the correlated locator
	// should report e1, e2 over e3∧e4... but {e1,e2} covers all three paths
	// already.
	states := []SetStates{{
		Set: top.SetOf(0),
		States: []SubsetState{
			{Links: bitset.New(0), P: 0.60},
			{Links: bitset.FromIndices(0), P: 0.10},
			{Links: bitset.FromIndices(1), P: 0.12},
			{Links: bitset.FromIndices(0, 1), P: 0.18},
		},
	}}
	probs := []float64{0.28, 0.30, 0.20, 0.10}
	res, err := Correlated(top, probs, states, bitset.FromIndices(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("infeasible result")
	}
	if !res.Congested.Contains(0) || !res.Congested.Contains(1) {
		t.Fatalf("correlated locator missed the joint {e1,e2} explanation: %v", res.Congested)
	}
	// An independence-based locator, in contrast, prefers {e3, e4}:
	// two "cheap" links each covering the paths.
	resI, err := Independent(top, []float64{0.05, 0.05, 0.2, 0.1}, bitset.FromIndices(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !resI.Congested.Equal(bitset.FromIndices(2, 3)) {
		t.Fatalf("independent locator: %v, want {e3,e4}", resI.Congested)
	}
}

func TestFeasibilityInvariant(t *testing.T) {
	// Property: on simulated snapshots, both locators return feasible sets
	// whose coverage equals the observation.
	top := topology.Figure1A()
	model := fig1aModel(t)
	rec, err := netsim.Run(netsim.Config{
		Topology: top, Model: model, Snapshots: 500, Seed: 3,
		Mode: netsim.StateLevel, RecordLinkStates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	probs := congestion.Marginals(model)
	states := []SetStates{{
		Set: top.SetOf(0),
		States: []SubsetState{
			{Links: bitset.New(0), P: 0.60},
			{Links: bitset.FromIndices(0), P: 0.10},
			{Links: bitset.FromIndices(1), P: 0.12},
			{Links: bitset.FromIndices(0, 1), P: 0.18},
		},
	}}
	for snap, obs := range rec.Paths.Rows() {
		for name, run := range map[string]func() (*Result, error){
			"independent": func() (*Result, error) { return Independent(top, probs, obs) },
			"correlated":  func() (*Result, error) { return Correlated(top, probs, states, obs) },
		} {
			res, err := run()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Feasible {
				t.Fatalf("snapshot %d %s: infeasible", snap, name)
			}
			if got := top.Coverage(res.Congested); !got.Equal(obs) {
				t.Fatalf("snapshot %d %s: explanation covers %v, observed %v", snap, name, got, obs)
			}
		}
	}
}

// End-to-end: tomography learns the probabilities, localization uses them;
// the correlation-aware pipeline must detect more truly congested links on
// the correlated scenario.
func TestCorrelatedLocalizationBeatsIndependent(t *testing.T) {
	top := topology.Figure1A()
	model := fig1aModel(t)
	rec, err := netsim.Run(netsim.Config{
		Topology: top, Model: model, Snapshots: 30000, Seed: 5,
		Mode: netsim.StateLevel, RecordLinkStates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := measure.NewEmpirical(rec)
	if err != nil {
		t.Fatal(err)
	}

	// Learn with the theorem algorithm (joints) and the independence
	// baseline (marginals only).
	thm, err := core.Theorem(top, src, core.TheoremOptions{})
	if err != nil {
		t.Fatal(err)
	}
	indep, err := core.Independence(top, src, core.Options{UseAllEquations: true})
	if err != nil {
		t.Fatal(err)
	}

	var states []SetStates
	for p := 0; p < top.NumSets(); p++ {
		ss := SetStates{Set: p}
		// Reconstruct each set's state distribution from the theorem output.
		links := top.CorrelationSet(p).Indices()
		bitset.EnumerateSubsets(links, func(s *bitset.Set) bool {
			if prob, ok := thm.JointProb[s.Key()]; ok {
				ss.States = append(ss.States, SubsetState{Links: s.Clone(), P: prob})
			}
			return true
		})
		ss.States = append(ss.States, SubsetState{Links: bitset.New(0), P: thm.ProbSetEmpty[p]})
		states = append(states, ss)
	}

	eval := func(run func(obs *bitset.Set) (*Result, error)) Metrics {
		var inferred []*bitset.Set
		for _, obs := range rec.Paths.Rows() {
			res, err := run(obs)
			if err != nil {
				t.Fatal(err)
			}
			inferred = append(inferred, res.Congested)
		}
		m, err := Evaluate(rec.Links.Rows(), inferred)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	mCorr := eval(func(obs *bitset.Set) (*Result, error) {
		return Correlated(top, thm.CongestionProb, states, obs)
	})
	mIndep := eval(func(obs *bitset.Set) (*Result, error) {
		return Independent(top, indep.CongestionProb, obs)
	})

	if mCorr.DetectionRate <= mIndep.DetectionRate-0.01 {
		t.Fatalf("correlated DR %.3f not better than independent DR %.3f",
			mCorr.DetectionRate, mIndep.DetectionRate)
	}
	if mCorr.DetectionRate < 0.7 {
		t.Fatalf("correlated detection rate %.3f too low", mCorr.DetectionRate)
	}
	t.Logf("correlated: DR=%.3f FPR=%.3f | independent: DR=%.3f FPR=%.3f",
		mCorr.DetectionRate, mCorr.FalsePositiveRate, mIndep.DetectionRate, mIndep.FalsePositiveRate)
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(make([]*bitset.Set, 2), make([]*bitset.Set, 3)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	m, err := Evaluate(nil, nil)
	if err != nil || m.Snapshots != 0 {
		t.Fatalf("empty evaluate: %+v, %v", m, err)
	}
}

var _ = rand.Int // keep math/rand available for future property tests
