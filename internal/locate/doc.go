// Package locate implements per-snapshot congested-link localization — the
// follow-up problem the paper outlines in Section 3.3 ("Can our result help
// determine whether a link was congested or not?"): given the congestion
// probabilities learned by tomography (Sections 3–4) and the set of paths
// observed congested during one snapshot, determine which particular links
// were congested.
//
// This is the classic ill-posed Boolean inverse problem of [13, 10, 12]:
// many link sets explain the same path observations. Following the paper's
// argument, the right disambiguation is to pick the most likely feasible
// explanation — which requires the very probabilities Theorem 1 makes
// identifiable under correlation:
//
//   - Independent scores each candidate link by its learned marginal
//     probability and solves the resulting weighted set-cover problem
//     (greedy with local pruning) — the [12]-style approach.
//   - Correlated additionally consumes learned per-correlation-set joint
//     state probabilities (e.g. from the Theorem algorithm), so that a
//     correlation set whose links usually fail together is charged once for
//     the joint event rather than once per link.
//
// Both return a feasible explanation: every congested path is covered and no
// good path touches a reported link.
package locate
