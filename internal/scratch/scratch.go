// Package scratch holds the one slice-resize idiom every workspace layer
// uses: resize to n reusing capacity, allocating only on growth. Shared so
// the growth policy lives in exactly one place.
package scratch

// Grow returns s resized to length n, reusing capacity when possible. The
// contents of the returned slice are unspecified (previous values where
// capacity was reused, zero values after a reallocation); callers must fill
// every element they read.
func Grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// GrowZero returns s resized to length n with every element set to the zero
// value.
func GrowZero[T any](s []T, n int) []T {
	s = Grow(s, n)
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}
