package plan

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bitset"
	"repro/internal/brite"
	"repro/internal/congestion"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/mle"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/topology"
)

func briteFixture(t *testing.T, seed int64) (*topology.Topology, *measure.Empirical) {
	t.Helper()
	net, err := brite.Generate(brite.Config{ASes: 25, EdgesPerAS: 2, Paths: 80, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.Brite(scenario.BriteConfig{
		Net: net, FracCongested: 0.12, Level: scenario.HighCorrelation, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := netsim.Run(netsim.Config{
		Topology: s.Topology, Model: s.Model, Snapshots: 600, Seed: seed + 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := measure.NewEmpirical(rec)
	if err != nil {
		t.Fatal(err)
	}
	return s.Topology, src
}

func fig1aFixture(t *testing.T) (*topology.Topology, *measure.Empirical) {
	t.Helper()
	top := topology.Figure1A()
	model, err := congestion.NewTable(4, []congestion.GroupTable{
		{
			Links: []int{0, 1},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: 0.60},
				{Links: bitset.FromIndices(0), P: 0.10},
				{Links: bitset.FromIndices(1), P: 0.12},
				{Links: bitset.FromIndices(0, 1), P: 0.18},
			},
		},
		{Links: []int{2}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.8}, {Links: bitset.FromIndices(2), P: 0.2},
		}},
		{Links: []int{3}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.9}, {Links: bitset.FromIndices(3), P: 0.1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := netsim.Run(netsim.Config{Topology: top, Model: model, Snapshots: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	src, err := measure.NewEmpirical(rec)
	if err != nil {
		t.Fatal(err)
	}
	return top, src
}

// TestPlanMatchesOneShotAlgorithms pins every plan-routed estimator
// bit-identical to its one-shot counterpart.
func TestPlanMatchesOneShotAlgorithms(t *testing.T) {
	top, src := briteFixture(t, 11)
	p, err := Compile(top, Options{})
	if err != nil {
		t.Fatal(err)
	}

	wantCorr, err := core.Correlation(top, src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotCorr, err := p.Correlation(src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantCorr, gotCorr) {
		t.Fatal("plan Correlation differs from core.Correlation")
	}

	wantIndep, err := core.Independence(top, src, core.Options{UseAllEquations: true})
	if err != nil {
		t.Fatal(err)
	}
	gotIndep, err := p.Independence(src, core.Options{UseAllEquations: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantIndep, gotIndep) {
		t.Fatal("plan Independence differs from core.Independence")
	}

	wantMLE, err := mle.Estimate(top, src, mle.Options{MaxIters: 60})
	if err != nil {
		t.Fatal(err)
	}
	gotMLE, err := p.MLE(src, mle.Options{MaxIters: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantMLE, gotMLE) {
		t.Fatal("plan MLE differs from mle.Estimate")
	}

	ftop, fsrc := fig1aFixture(t)
	fp, err := Compile(ftop, Options{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	wantThm, err := core.Theorem(ftop, fsrc, core.TheoremOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gotThm, err := fp.Theorem(fsrc, core.TheoremOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantThm, gotThm) {
		t.Fatal("plan Theorem differs from core.Theorem")
	}
}

// TestPlanMemoizesStructures checks a structural signature compiles once
// and is shared, while distinct signatures get distinct structures.
func TestPlanMemoizesStructures(t *testing.T) {
	top, _ := briteFixture(t, 13)
	p, err := Compile(top, Options{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.linearPlan(false, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.linearPlan(false, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same signature compiled twice")
	}
	c, err := p.linearPlan(false, core.Options{DisablePairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("distinct signatures shared one structure")
	}
	d, err := p.linearPlan(true, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a == d {
		t.Fatal("identity partition shared the correlation structure")
	}
	// Normalization: spelled-out defaults and the zero value are one key.
	e, err := p.linearPlan(false, core.Options{MinProb: 1e-9, MaxPairCandidates: 200000, MaxLPSize: 600})
	if err != nil {
		t.Fatal(err)
	}
	if a != e {
		t.Fatal("explicit default options compiled a duplicate structure")
	}
}

// TestPlanConcurrentUse hammers one shared plan from many goroutines (run
// under -race in CI): every result must equal the serial reference.
func TestPlanConcurrentUse(t *testing.T) {
	top, src := briteFixture(t, 17)
	p, err := Compile(top, Options{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	wantCorr, err := core.Correlation(top, src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantIndep, err := core.Independence(top, src, core.Options{UseAllEquations: true})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				corr, err := p.Correlation(src, core.Options{})
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(wantCorr, corr) {
					errs <- fmt.Errorf("goroutine %d: concurrent Correlation differs", g)
					return
				}
				indep, err := p.Independence(src, core.Options{UseAllEquations: true})
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(wantIndep, indep) {
					errs <- fmt.Errorf("goroutine %d: concurrent Independence differs", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
