// Package plan compiles a topology's inference structures once and reuses
// them across any number of measurement sources — new records, streaming
// appends, batch trials. A Plan aggregates the compiled structural phases of
// every estimator family:
//
//   - the Section-4 equation selection (core.Structure) for the correlation
//     algorithm and the Nguyen–Thiran identity partition, keyed by their
//     structural options, so e.g. the UseAllEquations and paper-faithful
//     variants coexist on one plan;
//   - the exact algorithm's subset enumeration, Assumption-4 validation and
//     Γ-candidate lists (core.TheoremPlan);
//   - the composite-likelihood MLE's observation structure (mle.Plan);
//   - the Assumption-4 identifiability check, memoized per enumeration
//     budget.
//
// Every compiled structure is memoized under a sync.Once, so concurrent
// first uses compile exactly once; all Plan methods are safe for concurrent
// use and produce results bit-identical to the corresponding one-shot
// algorithms (core.Correlation, core.Independence, core.Theorem,
// mle.Estimate).
package plan

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/mle"
	"repro/internal/topology"
)

// Options tunes Compile.
type Options struct {
	// Algorithm seeds the eagerly compiled correlation and independence
	// structures. Estimate-time options with the same structural signature
	// reuse them; other signatures compile lazily on first use.
	Algorithm core.Options
	// Lazy skips the eager compilation entirely: every structure compiles
	// on first use. Useful when only one estimator family will run.
	Lazy bool
	// Identifiability runs the Assumption-4 check at compile time (with
	// SubsetCap as the enumeration budget); the result is available via
	// Plan.Identifiability without recomputation.
	Identifiability bool
	// SubsetCap is the enumeration budget of the compile-time
	// identifiability check (≤ 0 uses the default).
	SubsetCap int
}

// linearKey is the comparable structural signature of a compiled linear
// structure: the correlation-set interpretation plus every core.Options
// field that shapes equation selection or solving. PathFilter is a func and
// cannot be part of a key; options carrying one bypass the memo.
type linearKey struct {
	identity          bool
	minProb           float64
	maxPairCandidates int
	maxLPSize         int
	useAllEquations   bool
	disablePairs      bool
	forceMinNorm      bool
}

func keyFor(identity bool, opts core.Options) linearKey {
	return linearKey{
		identity:          identity,
		minProb:           opts.MinProb,
		maxPairCandidates: opts.MaxPairCandidates,
		maxLPSize:         opts.MaxLPSize,
		useAllEquations:   opts.UseAllEquations,
		disablePairs:      opts.DisablePairs,
		forceMinNorm:      opts.ForceMinNorm,
	}
}

// linearEntry memoizes one compiled linear structure (once-guarded so
// concurrent first uses compile exactly once).
type linearEntry struct {
	once sync.Once
	lp   *core.LinearPlan
	err  error
}

// theoremEntry memoizes one compiled theorem structure.
type theoremEntry struct {
	once sync.Once
	tp   *core.TheoremPlan
	err  error
}

// identEntry memoizes one identifiability check.
type identEntry struct {
	once sync.Once
	res  topology.CheckResult
}

// Plan is a compiled, reusable inference plan for one topology. Compile it
// once, then run any estimator against any number of measurement sources;
// the expensive topology-dependent work is shared. All methods are safe for
// concurrent use.
type Plan struct {
	top *topology.Topology

	mu      sync.Mutex
	linear  map[linearKey]*linearEntry
	theorem map[core.TheoremOptions]*theoremEntry
	ident   map[int]*identEntry

	mleOnce sync.Once
	mlePlan *mle.Plan
	mleErr  error
}

// Compile builds an inference plan for a topology. Unless opts.Lazy is set,
// the correlation and independence equation structures for opts.Algorithm
// are compiled eagerly (they are what EvaluateBatch-style workloads reuse
// across every trial); everything else compiles on first use.
func Compile(top *topology.Topology, opts Options) (*Plan, error) {
	if top == nil {
		return nil, fmt.Errorf("plan: nil topology")
	}
	p := &Plan{
		top:     top,
		linear:  map[linearKey]*linearEntry{},
		theorem: map[core.TheoremOptions]*theoremEntry{},
		ident:   map[int]*identEntry{},
	}
	if !opts.Lazy {
		if _, err := p.linearPlan(false, opts.Algorithm); err != nil {
			return nil, err
		}
		if _, err := p.linearPlan(true, opts.Algorithm); err != nil {
			return nil, err
		}
	}
	if opts.Identifiability {
		p.Identifiability(opts.SubsetCap)
	}
	return p, nil
}

// Topology returns the topology the plan was compiled for.
func (p *Plan) Topology() *topology.Topology { return p.top }

// linearPlan returns the memoized compiled structure for one linear-family
// signature, compiling it on first use. Options are normalized first, so a
// zero value and an explicitly spelled-out default share one structure.
// Options carrying a PathFilter are structurally unique per call and
// compile fresh without touching the memo.
func (p *Plan) linearPlan(identity bool, opts core.Options) (*core.LinearPlan, error) {
	if opts.PathFilter != nil {
		return core.CompileLinear(p.top, identity, opts)
	}
	opts = opts.Normalized()
	key := keyFor(identity, opts)
	p.mu.Lock()
	e := p.linear[key]
	if e == nil {
		e = &linearEntry{}
		p.linear[key] = e
	}
	p.mu.Unlock()
	e.once.Do(func() { e.lp, e.err = core.CompileLinear(p.top, identity, opts) })
	return e.lp, e.err
}

// Workspace bundles one reusable evaluate-phase scratch state per estimator
// family (the core linear/theorem workspace and the MLE workspace). A
// workspace is created with Plan.NewWorkspace (or zero-valued), reused by
// one goroutine across any number of ...In calls — and across plans: it
// holds no plan-specific state, only growable buffers — and must never be
// shared between goroutines (concurrent use panics). Results of the ...In
// methods alias workspace and plan storage: read-only, valid until the next
// call on the same workspace.
type Workspace struct {
	core core.Workspace
	mle  mle.Workspace
}

// NewWorkspace returns a workspace for the plan's ...In methods. Plans
// don't retain workspaces; the method exists so call sites read
// "plan.NewWorkspace()" at the point the ownership rule (one per goroutine)
// matters.
func (p *Plan) NewWorkspace() *Workspace { return &Workspace{} }

// theoremPlan returns the memoized compiled theorem structure for one
// options signature.
func (p *Plan) theoremPlan(opts core.TheoremOptions) (*core.TheoremPlan, error) {
	opts = opts.Normalized()
	p.mu.Lock()
	e := p.theorem[opts]
	if e == nil {
		e = &theoremEntry{}
		p.theorem[opts] = e
	}
	p.mu.Unlock()
	e.once.Do(func() { e.tp, e.err = core.CompileTheorem(p.top, opts) })
	return e.tp, e.err
}

// Correlation runs the paper's Section-4 algorithm through the compiled
// plan. Bit-identical to core.Correlation(top, src, opts).
func (p *Plan) Correlation(src measure.Source, opts core.Options) (*core.Result, error) {
	lp, err := p.linearPlan(false, opts)
	if err != nil {
		return nil, err
	}
	return lp.Run(src)
}

// CorrelationIn is Correlation with workspace-owned outputs: zero
// steady-state allocations, identical arithmetic. The result aliases ws.
func (p *Plan) CorrelationIn(ws *Workspace, src measure.Source, opts core.Options) (*core.Result, error) {
	lp, err := p.linearPlan(false, opts)
	if err != nil {
		return nil, err
	}
	return lp.RunIn(&ws.core, src)
}

// Independence runs the Nguyen–Thiran baseline through the compiled plan.
// Bit-identical to core.Independence(top, src, opts).
func (p *Plan) Independence(src measure.Source, opts core.Options) (*core.Result, error) {
	lp, err := p.linearPlan(true, opts)
	if err != nil {
		return nil, err
	}
	return lp.Run(src)
}

// IndependenceIn is Independence with workspace-owned outputs: zero
// steady-state allocations, identical arithmetic. The result aliases ws.
func (p *Plan) IndependenceIn(ws *Workspace, src measure.Source, opts core.Options) (*core.Result, error) {
	lp, err := p.linearPlan(true, opts)
	if err != nil {
		return nil, err
	}
	return lp.RunIn(&ws.core, src)
}

// Theorem runs the exact Appendix-A algorithm through the compiled plan.
// Bit-identical to core.Theorem(top, src, opts).
func (p *Plan) Theorem(src measure.PatternSource, opts core.TheoremOptions) (*core.TheoremResult, error) {
	tp, err := p.theoremPlan(opts)
	if err != nil {
		return nil, err
	}
	return tp.Run(src)
}

// TheoremIn is Theorem with workspace-owned outputs: zero steady-state
// allocations when the source supports key-addressed pattern queries,
// identical arithmetic. The result aliases ws.
func (p *Plan) TheoremIn(ws *Workspace, src measure.PatternSource, opts core.TheoremOptions) (*core.TheoremResult, error) {
	tp, err := p.theoremPlan(opts)
	if err != nil {
		return nil, err
	}
	return tp.RunIn(&ws.core, src)
}

// MLE runs the composite-likelihood estimator through the compiled plan.
// Bit-identical to mle.Estimate(top, src, opts).
func (p *Plan) MLE(src mle.Source, opts mle.Options) (*mle.Result, error) {
	mp, err := p.mlePlanCompiled()
	if err != nil {
		return nil, err
	}
	return mp.Estimate(src, opts)
}

// MLEIn is MLE with workspace-owned optimizer state: every per-iteration
// buffer is reused, identical arithmetic. The result aliases ws.
func (p *Plan) MLEIn(ws *Workspace, src mle.Source, opts mle.Options) (*mle.Result, error) {
	mp, err := p.mlePlanCompiled()
	if err != nil {
		return nil, err
	}
	return mp.EstimateIn(&ws.mle, src, opts)
}

func (p *Plan) mlePlanCompiled() (*mle.Plan, error) {
	p.mleOnce.Do(func() { p.mlePlan, p.mleErr = mle.Compile(p.top) })
	return p.mlePlan, p.mleErr
}

// Identifiability returns the memoized Assumption-4 check for the given
// enumeration budget (≤ 0 uses the default).
func (p *Plan) Identifiability(subsetCap int) topology.CheckResult {
	p.mu.Lock()
	e := p.ident[subsetCap]
	if e == nil {
		e = &identEntry{}
		p.ident[subsetCap] = e
	}
	p.mu.Unlock()
	e.once.Do(func() { e.res = topology.CheckIdentifiability(p.top, subsetCap) })
	return e.res
}
