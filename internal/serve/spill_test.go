package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	tomography "repro"
	"repro/internal/bitset"
)

// TestSpillDaemonMatchesRAM pins the serving-layer half of the out-of-core
// contract: a daemon whose tenant windows spill sealed column segments to
// disk (Config.SpillDir) serves estimates bit-identical to a RAM-only
// daemon fed the same probe stream, and each tenant's segments land in its
// own escaped-name subdirectory — including a tenant named "../escape"
// that must NOT climb out of the spill root.
func TestSpillDaemonMatchesRAM(t *testing.T) {
	const (
		window = 120
		stride = 40
		snaps  = 360
	)
	scn, err := tomography.BuildScenario("quickstart", 5)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: scn.Topology, Model: scn.Model, Snapshots: snaps, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}

	spillRoot := t.TempDir()
	ram := New(Config{Shards: 1, QueueDepth: 64})
	spill := New(Config{Shards: 1, QueueDepth: 64, SpillDir: spillRoot, SpillSegmentRows: 64})
	ramSrv := httptest.NewServer(ram.Handler())
	spillSrv := httptest.NewServer(spill.Handler())
	defer ramSrv.Close()
	defer spillSrv.Close()
	defer ram.Shutdown(context.Background())
	defer spill.Shutdown(context.Background())

	const tenant = "../escape"
	for _, d := range []*Daemon{ram, spill} {
		if _, err := d.Register(TenantConfig{
			Name: tenant, Scenario: "quickstart", Seed: 5, Window: window,
		}); err != nil {
			t.Fatal(err)
		}
	}

	row := bitset.New(scn.Topology.NumPaths())
	checked := 0
	for at := 0; at < snaps; at += stride {
		sets := make([]*bitset.Set, 0, stride)
		for s := at; s < at+stride && s < snaps; s++ {
			rec.Paths.RowInto(s, row)
			sets = append(sets, row.Clone())
		}
		batch, err := EncodeReports(sets)
		if err != nil {
			t.Fatal(err)
		}
		for name, srv := range map[string]*httptest.Server{"RAM": ramSrv, "spill": spillSrv} {
			if status, body := post(t, srv.URL+"/v1/ingest?tenant=../escape", batch); status != http.StatusAccepted {
				t.Fatalf("%s: ingest at %d: status %d: %s", name, at, status, body)
			}
		}
		if at+stride < window {
			continue
		}
		var a, b EstimateResponse
		if status, body := get(t, ramSrv.URL+"/v1/estimate?tenant=../escape", &a); status != http.StatusOK {
			t.Fatalf("RAM estimate: status %d: %s", status, body)
		}
		if status, body := get(t, spillSrv.URL+"/v1/estimate?tenant=../escape", &b); status != http.StatusOK {
			t.Fatalf("spill estimate: status %d: %s", status, body)
		}
		if a.SnapshotsSeen != b.SnapshotsSeen || a.WindowLen != b.WindowLen {
			t.Fatalf("at %d: RAM covers %d/%d, spill %d/%d", at, a.SnapshotsSeen, a.WindowLen, b.SnapshotsSeen, b.WindowLen)
		}
		if !bitIdentical(a.CongestionProb, b.CongestionProb) {
			t.Fatalf("at %d: spill daemon estimate differs from RAM\n RAM:   %v\n spill: %v", at, a.CongestionProb, b.CongestionProb)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no estimates compared")
	}

	// The hostile tenant name must have been confined to an escaped
	// subdirectory of the spill root.
	entries, err := os.ReadDir(spillRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !entries[0].IsDir() {
		t.Fatalf("spill root holds %v, want exactly one tenant directory", entries)
	}
	sub := entries[0].Name()
	if strings.Contains(sub, "..") || strings.ContainsAny(sub, "/\\") {
		t.Fatalf("tenant subdirectory %q was not sanitized", sub)
	}
	if _, err := os.Stat(filepath.Join(spillRoot, sub, "MANIFEST.json")); err != nil {
		t.Fatalf("tenant spill directory missing its manifest: %v", err)
	}
	segs, err := filepath.Glob(filepath.Join(spillRoot, sub, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("spill tenant never sealed a segment to disk")
	}
}
