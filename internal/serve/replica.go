package serve

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	tomography "repro"
)

// viewBox is one published read-replica view of a tenant's window plus the
// progress gauges frozen with it. The shard worker publishes a fresh box
// after every applied ingest batch (an atomic pointer swap on
// Tenant.view); estimate-pool workers acquire the latest box, run
// inference against its immutable view with their own workspace, and
// release it. The reader count arbitrates the view's storage between the
// publisher (which wants to recycle the previous view's buffers into the
// next one) and late readers (which must never have the view closed under
// them):
//
//   - acquire: CAS readers r → r+1 for r ≥ 0; fails once the box has been
//     claimed, which tells the reader to reload Tenant.view.
//   - claim: one-shot CAS 0 → −1. The publisher claims the box it retires —
//     success means no readers, so the view's buffers are recycled into the
//     next view; failure leaves the close to the last reader.
//   - release: decrement; the reader that hits 0 on a retired box claims
//     and closes the view (the publisher has already moved on).
type viewBox struct {
	view         *tomography.WindowView
	seen         int // window's lifetime observation count at publish time
	len          int // window occupancy at publish time
	changePoints int
	published    time.Time

	readers atomic.Int32  // active readers; −1 once claimed
	retired atomic.Bool   // a newer box has replaced this one
	changed chan struct{} // closed when a newer box is published
}

func (b *viewBox) acquire() bool {
	for {
		r := b.readers.Load()
		if r < 0 {
			return false
		}
		if b.readers.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

func (b *viewBox) claim() bool { return b.readers.CompareAndSwap(0, -1) }

func (b *viewBox) release() {
	if b.readers.Add(-1) == 0 && b.retired.Load() && b.claim() {
		b.view.Close()
	}
}

// publishView freezes the tenant's window into a new viewBox and swaps it
// in as the latest. Called by the tenant's shard worker per the publication
// policy — after each applied batch by default, every
// Config.PublishEveryBatches batches (with the queue-drain flushes worker
// documents) otherwise — and once at registration, so warming tenants have
// a view to answer from. The previous box is retired, and its view either
// recycled into the new one (no readers) or closed by its last reader.
func (d *Daemon) publishView(t *Tenant) {
	old := t.view.Load()
	var recycle *tomography.WindowView
	if old != nil {
		old.retired.Store(true)
		if old.claim() {
			recycle = old.view
		}
	}
	box := &viewBox{
		view:         t.win.View(recycle),
		seen:         t.win.Seen(),
		len:          t.win.Len(),
		changePoints: len(t.win.ChangePoints()),
		published:    time.Now(),
		changed:      make(chan struct{}),
	}
	t.view.Store(box)
	if old != nil {
		close(old.changed)
	}
	// Publication-policy bookkeeping; same ownership as the caller (the
	// tenant's shard worker, or Register before the tenant is visible).
	t.pendingBatches = 0
	t.lastPublished = box.published
	d.metrics.viewsPublished.Add(1)
}

// estJob is one estimate request on the estimate pool's queue. target is
// the tenant's accepted-snapshot count at enqueue time: the worker serves
// the estimate from the first published view that has observed at least
// that many snapshots, which preserves the ingest-then-estimate ordering
// HTTP clients relied on when estimates rode the shard queue.
type estJob struct {
	tenant   *Tenant
	target   int64
	enqueued time.Time
	ctx      context.Context
	done     chan estimateReply
}

type estimateReply struct {
	res *EstimateResponse
	err error
}

// estimateWorker drains the estimate queue until it closes (daemon
// shutdown). Each worker owns one evaluate workspace reused across every
// estimate it serves — the per-replica workspace of the read-replica
// design; the plan stays shared, the views are immutable, and the
// workspace is the only mutable state, so replicas scale without touching
// the ingest path.
func (d *Daemon) estimateWorker() {
	defer d.estWG.Done()
	ws := tomography.NewWorkspace()
	for j := range d.estQueue {
		res, err := d.estimateReplica(ws, j)
		d.metrics.estimateLatency.observe(time.Since(j.enqueued))
		j.done <- estimateReply{res: res, err: err}
	}
}

// estimateReplica serves one estimate from the tenant's latest read-replica
// view, waiting for a view that has observed the job's target snapshot
// count first. The wait can always make progress: every batch accepted
// before the job was enqueued is either applied and published or still in
// the shard queue, whose worker publishes after applying it — including
// during shutdown, where the shard workers drain before the estimate queue
// closes.
func (d *Daemon) estimateReplica(ws *tomography.Workspace, j estJob) (*EstimateResponse, error) {
	t := j.tenant
	for {
		box := t.view.Load()
		if int64(box.seen) < j.target {
			select {
			case <-box.changed:
			case <-j.ctx.Done():
				return nil, fmt.Errorf("serve: estimate %q: %w", t.name, j.ctx.Err())
			}
			continue
		}
		if !box.acquire() {
			continue // box recycled under us; a newer one is published
		}
		res, err := d.estimateBox(ws, t, box)
		box.release()
		return res, err
	}
}

// estimateBox runs the tenant's estimator against one acquired view.
func (d *Daemon) estimateBox(ws *tomography.Workspace, t *Tenant, box *viewBox) (*EstimateResponse, error) {
	if box.len < t.window {
		d.metrics.estimateErrors.Add(1)
		return nil, errWindowWarming{msg: fmt.Sprintf(
			"serve: tenant %q window warming: %d/%d snapshots", t.name, box.len, t.window)}
	}
	res, err := box.view.EstimateIn(ws)
	if err != nil {
		d.metrics.estimateErrors.Add(1)
		return nil, err
	}
	probs := make([]float64, len(res.CongestionProb))
	copy(probs, res.CongestionProb)
	t.estimates.Add(1)
	d.metrics.estimates.Add(1)
	return &EstimateResponse{
		Tenant:         t.name,
		Estimator:      t.estimator,
		WindowSize:     t.window,
		WindowLen:      box.len,
		SnapshotsSeen:  box.seen,
		CongestionProb: probs,
		ChangePoints:   box.changePoints,
	}, nil
}
