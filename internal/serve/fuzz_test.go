package serve

import (
	"strings"
	"testing"
)

// FuzzIngestDecode hardens the probe-report wire decoder, the one parser
// that faces the network on every request: any byte sequence must either
// decode into valid congested-path sets or fail with a descriptive
// serve-prefixed error — never panic, and never hand back sets that
// reference paths outside the tenant's topology. Corpus seeds live under
// testdata/fuzz/FuzzIngestDecode and are replayed by the CI fuzz step.
func FuzzIngestDecode(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"reports":[[0,2],[1],[]]}`),           // well-formed batch
		[]byte(`{"reports":[]}`),                       // empty batch
		[]byte(`{"reports":[[-1]]}`),                   // negative index
		[]byte(`{"reports":[[99]]}`),                   // out of range
		[]byte(`{"reports":[[0,0,0]]}`),                // duplicate indices
		[]byte(`{}`),                                   // missing field
		[]byte(`{"reports":[[0.5]]}`),                  // float index
		[]byte(`{"reports":[["a"]]}`),                  // string index
		[]byte(`{"reports":[[0]],"extra":true}`),       // unknown field
		[]byte(`{"reports":[[18446744073709551615]]}`), // uint64 overflow
		[]byte(`not json at all`),
		[]byte(`{"reports":[[`),
		[]byte(``),
		[]byte(`null`),
		[]byte(`[[0]]`),
	}
	for _, s := range seeds {
		f.Add(s, 8)
	}
	f.Fuzz(func(t *testing.T, data []byte, numPaths int) {
		if numPaths < 0 {
			numPaths = -numPaths
		}
		numPaths %= 64
		sets, err := DecodeReports(data, numPaths, 1024)
		if err != nil {
			if sets != nil {
				t.Fatalf("non-nil sets alongside error %v", err)
			}
			if !strings.HasPrefix(err.Error(), "serve: ") {
				t.Fatalf("error %q lacks the serve: prefix", err)
			}
			return
		}
		if len(sets) == 0 {
			t.Fatal("decode succeeded with zero sets (empty batches must error)")
		}
		if len(sets) > 1024 {
			t.Fatalf("decode returned %d sets, limit 1024", len(sets))
		}
		for i, s := range sets {
			if s == nil {
				t.Fatalf("set %d is nil", i)
			}
			s.ForEach(func(p int) bool {
				if p < 0 || p >= numPaths {
					t.Fatalf("set %d contains path %d, topology has %d", i, p, numPaths)
				}
				return true
			})
		}
		// Round trip: re-encoding and re-decoding a valid batch must be
		// lossless.
		encoded, err := EncodeReports(sets)
		if err != nil {
			t.Fatalf("re-encoding valid sets: %v", err)
		}
		again, err := DecodeReports(encoded, numPaths, 1024)
		if err != nil {
			t.Fatalf("re-decoding encoded sets: %v", err)
		}
		if len(again) != len(sets) {
			t.Fatalf("round trip changed batch length: %d -> %d", len(sets), len(again))
		}
		for i := range sets {
			if !sets[i].Equal(again[i]) {
				t.Fatalf("round trip changed set %d: %v -> %v", i, sets[i], again[i])
			}
		}
	})
}
