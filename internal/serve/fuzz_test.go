package serve

import (
	"strings"
	"testing"

	"repro/internal/bitset"
)

// FuzzIngestDecode hardens the probe-report wire decoder, the one parser
// that faces the network on every request: any byte sequence must either
// decode into valid congested-path sets or fail with a descriptive
// serve-prefixed error — never panic, and never hand back sets that
// reference paths outside the tenant's topology. Corpus seeds live under
// testdata/fuzz/FuzzIngestDecode and are replayed by the CI fuzz step.
func FuzzIngestDecode(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"reports":[[0,2],[1],[]]}`),           // well-formed batch
		[]byte(`{"reports":[]}`),                       // empty batch
		[]byte(`{"reports":[[-1]]}`),                   // negative index
		[]byte(`{"reports":[[99]]}`),                   // out of range
		[]byte(`{"reports":[[0,0,0]]}`),                // duplicate indices
		[]byte(`{}`),                                   // missing field
		[]byte(`{"reports":[[0.5]]}`),                  // float index
		[]byte(`{"reports":[["a"]]}`),                  // string index
		[]byte(`{"reports":[[0]],"extra":true}`),       // unknown field
		[]byte(`{"reports":[[18446744073709551615]]}`), // uint64 overflow
		[]byte(`not json at all`),
		[]byte(`{"reports":[[`),
		[]byte(``),
		[]byte(`null`),
		[]byte(`[[0]]`),
	}
	for _, s := range seeds {
		f.Add(s, 8)
	}
	f.Fuzz(func(t *testing.T, data []byte, numPaths int) {
		if numPaths < 0 {
			numPaths = -numPaths
		}
		numPaths %= 64
		sets, err := DecodeReports(data, numPaths, 1024)
		if err != nil {
			if sets != nil {
				t.Fatalf("non-nil sets alongside error %v", err)
			}
			if !strings.HasPrefix(err.Error(), "serve: ") {
				t.Fatalf("error %q lacks the serve: prefix", err)
			}
			return
		}
		if len(sets) == 0 {
			t.Fatal("decode succeeded with zero sets (empty batches must error)")
		}
		if len(sets) > 1024 {
			t.Fatalf("decode returned %d sets, limit 1024", len(sets))
		}
		for i, s := range sets {
			if s == nil {
				t.Fatalf("set %d is nil", i)
			}
			s.ForEach(func(p int) bool {
				if p < 0 || p >= numPaths {
					t.Fatalf("set %d contains path %d, topology has %d", i, p, numPaths)
				}
				return true
			})
		}
		// Round trip: re-encoding and re-decoding a valid batch must be
		// lossless.
		encoded, err := EncodeReports(sets)
		if err != nil {
			t.Fatalf("re-encoding valid sets: %v", err)
		}
		again, err := DecodeReports(encoded, numPaths, 1024)
		if err != nil {
			t.Fatalf("re-decoding encoded sets: %v", err)
		}
		if len(again) != len(sets) {
			t.Fatalf("round trip changed batch length: %d -> %d", len(sets), len(again))
		}
		for i := range sets {
			if !sets[i].Equal(again[i]) {
				t.Fatalf("round trip changed set %d: %v -> %v", i, sets[i], again[i])
			}
		}
	})
}

// FuzzBinaryIngestDecode hardens the TOMOW1 binary wire decoder the same
// way FuzzIngestDecode hardens the JSON one: any byte sequence must either
// decode into a well-formed word batch or fail with a descriptive
// serve-prefixed error — never panic, and never hand back rows with bits
// past the tenant's path count. Corpus seeds live under
// testdata/fuzz/FuzzBinaryIngestDecode and are replayed by the CI fuzz
// step.
func FuzzBinaryIngestDecode(f *testing.F) {
	mustEncode := func(numPaths int, reports ...[]int) []byte {
		sets := make([]*bitset.Set, len(reports))
		for i, r := range reports {
			sets[i] = bitset.FromIndices(r...)
		}
		body, err := EncodeReportsBinary(sets, numPaths)
		if err != nil {
			f.Fatal(err)
		}
		return body
	}
	corrupt := func(body []byte, at int, b byte) []byte {
		c := append([]byte(nil), body...)
		c[at] = b
		return c
	}
	sparse := mustEncode(40, []int{0, 2}, []int{1}, nil)         // mostly-good rows pick the sparse payload
	dense := mustEncode(8, []int{0, 1, 2, 3, 4}, []int{1, 5, 7}) // dense rows pick the packed-word payload
	seeds := [][]byte{
		sparse,
		dense,
		sparse[:binaryHeaderLen-1],                   // truncated header
		corrupt(dense, 0, 'X'),                       // bad magic
		corrupt(dense, 6, 9),                         // unsupported version
		corrupt(dense, 7, 0x82),                      // unknown flag bits
		corrupt(dense, 8, 99),                        // path-count mismatch
		corrupt(dense, 12, 200),                      // snapshot count vs payload length
		corrupt(dense, len(dense)-1, 0xFF),           // payload byte flip ⇒ CRC mismatch
		corrupt(sparse, binaryHeaderLen, 0xEE),       // sparse count corrupted ⇒ CRC mismatch
		append(append([]byte(nil), sparse...), 0, 0), // trailing bytes
		dense[:len(dense)-3],                         // truncated payload
		[]byte(binaryMagic),                          // magic alone
		[]byte(``),
		[]byte(`{"reports":[[0]]}`), // JSON posted as binary
	}
	for _, s := range seeds {
		f.Add(s, 8)
		f.Add(s, 40)
	}
	f.Fuzz(func(t *testing.T, data []byte, numPaths int) {
		if numPaths < 0 {
			numPaths = -numPaths
		}
		numPaths %= 64
		b := getWordBatch()
		defer putWordBatch(b)
		if err := decodeReportsBinaryInto(b, data, numPaths, 1024); err != nil {
			if !strings.HasPrefix(err.Error(), "serve: ") {
				t.Fatalf("error %q lacks the serve: prefix", err)
			}
			return
		}
		if b.rows < 1 || b.rows > 1024 {
			t.Fatalf("decode succeeded with %d rows, want 1..1024", b.rows)
		}
		if b.wordsPerRow != rowWords(numPaths) {
			t.Fatalf("decode produced %d words per row, want %d for %d paths", b.wordsPerRow, rowWords(numPaths), numPaths)
		}
		sets := make([]*bitset.Set, b.rows)
		tailMask := uint64(0)
		if tail := numPaths % 64; tail != 0 {
			tailMask = ^uint64(0) << uint(tail)
		}
		for i := range sets {
			row := b.row(i)
			if tailMask != 0 && row[len(row)-1]&tailMask != 0 {
				t.Fatalf("row %d carries bits past path %d: %#x", i, numPaths, row[len(row)-1])
			}
			sets[i] = bitset.FromWords(row)
		}
		// Round trip: re-encoding the decoded rows and decoding again must
		// reproduce the word batch exactly.
		encoded, err := EncodeReportsBinary(sets, numPaths)
		if err != nil {
			t.Fatalf("re-encoding valid rows: %v", err)
		}
		again := getWordBatch()
		defer putWordBatch(again)
		if err := decodeReportsBinaryInto(again, encoded, numPaths, 1024); err != nil {
			t.Fatalf("re-decoding encoded rows: %v", err)
		}
		if again.rows != b.rows {
			t.Fatalf("round trip changed batch length: %d -> %d", b.rows, again.rows)
		}
		for i := 0; i < b.rows; i++ {
			orig, rt := b.row(i), again.row(i)
			for w := range orig {
				if orig[w] != rt[w] {
					t.Fatalf("round trip changed row %d word %d: %#x -> %#x", i, w, orig[w], rt[w])
				}
			}
		}
	})
}
