package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// Table-driven error-path tests for the tenant/admin API, pinning EXACT
// error strings and status codes (matching the style of the facade's
// estimator_errors_test.go): operators alert on these responses, so a
// refactor that rewords them is a breaking change that must show up here.
func TestAPIErrorStrings(t *testing.T) {
	d := New(Config{Shards: 1, QueueDepth: 64})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	defer d.Shutdown(context.Background())

	// One live tenant: quickstart topology (3 paths), window 100, with 5
	// snapshots ingested — enough to exercise warm-up and range errors.
	regBody, _ := json.Marshal(TenantConfig{
		Name: "alpha", Scenario: "quickstart", Seed: 1, Window: 100,
	})
	if status, body := post(t, srv.URL+"/v1/tenants", regBody); status != http.StatusCreated {
		t.Fatalf("registering alpha: status %d: %s", status, body)
	}
	if status, body := post(t, srv.URL+"/v1/ingest?tenant=alpha",
		[]byte(`{"reports":[[0],[1],[2],[0,1],[]]}`)); status != http.StatusAccepted {
		t.Fatalf("seeding alpha: status %d: %s", status, body)
	}

	mustJSON := func(cfg TenantConfig) []byte {
		b, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name       string
		method     string
		path       string
		body       []byte
		wantStatus int
		wantErr    string
	}{
		{
			name: "unknown tenant (estimate)", method: http.MethodGet,
			path:       "/v1/estimate?tenant=ghost",
			wantStatus: http.StatusNotFound,
			wantErr:    `serve: unknown tenant "ghost" (registered: [alpha])`,
		},
		{
			name: "unknown tenant (ingest)", method: http.MethodPost,
			path: "/v1/ingest?tenant=ghost", body: []byte(`{"reports":[[0]]}`),
			wantStatus: http.StatusNotFound,
			wantErr:    `serve: unknown tenant "ghost" (registered: [alpha])`,
		},
		{
			name: "duplicate registration", method: http.MethodPost,
			path: "/v1/tenants", body: mustJSON(TenantConfig{Name: "alpha", Scenario: "quickstart", Window: 100}),
			wantStatus: http.StatusConflict,
			wantErr:    `serve: tenant "alpha" already registered`,
		},
		{
			name: "estimate before window warm", method: http.MethodGet,
			path:       "/v1/estimate?tenant=alpha",
			wantStatus: http.StatusTooEarly,
			wantErr:    `serve: tenant "alpha" window warming: 5/100 snapshots`,
		},
		{
			name: "register with empty name", method: http.MethodPost,
			path: "/v1/tenants", body: mustJSON(TenantConfig{Scenario: "quickstart", Window: 10}),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: register: tenant name is empty`,
		},
		{
			name: "register with zero window", method: http.MethodPost,
			path: "/v1/tenants", body: mustJSON(TenantConfig{Name: "w", Scenario: "quickstart"}),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: register tenant "w": window = 0, want > 0`,
		},
		{
			name: "register with neither scenario nor topology", method: http.MethodPost,
			path: "/v1/tenants", body: mustJSON(TenantConfig{Name: "b", Window: 10}),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: register tenant "b": specify exactly one of scenario or topology`,
		},
		{
			name: "register with unknown scenario", method: http.MethodPost,
			path: "/v1/tenants", body: mustJSON(TenantConfig{Name: "s", Scenario: "nope", Window: 10}),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: register tenant "s": scenario: unknown scenario "nope" (registered: [adversarial-loss diurnal diurnal-week flash-crowd gray-failure link-flap planetlab-replay quickstart worm])`,
		},
		{
			name: "register with unknown estimator", method: http.MethodPost,
			path: "/v1/tenants", body: mustJSON(TenantConfig{Name: "e", Scenario: "quickstart", Window: 10, Estimator: "nope"}),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: register tenant "e": tomography: NewWindow: unknown estimator "nope" (registered: [correlation independence mle theorem])`,
		},
		{
			name: "malformed ingest JSON", method: http.MethodPost,
			path: "/v1/ingest?tenant=alpha", body: []byte(`{not json`),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: decode probe batch: invalid character 'n' looking for beginning of object key string`,
		},
		{
			name: "ingest with no reports", method: http.MethodPost,
			path: "/v1/ingest?tenant=alpha", body: []byte(`{"reports":[]}`),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: probe batch carries no reports`,
		},
		{
			name: "ingest with negative path index", method: http.MethodPost,
			path: "/v1/ingest?tenant=alpha", body: []byte(`{"reports":[[-1]]}`),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: snapshot 0: negative path index -1`,
		},
		{
			name: "ingest with out-of-range path index", method: http.MethodPost,
			path: "/v1/ingest?tenant=alpha", body: []byte(`{"reports":[[0],[9]]}`),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: snapshot 1: path index 9 out of range for 3 paths`,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var status int
			var body string
			if tc.method == http.MethodGet {
				status, body = get(t, srv.URL+tc.path, nil)
			} else {
				status, body = post(t, srv.URL+tc.path, tc.body)
			}
			assertError(t, status, body, tc.wantStatus, tc.wantErr)
		})
	}
}

// TestAPIShutdownErrors pins the rejection behavior of a draining daemon:
// ingest, estimate and registration during/after shutdown all answer 503
// with the same message.
func TestAPIShutdownErrors(t *testing.T) {
	d := New(Config{Shards: 1, QueueDepth: 8})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	if _, err := d.Register(TenantConfig{Name: "a", Scenario: "quickstart", Seed: 1, Window: 10}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	const want = `serve: daemon shutting down`
	status, body := post(t, srv.URL+"/v1/ingest?tenant=a", []byte(`{"reports":[[0]]}`))
	assertError(t, status, body, http.StatusServiceUnavailable, want)
	status, body = get(t, srv.URL+"/v1/estimate?tenant=a", nil)
	assertError(t, status, body, http.StatusServiceUnavailable, want)
	status, body = post(t, srv.URL+"/v1/tenants",
		[]byte(`{"name":"late","scenario":"quickstart","window":10}`))
	assertError(t, status, body, http.StatusServiceUnavailable, want)

	// A second Shutdown is itself an exact-string error.
	if _, err := d.Shutdown(ctx); err == nil || err.Error() != "serve: daemon already shut down" {
		t.Fatalf("second shutdown error = %v, want %q", err, "serve: daemon already shut down")
	}
}

// assertError checks status and the exact error-envelope message.
func assertError(t *testing.T, status int, body string, wantStatus int, wantErr string) {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("status = %d, want %d (body: %s)", status, wantStatus, body)
	}
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &envelope); err != nil {
		t.Fatalf("error body is not the JSON envelope: %q (%v)", body, err)
	}
	if envelope.Error != wantErr {
		t.Fatalf("error mismatch:\n got: %s\nwant: %s", envelope.Error, wantErr)
	}
}
