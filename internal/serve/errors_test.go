package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/bitset"
)

// Table-driven error-path tests for the tenant/admin API, pinning EXACT
// error strings and status codes (matching the style of the facade's
// estimator_errors_test.go): operators alert on these responses, so a
// refactor that rewords them is a breaking change that must show up here.
func TestAPIErrorStrings(t *testing.T) {
	d := New(Config{Shards: 1, QueueDepth: 64})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	defer d.Shutdown(context.Background())

	// One live tenant: quickstart topology (3 paths), window 100, with 5
	// snapshots ingested — enough to exercise warm-up and range errors.
	regBody, _ := json.Marshal(TenantConfig{
		Name: "alpha", Scenario: "quickstart", Seed: 1, Window: 100,
	})
	if status, body := post(t, srv.URL+"/v1/tenants", regBody); status != http.StatusCreated {
		t.Fatalf("registering alpha: status %d: %s", status, body)
	}
	if status, body := post(t, srv.URL+"/v1/ingest?tenant=alpha",
		[]byte(`{"reports":[[0],[1],[2],[0,1],[]]}`)); status != http.StatusAccepted {
		t.Fatalf("seeding alpha: status %d: %s", status, body)
	}

	mustJSON := func(cfg TenantConfig) []byte {
		b, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name       string
		method     string
		path       string
		body       []byte
		wantStatus int
		wantErr    string
	}{
		{
			name: "unknown tenant (estimate)", method: http.MethodGet,
			path:       "/v1/estimate?tenant=ghost",
			wantStatus: http.StatusNotFound,
			wantErr:    `serve: unknown tenant "ghost" (registered: [alpha])`,
		},
		{
			name: "unknown tenant (ingest)", method: http.MethodPost,
			path: "/v1/ingest?tenant=ghost", body: []byte(`{"reports":[[0]]}`),
			wantStatus: http.StatusNotFound,
			wantErr:    `serve: unknown tenant "ghost" (registered: [alpha])`,
		},
		{
			name: "duplicate registration", method: http.MethodPost,
			path: "/v1/tenants", body: mustJSON(TenantConfig{Name: "alpha", Scenario: "quickstart", Window: 100}),
			wantStatus: http.StatusConflict,
			wantErr:    `serve: tenant "alpha" already registered`,
		},
		{
			name: "estimate before window warm", method: http.MethodGet,
			path:       "/v1/estimate?tenant=alpha",
			wantStatus: http.StatusTooEarly,
			wantErr:    `serve: tenant "alpha" window warming: 5/100 snapshots`,
		},
		{
			name: "register with empty name", method: http.MethodPost,
			path: "/v1/tenants", body: mustJSON(TenantConfig{Scenario: "quickstart", Window: 10}),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: register: tenant name is empty`,
		},
		{
			name: "register with zero window", method: http.MethodPost,
			path: "/v1/tenants", body: mustJSON(TenantConfig{Name: "w", Scenario: "quickstart"}),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: register tenant "w": window = 0, want > 0`,
		},
		{
			name: "register with neither scenario nor topology", method: http.MethodPost,
			path: "/v1/tenants", body: mustJSON(TenantConfig{Name: "b", Window: 10}),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: register tenant "b": specify exactly one of scenario or topology`,
		},
		{
			name: "register with unknown scenario", method: http.MethodPost,
			path: "/v1/tenants", body: mustJSON(TenantConfig{Name: "s", Scenario: "nope", Window: 10}),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: register tenant "s": scenario: unknown scenario "nope" (registered: [adversarial-loss diurnal diurnal-week flash-crowd gray-failure link-flap planetlab-replay quickstart worm])`,
		},
		{
			name: "register with unknown estimator", method: http.MethodPost,
			path: "/v1/tenants", body: mustJSON(TenantConfig{Name: "e", Scenario: "quickstart", Window: 10, Estimator: "nope"}),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: register tenant "e": tomography: NewWindow: unknown estimator "nope" (registered: [correlation independence mle theorem])`,
		},
		{
			name: "malformed ingest JSON", method: http.MethodPost,
			path: "/v1/ingest?tenant=alpha", body: []byte(`{not json`),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: decode probe batch: invalid character 'n' looking for beginning of object key string`,
		},
		{
			name: "ingest with no reports", method: http.MethodPost,
			path: "/v1/ingest?tenant=alpha", body: []byte(`{"reports":[]}`),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: probe batch carries no reports`,
		},
		{
			name: "ingest with negative path index", method: http.MethodPost,
			path: "/v1/ingest?tenant=alpha", body: []byte(`{"reports":[[-1]]}`),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: snapshot 0: negative path index -1`,
		},
		{
			name: "ingest with out-of-range path index", method: http.MethodPost,
			path: "/v1/ingest?tenant=alpha", body: []byte(`{"reports":[[0],[9]]}`),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: snapshot 1: path index 9 out of range for 3 paths`,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var status int
			var body string
			if tc.method == http.MethodGet {
				status, body = get(t, srv.URL+tc.path, nil)
			} else {
				status, body = post(t, srv.URL+tc.path, tc.body)
			}
			assertError(t, status, body, tc.wantStatus, tc.wantErr)
		})
	}
}

// TestBinaryIngestErrorStrings pins the EXACT error string and status of
// every rejection the TOMOW1 binary wire decoder can produce, in the same
// style as TestAPIErrorStrings: the strings are operator-facing API
// surface, so rewording one is a breaking change that must show up here.
// The tenant is the quickstart topology (3 paths, one packed word per
// row).
func TestBinaryIngestErrorStrings(t *testing.T) {
	d := New(Config{Shards: 1, QueueDepth: 64})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	defer d.Shutdown(context.Background())

	regBody, _ := json.Marshal(TenantConfig{
		Name: "alpha", Scenario: "quickstart", Seed: 1, Window: 100,
	})
	if status, body := post(t, srv.URL+"/v1/tenants", regBody); status != http.StatusCreated {
		t.Fatalf("registering alpha: status %d: %s", status, body)
	}

	// mustBinary encodes a well-formed TOMOW1 body for the given path count.
	mustBinary := func(numPaths int, reports ...[]int) []byte {
		sets := make([]*bitset.Set, len(reports))
		for i, r := range reports {
			sets[i] = bitset.FromIndices(r...)
		}
		body, err := EncodeReportsBinary(sets, numPaths)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	// rawBinary assembles a TOMOW1 body from parts, with a correct CRC — for
	// structural corruptions the encoder refuses to produce.
	rawBinary := func(flags byte, numPaths, snaps int, payload []byte) []byte {
		out := make([]byte, binaryHeaderLen+len(payload))
		copy(out, binaryMagic)
		out[6] = binaryVersion
		out[7] = flags
		binary.LittleEndian.PutUint32(out[8:], uint32(numPaths))
		binary.LittleEndian.PutUint32(out[12:], uint32(snaps))
		binary.LittleEndian.PutUint32(out[16:], crc32.Checksum(payload, castagnoli))
		copy(out[binaryHeaderLen:], payload)
		return out
	}
	// fixCRC recomputes the header CRC after a structural corruption, so the
	// test reaches the structural error rather than the CRC one.
	fixCRC := func(body []byte) []byte {
		binary.LittleEndian.PutUint32(body[16:20], crc32.Checksum(body[binaryHeaderLen:], castagnoli))
		return body
	}
	corrupt := func(body []byte, at int, b byte) []byte {
		c := append([]byte(nil), body...)
		c[at] = b
		return c
	}
	le16 := func(vals ...uint16) []byte {
		out := make([]byte, 2*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint16(out[2*i:], v)
		}
		return out
	}

	// All-paths-congested rows make the encoder pick the dense payload (a
	// tie goes dense); a single sparse row stays sparse.
	dense := mustBinary(3, []int{0, 1, 2}, []int{0, 1, 2})
	sparseRow := mustBinary(3, []int{0, 2})
	crcFlip := corrupt(dense, len(dense)-1, dense[len(dense)-1]^0xFF)

	cases := []struct {
		name       string
		body       []byte
		wantStatus int
		wantErr    string
	}{
		{
			name: "truncated header", body: dense[:10],
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: binary probe batch: 10-byte body, want at least the 20-byte header`,
		},
		{
			name: "bad magic", body: corrupt(dense, 0, 'X'),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: binary probe batch: bad magic "XOMOW1"`,
		},
		{
			name: "unsupported version", body: corrupt(dense, 6, 2),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: binary probe batch: unsupported version 2`,
		},
		{
			name: "unknown flags", body: corrupt(dense, 7, 0x82),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: binary probe batch: unknown flags 0x82`,
		},
		{
			name: "path-count mismatch", body: mustBinary(5, []int{0, 4}),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: binary probe batch encodes 5 paths, tenant has 3`,
		},
		{
			name: "no reports", body: rawBinary(0, 3, 0, nil),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: binary probe batch carries no reports`,
		},
		{
			name: "snapshots over limit", body: rawBinary(0, 3, 5000, nil),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: binary probe batch carries 5000 snapshots, limit 4096`,
		},
		{
			name: "payload CRC mismatch", body: crcFlip,
			wantStatus: http.StatusBadRequest,
			wantErr: fmt.Sprintf(`serve: binary probe batch: payload CRC 0x%08x, header declares 0x%08x`,
				crc32.Checksum(crcFlip[binaryHeaderLen:], castagnoli),
				binary.LittleEndian.Uint32(crcFlip[16:20])),
		},
		{
			name: "dense payload length mismatch", body: fixCRC(append([]byte(nil), dense[:len(dense)-8]...)),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: binary probe batch: dense payload is 8 bytes, want 16 (2 snapshots x 1 words)`,
		},
		{
			name: "dense stray tail bit", body: rawBinary(0, 3, 1, []byte{1 << 3, 0, 0, 0, 0, 0, 0, 0}),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: snapshot 0: path index 3 out of range for 3 paths`,
		},
		{
			name: "sparse payload truncated", body: rawBinary(flagSparse, 3, 2, le16(1, 0)),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: binary probe batch: sparse payload truncated in snapshot 1`,
		},
		{
			name: "sparse index out of range", body: rawBinary(flagSparse, 3, 1, le16(1, 7)),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: snapshot 0: path index 7 out of range for 3 paths`,
		},
		{
			name: "sparse indices not ascending", body: rawBinary(flagSparse, 3, 1, le16(2, 2, 1)),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: binary probe batch: snapshot 0: path indices not strictly increasing`,
		},
		{
			name: "trailing payload bytes", body: fixCRC(append(append([]byte(nil), sparseRow...), 0, 0)),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: binary probe batch: 2 trailing payload bytes`,
		},
		{
			name: "JSON posted as binary", body: []byte(`{"reports":[[0],[1],[2]]}`),
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: binary probe batch: bad magic "{\"repo"`,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			status, body := postCT(t, srv.URL+"/v1/ingest?tenant=alpha", ContentTypeBinary, tc.body)
			assertError(t, status, body, tc.wantStatus, tc.wantErr)
		})
	}

	// And the happy path: a well-formed binary batch is accepted, under both
	// the bare media type and one carrying parameters.
	if status, body := postCT(t, srv.URL+"/v1/ingest?tenant=alpha", ContentTypeBinary, dense); status != http.StatusAccepted {
		t.Fatalf("valid binary ingest: status %d: %s", status, body)
	}
	if status, body := postCT(t, srv.URL+"/v1/ingest?tenant=alpha", ContentTypeBinary+"; v=1", sparseRow); status != http.StatusAccepted {
		t.Fatalf("valid binary ingest with media-type parameters: status %d: %s", status, body)
	}
}

// TestAPIShutdownErrors pins the rejection behavior of a draining daemon:
// ingest, estimate and registration during/after shutdown all answer 503
// with the same message.
func TestAPIShutdownErrors(t *testing.T) {
	d := New(Config{Shards: 1, QueueDepth: 8})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	if _, err := d.Register(TenantConfig{Name: "a", Scenario: "quickstart", Seed: 1, Window: 10}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	const want = `serve: daemon shutting down`
	status, body := post(t, srv.URL+"/v1/ingest?tenant=a", []byte(`{"reports":[[0]]}`))
	assertError(t, status, body, http.StatusServiceUnavailable, want)
	status, body = get(t, srv.URL+"/v1/estimate?tenant=a", nil)
	assertError(t, status, body, http.StatusServiceUnavailable, want)
	status, body = post(t, srv.URL+"/v1/tenants",
		[]byte(`{"name":"late","scenario":"quickstart","window":10}`))
	assertError(t, status, body, http.StatusServiceUnavailable, want)

	// A second Shutdown is itself an exact-string error.
	if _, err := d.Shutdown(ctx); err == nil || err.Error() != "serve: daemon already shut down" {
		t.Fatalf("second shutdown error = %v, want %q", err, "serve: daemon already shut down")
	}
}

// assertError checks status and the exact error-envelope message.
func assertError(t *testing.T, status int, body string, wantStatus int, wantErr string) {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("status = %d, want %d (body: %s)", status, wantStatus, body)
	}
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &envelope); err != nil {
		t.Fatalf("error body is not the JSON envelope: %q (%v)", body, err)
	}
	if envelope.Error != wantErr {
		t.Fatalf("error mismatch:\n got: %s\nwant: %s", envelope.Error, wantErr)
	}
}
