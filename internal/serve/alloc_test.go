package serve

import (
	"math"
	"testing"

	tomography "repro"
)

// TestBinaryIngestSteadyStateAllocs is the allocation budget of the binary
// ingest hot path: once the word-batch buffer and the tenant's window are
// warm, decoding a TOMOW1 body into the reused batch and appending it
// through Window.ObserveBatchWords must be garbage-free — O(1) allocations
// per batch means zero in the steady state, regardless of the batch's
// snapshot count. This is the serving-layer counterpart of the
// TestWindowedInferenceSteadyStateAllocs gate CI enforces.
func TestBinaryIngestSteadyStateAllocs(t *testing.T) {
	scn, err := tomography.BuildScenario("quickstart", 1)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := simulateScenario(scn, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	bodies, err := encodeStreamBinary(rec, 64)
	if err != nil {
		t.Fatal(err)
	}
	numPaths := scn.Topology.NumPaths()

	// A detector that never alarms, so the measurement sees only the
	// decode + append path and not change-point bookkeeping.
	win, err := tomography.NewWindow(scn.Topology, tomography.WindowConfig{
		Size:      256,
		Estimator: "correlation",
		Detector:  &tomography.ChangeDetector{Warmup: math.MaxInt32, Drift: 1, Threshold: 1e18, Smoothing: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer win.Close()

	wb := getWordBatch()
	defer putWordBatch(wb)
	next := 0
	step := func() {
		body := bodies[next%len(bodies)]
		next++
		if err := decodeReportsBinaryInto(wb, body, numPaths, DefaultMaxBatch); err != nil {
			t.Fatal(err)
		}
		win.ObserveBatchWords(wb.words, wb.wordsPerRow, wb.rows)
	}
	// Warm-up: two full cycles through the stream fill the window past its
	// ring capacity and charge every congestion pattern the stream contains
	// into the live histogram, so the measured steady state sees no
	// first-time pattern insertions.
	for i := 0; i < 2*len(bodies); i++ {
		step()
	}
	if got := testing.AllocsPerRun(50, step); got > 0 {
		t.Fatalf("steady-state binary decode+append allocates %.2f objects/batch, want 0", got)
	}
}
