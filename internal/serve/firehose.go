package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	tomography "repro"
	"repro/internal/benchmeta"
	"repro/internal/bitset"
)

// FirehoseConfig parameterizes the synthetic probe-firehose load client:
// it registers Tenants tenants over the daemon's HTTP API (each built from
// Scenario with seed Seed+i), pre-simulates each tenant's probe stream
// from the scenario registry, then replays the streams as fast as the
// daemon accepts them, requesting estimates at a fixed cadence and
// honouring 429 backpressure with retries.
type FirehoseConfig struct {
	// BaseURL is the daemon's address, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Scenario is the registry scenario each tenant is built from.
	Scenario string
	// Seed is the root seed; tenant i uses Seed+i for its scenario and
	// Seed+1000+i for its simulated probe stream.
	Seed int64
	// Tenants is the number of tenants to register and drive (> 0).
	Tenants int
	// Snapshots is the probe-stream length per tenant (> 0).
	Snapshots int
	// Batch is the number of snapshots per ingest POST (0 ⇒ 64).
	Batch int
	// Window is each tenant's sliding-window size (0 ⇒ 256).
	Window int
	// Estimator is the registry estimator each tenant runs
	// ("" ⇒ correlation).
	Estimator string
	// EstimateEvery requests an estimate after every EstimateEvery accepted
	// batches, once the window is warm (0 ⇒ 4).
	EstimateEvery int
	// Wire selects the probe wire format the measured phases POST:
	// "json" (the default, "" ⇒ "json") or "binary" (the TOMOW1 columnar
	// format). The wire-comparison phase always measures both.
	Wire string
	// Client overrides the HTTP client (nil ⇒ http.DefaultClient).
	Client *http.Client
}

// wireCompareBatch is the snapshots-per-POST the wire-comparison phase
// replays with (when the configured Batch is smaller): large enough that
// per-request HTTP overhead stops masking the decode-cost difference the
// phase exists to measure.
const wireCompareBatch = 512

// FirehoseReport summarizes one firehose run — the content of
// BENCH_serve.json. The count fields are deterministic functions of the
// configuration; the timing fields measure this run's hardware, which the
// Machine block identifies.
type FirehoseReport struct {
	Machine            benchmeta.Machine `json:"machine"`
	Scenario           string            `json:"scenario"`
	Estimator          string            `json:"estimator"`
	Tenants            int               `json:"tenants"`
	SnapshotsPerTenant int               `json:"snapshots_per_tenant"`
	Window             int               `json:"window"`
	Batch              int               `json:"batch"`
	SnapshotsIngested  int64             `json:"snapshots_ingested"`
	Estimates          int64             `json:"estimates"`
	Rejected429        int64             `json:"rejected_429"`
	ElapsedSec         float64           `json:"elapsed_sec"`
	SnapshotsPerSec    float64           `json:"snapshots_per_sec"`
	EstimateP50Ms      float64           `json:"estimate_p50_ms"`
	EstimateP99Ms      float64           `json:"estimate_p99_ms"`
	// The under-load block measures estimate throughput while every tenant
	// stream is being replayed at full rate — the read-replica serving
	// path's headline number: estimates served from published views while
	// the ingest queues stay saturated.
	EstimatesUnderLoad       int64   `json:"estimates_under_load"`
	EstimatesUnderLoadPerSec float64 `json:"estimates_under_load_per_sec"`
	EstimateUnderLoadP50Ms   float64 `json:"estimate_under_load_p50_ms"`
	EstimateUnderLoadP99Ms   float64 `json:"estimate_under_load_p99_ms"`
	// The wire block compares the two probe wire formats head to head on
	// the same pre-simulated snapshot streams: each format's pure-ingest
	// replay throughput in snapshots and request-body megabytes per second
	// (batched at wireCompareBatch snapshots per POST so decode cost, not
	// per-request HTTP overhead, dominates). WireFormat is the format the
	// measured phases above used.
	WireFormat            string  `json:"wire_format"`
	JSONSnapshotsPerSec   float64 `json:"json_snapshots_per_sec"`
	JSONIngestMBPerSec    float64 `json:"json_ingest_mb_per_sec"`
	BinarySnapshotsPerSec float64 `json:"binary_snapshots_per_sec"`
	BinaryIngestMBPerSec  float64 `json:"binary_ingest_mb_per_sec"`
}

// RunFirehose drives a daemon with synthetic probe traffic and returns the
// sustained throughput and estimate-latency percentiles. Each tenant runs
// on its own goroutine, so a multi-tenant run also exercises concurrent
// ingest across shards.
func RunFirehose(ctx context.Context, cfg FirehoseConfig) (*FirehoseReport, error) {
	if cfg.Tenants <= 0 {
		return nil, fmt.Errorf("serve: firehose: tenants = %d, want > 0", cfg.Tenants)
	}
	if cfg.Snapshots <= 0 {
		return nil, fmt.Errorf("serve: firehose: snapshots = %d, want > 0", cfg.Snapshots)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.Estimator == "" {
		cfg.Estimator = "correlation"
	}
	if cfg.EstimateEvery <= 0 {
		cfg.EstimateEvery = 4
	}
	if cfg.Wire == "" {
		cfg.Wire = "json"
	}
	if cfg.Wire != "json" && cfg.Wire != "binary" {
		return nil, fmt.Errorf("serve: firehose: wire = %q, want json or binary", cfg.Wire)
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Window > cfg.Snapshots {
		return nil, fmt.Errorf("serve: firehose: window %d exceeds stream length %d (no estimate would ever be warm)",
			cfg.Window, cfg.Snapshots)
	}
	mainCT := ContentTypeJSON
	if cfg.Wire == "binary" {
		mainCT = ContentTypeBinary
	}
	cmpBatch := cfg.Batch
	if cmpBatch < wireCompareBatch {
		cmpBatch = wireCompareBatch
	}
	if cmpBatch > DefaultMaxBatch {
		cmpBatch = DefaultMaxBatch
	}

	// Pre-simulate every tenant's probe stream so the measured loops are
	// pure serving traffic, not simulation or encoding: the main phases'
	// stream in the configured wire format, plus one stream per format
	// (batched at cmpBatch) for the wire-comparison phase.
	streams := make([][][]byte, cfg.Tenants) // per tenant, per batch: encoded wire body
	cmpJSON := make([][][]byte, cfg.Tenants)
	cmpBinary := make([][][]byte, cfg.Tenants)
	for i := 0; i < cfg.Tenants; i++ {
		scn, err := tomography.BuildScenario(cfg.Scenario, cfg.Seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("serve: firehose: %w", err)
		}
		rec, err := simulateScenario(scn, cfg.Snapshots, cfg.Seed+1000+int64(i))
		if err != nil {
			return nil, fmt.Errorf("serve: firehose: %w", err)
		}
		if cfg.Wire == "binary" {
			streams[i], err = encodeStreamBinary(rec, cfg.Batch)
		} else {
			streams[i], err = encodeStream(rec, cfg.Batch)
		}
		if err != nil {
			return nil, fmt.Errorf("serve: firehose: %w", err)
		}
		if cmpJSON[i], err = encodeStream(rec, cmpBatch); err != nil {
			return nil, fmt.Errorf("serve: firehose: %w", err)
		}
		if cmpBinary[i], err = encodeStreamBinary(rec, cmpBatch); err != nil {
			return nil, fmt.Errorf("serve: firehose: %w", err)
		}
	}

	// Register the tenants over the wire — the same path an operator uses.
	for i := 0; i < cfg.Tenants; i++ {
		body, _ := json.Marshal(TenantConfig{
			Name:      firehoseTenantName(i),
			Scenario:  cfg.Scenario,
			Seed:      cfg.Seed + int64(i),
			Window:    cfg.Window,
			Estimator: cfg.Estimator,
		})
		if err := postJSON(ctx, cfg.Client, cfg.BaseURL+"/v1/tenants", body, http.StatusCreated); err != nil {
			return nil, fmt.Errorf("serve: firehose: registering tenant %d: %w", i, err)
		}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		ingested  int64
		estimates int64
		rejected  int64
		firstErr  error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := firehoseTenantName(i)
			snaps := 0
			for b, body := range streams[i] {
				n, rej, err := postBatch(ctx, cfg.Client, cfg.BaseURL, name, body, mainCT)
				mu.Lock()
				rejected += rej
				ingested += int64(n)
				mu.Unlock()
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				snaps += n
				if (b+1)%cfg.EstimateEvery == 0 && snaps >= cfg.Window {
					d, err := timeEstimate(ctx, cfg.Client, cfg.BaseURL, name)
					mu.Lock()
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
					} else {
						latencies = append(latencies, d)
						estimates++
					}
					mu.Unlock()
					if err != nil {
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, fmt.Errorf("serve: firehose: %w", firstErr)
	}

	// Second measured phase: estimate throughput under ingest load. The
	// tenant streams are replayed once more at full rate to keep every
	// shard queue busy (the windows are rings, so re-ingesting is
	// harmless) while a dedicated client loops over /v1/estimate
	// round-robin across the now-warm tenants. Estimates are served from
	// published read-replica views by the estimate pool, so their latency
	// should not track the ingest backlog. Phase-2 traffic is accounted
	// separately and does not perturb the phase-1 throughput numbers.
	loadStart := time.Now()
	stop := make(chan struct{})
	var loadWG sync.WaitGroup
	for i := 0; i < cfg.Tenants; i++ {
		loadWG.Add(1)
		go func(i int) {
			defer loadWG.Done()
			name := firehoseTenantName(i)
			for _, body := range streams[i] {
				if _, _, err := postBatch(ctx, cfg.Client, cfg.BaseURL, name, body, mainCT); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(i)
	}
	go func() {
		loadWG.Wait()
		close(stop)
	}()
	var (
		loadedLat []time.Duration
		loadedEst int64
	)
estimateLoop:
	for i := 0; ; i++ {
		select {
		case <-stop:
			break estimateLoop
		default:
		}
		d, err := timeEstimate(ctx, cfg.Client, cfg.BaseURL, firehoseTenantName(i%cfg.Tenants))
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			break
		}
		loadedLat = append(loadedLat, d)
		loadedEst++
	}
	loadWG.Wait()
	loadElapsed := time.Since(loadStart)
	if firstErr != nil {
		return nil, fmt.Errorf("serve: firehose: %w", firstErr)
	}

	// Third measured phase: the wire-format comparison. Each format's
	// pre-encoded stream is replayed once at full ingest rate with no
	// estimate traffic — same simulated snapshots, same warm daemon, so
	// the only variable is the wire decode path.
	jsonSnaps, jsonBytes, jsonElapsed, err := replayStreams(ctx, &cfg, cmpJSON, ContentTypeJSON)
	if err != nil {
		return nil, fmt.Errorf("serve: firehose: wire comparison (json): %w", err)
	}
	binSnaps, binBytes, binElapsed, err := replayStreams(ctx, &cfg, cmpBinary, ContentTypeBinary)
	if err != nil {
		return nil, fmt.Errorf("serve: firehose: wire comparison (binary): %w", err)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	sort.Slice(loadedLat, func(i, j int) bool { return loadedLat[i] < loadedLat[j] })
	report := &FirehoseReport{
		Machine:            benchmeta.Collect(),
		Scenario:           cfg.Scenario,
		Estimator:          cfg.Estimator,
		Tenants:            cfg.Tenants,
		SnapshotsPerTenant: cfg.Snapshots,
		Window:             cfg.Window,
		Batch:              cfg.Batch,
		SnapshotsIngested:  ingested,
		Estimates:          estimates,
		Rejected429:        rejected,
		ElapsedSec:         elapsed.Seconds(),
		SnapshotsPerSec:    float64(ingested) / elapsed.Seconds(),
		EstimateP50Ms:      percentileMs(latencies, 0.50),
		EstimateP99Ms:      percentileMs(latencies, 0.99),

		EstimatesUnderLoad:       loadedEst,
		EstimatesUnderLoadPerSec: float64(loadedEst) / loadElapsed.Seconds(),
		EstimateUnderLoadP50Ms:   percentileMs(loadedLat, 0.50),
		EstimateUnderLoadP99Ms:   percentileMs(loadedLat, 0.99),

		WireFormat:            cfg.Wire,
		JSONSnapshotsPerSec:   float64(jsonSnaps) / jsonElapsed.Seconds(),
		JSONIngestMBPerSec:    float64(jsonBytes) / 1e6 / jsonElapsed.Seconds(),
		BinarySnapshotsPerSec: float64(binSnaps) / binElapsed.Seconds(),
		BinaryIngestMBPerSec:  float64(binBytes) / 1e6 / binElapsed.Seconds(),
	}
	return report, nil
}

// replayStreams replays every tenant's pre-encoded stream concurrently
// (one goroutine per tenant, 429s retried inside postBatch) and returns
// the accepted snapshot count, the request-body bytes posted, and the
// wall-clock elapsed — the wire-comparison measurement primitive.
func replayStreams(ctx context.Context, cfg *FirehoseConfig, streams [][][]byte, contentType string) (snaps, bodyBytes int64, elapsed time.Duration, err error) {
	var (
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := firehoseTenantName(i)
			for _, body := range streams[i] {
				n, _, perr := postBatch(ctx, cfg.Client, cfg.BaseURL, name, body, contentType)
				mu.Lock()
				snaps += int64(n)
				bodyBytes += int64(len(body))
				if perr != nil && firstErr == nil {
					firstErr = perr
				}
				mu.Unlock()
				if perr != nil {
					return
				}
			}
		}(i)
	}
	wg.Wait()
	return snaps, bodyBytes, time.Since(start), firstErr
}

func firehoseTenantName(i int) string { return fmt.Sprintf("t%d", i) }

// simulateScenario produces a tenant's probe stream: the dynamic engine
// for time-indexed scenarios, the i.i.d. simulator otherwise.
func simulateScenario(scn *tomography.Scenario, snapshots int, seed int64) (*tomography.Record, error) {
	if scn.Process != nil {
		return tomography.SimulateDynamic(tomography.DynamicSimConfig{
			Topology: scn.Topology, Process: scn.Process, Snapshots: snapshots, Seed: seed,
		})
	}
	return tomography.Simulate(tomography.SimConfig{
		Topology: scn.Topology, Model: scn.Model, Snapshots: snapshots, Seed: seed,
	})
}

// encodeStream slices a record into wire-encoded ingest bodies of batch
// snapshots each.
func encodeStream(rec *tomography.Record, batch int) ([][]byte, error) {
	n := rec.Snapshots()
	var bodies [][]byte
	row := bitset.New(1)
	for at := 0; at < n; at += batch {
		end := at + batch
		if end > n {
			end = n
		}
		sets := make([]*bitset.Set, 0, end-at)
		for t := at; t < end; t++ {
			rec.Paths.RowInto(t, row)
			sets = append(sets, row.Clone())
		}
		body, err := EncodeReports(sets)
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body)
	}
	return bodies, nil
}

// encodeStreamBinary is encodeStream for the TOMOW1 binary wire format.
func encodeStreamBinary(rec *tomography.Record, batch int) ([][]byte, error) {
	n := rec.Snapshots()
	numPaths := rec.Paths.NumSeries()
	var bodies [][]byte
	row := bitset.New(numPaths)
	for at := 0; at < n; at += batch {
		end := at + batch
		if end > n {
			end = n
		}
		sets := make([]*bitset.Set, 0, end-at)
		for t := at; t < end; t++ {
			rec.Paths.RowInto(t, row)
			sets = append(sets, row.Clone())
		}
		body, err := EncodeReportsBinary(sets, numPaths)
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body)
	}
	return bodies, nil
}

// postBatch POSTs one ingest body under the given Content-Type (the wire
// format negotiation header), retrying on 429 with a short pause. It
// returns the accepted snapshot count and how many 429s it absorbed.
func postBatch(ctx context.Context, client *http.Client, base, tenant string, body []byte, contentType string) (accepted int, rejected int64, err error) {
	url := fmt.Sprintf("%s/v1/ingest?tenant=%s", base, tenant)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return 0, rejected, err
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := client.Do(req)
		if err != nil {
			return 0, rejected, err
		}
		respBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var out struct {
				Accepted int `json:"accepted"`
			}
			if err := json.Unmarshal(respBody, &out); err != nil {
				return 0, rejected, fmt.Errorf("decoding ingest response: %w", err)
			}
			return out.Accepted, rejected, nil
		case http.StatusTooManyRequests:
			rejected++
			select {
			case <-time.After(2 * time.Millisecond):
			case <-ctx.Done():
				return 0, rejected, ctx.Err()
			}
		default:
			return 0, rejected, fmt.Errorf("ingest: unexpected status %d: %s", resp.StatusCode, respBody)
		}
	}
}

// timeEstimate requests one estimate and returns its client-observed
// latency.
func timeEstimate(ctx context.Context, client *http.Client, base, tenant string) (time.Duration, error) {
	url := fmt.Sprintf("%s/v1/estimate?tenant=%s", base, tenant)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	d := time.Since(start)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("estimate: unexpected status %d: %s", resp.StatusCode, body)
	}
	return d, nil
}

// postJSON POSTs a JSON body and checks the expected status.
func postJSON(ctx context.Context, client *http.Client, url string, body []byte, want int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	respBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("unexpected status %d: %s", resp.StatusCode, respBody)
	}
	return nil
}

// percentileMs returns the p-th percentile of sorted durations, in
// milliseconds (0 for an empty slice).
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1e6
}
