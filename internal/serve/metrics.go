package serve

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// metrics is the daemon's process-wide instrumentation: lock-free atomic
// counters plus an exponential-bucket latency histogram, rendered in the
// Prometheus text exposition format by /metrics. No external dependency:
// the container bakes in only the Go toolchain, and counters plus a fixed
// histogram are all the serving loop needs.
type metrics struct {
	ingestBatches   atomic.Int64 // accepted ingest POSTs
	ingestSnapshots atomic.Int64 // snapshots applied to tenant windows
	ingestRejected  atomic.Int64 // 429 backpressure rejections
	ingestInvalid   atomic.Int64 // 4xx malformed/mismatched batches

	// Per-wire-format splits of the accepted traffic, so the payoff of
	// switching probes to the binary format shows up on /metrics.
	ingestBatchesJSON   atomic.Int64 // accepted batches, JSON wire format
	ingestBatchesBinary atomic.Int64 // accepted batches, TOMOW1 binary wire format
	ingestBytesJSON     atomic.Int64 // accepted request-body bytes, JSON
	ingestBytesBinary   atomic.Int64 // accepted request-body bytes, binary
	estimates           atomic.Int64 // estimates served
	estimateErrors      atomic.Int64 // estimate requests that failed (incl. warming)
	changePoints        atomic.Int64 // CUSUM change-point alerts across tenants
	viewsPublished      atomic.Int64 // window views published to estimate replicas
	estimateLatency     histogram    // enqueue-to-reply estimate latency
}

// latencyBuckets is the number of exponential histogram buckets. Bucket 0
// holds sub-microsecond observations (a measured 0µs); bucket b ≥ 1 holds
// (2^(b-2), 2^(b-1)] microseconds — (0,1], (1,2], (2,4], … — and the last
// bucket catches everything past 2^24µs (~16.8s).
const latencyBuckets = 27

// histogram is a fixed exponential-bucket latency histogram. observe is
// wait-free; readers tolerate torn cross-bucket views (metrics scrapes are
// advisory, the serving loop never blocks on them).
type histogram struct {
	buckets [latencyBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// bucketOf maps a microsecond latency to its histogram bucket under the
// bounds documented on latencyBuckets. Sub-microsecond observations get
// their own bucket 0 instead of being lumped into (0,1].
func bucketOf(us int64) int {
	if us <= 0 {
		return 0
	}
	b := 1
	for b < latencyBuckets-1 && us > int64(1)<<uint(b-1) {
		b++
	}
	return b
}

// bucketBound returns the inclusive upper bound of a bucket (a saturated
// ceiling for the open-ended last bucket).
func bucketBound(b int) time.Duration {
	if b == 0 {
		return 0
	}
	return time.Duration(int64(1)<<uint(b-1)) * time.Microsecond
}

func (h *histogram) observe(d time.Duration) {
	h.buckets[bucketOf(d.Microseconds())].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// quantile returns the upper bound of the bucket containing the q-th
// quantile (0 when the histogram is empty).
func (h *histogram) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < latencyBuckets; b++ {
		cum += h.buckets[b].Load()
		if cum >= rank {
			return bucketBound(b)
		}
	}
	return bucketBound(latencyBuckets - 1)
}

// tenantStats is the per-tenant slice of /metrics, filled from the
// tenants' atomically maintained gauges.
type tenantStats struct {
	name      string
	seen      int64
	occupancy int64
	changes   int64
	// viewAge is how long ago the tenant's current read-replica view was
	// published; viewLag is how many accepted snapshots that view has not
	// yet observed (accepted − view seen).
	viewAge time.Duration
	viewLag int64
}

// writeTo renders the metrics in the Prometheus text format. queueLens
// carries the instantaneous per-shard queue depths, estQueueLen the
// estimate pool's queue depth.
func (m *metrics) writeTo(w io.Writer, tenants []tenantStats, queueLens []int, estQueueLen int) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("tomod_ingest_batches_total", "Accepted probe-report batches.", m.ingestBatches.Load())
	counter("tomod_ingest_snapshots_total", "Snapshots applied to tenant windows.", m.ingestSnapshots.Load())
	counter("tomod_ingest_rejected_total", "Batches rejected with 429 backpressure.", m.ingestRejected.Load())
	counter("tomod_ingest_invalid_total", "Batches rejected as malformed or mismatched (4xx).", m.ingestInvalid.Load())
	counter("tomod_ingest_batches_json_total", "Accepted batches carried on the JSON wire format.", m.ingestBatchesJSON.Load())
	counter("tomod_ingest_batches_binary_total", "Accepted batches carried on the TOMOW1 binary wire format.", m.ingestBatchesBinary.Load())
	counter("tomod_ingest_bytes_json_total", "Accepted request-body bytes on the JSON wire format.", m.ingestBytesJSON.Load())
	counter("tomod_ingest_bytes_binary_total", "Accepted request-body bytes on the TOMOW1 binary wire format.", m.ingestBytesBinary.Load())
	counter("tomod_estimates_total", "Estimates served.", m.estimates.Load())
	counter("tomod_estimate_errors_total", "Estimate requests that failed (including window warm-up).", m.estimateErrors.Load())
	counter("tomod_change_points_total", "CUSUM change-point alerts across all tenants.", m.changePoints.Load())
	counter("tomod_views_published_total", "Window views published to the estimate replicas.", m.viewsPublished.Load())

	fmt.Fprintf(w, "# HELP tomod_estimate_latency_seconds Enqueue-to-reply estimate latency.\n")
	fmt.Fprintf(w, "# TYPE tomod_estimate_latency_seconds summary\n")
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(w, "tomod_estimate_latency_seconds{quantile=%q} %g\n", fmt.Sprintf("%g", q), m.estimateLatency.quantile(q).Seconds())
	}
	fmt.Fprintf(w, "tomod_estimate_latency_seconds_sum %g\n", float64(m.estimateLatency.sumNs.Load())/1e9)
	fmt.Fprintf(w, "tomod_estimate_latency_seconds_count %d\n", m.estimateLatency.count.Load())

	fmt.Fprintf(w, "# HELP tomod_window_occupancy Snapshots currently retained in each tenant's window.\n")
	fmt.Fprintf(w, "# TYPE tomod_window_occupancy gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "tomod_window_occupancy{tenant=%q} %d\n", t.name, t.occupancy)
	}
	fmt.Fprintf(w, "# HELP tomod_snapshots_seen Total snapshots observed by each tenant.\n")
	fmt.Fprintf(w, "# TYPE tomod_snapshots_seen counter\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "tomod_snapshots_seen{tenant=%q} %d\n", t.name, t.seen)
	}
	fmt.Fprintf(w, "# HELP tomod_tenant_change_points CUSUM change-point alerts fired per tenant.\n")
	fmt.Fprintf(w, "# TYPE tomod_tenant_change_points counter\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "tomod_tenant_change_points{tenant=%q} %d\n", t.name, t.changes)
	}
	fmt.Fprintf(w, "# HELP tomod_view_age_seconds Age of each tenant's published read-replica view.\n")
	fmt.Fprintf(w, "# TYPE tomod_view_age_seconds gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "tomod_view_age_seconds{tenant=%q} %g\n", t.name, t.viewAge.Seconds())
	}
	fmt.Fprintf(w, "# HELP tomod_replica_lag_snapshots Accepted snapshots each tenant's view has not yet observed.\n")
	fmt.Fprintf(w, "# TYPE tomod_replica_lag_snapshots gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "tomod_replica_lag_snapshots{tenant=%q} %d\n", t.name, t.viewLag)
	}
	fmt.Fprintf(w, "# HELP tomod_shard_queue_depth Jobs waiting in each shard's ingest queue.\n")
	fmt.Fprintf(w, "# TYPE tomod_shard_queue_depth gauge\n")
	for i, n := range queueLens {
		fmt.Fprintf(w, "tomod_shard_queue_depth{shard=\"%d\"} %d\n", i, n)
	}
	fmt.Fprintf(w, "# HELP tomod_estimate_queue_depth Estimate requests waiting for a replica worker.\n")
	fmt.Fprintf(w, "# TYPE tomod_estimate_queue_depth gauge\n")
	fmt.Fprintf(w, "tomod_estimate_queue_depth %d\n", estQueueLen)
}
