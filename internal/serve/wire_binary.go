package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	mathbits "math/bits"
	"strings"

	"repro/internal/bitset"
)

// The TOMOW1 binary columnar wire format. A 20-byte little-endian header:
//
//	offset 0  magic "TOMOW1" (6 bytes)
//	offset 6  version (1 byte, currently 1)
//	offset 7  flags (1 byte; bit 0: 1 ⇒ sparse payload, 0 ⇒ dense; other
//	          bits must be zero)
//	offset 8  numPaths (uint32) — must equal the tenant's path count
//	offset 12 snapshots (uint32)
//	offset 16 CRC-32C (Castagnoli) of the payload (uint32)
//
// followed by the payload. The dense payload is snapshots rows of
// ceil(numPaths/64) uint64 words each — the exact word layout the
// snapstore/segstore columns use, so an accepted batch is appended with no
// per-snapshot re-packing. The sparse payload (for mostly-good snapshots;
// only expressible when numPaths fits in 16 bits) is, per snapshot, a
// uint16 index count followed by that many strictly increasing uint16 path
// indices. The encoder picks whichever payload is smaller per batch; the
// flag byte says which it picked.
const (
	binaryMagic     = "TOMOW1"
	binaryVersion   = 1
	binaryHeaderLen = 20
	flagSparse      = 0x01
)

// castagnoli is the CRC-32C table (the polynomial with hardware support on
// both x86 and arm64) shared by the encoder and decoder.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// isBinaryContentType reports whether an ingest Content-Type selects the
// binary wire format. Media-type parameters ("; charset=...") are ignored;
// everything that is not the binary media type falls back to JSON.
func isBinaryContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == ContentTypeBinary
}

// EncodeReportsBinary renders congested-path sets as a TOMOW1 binary batch
// — the client half of the binary wire format, used by the firehose load
// generator and tests. The encoder computes both payload sizes and emits
// the smaller (ties go dense); indices at or past numPaths are rejected so
// an encoded batch always decodes against a tenant with that path count.
func EncodeReportsBinary(sets []*bitset.Set, numPaths int) ([]byte, error) {
	if numPaths <= 0 {
		return nil, fmt.Errorf("serve: encode binary batch: tenant has %d paths", numPaths)
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("serve: encode binary batch: no reports")
	}
	words := rowWords(numPaths)
	denseSize := len(sets) * words * 8
	sparseSize := 0
	for t, s := range sets {
		n, bad := 0, -1
		s.ForEach(func(i int) bool {
			if i >= numPaths {
				bad = i
				return false
			}
			n++
			return true
		})
		if bad >= 0 {
			return nil, fmt.Errorf("serve: encode binary batch: snapshot %d: path index %d out of range for %d paths", t, bad, numPaths)
		}
		sparseSize += 2 + 2*n
	}

	var payload []byte
	flags := byte(0)
	if numPaths <= 0xFFFF && sparseSize < denseSize {
		flags = flagSparse
		payload = make([]byte, 0, sparseSize)
		var u16 [2]byte
		for _, s := range sets {
			binary.LittleEndian.PutUint16(u16[:], uint16(s.Len()))
			payload = append(payload, u16[0], u16[1])
			s.ForEach(func(i int) bool {
				binary.LittleEndian.PutUint16(u16[:], uint16(i))
				payload = append(payload, u16[0], u16[1])
				return true
			})
		}
	} else {
		payload = make([]byte, denseSize)
		for t, s := range sets {
			sw := s.Words()
			base := t * words * 8
			// A set sized past numPaths only holds zero words out there
			// (validated above), and a smaller one means trailing all-good
			// words — either way copying min(words, len(sw)) is exact.
			for w := 0; w < words && w < len(sw); w++ {
				binary.LittleEndian.PutUint64(payload[base+w*8:], sw[w])
			}
		}
	}

	out := make([]byte, binaryHeaderLen+len(payload))
	copy(out, binaryMagic)
	out[6] = binaryVersion
	out[7] = flags
	binary.LittleEndian.PutUint32(out[8:], uint32(numPaths))
	binary.LittleEndian.PutUint32(out[12:], uint32(len(sets)))
	binary.LittleEndian.PutUint32(out[16:], crc32.Checksum(payload, castagnoli))
	copy(out[binaryHeaderLen:], payload)
	return out, nil
}

// decodeReportsBinaryInto parses and validates one TOMOW1 batch into a
// reusable word batch. Every rejection is a descriptive serve-prefixed
// error, never a panic (FuzzBinaryIngestDecode pins this), and the
// validation order is fixed so the exact-error-string tests are
// deterministic: header shape (length, magic, version, flags), path-count
// match, snapshot count against maxBatch, payload CRC, then
// format-specific structure. Index errors reuse DecodeReports' strings, so
// the two wire formats reject an out-of-range path identically.
func decodeReportsBinaryInto(b *wordBatch, data []byte, numPaths, maxBatch int) error {
	if numPaths <= 0 {
		return fmt.Errorf("serve: decode probe batch: tenant has %d paths", numPaths)
	}
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	if len(data) < binaryHeaderLen {
		return fmt.Errorf("serve: binary probe batch: %d-byte body, want at least the %d-byte header", len(data), binaryHeaderLen)
	}
	if string(data[:6]) != binaryMagic {
		return fmt.Errorf("serve: binary probe batch: bad magic %q", data[:6])
	}
	if v := data[6]; v != binaryVersion {
		return fmt.Errorf("serve: binary probe batch: unsupported version %d", v)
	}
	flags := data[7]
	if flags&^byte(flagSparse) != 0 {
		return fmt.Errorf("serve: binary probe batch: unknown flags 0x%02x", flags)
	}
	if batchPaths := int(binary.LittleEndian.Uint32(data[8:12])); batchPaths != numPaths {
		return fmt.Errorf("serve: binary probe batch encodes %d paths, tenant has %d", batchPaths, numPaths)
	}
	snaps := int(binary.LittleEndian.Uint32(data[12:16]))
	if snaps == 0 {
		return fmt.Errorf("serve: binary probe batch carries no reports")
	}
	if snaps > maxBatch {
		return fmt.Errorf("serve: binary probe batch carries %d snapshots, limit %d", snaps, maxBatch)
	}
	payload := data[binaryHeaderLen:]
	wantCRC := binary.LittleEndian.Uint32(data[16:20])
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return fmt.Errorf("serve: binary probe batch: payload CRC 0x%08x, header declares 0x%08x", got, wantCRC)
	}
	words := rowWords(numPaths)

	if flags&flagSparse == 0 {
		if want := snaps * words * 8; len(payload) != want {
			return fmt.Errorf("serve: binary probe batch: dense payload is %d bytes, want %d (%d snapshots x %d words)", len(payload), want, snaps, words)
		}
		b.resetRaw(snaps, words)
		for k := range b.words {
			b.words[k] = binary.LittleEndian.Uint64(payload[k*8:])
		}
		// Bits at or past numPaths in a row's tail word would address
		// columns the tenant does not have; reject them with the shared
		// out-of-range string.
		if tail := numPaths % 64; tail != 0 {
			mask := ^uint64(0) << uint(tail)
			for t := 0; t < snaps; t++ {
				if stray := b.row(t)[words-1] & mask; stray != 0 {
					p := (words-1)*64 + mathbits.TrailingZeros64(stray)
					return fmt.Errorf("serve: snapshot %d: path index %d out of range for %d paths", t, p, numPaths)
				}
			}
		}
		return nil
	}

	b.reset(snaps, words)
	off := 0
	for t := 0; t < snaps; t++ {
		if off+2 > len(payload) {
			return fmt.Errorf("serve: binary probe batch: sparse payload truncated in snapshot %d", t)
		}
		n := int(binary.LittleEndian.Uint16(payload[off:]))
		off += 2
		if off+2*n > len(payload) {
			return fmt.Errorf("serve: binary probe batch: sparse payload truncated in snapshot %d", t)
		}
		row := b.row(t)
		prev := -1
		for k := 0; k < n; k++ {
			p := int(binary.LittleEndian.Uint16(payload[off:]))
			off += 2
			if p >= numPaths {
				return fmt.Errorf("serve: snapshot %d: path index %d out of range for %d paths", t, p, numPaths)
			}
			if p <= prev {
				return fmt.Errorf("serve: binary probe batch: snapshot %d: path indices not strictly increasing", t)
			}
			prev = p
			row[p/64] |= 1 << uint(p%64)
		}
	}
	if off != len(payload) {
		return fmt.Errorf("serve: binary probe batch: %d trailing payload bytes", len(payload)-off)
	}
	return nil
}
