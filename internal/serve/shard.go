package serve

import (
	"fmt"

	tomography "repro"
	"repro/internal/bitset"
)

// job is one unit of work on a shard queue. Exactly one of the payload
// fields is set: reports applies an ingest batch to a tenant's window,
// block parks the worker until the channel closes (a test hook for
// deterministic backpressure scenarios). Estimates no longer ride the
// shard queue — they run on the estimate pool against published window
// views (see replica.go).
type job struct {
	tenant  *Tenant
	reports []*bitset.Set
	block   <-chan struct{}
}

// shard is one serving partition: a bounded job queue drained by a single
// worker goroutine. Every tenant maps to exactly one shard, so the worker
// is the sole writer of its tenants' windows — appends to the columnar
// ring stores proceed without locks, and per-tenant ingest batches are
// totally ordered by queue position.
type shard struct {
	queue chan job
}

// worker drains one shard until its queue closes (daemon shutdown). After
// applying each ingest batch it publishes a fresh read-replica view of the
// tenant's window, so the estimate pool always serves from a view no older
// than the last applied batch.
func (d *Daemon) worker(s *shard) {
	defer d.wg.Done()
	for j := range s.queue {
		switch {
		case j.block != nil:
			<-j.block
		case j.reports != nil:
			t := j.tenant
			// Batched window maintenance: one blocked eviction pass and one
			// cache reset for the whole ingest batch instead of per report.
			if flagged := t.win.ObserveBatch(j.reports); flagged > 0 {
				t.changePoints.Add(int64(flagged))
				d.metrics.changePoints.Add(int64(flagged))
			}
			t.syncStats()
			d.metrics.ingestSnapshots.Add(int64(len(j.reports)))
			d.publishView(t)
		}
	}
}

// errWindowWarming marks an estimate requested before the tenant's window
// filled; the HTTP layer maps it to 425 Too Early.
type errWindowWarming struct{ msg string }

func (e errWindowWarming) Error() string { return e.msg }

// estimateTenant runs the tenant's configured estimator over its current
// window on the worker's workspace, detaching the response from the
// workspace before it escapes. Called only with exclusive ownership of the
// tenant's window (by its shard worker, or by Shutdown after all workers
// exited).
func (d *Daemon) estimateTenant(ws *tomography.Workspace, t *Tenant) (*EstimateResponse, error) {
	if t.win.Len() < t.window {
		d.metrics.estimateErrors.Add(1)
		return nil, errWindowWarming{msg: fmt.Sprintf(
			"serve: tenant %q window warming: %d/%d snapshots", t.name, t.win.Len(), t.window)}
	}
	res, err := tomography.EstimateIn(ws, t.estimator, t.win.Plan(), t.win.Source(), t.opts)
	if err != nil {
		d.metrics.estimateErrors.Add(1)
		return nil, err
	}
	probs := make([]float64, len(res.CongestionProb))
	copy(probs, res.CongestionProb)
	t.estimates.Add(1)
	d.metrics.estimates.Add(1)
	return &EstimateResponse{
		Tenant:         t.name,
		Estimator:      t.estimator,
		WindowSize:     t.window,
		WindowLen:      t.win.Len(),
		SnapshotsSeen:  t.win.Seen(),
		CongestionProb: probs,
		ChangePoints:   len(t.win.ChangePoints()),
	}, nil
}
