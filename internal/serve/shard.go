package serve

import (
	"fmt"
	"time"

	tomography "repro"
)

// job is one unit of work on a shard queue. Exactly one of the payload
// fields is set: batch applies a decoded ingest batch (pooled word rows,
// returned to the pool by the worker) to a tenant's window, block parks
// the worker until the channel closes (a test hook for deterministic
// backpressure scenarios). Estimates no longer ride the shard queue — they
// run on the estimate pool against published window views (see
// replica.go).
type job struct {
	tenant *Tenant
	batch  *wordBatch
	block  <-chan struct{}
}

// shard is one serving partition: a bounded job queue drained by a single
// worker goroutine. Every tenant maps to exactly one shard, so the worker
// is the sole writer of its tenants' windows — appends to the columnar
// ring stores proceed without locks, and per-tenant ingest batches are
// totally ordered by queue position.
type shard struct {
	queue chan job
}

// shouldPublish decides whether the worker publishes a fresh view after
// the batch it just applied: always by default (PublishEveryBatches ≤ 1),
// otherwise once the tenant has accumulated PublishEveryBatches applied
// batches since its last view, or once that view is PublishMaxAge old.
func (d *Daemon) shouldPublish(t *Tenant) bool {
	if d.cfg.PublishEveryBatches <= 1 {
		return true
	}
	if t.pendingBatches >= d.cfg.PublishEveryBatches {
		return true
	}
	return d.cfg.PublishMaxAge > 0 && time.Since(t.lastPublished) >= d.cfg.PublishMaxAge
}

// worker drains one shard until its queue closes (daemon shutdown),
// publishing read-replica views per the publication policy (shouldPublish).
//
// dirty tracks tenants with applied-but-unpublished batches. The liveness
// invariant the estimate pool relies on — every accepted batch is
// eventually covered by a published view — must survive batched
// publication: a count/age threshold alone could leave tenant A's last
// batch unpublished forever while later queue traffic belongs to tenant B,
// deadlocking an estimate waiting on A's view. So whenever the queue is
// observed empty after a job, and again when the queue closes on shutdown,
// every dirty tenant is published. Under the default publish-per-batch
// policy dirty stays empty and behavior is unchanged.
func (d *Daemon) worker(s *shard) {
	defer d.wg.Done()
	dirty := make(map[*Tenant]struct{})
	for j := range s.queue {
		switch {
		case j.block != nil:
			<-j.block
		case j.batch != nil:
			t := j.tenant
			rows := j.batch.rows
			// Batched window maintenance: one blocked eviction pass and one
			// cache reset for the whole ingest batch instead of per report.
			if flagged := t.win.ObserveBatchWords(j.batch.words, j.batch.wordsPerRow, rows); flagged > 0 {
				t.changePoints.Add(int64(flagged))
				d.metrics.changePoints.Add(int64(flagged))
			}
			putWordBatch(j.batch)
			t.syncStats()
			d.metrics.ingestSnapshots.Add(int64(rows))
			t.pendingBatches++
			if d.shouldPublish(t) {
				d.publishView(t)
				delete(dirty, t)
			} else {
				dirty[t] = struct{}{}
			}
		}
		if len(dirty) > 0 && len(s.queue) == 0 {
			for t := range dirty {
				d.publishView(t)
				delete(dirty, t)
			}
		}
	}
	for t := range dirty {
		d.publishView(t)
	}
}

// errWindowWarming marks an estimate requested before the tenant's window
// filled; the HTTP layer maps it to 425 Too Early.
type errWindowWarming struct{ msg string }

func (e errWindowWarming) Error() string { return e.msg }

// estimateTenant runs the tenant's configured estimator over its current
// window on the worker's workspace, detaching the response from the
// workspace before it escapes. Called only with exclusive ownership of the
// tenant's window (by its shard worker, or by Shutdown after all workers
// exited).
func (d *Daemon) estimateTenant(ws *tomography.Workspace, t *Tenant) (*EstimateResponse, error) {
	if t.win.Len() < t.window {
		d.metrics.estimateErrors.Add(1)
		return nil, errWindowWarming{msg: fmt.Sprintf(
			"serve: tenant %q window warming: %d/%d snapshots", t.name, t.win.Len(), t.window)}
	}
	res, err := tomography.EstimateIn(ws, t.estimator, t.win.Plan(), t.win.Source(), t.opts)
	if err != nil {
		d.metrics.estimateErrors.Add(1)
		return nil, err
	}
	probs := make([]float64, len(res.CongestionProb))
	copy(probs, res.CongestionProb)
	t.estimates.Add(1)
	d.metrics.estimates.Add(1)
	return &EstimateResponse{
		Tenant:         t.name,
		Estimator:      t.estimator,
		WindowSize:     t.window,
		WindowLen:      t.win.Len(),
		SnapshotsSeen:  t.win.Seen(),
		CongestionProb: probs,
		ChangePoints:   len(t.win.ChangePoints()),
	}, nil
}
