package serve

import (
	"math"
	"testing"
	"time"
)

// TestLatencyBuckets is the table-driven regression for the histogram
// bucket-boundary bugfix: a measured 0µs gets its own bucket instead of
// being lumped into (0,1], every bucket's upper bound is inclusive exactly
// as documented, and over-range observations saturate into the last
// bucket.
func TestLatencyBuckets(t *testing.T) {
	cases := []struct {
		us   int64
		want int
	}{
		{0, 0},
		{-1, 0}, // a clock gone backwards still lands somewhere sane
		{1, 1},
		{2, 2},
		{3, 3},
		{4, 3},
		{5, 4},
		{1 << 24, 25},
		{1<<24 + 1, 26},
		{1 << 26, 26},
		{math.MaxInt64, 26},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.us); got != tc.want {
			t.Errorf("bucketOf(%dµs) = %d, want %d", tc.us, got, tc.want)
		}
	}

	// Bounds and placement must agree: bucketBound(b) is the largest
	// latency that maps into bucket b, and one more microsecond spills into
	// b+1 — the comment/bounds disagreement the old code shipped.
	if bucketBound(0) != 0 {
		t.Errorf("bucketBound(0) = %v, want 0", bucketBound(0))
	}
	for b := 1; b < latencyBuckets-1; b++ {
		bound := bucketBound(b).Microseconds()
		if got := bucketOf(bound); got != b {
			t.Errorf("bucketOf(bound of %d = %dµs) = %d, want %d", b, bound, got, b)
		}
		if got := bucketOf(bound + 1); got != b+1 {
			t.Errorf("bucketOf(%dµs) = %d, want %d (bound of %d is inclusive)", bound+1, got, b+1, b)
		}
	}

	// A histogram of all-zero latencies must report a 0 quantile, not the
	// old phantom 1µs.
	var h histogram
	for i := 0; i < 10; i++ {
		h.observe(0)
	}
	if q := h.quantile(0.99); q != 0 {
		t.Errorf("all-zero histogram p99 = %v, want 0", q)
	}
	h.observe(3 * time.Microsecond)
	if q := h.quantile(1.0); q != 4*time.Microsecond {
		t.Errorf("p100 = %v, want the 3µs observation's bucket bound 4µs", q)
	}
}
