// Package serve is the multi-tenant serving layer of the tomography
// library: a long-running daemon that ingests probe-report batches over
// HTTP, maintains one sliding-window inference session per registered
// tenant, and answers estimate, health and metrics queries while the
// stream keeps flowing.
//
// The hot path is built from the pieces PRs 2–5 prepared: each tenant owns
// a compiled inference plan (shared, immutable), a ring-buffer sliding
// window over the columnar snapshot store (single-writer, so appends are
// lock-free), and estimates run on per-worker evaluate workspaces, so the
// steady state allocates nothing per snapshot. Tenants are partitioned
// across a fixed set of shards; each shard is one goroutine draining one
// bounded job queue, which gives every tenant a total order over its
// ingests and estimates — the property the differential replay tests pin.
// When a shard's queue is full the HTTP layer answers 429 with Retry-After
// instead of buffering unboundedly: backpressure is explicit and
// immediate.
package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/bitset"
)

// Wire-format limits. They bound what a single POST may demand before any
// validation has run, so a malformed (or adversarial) request cannot force
// an enormous allocation.
const (
	// DefaultMaxBatch is the default cap on snapshots per probe batch.
	DefaultMaxBatch = 4096
	// DefaultMaxBody is the default cap on request-body bytes.
	DefaultMaxBody = 4 << 20
)

// reportBatch is the probe-report wire format: one JSON object per ingest
// POST, carrying one or more snapshots for a single tenant. Each report is
// the congested-path observation of one snapshot, as a list of path
// indices into the tenant's topology.
//
//	{"reports": [[0, 2], [1], []]}
type reportBatch struct {
	Reports [][]int `json:"reports"`
}

// DecodeReports parses and validates one probe-report batch against a
// tenant's path count. It returns one congested-path set per snapshot, in
// arrival order. Malformed JSON, a missing or empty reports list, more
// than maxBatch snapshots, negative path indices and indices outside
// [0, numPaths) are all rejected with a descriptive error — the ingest
// handler maps every one of them to a 4xx, never a panic (the FuzzIngestDecode
// target pins this).
func DecodeReports(data []byte, numPaths, maxBatch int) ([]*bitset.Set, error) {
	if numPaths <= 0 {
		return nil, fmt.Errorf("serve: decode probe batch: tenant has %d paths", numPaths)
	}
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	var batch reportBatch
	if err := json.Unmarshal(data, &batch); err != nil {
		return nil, fmt.Errorf("serve: decode probe batch: %w", err)
	}
	if len(batch.Reports) == 0 {
		return nil, fmt.Errorf("serve: probe batch carries no reports")
	}
	if len(batch.Reports) > maxBatch {
		return nil, fmt.Errorf("serve: probe batch carries %d snapshots, limit %d", len(batch.Reports), maxBatch)
	}
	sets := make([]*bitset.Set, len(batch.Reports))
	for t, report := range batch.Reports {
		set := bitset.New(numPaths)
		for _, p := range report {
			if p < 0 {
				return nil, fmt.Errorf("serve: snapshot %d: negative path index %d", t, p)
			}
			if p >= numPaths {
				return nil, fmt.Errorf("serve: snapshot %d: path index %d out of range for %d paths", t, p, numPaths)
			}
			set.Add(p)
		}
		sets[t] = set
	}
	return sets, nil
}

// EncodeReports renders congested-path sets as a wire batch — the client
// half of the format, used by the firehose load generator and tests.
func EncodeReports(sets []*bitset.Set) ([]byte, error) {
	batch := reportBatch{Reports: make([][]int, len(sets))}
	for t, s := range sets {
		idx := s.Indices()
		if idx == nil {
			idx = []int{}
		}
		batch.Reports[t] = idx
	}
	return json.Marshal(batch)
}
