// Package serve is the multi-tenant serving layer of the tomography
// library: a long-running daemon that ingests probe-report batches over
// HTTP, maintains one sliding-window inference session per registered
// tenant, and answers estimate, health and metrics queries while the
// stream keeps flowing.
//
// The hot path is built from the pieces PRs 2–5 prepared: each tenant owns
// a compiled inference plan (shared, immutable), a ring-buffer sliding
// window over the columnar snapshot store (single-writer, so appends are
// lock-free), and estimates run on per-worker evaluate workspaces, so the
// steady state allocates nothing per snapshot. Tenants are partitioned
// across a fixed set of shards; each shard is one goroutine draining one
// bounded job queue, which gives every tenant a total order over its
// ingests and estimates — the property the differential replay tests pin.
// When a shard's queue is full the HTTP layer answers 429 with Retry-After
// instead of buffering unboundedly: backpressure is explicit and
// immediate.
package serve

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/bitset"
)

// Wire-format limits. They bound what a single POST may demand before any
// validation has run, so a malformed (or adversarial) request cannot force
// an enormous allocation.
const (
	// DefaultMaxBatch is the default cap on snapshots per probe batch.
	DefaultMaxBatch = 4096
	// DefaultMaxBody is the default cap on request-body bytes.
	DefaultMaxBody = 4 << 20
)

// Ingest media types the daemon negotiates on: anything other than the
// binary media type (parameters ignored) decodes as JSON, so JSON stays
// the default and old clients keep working unchanged.
const (
	// ContentTypeJSON is the default probe wire format (reportBatch).
	ContentTypeJSON = "application/json"
	// ContentTypeBinary selects the TOMOW1 binary columnar wire format.
	ContentTypeBinary = "application/x-tomo-probes"
)

// wordBatch is a decoded probe batch in the column stores' packed word
// layout: rows snapshots, each wordsPerRow little-endian-ordered uint64
// words (bit i of word w ⇒ path w*64+i congested), laid out back to back
// in words. Both wire decoders produce it — the binary dense payload
// carries it verbatim, the JSON and sparse decoders scatter indices into
// it — the shard queue hands it to the worker, and
// Window.ObserveBatchWords appends it column-wise. With the sync.Pool
// recycling the buffers, an accepted batch costs O(1) allocations
// regardless of its snapshot count.
type wordBatch struct {
	words       []uint64
	wordsPerRow int
	rows        int
}

// reset sizes the buffer for rows×wordsPerRow words and zeroes it, for
// decoders that set individual bits.
func (b *wordBatch) reset(rows, wordsPerRow int) {
	b.resetRaw(rows, wordsPerRow)
	bitset.ZeroWords(b.words)
}

// resetRaw sizes the buffer without zeroing — for decoders that overwrite
// every word (the dense binary payload).
func (b *wordBatch) resetRaw(rows, wordsPerRow int) {
	n := rows * wordsPerRow
	if cap(b.words) < n {
		b.words = make([]uint64, n)
	} else {
		b.words = b.words[:n]
	}
	b.rows, b.wordsPerRow = rows, wordsPerRow
}

// row returns snapshot t's words.
func (b *wordBatch) row(t int) []uint64 {
	return b.words[t*b.wordsPerRow : (t+1)*b.wordsPerRow]
}

var wordBatchPool = sync.Pool{New: func() any { return new(wordBatch) }}

func getWordBatch() *wordBatch  { return wordBatchPool.Get().(*wordBatch) }
func putWordBatch(b *wordBatch) { wordBatchPool.Put(b) }

// rowWords is the per-snapshot word count for a path count.
func rowWords(numPaths int) int { return (numPaths + 63) / 64 }

// reportBatch is the probe-report wire format: one JSON object per ingest
// POST, carrying one or more snapshots for a single tenant. Each report is
// the congested-path observation of one snapshot, as a list of path
// indices into the tenant's topology.
//
//	{"reports": [[0, 2], [1], []]}
type reportBatch struct {
	Reports [][]int `json:"reports"`
}

// DecodeReports parses and validates one probe-report batch against a
// tenant's path count. It returns one congested-path set per snapshot, in
// arrival order. Malformed JSON, a missing or empty reports list, more
// than maxBatch snapshots, negative path indices and indices outside
// [0, numPaths) are all rejected with a descriptive error — the ingest
// handler maps every one of them to a 4xx, never a panic (the FuzzIngestDecode
// target pins this).
func DecodeReports(data []byte, numPaths, maxBatch int) ([]*bitset.Set, error) {
	var b wordBatch
	if err := decodeReportsJSONInto(&b, data, numPaths, maxBatch); err != nil {
		return nil, err
	}
	sets := make([]*bitset.Set, b.rows)
	for t := range sets {
		sets[t] = bitset.FromWords(b.row(t))
	}
	return sets, nil
}

// decodeReportsJSONInto is DecodeReports decoding into a reusable word
// batch instead of materializing one set per snapshot — the daemon's
// ingest path. Validation order and every error string are identical to
// DecodeReports (which is now a thin materializing wrapper over it).
func decodeReportsJSONInto(b *wordBatch, data []byte, numPaths, maxBatch int) error {
	if numPaths <= 0 {
		return fmt.Errorf("serve: decode probe batch: tenant has %d paths", numPaths)
	}
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	var batch reportBatch
	if err := json.Unmarshal(data, &batch); err != nil {
		return fmt.Errorf("serve: decode probe batch: %w", err)
	}
	if len(batch.Reports) == 0 {
		return fmt.Errorf("serve: probe batch carries no reports")
	}
	if len(batch.Reports) > maxBatch {
		return fmt.Errorf("serve: probe batch carries %d snapshots, limit %d", len(batch.Reports), maxBatch)
	}
	b.reset(len(batch.Reports), rowWords(numPaths))
	for t, report := range batch.Reports {
		row := b.row(t)
		for _, p := range report {
			if p < 0 {
				return fmt.Errorf("serve: snapshot %d: negative path index %d", t, p)
			}
			if p >= numPaths {
				return fmt.Errorf("serve: snapshot %d: path index %d out of range for %d paths", t, p, numPaths)
			}
			row[p/64] |= 1 << uint(p%64)
		}
	}
	return nil
}

// EncodeReports renders congested-path sets as a wire batch — the client
// half of the format, used by the firehose load generator and tests. One
// backing index slice serves the whole batch, sub-sliced per snapshot,
// instead of one Indices allocation per snapshot.
func EncodeReports(sets []*bitset.Set) ([]byte, error) {
	total := 0
	for _, s := range sets {
		total += s.Len()
	}
	backing := make([]int, 0, total)
	batch := reportBatch{Reports: make([][]int, len(sets))}
	for t, s := range sets {
		start := len(backing)
		backing = s.AppendIndices(backing)
		// Full-slice expression: the subslices are non-nil even when empty
		// (an empty report must marshal as [], not null) and appending to
		// one can never scribble on its neighbor.
		batch.Reports[t] = backing[start:len(backing):len(backing)]
	}
	return json.Marshal(batch)
}
