package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestBackpressure429 pins the explicit-backpressure contract: when a
// shard's bounded queue is full, ingest answers 429 with a Retry-After
// hint and applies nothing — and once the shard drains, the same batch is
// accepted and applied. The shard worker is parked on a block job so the
// queue state is deterministic.
func TestBackpressure429(t *testing.T) {
	d := New(Config{Shards: 1, QueueDepth: 2, RetryAfter: 1})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	defer d.Shutdown(context.Background())

	if _, err := d.Register(TenantConfig{Name: "bp", Scenario: "quickstart", Seed: 1, Window: 10}); err != nil {
		t.Fatal(err)
	}

	// Park the worker: it dequeues the block job and waits, leaving the
	// queue empty with nothing being drained.
	release := make(chan struct{})
	d.shards[0].queue <- job{block: release}
	waitFor(t, "worker parked on block job", func() bool { return len(d.shards[0].queue) == 0 })

	// Two batches fill the queue; the third must bounce.
	batch := []byte(`{"reports":[[0],[1]]}`)
	for i := 0; i < 2; i++ {
		if status, body := post(t, srv.URL+"/v1/ingest?tenant=bp", batch); status != http.StatusAccepted {
			t.Fatalf("fill batch %d: status %d: %s", i, status, body)
		}
	}
	resp, err := http.Post(srv.URL+"/v1/ingest?tenant=bp", "application/json", strings.NewReader(string(batch)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow batch: status %d, want %d", resp.StatusCode, http.StatusTooManyRequests)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want %q", got, "1")
	}

	// Release the worker; the two accepted batches (4 snapshots) must all
	// land in the tenant's window, the bounced one must not.
	close(release)
	waitFor(t, "accepted batches applied", func() bool {
		return d.Tenants()[0].Seen == 4
	})
	if rejected := d.metrics.ingestRejected.Load(); rejected != 1 {
		t.Fatalf("ingestRejected = %d, want 1", rejected)
	}

	// After draining, the same batch is accepted again.
	if status, body := post(t, srv.URL+"/v1/ingest?tenant=bp", batch); status != http.StatusAccepted {
		t.Fatalf("post-drain batch: status %d: %s", status, body)
	}
}

// TestHealthAndMetrics exercises the observability endpoints: health
// reports tenant/shard counts, and /metrics carries the ingest counters,
// per-tenant occupancy gauges and the estimate-latency summary in the
// Prometheus text format.
func TestHealthAndMetrics(t *testing.T) {
	d := New(Config{Shards: 2, QueueDepth: 16})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	defer d.Shutdown(context.Background())

	if _, err := d.Register(TenantConfig{Name: "m0", Scenario: "quickstart", Seed: 1, Window: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Register(TenantConfig{Name: "m1", Scenario: "quickstart", Seed: 2, Window: 4}); err != nil {
		t.Fatal(err)
	}

	var health HealthResponse
	if status, body := get(t, srv.URL+"/v1/health", &health); status != http.StatusOK {
		t.Fatalf("health: status %d: %s", status, body)
	}
	if health.Status != "ok" || health.Tenants != 2 || health.Shards != 2 || health.Draining {
		t.Fatalf("health = %+v", health)
	}

	// Warm m0 and serve one estimate so every counter family is non-zero.
	if status, body := post(t, srv.URL+"/v1/ingest?tenant=m0",
		[]byte(`{"reports":[[0],[1],[0,1],[2],[0]]}`)); status != http.StatusAccepted {
		t.Fatalf("ingest: status %d: %s", status, body)
	}
	var est EstimateResponse
	if status, body := get(t, srv.URL+"/v1/estimate?tenant=m0", &est); status != http.StatusOK {
		t.Fatalf("estimate: status %d: %s", status, body)
	}
	if est.WindowLen != 4 || est.SnapshotsSeen != 5 {
		t.Fatalf("estimate window = %d len / %d seen, want 4/5", est.WindowLen, est.SnapshotsSeen)
	}

	status, body := get(t, srv.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	for _, want := range []string{
		"tomod_ingest_batches_total 1",
		"tomod_ingest_snapshots_total 5",
		"tomod_estimates_total 1",
		`tomod_window_occupancy{tenant="m0"} 4`,
		`tomod_window_occupancy{tenant="m1"} 0`,
		`tomod_snapshots_seen{tenant="m0"} 5`,
		"tomod_estimate_latency_seconds_count 1",
		`tomod_shard_queue_depth{shard="0"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}

	// Round-robin shard assignment: the two tenants land on distinct shards.
	infos := d.Tenants()
	if infos[0].Shard == infos[1].Shard {
		t.Fatalf("tenants share shard %d, want round-robin distribution", infos[0].Shard)
	}
}

// TestIngestIsOrderedBeforeEstimate pins the queue-ordering contract the
// differential test builds on: an estimate enqueued after an accepted
// ingest batch observes that batch.
func TestIngestIsOrderedBeforeEstimate(t *testing.T) {
	d := New(Config{Shards: 1, QueueDepth: 64})
	defer d.Shutdown(context.Background())
	if _, err := d.Register(TenantConfig{Name: "ord", Scenario: "quickstart", Seed: 3, Window: 8}); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 5; round++ {
		body := []byte(fmt.Sprintf(`{"reports":[[%d],[%d]]}`, round%3, (round+1)%3))
		if _, err := d.Ingest("ord", body); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round*2 < 8 {
			continue
		}
		res, err := d.Estimate(context.Background(), "ord")
		if err != nil {
			t.Fatalf("round %d: estimate: %v", round, err)
		}
		if res.SnapshotsSeen != round*2 {
			t.Fatalf("round %d: estimate sees %d snapshots, want %d", round, res.SnapshotsSeen, round*2)
		}
	}
}

// waitFor polls cond for up to 2 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
