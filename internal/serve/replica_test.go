package serve

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// warmTenant registers the named quickstart tenant and ingests enough
// batches to fill its window, waiting until the shard worker has applied
// (and published a view for) everything accepted.
func warmTenant(t *testing.T, d *Daemon, name string, window, batchSize int) {
	t.Helper()
	if _, err := d.Register(TenantConfig{Name: name, Scenario: "quickstart", Seed: 1, Window: window}); err != nil {
		t.Fatal(err)
	}
	body := quickstartBatch(batchSize)
	total := 0
	for total < window {
		n, err := d.Ingest(name, body)
		if err != nil {
			if errors.Is(err, ErrBackpressure) {
				time.Sleep(time.Millisecond)
				continue
			}
			t.Fatal(err)
		}
		total += n
	}
	d.mu.RLock()
	tenant := d.tenants[name]
	d.mu.RUnlock()
	waitFor(t, "ingest applied", func() bool {
		box := tenant.view.Load()
		return box != nil && int64(box.seen) >= tenant.accepted.Load()
	})
}

// quickstartBatch builds an ingest body of n quickstart-shaped reports.
func quickstartBatch(n int) []byte {
	body := []byte(`{"reports":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			body = append(body, ',')
		}
		body = append(body, []byte{'[', byte('0' + i%3), ']'}...)
	}
	return append(body, []byte(`]}`)...)
}

// TestEstimateUnderIngestSaturation is the decoupling regression the
// read-replica design exists for: with the only shard worker parked and
// the ingest queue saturated (Ingest returns ErrBackpressure), estimates
// for an already-warm tenant must still succeed — served off-worker from
// the latest published view instead of queueing behind the stuck ingest
// backlog.
func TestEstimateUnderIngestSaturation(t *testing.T) {
	d := New(Config{Shards: 1, QueueDepth: 4, EstimateWorkers: 2})
	defer d.Shutdown(context.Background())

	warmTenant(t, d, "warm", 24, 8)
	if _, err := d.Register(TenantConfig{Name: "flood", Scenario: "quickstart", Seed: 2, Window: 1000}); err != nil {
		t.Fatal(err)
	}

	// Park the shard worker, then saturate the queue with the flood
	// tenant's batches until backpressure kicks in.
	release := make(chan struct{})
	d.shards[0].queue <- job{block: release}
	defer close(release)
	waitFor(t, "worker parked", func() bool { return len(d.shards[0].queue) == 0 })
	batch := quickstartBatch(4)
	saturated := false
	for i := 0; i < 64 && !saturated; i++ {
		_, err := d.Ingest("flood", batch)
		saturated = errors.Is(err, ErrBackpressure)
	}
	if !saturated {
		t.Fatal("never hit backpressure; queue depth changed?")
	}

	// The warm tenant's estimates must not care: its accepted writes are
	// all in the published view, so the estimate pool answers immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		res, err := d.Estimate(ctx, "warm")
		if err != nil {
			t.Fatalf("estimate %d under ingest saturation: %v", i, err)
		}
		if res.WindowLen != 24 {
			t.Fatalf("estimate %d covers %d snapshots, want 24", i, res.WindowLen)
		}
	}
	// And ingest is still saturated — the estimates did not drain the
	// queue for the flood tenant.
	if _, err := d.Ingest("flood", batch); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("ingest after estimates: err = %v, want ErrBackpressure", err)
	}
}

// TestEstimatePoolGoroutineFence runs the full register → ingest →
// estimate → Shutdown lifecycle with a multi-worker estimate pool and
// count-worker windows, then fences runtime.NumGoroutine: the shard
// workers, the estimate pool, the count-kernel pools and every view's
// mapped state must all be gone after Shutdown.
func TestEstimatePoolGoroutineFence(t *testing.T) {
	baseline := runtime.NumGoroutine()

	d := New(Config{Shards: 2, QueueDepth: 16, EstimateWorkers: 4, CountWorkers: 2, SpillDir: t.TempDir()})
	warmTenant(t, d, "f0", 16, 8)
	warmTenant(t, d, "f1", 16, 8)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 4; i++ {
		for _, name := range []string{"f0", "f1"} {
			if _, err := d.Estimate(ctx, name); err != nil {
				t.Fatalf("estimate %s: %v", name, err)
			}
		}
	}
	finals, err := d.Shutdown(ctx)
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if len(finals) != 2 || finals[0].Err != nil || finals[1].Err != nil {
		t.Fatalf("finals = %+v, want two flushed estimates", finals)
	}
	// Estimates after shutdown are rejected, not deadlocked on a closed
	// pool.
	if _, err := d.Estimate(ctx, "f0"); err == nil {
		t.Fatal("estimate after shutdown succeeded")
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d goroutines after shutdown, baseline %d", runtime.NumGoroutine(), baseline)
}
