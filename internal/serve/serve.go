package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	tomography "repro"
)

// Config parameterizes a Daemon. The zero value is a usable default.
type Config struct {
	// Shards is the number of serving partitions, each a single worker
	// goroutine with its own bounded queue (0 ⇒ GOMAXPROCS, capped at 16).
	Shards int
	// QueueDepth bounds each shard's job queue; a full queue rejects
	// ingests with 429 + Retry-After (0 ⇒ 256).
	QueueDepth int
	// MaxBatch caps snapshots per ingest POST (0 ⇒ DefaultMaxBatch).
	MaxBatch int
	// MaxBody caps ingest/registration body bytes (0 ⇒ DefaultMaxBody).
	MaxBody int64
	// RetryAfter is the Retry-After hint on 429 responses, in seconds
	// (0 ⇒ 1).
	RetryAfter int
	// EstimateWorkers sizes the estimate-side read-replica pool: estimates
	// run against immutable copy-on-write window views on these workers,
	// never occupying a shard's ingest queue, so a slow MLE estimate cannot
	// stall probe ingestion (0 ⇒ 1). Each worker owns one evaluate
	// workspace; estimates are bit-identical for every setting.
	EstimateWorkers int
	// CountWorkers, when > 1, fans each tenant window's batched pair-count
	// kernel out across that many workers during estimates. Opt-in: the
	// default (0 or 1) keeps estimates single-core per shard, which is
	// right when shards already saturate the machine; a deployment with
	// few tenants and idle cores can spend them here instead. Estimates
	// are bit-identical for every setting.
	CountWorkers int
	// SpillDir, when non-empty, backs every tenant's window with the
	// out-of-core segment store: sealed column segments land under
	// SpillDir/<escaped tenant name> and counts run on the mapped files,
	// so per-tenant RSS stays bounded by the segment size instead of the
	// window size. Estimates are bit-identical to the in-RAM windows. Each
	// tenant's subdirectory is reset at registration.
	SpillDir string
	// SpillSegmentRows overrides the rows per sealed segment when SpillDir
	// is set (0 ⇒ the segstore default; must be a multiple of 64).
	SpillSegmentRows int
	// PublishEveryBatches batches read-replica view publication: a shard
	// worker publishes a fresh view for a tenant only every N applied
	// batches (0 or 1 ⇒ after every batch, the default). Regardless of the
	// setting, the worker publishes every tenant it has left unpublished
	// whenever its queue is empty and when it drains on shutdown, so an
	// estimate waiting for its read-your-accepted-writes target never
	// waits on a view that will not come.
	PublishEveryBatches int
	// PublishMaxAge caps view staleness when PublishEveryBatches > 1: the
	// worker also publishes on the next applied batch once the tenant's
	// current view is at least this old (0 ⇒ no age trigger).
	PublishMaxAge time.Duration
}

// Daemon is the multi-tenant serving core: tenant registry, shard workers,
// and the HTTP API. Construct with New, mount Handler on a server, and
// stop with Shutdown — which drains every queue, flushes one final
// estimate per warm tenant, and leaves no goroutines behind.
type Daemon struct {
	cfg     Config
	metrics metrics

	// mu guards the tenant registry, the draining flag, and — critically —
	// every send on a shard queue: senders hold it for reading, Shutdown
	// flips draining and closes the queues while holding it for writing, so
	// a send on a closed queue cannot happen.
	mu        sync.RWMutex
	tenants   map[string]*Tenant
	nextShard int
	draining  bool

	shards []*shard
	wg     sync.WaitGroup

	// estQueue feeds the estimate-side replica pool; estWG tracks its
	// workers. Senders follow the same RWMutex protocol as the shard
	// queues, and Shutdown closes estQueue only after the shard workers
	// have drained — so every queued estimate's target view is published
	// before the pool is asked to finish.
	estQueue chan estJob
	estWG    sync.WaitGroup
}

// New starts a daemon's shard workers and returns it ready to serve.
func New(cfg Config) *Daemon {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
		if cfg.Shards > 16 {
			cfg.Shards = 16
		}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 1
	}
	if cfg.EstimateWorkers <= 0 {
		cfg.EstimateWorkers = 1
	}
	d := &Daemon{cfg: cfg, tenants: map[string]*Tenant{}}
	d.shards = make([]*shard, cfg.Shards)
	for i := range d.shards {
		d.shards[i] = &shard{queue: make(chan job, cfg.QueueDepth)}
		d.wg.Add(1)
		go d.worker(d.shards[i])
	}
	d.estQueue = make(chan estJob, cfg.QueueDepth)
	for i := 0; i < cfg.EstimateWorkers; i++ {
		d.estWG.Add(1)
		go d.estimateWorker()
	}
	return d
}

// Config returns the daemon's resolved configuration.
func (d *Daemon) Config() Config { return d.cfg }

// errShuttingDown is the uniform rejection once Shutdown has begun; the
// HTTP layer maps it to 503.
var errShuttingDown = errors.New("serve: daemon shutting down")

// Register adds a tenant: the topology is built (from a named scenario or
// an inline document), compiled into a plan, and given an empty sliding
// window on a round-robin-assigned shard. An initial (empty) read-replica
// view is published so the estimate pool always has a view to answer from,
// and pattern-based estimators get their histogram primed while the window
// is still empty (free) so every published view carries it. Duplicate
// names are rejected.
func (d *Daemon) Register(cfg TenantConfig) (*Tenant, error) {
	t, err := newTenant(cfg, d.cfg.CountWorkers, d.cfg.SpillDir, d.cfg.SpillSegmentRows)
	if err != nil {
		return nil, err
	}
	if t.estimator == "theorem" {
		t.win.Source().PrimePatterns()
	}
	d.publishView(t)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		t.view.Load().view.Close()
		t.win.Close()
		return nil, errShuttingDown
	}
	if _, dup := d.tenants[cfg.Name]; dup {
		t.view.Load().view.Close()
		t.win.Close()
		return nil, errDuplicateTenant{msg: fmt.Sprintf("serve: tenant %q already registered", cfg.Name)}
	}
	t.shard = d.nextShard
	d.nextShard = (d.nextShard + 1) % len(d.shards)
	d.tenants[cfg.Name] = t
	return t, nil
}

// errUnknownTenant and errDuplicateTenant carry their HTTP status (404 and
// 409) as a type, so the handler layer never pattern-matches on message
// text.
type errUnknownTenant struct{ msg string }

func (e errUnknownTenant) Error() string { return e.msg }

type errDuplicateTenant struct{ msg string }

func (e errDuplicateTenant) Error() string { return e.msg }

// lookup resolves a tenant name under the read lock; the error lists the
// registered names so a typo is diagnosable from the response alone.
func (d *Daemon) lookupLocked(name string) (*Tenant, error) {
	if t, ok := d.tenants[name]; ok {
		return t, nil
	}
	return nil, errUnknownTenant{msg: fmt.Sprintf(
		"serve: unknown tenant %q (registered: %v)", name, d.tenantNamesLocked())}
}

func (d *Daemon) tenantNamesLocked() []string {
	names := make([]string, 0, len(d.tenants))
	for n := range d.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Tenants returns the admin view of every tenant, sorted by name.
func (d *Daemon) Tenants() []TenantInfo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]TenantInfo, 0, len(d.tenants))
	for _, name := range d.tenantNamesLocked() {
		out = append(out, d.tenants[name].info())
	}
	return out
}

// Ingest validates one probe batch for the named tenant and enqueues it on
// the tenant's shard. It never blocks: a full queue returns ErrBackpressure
// immediately, and the caller (the HTTP layer, or a direct embedder)
// decides how to retry.
var ErrBackpressure = errors.New("serve: shard queue full")

func (d *Daemon) Ingest(name string, body []byte) (accepted int, err error) {
	return d.IngestWire(name, body, ContentTypeJSON)
}

// IngestWire is Ingest with wire-format negotiation: contentType selects
// the decoder (ContentTypeBinary ⇒ the TOMOW1 binary columnar format,
// anything else ⇒ JSON, so JSON stays the default). Both decoders validate
// into the same pooled word-batch buffers, and the shard worker appends
// those words column-wise — an accepted batch costs O(1) allocations on
// the daemon regardless of its snapshot count.
func (d *Daemon) IngestWire(name string, body []byte, contentType string) (accepted int, err error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.draining {
		return 0, errShuttingDown
	}
	t, err := d.lookupLocked(name)
	if err != nil {
		return 0, err
	}
	binaryWire := isBinaryContentType(contentType)
	wb := getWordBatch()
	if binaryWire {
		err = decodeReportsBinaryInto(wb, body, t.numPaths, d.cfg.MaxBatch)
	} else {
		err = decodeReportsJSONInto(wb, body, t.numPaths, d.cfg.MaxBatch)
	}
	if err != nil {
		putWordBatch(wb)
		d.metrics.ingestInvalid.Add(1)
		return 0, err
	}
	// The worker returns wb to the pool after applying it; read the row
	// count before the send hands ownership over.
	rows := wb.rows
	select {
	case d.shards[t.shard].queue <- job{tenant: t, batch: wb}:
		// Count the batch as accepted before the 202 returns: an estimate
		// the client sends afterwards reads this counter as its target and
		// is served only from a view that has observed the batch.
		t.accepted.Add(int64(rows))
		d.metrics.ingestBatches.Add(1)
		if binaryWire {
			d.metrics.ingestBatchesBinary.Add(1)
			d.metrics.ingestBytesBinary.Add(int64(len(body)))
		} else {
			d.metrics.ingestBatchesJSON.Add(1)
			d.metrics.ingestBytesJSON.Add(int64(len(body)))
		}
		return rows, nil
	default:
		putWordBatch(wb)
		d.metrics.ingestRejected.Add(1)
		return 0, ErrBackpressure
	}
}

// EstimateResponse is the /v1/estimate JSON document.
type EstimateResponse struct {
	Tenant         string    `json:"tenant"`
	Estimator      string    `json:"estimator"`
	WindowSize     int       `json:"window_size"`
	WindowLen      int       `json:"window_len"`
	SnapshotsSeen  int       `json:"snapshots_seen"`
	CongestionProb []float64 `json:"congestion_prob"`
	ChangePoints   int       `json:"change_points"`
}

// Estimate runs the tenant's estimator on the read-replica pool, against
// the first published window view that has observed every ingest batch
// accepted before this call — read-your-accepted-writes, the same ordering
// clients relied on when estimates rode the shard queue, except that the
// estimate itself never occupies the ingest queue: a saturated shard 429s
// probes while estimates keep being served from the latest view. ctx
// bounds queue admission, the view wait, and the reply.
func (d *Daemon) Estimate(ctx context.Context, name string) (*EstimateResponse, error) {
	d.mu.RLock()
	if d.draining {
		d.mu.RUnlock()
		return nil, errShuttingDown
	}
	t, err := d.lookupLocked(name)
	if err != nil {
		d.mu.RUnlock()
		return nil, err
	}
	j := estJob{
		tenant:   t,
		target:   t.accepted.Load(),
		enqueued: time.Now(),
		ctx:      ctx,
		done:     make(chan estimateReply, 1),
	}
	select {
	case d.estQueue <- j:
		d.mu.RUnlock()
	case <-ctx.Done():
		d.mu.RUnlock()
		return nil, fmt.Errorf("serve: estimate %q: %w", name, ctx.Err())
	}
	select {
	case reply := <-j.done:
		return reply.res, reply.err
	case <-ctx.Done():
		return nil, fmt.Errorf("serve: estimate %q: %w", name, ctx.Err())
	}
}

// FinalEstimate is one tenant's shutdown-flush estimate.
type FinalEstimate struct {
	Tenant   string
	Response *EstimateResponse
	// Err records why no estimate was flushed (e.g. a still-warming window).
	Err error
}

// Shutdown drains the daemon: new ingests, estimates and registrations are
// rejected immediately, the shard workers finish every queued batch (each
// publishing its final view), the estimate pool serves every queued
// estimate and exits — always possible, because every queued estimate's
// target view is published by the drained shard workers — and one final
// estimate is flushed for every tenant whose window is warm. It returns
// the final estimates sorted by tenant name. ctx bounds the drain; on
// expiry the workers keep draining in the background but no flush is
// attempted.
func (d *Daemon) Shutdown(ctx context.Context) ([]FinalEstimate, error) {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return nil, fmt.Errorf("serve: daemon already shut down")
	}
	d.draining = true
	for _, s := range d.shards {
		close(s.queue)
	}
	d.mu.Unlock()

	done := make(chan struct{})
	go func() {
		// Shard workers first: once they exit, every accepted batch is
		// applied and its view published, so the estimate pool can finish
		// every queued job before its queue closes under it.
		d.wg.Wait()
		close(d.estQueue)
		d.estWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return nil, fmt.Errorf("serve: shutdown drain: %w", ctx.Err())
	}

	// All workers have exited, so this goroutine is now the sole owner of
	// every tenant window and view: flush one final estimate per warm
	// tenant, then release the windows and the last published views.
	ws := tomography.NewWorkspace()
	d.mu.RLock()
	names := d.tenantNamesLocked()
	var out []FinalEstimate
	for _, name := range names {
		t := d.tenants[name]
		res, err := d.estimateTenant(ws, t)
		out = append(out, FinalEstimate{Tenant: name, Response: res, Err: err})
		// Close the final published view (no readers remain) and the
		// window — releasing segment mappings and count-kernel pool
		// goroutines so shutdown leaves none behind.
		if box := t.view.Load(); box != nil {
			box.retired.Store(true)
			if box.claim() {
				box.view.Close()
			}
		}
		t.win.Close()
	}
	d.mu.RUnlock()
	return out, nil
}

// --- HTTP layer. ---

// Handler returns the daemon's HTTP API:
//
//	POST /v1/tenants   register a tenant (TenantConfig JSON)
//	GET  /v1/tenants   list tenants
//	POST /v1/ingest    ?tenant=NAME, probe-report batch JSON body
//	GET  /v1/estimate  ?tenant=NAME
//	GET  /v1/health    liveness + tenant/shard counts
//	GET  /metrics      Prometheus text exposition
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/tenants", d.handleTenants)
	mux.HandleFunc("/v1/ingest", d.handleIngest)
	mux.HandleFunc("/v1/estimate", d.handleEstimate)
	mux.HandleFunc("/v1/health", d.handleHealth)
	mux.HandleFunc("/metrics", d.handleMetrics)
	return mux
}

// writeJSON emits a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// writeError maps a daemon error to its HTTP status and envelope.
func (d *Daemon) writeError(w http.ResponseWriter, err error) {
	var warming errWindowWarming
	var unknown errUnknownTenant
	var duplicate errDuplicateTenant
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, errShuttingDown):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrBackpressure):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", d.cfg.RetryAfter))
		status = http.StatusTooManyRequests
	case errors.As(err, &warming):
		status = http.StatusTooEarly
	case errors.As(err, &unknown):
		status = http.StatusNotFound
	case errors.As(err, &duplicate):
		status = http.StatusConflict
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (d *Daemon) handleTenants(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, d.Tenants())
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, d.cfg.MaxBody))
		if err != nil {
			d.writeError(w, fmt.Errorf("serve: register: reading body: %w", err))
			return
		}
		var cfg TenantConfig
		if err := json.Unmarshal(body, &cfg); err != nil {
			d.writeError(w, fmt.Errorf("serve: register: decode: %w", err))
			return
		}
		t, err := d.Register(cfg)
		if err != nil {
			d.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, t.info())
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (d *Daemon) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, d.cfg.MaxBody))
	if err != nil {
		d.writeError(w, fmt.Errorf("serve: decode probe batch: reading body: %w", err))
		return
	}
	accepted, err := d.IngestWire(r.URL.Query().Get("tenant"), body, r.Header.Get("Content-Type"))
	if err != nil {
		d.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, struct {
		Accepted int `json:"accepted"`
	}{Accepted: accepted})
}

func (d *Daemon) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	res, err := d.Estimate(r.Context(), r.URL.Query().Get("tenant"))
	if err != nil {
		d.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// HealthResponse is the /v1/health JSON document.
type HealthResponse struct {
	Status   string `json:"status"`
	Tenants  int    `json:"tenants"`
	Shards   int    `json:"shards"`
	Draining bool   `json:"draining"`
}

func (d *Daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	d.mu.RLock()
	resp := HealthResponse{
		Status:   "ok",
		Tenants:  len(d.tenants),
		Shards:   len(d.shards),
		Draining: d.draining,
	}
	d.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	d.mu.RLock()
	stats := make([]tenantStats, 0, len(d.tenants))
	for _, name := range d.tenantNamesLocked() {
		t := d.tenants[name]
		st := tenantStats{
			name:      t.name,
			seen:      t.seen.Load(),
			occupancy: t.occupancy.Load(),
			changes:   t.changePoints.Load(),
		}
		if box := t.view.Load(); box != nil {
			st.viewAge = time.Since(box.published)
			if lag := t.accepted.Load() - int64(box.seen); lag > 0 {
				st.viewLag = lag
			}
		}
		stats = append(stats, st)
	}
	queueLens := make([]int, len(d.shards))
	for i, s := range d.shards {
		queueLens[i] = len(s.queue)
	}
	estQueueLen := len(d.estQueue)
	d.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	d.metrics.writeTo(w, stats, queueLens, estQueueLen)
}
