package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	tomography "repro"
	"repro/internal/bitset"
)

// TestDaemonMatchesOfflineReplay is the serving layer's headline
// correctness guarantee: for EVERY registered estimator, the estimates the
// daemon serves over HTTP are bit-identical to an offline WindowedEstimate
// replay of the same probe stream. Four tenants (one per estimator) ingest
// and estimate concurrently, so under -race this also proves the shard
// partitioning isolates tenant state.
//
// The equivalence chain being pinned: HTTP ingest → wire decode → shard
// queue → Window.Observe + EstimateIn on the shard worker's workspace must
// land on exactly the floats that Window.Observe + Window.Estimate produce
// in a single-goroutine offline replay.
func TestDaemonMatchesOfflineReplay(t *testing.T) {
	runOfflineDifferential(t, Config{Shards: 2, QueueDepth: 64})
}

// TestDaemonMatchesOfflineReplayReplicas re-runs the differential replay
// with a 4-worker estimate pool: estimates served off-worker from published
// read-replica views must stay bit-identical to the offline replay for
// every estimator — the read-your-accepted-writes bound makes each HTTP
// estimate wait for a view covering everything that client had ingested.
func TestDaemonMatchesOfflineReplayReplicas(t *testing.T) {
	runOfflineDifferential(t, Config{Shards: 2, QueueDepth: 64, EstimateWorkers: 4})
}

// TestDaemonMatchesOfflineReplayBinary re-runs the differential replay with
// the probe stream carried on the TOMOW1 binary wire format: negotiation,
// the binary decoder, and the batched word-append path must land on exactly
// the floats of the offline replay — the binary wire is a transport change,
// never a numeric one.
func TestDaemonMatchesOfflineReplayBinary(t *testing.T) {
	runOfflineDifferentialWire(t, Config{Shards: 2, QueueDepth: 64}, "binary")
}

// TestDaemonMatchesOfflineReplayBatchedPublication re-runs the binary-wire
// differential replay with view publication batched (every 8 applied
// batches instead of each one) on an off-worker estimate pool. The
// queue-drain flush in the shard worker must keep every estimate answerable
// and bit-identical — batched publication trades view freshness for
// publication cost, never correctness.
func TestDaemonMatchesOfflineReplayBatchedPublication(t *testing.T) {
	runOfflineDifferentialWire(t, Config{Shards: 2, QueueDepth: 64, EstimateWorkers: 2, PublishEveryBatches: 8}, "binary")
}

func runOfflineDifferential(t *testing.T, cfg Config) {
	runOfflineDifferentialWire(t, cfg, "json")
}

func runOfflineDifferentialWire(t *testing.T, cfg Config, wire string) {
	const (
		window = 120
		stride = 40
		snaps  = 360
		seed   = 11
	)
	estimators := tomography.EstimatorNames()
	if len(estimators) < 4 {
		t.Fatalf("estimator registry lists %v, want at least 4 for the concurrency guarantee", estimators)
	}

	d := New(cfg)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	defer d.Shutdown(context.Background())

	var wg sync.WaitGroup
	for i, est := range estimators {
		wg.Add(1)
		go func(i int, est string) {
			defer wg.Done()
			tenant := fmt.Sprintf("diff-%s", est)
			scn, err := tomography.BuildScenario("quickstart", seed+int64(i))
			if err != nil {
				t.Errorf("%s: building scenario: %v", tenant, err)
				return
			}
			rec, err := tomography.Simulate(tomography.SimConfig{
				Topology: scn.Topology, Model: scn.Model, Snapshots: snaps, Seed: seed + 100 + int64(i),
			})
			if err != nil {
				t.Errorf("%s: simulating: %v", tenant, err)
				return
			}

			// Offline ground truth: the replay API over the same stream.
			points, err := tomography.WindowedEstimate(scn.Topology, rec,
				tomography.WindowConfig{Size: window, Estimator: est}, stride)
			if err != nil {
				t.Errorf("%s: offline replay: %v", tenant, err)
				return
			}

			// Register the tenant with its inline topology document.
			var topoJSON bytes.Buffer
			if err := scn.Topology.Encode(&topoJSON); err != nil {
				t.Errorf("%s: encoding topology: %v", tenant, err)
				return
			}
			regBody, _ := json.Marshal(TenantConfig{
				Name: tenant, Topology: topoJSON.Bytes(), Window: window, Estimator: est,
			})
			if status, body := post(t, srv.URL+"/v1/tenants", regBody); status != http.StatusCreated {
				t.Errorf("%s: register: status %d: %s", tenant, status, body)
				return
			}

			// Replay the stream through HTTP in stride-sized batches,
			// requesting an estimate at every offline checkpoint.
			next := 0
			row := bitset.New(scn.Topology.NumPaths())
			for at := 0; at < snaps; at += stride {
				sets := make([]*bitset.Set, 0, stride)
				for s := at; s < at+stride && s < snaps; s++ {
					rec.Paths.RowInto(s, row)
					sets = append(sets, row.Clone())
				}
				var batch []byte
				contentType := ContentTypeJSON
				if wire == "binary" {
					batch, err = EncodeReportsBinary(sets, scn.Topology.NumPaths())
					contentType = ContentTypeBinary
				} else {
					batch, err = EncodeReports(sets)
				}
				if err != nil {
					t.Errorf("%s: encoding batch: %v", tenant, err)
					return
				}
				if status, body := postCT(t, srv.URL+"/v1/ingest?tenant="+tenant, contentType, batch); status != http.StatusAccepted {
					t.Errorf("%s: ingest at %d: status %d: %s", tenant, at, status, body)
					return
				}
				if at+stride < window {
					continue // window not yet warm at this checkpoint
				}
				var got EstimateResponse
				if status, body := get(t, srv.URL+"/v1/estimate?tenant="+tenant, &got); status != http.StatusOK {
					t.Errorf("%s: estimate at %d: status %d: %s", tenant, at, status, body)
					return
				}
				if next >= len(points) {
					t.Errorf("%s: daemon produced more estimates than the offline replay (%d)", tenant, len(points))
					return
				}
				want := points[next]
				next++
				if got.SnapshotsSeen != want.T+1 {
					t.Errorf("%s: estimate covers %d snapshots, offline checkpoint is T=%d", tenant, got.SnapshotsSeen, want.T)
					return
				}
				if got.Estimator != est {
					t.Errorf("%s: estimator %q in response", tenant, got.Estimator)
				}
				if !bitIdentical(got.CongestionProb, want.Result.CongestionProb) {
					t.Errorf("%s: checkpoint T=%d: daemon estimate differs from offline replay\n daemon:  %v\n offline: %v",
						tenant, want.T, got.CongestionProb, want.Result.CongestionProb)
					return
				}
			}
			if next != len(points) {
				t.Errorf("%s: matched %d checkpoints, offline replay has %d", tenant, next, len(points))
			}
		}(i, est)
	}
	wg.Wait()
}

// bitIdentical compares float slices by their IEEE-754 bits — the "no
// tolerance" equality every equivalence test in this repo uses.
func bitIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// post issues a JSON POST and returns the status and body.
func post(t *testing.T, url string, body []byte) (int, string) {
	return postCT(t, url, "application/json", body)
}

// postCT issues a POST under an explicit Content-Type — the wire-format
// negotiation header — and returns the status and body.
func postCT(t *testing.T, url, contentType string, body []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// get issues a GET, decoding the body into out when non-nil; it returns
// the status and raw body.
func get(t *testing.T, url string, out any) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, b, err)
		}
	}
	return resp.StatusCode, string(b)
}
