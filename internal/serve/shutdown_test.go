package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGracefulShutdownDrains pins the shutdown contract: every ingest
// batch the daemon ACCEPTED (202) before shutdown is applied to its
// tenant's window, one final estimate is flushed per warm tenant, and no
// serving goroutines are left behind — checked with a runtime.NumGoroutine
// fence, since the container has no goleak dependency.
func TestGracefulShutdownDrains(t *testing.T) {
	baseline := runtime.NumGoroutine()

	d := New(Config{Shards: 2, QueueDepth: 8})
	srv := httptest.NewServer(d.Handler())
	if _, err := d.Register(TenantConfig{Name: "g0", Scenario: "quickstart", Seed: 1, Window: 20}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Register(TenantConfig{Name: "g1", Scenario: "quickstart", Seed: 2, Window: 500}); err != nil {
		t.Fatal(err)
	}

	// Concurrent ingest load on both tenants while the daemon runs; each
	// accepted batch carries 4 snapshots. 429s are retried, so every batch
	// is eventually accepted.
	var accepted [2]atomic.Int64
	batch := []byte(`{"reports":[[0],[1],[2],[0,2]]}`)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := []string{"g0", "g1"}[g]
			for i := 0; i < 25; i++ {
				for {
					status, body := post(t, srv.URL+"/v1/ingest?tenant="+name, batch)
					if status == http.StatusAccepted {
						accepted[g].Add(4)
						break
					}
					if status != http.StatusTooManyRequests {
						t.Errorf("%s: unexpected ingest status %d: %s", name, status, body)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	finals, err := d.Shutdown(ctx)
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Drained: everything accepted was applied.
	infos := d.Tenants()
	for g, info := range infos {
		if want := accepted[g].Load(); info.Seen != want {
			t.Errorf("%s: saw %d snapshots, accepted %d — shutdown dropped queued ingest", info.Name, info.Seen, want)
		}
	}

	// Final flush: g0 (window 20, 100 snapshots seen) is warm and flushes;
	// g1 (window 500) is still warming and is skipped with the exact
	// warm-up error.
	if len(finals) != 2 {
		t.Fatalf("finals = %d entries, want 2", len(finals))
	}
	if finals[0].Tenant != "g0" || finals[0].Err != nil || finals[0].Response == nil {
		t.Errorf("g0 final = %+v, want a flushed estimate", finals[0])
	} else if got := finals[0].Response.WindowLen; got != 20 {
		t.Errorf("g0 final covers %d snapshots, want 20", got)
	}
	if finals[1].Tenant != "g1" || finals[1].Err == nil {
		t.Errorf("g1 final = %+v, want a warm-up skip", finals[1])
	} else if want := `serve: tenant "g1" window warming: 100/500 snapshots`; finals[1].Err.Error() != want {
		t.Errorf("g1 final error = %q, want %q", finals[1].Err, want)
	}

	// Goroutine fence: with the HTTP server closed and the daemon drained,
	// the serving goroutines must all be gone.
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d goroutines after shutdown, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestShutdownWithQueuedWork pins that Shutdown itself performs the drain:
// batches sitting unprocessed in a shard queue at shutdown time are applied
// before the final flush runs.
func TestShutdownWithQueuedWork(t *testing.T) {
	d := New(Config{Shards: 1, QueueDepth: 16})
	if _, err := d.Register(TenantConfig{Name: "q", Scenario: "quickstart", Seed: 1, Window: 4}); err != nil {
		t.Fatal(err)
	}

	// Park the worker, then stack 3 batches (12 snapshots) in the queue.
	release := make(chan struct{})
	d.shards[0].queue <- job{block: release}
	waitFor(t, "worker parked", func() bool { return len(d.shards[0].queue) == 0 })
	for i := 0; i < 3; i++ {
		if _, err := d.Ingest("q", []byte(`{"reports":[[0],[1],[2],[0,1]]}`)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	finals, err := d.Shutdown(ctx)
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if seen := d.Tenants()[0].Seen; seen != 12 {
		t.Fatalf("tenant saw %d snapshots after drain, want 12", seen)
	}
	if len(finals) != 1 || finals[0].Err != nil {
		t.Fatalf("finals = %+v, want one flushed estimate", finals)
	}
	if finals[0].Response.SnapshotsSeen != 12 {
		t.Fatalf("final estimate sees %d snapshots, want 12", finals[0].Response.SnapshotsSeen)
	}
}
