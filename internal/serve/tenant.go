package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/url"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	tomography "repro"
	"repro/internal/topology"
)

// TenantConfig is the registration payload of the admin API (POST
// /v1/tenants): a tenant is one topology with one sliding-window inference
// session. Exactly one of Scenario or Topology selects where the topology
// comes from — a named scenario from the registry (built from Seed), or an
// inline topology document in the cmd/topogen JSON format.
type TenantConfig struct {
	// Name is the tenant's unique key.
	Name string `json:"name"`
	// Scenario names a registry scenario to take the topology from.
	Scenario string `json:"scenario,omitempty"`
	// Seed builds the named scenario reproducibly.
	Seed int64 `json:"seed,omitempty"`
	// Topology is an inline topology JSON document (cmd/topogen format).
	Topology json.RawMessage `json:"topology,omitempty"`
	// Window is the sliding-window length in snapshots (> 0).
	Window int `json:"window"`
	// Estimator is the registry estimator to run per estimate
	// ("" ⇒ correlation).
	Estimator string `json:"estimator,omitempty"`
}

// Tenant is one registered inference session: a topology, its compiled
// plan, and a ring-buffer sliding window over the columnar snapshot store.
// The window (and everything reachable from it) is owned exclusively by
// the tenant's shard worker — every ingest and estimate for this tenant
// flows through that shard's queue, so window appends never take a lock
// and the tenant observes a total order over its operations. The atomic
// gauges below are the only fields other goroutines read.
type Tenant struct {
	name      string
	scenario  string // registry scenario the topology came from ("" for inline)
	estimator string
	window    int // configured window size (warm ⇔ occupancy == window)
	numPaths  int
	numLinks  int
	shard     int
	win       *tomography.Window
	opts      tomography.EstimateOptions

	// Gauges maintained by the shard worker after each job, read by the
	// admin/metrics handlers.
	seen         atomic.Int64 // total snapshots observed
	occupancy    atomic.Int64 // snapshots currently retained
	changePoints atomic.Int64 // CUSUM alerts fired
	estimates    atomic.Int64 // estimates served

	// accepted counts snapshots accepted for ingest (incremented by Ingest
	// before the 202 returns). An estimate enqueued afterwards waits for a
	// view that has observed at least this many snapshots — the
	// read-your-accepted-writes bound that keeps replica estimates
	// bit-identical to the old through-the-shard-queue ordering.
	accepted atomic.Int64
	// view is the tenant's latest published read-replica view; the shard
	// worker swaps in a fresh one per the publication policy
	// (Config.PublishEveryBatches / PublishMaxAge — after every applied
	// batch by default), the estimate pool reads it. Never nil once the
	// tenant is registered.
	view atomic.Pointer[viewBox]

	// pendingBatches and lastPublished drive the view-publication policy:
	// batches applied since the last publish, and when that publish
	// happened. Touched only by the tenant's shard worker (and by Register
	// before the tenant is visible), so plain fields suffice.
	pendingBatches int
	lastPublished  time.Time
}

// Name returns the tenant's registry key.
func (t *Tenant) Name() string { return t.name }

// Seen returns the total number of snapshots the tenant has observed.
func (t *Tenant) Seen() int64 { return t.seen.Load() }

// ChangePoints returns the number of CUSUM change-point alerts fired.
func (t *Tenant) ChangePoints() int64 { return t.changePoints.Load() }

// syncStats publishes the window gauges after a job; called only by the
// owning shard worker.
func (t *Tenant) syncStats() {
	t.seen.Store(int64(t.win.Seen()))
	t.occupancy.Store(int64(t.win.Len()))
}

// newTenant validates a TenantConfig and builds the tenant (plan compiled,
// window empty). The shard index is assigned by the daemon, which also
// passes its configured count-kernel worker fan-out and spill directory
// down to the window; a non-empty spillDir gives the tenant an out-of-core
// window whose segments live under its own escaped-name subdirectory.
func newTenant(cfg TenantConfig, countWorkers int, spillDir string, spillSegRows int) (*Tenant, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("serve: register: tenant name is empty")
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("serve: register tenant %q: window = %d, want > 0", cfg.Name, cfg.Window)
	}
	hasScenario := cfg.Scenario != ""
	hasTopology := len(cfg.Topology) > 0
	if hasScenario == hasTopology {
		return nil, fmt.Errorf("serve: register tenant %q: specify exactly one of scenario or topology", cfg.Name)
	}
	var top *tomography.Topology
	if hasScenario {
		scn, err := tomography.BuildScenario(cfg.Scenario, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("serve: register tenant %q: %w", cfg.Name, err)
		}
		top = scn.Topology
	} else {
		var err error
		top, err = decodeTopology(cfg.Topology)
		if err != nil {
			return nil, fmt.Errorf("serve: register tenant %q: %w", cfg.Name, err)
		}
	}
	estimator := cfg.Estimator
	if estimator == "" {
		estimator = "correlation"
	}
	wcfg := tomography.WindowConfig{
		Size:         cfg.Window,
		Estimator:    estimator,
		CountWorkers: countWorkers,
	}
	if spillDir != "" {
		// url.PathEscape keeps arbitrary tenant names from escaping the
		// spill root, except that it passes dots through — escape them too
		// so "." and ".." stay inside. Still collision-free: a literal
		// "%2E" in a name has its % escaped to %25 first.
		sub := strings.ReplaceAll(url.PathEscape(cfg.Name), ".", "%2E")
		wcfg.Spill = &tomography.SpillConfig{
			Dir:         filepath.Join(spillDir, sub),
			SegmentRows: spillSegRows,
			Reset:       true,
		}
	}
	win, err := tomography.NewWindow(top, wcfg)
	if err != nil {
		return nil, fmt.Errorf("serve: register tenant %q: %w", cfg.Name, err)
	}
	return &Tenant{
		name:      cfg.Name,
		scenario:  cfg.Scenario,
		estimator: estimator,
		window:    cfg.Window,
		numPaths:  top.NumPaths(),
		numLinks:  top.NumLinks(),
		win:       win,
	}, nil
}

// decodeTopology parses an inline topology document through the validating
// decoder (same path as cmd/tomo's stdin topology).
func decodeTopology(raw json.RawMessage) (*tomography.Topology, error) {
	return topology.Decode(bytes.NewReader(raw))
}

// TenantInfo is the admin API's view of one tenant (GET /v1/tenants).
type TenantInfo struct {
	Name         string `json:"name"`
	Scenario     string `json:"scenario,omitempty"`
	Estimator    string `json:"estimator"`
	Window       int    `json:"window"`
	NumPaths     int    `json:"num_paths"`
	NumLinks     int    `json:"num_links"`
	Shard        int    `json:"shard"`
	Seen         int64  `json:"snapshots_seen"`
	Occupancy    int64  `json:"window_occupancy"`
	ChangePoints int64  `json:"change_points"`
	Estimates    int64  `json:"estimates"`
}

// info snapshots the tenant's admin view.
func (t *Tenant) info() TenantInfo {
	return TenantInfo{
		Name:         t.name,
		Scenario:     t.scenario,
		Estimator:    t.estimator,
		Window:       t.window,
		NumPaths:     t.numPaths,
		NumLinks:     t.numLinks,
		Shard:        t.shard,
		Seen:         t.seen.Load(),
		Occupancy:    t.occupancy.Load(),
		ChangePoints: t.changePoints.Load(),
		Estimates:    t.estimates.Load(),
	}
}
