package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/measure"
	"repro/internal/scratch"
	"repro/internal/topology"
)

// Workspace holds every piece of transient state an evaluate phase needs —
// the equation right-hand sides, the materialized solver matrix, the linear
// algebra and LP scratch, and the theorem algorithm's Γ-enumeration state —
// so that steady-state inference (compile once, estimate on every new
// window) allocates nothing.
//
// Ownership rules: a compiled plan (Structure, LinearPlan, TheoremPlan) is
// shared and immutable; a Workspace is the opposite — single-goroutine and
// mutable. One goroutine may reuse one workspace across any number of calls
// and across different plans (buffers grow monotonically), but concurrent
// use of one workspace is a bug, detected and reported by panic. Results
// returned by the ...In variants alias workspace (and plan) storage: they
// are read-only and valid only until the next call on the same workspace.
// The allocating APIs (Evaluate, LinearPlan.Run, TheoremPlan.Run) remain
// the safe default — they borrow a pooled workspace internally and return
// detached copies, bit-identical to their historical output.
type Workspace struct {
	busy atomic.Int32

	la linalg.Workspace
	lp lp.Workspace

	// Evaluate scratch.
	ys      []float64
	sys     EquationSystem
	pathSet *bitset.Set // probe scratch for sources without the fast pair path

	// Solver scratch.
	mat linalg.Matrix
	y   []float64
	res Result

	// Theorem scratch.
	thm theoremWorkspace
}

// NewWorkspace returns an empty workspace. The zero value is also ready to
// use.
func NewWorkspace() *Workspace { return &Workspace{} }

// acquire flags the workspace busy, panicking if another goroutine already
// holds it — concurrent use would silently corrupt results, so it is a
// loudly reported programming error, caught deterministically even when the
// race detector is off.
func (ws *Workspace) acquire() {
	if !ws.busy.CompareAndSwap(0, 1) {
		panic("core: Workspace used concurrently by multiple goroutines; use one workspace per goroutine")
	}
}

func (ws *Workspace) release() { ws.busy.Store(0) }

// wsPool backs the allocating wrappers: they borrow a workspace, run the
// identical arithmetic, and detach the result.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// EvaluateIn is Evaluate with workspace-owned outputs: the returned system's
// equations alias the structure's candidate link sets and path lists and the
// workspace's RHS storage — read-only, valid until the next call on ws. On
// the rare data-dependent fallback (an unusable precollected observation)
// the returned system is freshly allocated by the fused BuildEquations,
// exactly like Evaluate.
func (s *Structure) EvaluateIn(ws *Workspace, src measure.Source) (*EquationSystem, error) {
	ws.acquire()
	defer ws.release()
	return s.evaluateIn(ws, src)
}

// evaluateIn is the non-guarded core of EvaluateIn, shared with RunIn.
func (s *Structure) evaluateIn(ws *Workspace, src measure.Source) (*EquationSystem, error) {
	if src.NumPaths() != s.top.NumPaths() {
		return nil, fmt.Errorf("core: source has %d paths, topology %d", src.NumPaths(), s.top.NumPaths())
	}
	fast, hasFast := src.(measure.FastPairSource)
	if bp, ok := src.(measure.BatchPairSource); ok && len(s.pairs) > 0 {
		// One cache-blocked pass over the path columns resolves every pair
		// equation's probability; the per-equation lookups below then hit the
		// source's cache.
		bp.PrimePairs(s.pairs)
	}
	ws.ys = scratch.Grow(ws.ys, len(s.accepted))
	for i := range s.accepted {
		c := &s.accepted[i]
		var prob float64
		switch {
		case hasFast && len(c.Paths) == 1:
			prob = fast.ProbPathGood(c.Paths[0])
		case hasFast && len(c.Paths) == 2:
			prob = fast.ProbPairGood(c.Paths[0], c.Paths[1])
		default:
			if ws.pathSet == nil {
				ws.pathSet = bitset.New(s.top.NumPaths())
			}
			ws.pathSet.Clear()
			for _, p := range c.Paths {
				ws.pathSet.Add(int(p))
			}
			prob = src.ProbPathsGood(ws.pathSet)
		}
		if prob <= s.opts.MinProb {
			// A precollected equation is unusable: replay the fused
			// selection, which re-decides every candidate with the data in
			// hand.
			return BuildEquations(s.top, src, s.opts)
		}
		ws.ys[i] = math.Log(prob)
	}

	sys := &ws.sys
	sys.NumLinks = s.top.NumLinks()
	if cap(sys.Equations) < len(s.accepted) {
		sys.Equations = make([]Equation, len(s.accepted))
	}
	sys.Equations = sys.Equations[:len(s.accepted)]
	for i := range s.accepted {
		c := &s.accepted[i]
		sys.Equations[i] = Equation{Links: c.Links, Y: ws.ys[i], Paths: c.Paths}
	}
	sys.SinglePathEqs = s.singleEqs
	sys.PairEqs = s.pairEqs
	sys.Rank = s.rank
	sys.Covered = s.covered
	sys.SkippedZeroProb = 0
	return sys, nil
}

// Clone returns a deep copy of the result — the way to retain a
// workspace-owned result (RunIn) beyond the workspace's next use.
func (r *Result) Clone() *Result {
	return &Result{
		CongestionProb: append([]float64(nil), r.CongestionProb...),
		LogGoodProb:    append([]float64(nil), r.LogGoodProb...),
		System:         cloneSystem(r.System),
		Solver:         r.Solver,
	}
}

// Clone returns a deep copy of the theorem result — the way to retain a
// workspace-owned result (TheoremPlan.RunIn) beyond the workspace's next
// use.
func (r *TheoremResult) Clone() *TheoremResult { return detachTheoremResult(r) }

// cloneSystem detaches a workspace-owned equation system: cloned link sets,
// copied path lists — the exact materialization Evaluate has always
// returned.
func cloneSystem(sys *EquationSystem) *EquationSystem {
	if sys == nil {
		return nil
	}
	out := &EquationSystem{
		NumLinks:        sys.NumLinks,
		Equations:       make([]Equation, len(sys.Equations)),
		SinglePathEqs:   sys.SinglePathEqs,
		PairEqs:         sys.PairEqs,
		Rank:            sys.Rank,
		SkippedZeroProb: sys.SkippedZeroProb,
	}
	if sys.Covered != nil {
		out.Covered = sys.Covered.Clone()
	}
	for i := range sys.Equations {
		eq := &sys.Equations[i]
		out.Equations[i] = Equation{
			Links: eq.Links.Clone(),
			Y:     eq.Y,
			Paths: append([]topology.PathID{}, eq.Paths...),
		}
	}
	return out
}

// RunIn is Run with workspace-owned outputs: identical arithmetic, zero
// steady-state allocations. The result (including its System) aliases
// workspace and plan storage — read-only, valid until the next call on ws.
func (p *LinearPlan) RunIn(ws *Workspace, src measure.Source) (*Result, error) {
	ws.acquire()
	defer ws.release()
	sys, err := p.structure.evaluateIn(ws, src)
	if err != nil {
		return nil, err
	}
	return solveSystemIn(ws, sys, p.opts)
}

// detachResult deep-copies a workspace-owned result so it survives the
// workspace's next use. A System produced by the fused fallback is already
// freshly allocated and is kept as-is.
func detachResult(ws *Workspace, res *Result) *Result {
	sys := res.System
	if sys == &ws.sys {
		sys = cloneSystem(sys)
	}
	return &Result{
		CongestionProb: append([]float64(nil), res.CongestionProb...),
		LogGoodProb:    append([]float64(nil), res.LogGoodProb...),
		System:         sys,
		Solver:         res.Solver,
	}
}

// solveSystemIn is solveSystem on workspace storage: the matrix is
// materialized into reused memory, the completion strategies run through the
// workspace's linalg/LP scratch, and the result buffers are recycled. opts
// must already be filled.
func solveSystemIn(ws *Workspace, sys *EquationSystem, opts Options) (*Result, error) {
	if len(sys.Equations) == 0 {
		return nil, fmt.Errorf("core: no usable equations (all admissible observations had zero good-probability)")
	}

	a, y := ws.matrix(sys)
	nl := sys.NumLinks
	var x []float64
	var err error
	var kind SolverKind

	switch {
	case opts.UseAllEquations:
		x, err = nil, linalg.ErrSingular
		if a.Rows >= nl && sys.Rank == nl {
			x, err = ws.la.LeastSquares(a, y)
		}
		kind = SolverLeastSquares
		if err != nil {
			x, err = ws.la.MinNormSolve(a, y)
			kind = SolverMinNorm
		}
	case sys.Rank == nl:
		// Full rank: the selected rows form an invertible square system.
		x, err = ws.la.SolveLU(a, y)
		kind = SolverSquare
		if err != nil {
			// Numerically borderline; fall back to min-norm which handles it.
			x, err = ws.la.MinNormSolve(a, y)
			kind = SolverMinNorm
		}
	default:
		// Underdetermined: L1-residual-minimal completion under x ≤ 0
		// (Section 4), with min-norm fallback for very large systems or LP
		// failure.
		if nl <= opts.MaxLPSize && !opts.ForceMinNorm {
			x, err = ws.lp.MinimizeL1ResidualNonPositive(a, y)
			kind = SolverL1
			if err != nil {
				x, err = ws.la.MinNormSolve(a, y)
				kind = SolverMinNorm
			}
		} else {
			x, err = ws.la.MinNormSolve(a, y)
			kind = SolverMinNorm
		}
	}
	if err != nil {
		return nil, fmt.Errorf("core: solving the equation system: %w", err)
	}

	res := &ws.res
	res.CongestionProb = scratch.Grow(res.CongestionProb, nl)
	res.LogGoodProb = scratch.Grow(res.LogGoodProb, nl)
	res.System = sys
	res.Solver = kind
	for k := 0; k < nl; k++ {
		xv := x[k]
		if xv > 0 {
			xv = 0 // log-probabilities cannot be positive
		}
		res.LogGoodProb[k] = xv
		p := 1 - math.Exp(xv)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		res.CongestionProb[k] = p
	}
	return res, nil
}

// matrix materializes sys as (A, y) into workspace storage — the reusable
// form of EquationSystem.Matrix.
func (ws *Workspace) matrix(sys *EquationSystem) (*linalg.Matrix, []float64) {
	ws.mat.Reshape(len(sys.Equations), sys.NumLinks)
	ws.mat.Zero()
	ws.y = scratch.Grow(ws.y, len(sys.Equations))
	for i := range sys.Equations {
		eq := &sys.Equations[i]
		row := ws.mat.Row(i)
		eq.Links.ForEach(func(k int) bool {
			row[k] = 1
			return true
		})
		ws.y[i] = eq.Y
	}
	return &ws.mat, ws.y
}
