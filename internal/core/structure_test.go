package core

import (
	"reflect"
	"testing"

	"repro/internal/bitset"
	"repro/internal/brite"
	"repro/internal/congestion"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/topology"
)

// briteFixture builds a randomized Brite topology with a correlated
// congestion scenario and an empirical source over a short simulation.
func briteFixture(t *testing.T, seed int64) (*topology.Topology, *measure.Empirical) {
	t.Helper()
	net, err := brite.Generate(brite.Config{ASes: 25, EdgesPerAS: 2, Paths: 80, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.Brite(scenario.BriteConfig{
		Net: net, FracCongested: 0.12, Level: scenario.HighCorrelation, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := netsim.Run(netsim.Config{
		Topology: s.Topology, Model: s.Model, Snapshots: 800, Seed: seed + 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s.Topology, mustEmpirical(t, rec)
}

// TestCompileEvaluateMatchesBuildEquations pins the compile/evaluate split
// bit-identical to the fused selection across randomized topologies and the
// structural option variants.
func TestCompileEvaluateMatchesBuildEquations(t *testing.T) {
	variants := []struct {
		name string
		opts BuildOptions
	}{
		{"default", BuildOptions{}},
		{"collect-all", BuildOptions{CollectAll: true}},
		{"pairs-off", BuildOptions{DisablePairs: true}},
		{"gf2", BuildOptions{GF2RankThreshold: 1}},
	}
	for _, seed := range []int64{3, 17, 91} {
		top, src := briteFixture(t, seed)
		identity := make([]int, top.NumLinks())
		for k := range identity {
			identity[k] = k
		}
		for _, v := range variants {
			fused, err := BuildEquations(top, src, v.opts)
			if err != nil {
				t.Fatal(err)
			}
			st, err := CompileStructure(top, v.opts)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 3; round++ {
				sys, err := st.Evaluate(src)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(fused, sys) {
					t.Fatalf("seed %d %s round %d: compiled evaluation differs from fused BuildEquations", seed, v.name, round)
				}
			}
		}
		// Identity partition (Independence structure).
		fused, err := BuildEquations(top, src, BuildOptions{SetOf: identity})
		if err != nil {
			t.Fatal(err)
		}
		st, err := CompileStructure(top, BuildOptions{SetOf: identity})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := st.Evaluate(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fused, sys) {
			t.Fatalf("seed %d identity: compiled evaluation differs from fused BuildEquations", seed)
		}
	}
}

// TestLinearPlanMatchesAlgorithms pins CompileLinear+Run bit-identical to
// the one-shot Correlation/Independence entry points.
func TestLinearPlanMatchesAlgorithms(t *testing.T) {
	top, src := briteFixture(t, 7)
	cases := []struct {
		name     string
		identity bool
		opts     Options
		oneShot  func() (*Result, error)
	}{
		{"correlation", false, Options{}, func() (*Result, error) { return Correlation(top, src, Options{}) }},
		{"correlation-pairs-off", false, Options{DisablePairs: true}, func() (*Result, error) { return Correlation(top, src, Options{DisablePairs: true}) }},
		{"independence", true, Options{}, func() (*Result, error) { return Independence(top, src, Options{}) }},
		{"independence-all-eq", true, Options{UseAllEquations: true}, func() (*Result, error) { return Independence(top, src, Options{UseAllEquations: true}) }},
	}
	for _, c := range cases {
		want, err := c.oneShot()
		if err != nil {
			t.Fatal(err)
		}
		lp, err := CompileLinear(top, c.identity, c.opts)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ {
			got, err := lp.Run(src)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s round %d: plan result differs from one-shot algorithm", c.name, round)
			}
		}
	}
}

// TestEvaluateFallbackOnZeroProb forces the data-dependent path — a
// precollected equation with zero measured probability — and checks the
// compiled evaluation still matches the fused selection exactly.
func TestEvaluateFallbackOnZeroProb(t *testing.T) {
	top := topology.Figure1A()
	model, err := congestion.NewTable(4, []congestion.GroupTable{
		{Links: []int{0, 1}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.7},
			{Links: bitset.FromIndices(0, 1), P: 0.3},
		}},
		{Links: []int{2}, States: []congestion.SubsetProb{
			{Links: bitset.FromIndices(2), P: 1}, // e3 always congested
		}},
		{Links: []int{3}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.9}, {Links: bitset.FromIndices(3), P: 0.1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := exactSource(t, top, model)
	fused, err := BuildEquations(top, src, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fused.SkippedZeroProb == 0 {
		t.Fatal("fixture must trigger zero-probability skips")
	}
	st, err := CompileStructure(top, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := st.Evaluate(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fused, sys) {
		t.Fatal("fallback evaluation differs from fused BuildEquations")
	}
}

// TestEvaluateSourceMismatch mirrors BuildEquations' path-count validation.
func TestEvaluateSourceMismatch(t *testing.T) {
	top, _ := briteFixture(t, 5)
	src := exactSource(t, topology.Figure1A(), fig1aTable(t)) // 3 paths vs 80
	st, err := CompileStructure(top, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Evaluate(src); err == nil {
		t.Fatal("mismatched source accepted")
	}
}
