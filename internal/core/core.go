package core
