// Package core implements the paper's contribution: tomography algorithms
// that identify per-link congestion probabilities from end-to-end path
// measurements in the presence of correlated links.
//
// Three algorithms are provided:
//
//   - Correlation — the practical algorithm of Section 4. It forms the
//     log-linear system y = A·x over x_k = log P(Xek = 0), using only paths
//     and pairs of paths that traverse at most one link per correlation set,
//     and solves it (exactly when full rank, by L1-norm minimization when
//     underdetermined).
//   - Independence — the baseline of Nguyen & Thiran (INFOCOM 2007) as used
//     in the paper's evaluation: the identical machinery with every link
//     treated as its own correlation set, so every path and pair qualifies.
//   - Theorem — the exact, exponential algorithm extracted from the proof of
//     Theorem 1 (Appendix A): compute congestion factors αA for every
//     correlation subset in path-coverage order, then recover all marginal
//     and joint congestion probabilities via Lemma 3.
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitset"
	"repro/internal/linalg"
	"repro/internal/measure"
	"repro/internal/topology"
)

// Equation is one row of the log-linear system: Sum over Links of
// x_k equals Y, where Y = log P(all paths involved are good).
type Equation struct {
	Links *bitset.Set // link set (union of the involved paths' links)
	Y     float64     // log of the measured all-good probability
	Paths []topology.PathID
}

// EquationSystem is the set of linearly independent equations selected by
// the Section-4 procedure.
type EquationSystem struct {
	NumLinks  int
	Equations []Equation
	// SinglePathEqs and PairEqs count the equations from single paths (N1)
	// and pairs of paths (N2).
	SinglePathEqs, PairEqs int
	// Rank is the rank of the system (== len(Equations)).
	Rank int
	// Covered marks the links that appear in at least one equation.
	Covered *bitset.Set
	// SkippedZeroProb counts admissible path (or pair) observations that had
	// to be dropped because their measured all-good probability was ≤
	// MinProb (log undefined / hopelessly noisy).
	SkippedZeroProb int
}

// BuildOptions tunes equation selection.
type BuildOptions struct {
	// SetOf overrides the correlation structure: SetOf[k] is the correlation
	// group of link k. Nil means the topology's own correlation sets. The
	// Independence algorithm passes the identity partition here.
	SetOf []int
	// MinProb is the smallest usable measured probability; observations at
	// or below it are skipped (default 1e-9).
	MinProb float64
	// MaxPairCandidates caps how many pair equations are examined (default
	// 200000); the paper's procedure stops as soon as |E| equations are
	// gathered anyway.
	MaxPairCandidates int
	// CollectAll keeps admissible equations even when they do not increase
	// the rank, up to MaxEquations rows — the overdetermined formulation used
	// by the least-squares ablation. Off in the paper-faithful algorithm.
	CollectAll bool
	// MaxEquations caps the system size when CollectAll is set (default
	// 3·|E|).
	MaxEquations int
	// GF2RankThreshold: above this many links, rank tracking switches from
	// floating-point Gram–Schmidt to GF(2) XOR elimination, which is
	// dramatically faster and sound (GF(2)-independent ⇒ ℚ-independent) at
	// the cost of occasionally under-collecting an equation. Default 600.
	GF2RankThreshold int
	// DisablePairs skips the pair-equation step (Eq. 10) entirely — the
	// "pairs off" ablation quantifying how much the two-path observations
	// contribute to identifiability.
	DisablePairs bool
	// PathFilter, when non-nil, restricts equation formation to paths for
	// which it returns true (e.g. a training split for indirect validation).
	PathFilter func(topology.PathID) bool
}

func (o *BuildOptions) fill(top *topology.Topology) {
	if o.SetOf == nil {
		o.SetOf = make([]int, top.NumLinks())
		for k := range o.SetOf {
			o.SetOf[k] = top.SetOf(topology.LinkID(k))
		}
	}
	if o.MinProb <= 0 {
		o.MinProb = 1e-9
	}
	if o.MaxPairCandidates <= 0 {
		o.MaxPairCandidates = 200000
	}
	if o.MaxEquations <= 0 {
		o.MaxEquations = 3 * top.NumLinks()
	}
	if o.GF2RankThreshold <= 0 {
		o.GF2RankThreshold = 600
	}
}

// rankTracker abstracts the two linear-independence trackers.
type rankTracker interface {
	wouldIncrease(links *bitset.Set) bool
	add(links *bitset.Set)
	rank() int
	full() bool
}

// floatTracker wraps linalg.RowBasis (exact over the reals).
type floatTracker struct {
	rb  *linalg.RowBasis
	row []float64
}

func newFloatTracker(dim int) *floatTracker {
	return &floatTracker{rb: linalg.NewRowBasis(dim, 0), row: make([]float64, dim)}
}

func (t *floatTracker) toRow(links *bitset.Set) []float64 {
	for i := range t.row {
		t.row[i] = 0
	}
	links.ForEach(func(k int) bool {
		t.row[k] = 1
		return true
	})
	return t.row
}

func (t *floatTracker) wouldIncrease(links *bitset.Set) bool {
	return t.rb.WouldIncreaseRank(t.toRow(links))
}
func (t *floatTracker) add(links *bitset.Set) { t.rb.Add(t.toRow(links)) }
func (t *floatTracker) rank() int             { return t.rb.Rank() }
func (t *floatTracker) full() bool            { return t.rb.Full() }

// gf2Tracker wraps linalg.GF2Basis (fast, may under-collect).
type gf2Tracker struct {
	b   *linalg.GF2Basis
	dim int
}

func (t *gf2Tracker) wouldIncrease(links *bitset.Set) bool { return t.b.WouldIncreaseRank(links) }
func (t *gf2Tracker) add(links *bitset.Set)                { t.b.Add(links) }
func (t *gf2Tracker) rank() int                            { return t.b.Rank() }
func (t *gf2Tracker) full() bool                           { return t.b.Rank() == t.dim }

// newRankTracker picks the rank tracker for an nl-link system per the
// configured GF2 threshold.
func newRankTracker(nl int, opts *BuildOptions) rankTracker {
	if nl > opts.GF2RankThreshold {
		return &gf2Tracker{b: linalg.NewGF2Basis(), dim: nl}
	}
	return newFloatTracker(nl)
}

// probeFor returns the probability lookup for an equation's paths, routing
// single-path and pair queries through the source's fast path when it has
// one (Empirical answers them from cached bit-column popcounts); only larger
// sets materialize a path bitset.
func probeFor(top *topology.Topology, src measure.Source) func(paths []topology.PathID) float64 {
	fast, hasFast := src.(measure.FastPairSource)
	return func(paths []topology.PathID) float64 {
		if hasFast {
			switch len(paths) {
			case 1:
				return fast.ProbPathGood(paths[0])
			case 2:
				return fast.ProbPairGood(paths[0], paths[1])
			}
		}
		pathSet := bitset.New(top.NumPaths())
		for _, p := range paths {
			pathSet.Add(int(p))
		}
		return src.ProbPathsGood(pathSet)
	}
}

// enumerateCandidates drives the Section-4 candidate stream shared by the
// fused BuildEquations and the structural compile phase: every admissible
// single-path link set first (Eq. 9), then every deduped admissible pair
// union (Eq. 10), in a deterministic order. visit returns false to stop the
// enumeration (the caller gathered enough equations). The pair step is only
// reached when the single-path step ran to completion, mirroring the fused
// control flow.
//
// Ownership: a single-path candidate's link set is the topology's own and
// must be cloned before retaining; a pair candidate's union is freshly
// allocated and may be retained.
func enumerateCandidates(top *topology.Topology, opts *BuildOptions, visit func(links *bitset.Set, pair bool, paths ...topology.PathID) bool) error {
	// admissible reports whether the link set touches every correlation
	// group at most once. The group-seen scratch is one slice reused across
	// all candidates (generation-stamped, so no clearing between calls)
	// instead of a per-call map — this check runs for every single-path and
	// pair candidate, so its allocations would dominate the enumeration.
	maxGroup := 0
	for _, g := range opts.SetOf {
		if g < 0 {
			return fmt.Errorf("core: negative correlation group %d in SetOf", g)
		}
		if g >= maxGroup {
			maxGroup = g + 1
		}
	}
	groupMark := make([]int, maxGroup)
	gen := 0
	admissible := func(links *bitset.Set) bool {
		gen++
		ok := true
		links.ForEach(func(k int) bool {
			g := opts.SetOf[k]
			if groupMark[g] == gen {
				ok = false
				return false
			}
			groupMark[g] = gen
			return true
		})
		return ok
	}

	// Step 1: single-path candidates (Eq. 9 in the paper).
	var admissiblePaths []topology.PathID
	for _, p := range top.Paths() {
		if opts.PathFilter != nil && !opts.PathFilter(p.ID) {
			continue
		}
		links := top.PathLinkSet(p.ID)
		if !admissible(links) {
			continue
		}
		admissiblePaths = append(admissiblePaths, p.ID)
		if !visit(links, false, p.ID) {
			return nil
		}
	}

	// Step 2: pair candidates (Eq. 10). Only pairs of admissible paths that
	// share at least one link can be independent of the single-path rows,
	// so candidates are enumerated per shared link.
	if opts.DisablePairs {
		return nil
	}
	isAdmissiblePath := make([]bool, top.NumPaths())
	for _, p := range admissiblePaths {
		isAdmissiblePath[p] = true
	}
	// Pair dedup: one lazily allocated partner bitset per admissible
	// path, replacing a per-run map whose boxed int64 keys were a top
	// allocation site. Memory is bounded by admissible paths that
	// actually see candidates × one word per 64 paths.
	paired := make([]*bitset.Set, top.NumPaths())
	candidates := 0
	for k := 0; k < top.NumLinks(); k++ {
		through := top.PathsThroughLink(topology.LinkID(k))
		for ai := 0; ai < len(through); ai++ {
			i := through[ai]
			if !isAdmissiblePath[i] {
				continue
			}
			for bi := ai + 1; bi < len(through); bi++ {
				j := through[bi]
				if !isAdmissiblePath[j] {
					continue
				}
				if paired[i] == nil {
					paired[i] = bitset.New(top.NumPaths())
				}
				if paired[i].Contains(int(j)) {
					continue
				}
				paired[i].Add(int(j))
				candidates++
				if candidates > opts.MaxPairCandidates {
					return nil
				}
				union := bitset.Union(top.PathLinkSet(i), top.PathLinkSet(j))
				if !admissible(union) {
					continue
				}
				if !visit(union, true, i, j) {
					return nil
				}
			}
		}
	}
	return nil
}

// BuildEquations runs the Section-4 selection: all admissible single-path
// equations first, then admissible pair equations, keeping only rows that
// increase the rank, until |E| equations are collected or candidates run out.
//
// This is the fused one-shot path: selection and probability lookup are
// interleaved, so equations dropped for a near-zero measured probability
// free their slot for later candidates. CompileStructure/Evaluate split the
// same procedure into a reusable structural phase and a cheap per-source
// fill (falling back to this function in the rare data-dependent case).
func BuildEquations(top *topology.Topology, src measure.Source, opts BuildOptions) (*EquationSystem, error) {
	if src.NumPaths() != top.NumPaths() {
		return nil, fmt.Errorf("core: source has %d paths, topology %d", src.NumPaths(), top.NumPaths())
	}
	opts.fill(top)
	if len(opts.SetOf) != top.NumLinks() {
		return nil, fmt.Errorf("core: SetOf has %d entries, want %d", len(opts.SetOf), top.NumLinks())
	}

	nl := top.NumLinks()
	sys := &EquationSystem{NumLinks: nl, Covered: bitset.New(nl)}
	basis := newRankTracker(nl, &opts)
	probPaths := probeFor(top, src)

	// done reports whether equation gathering should stop.
	done := func() bool {
		if opts.CollectAll {
			return len(sys.Equations) >= opts.MaxEquations
		}
		return basis.full()
	}

	addEq := func(links *bitset.Set, paths ...topology.PathID) bool {
		if !opts.CollectAll && !basis.wouldIncrease(links) {
			return false
		}
		prob := probPaths(paths)
		if prob <= opts.MinProb {
			sys.SkippedZeroProb++
			return false
		}
		basis.add(links)
		sys.Equations = append(sys.Equations, Equation{
			Links: links.Clone(),
			Y:     math.Log(prob),
			Paths: append([]topology.PathID{}, paths...),
		})
		sys.Covered.UnionWith(links)
		return true
	}

	err := enumerateCandidates(top, &opts, func(links *bitset.Set, pair bool, paths ...topology.PathID) bool {
		if addEq(links, paths...) {
			if pair {
				sys.PairEqs++
			} else {
				sys.SinglePathEqs++
			}
		}
		return !done()
	})
	if err != nil {
		return nil, err
	}

	sys.Rank = basis.rank()
	return sys, nil
}

// Matrix materializes the system as (A, y) for the solvers.
func (s *EquationSystem) Matrix() (*linalg.Matrix, []float64) {
	a := linalg.NewMatrix(len(s.Equations), s.NumLinks)
	y := make([]float64, len(s.Equations))
	for i, eq := range s.Equations {
		eq.Links.ForEach(func(k int) bool {
			a.Set(i, k, 1)
			return true
		})
		y[i] = eq.Y
	}
	return a, y
}

// SortPathIDs sorts a PathID slice in place (used by callers presenting
// deterministic equation listings).
func SortPathIDs(p []topology.PathID) {
	sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
}
