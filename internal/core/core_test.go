package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/congestion"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// mustEmpirical wraps a record, failing the test on an empty record.
func mustEmpirical(t *testing.T, rec *netsim.Record) *measure.Empirical {
	t.Helper()
	src, err := measure.NewEmpirical(rec)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// fig1aTable is the Figure-1(a) ground truth used across the core tests:
// correlation set {e1,e2} with a genuinely correlated joint (P(both) = 0.18
// >> 0.10·0.12), plus independent e3 and e4.
func fig1aTable(t *testing.T) congestion.Model {
	t.Helper()
	m, err := congestion.NewTable(4, []congestion.GroupTable{
		{
			Links: []int{0, 1},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: 0.60},
				{Links: bitset.FromIndices(0), P: 0.10},
				{Links: bitset.FromIndices(1), P: 0.12},
				{Links: bitset.FromIndices(0, 1), P: 0.18},
			},
		},
		{Links: []int{2}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.8}, {Links: bitset.FromIndices(2), P: 0.2},
		}},
		{Links: []int{3}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.9}, {Links: bitset.FromIndices(3), P: 0.1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// chainCorr builds the topology that separates the two practical algorithms:
// a path P1 that crosses BOTH links of a correlation set {a, b}.
//
//	links: a: n0→n1, b: n1→n2, c: s1→n1, d: n1→s3  (a,b correlated)
//	paths: P1 = (a,b), P2 = (c,b), P3 = (a,d)
//
// Coverages {a}:{P1,P3} {b}:{P1,P2} {a,b}:{P1,P2,P3} {c}:{P2} {d}:{P3} are
// pairwise distinct, so Assumption 4 holds and the theorem algorithm is
// exact; but the correlation algorithm must discard P1 (correlated links),
// while the independence baseline happily uses it — and errs.
func chainCorr(t *testing.T) (*topology.Topology, congestion.Model) {
	t.Helper()
	b := topology.NewBuilder()
	n0, n1, n2 := b.AddNode(), b.AddNode(), b.AddNode()
	s1, s3 := b.AddNode(), b.AddNode()
	la := b.AddLink(n0, n1, "a")
	lb := b.AddLink(n1, n2, "b")
	lc := b.AddLink(s1, n1, "c")
	ld := b.AddLink(n1, s3, "d")
	b.AddPath("P1", la, lb)
	b.AddPath("P2", lc, lb)
	b.AddPath("P3", la, ld)
	b.Correlate(la, lb)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := congestion.NewTable(4, []congestion.GroupTable{
		{
			Links: []int{0, 1},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: 0.70},
				{Links: bitset.FromIndices(0), P: 0.05},
				{Links: bitset.FromIndices(1), P: 0.05},
				{Links: bitset.FromIndices(0, 1), P: 0.20},
			},
		},
		{Links: []int{2}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.9}, {Links: bitset.FromIndices(2), P: 0.1},
		}},
		{Links: []int{3}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.85}, {Links: bitset.FromIndices(3), P: 0.15},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return top, m
}

func exactSource(t *testing.T, top *topology.Topology, m congestion.Model) *measure.Exact {
	t.Helper()
	src, err := measure.NewExact(top, m)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestBuildEquationsFigure1A(t *testing.T) {
	top := topology.Figure1A()
	src := exactSource(t, top, fig1aTable(t))
	sys, err := BuildEquations(top, src, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The Section-4 worked example: 3 single-path equations + 1 pair
	// equation (P2, P3), reaching full rank 4.
	if sys.SinglePathEqs != 3 || sys.PairEqs != 1 || sys.Rank != 4 {
		t.Fatalf("N1=%d N2=%d rank=%d, want 3/1/4", sys.SinglePathEqs, sys.PairEqs, sys.Rank)
	}
	// The pair equation must be over {e2, e3, e4} — never {e1, e2, ...}.
	pair := sys.Equations[3]
	if !pair.Links.Equal(bitset.FromIndices(1, 2, 3)) {
		t.Fatalf("pair equation links = %v, want {e2,e3,e4}", pair.Links)
	}
	if !sys.Covered.Equal(bitset.FromIndices(0, 1, 2, 3)) {
		t.Fatalf("covered = %v", sys.Covered)
	}
}

// Admissibility invariant: no equation may contain two links of one
// correlation set.
func TestEquationsAdmissibilityInvariant(t *testing.T) {
	tops := []*topology.Topology{topology.Figure1A(), gridTopology(t, 4, nil)}
	for _, top := range tops {
		p := make([]float64, top.NumLinks())
		for i := range p {
			p[i] = 0.1
		}
		model, _ := congestion.NewIndependent(p)
		src := exactSource(t, top, model)
		sys, err := BuildEquations(top, src, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, eq := range sys.Equations {
			if top.LinkSetHasCorrelatedLinks(eq.Links) {
				t.Fatalf("equation %v contains correlated links", eq.Links)
			}
		}
	}
}

func TestCorrelationExactOnFigure1A(t *testing.T) {
	top := topology.Figure1A()
	model := fig1aTable(t)
	res, err := Correlation(top, exactSource(t, top, model), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver != SolverSquare {
		t.Fatalf("solver = %s, want square (full rank)", res.Solver)
	}
	want := congestion.Marginals(model) // 0.28, 0.30, 0.2, 0.1
	for k, w := range want {
		if math.Abs(res.CongestionProb[k]-w) > 1e-9 {
			t.Fatalf("link %d: inferred %v, true %v", k, res.CongestionProb[k], w)
		}
	}
}

func TestIndependenceBiasedOnCorrelatedChain(t *testing.T) {
	top, model := chainCorr(t)
	src := exactSource(t, top, model)

	res, err := Independence(top, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := congestion.Marginals(model) // a:0.25 b:0.25 c:0.1 d:0.15

	// Worked out by hand (see test comment above): the independence
	// algorithm recovers a and d exactly but mis-infers b (≈0.0667) and, by
	// cascading, c (≈0.2768).
	if math.Abs(res.CongestionProb[0]-0.25) > 1e-9 {
		t.Fatalf("independence P(a) = %v, want 0.25", res.CongestionProb[0])
	}
	if math.Abs(res.CongestionProb[3]-0.15) > 1e-9 {
		t.Fatalf("independence P(d) = %v, want 0.15", res.CongestionProb[3])
	}
	wantB := 1 - 0.7/0.75
	if math.Abs(res.CongestionProb[1]-wantB) > 1e-9 {
		t.Fatalf("independence P(b) = %v, want %v", res.CongestionProb[1], wantB)
	}
	if math.Abs(res.CongestionProb[1]-truth[1]) < 0.1 {
		t.Fatal("independence unexpectedly accurate on the correlated link b")
	}
	wantC := 1 - 0.675/(0.7/0.75*0.9)*0.9/0.9 // log algebra collapsed below
	_ = wantC
	// c error must cascade: |inferred − 0.1| > 0.15.
	if math.Abs(res.CongestionProb[2]-truth[2]) < 0.15 {
		t.Fatalf("independence P(c) = %v; expected a cascading error vs truth %v",
			res.CongestionProb[2], truth[2])
	}
}

func TestCorrelationAbstainsOnCorrelatedChain(t *testing.T) {
	top, model := chainCorr(t)
	src := exactSource(t, top, model)
	res, err := Correlation(top, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys := res.System
	// P1 crosses two correlated links and must be discarded; no admissible
	// pair shares a link, so the system stays at rank 2 and the L1
	// completion runs.
	if sys.SinglePathEqs != 2 || sys.PairEqs != 0 || sys.Rank != 2 {
		t.Fatalf("N1=%d N2=%d rank=%d, want 2/0/2", sys.SinglePathEqs, sys.PairEqs, sys.Rank)
	}
	if res.Solver != SolverL1 {
		t.Fatalf("solver = %s, want l1", res.Solver)
	}
	// The solution must satisfy the (correct) constraints it kept:
	// x_b + x_c = log P(b,c good), x_a + x_d = log P(a,d good).
	xbc := res.LogGoodProb[1] + res.LogGoodProb[2]
	if want := math.Log(model.ProbAllGood(bitset.FromIndices(1, 2))); math.Abs(xbc-want) > 1e-6 {
		t.Fatalf("x_b+x_c = %v, want %v", xbc, want)
	}
	xad := res.LogGoodProb[0] + res.LogGoodProb[3]
	if want := math.Log(model.ProbAllGood(bitset.FromIndices(0, 3))); math.Abs(xad-want) > 1e-6 {
		t.Fatalf("x_a+x_d = %v, want %v", xad, want)
	}
}

func TestTheoremExactOnFigure1A(t *testing.T) {
	top := topology.Figure1A()
	model := fig1aTable(t)
	src := exactSource(t, top, model)
	res, err := Theorem(top, src, TheoremOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := congestion.Marginals(model)
	for k, w := range want {
		if math.Abs(res.CongestionProb[k]-w) > 1e-9 {
			t.Fatalf("link %d: theorem %v, true %v", k, res.CongestionProb[k], w)
		}
	}
	// Congestion factors from the table: αA = P(S=A)/P(S=∅).
	checks := map[string]float64{
		bitset.FromIndices(0).Key():    0.10 / 0.60,
		bitset.FromIndices(1).Key():    0.12 / 0.60,
		bitset.FromIndices(0, 1).Key(): 0.18 / 0.60,
		bitset.FromIndices(2).Key():    0.20 / 0.80,
		bitset.FromIndices(3).Key():    0.10 / 0.90,
	}
	for key, w := range checks {
		if got := res.Alpha[key]; math.Abs(got-w) > 1e-9 {
			t.Fatalf("α[%s] = %v, want %v", key, got, w)
		}
	}
	// Lemma 3 joint: P(Xe1=1, Xe2=1) = P(S¹={e1,e2}) = 0.18.
	if got := res.JointProb[bitset.FromIndices(0, 1).Key()]; math.Abs(got-0.18) > 1e-9 {
		t.Fatalf("joint P(e1,e2 congested) = %v, want 0.18", got)
	}
	// Computation order must be ascending in |ψ(A)|.
	prev := 0
	for _, s := range res.Subsets {
		c := top.Coverage(s).Len()
		if c < prev {
			t.Fatalf("subsets out of coverage order")
		}
		prev = c
	}
}

// The theorem algorithm identifies even the links the practical algorithm
// cannot pin down on chainCorr — it is exact whenever Assumption 4 holds.
func TestTheoremExactOnCorrelatedChain(t *testing.T) {
	top, model := chainCorr(t)
	res, err := Theorem(top, exactSource(t, top, model), TheoremOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := congestion.Marginals(model)
	for k, w := range want {
		if math.Abs(res.CongestionProb[k]-w) > 1e-9 {
			t.Fatalf("link %d: theorem %v, true %v", k, res.CongestionProb[k], w)
		}
	}
}

func TestTheoremRejectsAssumption4Violation(t *testing.T) {
	top := topology.Figure1B()
	p := []float64{0.1, 0.1, 0.1}
	model, _ := congestion.NewIndependent(p)
	src := exactSource(t, top, model)
	if _, err := Theorem(top, src, TheoremOptions{}); err == nil {
		t.Fatal("theorem accepted a topology violating Assumption 4")
	}
}

func TestTheoremRejectsHugeSets(t *testing.T) {
	top, model := chainCorr(t)
	src := exactSource(t, top, model)
	if _, err := Theorem(top, src, TheoremOptions{MaxSubsetsPerSet: 2}); err == nil {
		t.Fatal("theorem accepted a set above the enumeration cap")
	}
}

func TestTheoremOnEmpiricalMeasurements(t *testing.T) {
	if testing.Short() {
		t.Skip("slow convergence test; run without -short")
	}
	top := topology.Figure1A()
	model := fig1aTable(t)
	rec, err := netsim.Run(netsim.Config{
		Topology: top, Model: model, Snapshots: 300000, Seed: 21, Mode: netsim.StateLevel,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Theorem(top, mustEmpirical(t, rec), TheoremOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := congestion.Marginals(model)
	for k, w := range want {
		if math.Abs(res.CongestionProb[k]-w) > 0.01 {
			t.Fatalf("link %d: theorem-from-measurements %v, true %v", k, res.CongestionProb[k], w)
		}
	}
}

func TestCorrelationOnEmpiricalMeasurements(t *testing.T) {
	if testing.Short() {
		t.Skip("slow convergence test; run without -short")
	}
	top := topology.Figure1A()
	model := fig1aTable(t)
	rec, err := netsim.Run(netsim.Config{
		Topology: top, Model: model, Snapshots: 200000, Seed: 22, Mode: netsim.StateLevel,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Correlation(top, mustEmpirical(t, rec), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := congestion.Marginals(model)
	for k, w := range want {
		if math.Abs(res.CongestionProb[k]-w) > 0.01 {
			t.Fatalf("link %d: inferred %v, true %v", k, res.CongestionProb[k], w)
		}
	}
}

// gridTopology: K sources with access links aᵢ → hub → K destinations with
// egress links bⱼ; paths Pᵢⱼ = (aᵢ, bⱼ) for all i, j. correlate lists groups
// of a-link indices (0-based source index) to correlate.
func gridTopology(t *testing.T, k int, correlate [][]int) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder()
	hub := b.AddNode()
	var aLinks, bLinks []topology.LinkID
	for i := 0; i < k; i++ {
		s := b.AddNode()
		aLinks = append(aLinks, b.AddLink(s, hub, ""))
	}
	for j := 0; j < k; j++ {
		d := b.AddNode()
		bLinks = append(bLinks, b.AddLink(hub, d, ""))
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			b.AddPath("", aLinks[i], bLinks[j])
		}
	}
	for _, g := range correlate {
		links := make([]topology.LinkID, len(g))
		for x, i := range g {
			links[x] = aLinks[i]
		}
		b.Correlate(links...)
	}
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// Property: on grid topologies with one correlated access pair and random
// joint tables, the correlation algorithm reaches full rank (singles give
// 2K−1, one pair equation closes the gap) and recovers every marginal
// exactly from exact measurements.
func TestCorrelationExactOnRandomGrids(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(3)
		top := gridTopology(t, k, [][]int{{0, 1}})

		// Random joint on {a0, a1}; random independent probabilities
		// elsewhere.
		j00 := 0.4 + 0.3*rng.Float64()
		j10 := 0.2 * rng.Float64()
		j01 := 0.2 * rng.Float64()
		j11 := 1 - j00 - j10 - j01
		groups := []congestion.GroupTable{{
			Links: []int{0, 1},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: j00},
				{Links: bitset.FromIndices(0), P: j10},
				{Links: bitset.FromIndices(1), P: j01},
				{Links: bitset.FromIndices(0, 1), P: j11},
			},
		}}
		for l := 2; l < top.NumLinks(); l++ {
			p := 0.3 * rng.Float64()
			groups = append(groups, congestion.GroupTable{
				Links: []int{l},
				States: []congestion.SubsetProb{
					{Links: bitset.New(0), P: 1 - p},
					{Links: bitset.FromIndices(l), P: p},
				},
			})
		}
		model, err := congestion.NewTable(top.NumLinks(), groups)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Correlation(top, exactSource(t, top, model), Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.System.Rank != top.NumLinks() {
			t.Fatalf("trial %d: rank %d < %d links", trial, res.System.Rank, top.NumLinks())
		}
		want := congestion.Marginals(model)
		for l, w := range want {
			if math.Abs(res.CongestionProb[l]-w) > 1e-8 {
				t.Fatalf("trial %d link %d: inferred %v, true %v", trial, l, res.CongestionProb[l], w)
			}
		}
	}
}

// Property: theorem algorithm is exact on the same random grids.
func TestTheoremExactOnRandomGrids(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 10; trial++ {
		k := 2 + rng.Intn(2)
		top := gridTopology(t, k, [][]int{{0, 1}})
		j00 := 0.5 + 0.2*rng.Float64()
		j10 := 0.15 * rng.Float64()
		j01 := 0.15 * rng.Float64()
		j11 := 1 - j00 - j10 - j01
		groups := []congestion.GroupTable{{
			Links: []int{0, 1},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: j00},
				{Links: bitset.FromIndices(0), P: j10},
				{Links: bitset.FromIndices(1), P: j01},
				{Links: bitset.FromIndices(0, 1), P: j11},
			},
		}}
		for l := 2; l < top.NumLinks(); l++ {
			p := 0.25 * rng.Float64()
			groups = append(groups, congestion.GroupTable{
				Links: []int{l},
				States: []congestion.SubsetProb{
					{Links: bitset.New(0), P: 1 - p},
					{Links: bitset.FromIndices(l), P: p},
				},
			})
		}
		model, err := congestion.NewTable(top.NumLinks(), groups)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Theorem(top, exactSource(t, top, model), TheoremOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := congestion.Marginals(model)
		for l, w := range want {
			if math.Abs(res.CongestionProb[l]-w) > 1e-8 {
				t.Fatalf("trial %d link %d: theorem %v, true %v", trial, l, res.CongestionProb[l], w)
			}
		}
	}
}

func TestUseAllEquationsLeastSquares(t *testing.T) {
	if testing.Short() {
		t.Skip("slow convergence test; run without -short")
	}
	top := topology.Figure1A()
	model := fig1aTable(t)
	rec, err := netsim.Run(netsim.Config{
		Topology: top, Model: model, Snapshots: 100000, Seed: 23, Mode: netsim.StateLevel,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Correlation(top, mustEmpirical(t, rec), Options{UseAllEquations: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver != SolverLeastSquares {
		t.Fatalf("solver = %s, want least-squares", res.Solver)
	}
	want := congestion.Marginals(model)
	for k, w := range want {
		if math.Abs(res.CongestionProb[k]-w) > 0.02 {
			t.Fatalf("link %d: inferred %v, true %v", k, res.CongestionProb[k], w)
		}
	}
}

func TestBuildEquationsSourceMismatch(t *testing.T) {
	top := topology.Figure1A() // 3 paths
	other := topology.Figure1B()
	model, _ := congestion.NewIndependent([]float64{0.1, 0.1, 0.1})
	src := exactSource(t, other, model) // 2 paths
	if _, err := BuildEquations(top, src, BuildOptions{}); err == nil {
		t.Fatal("path-count mismatch accepted")
	}
}

func TestMinProbSkipsDeadPaths(t *testing.T) {
	// A link that is always congested makes its paths' good-probability 0;
	// those observations must be skipped, not produce log(0).
	top := topology.Figure1A()
	model, err := congestion.NewTable(4, []congestion.GroupTable{
		{Links: []int{0, 1}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.7},
			{Links: bitset.FromIndices(0, 1), P: 0.3},
		}},
		{Links: []int{2}, States: []congestion.SubsetProb{
			{Links: bitset.FromIndices(2), P: 1}, // e3 always congested
		}},
		{Links: []int{3}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.9}, {Links: bitset.FromIndices(3), P: 0.1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := exactSource(t, top, model)
	sys, err := BuildEquations(top, src, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.SkippedZeroProb == 0 {
		t.Fatal("expected zero-probability observations to be skipped")
	}
	for _, eq := range sys.Equations {
		if math.IsInf(eq.Y, 0) || math.IsNaN(eq.Y) {
			t.Fatalf("equation with non-finite Y: %v", eq.Y)
		}
	}
}
