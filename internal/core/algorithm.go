package core

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/measure"
	"repro/internal/topology"
)

// SolverKind identifies how the final linear system was solved.
type SolverKind string

const (
	// SolverSquare: the system reached full rank and was solved exactly.
	SolverSquare SolverKind = "square"
	// SolverL1: the system was underdetermined and completed by L1-norm
	// minimization (basis pursuit with x ≤ 0), per Section 4.
	SolverL1 SolverKind = "l1"
	// SolverMinNorm: L1 LP failed or was too large; minimum-L2-norm
	// completion was used instead.
	SolverMinNorm SolverKind = "min-norm"
	// SolverLeastSquares: overdetermined mode (UseAllEquations ablation).
	SolverLeastSquares SolverKind = "least-squares"
)

// Result is the output of a tomography run.
type Result struct {
	// CongestionProb[k] is the inferred P(Xek = 1) for every link.
	CongestionProb []float64
	// LogGoodProb[k] is the underlying solution x_k = log P(Xek = 0).
	LogGoodProb []float64
	// System is the equation system that produced the result.
	System *EquationSystem
	// Solver reports which completion strategy ran.
	Solver SolverKind
}

// Options tunes the practical algorithms.
type Options struct {
	// MinProb and MaxPairCandidates are forwarded to BuildEquations.
	MinProb           float64
	MaxPairCandidates int
	// MaxLPSize bounds the number of unknowns for the exact L1 simplex; above
	// it the min-norm completion is used (default 600).
	MaxLPSize int
	// UseAllEquations switches to an overdetermined formulation: gather up to
	// 3·|E| admissible equations (not just |E| independent ones) and solve by
	// least squares. Off by default — the paper's algorithm forms "just
	// enough" equations. Exposed for the solver ablation benchmark.
	UseAllEquations bool
	// DisablePairs skips pair equations (the "pairs off" ablation).
	DisablePairs bool
	// ForceMinNorm skips the L1 LP for underdetermined systems and uses the
	// minimum-L2-norm completion directly (solver ablation).
	ForceMinNorm bool
	// PathFilter restricts equation formation to selected paths (see
	// BuildOptions.PathFilter).
	PathFilter func(topology.PathID) bool
}

func (o *Options) fill() {
	if o.MaxLPSize <= 0 {
		o.MaxLPSize = 600
	}
	if o.MinProb <= 0 {
		o.MinProb = 1e-9
	}
	if o.MaxPairCandidates <= 0 {
		o.MaxPairCandidates = 200000
	}
}

// Normalized returns the options with every unset field replaced by its
// default — the canonical form, so zero values and explicit defaults
// compare equal (plan memoization relies on this).
func (o Options) Normalized() Options {
	o.fill()
	return o
}

// Correlation runs the paper's Section-4 algorithm with the topology's own
// correlation sets.
func Correlation(top *topology.Topology, src measure.Source, opts Options) (*Result, error) {
	return runLinear(top, src, false, opts)
}

// Independence runs the Nguyen–Thiran baseline: identical machinery with
// every link in its own correlation set, so all paths and pairs qualify and
// products over any link set are (incorrectly, when links are correlated)
// assumed to factorize.
func Independence(top *topology.Topology, src measure.Source, opts Options) (*Result, error) {
	return runLinear(top, src, true, opts)
}

func runLinear(top *topology.Topology, src measure.Source, identity bool, opts Options) (*Result, error) {
	opts.fill()
	sys, err := BuildEquations(top, src, buildOptions(top, identity, opts))
	if err != nil {
		return nil, err
	}
	return solveSystem(sys, opts)
}

// solveSystem solves a built equation system with the configured completion
// strategy — the shared back half of the practical algorithms, used by both
// the fused one-shot path (runLinear) and the compiled-plan path
// (LinearPlan.Run). opts must already be filled.
func solveSystem(sys *EquationSystem, opts Options) (*Result, error) {
	if len(sys.Equations) == 0 {
		return nil, fmt.Errorf("core: no usable equations (all admissible observations had zero good-probability)")
	}

	a, y := sys.Matrix()
	nl := sys.NumLinks
	var x []float64
	var err error
	var kind SolverKind

	switch {
	case opts.UseAllEquations:
		x, err = nil, linalg.ErrSingular
		if a.Rows >= nl && sys.Rank == nl {
			x, err = linalg.LeastSquares(a, y)
		}
		kind = SolverLeastSquares
		if err != nil {
			x, err = linalg.MinNormSolve(a, y)
			kind = SolverMinNorm
		}
	case sys.Rank == nl:
		// Full rank: the selected rows form an invertible square system.
		x, err = linalg.SolveLU(a, y)
		kind = SolverSquare
		if err != nil {
			// Numerically borderline; fall back to min-norm which handles it.
			x, err = linalg.MinNormSolve(a, y)
			kind = SolverMinNorm
		}
	default:
		// Underdetermined: L1-residual-minimal completion under x ≤ 0
		// (Section 4), with min-norm fallback for very large systems or LP
		// failure.
		if nl <= opts.MaxLPSize && !opts.ForceMinNorm {
			x, err = lp.MinimizeL1ResidualNonPositive(a, y)
			kind = SolverL1
			if err != nil {
				x, err = linalg.MinNormSolve(a, y)
				kind = SolverMinNorm
			}
		} else {
			x, err = linalg.MinNormSolve(a, y)
			kind = SolverMinNorm
		}
	}
	if err != nil {
		return nil, fmt.Errorf("core: solving the equation system: %w", err)
	}

	res := &Result{
		CongestionProb: make([]float64, nl),
		LogGoodProb:    make([]float64, nl),
		System:         sys,
		Solver:         kind,
	}
	for k := 0; k < nl; k++ {
		xv := x[k]
		if xv > 0 {
			xv = 0 // log-probabilities cannot be positive
		}
		res.LogGoodProb[k] = xv
		p := 1 - math.Exp(xv)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		res.CongestionProb[k] = p
	}
	return res, nil
}
