package core

import (
	"math"
	"testing"

	"repro/internal/congestion"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func TestDisablePairsLimitsRank(t *testing.T) {
	top := topology.Figure1A()
	model := fig1aTable(t)
	src := exactSource(t, top, model)

	full, err := BuildEquations(top, src, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noPairs, err := BuildEquations(top, src, BuildOptions{DisablePairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if noPairs.PairEqs != 0 {
		t.Fatalf("pairs formed despite DisablePairs: %d", noPairs.PairEqs)
	}
	if noPairs.Rank >= full.Rank {
		t.Fatalf("rank without pairs (%d) not below full rank (%d)", noPairs.Rank, full.Rank)
	}
	// Figure 1(a): singles give rank 3, the pair equation closes rank 4.
	if noPairs.Rank != 3 || full.Rank != 4 {
		t.Fatalf("ranks = %d/%d, want 3/4", noPairs.Rank, full.Rank)
	}
}

func TestForceMinNormSolver(t *testing.T) {
	top, model := chainCorr(t)
	src := exactSource(t, top, model)
	res, err := Correlation(top, src, Options{ForceMinNorm: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver != SolverMinNorm {
		t.Fatalf("solver = %s, want min-norm", res.Solver)
	}
	// The constraints the system kept must still be satisfied (path P2 =
	// links b, c).
	xbc := res.LogGoodProb[1] + res.LogGoodProb[2]
	want := math.Log(model.ProbAllGood(top.PathLinkSet(1)))
	if math.Abs(xbc-want) > 1e-5 {
		t.Fatalf("x_b+x_c = %v, want %v", xbc, want)
	}
}

func TestPathFilterExcludesPaths(t *testing.T) {
	top := topology.Figure1A()
	model := fig1aTable(t)
	src := exactSource(t, top, model)

	// Exclude P1: no equation may reference it, and link e1 (only on P1)
	// must be uncovered.
	sys, err := BuildEquations(top, src, BuildOptions{
		PathFilter: func(id topology.PathID) bool { return id != 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eq := range sys.Equations {
		for _, pid := range eq.Paths {
			if pid == 0 {
				t.Fatal("equation references the filtered path")
			}
		}
	}
	if sys.Covered.Contains(0) {
		t.Fatal("link e1 covered despite its only path being filtered")
	}
}

func TestGF2ThresholdPath(t *testing.T) {
	// Forcing the GF(2) tracker (threshold 1) must produce the same
	// system rank on Figure 1(a) as the float tracker.
	top := topology.Figure1A()
	model := fig1aTable(t)
	src := exactSource(t, top, model)
	gf2, err := BuildEquations(top, src, BuildOptions{GF2RankThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	flt, err := BuildEquations(top, src, BuildOptions{GF2RankThreshold: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if gf2.Rank != flt.Rank {
		t.Fatalf("GF2 rank %d != float rank %d", gf2.Rank, flt.Rank)
	}
	// And inference through the GF(2) path stays exact.
	res, err := runLinear(top, src, false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := congestion.Marginals(model)
	for k, w := range want {
		if math.Abs(res.CongestionProb[k]-w) > 1e-9 {
			t.Fatalf("link %d: %v vs %v", k, res.CongestionProb[k], w)
		}
	}
}

func TestCorrelationOnPacketLevelMeasurements(t *testing.T) {
	if testing.Short() {
		t.Skip("slow convergence test; run without -short")
	}
	// End-to-end through the full packet-level data path. Probe count
	// matters: with few probes the binomial noise of a good path's measured
	// loss fraction straddles the threshold tp and inflates the estimates
	// (quantified in BenchmarkAblationPacketLevel); 2000 probes/path push
	// that misclassification probability to negligible levels.
	top := topology.Figure1A()
	model := fig1aTable(t)
	rec, err := netsim.Run(netsim.Config{
		Topology: top, Model: model, Snapshots: 20000, Seed: 41,
		Mode: netsim.PacketLevel, PacketsPerPath: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Correlation(top, mustEmpirical(t, rec), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := congestion.Marginals(model)
	for k, w := range want {
		if math.Abs(res.CongestionProb[k]-w) > 0.05 {
			t.Fatalf("link %d: packet-level inference %v, truth %v", k, res.CongestionProb[k], w)
		}
	}
}
