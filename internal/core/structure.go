package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/measure"
	"repro/internal/topology"
)

// Candidate is one equation selected by the structural compile phase: the
// link set of a single admissible path or of an admissible pair union, plus
// the paths whose joint good-probability forms the equation's right-hand
// side.
type Candidate struct {
	// Links is the equation's link set (row of the A matrix).
	Links *bitset.Set
	// Paths are the involved paths (one for a single-path equation, two for
	// a pair equation).
	Paths []topology.PathID
	// Pair reports whether this is a pair equation (Eq. 10 vs Eq. 9).
	Pair bool
}

// Structure is the compiled structural phase of the Section-4 equation
// selection for one (topology, BuildOptions) pair: the admissible candidates
// that the selection accepts when every accepted observation is usable, in
// acceptance order, together with the resulting rank and link coverage.
//
// Everything in a Structure depends only on the topology and the structural
// options — not on measured data — so one Structure can be evaluated against
// any number of measurement sources (new records, streaming appends, batch
// trials) with Evaluate. A Structure is immutable after CompileStructure
// returns and therefore safe for concurrent use by multiple goroutines.
type Structure struct {
	top  *topology.Topology
	opts BuildOptions

	accepted  []Candidate
	singleEqs int
	pairEqs   int
	rank      int
	covered   *bitset.Set
	// pairs lists every accepted pair equation's path pair, in acceptance
	// order — the precomputed query set of the batched pair-count kernel
	// (measure.BatchPairSource.PrimePairs).
	pairs []measure.Pair
}

// CompileStructure runs the source-independent part of BuildEquations: it
// enumerates the admissible single-path and pair candidates in the fused
// selection's order and records the ones that rank tracking accepts,
// assuming every accepted observation has a usable (> MinProb) measured
// probability. Evaluate detects the rare violation of that assumption and
// transparently replays the fused selection, so Compile+Evaluate is always
// bit-identical to BuildEquations.
func CompileStructure(top *topology.Topology, opts BuildOptions) (*Structure, error) {
	opts.fill(top)
	if len(opts.SetOf) != top.NumLinks() {
		return nil, fmt.Errorf("core: SetOf has %d entries, want %d", len(opts.SetOf), top.NumLinks())
	}

	nl := top.NumLinks()
	s := &Structure{top: top, opts: opts, covered: bitset.New(nl)}
	basis := newRankTracker(nl, &opts)

	done := func() bool {
		if opts.CollectAll {
			return len(s.accepted) >= opts.MaxEquations
		}
		return basis.full()
	}

	err := enumerateCandidates(top, &opts, func(links *bitset.Set, pair bool, paths ...topology.PathID) bool {
		if opts.CollectAll || basis.wouldIncrease(links) {
			basis.add(links)
			s.accepted = append(s.accepted, Candidate{
				Links: links.Clone(),
				Paths: append([]topology.PathID{}, paths...),
				Pair:  pair,
			})
			if pair {
				s.pairEqs++
				s.pairs = append(s.pairs, measure.Pair{A: int(paths[0]), B: int(paths[1])})
			} else {
				s.singleEqs++
			}
			s.covered.UnionWith(links)
		}
		return !done()
	})
	if err != nil {
		return nil, err
	}

	s.rank = basis.rank()
	return s, nil
}

// Topology returns the topology the structure was compiled for.
func (s *Structure) Topology() *topology.Topology { return s.top }

// NumEquations returns the number of precollected equations.
func (s *Structure) NumEquations() int { return len(s.accepted) }

// Rank returns the precomputed rank of the selected system.
func (s *Structure) Rank() int { return s.rank }

// Candidates returns the accepted candidates in selection order. The slice
// and its link sets are shared with the structure and must not be mutated.
func (s *Structure) Candidates() []Candidate { return s.accepted }

// Evaluate fills the compiled structure's right-hand side from a
// measurement source: one probability lookup per precollected equation, no
// candidate enumeration, no admissibility checks, no rank tracking. The
// result is bit-identical to BuildEquations(top, src, opts) on the same
// inputs.
//
// If any precollected observation turns out to be unusable (measured
// probability ≤ MinProb), the selection becomes source-dependent — a dropped
// row frees its slot for a later candidate — so Evaluate falls back to the
// fused BuildEquations, preserving bit-identical output at one-shot cost.
//
// Evaluate allocates its outputs and is safe to call concurrently on a
// shared Structure. It is a thin wrapper over EvaluateIn with a pooled
// workspace: the probability fill runs on recycled scratch (including the
// batched pair-count kernel when the source supports it) and the resulting
// system is detached into fresh storage, bit-identical to the historical
// allocating implementation.
func (s *Structure) Evaluate(src measure.Source) (*EquationSystem, error) {
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	sys, err := s.EvaluateIn(ws, src)
	if err != nil {
		return nil, err
	}
	if sys != &ws.sys {
		// Data-dependent fallback: BuildEquations already allocated it.
		return sys, nil
	}
	return cloneSystem(sys), nil
}

// LinearPlan couples a compiled equation structure with the solver options
// of one of the practical algorithms: the reusable form of
// Correlation/Independence.
type LinearPlan struct {
	structure *Structure
	opts      Options
}

// CompileLinear compiles the structural phase of the practical algorithms
// for a topology: the paper's correlation-aware selection when identity is
// false (Correlation), the Nguyen–Thiran identity partition when true
// (Independence). The returned plan is immutable and safe for concurrent
// Run calls.
func CompileLinear(top *topology.Topology, identity bool, opts Options) (*LinearPlan, error) {
	opts.fill()
	structure, err := CompileStructure(top, buildOptions(top, identity, opts))
	if err != nil {
		return nil, err
	}
	return &LinearPlan{structure: structure, opts: opts}, nil
}

// buildOptions maps algorithm Options onto the equation-selection options,
// with the identity partition substituted for the topology's correlation
// sets when requested.
func buildOptions(top *topology.Topology, identity bool, opts Options) BuildOptions {
	var setOf []int
	if identity {
		setOf = make([]int, top.NumLinks())
		for k := range setOf {
			setOf[k] = k
		}
	}
	return BuildOptions{
		SetOf:             setOf,
		MinProb:           opts.MinProb,
		MaxPairCandidates: opts.MaxPairCandidates,
		CollectAll:        opts.UseAllEquations,
		DisablePairs:      opts.DisablePairs,
		PathFilter:        opts.PathFilter,
	}
}

// Structure returns the plan's compiled equation structure.
func (p *LinearPlan) Structure() *Structure { return p.structure }

// Run evaluates the compiled plan against a measurement source and solves
// the system. The output is bit-identical to Correlation (or Independence)
// called with the plan's topology and options. It wraps RunIn with a pooled
// workspace and detaches the result.
func (p *LinearPlan) Run(src measure.Source) (*Result, error) {
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	res, err := p.RunIn(ws, src)
	if err != nil {
		return nil, err
	}
	return detachResult(ws, res), nil
}
