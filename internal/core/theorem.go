package core

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/measure"
	"repro/internal/topology"
)

// TheoremResult is the output of the exact Appendix-A algorithm.
type TheoremResult struct {
	// CongestionProb[k] is the recovered P(Xek = 1).
	CongestionProb []float64
	// Alpha maps each correlation subset (by its bitset key) to its
	// congestion factor αA = P(Sᵖ = A)/P(Sᵖ = ∅).
	Alpha map[string]float64
	// Subsets lists the correlation subsets in the computation order
	// (ascending |ψ(A)|), for inspection and tests.
	Subsets []*bitset.Set
	// ProbSetEmpty[p] is the recovered P(Sᵖ = ∅) for each correlation set.
	ProbSetEmpty []float64
	// JointProb maps a correlation subset key to the recovered probability
	// that exactly the links of that subset are the congested links of its
	// correlation set, P(Sᵖ = A) (Lemma 3).
	JointProb map[string]float64
}

// TheoremOptions tunes the exact algorithm.
type TheoremOptions struct {
	// MaxSubsetsPerSet caps 2^|Cp| enumeration per correlation set
	// (default 4096, i.e. sets of up to 12 links).
	MaxSubsetsPerSet int
}

// corrSubset is one correlation subset A ∈ C̃ with its path coverage.
type corrSubset struct {
	set      int
	links    *bitset.Set
	coverage *bitset.Set
	key      string
}

// Theorem runs the constructive algorithm extracted from the proof of
// Theorem 1. It requires a PatternSource (exact or empirical estimates of
// P(ψ(S) = Q)) and a topology satisfying Assumption 4; it returns the
// congestion factors and per-link congestion probabilities.
//
// The computation follows the Appendix step by step:
//
//  1. enumerate the correlation subsets C̃ and order them by |ψ(A)|;
//  2. for each A in order, enumerate the network states Sn with
//     ψ(Sn) = ψ(A), split them by whether Sqn = A, and solve Eq. 18
//     αA = (P(ψ(S)=ψ(A))/P(ψ(S)=∅) − ΓĀ)/ΓA, where ΓA and ΓĀ only involve
//     congestion factors already computed (Lemma 1);
//  3. recover P(Sᵖ = ∅) = 1/(1 + Σ αA) and P(Sᵖ = A) = αA·P(Sᵖ = ∅), then
//     P(Xek = 1) = Σ_{A ∋ ek} P(Sᵖ = A) (Lemma 3).
func Theorem(top *topology.Topology, src measure.PatternSource, opts TheoremOptions) (*TheoremResult, error) {
	if opts.MaxSubsetsPerSet <= 0 {
		opts.MaxSubsetsPerSet = 4096
	}

	var subsets []*corrSubset
	bySet := make([][]*corrSubset, top.NumSets())
	for p := 0; p < top.NumSets(); p++ {
		elems := top.CorrelationSet(p).Indices()
		if len(elems) > 30 || 1<<uint(min(len(elems), 30)) > opts.MaxSubsetsPerSet {
			return nil, fmt.Errorf("core: correlation set %d has %d links (2^%d subsets exceeds the cap %d); the theorem algorithm is exponential — use Correlation instead",
				p, len(elems), len(elems), opts.MaxSubsetsPerSet)
		}
		bitset.EnumerateSubsets(elems, func(s *bitset.Set) bool {
			sub := &corrSubset{set: p, links: s.Clone(), coverage: top.Coverage(s)}
			sub.key = sub.links.Key()
			subsets = append(subsets, sub)
			bySet[p] = append(bySet[p], sub)
			return true
		})
	}

	// Assumption 4: coverages must be pairwise distinct.
	seenCov := make(map[string]*corrSubset, len(subsets))
	for _, s := range subsets {
		ck := s.coverage.Key()
		if prev, ok := seenCov[ck]; ok {
			return nil, fmt.Errorf("core: Assumption 4 violated: correlation subsets %v and %v cover the same paths %v",
				prev.links, s.links, s.coverage)
		}
		seenCov[ck] = s
	}

	// Order by |ψ(A)| ascending (the partial order T of the Appendix).
	sort.SliceStable(subsets, func(i, j int) bool {
		return subsets[i].coverage.Len() < subsets[j].coverage.Len()
	})

	p0 := src.ProbExactCongestedPaths(bitset.New(top.NumPaths()))
	if p0 <= 0 {
		return nil, fmt.Errorf("core: P(all paths good) = %v; the theorem algorithm needs a positive all-good probability", p0)
	}

	alpha := make(map[string]float64, len(subsets))
	res := &TheoremResult{
		CongestionProb: make([]float64, top.NumLinks()),
		Alpha:          alpha,
		ProbSetEmpty:   make([]float64, top.NumSets()),
		JointProb:      make(map[string]float64, len(subsets)),
	}

	for _, a := range subsets {
		res.Subsets = append(res.Subsets, a.links.Clone())
		gammaA, gammaBar, err := gammaTerms(top, bySet, alpha, a)
		if err != nil {
			return nil, err
		}
		if gammaA <= 0 {
			return nil, fmt.Errorf("core: ΓA = %v for subset %v; cannot solve Eq. 18", gammaA, a.links)
		}
		lhs := src.ProbExactCongestedPaths(a.coverage) / p0
		av := (lhs - gammaBar) / gammaA
		if av < 0 {
			av = 0 // estimation noise can push a tiny factor below zero
		}
		alpha[a.key] = av
	}

	// Lemma 3: recover P(Sᵖ=∅), P(Sᵖ=A) and the per-link marginals.
	for p := 0; p < top.NumSets(); p++ {
		sum := 0.0
		for _, s := range bySet[p] {
			sum += alpha[s.key]
		}
		pEmpty := 1 / (1 + sum)
		res.ProbSetEmpty[p] = pEmpty
		for _, s := range bySet[p] {
			joint := alpha[s.key] * pEmpty
			res.JointProb[s.key] = joint
			s.links.ForEach(func(k int) bool {
				res.CongestionProb[k] += joint
				return true
			})
		}
	}
	for k, v := range res.CongestionProb {
		if v > 1 {
			res.CongestionProb[k] = 1
		}
	}
	return res, nil
}

// gammaTerms enumerates the network states Sn with ψ(Sn) = ψ(A) and returns
//
//	ΓA = Σ_{Sn: Sqn = A} Π_{p≠q} α(Spn)
//	ΓĀ = Σ_{Sn: Sqn ≠ A} Π_p   α(Spn)
//
// with α(∅) = 1. All other α's needed are already present in the alpha map,
// guaranteed by the |ψ(A)| ordering (Lemma 1).
func gammaTerms(top *topology.Topology, bySet [][]*corrSubset, alpha map[string]float64, a *corrSubset) (gammaA, gammaBar float64, err error) {
	// Per correlation set, the admissible states are ∅ plus the subsets
	// whose coverage fits inside ψ(A).
	type option struct {
		coverage *bitset.Set
		factor   float64 // α of the state; 1 for ∅
		isA      bool    // true when this is state A itself in set q
	}
	options := make([][]option, len(bySet))
	for p := range bySet {
		opts := []option{{coverage: bitset.New(top.NumPaths()), factor: 1}}
		for _, s := range bySet[p] {
			if !s.coverage.IsSubsetOf(a.coverage) {
				continue
			}
			if p == a.set && s.key == a.key {
				opts = append(opts, option{coverage: s.coverage, factor: 1, isA: true})
				continue
			}
			av, ok := alpha[s.key]
			if !ok {
				return 0, 0, fmt.Errorf("core: internal error: α for subset %v needed before it was computed (ordering bug)", s.links)
			}
			if av == 0 {
				continue // contributes nothing to either sum
			}
			opts = append(opts, option{coverage: s.coverage, factor: av})
		}
		options[p] = opts
	}

	var rec func(p int, covered *bitset.Set, prod float64, sawA bool)
	rec = func(p int, covered *bitset.Set, prod float64, sawA bool) {
		if p == len(options) {
			if !covered.Equal(a.coverage) {
				return
			}
			if sawA {
				gammaA += prod
			} else {
				gammaBar += prod
			}
			return
		}
		for _, o := range options[p] {
			next := covered
			if !o.coverage.IsEmpty() {
				next = bitset.Union(covered, o.coverage)
			}
			rec(p+1, next, prod*o.factor, sawA || o.isA)
		}
	}
	rec(0, bitset.New(top.NumPaths()), 1, false)
	return gammaA, gammaBar, nil
}
