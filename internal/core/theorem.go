package core

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/measure"
	"repro/internal/scratch"
	"repro/internal/topology"
)

// TheoremResult is the output of the exact Appendix-A algorithm.
type TheoremResult struct {
	// CongestionProb[k] is the recovered P(Xek = 1).
	CongestionProb []float64
	// Alpha maps each correlation subset (by its bitset key) to its
	// congestion factor αA = P(Sᵖ = A)/P(Sᵖ = ∅).
	Alpha map[string]float64
	// Subsets lists the correlation subsets in the computation order
	// (ascending |ψ(A)|), for inspection and tests.
	Subsets []*bitset.Set
	// ProbSetEmpty[p] is the recovered P(Sᵖ = ∅) for each correlation set.
	ProbSetEmpty []float64
	// JointProb maps a correlation subset key to the recovered probability
	// that exactly the links of that subset are the congested links of its
	// correlation set, P(Sᵖ = A) (Lemma 3).
	JointProb map[string]float64
}

// TheoremOptions tunes the exact algorithm.
type TheoremOptions struct {
	// MaxSubsetsPerSet caps 2^|Cp| enumeration per correlation set
	// (default 4096, i.e. sets of up to 12 links).
	MaxSubsetsPerSet int
}

// Normalized returns the options with every unset field replaced by its
// default, so zero values and explicit defaults compare equal (plan
// memoization relies on this).
func (o TheoremOptions) Normalized() TheoremOptions {
	if o.MaxSubsetsPerSet <= 0 {
		o.MaxSubsetsPerSet = 4096
	}
	return o
}

// corrSubset is one correlation subset A ∈ C̃ with its path coverage.
type corrSubset struct {
	set      int
	links    *bitset.Set
	coverage *bitset.Set
	key      string
	// covKey is the coverage's bitset.Key, precomputed so the data phase can
	// query key-addressed pattern sources without re-encoding per call.
	covKey string
	// ord is the subset's index in the |ψ(A)|-ascending computation order —
	// the workspace path's slice-indexed replacement for the alpha map.
	ord int
}

// TheoremPlan is the compiled structural phase of the exact algorithm:
// everything that depends only on the topology — the correlation subsets C̃
// with their path coverages, the Assumption-4 validation, the |ψ(A)|
// computation order, and each subset's per-set Γ-candidate lists. One plan
// serves any number of Run calls over different pattern sources; it is
// immutable after CompileTheorem returns and safe for concurrent use.
type TheoremPlan struct {
	top     *topology.Topology
	opts    TheoremOptions
	subsets []*corrSubset   // ordered by |ψ(A)| ascending
	bySet   [][]*corrSubset // per correlation set, enumeration order
	// gammaCands[ai][p] lists, for ordered subset ai and correlation set p,
	// the states of set p whose coverage fits inside ψ(A) — the structural
	// filter of the Γ enumeration (Eq. 18), hoisted out of the data phase.
	gammaCands [][][]gammaCand
}

// gammaCand is one precomputed Γ-enumeration state: a correlation subset
// admissible for the current target, with isA marking the target state
// itself (whose factor is 1 on the ΓA side rather than an α).
type gammaCand struct {
	sub *corrSubset
	isA bool
}

// CompileTheorem runs the source-independent part of the exact algorithm:
// subset enumeration, the Assumption-4 check, the computation ordering, and
// the per-subset Γ-candidate lists.
func CompileTheorem(top *topology.Topology, opts TheoremOptions) (*TheoremPlan, error) {
	opts = opts.Normalized()

	var subsets []*corrSubset
	bySet := make([][]*corrSubset, top.NumSets())
	for p := 0; p < top.NumSets(); p++ {
		elems := top.CorrelationSet(p).Indices()
		if len(elems) > 30 || 1<<uint(min(len(elems), 30)) > opts.MaxSubsetsPerSet {
			return nil, fmt.Errorf("core: correlation set %d has %d links (2^%d subsets exceeds the cap %d); the theorem algorithm is exponential — use Correlation instead",
				p, len(elems), len(elems), opts.MaxSubsetsPerSet)
		}
		bitset.EnumerateSubsets(elems, func(s *bitset.Set) bool {
			sub := &corrSubset{set: p, links: s.Clone(), coverage: top.Coverage(s)}
			sub.key = sub.links.Key()
			sub.covKey = sub.coverage.Key()
			subsets = append(subsets, sub)
			bySet[p] = append(bySet[p], sub)
			return true
		})
	}

	// Assumption 4: coverages must be pairwise distinct.
	seenCov := make(map[string]*corrSubset, len(subsets))
	for _, s := range subsets {
		ck := s.coverage.Key()
		if prev, ok := seenCov[ck]; ok {
			return nil, fmt.Errorf("core: Assumption 4 violated: correlation subsets %v and %v cover the same paths %v",
				prev.links, s.links, s.coverage)
		}
		seenCov[ck] = s
	}

	// Order by |ψ(A)| ascending (the partial order T of the Appendix).
	sort.SliceStable(subsets, func(i, j int) bool {
		return subsets[i].coverage.Len() < subsets[j].coverage.Len()
	})
	for i, s := range subsets {
		s.ord = i
	}

	pl := &TheoremPlan{top: top, opts: opts, subsets: subsets, bySet: bySet}
	pl.gammaCands = make([][][]gammaCand, len(subsets))
	for ai, a := range subsets {
		perSet := make([][]gammaCand, len(bySet))
		for p := range bySet {
			for _, s := range bySet[p] {
				if !s.coverage.IsSubsetOf(a.coverage) {
					continue
				}
				perSet[p] = append(perSet[p], gammaCand{sub: s, isA: p == a.set && s.key == a.key})
			}
		}
		pl.gammaCands[ai] = perSet
	}
	return pl, nil
}

// Topology returns the topology the plan was compiled for.
func (pl *TheoremPlan) Topology() *topology.Topology { return pl.top }

// Theorem runs the constructive algorithm extracted from the proof of
// Theorem 1. It requires a PatternSource (exact or empirical estimates of
// P(ψ(S) = Q)) and a topology satisfying Assumption 4; it returns the
// congestion factors and per-link congestion probabilities.
//
// The computation follows the Appendix step by step:
//
//  1. enumerate the correlation subsets C̃ and order them by |ψ(A)|;
//  2. for each A in order, enumerate the network states Sn with
//     ψ(Sn) = ψ(A), split them by whether Sqn = A, and solve Eq. 18
//     αA = (P(ψ(S)=ψ(A))/P(ψ(S)=∅) − ΓĀ)/ΓA, where ΓA and ΓĀ only involve
//     congestion factors already computed (Lemma 1);
//  3. recover P(Sᵖ = ∅) = 1/(1 + Σ αA) and P(Sᵖ = A) = αA·P(Sᵖ = ∅), then
//     P(Xek = 1) = Σ_{A ∋ ek} P(Sᵖ = A) (Lemma 3).
//
// Theorem is the one-shot form; CompileTheorem + Run amortizes steps that
// depend only on the topology across many sources.
func Theorem(top *topology.Topology, src measure.PatternSource, opts TheoremOptions) (*TheoremResult, error) {
	pl, err := CompileTheorem(top, opts)
	if err != nil {
		return nil, err
	}
	return pl.Run(src)
}

// Run executes the data-dependent phase of the exact algorithm against a
// pattern source: solve Eq. 18 for every αA in the precompiled order, then
// recover the joint and marginal probabilities via Lemma 3. The output is
// bit-identical to Theorem on the same inputs. Run allocates its outputs
// and is safe to call concurrently on a shared plan; it wraps RunIn with a
// pooled workspace and detaches the result.
func (pl *TheoremPlan) Run(src measure.PatternSource) (*TheoremResult, error) {
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	res, err := pl.RunIn(ws, src)
	if err != nil {
		return nil, err
	}
	return detachTheoremResult(res), nil
}

// theoremWorkspace is the exact algorithm's per-run scratch: α factors by
// computation order, the Γ-enumeration option lists and per-depth coverage
// unions, and the reused result (whose maps are cleared, not reallocated —
// their keys are the plan's interned subset keys, so steady-state refills
// allocate nothing).
type theoremWorkspace struct {
	alpha    []float64
	options  [][]gammaOption
	cover    []*bitset.Set // per-recursion-depth coverage-union scratch
	target   *bitset.Set   // ψ(A) of the subset being solved
	numSets  int
	gammaA   float64
	gammaBar float64
	res      TheoremResult
}

// gammaOption is one admissible per-set state of the Γ enumeration: a
// coverage (nil for the empty state), the state's α factor (1 for ∅ and for
// the target state A), and whether it is A itself.
type gammaOption struct {
	coverage *bitset.Set
	factor   float64
	isA      bool
}

// RunIn is Run with workspace-owned outputs: identical arithmetic, zero
// steady-state allocations when the source supports key-addressed pattern
// queries (measure.PatternKeySource — Empirical does). The result aliases
// workspace and plan storage — read-only, valid until the next call on ws.
func (pl *TheoremPlan) RunIn(ws *Workspace, src measure.PatternSource) (*TheoremResult, error) {
	ws.acquire()
	defer ws.release()
	tw := &ws.thm
	top := pl.top

	keySrc, hasKeys := src.(measure.PatternKeySource)
	var p0 float64
	if hasKeys {
		// The empty pattern's key is the empty string (no set bits, no words).
		p0 = keySrc.ProbCongestedPatternKey("")
	} else {
		p0 = src.ProbExactCongestedPaths(bitset.New(top.NumPaths()))
	}
	if p0 <= 0 {
		return nil, fmt.Errorf("core: P(all paths good) = %v; the theorem algorithm needs a positive all-good probability", p0)
	}

	tw.alpha = scratch.Grow(tw.alpha, len(pl.subsets))
	tw.numSets = len(pl.bySet)
	if cap(tw.options) < tw.numSets {
		tw.options = make([][]gammaOption, tw.numSets)
	}
	tw.options = tw.options[:tw.numSets]
	for len(tw.cover) < tw.numSets+1 {
		tw.cover = append(tw.cover, bitset.New(top.NumPaths()))
	}

	res := &tw.res
	res.CongestionProb = scratch.Grow(res.CongestionProb, top.NumLinks())
	for k := range res.CongestionProb {
		res.CongestionProb[k] = 0
	}
	res.ProbSetEmpty = scratch.Grow(res.ProbSetEmpty, top.NumSets())
	res.Subsets = res.Subsets[:0]
	if res.Alpha == nil {
		res.Alpha = make(map[string]float64, len(pl.subsets))
	} else {
		clear(res.Alpha)
	}
	if res.JointProb == nil {
		res.JointProb = make(map[string]float64, len(pl.subsets))
	} else {
		clear(res.JointProb)
	}

	for ai, a := range pl.subsets {
		res.Subsets = append(res.Subsets, a.links)
		gammaA, gammaBar, err := pl.gammaTerms(tw, ai)
		if err != nil {
			return nil, err
		}
		if gammaA <= 0 {
			return nil, fmt.Errorf("core: ΓA = %v for subset %v; cannot solve Eq. 18", gammaA, a.links)
		}
		var lhs float64
		if hasKeys {
			lhs = keySrc.ProbCongestedPatternKey(a.covKey) / p0
		} else {
			lhs = src.ProbExactCongestedPaths(a.coverage) / p0
		}
		av := (lhs - gammaBar) / gammaA
		if av < 0 {
			av = 0 // estimation noise can push a tiny factor below zero
		}
		tw.alpha[ai] = av
		res.Alpha[a.key] = av
	}

	// Lemma 3: recover P(Sᵖ=∅), P(Sᵖ=A) and the per-link marginals.
	for p := 0; p < top.NumSets(); p++ {
		sum := 0.0
		for _, s := range pl.bySet[p] {
			sum += tw.alpha[s.ord]
		}
		pEmpty := 1 / (1 + sum)
		res.ProbSetEmpty[p] = pEmpty
		for _, s := range pl.bySet[p] {
			joint := tw.alpha[s.ord] * pEmpty
			res.JointProb[s.key] = joint
			s.links.ForEach(func(k int) bool {
				res.CongestionProb[k] += joint
				return true
			})
		}
	}
	for k, v := range res.CongestionProb {
		if v > 1 {
			res.CongestionProb[k] = 1
		}
	}
	return res, nil
}

// detachTheoremResult deep-copies a workspace-owned theorem result.
func detachTheoremResult(res *TheoremResult) *TheoremResult {
	out := &TheoremResult{
		CongestionProb: append([]float64(nil), res.CongestionProb...),
		Alpha:          make(map[string]float64, len(res.Alpha)),
		Subsets:        make([]*bitset.Set, len(res.Subsets)),
		ProbSetEmpty:   append([]float64(nil), res.ProbSetEmpty...),
		JointProb:      make(map[string]float64, len(res.JointProb)),
	}
	for k, v := range res.Alpha {
		out.Alpha[k] = v
	}
	for k, v := range res.JointProb {
		out.JointProb[k] = v
	}
	for i, s := range res.Subsets {
		out.Subsets[i] = s.Clone()
	}
	return out
}

// gammaTerms enumerates the network states Sn with ψ(Sn) = ψ(A) and returns
//
//	ΓA = Σ_{Sn: Sqn = A} Π_{p≠q} α(Spn)
//	ΓĀ = Σ_{Sn: Sqn ≠ A} Π_p   α(Spn)
//
// with α(∅) = 1. All other α's needed were computed at an earlier ordinal,
// guaranteed by the |ψ(A)| ordering (Lemma 1). The admissible states per
// set were precomputed at compile time; only the α factors are data. The
// enumeration runs entirely on workspace scratch: option lists are rebuilt
// in place and the per-depth coverage unions reuse one bitset per level.
func (pl *TheoremPlan) gammaTerms(tw *theoremWorkspace, ai int) (gammaA, gammaBar float64, err error) {
	a := pl.subsets[ai]
	for p := range pl.bySet {
		opts := tw.options[p][:0]
		opts = append(opts, gammaOption{factor: 1})
		for _, c := range pl.gammaCands[ai][p] {
			if c.isA {
				opts = append(opts, gammaOption{coverage: c.sub.coverage, factor: 1, isA: true})
				continue
			}
			if c.sub.ord >= ai {
				return 0, 0, fmt.Errorf("core: internal error: α for subset %v needed before it was computed (ordering bug)", c.sub.links)
			}
			av := tw.alpha[c.sub.ord]
			if av == 0 {
				continue // contributes nothing to either sum
			}
			opts = append(opts, gammaOption{coverage: c.sub.coverage, factor: av})
		}
		tw.options[p] = opts
	}

	tw.target = a.coverage
	tw.gammaA, tw.gammaBar = 0, 0
	root := tw.cover[0]
	root.Clear()
	tw.gammaRec(0, root, 1, false)
	return tw.gammaA, tw.gammaBar, nil
}

// gammaRec walks the per-set state options depth-first, accumulating the ΓA
// and ΓĀ sums for states whose total coverage equals the target. The
// coverage union at depth p+1 lives in tw.cover[p+1], so recursion allocates
// nothing.
func (tw *theoremWorkspace) gammaRec(p int, covered *bitset.Set, prod float64, sawA bool) {
	if p == tw.numSets {
		if !covered.Equal(tw.target) {
			return
		}
		if sawA {
			tw.gammaA += prod
		} else {
			tw.gammaBar += prod
		}
		return
	}
	for i := range tw.options[p] {
		o := &tw.options[p][i]
		next := covered
		if o.coverage != nil && !o.coverage.IsEmpty() {
			next = tw.cover[p+1]
			next.CopyFrom(covered)
			next.UnionWith(o.coverage)
		}
		tw.gammaRec(p+1, next, prod*o.factor, sawA || o.isA)
	}
}
