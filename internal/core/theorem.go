package core

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/measure"
	"repro/internal/topology"
)

// TheoremResult is the output of the exact Appendix-A algorithm.
type TheoremResult struct {
	// CongestionProb[k] is the recovered P(Xek = 1).
	CongestionProb []float64
	// Alpha maps each correlation subset (by its bitset key) to its
	// congestion factor αA = P(Sᵖ = A)/P(Sᵖ = ∅).
	Alpha map[string]float64
	// Subsets lists the correlation subsets in the computation order
	// (ascending |ψ(A)|), for inspection and tests.
	Subsets []*bitset.Set
	// ProbSetEmpty[p] is the recovered P(Sᵖ = ∅) for each correlation set.
	ProbSetEmpty []float64
	// JointProb maps a correlation subset key to the recovered probability
	// that exactly the links of that subset are the congested links of its
	// correlation set, P(Sᵖ = A) (Lemma 3).
	JointProb map[string]float64
}

// TheoremOptions tunes the exact algorithm.
type TheoremOptions struct {
	// MaxSubsetsPerSet caps 2^|Cp| enumeration per correlation set
	// (default 4096, i.e. sets of up to 12 links).
	MaxSubsetsPerSet int
}

// Normalized returns the options with every unset field replaced by its
// default, so zero values and explicit defaults compare equal (plan
// memoization relies on this).
func (o TheoremOptions) Normalized() TheoremOptions {
	if o.MaxSubsetsPerSet <= 0 {
		o.MaxSubsetsPerSet = 4096
	}
	return o
}

// corrSubset is one correlation subset A ∈ C̃ with its path coverage.
type corrSubset struct {
	set      int
	links    *bitset.Set
	coverage *bitset.Set
	key      string
}

// TheoremPlan is the compiled structural phase of the exact algorithm:
// everything that depends only on the topology — the correlation subsets C̃
// with their path coverages, the Assumption-4 validation, the |ψ(A)|
// computation order, and each subset's per-set Γ-candidate lists. One plan
// serves any number of Run calls over different pattern sources; it is
// immutable after CompileTheorem returns and safe for concurrent use.
type TheoremPlan struct {
	top     *topology.Topology
	opts    TheoremOptions
	subsets []*corrSubset   // ordered by |ψ(A)| ascending
	bySet   [][]*corrSubset // per correlation set, enumeration order
	// gammaCands[ai][p] lists, for ordered subset ai and correlation set p,
	// the states of set p whose coverage fits inside ψ(A) — the structural
	// filter of the Γ enumeration (Eq. 18), hoisted out of the data phase.
	gammaCands [][][]gammaCand
}

// gammaCand is one precomputed Γ-enumeration state: a correlation subset
// admissible for the current target, with isA marking the target state
// itself (whose factor is 1 on the ΓA side rather than an α).
type gammaCand struct {
	sub *corrSubset
	isA bool
}

// CompileTheorem runs the source-independent part of the exact algorithm:
// subset enumeration, the Assumption-4 check, the computation ordering, and
// the per-subset Γ-candidate lists.
func CompileTheorem(top *topology.Topology, opts TheoremOptions) (*TheoremPlan, error) {
	opts = opts.Normalized()

	var subsets []*corrSubset
	bySet := make([][]*corrSubset, top.NumSets())
	for p := 0; p < top.NumSets(); p++ {
		elems := top.CorrelationSet(p).Indices()
		if len(elems) > 30 || 1<<uint(min(len(elems), 30)) > opts.MaxSubsetsPerSet {
			return nil, fmt.Errorf("core: correlation set %d has %d links (2^%d subsets exceeds the cap %d); the theorem algorithm is exponential — use Correlation instead",
				p, len(elems), len(elems), opts.MaxSubsetsPerSet)
		}
		bitset.EnumerateSubsets(elems, func(s *bitset.Set) bool {
			sub := &corrSubset{set: p, links: s.Clone(), coverage: top.Coverage(s)}
			sub.key = sub.links.Key()
			subsets = append(subsets, sub)
			bySet[p] = append(bySet[p], sub)
			return true
		})
	}

	// Assumption 4: coverages must be pairwise distinct.
	seenCov := make(map[string]*corrSubset, len(subsets))
	for _, s := range subsets {
		ck := s.coverage.Key()
		if prev, ok := seenCov[ck]; ok {
			return nil, fmt.Errorf("core: Assumption 4 violated: correlation subsets %v and %v cover the same paths %v",
				prev.links, s.links, s.coverage)
		}
		seenCov[ck] = s
	}

	// Order by |ψ(A)| ascending (the partial order T of the Appendix).
	sort.SliceStable(subsets, func(i, j int) bool {
		return subsets[i].coverage.Len() < subsets[j].coverage.Len()
	})

	pl := &TheoremPlan{top: top, opts: opts, subsets: subsets, bySet: bySet}
	pl.gammaCands = make([][][]gammaCand, len(subsets))
	for ai, a := range subsets {
		perSet := make([][]gammaCand, len(bySet))
		for p := range bySet {
			for _, s := range bySet[p] {
				if !s.coverage.IsSubsetOf(a.coverage) {
					continue
				}
				perSet[p] = append(perSet[p], gammaCand{sub: s, isA: p == a.set && s.key == a.key})
			}
		}
		pl.gammaCands[ai] = perSet
	}
	return pl, nil
}

// Topology returns the topology the plan was compiled for.
func (pl *TheoremPlan) Topology() *topology.Topology { return pl.top }

// Theorem runs the constructive algorithm extracted from the proof of
// Theorem 1. It requires a PatternSource (exact or empirical estimates of
// P(ψ(S) = Q)) and a topology satisfying Assumption 4; it returns the
// congestion factors and per-link congestion probabilities.
//
// The computation follows the Appendix step by step:
//
//  1. enumerate the correlation subsets C̃ and order them by |ψ(A)|;
//  2. for each A in order, enumerate the network states Sn with
//     ψ(Sn) = ψ(A), split them by whether Sqn = A, and solve Eq. 18
//     αA = (P(ψ(S)=ψ(A))/P(ψ(S)=∅) − ΓĀ)/ΓA, where ΓA and ΓĀ only involve
//     congestion factors already computed (Lemma 1);
//  3. recover P(Sᵖ = ∅) = 1/(1 + Σ αA) and P(Sᵖ = A) = αA·P(Sᵖ = ∅), then
//     P(Xek = 1) = Σ_{A ∋ ek} P(Sᵖ = A) (Lemma 3).
//
// Theorem is the one-shot form; CompileTheorem + Run amortizes steps that
// depend only on the topology across many sources.
func Theorem(top *topology.Topology, src measure.PatternSource, opts TheoremOptions) (*TheoremResult, error) {
	pl, err := CompileTheorem(top, opts)
	if err != nil {
		return nil, err
	}
	return pl.Run(src)
}

// Run executes the data-dependent phase of the exact algorithm against a
// pattern source: solve Eq. 18 for every αA in the precompiled order, then
// recover the joint and marginal probabilities via Lemma 3. The output is
// bit-identical to Theorem on the same inputs. Run allocates its outputs
// and is safe to call concurrently on a shared plan.
func (pl *TheoremPlan) Run(src measure.PatternSource) (*TheoremResult, error) {
	top := pl.top
	p0 := src.ProbExactCongestedPaths(bitset.New(top.NumPaths()))
	if p0 <= 0 {
		return nil, fmt.Errorf("core: P(all paths good) = %v; the theorem algorithm needs a positive all-good probability", p0)
	}

	alpha := make(map[string]float64, len(pl.subsets))
	res := &TheoremResult{
		CongestionProb: make([]float64, top.NumLinks()),
		Alpha:          alpha,
		ProbSetEmpty:   make([]float64, top.NumSets()),
		JointProb:      make(map[string]float64, len(pl.subsets)),
	}

	for ai, a := range pl.subsets {
		res.Subsets = append(res.Subsets, a.links.Clone())
		gammaA, gammaBar, err := pl.gammaTerms(alpha, ai)
		if err != nil {
			return nil, err
		}
		if gammaA <= 0 {
			return nil, fmt.Errorf("core: ΓA = %v for subset %v; cannot solve Eq. 18", gammaA, a.links)
		}
		lhs := src.ProbExactCongestedPaths(a.coverage) / p0
		av := (lhs - gammaBar) / gammaA
		if av < 0 {
			av = 0 // estimation noise can push a tiny factor below zero
		}
		alpha[a.key] = av
	}

	// Lemma 3: recover P(Sᵖ=∅), P(Sᵖ=A) and the per-link marginals.
	for p := 0; p < top.NumSets(); p++ {
		sum := 0.0
		for _, s := range pl.bySet[p] {
			sum += alpha[s.key]
		}
		pEmpty := 1 / (1 + sum)
		res.ProbSetEmpty[p] = pEmpty
		for _, s := range pl.bySet[p] {
			joint := alpha[s.key] * pEmpty
			res.JointProb[s.key] = joint
			s.links.ForEach(func(k int) bool {
				res.CongestionProb[k] += joint
				return true
			})
		}
	}
	for k, v := range res.CongestionProb {
		if v > 1 {
			res.CongestionProb[k] = 1
		}
	}
	return res, nil
}

// gammaTerms enumerates the network states Sn with ψ(Sn) = ψ(A) and returns
//
//	ΓA = Σ_{Sn: Sqn = A} Π_{p≠q} α(Spn)
//	ΓĀ = Σ_{Sn: Sqn ≠ A} Π_p   α(Spn)
//
// with α(∅) = 1. All other α's needed are already present in the alpha map,
// guaranteed by the |ψ(A)| ordering (Lemma 1). The admissible states per
// set were precomputed at compile time; only the α factors are data.
func (pl *TheoremPlan) gammaTerms(alpha map[string]float64, ai int) (gammaA, gammaBar float64, err error) {
	a := pl.subsets[ai]
	type option struct {
		coverage *bitset.Set
		factor   float64 // α of the state; 1 for ∅
		isA      bool    // true when this is state A itself in set q
	}
	options := make([][]option, len(pl.bySet))
	for p := range pl.bySet {
		opts := []option{{coverage: bitset.New(pl.top.NumPaths()), factor: 1}}
		for _, c := range pl.gammaCands[ai][p] {
			if c.isA {
				opts = append(opts, option{coverage: c.sub.coverage, factor: 1, isA: true})
				continue
			}
			av, ok := alpha[c.sub.key]
			if !ok {
				return 0, 0, fmt.Errorf("core: internal error: α for subset %v needed before it was computed (ordering bug)", c.sub.links)
			}
			if av == 0 {
				continue // contributes nothing to either sum
			}
			opts = append(opts, option{coverage: c.sub.coverage, factor: av})
		}
		options[p] = opts
	}

	var rec func(p int, covered *bitset.Set, prod float64, sawA bool)
	rec = func(p int, covered *bitset.Set, prod float64, sawA bool) {
		if p == len(options) {
			if !covered.Equal(a.coverage) {
				return
			}
			if sawA {
				gammaA += prod
			} else {
				gammaBar += prod
			}
			return
		}
		for _, o := range options[p] {
			next := covered
			if !o.coverage.IsEmpty() {
				next = bitset.Union(covered, o.coverage)
			}
			rec(p+1, next, prod*o.factor, sawA || o.isA)
		}
	}
	rec(0, bitset.New(pl.top.NumPaths()), 1, false)
	return gammaA, gammaBar, nil
}
