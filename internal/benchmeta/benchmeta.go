// Package benchmeta collects the machine/runtime metadata every BENCH_*.json
// artifact embeds, so performance numbers recorded across PRs and CI runs
// are interpretable: a kernel speedup means nothing without the core count
// and instruction-set level it was measured at.
package benchmeta

import (
	"bufio"
	"os"
	"runtime"
	"runtime/debug"
	"strings"

	"repro/internal/segstore"
)

// Machine describes the hardware and runtime configuration of one benchmark
// run.
type Machine struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GOAMD64 is the amd64 microarchitecture level the binary was compiled
	// for (v1..v4); it decides whether the popcount kernels lower to bare
	// POPCNT. Empty on other architectures.
	GOAMD64    string `json:"goamd64,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// CPUModel is the "model name" from /proc/cpuinfo; empty where
	// unavailable.
	CPUModel string `json:"cpu_model,omitempty"`
	// PageSize is the OS memory page size in bytes — the mapping granularity
	// of the out-of-core segment store's read path.
	PageSize int `json:"page_size"`
	// Mmap reports whether the segment store's mmap read path is available
	// on this platform (false ⇒ sealed segments are read into the heap).
	Mmap bool `json:"mmap"`
}

// Collect gathers the current process's machine metadata. It never fails:
// fields that cannot be determined are left at their zero value.
func Collect() Machine {
	m := Machine{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
		PageSize:   os.Getpagesize(),
		Mmap:       segstore.MmapAvailable(),
	}
	if runtime.GOARCH == "amd64" {
		m.GOAMD64 = goamd64()
	}
	return m
}

// goamd64 resolves the binary's compiled GOAMD64 level: the build info
// records the effective setting (including toolchain defaults); the
// environment is the fallback for stripped binaries.
func goamd64() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "GOAMD64" {
				return s.Value
			}
		}
	}
	if v := os.Getenv("GOAMD64"); v != "" {
		return v
	}
	return "v1"
}

// cpuModel reads the first "model name" entry from /proc/cpuinfo (Linux;
// empty elsewhere).
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "model name") {
			if _, v, ok := strings.Cut(line, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}
