// Package netsim is the experiment engine: it runs the paper's simulator
// (Section 5) for N snapshots and records which paths were observed
// congested in each snapshot. Two fidelity modes are provided:
//
//   - StateLevel applies Assumption 2 (separability) directly: a path is
//     congested iff it traverses a congested link. This is exact under the
//     paper's model and fast enough for the large parameter sweeps.
//   - PacketLevel additionally simulates the [13] loss-rate model and probe
//     packets, classifying each path by its measured loss fraction against
//     the threshold tp — the full data path of the paper's simulator,
//     including measurement noise.
//
// Snapshots are independent, so the engine shards them across the
// internal/runner worker pool; per-snapshot RNGs are derived
// deterministically from the seed (runner.DeriveSeed), making runs
// reproducible regardless of parallelism, and RunContext honours
// cancellation between snapshots.
package netsim

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/congestion"
	"repro/internal/loss"
	"repro/internal/runner"
	"repro/internal/topology"
)

// Mode selects the measurement fidelity.
type Mode int

const (
	// StateLevel derives path states from link states via Assumption 2.
	StateLevel Mode = iota
	// PacketLevel simulates loss rates and probe packets per snapshot.
	PacketLevel
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case StateLevel:
		return "state-level"
	case PacketLevel:
		return "packet-level"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	Topology  *topology.Topology
	Model     congestion.Model
	Snapshots int
	Seed      int64
	Mode      Mode
	// Tl is the link congestion threshold (0 ⇒ loss.DefaultTl). Only used in
	// PacketLevel mode.
	Tl float64
	// PacketsPerPath is the probe count per path per snapshot
	// (0 ⇒ loss.DefaultPacketsPerPath). Only used in PacketLevel mode.
	PacketsPerPath int
	// Parallelism caps the worker count (0 ⇒ GOMAXPROCS).
	Parallelism int
	// RecordLinkStates additionally stores the true congested-link set of
	// every snapshot (for validation and diagnostics; costs memory).
	RecordLinkStates bool
}

// Record holds the observations of one experiment: for each snapshot, the
// set of congested paths (and optionally the true set of congested links).
type Record struct {
	NumPaths       int
	CongestedPaths []*bitset.Set // per snapshot
	LinkStates     []*bitset.Set // per snapshot; nil unless recorded
}

// Snapshots returns the number of recorded snapshots.
func (r *Record) Snapshots() int { return len(r.CongestedPaths) }

// Run executes the simulation and returns the observation record. It is
// RunContext with a background context.
func Run(cfg Config) (*Record, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the simulation on the runner worker pool, honouring
// ctx between snapshots, and returns the observation record.
func RunContext(ctx context.Context, cfg Config) (*Record, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("netsim: nil topology")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("netsim: nil model")
	}
	if cfg.Model.NumLinks() != cfg.Topology.NumLinks() {
		return nil, fmt.Errorf("netsim: model covers %d links, topology has %d",
			cfg.Model.NumLinks(), cfg.Topology.NumLinks())
	}
	if cfg.Snapshots <= 0 {
		return nil, fmt.Errorf("netsim: snapshots = %d, want > 0", cfg.Snapshots)
	}
	tl := cfg.Tl
	if tl == 0 {
		tl = loss.DefaultTl
	}
	if tl < 0 || tl >= 1 {
		return nil, fmt.Errorf("netsim: tl = %v, want (0, 1)", tl)
	}
	packets := cfg.PacketsPerPath
	if packets == 0 {
		packets = loss.DefaultPacketsPerPath
	}
	if packets < 0 {
		return nil, fmt.Errorf("netsim: packets per path = %d", packets)
	}
	rec := &Record{
		NumPaths:       cfg.Topology.NumPaths(),
		CongestedPaths: make([]*bitset.Set, cfg.Snapshots),
	}
	if cfg.RecordLinkStates {
		rec.LinkStates = make([]*bitset.Set, cfg.Snapshots)
	}

	// Each snapshot is an independent task on the shared pool; the scratch
	// link-state bitset is allocated once per worker and reused across the
	// snapshots that worker executes. Every task writes only its own rec
	// slot, and the per-snapshot RNG is derived from (seed, snapshot) alone,
	// so the record is bit-identical for any worker count.
	pool := &runner.Runner{Workers: cfg.Parallelism}
	_, err := runner.MapScratch(ctx, pool, cfg.Snapshots,
		func() *bitset.Set { return bitset.New(cfg.Topology.NumLinks()) },
		func(_ context.Context, snap int, linkState *bitset.Set) (struct{}, error) {
			rng := rand.New(rand.NewSource(runner.DeriveSeed(cfg.Seed, snap)))
			cfg.Model.Sample(rng, linkState)
			if cfg.RecordLinkStates {
				rec.LinkStates[snap] = linkState.Clone()
			}
			rec.CongestedPaths[snap] = observePaths(cfg.Topology, linkState, rng, cfg.Mode, tl, packets)
			return struct{}{}, nil
		})
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// observePaths derives the congested-path set for one snapshot.
func observePaths(top *topology.Topology, linkState *bitset.Set, rng *rand.Rand, mode Mode, tl float64, packets int) *bitset.Set {
	out := bitset.New(top.NumPaths())
	switch mode {
	case StateLevel:
		for _, p := range top.Paths() {
			if top.PathLinkSet(p.ID).Intersects(linkState) {
				out.Add(int(p.ID))
			}
		}
	case PacketLevel:
		rates := loss.SampleRates(rng, linkState, top.NumLinks(), tl)
		for _, p := range top.Paths() {
			frac := loss.TransmitPath(rng, rates, p.Links, packets)
			if loss.ClassifyPath(frac, tl, len(p.Links)) {
				out.Add(int(p.ID))
			}
		}
	default:
		panic(fmt.Sprintf("netsim: unknown mode %d", int(mode)))
	}
	return out
}
