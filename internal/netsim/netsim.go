// Package netsim is the experiment engine: it runs the paper's simulator
// (Section 5) for N snapshots and records which paths were observed
// congested in each snapshot. Two fidelity modes are provided:
//
//   - StateLevel applies Assumption 2 (separability) directly: a path is
//     congested iff it traverses a congested link. This is exact under the
//     paper's model and fast enough for the large parameter sweeps.
//   - PacketLevel additionally simulates the [13] loss-rate model and probe
//     packets, classifying each path by its measured loss fraction against
//     the threshold tp — the full data path of the paper's simulator,
//     including measurement noise.
//
// Snapshots are independent, so the engine shards them across the
// internal/runner worker pool in 64-snapshot-aligned blocks; per-snapshot
// RNGs are derived deterministically from the seed (runner.DeriveSeed),
// making runs reproducible regardless of parallelism, and RunContext
// honours cancellation between blocks.
//
// Observations land directly in columnar snapstore.Store columns (one bit
// column per path over snapshots). Because every block owns whole words of
// every column, the shards never share a word: the deterministic "merge" is
// the layout itself, and no post-processing pass is needed.
package netsim

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/congestion"
	"repro/internal/loss"
	"repro/internal/runner"
	"repro/internal/snapstore"
	"repro/internal/topology"
)

// Mode selects the measurement fidelity.
type Mode int

const (
	// StateLevel derives path states from link states via Assumption 2.
	StateLevel Mode = iota
	// PacketLevel simulates loss rates and probe packets per snapshot.
	PacketLevel
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case StateLevel:
		return "state-level"
	case PacketLevel:
		return "packet-level"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	Topology  *topology.Topology
	Model     congestion.Model
	Snapshots int
	Seed      int64
	Mode      Mode
	// Tl is the link congestion threshold (0 ⇒ loss.DefaultTl). Only used in
	// PacketLevel mode.
	Tl float64
	// PacketsPerPath is the probe count per path per snapshot
	// (0 ⇒ loss.DefaultPacketsPerPath). Only used in PacketLevel mode.
	PacketsPerPath int
	// Parallelism caps the worker count (0 ⇒ GOMAXPROCS).
	Parallelism int
	// RecordLinkStates additionally stores the true congested-link set of
	// every snapshot (for validation and diagnostics; costs memory).
	RecordLinkStates bool
}

// Record holds the observations of one experiment as a thin view over
// columnar snapshot stores: one bit column per path (and, optionally, per
// link) over snapshots. Row-major access is available through PathSnapshot,
// LinkSnapshot, and the stores' Rows method, but the algorithms consume the
// columns directly via measure.Empirical.
type Record struct {
	// Paths holds the congested-path observations, path-major.
	Paths *snapstore.Store
	// Links holds the true congested-link states, link-major; nil unless
	// Config.RecordLinkStates was set.
	Links *snapstore.Store
}

// NewRecordFromRows is the compatibility constructor for row-major
// observations: rows[t] is the congested-path set of snapshot t. A real
// deployment feeding probe measurements one snapshot at a time should use
// measure.NewStreaming instead.
func NewRecordFromRows(numPaths int, rows []*bitset.Set) *Record {
	return &Record{Paths: snapstore.FromRows(numPaths, rows)}
}

// NumPaths returns the number of paths observed per snapshot.
func (r *Record) NumPaths() int { return r.Paths.NumSeries() }

// Snapshots returns the number of recorded snapshots.
func (r *Record) Snapshots() int { return r.Paths.Snapshots() }

// PathSnapshot materializes snapshot t's congested-path set.
func (r *Record) PathSnapshot(t int) *bitset.Set { return r.Paths.Row(t) }

// LinkSnapshot materializes snapshot t's true congested-link set; it panics
// unless link states were recorded.
func (r *Record) LinkSnapshot(t int) *bitset.Set {
	if r.Links == nil {
		panic("netsim: link states were not recorded (Config.RecordLinkStates)")
	}
	return r.Links.Row(t)
}

// Run executes the simulation and returns the observation record. It is
// RunContext with a background context.
func Run(cfg Config) (*Record, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the simulation on the runner worker pool, honouring
// ctx between snapshots, and returns the observation record.
func RunContext(ctx context.Context, cfg Config) (*Record, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("netsim: nil topology")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("netsim: nil model")
	}
	if cfg.Model.NumLinks() != cfg.Topology.NumLinks() {
		return nil, fmt.Errorf("netsim: model covers %d links, topology has %d",
			cfg.Model.NumLinks(), cfg.Topology.NumLinks())
	}
	if cfg.Snapshots <= 0 {
		return nil, fmt.Errorf("netsim: snapshots = %d, want > 0", cfg.Snapshots)
	}
	tl := cfg.Tl
	if tl == 0 {
		tl = loss.DefaultTl
	}
	if tl < 0 || tl >= 1 {
		return nil, fmt.Errorf("netsim: tl = %v, want (0, 1)", tl)
	}
	packets := cfg.PacketsPerPath
	if packets == 0 {
		packets = loss.DefaultPacketsPerPath
	}
	if packets < 0 {
		return nil, fmt.Errorf("netsim: packets per path = %d", packets)
	}
	rec := &Record{
		Paths: snapstore.NewFixed(cfg.Topology.NumPaths(), cfg.Snapshots),
	}
	if cfg.RecordLinkStates {
		rec.Links = snapstore.NewFixed(cfg.Topology.NumLinks(), cfg.Snapshots)
	}

	// Tasks are 64-snapshot-aligned blocks: block b owns word b of every
	// column, so concurrent writers never share a word and the columnar
	// record needs no merge pass. The per-snapshot RNG is still derived from
	// (seed, snapshot) alone, so the record is bit-identical for any worker
	// count. Scratch bitsets are allocated once per worker and reused.
	blocks := (cfg.Snapshots + snapstore.BlockSnapshots - 1) / snapstore.BlockSnapshots
	type scratch struct{ linkState, pathState *bitset.Set }
	pool := &runner.Runner{Workers: cfg.Parallelism}
	_, err := runner.MapScratch(ctx, pool, blocks,
		func() *scratch {
			return &scratch{
				linkState: bitset.New(cfg.Topology.NumLinks()),
				pathState: bitset.New(cfg.Topology.NumPaths()),
			}
		},
		func(_ context.Context, block int, sc *scratch) (struct{}, error) {
			lo := block * snapstore.BlockSnapshots
			hi := lo + snapstore.BlockSnapshots
			if hi > cfg.Snapshots {
				hi = cfg.Snapshots
			}
			for snap := lo; snap < hi; snap++ {
				rng := rand.New(rand.NewSource(runner.DeriveSeed(cfg.Seed, snap)))
				cfg.Model.Sample(rng, sc.linkState)
				if rec.Links != nil {
					sc.linkState.ForEach(func(k int) bool {
						rec.Links.SetBit(k, snap)
						return true
					})
				}
				observePaths(cfg.Topology, sc.linkState, rng, cfg.Mode, tl, packets, sc.pathState)
				sc.pathState.ForEach(func(p int) bool {
					rec.Paths.SetBit(p, snap)
					return true
				})
			}
			return struct{}{}, nil
		})
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// observePaths derives the congested-path set for one snapshot into out
// (cleared first).
func observePaths(top *topology.Topology, linkState *bitset.Set, rng *rand.Rand, mode Mode, tl float64, packets int, out *bitset.Set) {
	out.Clear()
	switch mode {
	case StateLevel:
		for _, p := range top.Paths() {
			if top.PathLinkSet(p.ID).Intersects(linkState) {
				out.Add(int(p.ID))
			}
		}
	case PacketLevel:
		rates := loss.SampleRates(rng, linkState, top.NumLinks(), tl)
		for _, p := range top.Paths() {
			frac := loss.TransmitPath(rng, rates, p.Links, packets)
			if loss.ClassifyPath(frac, tl, len(p.Links)) {
				out.Add(int(p.ID))
			}
		}
	default:
		panic(fmt.Sprintf("netsim: unknown mode %d", int(mode)))
	}
}
