package netsim

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/dynamics"
	"repro/internal/topology"
)

// dynFixture builds a Figure-1(a) topology with a Markov-modulated process
// over its first correlation set.
func dynFixture(t *testing.T) (*topology.Topology, *dynamics.MarkovModulated) {
	t.Helper()
	top := topology.Figure1A()
	proc, err := dynamics.NewMarkovModulated(dynamics.Config{
		NumLinks: top.NumLinks(),
		Groups: []dynamics.Group{{
			Links:   []int{0, 1},
			Chain:   dynamics.Chain{POn: 0.05, MeanBurst: 20},
			OnProb:  []float64{0.9, 0.8},
			OffProb: []float64{0.02, 0.02},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return top, proc
}

func TestRunDynamicDeterministic(t *testing.T) {
	top, proc := dynFixture(t)
	cfg := DynamicConfig{Topology: top, Process: proc, Snapshots: 600, Seed: 5, RecordLinkStates: true}
	a, err := RunDynamic(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDynamic(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Paths.Equal(b.Paths) || !a.Links.Equal(b.Links) {
		t.Fatal("two runs with the same seed produced different records")
	}
	cfg.Seed = 6
	c, err := RunDynamic(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Paths.Equal(c.Paths) {
		t.Fatal("different seeds produced identical records")
	}
}

// TestRunDynamicObservationsConsistent checks Assumption 2 holds between
// recorded link states and path observations, and that the OnSnapshot tap
// sees exactly what lands in the record.
func TestRunDynamicObservationsConsistent(t *testing.T) {
	top, proc := dynFixture(t)
	var tapped []*bitset.Set
	rec, err := RunDynamic(context.Background(), DynamicConfig{
		Topology: top, Process: proc, Snapshots: 400, Seed: 9, RecordLinkStates: true,
		OnSnapshot: func(_ int, congested *bitset.Set) {
			tapped = append(tapped, congested.Clone())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshots() != 400 || len(tapped) != 400 {
		t.Fatalf("recorded %d snapshots, tapped %d, want 400", rec.Snapshots(), len(tapped))
	}
	for ts := 0; ts < rec.Snapshots(); ts++ {
		paths := rec.PathSnapshot(ts)
		if !paths.Equal(tapped[ts]) {
			t.Fatalf("snapshot %d: tap %v != record %v", ts, tapped[ts], paths)
		}
		links := rec.LinkSnapshot(ts)
		for _, p := range top.Paths() {
			want := top.PathLinkSet(p.ID).Intersects(links)
			if got := paths.Contains(int(p.ID)); got != want {
				t.Fatalf("snapshot %d path %d: observed %v, link states imply %v", ts, p.ID, got, want)
			}
		}
	}
}

func TestRunDynamicErrors(t *testing.T) {
	top, proc := dynFixture(t)
	other, err := dynamics.NewMarkovModulated(dynamics.Config{NumLinks: 99})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		cfg     DynamicConfig
		errPart string
	}{
		{"nil topology", DynamicConfig{Process: proc, Snapshots: 10}, "nil topology"},
		{"nil process", DynamicConfig{Topology: top, Snapshots: 10}, "nil process"},
		{"mismatched links", DynamicConfig{Topology: top, Process: other, Snapshots: 10}, "covers 99 links"},
		{"no snapshots", DynamicConfig{Topology: top, Process: proc}, "snapshots = 0"},
		{"bad tl", DynamicConfig{Topology: top, Process: proc, Snapshots: 10, Tl: 2}, "tl"},
		{"bad packets", DynamicConfig{Topology: top, Process: proc, Snapshots: 10, PacketsPerPath: -1}, "packets"},
	}
	for _, tc := range cases {
		if _, err := RunDynamic(context.Background(), tc.cfg); err == nil {
			t.Errorf("%s: config accepted, want error", tc.name)
		} else if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errPart)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunDynamic(ctx, DynamicConfig{Topology: top, Process: proc, Snapshots: 10}); err == nil {
		t.Error("cancelled context accepted")
	}
}
