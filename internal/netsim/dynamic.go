package netsim

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"

	"repro/internal/bitset"
	"repro/internal/dynamics"
	"repro/internal/loss"
	"repro/internal/runner"
	"repro/internal/snapstore"
	"repro/internal/topology"
)

// DynamicConfig parameterizes a time-evolving simulation run: instead of the
// i.i.d. per-snapshot draw of Config.Model, a dynamics.Process carries
// congestion state from one snapshot to the next.
type DynamicConfig struct {
	Topology *topology.Topology
	// Process is the time-indexed congestion process (e.g.
	// dynamics.MarkovModulated).
	Process dynamics.Process
	// Snapshots is the number of snapshots to simulate (> 0).
	Snapshots int
	// Seed drives the process realization and the per-snapshot measurement
	// noise.
	Seed int64
	// Mode selects state-level (default) or packet-level measurement.
	Mode Mode
	// Tl is the link congestion threshold (0 ⇒ loss.DefaultTl); packet-level
	// mode only.
	Tl float64
	// PacketsPerPath is the probe count per path per snapshot
	// (0 ⇒ loss.DefaultPacketsPerPath); packet-level mode only.
	PacketsPerPath int
	// RecordLinkStates additionally stores the true congested-link set of
	// every snapshot.
	RecordLinkStates bool
	// OnSnapshot, when non-nil, is called after each simulated snapshot with
	// its index and congested-path observation — the streaming tap online
	// consumers (sliding windows, change detectors) attach to. The set is
	// reused between calls; clone it to retain. Calls arrive in snapshot
	// order regardless of Workers.
	OnSnapshot func(t int, congestedPaths *bitset.Set)
	// Workers caps the per-path observation fan-out (0 ⇒ GOMAXPROCS, capped
	// by any worker budget the context carries; 1 ⇒ the fully sequential
	// loop). The process advance and the store emission stay sequential for
	// determinism, so records and OnSnapshot sequences are bit-identical for
	// every setting.
	Workers int
}

// RunDynamic executes a time-evolving simulation. Unlike RunContext's
// block-sharded fill, the process chain is inherently sequential — snapshot
// t's congestion state depends on snapshot t−1's — so observations are
// emitted through the columnar store's streaming Append path, exactly as a
// live probe feed would arrive. The per-snapshot path observation, however,
// is independent given the link state, so RunDynamic pipelines in chunks:
// the modulator advances sequentially into a chunk of buffered link states,
// per-path column emission fans out across cfg.Workers (the expensive step
// under PacketLevel measurement), and the chunk is appended in snapshot
// order. The run is deterministic in cfg.Seed: the process realization
// consumes one RNG stream and per-snapshot measurement noise uses
// runner.DeriveSeed(seed, t), so records never depend on scheduling or
// worker count. ctx is honoured between snapshots.
func RunDynamic(ctx context.Context, cfg DynamicConfig) (*Record, error) {
	return runDynamic(ctx, cfg, true)
}

// RunDynamicStream is RunDynamic without the record: every snapshot goes
// only to cfg.OnSnapshot (required), nothing is materialized in RAM — the
// generation mode for day-scale replays whose observations stream straight
// into a spill-enabled window (segstore) instead of a record. The
// OnSnapshot sequence is bit-identical to RunDynamic's under the same
// configuration and seed.
func RunDynamicStream(ctx context.Context, cfg DynamicConfig) error {
	if cfg.OnSnapshot == nil {
		return fmt.Errorf("netsim: RunDynamicStream requires an OnSnapshot tap (nothing else receives the snapshots)")
	}
	if cfg.RecordLinkStates {
		return fmt.Errorf("netsim: RunDynamicStream records nothing; use RunDynamic for link states")
	}
	_, err := runDynamic(ctx, cfg, false)
	return err
}

func runDynamic(ctx context.Context, cfg DynamicConfig, record bool) (*Record, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("netsim: nil topology")
	}
	if cfg.Process == nil {
		return nil, fmt.Errorf("netsim: nil process")
	}
	if cfg.Process.NumLinks() != cfg.Topology.NumLinks() {
		return nil, fmt.Errorf("netsim: process covers %d links, topology has %d",
			cfg.Process.NumLinks(), cfg.Topology.NumLinks())
	}
	if cfg.Snapshots <= 0 {
		return nil, fmt.Errorf("netsim: snapshots = %d, want > 0", cfg.Snapshots)
	}
	tl := cfg.Tl
	if tl == 0 {
		tl = loss.DefaultTl
	}
	if tl < 0 || tl >= 1 {
		return nil, fmt.Errorf("netsim: tl = %v, want (0, 1)", tl)
	}
	packets := cfg.PacketsPerPath
	if packets == 0 {
		packets = loss.DefaultPacketsPerPath
	}
	if packets < 0 {
		return nil, fmt.Errorf("netsim: packets per path = %d", packets)
	}

	var rec *Record
	if record {
		rec = &Record{Paths: snapstore.New(cfg.Topology.NumPaths())}
		if cfg.RecordLinkStates {
			rec.Links = snapstore.New(cfg.Topology.NumLinks())
		}
	}
	run := cfg.Process.Start(cfg.Seed)
	linkState := bitset.New(cfg.Topology.NumLinks())
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 {
		return runDynamicChunked(ctx, cfg, rec, run, linkState, tl, packets)
	}
	pathState := bitset.New(cfg.Topology.NumPaths())
	for t := 0; t < cfg.Snapshots; t++ {
		if t%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		run.Next(linkState)
		// Measurement noise draws from a per-snapshot stream so packet-level
		// noise stays independent of the process realization.
		rng := rand.New(rand.NewSource(runner.DeriveSeed(cfg.Seed, t)))
		observePaths(cfg.Topology, linkState, rng, cfg.Mode, tl, packets, pathState)
		if rec != nil {
			rec.Paths.Append(pathState)
			if rec.Links != nil {
				rec.Links.Append(linkState)
			}
		}
		if cfg.OnSnapshot != nil {
			cfg.OnSnapshot(t, pathState)
		}
	}
	return rec, nil
}

// dynChunkSnapshots is the pipeline chunk of the parallel RunDynamic path:
// big enough to amortize the per-chunk fan-out, small enough that the
// buffered link/path states stay cache-resident and OnSnapshot latency stays
// bounded.
const dynChunkSnapshots = 512

// runDynamicChunked is the parallel body of RunDynamic: advance the process
// sequentially into a chunk of buffered link states, observe the chunk's
// paths in parallel (each snapshot's measurement noise comes from its own
// derived stream, so tasks are independent), then emit the chunk in
// snapshot order. Emission order, store contents and OnSnapshot sequence
// are exactly the sequential loop's.
func runDynamicChunked(ctx context.Context, cfg DynamicConfig, rec *Record, run dynamics.Run, linkState *bitset.Set, tl float64, packets int) (*Record, error) {
	chunk := dynChunkSnapshots
	if chunk > cfg.Snapshots {
		chunk = cfg.Snapshots
	}
	linkStates := make([]*bitset.Set, chunk)
	pathStates := make([]*bitset.Set, chunk)
	for i := range linkStates {
		linkStates[i] = bitset.New(cfg.Topology.NumLinks())
		pathStates[i] = bitset.New(cfg.Topology.NumPaths())
	}
	r := &runner.Runner{Workers: cfg.Workers}
	for base := 0; base < cfg.Snapshots; base += chunk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m := chunk
		if base+m > cfg.Snapshots {
			m = cfg.Snapshots - base
		}
		for i := 0; i < m; i++ {
			run.Next(linkState)
			linkStates[i].CopyFrom(linkState)
		}
		err := r.Run(ctx, m, func(_ context.Context, i int) error {
			rng := rand.New(rand.NewSource(runner.DeriveSeed(cfg.Seed, base+i)))
			observePaths(cfg.Topology, linkStates[i], rng, cfg.Mode, tl, packets, pathStates[i])
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i := 0; i < m; i++ {
			if rec != nil {
				rec.Paths.Append(pathStates[i])
				if rec.Links != nil {
					rec.Links.Append(linkStates[i])
				}
			}
			if cfg.OnSnapshot != nil {
				cfg.OnSnapshot(base+i, pathStates[i])
			}
		}
	}
	return rec, nil
}
