package netsim

import (
	"context"
	"testing"

	"repro/internal/bitset"
)

// TestRunDynamicParallelMatchesSerial pins the chunked parallel RunDynamic
// path bit-identical to the sequential loop across worker counts {1, 2, 7,
// 8}, in both measurement modes (packet-level exercises the per-snapshot
// derived-noise streams the fan-out depends on), including recorded link
// states and the OnSnapshot tap sequence — same sets, same order, same
// indices. Snapshot counts straddle the chunk size so partial final chunks
// are covered.
func TestRunDynamicParallelMatchesSerial(t *testing.T) {
	top, proc := dynFixture(t)
	for _, mode := range []Mode{StateLevel, PacketLevel} {
		for _, snapshots := range []int{1, dynChunkSnapshots - 1, dynChunkSnapshots, dynChunkSnapshots*2 + 37} {
			base := DynamicConfig{
				Topology: top, Process: proc, Snapshots: snapshots, Seed: 17,
				Mode: mode, RecordLinkStates: true, Workers: 1,
			}
			var wantTap []*bitset.Set
			base.OnSnapshot = func(ts int, congested *bitset.Set) {
				if ts != len(wantTap) {
					t.Fatalf("serial tap index %d, want %d", ts, len(wantTap))
				}
				wantTap = append(wantTap, congested.Clone())
			}
			want, err := RunDynamic(context.Background(), base)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 7, 8} {
				cfg := base
				cfg.Workers = workers
				var gotTap []*bitset.Set
				cfg.OnSnapshot = func(ts int, congested *bitset.Set) {
					if ts != len(gotTap) {
						t.Fatalf("workers=%d tap index %d, want %d", workers, ts, len(gotTap))
					}
					gotTap = append(gotTap, congested.Clone())
				}
				got, err := RunDynamic(context.Background(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Paths.Equal(want.Paths) {
					t.Fatalf("mode=%v snapshots=%d workers=%d: path record differs from serial", mode, snapshots, workers)
				}
				if !got.Links.Equal(want.Links) {
					t.Fatalf("mode=%v snapshots=%d workers=%d: link record differs from serial", mode, snapshots, workers)
				}
				if len(gotTap) != len(wantTap) {
					t.Fatalf("mode=%v snapshots=%d workers=%d: tapped %d snapshots, serial %d", mode, snapshots, workers, len(gotTap), len(wantTap))
				}
				for ts := range wantTap {
					if !gotTap[ts].Equal(wantTap[ts]) {
						t.Fatalf("mode=%v snapshots=%d workers=%d snapshot %d: tap %v != serial %v",
							mode, snapshots, workers, ts, gotTap[ts], wantTap[ts])
					}
				}
			}
		}
	}
}

// TestRunDynamicParallelCancellation pins that the chunked path still
// honours context cancellation.
func TestRunDynamicParallelCancellation(t *testing.T) {
	top, proc := dynFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunDynamic(ctx, DynamicConfig{Topology: top, Process: proc, Snapshots: 10, Workers: 4})
	if err == nil {
		t.Fatal("cancelled context accepted by parallel path")
	}
}
