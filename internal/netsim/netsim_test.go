package netsim

import (
	"math"
	"testing"

	"repro/internal/bitset"
	"repro/internal/congestion"
	"repro/internal/topology"
)

func fig1aModel(t *testing.T) congestion.Model {
	t.Helper()
	// e1, e2 correlated (shared cause), e3 and e4 independent.
	m, err := congestion.NewSharedCause(
		[]int{0, 0, 1, 2},
		[]float64{0.3, 0.2, 0.1},
		[]float64{1, 0.8, 1, 1},
		[]float64{0.05, 0.05, 0, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunValidation(t *testing.T) {
	top := topology.Figure1A()
	model := fig1aModel(t)
	if _, err := Run(Config{Topology: nil, Model: model, Snapshots: 10}); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := Run(Config{Topology: top, Model: nil, Snapshots: 10}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := Run(Config{Topology: top, Model: model, Snapshots: 0}); err == nil {
		t.Fatal("zero snapshots accepted")
	}
	bad, _ := congestion.NewIndependent([]float64{0.5})
	if _, err := Run(Config{Topology: top, Model: bad, Snapshots: 10}); err == nil {
		t.Fatal("model/topology size mismatch accepted")
	}
	if _, err := Run(Config{Topology: top, Model: model, Snapshots: 10, Tl: 1.5}); err == nil {
		t.Fatal("bad tl accepted")
	}
}

func TestDeterminismAcrossParallelism(t *testing.T) {
	top := topology.Figure1A()
	model := fig1aModel(t)
	run := func(par int, mode Mode) *Record {
		rec, err := Run(Config{
			Topology: top, Model: model, Snapshots: 500, Seed: 42,
			Mode: mode, Parallelism: par, PacketsPerPath: 50,
			RecordLinkStates: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	for _, mode := range []Mode{StateLevel, PacketLevel} {
		a, b := run(1, mode), run(8, mode)
		if !a.Paths.Equal(b.Paths) {
			t.Fatalf("%v: path columns differ between parallelism 1 and 8", mode)
		}
		if !a.Links.Equal(b.Links) {
			t.Fatalf("%v: link columns differ between parallelism 1 and 8", mode)
		}
	}
}

func TestStateLevelSeparability(t *testing.T) {
	top := topology.Figure1A()
	model := fig1aModel(t)
	rec, err := Run(Config{
		Topology: top, Model: model, Snapshots: 2000, Seed: 7,
		Mode: StateLevel, RecordLinkStates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for snap := 0; snap < rec.Snapshots(); snap++ {
		links := rec.LinkSnapshot(snap)
		for _, p := range top.Paths() {
			want := top.PathLinkSet(p.ID).Intersects(links)
			got := rec.Paths.Bit(int(p.ID), snap)
			if got != want {
				t.Fatalf("snapshot %d path %s: congested=%v, links=%v", snap, p.Name, got, links)
			}
		}
	}
}

func TestStateLevelFrequenciesMatchModel(t *testing.T) {
	top := topology.Figure1A()
	model := fig1aModel(t)
	rec, err := Run(Config{Topology: top, Model: model, Snapshots: 100000, Seed: 9, Mode: StateLevel})
	if err != nil {
		t.Fatal(err)
	}
	// P(path P1 good) = P(e1 good ∧ e3 good) exactly.
	for _, p := range top.Paths() {
		want := model.ProbAllGood(top.PathLinkSet(p.ID))
		good := rec.Snapshots() - rec.Paths.CongestedCount(int(p.ID))
		got := float64(good) / float64(rec.Snapshots())
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("path %s: empirical P(good) = %v, exact %v", p.Name, got, want)
		}
	}
}

func TestPacketLevelApproximatesStateLevel(t *testing.T) {
	top := topology.Figure1A()
	model := fig1aModel(t)
	const n = 4000
	recS, err := Run(Config{Topology: top, Model: model, Snapshots: n, Seed: 11, Mode: StateLevel})
	if err != nil {
		t.Fatal(err)
	}
	recP, err := Run(Config{Topology: top, Model: model, Snapshots: n, Seed: 11, Mode: PacketLevel, PacketsPerPath: 500})
	if err != nil {
		t.Fatal(err)
	}
	// Same seed ⇒ same link states; packet-level classification should agree
	// with the true path state in the overwhelming majority of snapshots.
	for pid := 0; pid < top.NumPaths(); pid++ {
		disagree := 0
		for i := 0; i < n; i++ {
			if recS.Paths.Bit(pid, i) != recP.Paths.Bit(pid, i) {
				disagree++
			}
		}
		if f := float64(disagree) / n; f > 0.1 {
			t.Fatalf("path %d: packet-level disagrees with state-level %.1f%% of snapshots", pid, 100*f)
		}
	}
}

func TestModeString(t *testing.T) {
	if StateLevel.String() != "state-level" || PacketLevel.String() != "packet-level" {
		t.Fatal("Mode.String")
	}
	if Mode(99).String() != "Mode(99)" {
		t.Fatal("unknown Mode.String")
	}
}

func TestRecordLinkStatesOptional(t *testing.T) {
	top := topology.Figure1A()
	rec, err := Run(Config{Topology: top, Model: fig1aModel(t), Snapshots: 10, Seed: 1, Mode: StateLevel})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Links != nil {
		t.Fatal("link states recorded without being requested")
	}
	if rec.Snapshots() != 10 || rec.NumPaths() != 3 {
		t.Fatalf("record shape: %d snapshots, %d paths", rec.Snapshots(), rec.NumPaths())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LinkSnapshot without recorded link states must panic")
		}
	}()
	rec.LinkSnapshot(0)
}

func TestNewRecordFromRows(t *testing.T) {
	rows := []*bitset.Set{
		bitset.FromIndices(0, 2),
		bitset.New(3),
		bitset.FromIndices(1),
	}
	rec := NewRecordFromRows(3, rows)
	if rec.Snapshots() != 3 || rec.NumPaths() != 3 {
		t.Fatalf("record shape: %d snapshots, %d paths", rec.Snapshots(), rec.NumPaths())
	}
	for tt, row := range rows {
		if !rec.PathSnapshot(tt).Equal(row) {
			t.Fatalf("snapshot %d: %v != %v", tt, rec.PathSnapshot(tt), row)
		}
	}
}
