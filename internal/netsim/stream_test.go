package netsim

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bitset"
)

// TestRunDynamicStreamMatchesRecord pins the streaming generator's
// contract: the OnSnapshot sequence of a record-less RunDynamicStream is
// bit-identical to the record RunDynamic produces under the same
// configuration — serial and chunked-parallel alike.
func TestRunDynamicStreamMatchesRecord(t *testing.T) {
	top, proc := dynFixture(t)
	for _, workers := range []int{1, 4} {
		cfg := DynamicConfig{Topology: top, Process: proc, Snapshots: 1300, Seed: 11, Workers: workers}
		rec, err := RunDynamic(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var streamed []*bitset.Set
		next := 0
		cfg.OnSnapshot = func(ts int, congested *bitset.Set) {
			if ts != next {
				t.Fatalf("workers=%d: snapshot %d arrived, want %d (out of order)", workers, ts, next)
			}
			next++
			streamed = append(streamed, congested.Clone())
		}
		if err := RunDynamicStream(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
		if len(streamed) != rec.Snapshots() {
			t.Fatalf("workers=%d: streamed %d snapshots, record has %d", workers, len(streamed), rec.Snapshots())
		}
		row := bitset.New(top.NumPaths())
		for ts, got := range streamed {
			rec.Paths.RowInto(ts, row)
			if !got.Equal(row) {
				t.Fatalf("workers=%d: snapshot %d streamed %v, record %v", workers, ts, got, row)
			}
		}
	}
}

// TestRunDynamicStreamErrors pins the streaming-mode preconditions.
func TestRunDynamicStreamErrors(t *testing.T) {
	top, proc := dynFixture(t)
	cfg := DynamicConfig{Topology: top, Process: proc, Snapshots: 10, Seed: 1}
	if err := RunDynamicStream(context.Background(), cfg); err == nil || !strings.Contains(err.Error(), "OnSnapshot") {
		t.Fatalf("nil OnSnapshot: err = %v, want an OnSnapshot requirement", err)
	}
	cfg.OnSnapshot = func(int, *bitset.Set) {}
	cfg.RecordLinkStates = true
	if err := RunDynamicStream(context.Background(), cfg); err == nil || !strings.Contains(err.Error(), "link states") {
		t.Fatalf("RecordLinkStates: err = %v, want a records-nothing error", err)
	}
	cfg.RecordLinkStates = false
	if err := RunDynamicStream(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
}
