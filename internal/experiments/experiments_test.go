package experiments

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// fastParams keeps the end-to-end figure tests quick: small scale with a
// reduced snapshot budget.
func fastParams() Params {
	return Params{Scale: Small, Seed: 1, Snapshots: 400}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run(context.Background(), "9z", fastParams()); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestUnknownScale(t *testing.T) {
	if _, err := Figure3c(context.Background(), Params{Scale: "galactic"}); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestEveryFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, r := range Runners {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			fig, err := r.Run(context.Background(), fastParams())
			if err != nil {
				t.Fatal(err)
			}
			if fig.ID != r.ID {
				t.Fatalf("figure ID %q, want %q", fig.ID, r.ID)
			}
			if len(fig.Series) != 2 {
				t.Fatalf("%d series, want 2 (Correlation, Independence)", len(fig.Series))
			}
			for _, s := range fig.Series {
				if len(s.X) == 0 || len(s.X) != len(s.Y) {
					t.Fatalf("series %q has %d/%d points", s.Label, len(s.X), len(s.Y))
				}
				for _, y := range s.Y {
					if y < 0 {
						t.Fatalf("series %q has negative value %v", s.Label, y)
					}
				}
			}
			if len(fig.Notes) == 0 {
				t.Fatal("no scenario notes recorded")
			}
		})
	}
}

// The headline comparison of the paper: on the Figure-3c scenario the
// correlation algorithm must dominate the independence baseline at the 0.1
// error level.
func TestCorrelationBeatsIndependenceOnFigure3c(t *testing.T) {
	fig, err := Figure3c(context.Background(), Params{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	at01 := map[string]float64{}
	for _, s := range fig.Series {
		for i, x := range s.X {
			if x == 0.1 {
				at01[s.Label] = s.Y[i]
			}
		}
	}
	if at01["Correlation"] <= at01["Independence"] {
		t.Fatalf("correlation (%.1f%%) does not beat independence (%.1f%%) at error 0.1",
			at01["Correlation"], at01["Independence"])
	}
}

// TestParallelFigureMatchesSerial is the engine's determinism regression:
// a figure computed on one worker must be bit-identical to the same figure
// computed on many workers, both for the multi-point sweep (3a: parallelism
// across sweep points and trials) and for a CDF figure (3c: parallelism
// across trials). Run under -race this also exercises the whole
// experiments→runner→netsim stack for data races.
func TestParallelFigureMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, id := range []string{"3a", "3c"} {
		t.Run(id, func(t *testing.T) {
			p := Params{Scale: Small, Seed: 7, Snapshots: 300, Trials: 3}
			p.Workers = 1
			serial, err := Run(context.Background(), id, p)
			if err != nil {
				t.Fatal(err)
			}
			p.Workers = 8
			parallel, err := Run(context.Background(), id, p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("figure %s differs between serial and 8-worker runs", id)
			}
		})
	}
}

// TestTrialsTickProgress checks the per-trial progress plumbing: a sweep
// figure reports points×trials completions, ending at (total, total).
func TestTrialsTickProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := fastParams()
	p.Trials = 2
	p.Snapshots = 150
	var got []int
	var want int
	p.Progress = func(done, total int) {
		got = append(got, done)
		want = total
	}
	if _, err := Figure3a(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if want != len(CongestedFractions)*2 {
		t.Fatalf("progress total = %d, want %d", want, len(CongestedFractions)*2)
	}
	if len(got) != want {
		t.Fatalf("%d progress calls, want %d", len(got), want)
	}
	if got[len(got)-1] != want {
		t.Fatalf("last progress done = %d, want %d", got[len(got)-1], want)
	}
}

// TestFigureCancellation: a cancelled context aborts a figure run promptly
// with context.Canceled.
func TestFigureCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Figure3a(ctx, fastParams())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunAllPreservesOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := fastParams()
	p.Snapshots = 150
	ids := []string{"3c", "3d"}
	var completions []string
	figs, err := RunAll(context.Background(), ids, p, func(id string, done, total int) {
		completions = append(completions, id)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != len(ids) {
		t.Fatalf("%d figures, want %d", len(figs), len(ids))
	}
	for i, fig := range figs {
		if fig.ID != ids[i] {
			t.Fatalf("figs[%d].ID = %q, want %q (order not preserved)", i, fig.ID, ids[i])
		}
	}
	if len(completions) != len(ids) {
		t.Fatalf("%d figure-progress calls, want %d", len(completions), len(ids))
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{
		ID: "test", Title: "A Title", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "A", X: []float64{1, 2}, Y: []float64{0.5, 0.25}},
			{Label: "B", X: []float64{1, 2}, Y: []float64{0.75, 1}},
		},
		Notes: []string{"note-1"},
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# test — A Title", "# note-1", "x\tA\tB", "1\t0.5000\t0.7500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Figure{ID: "e", XLabel: "x"}).Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotOverride(t *testing.T) {
	sz, err := Small.sizes()
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Snapshots: 123}
	if got := p.snapshots(sz); got != 123 {
		t.Fatalf("snapshots = %d, want 123", got)
	}
	p = Params{}
	if got := p.snapshots(sz); got != sz.snapshots {
		t.Fatalf("snapshots = %d, want scale default %d", got, sz.snapshots)
	}
}

// TestScenarioFigure runs a named registry scenario (static and dynamic)
// through the figure pipeline via the "scenario:" dispatch.
func TestScenarioFigure(t *testing.T) {
	for _, name := range []string{"quickstart", "link-flap"} {
		fig, err := Run(context.Background(), "scenario:"+name, Params{Seed: 2, Snapshots: 300})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fig.ID != "scenario:"+name {
			t.Fatalf("figure ID %q", fig.ID)
		}
		if len(fig.Series) != 2 || len(fig.Series[0].Y) == 0 {
			t.Fatalf("%s: malformed figure series", name)
		}
		// A CDF is monotone in [0,100].
		for _, s := range fig.Series {
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] < s.Y[i-1] {
					t.Fatalf("%s: series %s is not a CDF", name, s.Label)
				}
			}
		}
	}
	if _, err := Run(context.Background(), "scenario:nope", Params{Seed: 2}); err == nil {
		t.Fatal("unknown named scenario accepted")
	}
}
